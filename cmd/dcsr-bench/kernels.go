package main

import (
	"fmt"
	"math/rand"
	"testing"

	"dcsr/internal/edsr"
	"dcsr/internal/tensor"
	"dcsr/internal/video"
)

// kernelResult is one row of the kernel-benchmark report: a named
// microbenchmark with its steady-state cost and allocation profile.
// These rows are the perf trajectory the repo accumulates across PRs —
// compare BENCH_kernels.json files from two checkouts on one machine.
type kernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	FPS         float64 `json:"fps,omitempty"` // frames/s, for whole-frame benches
}

func toResult(name string, r testing.BenchmarkResult, wholeFrame bool) kernelResult {
	kr := kernelResult{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if wholeFrame && r.NsPerOp() > 0 {
		kr.FPS = 1e9 / float64(r.NsPerOp())
	}
	return kr
}

func genKernelFrame(w, h int) *video.RGB {
	clip := video.Generate(video.GenConfig{W: w, H: h, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	return clip.Frames()[0]
}

// runKernelBenches measures the compute-layer hot paths: the blocked
// GEMM at the dcSR-1 body-conv shape, the fused banded convolution, and
// whole-frame Enhance at two decoder resolutions.
func runKernelBenches() ([]kernelResult, error) {
	rng := rand.New(rand.NewSource(1))
	var out []kernelResult

	// GEMM at the body-conv shape: (16×144) × (144×129600).
	const m, k, n = 16, 144, 480 * 270
	a := make([]float32, m*k)
	bm := make([]float32, k*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range bm {
		bm[i] = float32(rng.NormFloat64())
	}
	o := make([]float32, m*n)
	out = append(out, toResult("matmul_body270p", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMul(a, bm, o, m, k, n)
		}
	}), false))

	// Fused conv+bias+ReLU through the banded inference path.
	spec := tensor.ConvSpec{InC: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	x := tensor.New(1, 16, 270, 480)
	x.Randn(rng, 1)
	wt := tensor.New(16, 16, 3, 3)
	wt.Randn(rng, 0.1)
	bias := tensor.New(16)
	conv := tensor.Conv2DInfer(x, wt, bias, spec, true, nil)
	out = append(out, toResult("conv_infer_body270p", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			conv = tensor.Conv2DInfer(x, wt, bias, spec, true, conv)
		}
	}), false))

	// Whole-frame enhancement on the inference fast path.
	for _, res := range []struct {
		name string
		w, h int
	}{{"enhance_270p", 480, 270}, {"enhance_540p", 960, 540}} {
		model, err := edsr.New(edsr.ConfigDCSR1, 1)
		if err != nil {
			return nil, err
		}
		f := genKernelFrame(res.w, res.h)
		model.Enhance(f) // warm the reusable buffers
		out = append(out, toResult(res.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.Enhance(f)
			}
		}), true))
	}
	return out, nil
}

// printKernelTable renders the rows in the experiment-table style.
func printKernelTable(rows []kernelResult) {
	fmt.Printf("%-22s %14s %12s %12s %10s\n", "kernel", "ns/op", "B/op", "allocs/op", "FPS")
	for _, r := range rows {
		fps := "-"
		if r.FPS > 0 {
			fps = fmt.Sprintf("%.2f", r.FPS)
		}
		fmt.Printf("%-22s %14d %12d %12d %10s\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, fps)
	}
	fmt.Println()
}
