package main

import (
	"os"
	"runtime"
	"strings"
)

// benchHeader identifies the machine and runtime a BENCH_*.json report
// was produced on. Perf numbers are only comparable between reports
// whose headers match, so every report embeds one.
type benchHeader struct {
	CPUModel   string `json:"cpu_model,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

func newBenchHeader() benchHeader {
	return benchHeader{
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// cpuModel returns the first "model name" entry of /proc/cpuinfo, or ""
// on platforms without one (the field is omitempty).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
