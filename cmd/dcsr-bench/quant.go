package main

import (
	"fmt"
	"testing"

	"dcsr/internal/edsr"
	"dcsr/internal/experiments"
	"dcsr/internal/video"
)

// quantResult is the BENCH_quant.json payload: the 270p whole-frame
// Enhance cost on both numeric paths of the same dcSR-1 model (the
// kernel speedup the int8 path exists for), plus the quality-gate
// outcomes of a real pipeline run (experiments.ExperimentQuantGate).
type quantResult struct {
	Float32 kernelResult                  `json:"float32"`
	Int8    kernelResult                  `json:"int8"`
	Speedup float64                       `json:"speedup"`
	Gate    *experiments.QuantGateResult  `json:"gate,omitempty"`
}

// runQuantBench measures float32 vs int8 Enhance at 270p on one dcSR-1
// model. The model is calibrated on the benchmark frame itself —
// exactly the serving situation, where scales come from the cluster's
// own frames.
func runQuantBench() (*quantResult, error) {
	model, err := edsr.New(edsr.ConfigDCSR1, 1)
	if err != nil {
		return nil, err
	}
	f := genKernelFrame(480, 270)
	if err := model.Calibrate([]*video.RGB{f}); err != nil {
		return nil, err
	}
	model.Enhance(f) // warm the reusable buffers on both paths
	model.EnhanceInt8(f)
	r := &quantResult{}
	r.Float32 = toResult("enhance_270p_f32", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.Enhance(f)
		}
	}), true)
	r.Int8 = toResult("enhance_270p_int8", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.EnhanceInt8(f)
		}
	}), true)
	if r.Int8.NsPerOp > 0 {
		r.Speedup = float64(r.Float32.NsPerOp) / float64(r.Int8.NsPerOp)
	}
	return r, nil
}

func printQuantTable(r *quantResult) {
	printKernelTable([]kernelResult{r.Float32, r.Int8})
	fmt.Printf("int8 speedup at 270p: %.2fx\n\n", r.Speedup)
}
