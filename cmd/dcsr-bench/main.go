// Command dcsr-bench regenerates the tables and figures of the dcSR paper
// (CoNEXT '21) as text tables. With no flags it runs everything; use
// -only to select a subset.
//
// Usage:
//
//	dcsr-bench                 # all experiments (several minutes)
//	dcsr-bench -only fig8,fig10
//	dcsr-bench -fast           # trained experiments at reduced budgets
//	dcsr-bench -list
//	dcsr-bench -fast -json out.json   # machine-readable run report
//
// With -json, a report is written containing every experiment's name
// and wall time plus a snapshot of the pipeline metrics the run
// recorded (prepare/train counters, cache hit/miss, codec enhance
// latency — see the obs package doc for the stable names). The snapshot
// includes the rolling-window series (`windowed_counters`,
// `windowed_histograms`), whose rate and p50/p95/p99 cover only the
// last window of the run — the live-traffic view of the same latencies
// the lifetime histograms average over the whole run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcsr/internal/device"
	"dcsr/internal/experiments"
	"dcsr/internal/obs"
	"dcsr/internal/video"
)

// jsonReport is the -json output document. Header pins the machine and
// runtime the numbers were measured on: perf rows are only comparable
// between reports with matching headers.
type jsonReport struct {
	Header      benchHeader                    `json:"header"`
	Fast        bool                           `json:"fast"`
	Only        string                         `json:"only,omitempty"`
	Experiments []jsonExperiment               `json:"experiments"`
	Kernels     []kernelResult                 `json:"kernels,omitempty"`
	CacheBudget *experiments.CacheBudgetResult `json:"cachebudget,omitempty"`
	Swarm       *experiments.SwarmResult       `json:"swarm,omitempty"`
	Quant       *quantResult                   `json:"quant,omitempty"`
	Modelstream *experiments.ModelstreamResult `json:"modelstream,omitempty"`
	Metrics     obs.Snapshot                   `json:"metrics"`
}

type jsonExperiment struct {
	Name    string  `json:"name"`
	Desc    string  `json:"desc"`
	Seconds float64 `json:"seconds"`
}

type experiment struct {
	name string
	desc string
	run  func(cfg experiments.EvalConfig)
}

func main() {
	only := flag.String("only", "", "comma-separated experiment names (see -list)")
	fast := flag.Bool("fast", false, "reduced training budgets for the trained experiments")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "write a JSON run report (experiments + metrics snapshot) to this file, or - for stdout (tables move to stderr)")
	flag.Parse()

	cfg := experiments.DefaultEvalConfig()
	cfg.Obs = obs.New()
	if *fast {
		cfg.MicroSteps = 150
		cfg.BigSteps = 250
		cfg.Genres = []video.Genre{video.GenreNews, video.GenreSports}
	}

	var kernelRows []kernelResult
	var cacheBudgetRes *experiments.CacheBudgetResult
	var swarmRes *experiments.SwarmResult
	var quantRes *quantResult
	var modelstreamRes *experiments.ModelstreamResult

	var fig9 *experiments.Fig9Result
	getFig9 := func() *experiments.Fig9Result {
		if fig9 == nil {
			var err error
			fig9, err = experiments.RunFig9(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
		}
		return fig9
	}

	exps := []experiment{
		{"fig1a", "big-model inference rate vs resolution", func(experiments.EvalConfig) {
			t, _ := experiments.Fig1a()
			fmt.Println(t)
		}},
		{"fig1b", "big-model size vs resolution", func(experiments.EvalConfig) {
			t, _ := experiments.Fig1b()
			fmt.Println(t)
		}},
		{"fig1c", "per-frame quality variance of one big model", func(c experiments.EvalConfig) {
			t, st, _ := experiments.Fig1c(c)
			fmt.Println(t)
			fmt.Printf("per-frame PSNR: mean %.2f dB, min %.2f, max %.2f, spread %.2f dB\n\n",
				st.Mean, st.Min, st.Max, st.Max-st.Min)
		}},
		{"table1", "model size over (n_f, n_RB) grid", func(experiments.EvalConfig) {
			t, _ := experiments.Table1()
			fmt.Println(t)
		}},
		{"fig5", "silhouette coefficient vs K", func(c experiments.EvalConfig) {
			t, bestK, _ := experiments.Fig5(c)
			fmt.Println(t)
			fmt.Printf("selected K* = %d\n\n", bestK)
		}},
		{"fig8", "Jetson FPS panels (720p/1080p/4K)", func(experiments.EvalConfig) {
			for _, r := range []device.Resolution{device.Res720p, device.Res1080p, device.Res4K} {
				t, _ := experiments.Fig8FPS(r, 5)
				fmt.Println(t)
			}
		}},
		{"fig8d", "Jetson power & energy", func(experiments.EvalConfig) {
			t, _, _ := experiments.Fig8Power()
			fmt.Println(t)
		}},
		{"fig9", "PSNR/SSIM across the six genre videos", func(c experiments.EvalConfig) {
			psnr, ssim := getFig9().QualityTables()
			fmt.Println(psnr)
			fmt.Println(ssim)
		}},
		{"fig10", "normalized network usage", func(c experiments.EvalConfig) {
			r := getFig9()
			fmt.Println(r.NetworkTable())
			fmt.Printf("mean dcSR saving vs NAS: %.0f%%\n\n", r.MeanSaving()*100)
		}},
		{"fig11", "training loss vs data size", func(c experiments.EvalConfig) {
			t, _ := experiments.Fig11(c)
			fmt.Println(t)
		}},
		{"fig12", "laptop/desktop 4K FPS panels", func(experiments.EvalConfig) {
			for _, p := range []device.Profile{device.Laptop, device.Desktop} {
				t, _ := experiments.Fig12FPS(p, 10)
				fmt.Println(t)
			}
		}},
		{"speedup", "micro vs big training cost", func(c experiments.EvalConfig) {
			r := getFig9()
			fmt.Println(r.SpeedupTable())
			fmt.Printf("mean training speedup: %.1fx\n\n", r.MeanSpeedup())
		}},
		{"upscale", "x2 super-resolution vs bicubic", func(c experiments.EvalConfig) {
			t, _ := experiments.ExperimentUpscale(c)
			fmt.Println(t)
		}},
		{"abr", "SR-aware adaptive bitrate integration", func(c experiments.EvalConfig) {
			t, _ := experiments.ExperimentABR(c)
			fmt.Println(t)
		}},
		{"faults", "fault-injected streaming: drop rate × retry budget", func(c experiments.EvalConfig) {
			t, _, err := experiments.ExperimentFaults(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(t)
		}},
		{"kernels", "tensor kernel + Enhance microbenchmarks (ns/op, allocs, FPS)", func(experiments.EvalConfig) {
			rows, err := runKernelBenches()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			kernelRows = rows
			printKernelTable(rows)
		}},
		{"cachebudget", "model-cache hit/eviction/bandwidth rates vs byte budget", func(c experiments.EvalConfig) {
			t, r, err := experiments.ExperimentCacheBudget(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			cacheBudgetRes = r
			fmt.Println(t)
		}},
		{"swarm", "fleet load: 1000 concurrent clients vs admission control + faultnet loss", func(c experiments.EvalConfig) {
			t, r, err := experiments.ExperimentSwarm(c, experiments.SwarmConfig{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			swarmRes = r
			fmt.Println(t)
			fmt.Printf("served %d requests in %.2fs (shed %d, %d client retries, %d reconnects, peak inflight %d)\n\n",
				r.Requests, r.ElapsedSec, r.Sheds, r.Retries, r.Reconnects, r.InflightPeak)
		}},
		{"quant", "int8 vs float32 Enhance speed + calibration quality gate", func(c experiments.EvalConfig) {
			r, err := runQuantBench()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			t, gate, err := experiments.ExperimentQuantGate(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			r.Gate = gate
			quantRes = r
			printQuantTable(r)
			fmt.Println(t)
			fmt.Printf("gate: %d/%d clusters on int8 (%.0f%% fallback), mean delta %.2f dB; playback served %d/%d I frames on int8\n\n",
				gate.Models-gate.Fallbacks, gate.Models, gate.FallbackRate*100,
				gate.PSNRDelta, gate.EnhancedInt8, gate.Enhanced)
		}},
		{"modelstream", "backbone + delta model shipping: bytes/session vs clusters touched", func(c experiments.EvalConfig) {
			t, r, err := experiments.ExperimentModelstream(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: %v\n", err)
				os.Exit(1)
			}
			modelstreamRes = r
			fmt.Println(t)
			fmt.Printf("model stream: %d/%d clusters shipped as deltas (backbone %d, %d fallbacks)\n\n",
				r.DeltaModels, r.Models, r.BackboneLabel, r.Fallbacks)
		}},
		{"ablations", "VAE features / global k-means / split / propagation ablations", func(c experiments.EvalConfig) {
			t1, _ := experiments.AblationFeatures(c)
			fmt.Println(t1)
			t2, _, _ := experiments.AblationGlobalKMeans(c)
			fmt.Println(t2)
			t3, _ := experiments.AblationSplit(c)
			fmt.Println(t3)
			t4, _ := experiments.AblationPropagation(c)
			fmt.Println(t4)
			t5, _, _ := experiments.AblationQuantization(c)
			fmt.Println(t5)
		}},
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(n)] = true
		}
	}
	// With -json -, the report owns stdout; divert the human-readable
	// tables to stderr so the JSON stream stays parseable.
	reportW := os.Stdout
	if *jsonOut == "-" {
		os.Stdout = os.Stderr
		defer func() { os.Stdout = reportW }()
	}
	report := jsonReport{Header: newBenchHeader(), Fast: *fast, Only: *only}
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("--- %s: %s ---\n", e.name, e.desc)
		e.run(cfg)
		elapsed := time.Since(start)
		fmt.Printf("(%s finished in %v)\n\n", e.name, elapsed.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			Name: e.name, Desc: e.desc, Seconds: elapsed.Seconds(),
		})
	}
	if *jsonOut != "" {
		report.Kernels = kernelRows
		report.CacheBudget = cacheBudgetRes
		report.Swarm = swarmRes
		report.Quant = quantRes
		report.Modelstream = modelstreamRes
		report.Metrics = cfg.Obs.Metrics.Snapshot()
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-bench: encoding report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			if _, err := reportW.Write(data); err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-bench: writing report: %v\n", err)
				os.Exit(1)
			}
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-bench: writing report: %v\n", err)
			os.Exit(1)
		}
	}
}
