// Command dcsr-prepare runs the server-side dcSR pipeline over a synthetic
// video and writes the resulting artifact (coded stream + micro models +
// manifest) to a directory that dcsr-play can consume.
//
// Usage:
//
//	dcsr-prepare -out /tmp/video1 -genre sports -w 160 -h 96 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/splitter"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

func main() {
	out := flag.String("out", "", "output artifact directory (required)")
	genreName := flag.String("genre", "news", "content genre: sports|music|documentary|gaming|news|animation")
	w := flag.Int("w", 80, "frame width (multiple of 16)")
	h := flag.Int("h", 48, "frame height (multiple of 16)")
	seed := flag.Int64("seed", 7, "generation seed")
	qp := flag.Int("qp", 51, "encoder QP (CRF-style, 0 best – 51 worst)")
	steps := flag.Int("steps", 400, "micro-model training steps")
	filters := flag.Int("filters", 8, "micro-model filters (n_f)")
	resblocks := flag.Int("resblocks", 2, "micro-model ResBlocks (n_RB)")
	search := flag.Bool("search", false, "run the Appendix A.1 minimum-working-model search instead of -filters/-resblocks")
	int8Flag := flag.Bool("int8", false, "calibrate each cluster model for int8 inference (quantize_int8 stage); clusters failing the quality gate stay float32")
	int8Bound := flag.Float64("int8-psnr-bound", 0, "max PSNR drop (dB) the int8 quality gate tolerates; 0 uses the default 0.5")
	deltaFlag := flag.Bool("delta", false, "delta-encode cluster models against a shared backbone (delta_encode stage); clusters failing the size or quality gate ship complete")
	deltaBound := flag.Float64("delta-psnr-bound", 0, "max PSNR drop (dB) the delta quality gate tolerates; 0 uses the default 0.5")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "dcsr-prepare: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	var genre video.Genre
	found := false
	for _, g := range video.AllGenres() {
		if g.String() == *genreName {
			genre, found = g, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "dcsr-prepare: unknown genre %q\n", *genreName)
		os.Exit(2)
	}

	gc := video.GenreConfig(genre, *w, *h, *seed)
	gc.MinFrames, gc.MaxFrames = 5, 9
	clip := video.Generate(gc)
	fmt.Printf("generated %s\n", clip)

	cfg := core.ServerConfig{
		QP:       *qp,
		Split:    splitter.Config{Threshold: 14, MinLen: 3},
		VAE:      vae.Config{ImgSize: 16, LatentDim: 8, BaseCh: 4},
		VAETrain: vae.TrainOptions{Epochs: 25, BatchSize: 4, Seed: *seed},
		Train:    edsr.TrainOptions{Steps: *steps, BatchSize: 2, PatchSize: 16},
		Seed:     *seed,
	}
	if !*search {
		cfg.MicroConfig = edsr.Config{Filters: *filters, ResBlocks: *resblocks}
	}
	if *int8Flag {
		cfg.Quant = core.QuantConfig{Enabled: true, MaxPSNRDrop: *int8Bound}
	}
	if *deltaFlag {
		cfg.Delta = core.DeltaConfig{Enabled: true, MaxPSNRDrop: *deltaBound}
	}

	prep, err := core.Prepare(clip.YUVFrames(), clip.FPS, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-prepare: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("segments: %d, clusters K=%d, micro config %s\n", len(prep.Segments), prep.K, prep.MicroConfig)
	fmt.Printf("stream: %d bytes, models: %d bytes total\n",
		prep.Manifest.TotalVideoBytes(), prep.Manifest.TotalModelBytes())
	for label, sm := range prep.Models {
		fmt.Printf("  model %d: %d bytes, final train MSE %.1f\n", label, len(sm.Bytes), sm.Train.FinalLoss)
		if sm.Quant != nil {
			verdict := "int8"
			if !sm.Quant.Int8OK {
				verdict = "float32 fallback"
			}
			fmt.Printf("    int8 gate: f32 %.2f dB vs int8 %.2f dB -> %s\n",
				sm.Quant.PSNRFloat32, sm.Quant.PSNRInt8, verdict)
		}
		if sm.Delta != nil {
			if sm.Delta.DeltaOK {
				fmt.Printf("    delta gate: %d B delta vs %d B full (backbone %d, %.2f dB vs %.2f dB) -> delta\n",
					sm.Delta.DeltaBytes, sm.Delta.FullBytes, sm.Delta.BackboneLabel,
					sm.Delta.PSNRFull, sm.Delta.PSNRDelta)
			} else {
				fmt.Printf("    delta gate: %d B delta vs %d B full -> full fallback\n",
					sm.Delta.DeltaBytes, sm.Delta.FullBytes)
			}
		}
	}
	if bb := prep.Manifest.Backbone; bb != nil {
		fmt.Printf("model stream: backbone is cluster %d (%d bytes)\n", bb.Label, bb.Bytes)
	}
	if err := prep.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-prepare: saving: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("artifact written to %s\n", *out)
}
