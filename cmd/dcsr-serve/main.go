// Command dcsr-serve is the dcSR origin server: it loads one or more
// artifacts produced by dcsr-prepare (or prepares them in-process from
// synthetic clips) and serves manifests, per-segment sub-streams and
// micro models to dcsr-play clients over TCP. With several videos
// registered, clients route requests by content digest (see
// docs/SERVING.md); the first video is the default for old clients.
//
// Usage:
//
//	dcsr-serve -in /tmp/video1 -listen 127.0.0.1:8090
//	dcsr-serve -in /tmp/video1,/tmp/video2                # multi-video fleet
//	dcsr-serve -genre sports,news -listen 127.0.0.1:8090  # prepare in-process
//	dcsr-serve -genre news -obs-addr 127.0.0.1:9090       # + debug sidecar
//	dcsr-serve -genre news -max-inflight 64 -max-clients 256
//
// -max-inflight caps concurrently served requests; -max-clients caps
// accepted connections. Load past either bound is shed with a typed
// retry-after rejection that client retry policies honor as a backoff
// hint (docs/SERVING.md covers tuning both).
//
// With -obs-addr set, a debug HTTP sidecar serves /metrics (text, or
// ?format=json — including the rolling-window rate and p50/p95/p99
// series), /debug/trace (last Prepare/Play span trees as JSON),
// /debug/trace?id=<trace_id> (every retained server-side span of one
// wire-propagated trace — the ID a `dcsr-play -trace` client prints)
// and the standard /debug/pprof endpoints; structured logs go to
// stderr. Without it (the default) behaviour and output are unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/obs"
	"dcsr/internal/splitter"
	"dcsr/internal/transport"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

func main() {
	in := flag.String("in", "", "artifact directory (or comma-separated directories) from dcsr-prepare")
	listen := flag.String("listen", "127.0.0.1:8090", "TCP listen address")
	genreName := flag.String("genre", "", "prepare synthetic clips of these comma-separated genres instead of loading -in")
	w := flag.Int("w", 80, "frame width for -genre mode")
	h := flag.Int("h", 48, "frame height for -genre mode")
	seed := flag.Int64("seed", 7, "seed for -genre mode")
	qp := flag.Int("qp", 51, "encoder QP for -genre mode")
	steps := flag.Int("steps", 300, "training steps for -genre mode")
	int8Flag := flag.Bool("int8", false, "for -genre mode: run the quantize_int8 calibration stage so gated clusters serve on the int8 kernels (artifacts from dcsr-prepare -int8 carry this through -in already)")
	deltaFlag := flag.Bool("delta", false, "for -genre mode: run the delta_encode stage so gated clusters ship as backbone + dcW5 deltas (artifacts from dcsr-prepare -delta carry this through -in already)")
	obsAddr := flag.String("obs-addr", "", "debug HTTP sidecar address for /metrics, /debug/trace and pprof (off when empty)")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory for -genre mode: an interrupted Prepare resumes from its last completed stage on restart")
	maxInflight := flag.Int("max-inflight", 0, "admission control: concurrently served requests across all connections; excess load is shed with a typed retry-after (0 = unlimited)")
	maxClients := flag.Int("max-clients", 0, "admission control: accepted connections; over-capacity dials get one typed retry-after and are closed (0 = unlimited)")
	flag.Parse()

	// One SIGINT cancels whatever is running: an in-flight Prepare stops
	// within a training step (resumable via -checkpoint), a serving
	// origin drains gracefully. A second SIGINT kills the process the
	// usual way (the handler is only registered once).
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		signal.Stop(sig)
		fmt.Println("\ninterrupted")
		cancel()
	}()

	// Observability is always collected (it is nearly free) but only
	// exposed — and logged — when the sidecar is enabled.
	o := obs.New()
	if *obsAddr != "" {
		o.Log = obs.NewLogger(os.Stderr, obs.LevelInfo)
	}
	// Pre-register the stable metric surface so /metrics always lists
	// the core series, even before any traffic or playback.
	for _, name := range []string{
		"transport_requests_total", "transport_bytes_in_total",
		"transport_bytes_out_total", "transport_not_found_total",
		"cache_hits_total", "cache_misses_total",
	} {
		//lint:allow metricnames pre-registration loop over the documented literal names in the slice above; each is pinned to docs at its real call site
		o.Counter(name)
	}

	// Every -in directory and every -genre clip becomes one hosted
	// video; the first is the default for clients that never select a
	// digest. Sources are a pair of (label, prepared stream).
	type source struct {
		label string
		prep  *core.Prepared
	}
	var sources []source
	if *in == "" && *genreName == "" {
		fmt.Fprintln(os.Stderr, "dcsr-serve: one of -in or -genre is required")
		flag.Usage()
		os.Exit(2)
	}
	if *in != "" {
		for _, dir := range strings.Split(*in, ",") {
			dir = strings.TrimSpace(dir)
			prep, err := core.Load(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
				os.Exit(1)
			}
			sources = append(sources, source{dir, prep})
		}
	}
	if *genreName != "" {
		names := strings.Split(*genreName, ",")
		for i, name := range names {
			name = strings.TrimSpace(name)
			var genre video.Genre
			found := false
			for _, g := range video.AllGenres() {
				if g.String() == name {
					genre, found = g, true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "dcsr-serve: unknown genre %q\n", name)
				os.Exit(2)
			}
			// Offset the seed per clip so repeated genres still produce
			// content-distinct videos (registration rejects duplicates).
			cseed := *seed + int64(i)
			gc := video.GenreConfig(genre, *w, *h, cseed)
			gc.MinFrames, gc.MaxFrames = 5, 9
			clip := video.Generate(gc)
			fmt.Printf("preparing in-process: %s\n", clip)
			cp := *checkpoint
			if cp != "" && len(names) > 1 {
				cp = filepath.Join(cp, fmt.Sprintf("%s-%d", name, i))
			}
			prep, err := core.PrepareCtx(ctx, clip.YUVFrames(), clip.FPS, core.ServerConfig{
				QP:            *qp,
				Split:         splitter.Config{Threshold: 14, MinLen: 3},
				VAE:           vae.Config{ImgSize: 16, LatentDim: 8, BaseCh: 4},
				VAETrain:      vae.TrainOptions{Epochs: 25, BatchSize: 4, Seed: cseed},
				MicroConfig:   edsr.Config{Filters: 8, ResBlocks: 2},
				Train:         edsr.TrainOptions{Steps: *steps, BatchSize: 2, PatchSize: 16},
				Quant:         core.QuantConfig{Enabled: *int8Flag},
				Delta:         core.DeltaConfig{Enabled: *deltaFlag},
				Seed:          cseed,
				CheckpointDir: cp,
				Obs:           o,
			})
			if err != nil {
				if errors.Is(err, context.Canceled) && *checkpoint != "" {
					fmt.Printf("prepare interrupted; completed stages are checkpointed in %s — rerun to resume\n", *checkpoint)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
				os.Exit(1)
			}
			sources = append(sources, source{name, prep})
		}
	}

	srv := transport.NewFleetServer()
	srv.Obs = o
	srv.Log = o.Log
	srv.Admission = transport.AdmissionConfig{
		MaxInflight: *maxInflight,
		MaxConns:    *maxClients,
	}
	for _, src := range sources {
		digest, err := srv.Register(src.prep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-serve: registering %s: %v\n", src.label, err)
			os.Exit(1)
		}
		fmt.Printf("registered %s: %d segments + %d micro models, digest %s\n",
			src.label, len(src.prep.Segments), len(src.prep.Models), digest)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d video(s) on %s (ctrl-c to stop)\n", len(sources), ln.Addr())
	if *obsAddr != "" {
		obsLn, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-serve: obs sidecar: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("obs sidecar on http://%s (/metrics /debug/trace /debug/pprof/)\n", obsLn.Addr())
		go func() {
			if err := http.Serve(obsLn, o.Handler()); err != nil {
				o.Log.Error("obs sidecar stopped", "err", err)
			}
		}()
	}

	go func() {
		<-ctx.Done()
		fmt.Println("shutting down (draining connections, 5s grace)")
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-serve: shutdown: %v\n", err)
		}
	}()
	// Shutdown closes the listener, so Serve's accept error wraps
	// net.ErrClosed on a clean drain.
	if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
	}
}
