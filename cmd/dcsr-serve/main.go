// Command dcsr-serve is the dcSR origin server: it loads an artifact
// produced by dcsr-prepare (or prepares one in-process from a synthetic
// clip) and serves the manifest, per-segment sub-streams and micro models
// to dcsr-play clients over TCP.
//
// Usage:
//
//	dcsr-serve -in /tmp/video1 -listen 127.0.0.1:8090
//	dcsr-serve -genre sports -listen 127.0.0.1:8090   # prepare in-process
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/splitter"
	"dcsr/internal/transport"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

func main() {
	in := flag.String("in", "", "artifact directory from dcsr-prepare")
	listen := flag.String("listen", "127.0.0.1:8090", "TCP listen address")
	genreName := flag.String("genre", "", "prepare a synthetic clip of this genre instead of loading -in")
	w := flag.Int("w", 80, "frame width for -genre mode")
	h := flag.Int("h", 48, "frame height for -genre mode")
	seed := flag.Int64("seed", 7, "seed for -genre mode")
	qp := flag.Int("qp", 51, "encoder QP for -genre mode")
	steps := flag.Int("steps", 300, "training steps for -genre mode")
	flag.Parse()

	var prep *core.Prepared
	var err error
	switch {
	case *in != "":
		prep, err = core.Load(*in)
	case *genreName != "":
		var genre video.Genre
		found := false
		for _, g := range video.AllGenres() {
			if g.String() == *genreName {
				genre, found = g, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "dcsr-serve: unknown genre %q\n", *genreName)
			os.Exit(2)
		}
		gc := video.GenreConfig(genre, *w, *h, *seed)
		gc.MinFrames, gc.MaxFrames = 5, 9
		clip := video.Generate(gc)
		fmt.Printf("prepared in-process: %s\n", clip)
		prep, err = core.Prepare(clip.YUVFrames(), clip.FPS, core.ServerConfig{
			QP:          *qp,
			Split:       splitter.Config{Threshold: 14, MinLen: 3},
			VAE:         vae.Config{ImgSize: 16, LatentDim: 8, BaseCh: 4},
			VAETrain:    vae.TrainOptions{Epochs: 25, BatchSize: 4, Seed: *seed},
			MicroConfig: edsr.Config{Filters: 8, ResBlocks: 2},
			Train:       edsr.TrainOptions{Steps: *steps, BatchSize: 2, PatchSize: 16},
			Seed:        *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "dcsr-serve: one of -in or -genre is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
		os.Exit(1)
	}

	srv, err := transport.NewServer(prep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d segments + %d micro models on %s (ctrl-c to stop)\n",
		len(prep.Segments), len(prep.Models), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil && err != net.ErrClosed {
		fmt.Fprintf(os.Stderr, "dcsr-serve: %v\n", err)
	}
}
