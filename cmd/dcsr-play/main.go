// Command dcsr-play simulates client-side dcSR playback of an artifact
// produced by dcsr-prepare: it walks the streaming session (downloading
// segments and micro models with caching per the paper's Algorithm 1) and
// decodes the stream with each segment's micro model patched into the
// decoder's I-frame enhancement hook.
//
// When the original clip parameters are given (-genre/-w/-h/-seed matching
// the prepare invocation), it also reports PSNR/SSIM against the pristine
// source and against the unenhanced LOW playback.
//
// With -addr it streams from a dcsr-serve origin instead, where the link
// can be shaped (-rate), faults can be injected (-fault-drop,
// -fault-delay, -fault-seed) and the client's fault tolerance configured
// (-retries, -timeout); see docs/OPERATIONS.md. Against a multi-video
// origin, -list-videos prints the hosted directory and -video <digest>
// routes the playback at one hosted video (docs/SERVING.md).
//
// -trace prints the playback's span tree as JSON when it finishes. Over
// -addr the client also propagates its trace context on the wire, so the
// printed trace ID can be looked up on the origin's observability
// endpoint (`/debug/trace?id=<trace_id>`) to see the same session from
// the server's side, attempt by attempt.
//
// Usage:
//
//	dcsr-play -in /tmp/video1 -genre news -w 80 -h 48 -seed 7
//	dcsr-play -addr :8990 -rate 65536 -fault-drop 0.2 -retries 3 -timeout 2s
//	dcsr-play -addr :8990 -retries 2 -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/faultnet"
	"dcsr/internal/obs"
	"dcsr/internal/quality"
	"dcsr/internal/transport"
	"dcsr/internal/video"
)

func main() {
	in := flag.String("in", "", "artifact directory from dcsr-prepare")
	addr := flag.String("addr", "", "stream from a dcsr-serve origin instead of -in (host:port)")
	rate := flag.Float64("rate", 0, "simulated downlink bytes/s when using -addr (0 = unthrottled)")
	genreName := flag.String("genre", "", "genre used at prepare time (enables quality metrics)")
	w := flag.Int("w", 80, "frame width used at prepare time")
	h := flag.Int("h", 48, "frame height used at prepare time")
	seed := flag.Int64("seed", 7, "seed used at prepare time")
	noCache := flag.Bool("no-cache", false, "disable micro-model caching (ablation)")
	noInt8 := flag.Bool("no-int8", false, "force float32 enhancement even for models the manifest advertises as int8-calibrated (precision ablation)")
	cacheBudget := flag.Int64("cache-budget", 0, "micro-model cache budget in bytes (0 = unbounded; past it the LRU model is evicted and lazily re-downloaded)")
	faultDrop := flag.Float64("fault-drop", 0, "with -addr: probability of dropping a response (fault injection)")
	faultDelay := flag.Duration("fault-delay", 0, "with -addr: inject this extra latency into every response")
	faultSeed := flag.Int64("fault-seed", 1, "with -addr: fault-injection PRNG seed")
	retries := flag.Int("retries", 0, "with -addr: retry budget per request (0 = fail fast)")
	timeout := flag.Duration("timeout", 0, "with -addr: per-request deadline (0 = none)")
	trace := flag.Bool("trace", false, "print the playback's span tree; with -addr the trace ID is queryable on the origin's /debug/trace?id=")
	videoDigest := flag.String("video", "", "with -addr: play the hosted video with this content digest instead of the origin's default")
	listVideos := flag.Bool("list-videos", false, "with -addr: list the origin's hosted videos (digest, segments, models, bytes) and exit")
	flag.Parse()

	if *addr != "" {
		playFromNetwork(netOptions{
			addr: *addr, rate: *rate,
			faultDrop: *faultDrop, faultDelay: *faultDelay, faultSeed: *faultSeed,
			retries: *retries, timeout: *timeout, cacheBudget: *cacheBudget,
			trace: *trace, video: *videoDigest, listVideos: *listVideos,
			noInt8: *noInt8,
		})
		return
	}
	if *videoDigest != "" || *listVideos {
		fmt.Fprintln(os.Stderr, "dcsr-play: -video and -list-videos need -addr (digest routing is a serving feature)")
		os.Exit(2)
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dcsr-play: one of -in or -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	prep, err := core.Load(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded artifact: %d segments, %d micro models (%s), stream %d bytes\n",
		len(prep.Segments), len(prep.Models), prep.MicroConfig, prep.Manifest.TotalVideoBytes())

	player := core.NewPlayer(prep)
	player.UseCache = !*noCache
	player.Int8 = !*noInt8
	player.CacheBudget = *cacheBudget
	var o *obs.Obs
	if *trace {
		o = obs.New()
		player.Obs = o
	}
	res, err := player.Play()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
		os.Exit(1)
	}
	printTraces(o)
	fmt.Printf("decoded %d frames (%d I, %d P, %d B), %d I frames enhanced (%d on the int8 path)\n",
		res.Decode.Frames(), res.Decode.IFrames, res.Decode.PFrames, res.Decode.BFrames,
		res.Decode.Enhanced, res.Decode.EnhancedInt8)
	fmt.Printf("downloaded: video %d B + models %d B = %d B (%d model downloads, %d cache hits)\n",
		res.Session.VideoBytes, res.Session.ModelBytes, res.TotalBytes(),
		res.Session.Downloads, res.Session.CacheHits)
	if res.BackboneBytes > 0 || res.DeltaModelBytes > 0 {
		fmt.Printf("model stream: backbone %d B + deltas %d B + full %d B\n",
			res.BackboneBytes, res.DeltaModelBytes, res.FullModelBytes)
	}
	if res.Evictions > 0 {
		fmt.Printf("cache budget %d B: %d evictions, %d B resident at end\n",
			*cacheBudget, res.Evictions, res.CacheBytes)
	}

	if *genreName == "" {
		return
	}
	var genre video.Genre
	found := false
	for _, g := range video.AllGenres() {
		if g.String() == *genreName {
			genre, found = g, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "dcsr-play: unknown genre %q\n", *genreName)
		os.Exit(2)
	}
	gc := video.GenreConfig(genre, *w, *h, *seed)
	gc.MinFrames, gc.MaxFrames = 5, 9
	clip := video.Generate(gc)
	orig := clip.YUVFrames()
	if len(orig) != len(res.Frames) {
		fmt.Fprintf(os.Stderr, "dcsr-play: regenerated clip has %d frames, artifact %d — parameters do not match prepare\n",
			len(orig), len(res.Frames))
		os.Exit(1)
	}
	lowPlayer := core.NewPlayer(prep)
	lowPlayer.Enhance = false
	lowRes, err := lowPlayer.Play()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
		os.Exit(1)
	}
	var ePSNR, eSSIM, lPSNR, lSSIM float64
	for i := range orig {
		ePSNR += quality.PSNRYUV(orig[i], res.Frames[i])
		eSSIM += quality.SSIMYUV(orig[i], res.Frames[i])
		lPSNR += quality.PSNRYUV(orig[i], lowRes.Frames[i])
		lSSIM += quality.SSIMYUV(orig[i], lowRes.Frames[i])
	}
	n := float64(len(orig))
	fmt.Printf("quality:  LOW  %.2f dB PSNR, %.4f SSIM\n", lPSNR/n, lSSIM/n)
	fmt.Printf("          dcSR %.2f dB PSNR, %.4f SSIM  (%+.2f dB)\n", ePSNR/n, eSSIM/n, (ePSNR-lPSNR)/n)
}

// netOptions parameterizes a networked playback: link shaping, fault
// injection, and the client's fault-tolerance knobs.
type netOptions struct {
	addr        string
	rate        float64
	faultDrop   float64
	faultDelay  time.Duration
	faultSeed   int64
	retries     int
	timeout     time.Duration
	cacheBudget int64
	trace       bool
	video       string
	listVideos  bool
	noInt8      bool
}

// printTraces renders every retained root span as indented JSON, with a
// pointer from each trace ID to the origin-side lookup. A nil Obs (the
// -trace flag unset) prints nothing.
func printTraces(o *obs.Obs) {
	if o == nil {
		return
	}
	for _, root := range o.Trace.Traces() {
		if root.TraceID != "" {
			fmt.Printf("trace %s (server-side spans: /debug/trace?id=%s on the origin's -obs-addr)\n",
				root.TraceID, root.TraceID)
		}
	}
	if _, err := os.Stdout.Write(o.Trace.TracesJSON()); err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
	}
	fmt.Println()
}

// playFromNetwork streams from a dcsr-serve origin over TCP, optionally
// through a throttled and fault-injected link (see docs/OPERATIONS.md for
// how the knobs interact).
func playFromNetwork(opt netOptions) {
	var inj *faultnet.Injector
	if opt.faultDrop > 0 || opt.faultDelay > 0 {
		fc := faultnet.Config{Seed: opt.faultSeed, DropRate: opt.faultDrop}
		if opt.faultDelay > 0 {
			// A fixed extra latency on every response.
			fc.DelayRate = 1
			fc.Delay = opt.faultDelay
		}
		inj = faultnet.New(fc)
	}
	dial := func() (io.ReadWriter, error) {
		conn, err := net.Dial("tcp", opt.addr)
		if err != nil {
			return nil, err
		}
		var rw io.ReadWriter = conn
		if opt.rate > 0 {
			rw = transport.NewThrottledConn(rw, opt.rate)
		}
		if inj != nil {
			rw = inj.Wrap(rw)
		}
		return rw, nil
	}
	conn, err := dial()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
		os.Exit(1)
	}
	client := transport.NewClient(conn)
	client.Redial = dial
	client.CacheBudget = opt.cacheBudget
	client.NoInt8 = opt.noInt8
	client.Retry = transport.RetryPolicy{
		MaxRetries: opt.retries,
		Timeout:    opt.timeout,
		Seed:       opt.faultSeed,
	}
	var o *obs.Obs
	if opt.trace {
		o = obs.New()
		client.Obs = o
	}
	if opt.listVideos || opt.video != "" {
		// The first manifest negotiates mux framing, which digest
		// routing at non-default videos requires.
		if _, err := client.Manifest(); err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
			os.Exit(1)
		}
	}
	if opt.listVideos {
		dir, err := client.Videos()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%d video(s) hosted on %s:\n", len(dir.Videos), opt.addr)
		for _, v := range dir.Videos {
			def := ""
			if v.ID == 0 {
				def = "  (default)"
			}
			fmt.Printf("  %s  %d segments, %d models, %d B video + %d B models, %d fps%s\n",
				v.Digest, v.Segments, v.Models, v.VideoBytes, v.ModelBytes, v.FPS, def)
		}
		return
	}
	if opt.video != "" {
		if err := client.SelectVideoCtx(context.Background(), opt.video); err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("selected video %s\n", opt.video)
	}
	frames, stats, err := client.Play(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcsr-play: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("streamed %d frames over %d segments from %s\n", len(frames), stats.Segments, opt.addr)
	fmt.Printf("downloaded: video %d B + models %d B (%d model downloads, %d cache hits)\n",
		stats.VideoBytes, stats.ModelBytes, stats.ModelDownloads, stats.CacheHits)
	if stats.BackboneBytes > 0 || stats.DeltaModelBytes > 0 {
		fmt.Printf("model stream: backbone %d B + deltas %d B + full %d B\n",
			stats.BackboneBytes, stats.DeltaModelBytes, stats.FullModelBytes)
	}
	fmt.Printf("%d I frames enhanced in-loop (%d on the int8 path)\n",
		stats.Enhanced, stats.EnhancedInt8)
	if stats.Evictions > 0 {
		fmt.Printf("cache budget %d B: %d evictions, %d B resident at end\n",
			opt.cacheBudget, stats.Evictions, stats.CacheBytes)
	}
	if stats.DegradedSegments > 0 || client.Retries > 0 || client.Timeouts > 0 || client.Sheds > 0 {
		fmt.Printf("fault recovery: %d segments degraded (no SR), %d retries, %d timeouts, %d reconnects, %d sheds absorbed, %v stalled\n",
			stats.DegradedSegments, client.Retries, client.Timeouts, client.Reconnects, client.Sheds, client.StallTime)
	}
	printTraces(o)
}
