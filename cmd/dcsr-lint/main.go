// Command dcsr-lint runs the repository's static-analysis pass
// (internal/lint) over module packages and reports every invariant
// violation: undocumented or malformed metric names, nondeterminism in
// the deterministic packages, silently discarded errors, missing
// nil-receiver guards on obs handles, and unjoined goroutines. The
// analyzers and the //lint:allow suppression policy are catalogued in
// docs/LINTING.md.
//
// Usage:
//
//	dcsr-lint ./...
//	dcsr-lint -json ./internal/transport
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
// The same pass gates `go test` through TestLintRepo, so CI needs no
// separate toolchain; -json exists for future machine consumption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dcsr/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	verbose := flag.Bool("v", false, "also report degraded-analysis warnings (unresolvable imports)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dcsr-lint [-json] [-v] [packages]\n\npackages default to ./...; patterns support dir and dir/... forms\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	runner, err := lint.NewRunner(cwd)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := runner.Lint(patterns...)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, soft := range runner.Module.SoftErrors() {
			fmt.Fprintf(os.Stderr, "dcsr-lint: warning: %v\n", soft)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dcsr-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dcsr-lint: %v\n", err)
	os.Exit(2)
}
