// Command dcsr-lint runs the repository's static-analysis pass
// (internal/lint) over module packages and reports every invariant
// violation: undocumented or malformed metric names, nondeterminism in
// the deterministic packages, silently discarded errors, missing
// nil-receiver guards on obs handles, unjoined goroutines, lock-order
// cycles and leaked locks, lost context cancels, mixed atomic/plain
// field access, identity-compared sentinel errors, and leaked timers.
// The analyzers and the //lint:allow suppression policy are catalogued
// in docs/LINTING.md.
//
// Usage:
//
//	dcsr-lint ./...
//	dcsr-lint -json ./internal/transport
//	dcsr-lint -no-cache -parallel 4 -v ./...
//
// Packages are analyzed in parallel (bounded by -parallel, default
// GOMAXPROCS) against a content-hash diagnostic cache persisted under
// <module root>/.lintcache; -no-cache forces a full re-analysis. Output
// order is byte-identical regardless of either flag.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
// The same pass gates `go test` through TestLintRepo, so CI needs no
// separate toolchain; -json exists for future machine consumption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dcsr/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	verbose := flag.Bool("v", false, "report per-analyzer timings, cache stats, and degraded-analysis warnings")
	parallel := flag.Int("parallel", 0, "max packages analyzed concurrently (0 = GOMAXPROCS)")
	noCache := flag.Bool("no-cache", false, "ignore and do not update the diagnostic cache")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dcsr-lint [-json] [-v] [-parallel N] [-no-cache] [packages]\n\npackages default to ./...; patterns support dir and dir/... forms\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	runner, err := lint.NewRunner(cwd)
	if err != nil {
		fatal(err)
	}
	runner.Parallel = *parallel
	if !*noCache {
		runner.Cache = lint.OpenCache(runner.Module.Root)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	diags, err := runner.Lint(patterns...)
	if err != nil {
		fatal(err)
	}
	// A failed cache write never fails the lint: the next run just goes
	// cold again.
	if runner.Cache != nil {
		if err := runner.Cache.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "dcsr-lint: warning: %v\n", err)
		}
	}
	if *verbose {
		for _, soft := range runner.Module.SoftErrors() {
			fmt.Fprintf(os.Stderr, "dcsr-lint: warning: %v\n", soft)
		}
		printTimings(runner, time.Since(start))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dcsr-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// printTimings reports where the run's analysis time went, slowest
// analyzer first, plus the cache's contribution.
func printTimings(r *lint.Runner, total time.Duration) {
	timings := r.Timings()
	names := make([]string, 0, len(timings))
	for name := range timings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if timings[names[i]] != timings[names[j]] {
			return timings[names[i]] > timings[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "dcsr-lint: %-12s %10s\n", name, timings[name].Round(10*time.Microsecond))
	}
	if r.Cache != nil {
		hits, misses := r.Cache.Stats()
		fmt.Fprintf(os.Stderr, "dcsr-lint: cache        %d hit(s), %d miss(es)\n", hits, misses)
	}
	fmt.Fprintf(os.Stderr, "dcsr-lint: total        %10s\n", total.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dcsr-lint: %v\n", err)
	os.Exit(2)
}
