package dcsr_test

import (
	"encoding/binary"
	"io"
	"net"
	"sort"
	"testing"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/faultnet"
	"dcsr/internal/lint"
	"dcsr/internal/modelstore"
	"dcsr/internal/obs"
	"dcsr/internal/splitter"
	"dcsr/internal/transport"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// TestOperationsDocMetrics pins docs/OPERATIONS.md to the code: the set
// of metric names the documentation tabulates must equal — in both
// directions — the set of names a full pipeline run registers. The run
// covers prepare, local playback, a TCP serve with fault injection
// (drops, a timeout, degraded model fetches), a not-found request and an
// unknown opcode, so every stable metric is registered. The documented
// set comes from the same parser the lint pass uses (lint.DocMetricNames),
// so this test, dcsr-lint, and TestMetricSurfaceStatic can never disagree
// about what the table says.
func TestOperationsDocMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the pipeline; skipped in short mode")
	}
	documented, err := lint.DocMetricNames(".")
	if err != nil {
		t.Fatal(err)
	}

	// One shared bundle across every stage, so the snapshot at the end is
	// the union of everything the system can register.
	o := obs.New()
	clip := video.Generate(video.GenConfig{
		W: 80, H: 48, Seed: 23, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
	})
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, core.ServerConfig{
		QP:          51,
		Split:       splitter.Config{Threshold: 14, MinLen: 3},
		VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		VAETrain:    vae.TrainOptions{Epochs: 10, BatchSize: 4},
		MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
		Train:       edsr.TrainOptions{Steps: 60, BatchSize: 2, PatchSize: 16},
		// Quant registers the int8 gate counters; the player below then
		// registers the int8 enhance-latency window histogram. Delta
		// registers the delta gate counters and makes the manifest carry a
		// backbone, so wire playback below exercises the model-stream path
		// (the loose PSNR bound guarantees the gate accepts, so at least
		// one cluster really ships as a delta).
		Quant: core.QuantConfig{Enabled: true},
		Delta: core.DeltaConfig{Enabled: true, MaxPSNRDrop: 100},
		Seed:  1,
		Obs:   o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Manifest.Backbone == nil {
		t.Fatal("delta stage produced no backbone; doc-coverage run is incomplete")
	}

	// Chunk-level dedupe: a fleet store holding one video's backbone sees
	// the same chunks again when a later registration references them —
	// the second PutChunked dedupes every chunk
	// (modelstore_chunk_puts_total, then modelstore_chunk_hits_total).
	chunkStore := modelstore.NewMem()
	chunkStore.Obs = o
	bbPayload := prep.Models[prep.Manifest.Backbone.Label].Bytes
	for i := 0; i < 2; i++ {
		if _, err := modelstore.PutChunked(chunkStore, bbPayload); err != nil {
			t.Fatal(err)
		}
	}

	// Local playback: session accounting plus codec decode/enhance. The
	// unbounded cache registers the modelstore put/hit counters and the
	// resident-bytes gauge.
	player := core.NewPlayer(prep)
	player.Obs = o
	if _, err := player.Play(); err != nil {
		t.Fatal(err)
	}

	// Bounded playback: a budget that fits a single model forces LRU
	// evictions and lazy re-downloads (modelstore_evictions_total).
	bounded := core.NewPlayer(prep)
	bounded.Obs = o
	for _, sm := range prep.Models {
		bounded.CacheBudget = int64(len(sm.Bytes))
		break
	}
	if res, err := bounded.Play(); err != nil {
		t.Fatal(err)
	} else if res.Evictions == 0 {
		t.Fatal("bounded playback produced no evictions; doc-coverage run is incomplete")
	}

	// TCP serve (registers the open-conns gauge) with fault injection on
	// the client: the second request's response is delayed past the
	// deadline (timeout + reconnect + retry) and every full-model
	// response is dropped (degraded segments, fetch failures). One
	// delta-shipped cluster has its OpModelDelta responses eaten too, so
	// its assembly falls back to the (dropped) full-model path and
	// degrades, while the backbone fetch and the remaining deltas succeed
	// — firing the whole modelstream_* family in one session.
	dropLabel := -1
	for label, sm := range prep.Models {
		if sm.Delta != nil && sm.Delta.DeltaOK && label != prep.Manifest.Backbone.Label {
			dropLabel = label
			break
		}
	}
	if dropLabel < 0 {
		t.Fatal("no cluster shipped as a delta; doc-coverage run is incomplete")
	}
	srv, err := transport.NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	srv.Obs = o
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	inj := faultnet.New(faultnet.Config{
		Delay: 300 * time.Millisecond,
		Decide: func(i int, frame []byte) faultnet.Kind {
			if len(frame) >= 9 {
				switch frame[4] {
				case transport.OpModel:
					return faultnet.KindDrop
				case transport.OpModelDelta:
					if binary.BigEndian.Uint32(frame[5:9]) == uint32(dropLabel) {
						return faultnet.KindDrop
					}
				}
			}
			if i == 1 {
				return faultnet.KindDelay
			}
			return faultnet.KindNone
		},
	})
	dial := func() (io.ReadWriter, error) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		return inj.Wrap(conn), nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient(conn)
	client.Obs = o
	client.Redial = dial
	client.Retry = transport.RetryPolicy{
		MaxRetries: 1,
		BaseDelay:  time.Millisecond,
		MaxDelay:   2 * time.Millisecond,
		Timeout:    50 * time.Millisecond,
		Seed:       1,
	}
	if _, stats, err := client.Play(true); err != nil {
		t.Fatal(err)
	} else if stats.DegradedSegments == 0 {
		t.Fatal("fault schedule produced no degraded segments; doc-coverage run is incomplete")
	}
	if client.Timeouts == 0 {
		t.Error("fault schedule produced no timeout")
	}
	// Not-found path (never retried).
	if _, err := client.Segment(9999); err == nil {
		t.Fatal("fetching segment 9999 succeeded")
	}
	// Unknown opcode → transport_unknown_seconds on the server.
	rawConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rawConn.Write([]byte{'d', 'c', 'T', '1', 9, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var resp [5]byte
	if _, err := rawConn.Read(resp[:]); err != nil {
		t.Fatal(err)
	}
	rawConn.Close()

	// Admission shed: a server whose per-connection token bucket holds a
	// single token sheds the second request with a typed retry-after,
	// registering the shed counters on both sides (transport_shed_total,
	// its window twin, and transport_client_shed_total).
	shedSrv, err := transport.NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	shedSrv.Obs = o
	shedSrv.Admission = transport.AdmissionConfig{PerConnRate: 1e-9, PerConnBurst: 1}
	scc, scs := net.Pipe()
	shedDone := make(chan struct{})
	go func() { defer close(shedDone); _ = shedSrv.ServeConn(scs) }()
	shedClient := transport.NewClient(scc)
	shedClient.Obs = o
	if _, err := shedClient.Manifest(); err != nil {
		t.Fatal(err)
	}
	if _, err := shedClient.Segment(0); err == nil {
		t.Fatal("second request on a drained bucket succeeded")
	} else if _, ok := transport.IsRetryAfter(err); !ok {
		t.Fatalf("second request on a drained bucket: want retry-after, got %v", err)
	}
	scc.Close()
	<-shedDone
	scs.Close()

	// Quiesce: Close waits for every Serve-accepted handler to finish its
	// accounting before we snapshot the registry.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	snap := o.Metrics.Snapshot()
	registered := map[string]bool{}
	for name := range snap.Counters {
		registered[name] = true
	}
	for name := range snap.Gauges {
		registered[name] = true
	}
	for name := range snap.Histograms {
		registered[name] = true
	}
	for name := range snap.WindowedCounters {
		registered[name] = true
	}
	for name := range snap.WindowedHistograms {
		registered[name] = true
	}

	var missing, stale []string
	for name := range registered {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, name := range missing {
		t.Errorf("metric %s is registered by the pipeline but missing from docs/OPERATIONS.md", name)
	}
	for _, name := range stale {
		t.Errorf("docs/OPERATIONS.md documents %s but no pipeline stage registers it", name)
	}
}
