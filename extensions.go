package dcsr

import (
	"io"
	"net"

	"dcsr/internal/abr"
	"dcsr/internal/core"
	"dcsr/internal/faultnet"
	"dcsr/internal/lint"
	"dcsr/internal/nn"
	"dcsr/internal/transport"
)

// This file exposes the delivery-path and ABR extensions: streaming dcSR
// artifacts over real connections (the paper's SR-FFMPEG + streaming
// platform analog), SR-aware adaptive bitrate (paper §4), quantized model
// downloads, and artifact persistence.

// Network transport.
type (
	// StreamServer serves a prepared stream to concurrent clients.
	StreamServer = transport.Server
	// StreamClient fetches manifest/segments/models and plays them back.
	StreamClient = transport.Client
	// ThrottledConn rate-limits reads to emulate a constrained downlink.
	ThrottledConn = transport.ThrottledConn
)

// NewStreamServer packages a prepared stream for network serving.
func NewStreamServer(p *Prepared) (*StreamServer, error) { return transport.NewServer(p) }

// NewStreamClient wraps an established connection.
func NewStreamClient(conn io.ReadWriter) *StreamClient { return transport.NewClient(conn) }

// DialStream connects to a StreamServer over TCP.
func DialStream(addr string) (*StreamClient, net.Conn, error) { return transport.Dial(addr) }

// NewThrottledConn limits reads on conn to bytesPerSecond.
func NewThrottledConn(conn io.ReadWriter, bytesPerSecond float64) *ThrottledConn {
	return transport.NewThrottledConn(conn, bytesPerSecond)
}

// Fault tolerance (docs/OPERATIONS.md). Configure StreamClient.Retry
// with a RetryPolicy (and StreamClient.Redial to enable reconnects);
// failed model fetches degrade playback gracefully instead of killing
// the session.
type (
	// RetryPolicy is the client's retry/timeout/backoff configuration.
	RetryPolicy = transport.RetryPolicy
	// FaultInjector injects deterministic network faults for testing.
	FaultInjector = faultnet.Injector
	// FaultConfig parameterizes a FaultInjector (rates, script, hook).
	FaultConfig = faultnet.Config
	// FaultKind enumerates the injectable fault classes.
	FaultKind = faultnet.Kind
)

// Injectable fault classes.
const (
	FaultNone     = faultnet.KindNone
	FaultDrop     = faultnet.KindDrop
	FaultDelay    = faultnet.KindDelay
	FaultTruncate = faultnet.KindTruncate
	FaultError    = faultnet.KindError
)

// NewFaultInjector returns an injector whose Wrap method applies the
// configured fault schedule to any connection.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultnet.New(cfg) }

// IsNotFound reports whether a StreamClient error is an origin-side
// "not found" (never retried; see docs/OPERATIONS.md).
func IsNotFound(err error) bool { return transport.IsNotFound(err) }

// Adaptive bitrate (paper §4: trading network for compute capacity).
type (
	// Ladder is a multi-quality encode of one video.
	Ladder = abr.Ladder
	// BandwidthTrace is a piecewise-constant link profile.
	BandwidthTrace = abr.Trace
	// ABRPolicy selects a ladder level per segment.
	ABRPolicy = abr.Policy
	// ABRContext is the per-decision state a policy sees.
	ABRContext = abr.Context
	// SimOptions configures a streaming simulation.
	SimOptions = abr.SimOptions
	// SimResult is a simulated session outcome (QoE, rebuffering, bytes).
	SimResult = abr.Result
)

// ABR policies.
type (
	// PolicyRateBased is the classic throughput rule.
	PolicyRateBased = abr.RateBased
	// PolicyBufferBased maps buffer occupancy to levels (BOLA-shaped).
	PolicyBufferBased = abr.BufferBased
	// PolicySRAware scores levels by post-enhancement quality and counts
	// micro-model bytes — the dcSR-integrated ABR of paper §4.
	PolicySRAware = abr.SRAware
)

// BuildLadder encodes the video at each QP (strictly decreasing) and
// measures per-segment bytes and PSNR.
func BuildLadder(frames []*YUV, fps int, segs []Segment, qps []int) (*Ladder, error) {
	return abr.BuildLadder(frames, fps, segs, qps)
}

// ConstantTrace is a fixed-rate link of the given duration.
func ConstantTrace(bytesPerSecond, duration float64) *BandwidthTrace {
	return abr.ConstantTrace(bytesPerSecond, duration)
}

// MarkovTrace is a two-state good/bad wireless link model.
func MarkovTrace(goodBps, badBps, pSwitch, duration float64, seed int64) *BandwidthTrace {
	return abr.MarkovTrace(goodBps, badBps, pSwitch, duration, seed)
}

// SimulateABR streams the ladder through the trace under the policy.
func SimulateABR(l *Ladder, tr *BandwidthTrace, p ABRPolicy, opts SimOptions) (*SimResult, error) {
	return abr.Simulate(l, tr, p, opts)
}

// Model download precision.
type Quantization = nn.Quantization

// Supported model download precisions.
const (
	QuantFP32 = nn.QuantNone
	QuantFP16 = nn.QuantF16
	QuantInt8 = nn.QuantInt8
)

// Artifact persistence (what cmd/dcsr-prepare writes and cmd/dcsr-play
// reads).

// SaveArtifact writes a prepared stream, manifest and models to dir.
func SaveArtifact(p *Prepared, dir string) error { return p.Save(dir) }

// LoadArtifact reads an artifact previously written by SaveArtifact.
func LoadArtifact(dir string) (*Prepared, error) { return core.Load(dir) }

// Static analysis (docs/LINTING.md). The same pass gates `go test`
// through TestLintRepo and `make lint` through cmd/dcsr-lint.

// Diagnostic is one static-analysis finding: file/line/column position,
// the reporting check's name, and the message.
type Diagnostic = lint.Diagnostic

// Lint runs the repository's static-analysis pass — the metricnames,
// nodeterm, errcheck, nilsafe, goleak and ctxcheck analyzers with //lint:allow
// suppression applied — over the Go module containing dir and returns
// the surviving diagnostics sorted by position. An empty result means
// the tree upholds every machine-checked invariant.
func Lint(dir string) ([]Diagnostic, error) { return lint.Lint(dir) }
