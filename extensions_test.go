package dcsr_test

import (
	"net"
	"testing"

	"dcsr"
)

func smallPrepared(t *testing.T) (*dcsr.Prepared, []*dcsr.YUV) {
	t.Helper()
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 64, H: 48, Seed: 91, NumScenes: 2, TotalCues: 4, MinFrames: 5, MaxFrames: 7,
	})
	frames := clip.YUVFrames()
	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          51,
		VAE:         dcsr.VAEConfig{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		MicroConfig: dcsr.EDSRConfig{Filters: 4, ResBlocks: 1},
		Train:       dcsr.TrainOptions{Steps: 40, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prep, frames
}

func TestPublicTransportAPI(t *testing.T) {
	prep, frames := smallPrepared(t)
	srv, err := dcsr.NewStreamServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	client, conn, err := dcsr.DialStream(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames) || stats.Enhanced == 0 {
		t.Fatalf("streamed %d frames, %d enhanced", len(out), stats.Enhanced)
	}
}

func TestPublicABRAPI(t *testing.T) {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 64, H: 48, Seed: 93, NumScenes: 2, TotalCues: 5, MinFrames: 5, MaxFrames: 7,
	})
	frames := clip.YUVFrames()
	segs := dcsr.SplitVideo(frames, dcsr.SplitConfig{Threshold: 14, MinLen: 3})
	ladder, err := dcsr.BuildLadder(frames, clip.FPS, segs, []int{51, 40})
	if err != nil {
		t.Fatal(err)
	}
	trace := dcsr.MarkovTrace(1e5, 2e4, 0.1, 300, 5)
	res, err := dcsr.SimulateABR(ladder, trace, dcsr.PolicyRateBased{}, dcsr.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != ladder.Segments {
		t.Fatalf("simulated %d segments of %d", len(res.Log), ladder.Segments)
	}
}

func TestPublicArtifactAPI(t *testing.T) {
	prep, _ := smallPrepared(t)
	dir := t.TempDir()
	if err := dcsr.SaveArtifact(prep, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := dcsr.LoadArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K != prep.K {
		t.Fatalf("loaded K=%d, want %d", loaded.K, prep.K)
	}
}

func TestQuantizationConstants(t *testing.T) {
	names := map[dcsr.Quantization]string{
		dcsr.QuantFP32: "fp32",
		dcsr.QuantFP16: "fp16",
		dcsr.QuantInt8: "int8",
	}
	for q, want := range names {
		if q.String() != want {
			t.Errorf("quantization %d named %q, want %q", int(q), q.String(), want)
		}
	}
}
