// Package dcsr is the public API of this repository's reproduction of
// "dcSR: Practical Video Quality Enhancement Using Data-Centric Super
// Resolution" (Baek, Dasari, Das, Ryoo — CoNEXT 2021).
//
// dcSR replaces the single bulky per-video super-resolution model of
// NAS/NEMO-style systems with a handful of micro SR models, one per
// cluster of visually similar video segments, and applies them to I frames
// inside the video decoder so the enhancement propagates to P and B frames
// through motion-compensated prediction.
//
// # Server side
//
//	clip := dcsr.GenerateVideo(dcsr.GenreConfig(dcsr.GenreSports, 160, 96, 1))
//	prep, err := dcsr.Prepare(clip.YUVFrames(), clip.FPS, dcsr.ServerConfig{...})
//
// Prepare splits the video at scene cuts, encodes a low-quality stream,
// extracts VAE features from segment I-frames, clusters them with global
// k-means (K chosen by silhouette coefficient under the model-size
// constraint), and trains one micro EDSR model per cluster.
//
// # Client side
//
//	player := dcsr.NewPlayer(prep)
//	result, err := player.Play()
//
// Play simulates the streaming session (downloading segments, fetching
// micro models on cache miss per the paper's Algorithm 1) and decodes the
// stream with each segment's micro model patched into the decoder's
// I-frame enhancement hook.
//
// Everything is pure Go with no dependencies outside the standard library.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package dcsr

import (
	"context"
	"io"

	"dcsr/internal/baseline"
	"dcsr/internal/cluster"
	"dcsr/internal/codec"
	"dcsr/internal/core"
	"dcsr/internal/device"
	"dcsr/internal/edsr"
	"dcsr/internal/modelstore"
	"dcsr/internal/obs"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/stream"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// Core pipeline (the paper's contribution).
type (
	// ServerConfig parameterizes the server-side dcSR pipeline.
	ServerConfig = core.ServerConfig
	// Prepared is the server pipeline output: stream + manifest + models.
	Prepared = core.Prepared
	// Player is the client-side dcSR playback engine.
	Player = core.Player
	// PlayResult reports a playback pass (frames, bytes, cache behaviour).
	PlayResult = core.PlayResult
	// SegmentModel is one trained micro model with its serialized weights.
	SegmentModel = core.SegmentModel
)

// Prepare runs the full server-side dcSR pipeline over raw video frames.
func Prepare(frames []*YUV, fps int, cfg ServerConfig) (*Prepared, error) {
	return core.Prepare(frames, fps, cfg)
}

// PrepareCtx is Prepare with cancellation and checkpoint/resume: ctx is
// honoured between pipeline stages, between per-cluster training jobs,
// and inside each training loop (one step granularity), and a
// ServerConfig.CheckpointDir lets an interrupted run resume from its
// last completed work.
func PrepareCtx(ctx context.Context, frames []*YUV, fps int, cfg ServerConfig) (*Prepared, error) {
	return core.PrepareCtx(ctx, frames, fps, cfg)
}

// NewPlayer builds a client-side player over a prepared stream.
func NewPlayer(p *Prepared) *Player { return core.NewPlayer(p) }

// FindMinimumWorkingModel exposes the Appendix A.1 configuration search.
func FindMinimumWorkingModel(low, high []*RGB, cfg ServerConfig) (EDSRConfig, error) {
	return core.FindMinimumWorkingModel(low, high, cfg)
}

// Video substrate.
type (
	// YUV is a planar 4:2:0 frame (decoder/DPB format).
	YUV = video.YUV
	// RGB is an interleaved RGB frame (SR model format).
	RGB = video.RGB
	// Clip is a generated synthetic video with ground-truth scene labels.
	Clip = video.Clip
	// GenConfig parameterizes synthetic video generation.
	GenConfig = video.GenConfig
	// Cue schedules one scene for a number of frames in a GenConfig.
	Cue = video.Cue
	// Genre selects an evaluation content preset.
	Genre = video.Genre
)

// Evaluation genres (the paper's "6 representative videos").
const (
	GenreSports      = video.GenreSports
	GenreMusic       = video.GenreMusic
	GenreDocumentary = video.GenreDocumentary
	GenreGaming      = video.GenreGaming
	GenreNews        = video.GenreNews
	GenreAnimation   = video.GenreAnimation
)

// GenerateVideo renders a deterministic synthetic clip.
func GenerateVideo(cfg GenConfig) *Clip { return video.Generate(cfg) }

// GenreConfig returns the generation preset for one evaluation genre.
func GenreConfig(g Genre, w, h int, seed int64) GenConfig { return video.GenreConfig(g, w, h, seed) }

// AllGenres lists the six evaluation genres.
func AllGenres() []Genre { return video.AllGenres() }

// Codec substrate.
type (
	// EncoderConfig controls the H.264-style encoder (QP = CRF knob).
	EncoderConfig = codec.EncoderConfig
	// Stream is a coded video sequence.
	Stream = codec.Stream
	// Decoder decodes a Stream, optionally enhancing I frames in the DPB.
	Decoder = codec.Decoder
	// FrameEnhancer is the decoder's I-frame enhancement hook.
	FrameEnhancer = codec.FrameEnhancer
	// EnhancerFunc adapts a function to FrameEnhancer.
	EnhancerFunc = codec.EnhancerFunc
)

// EncodeVideo compresses frames with the built-in codec. forceI marks
// frames that must be coded as I frames (nil for automatic GOPs).
func EncodeVideo(frames []*YUV, forceI []bool, fps int, cfg EncoderConfig) (*Stream, error) {
	return codec.Encode(frames, forceI, fps, cfg)
}

// SR models.
type (
	// EDSRConfig selects an EDSR architecture (n_f × n_RB, scale).
	EDSRConfig = edsr.Config
	// EDSRModel is a trainable/inferable EDSR instance.
	EDSRModel = edsr.Model
	// TrainOptions controls EDSR training.
	TrainOptions = edsr.TrainOptions
	// Pair is one (low, high) training example.
	Pair = edsr.Pair
	// VAEConfig sizes the feature-extraction VAE.
	VAEConfig = vae.Config
)

// Paper model configurations (§4 and Table 1).
var (
	// ConfigDCSR1 is dcSR-1: 4 ResBlocks × 16 filters.
	ConfigDCSR1 = edsr.ConfigDCSR1
	// ConfigDCSR2 is dcSR-2: 12 ResBlocks × 16 filters.
	ConfigDCSR2 = edsr.ConfigDCSR2
	// ConfigDCSR3 is dcSR-3: 16 ResBlocks × 16 filters.
	ConfigDCSR3 = edsr.ConfigDCSR3
	// ConfigBig is the NAS/NEMO one-model-per-video configuration.
	ConfigBig = edsr.ConfigBig
)

// NewEDSR builds an EDSR model with deterministic initialization.
func NewEDSR(cfg EDSRConfig, seed int64) (*EDSRModel, error) { return edsr.New(cfg, seed) }

// Baselines.
type (
	// BaselineMethod selects NAS, NEMO or LOW.
	BaselineMethod = baseline.Method
	// BaselineConfig parameterizes baseline preparation.
	BaselineConfig = baseline.Config
	// BaselinePrepared is a trained baseline for one video.
	BaselinePrepared = baseline.Prepared
)

// The comparison methods of the paper's evaluation.
const (
	MethodNAS  = baseline.NAS
	MethodNEMO = baseline.NEMO
	MethodLow  = baseline.Low
)

// PrepareBaseline trains a NAS/NEMO baseline over the same low-quality
// stream dcSR uses, for a like-for-like comparison.
func PrepareBaseline(m BaselineMethod, frames []*YUV, st *Stream, cfg BaselineConfig) (*BaselinePrepared, error) {
	return baseline.Prepare(m, frames, st, cfg)
}

// Quality metrics.

// PSNR returns peak signal-to-noise ratio (dB) between RGB frames.
func PSNR(a, b *RGB) float64 { return quality.PSNR(a, b) }

// SSIM returns the structural similarity index between RGB frames.
func SSIM(a, b *RGB) float64 { return quality.SSIM(a, b) }

// PSNRYUV returns luma PSNR between YUV frames.
func PSNRYUV(a, b *YUV) float64 { return quality.PSNRYUV(a, b) }

// SSIMYUV returns luma SSIM between YUV frames.
func SSIMYUV(a, b *YUV) float64 { return quality.SSIMYUV(a, b) }

// Device modelling (paper Figs 1, 8, 12).
type (
	// DeviceProfile is a calibrated client device model.
	DeviceProfile = device.Profile
	// Resolution is a named frame size (720p/1080p/4K).
	Resolution = device.Resolution
	// PlaybackSpec describes one playback configuration to evaluate.
	PlaybackSpec = device.PlaybackSpec
)

// Calibrated devices and standard resolutions.
var (
	DeviceJetsonNX = device.JetsonNX
	DeviceLaptop   = device.Laptop
	DeviceDesktop  = device.Desktop
	Res720p        = device.Res720p
	Res1080p       = device.Res1080p
	Res4K          = device.Res4K
)

// Splitting, clustering, streaming.
type (
	// SplitConfig tunes shot-based scene-cut detection.
	SplitConfig = splitter.Config
	// Segment is one variable-length shot segment.
	Segment = splitter.Segment
	// Manifest maps segments to models with byte-accurate sizes.
	Manifest = stream.Manifest
	// Session simulates a client download session with model caching.
	Session = stream.Session
	// ClusterResult is a k-means clustering outcome.
	ClusterResult = cluster.Result
)

// SplitVideo partitions frames into variable-length shot segments.
func SplitVideo(frames []*YUV, cfg SplitConfig) []Segment { return splitter.Split(frames, cfg) }

// NewSession starts a download session over a manifest; useCache enables
// the paper's Algorithm 1 micro-model caching.
func NewSession(m *Manifest, useCache bool) (*Session, error) { return stream.NewSession(m, useCache) }

// NewSessionWithBudget starts a download session whose model cache holds
// at most budget bytes of serialized weights (budget < 0 → unbounded,
// 0 → caching disabled, > 0 → LRU eviction past the budget).
func NewSessionWithBudget(m *Manifest, budget int64) (*Session, error) {
	return stream.NewSessionWithBudget(m, budget)
}

// Model storage (internal/modelstore): content-addressed stores for
// trained weights — identical models dedupe by digest — and the
// byte-budgeted LRU cache behind Session, Player.CacheBudget and
// StreamClient.CacheBudget.
type (
	// ModelDigest is the SHA-256 content address of serialized weights.
	ModelDigest = modelstore.Digest
	// ModelStore is the content-addressed storage interface.
	ModelStore = modelstore.Store
	// MemModelStore keeps objects in memory.
	MemModelStore = modelstore.Mem
	// DiskModelStore keeps one file per object under a directory.
	DiskModelStore = modelstore.Disk
	// BoundedModelCache is a byte-budgeted LRU over model payloads.
	BoundedModelCache = modelstore.BoundedCache
)

// DigestModel computes the content address of serialized model weights.
func DigestModel(payload []byte) ModelDigest { return modelstore.DigestOf(payload) }

// NewMemModelStore returns an empty in-memory model store.
func NewMemModelStore() *MemModelStore { return modelstore.NewMem() }

// NewDiskModelStore opens (creating if needed) a disk-backed model store
// rooted at dir.
func NewDiskModelStore(dir string) (*DiskModelStore, error) { return modelstore.NewDisk(dir) }

// NewBoundedModelCache returns an empty cache holding at most budget
// bytes (budget < 0 → unbounded, 0 → disabled).
func NewBoundedModelCache(budget int64) *BoundedModelCache {
	return modelstore.NewBoundedCache(budget)
}

// Observability. An Obs bundle threads metrics, stage tracing and
// logging through ServerConfig.Obs, Player.Obs and the transport; all
// handles are nil-safe, so the zero value (nil) disables everything at
// no cost. The metric names are a stable surface — see the obs package
// doc and the Observability sections of README.md / DESIGN.md.
type (
	// Obs bundles a metrics registry, a span tracer and a logger.
	Obs = obs.Obs
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every metric.
	MetricsSnapshot = obs.Snapshot
	// Tracer records bounded trees of pipeline stage spans.
	Tracer = obs.Tracer
	// Span is one timed stage; children nest concurrently-safe.
	Span = obs.Span
	// Logger is a leveled logfmt-style structured logger.
	Logger = obs.Logger
	// LogLevel orders Debug < Info < Warn < Error.
	LogLevel = obs.Level
)

// Log levels for NewLogger.
const (
	LevelDebug = obs.LevelDebug
	LevelInfo  = obs.LevelInfo
	LevelWarn  = obs.LevelWarn
	LevelError = obs.LevelError
)

// NewObs returns a live observability bundle (metrics + tracer, no
// logger). Assign a Logger to its Log field to enable logging.
func NewObs() *Obs { return obs.New() }

// NewLogger returns a structured logger writing lines at or above min
// to w. A nil *Logger is a valid no-op logger.
func NewLogger(w io.Writer, min LogLevel) *Logger { return obs.NewLogger(w, min) }
