package dcsr_test

import (
	"testing"

	"dcsr"
)

// TestPublicAPIEndToEnd exercises the documented public surface exactly the
// way the quickstart example does: generate → prepare → play → measure.
func TestPublicAPIEndToEnd(t *testing.T) {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 64, H: 48, Seed: 1, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
	})
	frames := clip.YUVFrames()

	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          47,
		VAE:         dcsr.VAEConfig{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		MicroConfig: dcsr.EDSRConfig{Filters: 4, ResBlocks: 1},
		Train:       dcsr.TrainOptions{Steps: 50, BatchSize: 2, PatchSize: 16},
	})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if prep.K < 1 {
		t.Fatal("no clusters")
	}

	res, err := dcsr.NewPlayer(prep).Play()
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if len(res.Frames) != len(frames) {
		t.Fatalf("played %d frames, want %d", len(res.Frames), len(frames))
	}
	if res.TotalBytes() <= 0 {
		t.Fatal("no bytes accounted")
	}
	// Quality metrics are usable on the public types.
	p := dcsr.PSNRYUV(frames[0], res.Frames[0])
	s := dcsr.SSIMYUV(frames[0], res.Frames[0])
	if p <= 0 || s <= 0 || s > 1 {
		t.Fatalf("metrics out of range: PSNR %.2f SSIM %.4f", p, s)
	}
}

func TestPublicBaselineAPI(t *testing.T) {
	clip := dcsr.GenerateVideo(dcsr.GenreConfig(dcsr.GenreNews, 64, 48, 2))
	frames := clip.YUVFrames()
	st, err := dcsr.EncodeVideo(frames, nil, clip.FPS, dcsr.EncoderConfig{QP: 47})
	if err != nil {
		t.Fatal(err)
	}
	low, err := dcsr.PrepareBaseline(dcsr.MethodLow, frames, st, dcsr.BaselineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := low.Play()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != len(frames) {
		t.Fatal("baseline playback incomplete")
	}
}

func TestPublicDeviceAPI(t *testing.T) {
	fps, err := dcsr.DeviceJetsonNX.SegmentFPS(dcsr.PlaybackSpec{
		Res: dcsr.Res720p, Model: dcsr.ConfigDCSR1, FramesPerSegment: 60, Inferences: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fps < 30 {
		t.Fatalf("dcSR-1 720p on Jetson: %.1f FPS < 30", fps)
	}
}

func TestPublicSplitAPI(t *testing.T) {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{W: 48, H: 48, Seed: 3, NumScenes: 2, TotalCues: 4, MinFrames: 5, MaxFrames: 6})
	segs := dcsr.SplitVideo(clip.YUVFrames(), dcsr.SplitConfig{Threshold: 12, MinLen: 2})
	if len(segs) < 2 {
		t.Fatalf("split found %d segments", len(segs))
	}
}
