package dcsr_test

import (
	"fmt"
	"log"

	"dcsr"
)

// Example demonstrates the complete dcSR flow: generate a multi-scene
// video, run the server-side pipeline, and play it back with
// decoder-integrated enhancement. Printed values are structural (counts),
// so the example is stable across runs.
func Example() {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 64, H: 48, Seed: 7, NumScenes: 2, TotalCues: 4, MinFrames: 5, MaxFrames: 7,
	})
	frames := clip.YUVFrames()

	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          51,
		VAE:         dcsr.VAEConfig{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		MicroConfig: dcsr.EDSRConfig{Filters: 4, ResBlocks: 1},
		Train:       dcsr.TrainOptions{Steps: 30, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dcsr.NewPlayer(prep).Play()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segments: %d\n", len(prep.Segments))
	fmt.Printf("frames played: %d\n", len(res.Frames))
	fmt.Printf("I frames enhanced: %d\n", res.Decode.Enhanced)
	fmt.Printf("models downloaded: %d, cache hits: %d\n",
		res.Session.Downloads, res.Session.CacheHits)
	// Output:
	// segments: 4
	// frames played: 22
	// I frames enhanced: 4
	// models downloaded: 2, cache hits: 2
}

// ExampleSplitVideo shows shot-based variable-length segmentation: the
// generated clip has four cuts, and each detected segment starts exactly
// at a scene change.
func ExampleSplitVideo() {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 48, H: 48, Seed: 3, NumScenes: 3,
		Cues: []dcsr.Cue{{Scene: 0, Frames: 8}, {Scene: 1, Frames: 6}, {Scene: 2, Frames: 9}, {Scene: 0, Frames: 5}},
	})
	segs := dcsr.SplitVideo(clip.YUVFrames(), dcsr.SplitConfig{Threshold: 6, MinLen: 2})
	for _, s := range segs {
		fmt.Println(s)
	}
	// Output:
	// seg0[0:8)
	// seg1[8:14)
	// seg2[14:23)
	// seg3[23:28)
}

// ExampleEncodeVideo shows the codec substrate directly: higher QP means
// fewer bytes.
func ExampleEncodeVideo() {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 32, H: 32, Seed: 5, NumScenes: 1, TotalCues: 1, MinFrames: 6, MaxFrames: 6,
	})
	frames := clip.YUVFrames()
	low, _ := dcsr.EncodeVideo(frames, nil, 30, dcsr.EncoderConfig{QP: 48})
	high, _ := dcsr.EncodeVideo(frames, nil, 30, dcsr.EncoderConfig{QP: 12})
	fmt.Println("QP 48 smaller than QP 12:", low.Bytes() < high.Bytes())
	// Output:
	// QP 48 smaller than QP 12: true
}

// ExampleLint runs the repository's own static-analysis pass over the
// module. A clean tree reports no diagnostics; any output lines would be
// file:line:col findings from the metricnames, nodeterm, errcheck,
// nilsafe and goleak checks (see docs/LINTING.md).
func ExampleLint() {
	diags, err := dcsr.Lint(".")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diagnostics:", len(diags))
	for _, d := range diags {
		fmt.Println(d)
	}
	// Output: diagnostics: 0
}
