# Developer entry points for the dcSR reproduction. `make verify` is the
# gate every change must pass (see README.md); the individual targets are
# its pieces.

GO ?= go

.PHONY: verify build vet lint lint-cold test bench bench-all

# The experiments package trains real models and takes well over the
# default 10m per-package limit under race instrumentation; the longer
# -timeout covers it without masking hangs elsewhere. The golden test
# runs first and by name: staged Prepare must stay bit-identical to the
# single-pass pipeline before anything else is worth checking. The wire
# interop and window-rotation tests run next, also by name: they pin the
# trace-frame compatibility contract (old↔new peers in both directions)
# and the fake-clock determinism of the rolling-window metrics before
# the full race sweep repeats them among everything else. The mux
# interop pair and the admission-under-load test then pin the fleet
# serving contract (old↔new framing both ways, typed shedding under
# concurrency) by name before the sweep. The int8 block pins the
# quantized path: kernel↔reference parity, cross-worker bit
# determinism under race, and the calibration quality gate actually
# forcing a float32 fallback. The model-stream block pins the dcW5
# delta codec round-trip, the delta_encode stage (client assembly
# bit-identical, gate fallback), and the wire contract: backbone +
# delta playback pixel-identical to origin, old↔new interop via the
# full-model OpModel path, corruption falling back gracefully.
verify: build vet lint
	$(GO) test -run 'TestFixtures/(lockorder|lostcancel|atomicfield|errcmp|timerleak)' -v ./internal/lint/
	$(GO) test -race -run 'TestRunnerDeterministic|TestRunnerCache' -v ./internal/lint/
	$(GO) test -run 'TestPrepareGoldenEquivalence' -v ./internal/core/
	$(GO) test -run 'TestGemmInt8MatchesRef|TestConv2DInferInt8MatchesRef|TestConv2DInferInt8Deterministic' -v ./internal/tensor/
	$(GO) test -race -run 'TestEnhanceInt8DeterministicAcrossWorkers' -v ./internal/edsr/
	$(GO) test -run 'TestQuantQualityGateForcesFallback|TestQuantPersistRoundTrip' -v ./internal/core/
	$(GO) test -run 'TestWireTraceCompat' -v ./internal/transport/
	$(GO) test -run 'TestMuxInteropNewClientOldServer|TestMuxInteropOldClientNewServer' -v ./internal/transport/
	$(GO) test -race -run 'TestAdmissionConcurrentLoad|TestRetryPolicyHonorsShedHint' -v ./internal/transport/
	$(GO) test -run 'TestWindowedCounterRotationDeterminism' -v ./internal/obs/
	$(GO) test -run 'TestDeltaRoundTripProperty|TestDeltaInt8Composition|TestDeltaWrongBackbone' -v ./internal/nn/
	$(GO) test -run 'TestDeltaStageModelStream|TestDeltaGateForcesFallback' -v ./internal/core/
	$(GO) test -run 'TestPlayModelStreamOverWire|TestModelStreamInterop|TestModelStreamCorruptionFallsBack' -v ./internal/transport/
	$(GO) test -race -timeout 30m ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (docs/LINTING.md): metric-name
# discipline, determinism, error handling, nil-safety, goroutine joins,
# lock ordering, cancel/timer hygiene, atomic-field and error-matching
# discipline. Uses the content-hash diagnostic cache under .lintcache/;
# lint-cold bypasses it for a full re-analysis.
lint:
	$(GO) run ./cmd/dcsr-lint ./...

lint-cold:
	$(GO) run ./cmd/dcsr-lint -no-cache ./...

test:
	$(GO) test ./...

# Perf-trajectory benchmarks: the tensor kernels, the alloc-free
# Enhance path, and the paper's Fig 8 FPS sweep, all with allocation
# stats. Also emits BENCH_kernels.json (machine-readable ns/op, B/op,
# allocs/op, FPS rows) via dcsr-bench so runs can be diffed across
# checkouts on one machine, BENCH_cachebudget.json (model-cache
# hit/eviction/bandwidth accounting across byte budgets),
# BENCH_swarm.json (the fleet-load harness: 1000 concurrent clients vs
# admission control — p50/p99 per op, shed rate, Jain fairness; the
# capacity-planning numbers docs/SERVING.md works from), and
# BENCH_quant.json (int8 vs float32 Enhance speedup plus the
# calibration quality-gate sweep over a prepared clip), and
# BENCH_modelstream.json (backbone + delta shipping: model bytes per
# session as a function of clusters touched, vs the full-model wire).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGEMM|BenchmarkConv2DInfer|BenchmarkIm2col' -benchmem ./internal/tensor/
	$(GO) test -run '^$$' -bench 'BenchmarkEnhance(Int8)?(270|540)p|BenchmarkForwardInference' -benchmem ./internal/edsr/
	$(GO) test -run '^$$' -bench 'BenchmarkFig8' -benchmem .
	$(GO) run ./cmd/dcsr-bench -only kernels -json BENCH_kernels.json
	$(GO) run ./cmd/dcsr-bench -fast -only cachebudget -json BENCH_cachebudget.json
	$(GO) run ./cmd/dcsr-bench -fast -only swarm -json BENCH_swarm.json
	$(GO) run ./cmd/dcsr-bench -fast -only quant -json BENCH_quant.json
	$(GO) run ./cmd/dcsr-bench -fast -only modelstream -json BENCH_modelstream.json

# Full evaluation-scale benchmark suite (minutes), including the 1080p
# Enhance benchmark.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...
