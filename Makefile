# Developer entry points for the dcSR reproduction. `make verify` is the
# gate every change must pass (see README.md); the individual targets are
# its pieces.

GO ?= go

.PHONY: verify build vet test bench

verify: build vet
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full evaluation-scale benchmark suite (minutes).
bench:
	$(GO) test -bench=. -benchmem .
