# Developer entry points for the dcSR reproduction. `make verify` is the
# gate every change must pass (see README.md); the individual targets are
# its pieces.

GO ?= go

.PHONY: verify build vet lint test bench

# The experiments package trains real models and takes well over the
# default 10m per-package limit under race instrumentation; the longer
# -timeout covers it without masking hangs elsewhere.
verify: build vet lint
	$(GO) test -race -timeout 30m ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (docs/LINTING.md): metric-name
# discipline, determinism, error handling, nil-safety, goroutine joins.
lint:
	$(GO) run ./cmd/dcsr-lint ./...

test:
	$(GO) test ./...

# Full evaluation-scale benchmark suite (minutes).
bench:
	$(GO) test -bench=. -benchmem .
