// Devices: evaluate real-time feasibility of dcSR versus NAS/NEMO on the
// three device classes of the paper — mobile-grade Jetson Xavier NX, a
// GTX-1060 laptop and an RTX-2070 desktop (paper Figs 8 and 12).
//
// The device model converts each configuration's inference FLOPs into
// latency, memory pressure and power draw; the printout shows who meets
// the 30 FPS line, who runs out of memory at 4K, and what the energy bill
// of each method is.
//
//	go run ./examples/devices
package main

import (
	"fmt"
	"log"

	"dcsr"
)

func main() {
	configs := []struct {
		name string
		cfg  dcsr.EDSRConfig
		perI bool // true: enhance I frames only (NEMO/dcSR); false: every frame (NAS)
	}{
		{"NAS   (big, all frames)", dcsr.ConfigBig, false},
		{"NEMO  (big, I frames)", dcsr.ConfigBig, true},
		{"dcSR-1 (16f x  4RB)", dcsr.ConfigDCSR1, true},
		{"dcSR-2 (16f x 12RB)", dcsr.ConfigDCSR2, true},
		{"dcSR-3 (16f x 16RB)", dcsr.ConfigDCSR3, true},
	}
	const segFrames = 60 // 2 s segments at 30 FPS

	for _, dev := range []dcsr.DeviceProfile{dcsr.DeviceJetsonNX, dcsr.DeviceLaptop, dcsr.DeviceDesktop} {
		fmt.Printf("=== %s ===\n", dev.Name)
		fmt.Printf("%-26s", "method")
		for _, r := range []dcsr.Resolution{dcsr.Res720p, dcsr.Res1080p, dcsr.Res4K} {
			fmt.Printf("  %8s", r.Name)
		}
		fmt.Println()
		for _, c := range configs {
			fmt.Printf("%-26s", c.name)
			for _, r := range []dcsr.Resolution{dcsr.Res720p, dcsr.Res1080p, dcsr.Res4K} {
				inf := 1
				if !c.perI {
					inf = segFrames
				}
				fps, err := dev.SegmentFPS(dcsr.PlaybackSpec{
					Res: r, Model: c.cfg, FramesPerSegment: segFrames, Inferences: inf,
				})
				switch {
				case err != nil:
					fmt.Printf("  %8s", "OOM")
				case fps >= 30:
					fmt.Printf("  %5.1f ✓", fps)
				default:
					fmt.Printf("  %5.1f ✗", fps)
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Energy on the mobile device at 1080p (paper Fig 8d).
	fmt.Println("=== Jetson energy, 1080p, 800 s playback ===")
	type run struct {
		name string
		cfg  dcsr.EDSRConfig
		inf  int
	}
	var base float64
	for _, r := range []run{
		{"dcSR-1", dcsr.ConfigDCSR1, 1},
		{"NEMO", dcsr.ConfigBig, 1},
		{"NAS", dcsr.ConfigBig, 225},
	} {
		_, energy, err := dcsr.DeviceJetsonNX.PowerTimeline(dcsr.PlaybackSpec{
			Res: dcsr.Res1080p, Model: r.cfg, FramesPerSegment: 225, Inferences: r.inf, FPS: 30,
		}, 800, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = energy
		}
		fmt.Printf("%-8s %7.0f J  (%.1fx dcSR)\n", r.name, energy, energy/base)
	}
}
