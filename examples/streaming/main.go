// Streaming: a segment-by-segment dcSR session over a long video with
// heavy scene recurrence — the paper's Fig 7 walk-through at scale.
//
// The example shows Algorithm 1 in action: each segment's micro model is
// fetched only on cache miss, and the event log prints which segments hit
// the cache. It then compares the session bytes against NAS/NEMO-style
// single-big-model delivery (the paper's Fig 10 scenario).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"dcsr"
)

func main() {
	// A long clip where 4 scenes recur over 18 shots — like a sitcom
	// cutting between a few sets.
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 80, H: 48, Seed: 11, NumScenes: 4, TotalCues: 18,
		MinFrames: 5, MaxFrames: 9,
	})
	frames := clip.YUVFrames()
	fmt.Printf("source: %s\n\n", clip)

	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          51,
		MicroConfig: dcsr.EDSRConfig{Filters: 8, ResBlocks: 2},
		Train:       dcsr.TrainOptions{Steps: 200, BatchSize: 2, PatchSize: 16},
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared: %d segments, K=%d micro models\n\n", len(prep.Segments), prep.K)

	// Walk the session segment by segment (paper Fig 7).
	sess, err := dcsr.NewSession(prep.Manifest, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("segment  model  action")
	for _, seg := range prep.Manifest.Segments {
		ev := sess.Step(seg)
		action := "cache hit"
		if ev.ModelDownloaded {
			action = fmt.Sprintf("download model %d (%d B)", ev.ModelLabel, ev.ModelBytes)
		}
		fmt.Printf("%7d  %5d  %s\n", ev.Segment, ev.ModelLabel, action)
	}
	fmt.Printf("\nwith caching:    video %6d B + models %6d B = %6d B (%d downloads, %d hits)\n",
		sess.VideoBytes, sess.ModelBytes, sess.TotalBytes(), sess.Downloads, sess.CacheHits)

	// Without caching (ablation of paper §3.2.2).
	noCache, err := dcsr.NewSession(prep.Manifest, false)
	if err != nil {
		log.Fatal(err)
	}
	noCache.Run()
	fmt.Printf("without caching: video %6d B + models %6d B = %6d B\n",
		noCache.VideoBytes, noCache.ModelBytes, noCache.TotalBytes())

	// NAS/NEMO-style delivery: one big model up front.
	big, err := dcsr.NewEDSR(dcsr.EDSRConfig{Filters: 16, ResBlocks: 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	nasBytes := prep.Manifest.TotalVideoBytes() + big.SizeBytes()
	fmt.Printf("NAS/NEMO-style:  video %6d B + 1 big model %6d B = %6d B\n",
		prep.Manifest.TotalVideoBytes(), big.SizeBytes(), nasBytes)
	fmt.Printf("\ndcSR saving vs NAS: %.0f%%\n", (1-float64(sess.TotalBytes())/float64(nasBytes))*100)
}
