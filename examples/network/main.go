// Network: end-to-end dcSR delivery over a real TCP connection with a
// bandwidth-throttled downlink — the closest analog to the paper's
// SR-FFMPEG streaming prototype.
//
// An origin server packages the prepared stream (per-segment sub-streams,
// micro models, manifest) and a client on the other side of a constrained
// link streams it segment by segment, fetching micro models on cache miss
// and enhancing I frames in the decode loop. The printout compares wall
// time and downloaded bytes on two simulated link speeds.
//
//	go run ./examples/network
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"dcsr"
	"dcsr/internal/transport"
)

func main() {
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 80, H: 48, Seed: 33, NumScenes: 3, TotalCues: 8,
		MinFrames: 5, MaxFrames: 8,
	})
	frames := clip.YUVFrames()
	fmt.Printf("source: %s\n", clip)

	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          51,
		MicroConfig: dcsr.EDSRConfig{Filters: 8, ResBlocks: 2},
		Train:       dcsr.TrainOptions{Steps: 200, BatchSize: 2, PatchSize: 16},
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := transport.NewServer(prep)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("origin: %v", err)
		}
	}()
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("origin close: %v", err)
		}
	}()
	fmt.Printf("origin serving %d segments + %d micro models on %s\n\n",
		len(prep.Segments), len(prep.Models), ln.Addr())

	for _, link := range []struct {
		name string
		bps  float64
	}{
		{"fast link (1 MiB/s)", 1 << 20},
		{"slow link (64 KiB/s)", 64 << 10},
	} {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		client := transport.NewClient(transport.NewThrottledConn(conn, link.bps))
		start := time.Now()
		out, stats, err := client.Play(true)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := conn.Close(); err != nil {
			log.Printf("conn close: %v", err)
		}

		var psnr float64
		for i := range frames {
			psnr += dcsr.PSNRYUV(frames[i], out[i])
		}
		fmt.Printf("%s:\n", link.name)
		fmt.Printf("  streamed %d frames in %v (video %.1f s)\n",
			len(out), elapsed.Round(time.Millisecond), clip.Duration())
		fmt.Printf("  downloaded %d B (video %d + models %d), %d model downloads, %d cache hits\n",
			client.BytesDown, stats.VideoBytes, stats.ModelBytes, stats.ModelDownloads, stats.CacheHits)
		fmt.Printf("  %d I frames enhanced in-loop, playback PSNR %.2f dB\n\n",
			stats.Enhanced, psnr/float64(len(frames)))
	}
}
