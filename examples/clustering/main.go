// Clustering: a walkthrough of server-side dcSR's scene-understanding
// stages (paper §3.1, Figs 2–5): shot-based splitting, VAE feature
// extraction from segment I-frames, the silhouette sweep that picks K,
// and the resulting cluster assignment compared against the generator's
// ground-truth scene labels.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"dcsr"
)

func main() {
	// 5 distinct scenes recurring over 20 shots.
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 80, H: 48, Seed: 19, NumScenes: 5, TotalCues: 20,
		MinFrames: 5, MaxFrames: 9,
	})
	frames := clip.YUVFrames()
	fmt.Printf("source: %s\n\n", clip)

	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          51,
		MicroConfig: dcsr.EDSRConfig{Filters: 8, ResBlocks: 2},
		Train:       dcsr.TrainOptions{Steps: 100, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shot-based split found %d segments (variable lengths):\n  ", len(prep.Segments))
	for _, s := range prep.Segments {
		fmt.Printf("%d ", s.Len())
	}
	fmt.Println("frames each")

	fmt.Printf("\nVAE latent features: %d segments x %d dims\n", len(prep.Features), len(prep.Features[0]))

	fmt.Println("\nsilhouette sweep (paper Fig 5):")
	fmt.Println("  K   silhouette")
	for _, s := range prep.Sweeps {
		bar := ""
		for i := 0; i < int(s.Silhouette*40); i++ {
			bar += "#"
		}
		marker := ""
		if s.K == prep.K {
			marker = "  <- selected K*"
		}
		fmt.Printf("  %-3d %.3f %s%s\n", s.K, s.Silhouette, bar, marker)
	}

	fmt.Printf("\ncluster assignment vs generative scene labels:\n")
	fmt.Println("  segment  cluster  true scene")
	for i, s := range prep.Segments {
		fmt.Printf("  %7d  %7d  %10d\n", i, prep.Assign[i], clip.Labels()[s.Start])
	}
	fmt.Printf("\n%d micro models trained (one per cluster), %d bytes total\n",
		len(prep.Models), prep.Manifest.TotalModelBytes())
}
