// Quickstart: the minimal end-to-end dcSR flow.
//
// Generate a short multi-scene video, run the server-side pipeline
// (split → VAE features → clustering → micro-model training), play it
// back with decoder-integrated enhancement, and print the quality gain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dcsr"
)

func main() {
	// A ~2.5-minute-feeling clip at tiny evaluation scale: 3 distinct
	// scenes recurring over 8 shots.
	clip := dcsr.GenerateVideo(dcsr.GenConfig{
		W: 80, H: 48, Seed: 42, NumScenes: 3, TotalCues: 8,
		MinFrames: 6, MaxFrames: 10,
	})
	frames := clip.YUVFrames()
	fmt.Printf("source: %s\n", clip)

	// Server side: encode a worst-quality stream (QP 51 ≈ CRF 51) and
	// train one micro SR model per cluster of visually similar segments.
	prep, err := dcsr.Prepare(frames, clip.FPS, dcsr.ServerConfig{
		QP:          51,
		MicroConfig: dcsr.EDSRConfig{Filters: 8, ResBlocks: 2},
		Train:       dcsr.TrainOptions{Steps: 300, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d segments clustered into K=%d micro models (%s each %d bytes)\n",
		len(prep.Segments), prep.K, prep.MicroConfig, prep.Manifest.TotalModelBytes()/max(prep.K, 1))

	// Client side: stream + enhance.
	enhanced, err := dcsr.NewPlayer(prep).Play()
	if err != nil {
		log.Fatal(err)
	}
	plain := dcsr.NewPlayer(prep)
	plain.Enhance = false
	low, err := plain.Play()
	if err != nil {
		log.Fatal(err)
	}

	var psnrLow, psnrEnh float64
	for i := range frames {
		psnrLow += dcsr.PSNRYUV(frames[i], low.Frames[i])
		psnrEnh += dcsr.PSNRYUV(frames[i], enhanced.Frames[i])
	}
	n := float64(len(frames))
	fmt.Printf("client: downloaded %d bytes (%d model downloads, %d cache hits)\n",
		enhanced.TotalBytes(), enhanced.Session.Downloads, enhanced.Session.CacheHits)
	fmt.Printf("quality: LOW %.2f dB -> dcSR %.2f dB (%+.2f dB)\n",
		psnrLow/n, psnrEnh/n, (psnrEnh-psnrLow)/n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
