package dcsr_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"dcsr/internal/lint"
)

var (
	servingCodeSpan  = regexp.MustCompile("`([^`\n]+)`")
	servingMetricTok = regexp.MustCompile(`^[a-z][a-z0-9]*(?:_[a-z0-9]+)+$`)
	servingFlagTok   = regexp.MustCompile(`^-[a-z][a-z-]*$`)
)

// TestServingDocPins keeps docs/SERVING.md honest the same way
// TestMetricSurfaceStatic keeps docs/OPERATIONS.md honest: every metric
// name the runbook cites must be a documented metric (a row in the
// OPERATIONS.md table, which is itself diffed against the code), and
// every CLI flag it cites must actually be defined by dcsr-serve or
// dcsr-play. A renamed metric or flag then fails here instead of
// silently stranding the operator guide.
func TestServingDocPins(t *testing.T) {
	raw, err := os.ReadFile("docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	docs, err := lint.DocMetricNames(".")
	if err != nil {
		t.Fatal(err)
	}
	var flagSrc strings.Builder
	for _, p := range []string{"cmd/dcsr-serve/main.go", "cmd/dcsr-play/main.go"} {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		flagSrc.Write(src)
	}

	metrics, flags := map[string]bool{}, map[string]bool{}
	for _, m := range servingCodeSpan.FindAllStringSubmatch(string(raw), -1) {
		tok := m[1]
		switch {
		case strings.HasPrefix(tok, "transport_") && servingMetricTok.MatchString(tok):
			metrics[tok] = true
			if !docs[tok] {
				t.Errorf("docs/SERVING.md cites metric %s but docs/OPERATIONS.md has no such row", tok)
			}
		case servingFlagTok.MatchString(tok):
			flags[tok] = true
			if !strings.Contains(flagSrc.String(), `"`+strings.TrimPrefix(tok, "-")+`"`) {
				t.Errorf("docs/SERVING.md cites flag %s but neither dcsr-serve nor dcsr-play defines it", tok)
			}
		}
	}

	// The runbook must actually cover the serving surface: the shed
	// metrics and the admission flags are its reason to exist.
	for _, want := range []string{"transport_shed_total", "transport_inflight_peak", "transport_videos"} {
		if !metrics[want] {
			t.Errorf("docs/SERVING.md never cites %s", want)
		}
	}
	for _, want := range []string{"-max-inflight", "-max-clients", "-list-videos"} {
		if !flags[want] {
			t.Errorf("docs/SERVING.md never documents the %s flag", want)
		}
	}
}
