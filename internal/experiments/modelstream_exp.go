package experiments

import (
	"fmt"

	"dcsr/internal/core"
	"dcsr/internal/stream"
	"dcsr/internal/video"
)

// ModelstreamRow is one point of the clusters-touched sweep: a session
// that plays only the segments of the first k distinct clusters, with the
// models shipped as a model stream (backbone + deltas) versus complete.
type ModelstreamRow struct {
	// Clusters is k, the number of distinct cluster models the session
	// touches.
	Clusters int `json:"clusters"`
	// StreamBytes is the model download volume with the model stream:
	// BackboneBytes (paid once) + DeltaBytes + FullBytes (gate fallbacks).
	StreamBytes   int `json:"stream_bytes"`
	BackboneBytes int `json:"backbone_bytes"`
	DeltaBytes    int `json:"delta_bytes"`
	FullBytes     int `json:"full_bytes"`
	// ControlBytes is the same session with every model shipped complete
	// (the pre-model-stream wire).
	ControlBytes int `json:"control_bytes"`
	// Savings is 1 − StreamBytes/ControlBytes.
	Savings float64 `json:"savings"`
}

// ModelstreamResult is the BENCH_modelstream.json payload.
type ModelstreamResult struct {
	// Models is the number of cluster models; DeltaModels of them ship as
	// dcW5 deltas against the backbone, Fallbacks failed a gate and ship
	// complete.
	Models        int `json:"models"`
	DeltaModels   int `json:"delta_models"`
	Fallbacks     int `json:"fallbacks"`
	BackboneLabel int `json:"backbone_label"`
	// Rows sweeps k = 1..Models clusters touched per session.
	Rows []ModelstreamRow `json:"rows"`
}

// sessionModelBytes walks the manifest restricted to segments of the
// first k distinct labels (in first-appearance order) and returns the
// finished session — its byte breakdown is the measurement.
func sessionModelBytes(p *core.Prepared, k int) (*stream.Session, error) {
	var order []int
	seen := map[int]bool{}
	for _, seg := range p.Manifest.Segments {
		if seg.ModelLabel >= 0 && !seen[seg.ModelLabel] {
			seen[seg.ModelLabel] = true
			order = append(order, seg.ModelLabel)
		}
	}
	if k > len(order) {
		k = len(order)
	}
	keep := map[int]bool{}
	for _, label := range order[:k] {
		keep[label] = true
	}
	man := &stream.Manifest{Models: p.Manifest.Models, Backbone: p.Manifest.Backbone}
	for _, seg := range p.Manifest.Segments {
		if seg.ModelLabel < 0 || keep[seg.ModelLabel] {
			man.Segments = append(man.Segments, seg)
		}
	}
	sess, err := stream.NewSession(man, true)
	if err != nil {
		return nil, err
	}
	sess.FetchData = func(label int) ([]byte, error) {
		if sm, ok := p.Models[label]; ok {
			return sm.WireBytes(), nil
		}
		return nil, nil
	}
	sess.Run()
	return sess, nil
}

// ExperimentModelstream prepares the news video with the delta_encode
// stage enabled and measures bytes-per-session as a function of how many
// clusters a session touches: a viewer who watches a slice of the video
// pays the backbone once plus one small delta per additional cluster,
// versus one full model per cluster on the pre-model-stream wire.
func ExperimentModelstream(cfg EvalConfig) (Table, *ModelstreamResult, error) {
	clip := cfg.clip(video.GenreNews)
	sc := cfg.serverConfig()
	sc.Delta = core.DeltaConfig{Enabled: true}
	prep, err := core.Prepare(clip.YUVFrames(), clip.FPS, sc)
	if err != nil {
		return Table{}, nil, err
	}
	control := prep.WithoutDelta()

	r := &ModelstreamResult{BackboneLabel: -1}
	for _, label := range prep.Manifest.ModelLabels() {
		sm := prep.Models[label]
		if sm == nil {
			continue
		}
		r.Models++
		switch {
		case sm.Delta == nil:
		case sm.Delta.DeltaOK:
			r.DeltaModels++
			r.BackboneLabel = sm.Delta.BackboneLabel
		default:
			r.Fallbacks++
		}
	}

	t := Table{
		Title:  "Model stream: model bytes per session vs clusters touched",
		Header: []string{"clusters", "stream bytes", "backbone", "deltas", "full", "full-model bytes", "saving"},
	}
	for k := 1; k <= r.Models; k++ {
		sess, err := sessionModelBytes(prep, k)
		if err != nil {
			return Table{}, nil, err
		}
		ctrl, err := sessionModelBytes(control, k)
		if err != nil {
			return Table{}, nil, err
		}
		row := ModelstreamRow{
			Clusters:      k,
			StreamBytes:   sess.ModelBytes,
			BackboneBytes: sess.BackboneBytes,
			DeltaBytes:    sess.DeltaModelBytes,
			FullBytes:     sess.FullModelBytes,
			ControlBytes:  ctrl.ModelBytes,
		}
		if row.ControlBytes > 0 {
			row.Savings = 1 - float64(row.StreamBytes)/float64(row.ControlBytes)
		}
		r.Rows = append(r.Rows, row)
		t.Add(fmt.Sprintf("%d", k), fmt.Sprintf("%d", row.StreamBytes),
			fmt.Sprintf("%d", row.BackboneBytes), fmt.Sprintf("%d", row.DeltaBytes),
			fmt.Sprintf("%d", row.FullBytes), fmt.Sprintf("%d", row.ControlBytes),
			fmt.Sprintf("%.0f%%", row.Savings*100))
	}
	return t, r, nil
}
