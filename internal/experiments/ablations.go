package experiments

import (
	"bytes"
	"fmt"

	"dcsr/internal/cluster"
	"dcsr/internal/codec"
	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/nn"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// ablationClip renders a clip with known scene structure for the
// clustering ablations.
func ablationClip(cfg EvalConfig, scenes, cues int) *video.Clip {
	return video.Generate(video.GenConfig{
		W: cfg.W, H: cfg.H, Seed: cfg.Seed + 1234, NumScenes: scenes, TotalCues: cues,
		MinFrames: cfg.CueFramesMin, MaxFrames: cfg.CueFramesMax,
	})
}

// segmentIFrames returns the I-frame RGBs and their ground-truth scene
// labels after shot-based splitting.
func segmentIFrames(clip *video.Clip) (frames []*video.RGB, truth []int) {
	yuv := clip.YUVFrames()
	segs := splitter.Split(yuv, splitter.Config{Threshold: 14, MinLen: 3})
	for _, s := range segs {
		frames = append(frames, clip.Frames()[s.Start])
		truth = append(truth, clip.Labels()[s.Start])
	}
	return frames, truth
}

// purity is the fraction of points whose cluster's majority ground-truth
// label matches their own — 1.0 means the clustering recovered the scene
// structure exactly.
func purity(assign, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, a := range assign {
		counts[a][truth[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

// rawFeatures downsamples a frame to 8×8 grayscale — the naive alternative
// to learned VAE features.
func rawFeatures(f *video.RGB) []float64 {
	small := video.ResizeRGB(f, 8, 8)
	out := make([]float64, 64)
	for i := 0; i < 64; i++ {
		r := float64(small.Pix[i*3])
		g := float64(small.Pix[i*3+1])
		b := float64(small.Pix[i*3+2])
		out[i] = (0.299*r + 0.587*g + 0.114*b) / 255
	}
	return out
}

// AblationFeatures compares clustering quality using trained VAE latents,
// an untrained VAE, and raw downsampled pixels (paper §3.1.1 argues the
// KL-regularized latent space is what makes neighborhoods meaningful).
func AblationFeatures(cfg EvalConfig) (Table, map[string]float64) {
	clip := ablationClip(cfg, 4, 16)
	frames, truth := segmentIFrames(clip)
	k := 4

	vm, err := vae.New(vae.Config{ImgSize: 16, LatentDim: 8, BaseCh: 4}, cfg.Seed)
	if err != nil {
		panic(err)
	}
	untrained := make([][]float64, len(frames))
	for i, f := range frames {
		untrained[i] = vm.Features(f)
	}
	if _, err := vm.Train(frames, vae.TrainOptions{Epochs: 25, BatchSize: 4, Seed: cfg.Seed}); err != nil {
		panic(err)
	}
	variants := []struct {
		name  string
		feats [][]float64
	}{
		{"VAE (trained)", featsOf(frames, vm.Features)},
		{"VAE (untrained)", untrained},
		{"raw 8x8 pixels", featsOf(frames, rawFeatures)},
	}
	t := Table{
		Title:  fmt.Sprintf("Ablation: clustering features (video with %d scenes, %d segments, K=%d)", 4, len(frames), k),
		Header: []string{"features", "silhouette", "purity vs scenes"},
	}
	purities := map[string]float64{}
	for _, v := range variants {
		res, err := cluster.GlobalKMeans(v.feats, k, 0)
		if err != nil {
			panic(err)
		}
		sil, err := cluster.Silhouette(v.feats, res.Assign, k)
		if err != nil {
			panic(err)
		}
		p := purity(res.Assign, truth, k)
		purities[v.name] = p
		t.Add(v.name, f3(sil), f3(p))
	}
	return t, purities
}

func featsOf(frames []*video.RGB, fn func(*video.RGB) []float64) [][]float64 {
	out := make([][]float64, len(frames))
	for i, f := range frames {
		out[i] = fn(f)
	}
	return out
}

// AblationGlobalKMeans compares global k-means against plain Lloyd on the
// segment features (paper §3.1.2: Lloyd can converge to local optima).
func AblationGlobalKMeans(cfg EvalConfig) (Table, float64, float64) {
	clip := ablationClip(cfg, 5, 20)
	frames, _ := segmentIFrames(clip)
	vm, err := vae.New(vae.Config{ImgSize: 16, LatentDim: 8, BaseCh: 4}, cfg.Seed)
	if err != nil {
		panic(err)
	}
	if _, err := vm.Train(frames, vae.TrainOptions{Epochs: 25, BatchSize: 4, Seed: cfg.Seed}); err != nil {
		panic(err)
	}
	feats := featsOf(frames, vm.Features)
	t := Table{
		Title:  "Ablation: global k-means vs Lloyd (inertia, lower is better)",
		Header: []string{"K", "Lloyd", "global", "global <= Lloyd"},
	}
	var lloydTotal, globalTotal float64
	for k := 2; k <= 6 && k < len(feats); k++ {
		l, err := cluster.KMeans(feats, k, 0)
		if err != nil {
			panic(err)
		}
		g, err := cluster.GlobalKMeans(feats, k, 0)
		if err != nil {
			panic(err)
		}
		lloydTotal += l.Inertia
		globalTotal += g.Inertia
		t.Add(fmt.Sprintf("%d", k), f3(l.Inertia), f3(g.Inertia), fmt.Sprintf("%v", g.Inertia <= l.Inertia+1e-9))
	}
	return t, globalTotal, lloydTotal
}

// AblationPropagation compares the two I-frame enhancement propagation
// mechanisms: the paper-literal DPB replacement (Fig 6) and the gated
// delta transfer this implementation defaults to (see codec.Propagation).
// Reported per mode: mean playback PSNR against the pristine source.
func AblationPropagation(cfg EvalConfig) (Table, map[string]float64) {
	clip := cfg.clip(video.GenreNews)
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, cfg.serverConfig())
	if err != nil {
		panic(err)
	}
	t := Table{
		Title:  "Ablation: enhancement propagation mode",
		Header: []string{"mode", "PSNR (dB)", "vs LOW"},
	}
	psnrOf := func(pl *core.Player) float64 {
		res, err := pl.Play()
		if err != nil {
			panic(err)
		}
		var sum float64
		for i := range frames {
			sum += quality.PSNRYUV(frames[i], res.Frames[i])
		}
		return sum / float64(len(frames))
	}
	lowPl := core.NewPlayer(prep)
	lowPl.Enhance = false
	low := psnrOf(lowPl)
	out := map[string]float64{"LOW": low}
	for _, m := range []struct {
		name string
		mode codec.Propagation
	}{
		{"replace (paper Fig 6)", codec.PropagateReplace},
		{"gated delta (default)", codec.PropagateDelta},
	} {
		pl := core.NewPlayer(prep)
		pl.Propagation = m.mode
		p := psnrOf(pl)
		out[m.name] = p
		t.Add(m.name, f2(p), fmt.Sprintf("%+.2f dB", p-low))
	}
	t.Add("LOW (no enhancement)", f2(low), "+0.00 dB")
	return t, out
}

// AblationHalfPel measures the optional half-sample motion compensation:
// bytes and decoded quality at equal QP against the full-pel default.
func AblationHalfPel(cfg EvalConfig) (Table, map[string]int, map[string]float64) {
	clip := cfg.clip(video.GenreSports) // highest-motion preset
	frames := clip.YUVFrames()
	t := Table{
		Title:  "Ablation: half-pel motion compensation (equal QP, high-motion content)",
		Header: []string{"motion", "stream bytes", "decoded PSNR (dB)"},
	}
	bytesBy := map[string]int{}
	psnrBy := map[string]float64{}
	for _, v := range []struct {
		name string
		hp   bool
	}{{"full-pel", false}, {"half-pel", true}} {
		st, err := codec.Encode(frames, nil, clip.FPS, codec.EncoderConfig{QP: cfg.QP - 10, HalfPel: v.hp})
		if err != nil {
			panic(err)
		}
		var dec codec.Decoder
		out, err := dec.Decode(st)
		if err != nil {
			panic(err)
		}
		var psnr float64
		for i := range frames {
			psnr += quality.PSNRYUV(frames[i], out[i])
		}
		psnr /= float64(len(frames))
		bytesBy[v.name] = st.Bytes()
		psnrBy[v.name] = psnr
		t.Add(v.name, fmt.Sprintf("%d", st.Bytes()), f2(psnr))
	}
	return t, bytesBy, psnrBy
}

// AblationQuantization measures the extension of shipping micro models at
// reduced precision (NEMO ships fp16 for the same reason): model download
// bytes versus playback quality for fp32, fp16 and int8 weights.
func AblationQuantization(cfg EvalConfig) (Table, map[string]float64, map[string]int) {
	clip := cfg.clip(video.GenreNews)
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, cfg.serverConfig())
	if err != nil {
		panic(err)
	}
	t := Table{
		Title:  "Ablation: micro-model weight quantization",
		Header: []string{"precision", "models bytes", "playback PSNR (dB)"},
	}
	psnrs := map[string]float64{}
	sizes := map[string]int{}
	for _, q := range []nn.Quantization{nn.QuantNone, nn.QuantF16, nn.QuantInt8} {
		// Re-encode every micro model at the target precision and reload
		// it the way a client would.
		quantized := make(map[int]*core.SegmentModel, len(prep.Models))
		total := 0
		for label, sm := range prep.Models {
			data := nn.EncodeWeightsQuantized(sm.Model.Params(), q)
			total += len(data)
			m, err := edsr.New(sm.Config, 0)
			if err != nil {
				panic(err)
			}
			if err := nn.LoadWeightsAny(bytes.NewReader(data), m.Params()); err != nil {
				panic(err)
			}
			quantized[label] = &core.SegmentModel{Label: label, Config: sm.Config, Model: m, Bytes: data}
		}
		qPrep := *prep
		qPrep.Models = quantized
		res, err := core.NewPlayer(&qPrep).Play()
		if err != nil {
			panic(err)
		}
		var psnr float64
		for i := range frames {
			psnr += quality.PSNRYUV(frames[i], res.Frames[i])
		}
		psnr /= float64(len(frames))
		psnrs[q.String()] = psnr
		sizes[q.String()] = total
		t.Add(q.String(), fmt.Sprintf("%d", total), f2(psnr))
	}
	return t, psnrs, sizes
}

// AblationSplit compares variable-length shot-based splitting against
// fixed-length segmentation at the same QP (paper §3.1.1: shot-based
// splitting needs fewer I frames and less bitrate for equal quality).
func AblationSplit(cfg EvalConfig) (Table, map[string]int) {
	clip := ablationClip(cfg, 4, 12)
	frames := clip.YUVFrames()

	variable := splitter.Split(frames, splitter.Config{Threshold: 14, MinLen: 3})
	meanLen := len(frames) / len(variable)
	fixedShort := splitter.FixedSplit(len(frames), meanLen/2) // content-agnostic, short segments

	t := Table{
		Title:  "Ablation: variable (shot-based) vs fixed-length split at equal QP",
		Header: []string{"split", "segments", "I frames", "stream KB", "LOW PSNR (dB)"},
	}
	bytesBy := map[string]int{}
	for _, v := range []struct {
		name string
		segs []splitter.Segment
	}{
		{"variable (dcSR)", variable},
		{"fixed", fixedShort},
	} {
		forceI := splitter.ForceIFlags(len(frames), v.segs)
		st, err := codec.Encode(frames, forceI, clip.FPS, codec.EncoderConfig{QP: cfg.QP, GOPSize: 1000})
		if err != nil {
			panic(err)
		}
		var dec codec.Decoder
		out, err := dec.Decode(st)
		if err != nil {
			panic(err)
		}
		var psnr float64
		for i := range frames {
			psnr += quality.PSNRYUV(frames[i], out[i])
		}
		psnr /= float64(len(frames))
		bytesBy[v.name] = st.Bytes()
		t.Add(v.name, fmt.Sprintf("%d", len(v.segs)), fmt.Sprintf("%d", st.CountType(codec.FrameI)),
			fmt.Sprintf("%.1f", float64(st.Bytes())/1024), f2(psnr))
	}
	return t, bytesBy
}
