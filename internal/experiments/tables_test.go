package experiments

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := Table{Title: "demo", Header: []string{"name", "value"}}
	tbl.Add("alpha", "1.0")
	tbl.Add("a-much-longer-name", "2.25")
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// Columns must align: "value" column starts at the same offset in the
	// header and every row.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Fatalf("row shorter than header alignment:\n%s", out)
		}
	}
	if strings.Index(lines[3], "2.25") != idx {
		t.Fatalf("value column misaligned:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if f1(1.26) != "1.3" || f2(1.266) != "1.27" || f3(0.1234) != "0.123" {
		t.Fatal("float formatting broken")
	}
	if mb(1<<20) != "1.000" {
		t.Fatalf("mb(1MiB) = %q", mb(1<<20))
	}
}
