package experiments

import (
	"fmt"

	"dcsr/internal/core"
	"dcsr/internal/video"
)

// CacheBudgetCell is the outcome of one local playback session under one
// model-cache byte budget.
type CacheBudgetCell struct {
	// Budget is the cache budget in bytes: -1 unbounded (the paper's
	// Algorithm 1 default), 0 caching disabled (the §3.2.2 ablation),
	// otherwise an LRU eviction bound.
	Budget int64
	// Label names the budget row in the table ("off", "1 model", …).
	Label string

	// Downloads / CacheHits / CacheMisses are the session's Algorithm 1
	// accounting; Evictions counts models dropped to stay in budget.
	Downloads   int
	CacheHits   int
	CacheMisses int
	Evictions   int
	// ModelBytes is the model payload downloaded over the whole session —
	// the bandwidth price of the chosen budget.
	ModelBytes int
	// ResidentBytes is what the cache held when playback finished.
	ResidentBytes int64
	// Degraded counts segments played without SR (always 0 locally:
	// evictions force re-downloads, never degradation).
	Degraded int
	// Enhanced counts enhanced I frames — identical across budgets,
	// because the budget changes download accounting, not playback.
	Enhanced int
}

// CacheBudgetResult is the full budget sweep plus the model-size facts
// the budgets were derived from.
type CacheBudgetResult struct {
	// ModelCount and TotalModelBytes describe the prepared artifact.
	ModelCount      int
	TotalModelBytes int
	// MaxModelBytes is the largest single model (the smallest budget that
	// can cache anything at all).
	MaxModelBytes int
	Cells         []CacheBudgetCell
}

// ExperimentCacheBudget measures the client's byte-budgeted model cache:
// one prepared video is played back repeatedly while sweeping the cache
// budget from disabled through single-model to unbounded, reporting the
// hit/miss/eviction accounting and the model bytes each budget costs.
// The headline behaviour: an ample budget reproduces the unbounded hit
// counts exactly, a tight budget trades evictions for re-downloads, and
// no budget ever changes what plays (the Enhanced column is constant).
func ExperimentCacheBudget(cfg EvalConfig) (Table, *CacheBudgetResult, error) {
	genre := video.GenreNews
	if len(cfg.Genres) > 0 {
		genre = cfg.Genres[0]
	}
	clip := cfg.clip(genre)
	prep, err := core.Prepare(clip.YUVFrames(), clip.FPS, cfg.serverConfig())
	if err != nil {
		return Table{}, nil, fmt.Errorf("experiments: cachebudget prepare: %w", err)
	}

	res := &CacheBudgetResult{ModelCount: len(prep.Models)}
	for _, sm := range prep.Models {
		res.TotalModelBytes += len(sm.Bytes)
		if len(sm.Bytes) > res.MaxModelBytes {
			res.MaxModelBytes = len(sm.Bytes)
		}
	}

	budgets := []struct {
		label  string
		budget int64
	}{
		{"off", 0},
		{"1 model", int64(res.MaxModelBytes)},
		{"2 models", 2 * int64(res.MaxModelBytes)},
		{"all models", int64(res.TotalModelBytes)},
		{"unbounded", -1},
	}

	table := Table{
		Title: fmt.Sprintf("Model-cache budget sweep (genre %s, %d models, %d B total)",
			genre, res.ModelCount, res.TotalModelBytes),
		Header: []string{"budget", "bytes", "downloads", "hits", "misses", "evictions", "modelB", "resident", "degraded", "enhanced"},
	}
	for _, b := range budgets {
		pl := core.NewPlayer(prep)
		pl.Obs = cfg.Obs
		switch {
		case b.budget == 0:
			pl.UseCache = false
		case b.budget > 0:
			pl.CacheBudget = b.budget
		}
		r, err := pl.Play()
		if err != nil {
			return Table{}, nil, fmt.Errorf("experiments: cachebudget play (%s): %w", b.label, err)
		}
		cell := CacheBudgetCell{
			Budget: b.budget, Label: b.label,
			Downloads: r.Session.Downloads, CacheHits: r.CacheHits, CacheMisses: r.CacheMisses,
			Evictions: r.Evictions, ModelBytes: r.Session.ModelBytes, ResidentBytes: r.CacheBytes,
			Degraded: r.DegradedSegments, Enhanced: r.Decode.Enhanced,
		}
		res.Cells = append(res.Cells, cell)
		table.Add(cell.Label, fmt.Sprintf("%d", cell.Budget),
			fmt.Sprintf("%d", cell.Downloads), fmt.Sprintf("%d", cell.CacheHits),
			fmt.Sprintf("%d", cell.CacheMisses), fmt.Sprintf("%d", cell.Evictions),
			fmt.Sprintf("%d", cell.ModelBytes), fmt.Sprintf("%d", cell.ResidentBytes),
			fmt.Sprintf("%d", cell.Degraded), fmt.Sprintf("%d", cell.Enhanced))
	}
	return table, res, nil
}
