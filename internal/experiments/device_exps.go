package experiments

import (
	"fmt"

	"dcsr/internal/device"
	"dcsr/internal/edsr"
)

// bigModelFor returns the per-resolution big-model configuration the paper
// trains for NAS/NEMO-style systems: deeper and with larger upscaling
// factors at higher target resolutions (matching the growth of paper
// Fig 1b and the red cell of Table 1).
func bigModelFor(r device.Resolution) edsr.Config {
	switch r.Name {
	case "720p":
		return edsr.Config{Filters: 64, ResBlocks: 8, Scale: 2, ResScale: 0.1}
	case "1080p":
		return edsr.Config{Filters: 64, ResBlocks: 12, Scale: 2, ResScale: 0.1}
	default: // 4K
		return edsr.Config{Filters: 64, ResBlocks: 16, Scale: 4, ResScale: 0.1}
	}
}

// Fig1aData holds the big-model single-frame inference rate per resolution.
type Fig1aData struct {
	Res device.Resolution
	FPS float64
}

// Fig1a reproduces paper Fig 1(a): the inference rate of a NAS-style big
// model is below 15 FPS at every resolution, even on the desktop.
func Fig1a() (Table, []Fig1aData) {
	t := Table{
		Title:  "Fig 1(a): big-model SR inference rate (desktop)",
		Header: []string{"resolution", "inference FPS"},
	}
	var data []Fig1aData
	for _, r := range []device.Resolution{device.Res720p, device.Res1080p, device.Res4K} {
		ti, err := device.Desktop.InferenceTime(edsr.ConfigBig, r.W, r.H)
		if err != nil {
			t.Add(r.Name, "OOM")
			continue
		}
		fps := 1 / ti
		data = append(data, Fig1aData{Res: r, FPS: fps})
		t.Add(r.Name, f1(fps))
	}
	return t, data
}

// Fig1b reproduces paper Fig 1(b): big-model download size grows with the
// target resolution (≈5→20 MB of training checkpoint).
func Fig1b() (Table, []int) {
	t := Table{
		Title:  "Fig 1(b): big-model size vs resolution",
		Header: []string{"resolution", "config", "weights MB", "checkpoint MB"},
	}
	var sizes []int
	for _, r := range []device.Resolution{device.Res720p, device.Res1080p, device.Res4K} {
		cfg := bigModelFor(r)
		m, err := edsr.New(cfg, 0)
		if err != nil {
			panic(err)
		}
		sizes = append(sizes, m.CheckpointBytes())
		t.Add(r.Name, cfg.String(), mb(m.SizeBytes()), mb(m.CheckpointBytes()))
	}
	return t, sizes
}

// Table1 reproduces paper Table 1: model size (MB) over the (n_f, n_RB)
// configuration grid. The paper reports TensorFlow checkpoint sizes of ×4
// upscaling models; CheckpointBytes approximates that (weights + two Adam
// moment tensors). Green cells (per-video minimum working configurations)
// and the red big-model cell are properties of specific videos, so the
// grid alone is reproduced here.
func Table1() (Table, map[[2]int]int) {
	filters := []int{4, 8, 16, 32, 64}
	resblocks := []int{4, 8, 12, 16, 20}
	t := Table{Title: "Table 1: model size (MB) over configurations (rows n_f, cols n_RB)"}
	t.Header = []string{"n_f \\ n_RB"}
	for _, rb := range resblocks {
		t.Header = append(t.Header, fmt.Sprintf("%d", rb))
	}
	sizes := make(map[[2]int]int)
	for _, nf := range filters {
		row := []string{fmt.Sprintf("%d", nf)}
		for _, rb := range resblocks {
			m, err := edsr.New(edsr.Config{Filters: nf, ResBlocks: rb, Scale: 4}, 0)
			if err != nil {
				panic(err)
			}
			sizes[[2]int{nf, rb}] = m.CheckpointBytes()
			row = append(row, mb(m.CheckpointBytes()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, sizes
}

// FPSSeries is one curve of paper Fig 8(a-c)/Fig 12: FPS against the
// number of SR inferences per segment. A zero FPS entry means the method
// cannot run (out of memory).
type FPSSeries struct {
	Method string
	Model  edsr.Config
	FPS    []float64
	OOM    bool
}

// segmentFrames is the per-segment frame count of the FPS evaluation
// (≈2 s segments at 30 FPS, the short-segment regime of Fig 8).
const segmentFrames = 60

// Fig8FPS reproduces one panel of paper Fig 8(a-c): FPS versus inferences
// per segment on the Jetson for NAS, NEMO and dcSR-1/2/3.
func Fig8FPS(res device.Resolution, maxInf int) (Table, []FPSSeries) {
	return fpsPanel(device.JetsonNX, res, maxInf,
		fmt.Sprintf("Fig 8 (%s): FPS vs inferences/segment on Jetson Xavier NX", res.Name))
}

// Fig12FPS reproduces paper Fig 12: the same curves at 4K on the laptop
// and desktop.
func Fig12FPS(p device.Profile, maxInf int) (Table, []FPSSeries) {
	return fpsPanel(p, device.Res4K, maxInf,
		fmt.Sprintf("Fig 12 (%s): 4K FPS vs inferences/segment", p.Name))
}

func fpsPanel(p device.Profile, res device.Resolution, maxInf int, title string) (Table, []FPSSeries) {
	methods := []FPSSeries{
		{Method: "NAS", Model: edsr.ConfigBig},
		{Method: "NEMO", Model: edsr.ConfigBig},
		{Method: "dcSR-1", Model: edsr.ConfigDCSR1},
		{Method: "dcSR-2", Model: edsr.ConfigDCSR2},
		{Method: "dcSR-3", Model: edsr.ConfigDCSR3},
	}
	t := Table{Title: title, Header: []string{"method"}}
	for n := 1; n <= maxInf; n++ {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for mi := range methods {
		m := &methods[mi]
		row := []string{m.Method}
		for n := 1; n <= maxInf; n++ {
			inferences := n
			if m.Method == "NAS" {
				inferences = segmentFrames // NAS enhances every frame
			}
			fps, err := p.SegmentFPS(device.PlaybackSpec{
				Res: res, Model: m.Model, FramesPerSegment: segmentFrames, Inferences: inferences,
			})
			if err != nil {
				m.OOM = true
				m.FPS = append(m.FPS, 0)
				row = append(row, "OOM")
				continue
			}
			m.FPS = append(m.FPS, fps)
			row = append(row, f1(fps))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, methods
}

// PowerResult summarizes paper Fig 8(d): energy per method over a playback
// window plus the peak/sustained power levels.
type PowerResult struct {
	Method    string
	EnergyJ   float64
	PeakW     float64
	Sustained bool
}

// Fig8Power reproduces paper Fig 8(d): the Jetson power trace at 1080p for
// dcSR-1, NEMO and NAS over an 800-second window (long 7.5 s segments as
// in the paper's playback), plus integrated energy. Returns the summary
// table and, for each method, the raw timeline.
func Fig8Power() (Table, []PowerResult, map[string][]device.PowerSample) {
	const window = 800.0
	const dt = 0.5
	specs := []struct {
		name  string
		model edsr.Config
		inf   int
	}{
		{"dcSR-1", edsr.ConfigDCSR1, 1},
		{"NEMO", edsr.ConfigBig, 1},
		{"NAS", edsr.ConfigBig, 225},
	}
	t := Table{
		Title:  "Fig 8(d): power & energy on Jetson (1080p, 800 s window)",
		Header: []string{"method", "peak W", "trace", "energy J", "vs dcSR"},
	}
	var results []PowerResult
	traces := make(map[string][]device.PowerSample)
	var dcsrEnergy float64
	for _, s := range specs {
		samples, energy, err := device.JetsonNX.PowerTimeline(device.PlaybackSpec{
			Res: device.Res1080p, Model: s.model, FramesPerSegment: 225, Inferences: s.inf, FPS: 30,
		}, window, dt)
		if err != nil {
			panic(err)
		}
		peak, min := 0.0, 1e9
		for _, p := range samples {
			if p.Watts > peak {
				peak = p.Watts
			}
			if p.Watts < min {
				min = p.Watts
			}
		}
		r := PowerResult{Method: s.name, EnergyJ: energy, PeakW: peak, Sustained: peak-min < 1e-9}
		results = append(results, r)
		traces[s.name] = samples
		if s.name == "dcSR-1" {
			dcsrEnergy = energy
		}
		shape := "periodic spikes"
		if r.Sustained {
			shape = "sustained"
		}
		t.Add(s.name, f2(peak), shape, f1(energy), fmt.Sprintf("%.1fx", energy/dcsrEnergy))
	}
	return t, results, traces
}
