package experiments

import (
	"math"
	"testing"
	"time"

	"dcsr/internal/device"
	"dcsr/internal/video"
)

// fastEval returns a reduced evaluation config for tests: two genres and
// lighter training than the bench defaults, but the same pipeline.
func fastEval() EvalConfig {
	cfg := DefaultEvalConfig()
	cfg.Genres = []video.Genre{video.GenreNews, video.GenreDocumentary}
	cfg.MicroSteps = 250
	cfg.BigSteps = 400
	return cfg
}

func TestFig1aShape(t *testing.T) {
	_, data := Fig1a()
	if len(data) != 3 {
		t.Fatalf("expected 3 resolutions, got %d", len(data))
	}
	for _, d := range data {
		if d.FPS >= 15 {
			t.Errorf("%s: big model at %.1f FPS, paper reports <15", d.Res.Name, d.FPS)
		}
	}
	// Higher resolution → slower inference.
	if !(data[0].FPS > data[1].FPS && data[1].FPS > data[2].FPS) {
		t.Errorf("FPS not decreasing with resolution: %+v", data)
	}
}

func TestFig1bShape(t *testing.T) {
	_, sizes := Fig1b()
	if len(sizes) != 3 {
		t.Fatal("expected 3 sizes")
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Errorf("model size not growing with resolution: %v", sizes)
	}
	// Paper Fig 1(b): roughly 5 → 20 MB.
	lo := float64(sizes[0]) / (1 << 20)
	hi := float64(sizes[2]) / (1 << 20)
	if lo < 2 || lo > 15 || hi < 10 || hi > 30 {
		t.Errorf("sizes out of the paper's ballpark: %.1f MB … %.1f MB", lo, hi)
	}
}

func TestTable1Shape(t *testing.T) {
	_, sizes := Table1()
	if len(sizes) != 25 {
		t.Fatalf("expected 5x5 grid, got %d cells", len(sizes))
	}
	// The flagship cell (64 filters, 16 ResBlocks — the paper's red big
	// model) reports 16.7 MB; ours must land close.
	got := float64(sizes[[2]int{64, 16}]) / (1 << 20)
	if math.Abs(got-16.7) > 3 {
		t.Errorf("64f×16RB checkpoint %.1f MB, paper reports 16.7", got)
	}
	// Monotone in both axes.
	for _, nf := range []int{4, 8, 16, 32} {
		for _, rb := range []int{4, 8, 12, 16} {
			if sizes[[2]int{nf, rb}] >= sizes[[2]int{nf * 2, rb}] {
				t.Errorf("size not monotone in filters at (%d,%d)", nf, rb)
			}
			if sizes[[2]int{nf, rb}] >= sizes[[2]int{nf, rb + 4}] {
				t.Errorf("size not monotone in resblocks at (%d,%d)", nf, rb)
			}
		}
	}
}

func TestFig8PanelsShape(t *testing.T) {
	for _, res := range []device.Resolution{device.Res720p, device.Res1080p, device.Res4K} {
		_, series := Fig8FPS(res, 5)
		byName := map[string]FPSSeries{}
		for _, s := range series {
			byName[s.Method] = s
		}
		// dcSR-1 meets 30 FPS at n=1 at every resolution.
		if byName["dcSR-1"].FPS[0] < 30 {
			t.Errorf("%s: dcSR-1 n=1 at %.1f FPS", res.Name, byName["dcSR-1"].FPS[0])
		}
		// dcSR-2/3 achieve at least 5 FPS everywhere (paper: "at least
		// 5 FPS in a higher configuration").
		for _, m := range []string{"dcSR-2", "dcSR-3"} {
			for i, fps := range byName[m].FPS {
				if fps < 5 {
					t.Errorf("%s %s n=%d: %.1f FPS < 5", res.Name, m, i+1, fps)
				}
			}
		}
		switch res.Name {
		case "720p", "1080p":
			if byName["NAS"].OOM {
				t.Errorf("%s: NAS should run (no OOM)", res.Name)
			}
			for _, fps := range byName["NAS"].FPS {
				if fps >= 1 {
					t.Errorf("%s: NAS at %.2f FPS, paper reports <1", res.Name, fps)
				}
			}
		case "4K":
			// Paper: NAS and NEMO cannot even run at 4K (OOM).
			if !byName["NAS"].OOM || !byName["NEMO"].OOM {
				t.Error("4K: NAS/NEMO should OOM on the Jetson")
			}
			if byName["dcSR-1"].OOM {
				t.Error("4K: dcSR-1 must not OOM")
			}
		}
	}
}

func TestFig8PowerShape(t *testing.T) {
	_, results, traces := Fig8Power()
	byName := map[string]PowerResult{}
	for _, r := range results {
		byName[r.Method] = r
	}
	if !(byName["dcSR-1"].EnergyJ < byName["NEMO"].EnergyJ && byName["NEMO"].EnergyJ < byName["NAS"].EnergyJ) {
		t.Errorf("energy ordering violated: %+v", results)
	}
	if byName["dcSR-1"].PeakW > 2.2 {
		t.Errorf("dcSR peak %.2f W, paper reports ≤2 W", byName["dcSR-1"].PeakW)
	}
	if !byName["NAS"].Sustained {
		t.Error("NAS trace should be sustained (it infers every frame)")
	}
	if byName["NEMO"].Sustained {
		t.Error("NEMO trace should spike periodically")
	}
	for name, tr := range traces {
		if len(tr) == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	for _, p := range []device.Profile{device.Laptop, device.Desktop} {
		_, series := Fig12FPS(p, 10)
		byName := map[string]FPSSeries{}
		for _, s := range series {
			byName[s.Method] = s
		}
		// dcSR meets 30 FPS regardless of configuration and n (paper §A.2).
		for _, m := range []string{"dcSR-1", "dcSR-2", "dcSR-3"} {
			for i, fps := range byName[m].FPS {
				if fps < 30 {
					t.Errorf("%s %s n=%d: %.1f FPS < 30", p.Name, m, i+1, fps)
				}
			}
		}
		// NEMO only under few instances; NAS never.
		if byName["NEMO"].FPS[0] < 30 {
			t.Errorf("%s NEMO n=1: %.1f FPS", p.Name, byName["NEMO"].FPS[0])
		}
		if byName["NEMO"].FPS[9] >= 30 {
			t.Errorf("%s NEMO n=10: %.1f FPS, should be below 30", p.Name, byName["NEMO"].FPS[9])
		}
		for _, fps := range byName["NAS"].FPS {
			if fps >= 30 {
				t.Errorf("%s NAS meets 30 FPS; it must not", p.Name)
			}
		}
	}
}

func TestFig9Fig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	r, err := RunFig9(fastEval())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Videos {
		dcsr := v.Methods["dcSR"]
		nas := v.Methods["NAS"]
		nemo := v.Methods["NEMO"]
		low := v.Methods["LOW"]
		// All SR methods beat the unenhanced LOW baseline.
		if dcsr.PSNR <= low.PSNR {
			t.Errorf("%s: dcSR %.2f dB not above LOW %.2f dB", v.Genre, dcsr.PSNR, low.PSNR)
		}
		// Paper: dcSR/NEMO within 1 dB PSNR and 0.05 SSIM of NAS.
		if nas.PSNR-dcsr.PSNR > 1 {
			t.Errorf("%s: dcSR %.2f dB more than 1 dB below NAS %.2f dB", v.Genre, dcsr.PSNR, nas.PSNR)
		}
		if nas.PSNR-nemo.PSNR > 1 {
			t.Errorf("%s: NEMO %.2f dB more than 1 dB below NAS %.2f dB", v.Genre, nemo.PSNR, nas.PSNR)
		}
		if nas.SSIM-dcsr.SSIM > 0.05 {
			t.Errorf("%s: dcSR SSIM %.3f more than 0.05 below NAS %.3f", v.Genre, dcsr.SSIM, nas.SSIM)
		}
		// Fig 10: dcSR downloads strictly less than NAS and NEMO; LOW least.
		if dcsr.Bytes >= nas.Bytes || dcsr.Bytes >= nemo.Bytes {
			t.Errorf("%s: dcSR bytes %d not below NAS %d / NEMO %d", v.Genre, dcsr.Bytes, nas.Bytes, nemo.Bytes)
		}
		if low.Bytes >= dcsr.Bytes {
			t.Errorf("%s: LOW bytes %d not below dcSR %d", v.Genre, low.Bytes, dcsr.Bytes)
		}
		// Training speedup: micro-model training is cheaper (paper: ≈3×).
		if v.BigTrainFLOPs/v.DcSRTrainFLOPs < 1.5 {
			t.Errorf("%s: training speedup only %.1fx", v.Genre, v.BigTrainFLOPs/v.DcSRTrainFLOPs)
		}
	}
	if r.MeanSaving() < 0.2 {
		t.Errorf("mean bandwidth saving %.0f%%, paper reports ≈25%%", r.MeanSaving()*100)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	_, bestK, curve := Fig5(cfg)
	if len(curve) < 4 {
		t.Fatalf("sweep too short: %d points", len(curve))
	}
	// The video has 5 generative scenes; the silhouette peak should land
	// near that (clustering can merge visually similar scenes).
	if bestK < 3 || bestK > 8 {
		t.Errorf("silhouette peak at K=%d for a 5-scene video", bestK)
	}
	for _, s := range curve {
		if s < -1 || s > 1 {
			t.Fatalf("silhouette %v out of range", s)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	cfg.MicroSteps = 350
	_, losses := Fig11(cfg)
	if len(losses) != 4 {
		t.Fatalf("expected 4 sizes, got %d", len(losses))
	}
	// Paper Fig 11: training loss grows with data size. Allow local noise
	// but require the ends to be ordered.
	if losses[0] >= losses[len(losses)-1] {
		t.Errorf("training loss did not grow with data size: %v", losses)
	}
}

func TestFig1cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	_, st, perFrame := Fig1c(cfg)
	if len(perFrame) == 0 {
		t.Fatal("no per-frame PSNR")
	}
	// Paper Fig 1(c): one big model cannot serve all frames uniformly —
	// per-frame quality spreads by several dB.
	if st.Max-st.Min < 2 {
		t.Errorf("per-frame PSNR spread %.2f dB, paper shows ≈5 dB", st.Max-st.Min)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	tbl, purities := AblationFeatures(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("features ablation rows: %d", len(tbl.Rows))
	}
	if purities["VAE (trained)"] < 0.5 {
		t.Errorf("trained VAE purity %.2f too low to be useful", purities["VAE (trained)"])
	}
	_, globalTotal, lloydTotal := AblationGlobalKMeans(cfg)
	if globalTotal > lloydTotal+1e-6 {
		t.Errorf("global k-means total inertia %.3f worse than Lloyd %.3f", globalTotal, lloydTotal)
	}
	_, bytesBy := AblationSplit(cfg)
	if bytesBy["variable (dcSR)"] >= bytesBy["fixed"] {
		t.Errorf("variable split bytes %d not below fixed %d", bytesBy["variable (dcSR)"], bytesBy["fixed"])
	}
}

func TestExperimentABRShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	_, res := ExperimentABR(fastEval())
	sr := "sr-aware (dcSR)"
	// The SR-aware policy must deliver at least the displayed quality of
	// the throughput rule (it sees everything the rate rule sees, plus the
	// enhancement dimension) without pathological stalling.
	if res.SeenPSNR[sr] < res.SeenPSNR["rate-based"]-0.1 {
		t.Errorf("SR-aware seen PSNR %.2f below rate-based %.2f", res.SeenPSNR[sr], res.SeenPSNR["rate-based"])
	}
	if res.QoE[sr] < res.QoE["rate-based"]-0.5 {
		t.Errorf("SR-aware QoE %.2f materially below rate-based %.2f", res.QoE[sr], res.QoE["rate-based"])
	}
	if res.Rebuffer[sr] > res.Rebuffer["rate-based"]+5 {
		t.Errorf("SR-aware rebuffered %.1fs vs rate-based %.1fs", res.Rebuffer[sr], res.Rebuffer["rate-based"])
	}
}

func TestExperimentUpscaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	_, res := ExperimentUpscale(fastEval())
	if len(res.SRPSNR) == 0 {
		t.Fatal("no videos evaluated")
	}
	for g, sr := range res.SRPSNR {
		if sr <= res.BicubicPSNR[g] {
			t.Errorf("%s: x2 SR %.2f dB not above bicubic %.2f dB", g, sr, res.BicubicPSNR[g])
		}
	}
}

func TestAblationHalfPel(t *testing.T) {
	_, bytesBy, psnrBy := AblationHalfPel(fastEval())
	// Half-pel must improve the rate-distortion tradeoff on high-motion
	// content: it may spend bytes to buy quality (or vice versa), but must
	// never lose on both axes, and byte growth must be paid for by a
	// proportionate quality gain.
	t.Logf("half-pel %d B / %.2f dB vs full-pel %d B / %.2f dB",
		bytesBy["half-pel"], psnrBy["half-pel"], bytesBy["full-pel"], psnrBy["full-pel"])
	dBytes := float64(bytesBy["half-pel"])/float64(bytesBy["full-pel"]) - 1
	dPSNR := psnrBy["half-pel"] - psnrBy["full-pel"]
	if dBytes > 0 && dPSNR < dBytes*2 { // ≥2 dB per doubled size is a generous floor
		t.Errorf("half-pel spent %.0f%% more bytes for only %.2f dB", dBytes*100, dPSNR)
	}
	if dBytes >= 0.5 || (dBytes > 0 && dPSNR <= 0) {
		t.Errorf("half-pel RD regressed: %+.0f%% bytes, %+.2f dB", dBytes*100, dPSNR)
	}
}

func TestAblationQuantization(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	_, psnrs, sizes := AblationQuantization(fastEval())
	if !(sizes["int8"] < sizes["fp16"] && sizes["fp16"] < sizes["fp32"]) {
		t.Errorf("size ordering violated: %v", sizes)
	}
	// fp16 must be visually lossless; int8 within a small margin.
	if psnrs["fp32"]-psnrs["fp16"] > 0.05 {
		t.Errorf("fp16 lost %.3f dB", psnrs["fp32"]-psnrs["fp16"])
	}
	if psnrs["fp32"]-psnrs["int8"] > 0.5 {
		t.Errorf("int8 lost %.3f dB", psnrs["fp32"]-psnrs["int8"])
	}
}

func TestAblationPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	_, psnrs := AblationPropagation(cfg)
	if psnrs["gated delta (default)"] <= psnrs["LOW"] {
		t.Errorf("gated delta %.2f dB not above LOW %.2f dB", psnrs["gated delta (default)"], psnrs["LOW"])
	}
	// Both propagation modes must at least roughly agree (they share the
	// same I-frame enhancement; they differ only in how it spreads).
	if diff := psnrs["gated delta (default)"] - psnrs["replace (paper Fig 6)"]; diff < -0.5 {
		t.Errorf("gated delta %.2f dB substantially below replace %.2f dB", psnrs["gated delta (default)"], psnrs["replace (paper Fig 6)"])
	}
}

func TestExperimentFaultsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	cfg.MicroSteps = 60
	_, res, err := ExperimentFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 18 {
		t.Fatalf("sweep produced %d cells, want 18", len(res.Cells))
	}
	clean := res.Cell("all", 0, 0)
	if clean == nil || !clean.Completed || clean.Degraded != 0 || clean.RetryCount != 0 {
		t.Fatalf("fault-free baseline cell wrong: %+v", clean)
	}
	for _, c := range res.Cells {
		if c.Scope == "all" && c.DropRate == 0 {
			if !c.Completed || c.Degraded != 0 || c.Stall != 0 {
				t.Errorf("zero-drop cell retries=%d degraded despite no faults: %+v", c.Retries, c)
			}
			continue
		}
		// Under faults, recovery work must be visible whenever the session
		// survived past its first drop.
		if c.Completed && c.Faults > 0 && c.Retries > 0 && c.RetryCount == 0 {
			t.Errorf("cell scope=%s drop=%.2f retries=%d completed through %d drops without retrying",
				c.Scope, c.DropRate, c.Retries, c.Faults)
		}
		// A completed faulty session must still deliver watchable quality:
		// PSNR within reach of the clean baseline (degraded segments only
		// lose the SR delta, not the video).
		if c.Completed && c.PSNR < clean.PSNR-6 {
			t.Errorf("cell scope=%s drop=%.2f retries=%d PSNR %.2f collapsed vs clean %.2f",
				c.Scope, c.DropRate, c.Retries, c.PSNR, clean.PSNR)
		}
	}
	// With a healthy retry budget the high-drop cell should complete.
	if c := res.Cell("all", 0.25, 3); c == nil || !c.Completed {
		t.Errorf("drop=0.25 retries=3 should survive, got %+v", c)
	}
	// Model-only drops never abort — every cell completes, and a total
	// model outage with no retry budget degrades every model fetch while
	// still delivering the (unenhanced) video.
	for _, c := range res.Cells {
		if c.Scope == "model" && !c.Completed {
			t.Errorf("model-scope cell drop=%.2f retries=%d aborted; model faults must degrade, not kill", c.DropRate, c.Retries)
		}
	}
	if c := res.Cell("model", 1, 0); c == nil || !c.Completed || c.Degraded == 0 {
		t.Errorf("total model outage should complete degraded, got %+v", c)
	} else if c.PSNR >= clean.PSNR {
		t.Errorf("degraded playback PSNR %.2f not below clean %.2f", c.PSNR, clean.PSNR)
	}
}

func TestExperimentSwarmShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	cfg.MicroSteps = 60
	// Reduced scale for CI: enough sessions against a tight admission
	// budget to guarantee contention, at a fraction of the bench's 1000
	// sessions and 2s window.
	sc := SwarmConfig{Sessions: 150, MaxInflight: 8, Duration: 400 * time.Millisecond, Ramp: 100 * time.Millisecond}
	_, res, err := ExperimentSwarm(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance invariant: overload sheds typed rejections that the
	// retry policy absorbs — never hard client errors.
	if res.HardErrors != 0 {
		t.Fatalf("swarm recorded %d hard errors; overload must shed, not fail", res.HardErrors)
	}
	if res.Sheds == 0 {
		t.Errorf("%d sessions against max-inflight %d produced no sheds", sc.Sessions, sc.MaxInflight)
	}
	if res.ClientSheds == 0 || int64(res.ClientSheds) > res.Sheds {
		t.Errorf("client-observed sheds %d inconsistent with server's %d", res.ClientSheds, res.Sheds)
	}
	if res.ShedRate <= 0 || res.ShedRate >= 1 {
		t.Errorf("shed rate %.3f out of (0,1)", res.ShedRate)
	}
	if res.Drops == 0 {
		t.Error("faultnet injected no drops at the default rate")
	}
	if res.InflightPeak <= 0 || res.InflightPeak > int64(sc.MaxInflight) {
		t.Errorf("inflight peak %d outside (0, %d]", res.InflightPeak, sc.MaxInflight)
	}
	// Per-op accounting: every session lists the directory once and
	// fetches at least one manifest; half refetch after selecting the
	// non-default video.
	if res.Directory.Count != sc.Sessions {
		t.Errorf("directory ops %d, want %d", res.Directory.Count, sc.Sessions)
	}
	if want := sc.Sessions + sc.Sessions/2; res.Manifest.Count != want {
		t.Errorf("manifest ops %d, want %d", res.Manifest.Count, want)
	}
	for _, op := range []struct {
		name string
		st   SwarmOpStats
	}{{"manifest", res.Manifest}, {"directory", res.Directory}, {"segment", res.Segment}, {"model", res.Model}} {
		if op.st.Count == 0 {
			t.Errorf("%s: no successful ops", op.name)
			continue
		}
		if op.st.P50ms <= 0 || op.st.P99ms < op.st.P50ms || op.st.Maxms < op.st.P99ms {
			t.Errorf("%s latency summary inconsistent: %+v", op.name, op.st)
		}
	}
	// Contention plus a fair scheduler should still serve sessions
	// evenly; Jain's index collapses toward 1/n only when a few sessions
	// monopolize the server.
	if res.FairnessJain < 0.5 || res.FairnessJain > 1.0000001 {
		t.Errorf("Jain fairness %.3f out of the healthy range", res.FairnessJain)
	}
	// The window bounds the run: everything beyond it is the slowest
	// session's final in-flight op, not unbounded queueing.
	if res.ElapsedSec < res.WindowSec || res.ElapsedSec > res.WindowSec+30 {
		t.Errorf("elapsed %.2fs implausible for a %.2fs window", res.ElapsedSec, res.WindowSec)
	}
	if res.Videos != 2 || res.Sessions != sc.Sessions {
		t.Errorf("result header wrong: %+v", res)
	}
}

func TestExperimentCacheBudgetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment in short mode")
	}
	cfg := fastEval()
	cfg.MicroSteps = 60
	_, res, err := ExperimentCacheBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 5 {
		t.Fatalf("sweep produced %d cells, want 5", len(res.Cells))
	}
	byLabel := map[string]CacheBudgetCell{}
	for _, c := range res.Cells {
		byLabel[c.Label] = c
		// The budget changes download accounting only, never playback.
		if c.Degraded != 0 {
			t.Errorf("budget %q degraded %d segments; evictions must re-download, not degrade", c.Label, c.Degraded)
		}
		if c.Enhanced != res.Cells[0].Enhanced {
			t.Errorf("budget %q enhanced %d frames, want %d (playback must not change)",
				c.Label, c.Enhanced, res.Cells[0].Enhanced)
		}
		if c.ResidentBytes > c.Budget && c.Budget > 0 {
			t.Errorf("budget %q resident %d B exceeds budget %d B", c.Label, c.ResidentBytes, c.Budget)
		}
	}
	unbounded := byLabel["unbounded"]
	if unbounded.Evictions != 0 {
		t.Errorf("unbounded cache evicted %d models", unbounded.Evictions)
	}
	if off := byLabel["off"]; off.CacheHits != 0 || off.ResidentBytes != 0 {
		t.Errorf("disabled cache recorded hits=%d resident=%d", off.CacheHits, off.ResidentBytes)
	}
	// An ample budget must reproduce the unbounded accounting exactly.
	if all := byLabel["all models"]; all.CacheHits != unbounded.CacheHits || all.Downloads != unbounded.Downloads {
		t.Errorf("ample budget hits=%d downloads=%d, want unbounded's %d/%d",
			all.CacheHits, all.Downloads, unbounded.CacheHits, unbounded.Downloads)
	}
	// A single-model budget on a multi-model clip must trade evictions
	// for extra downloads — never fewer bytes than unbounded needs.
	if one := byLabel["1 model"]; res.ModelCount > 1 {
		if one.Evictions == 0 {
			t.Errorf("one-model budget over %d models produced no evictions", res.ModelCount)
		}
		if one.ModelBytes < unbounded.ModelBytes {
			t.Errorf("one-model budget downloaded %d model B, less than unbounded's %d", one.ModelBytes, unbounded.ModelBytes)
		}
	}
}
