package experiments

import (
	"dcsr/internal/cluster"
	"dcsr/internal/core"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// newTrainedVAE builds and trains the feature-extraction VAE the way the
// core pipeline configures it.
func newTrainedVAE(cfg core.ServerConfig, frames []*video.RGB, seed int64) (*vae.Model, error) {
	vm, err := vae.New(cfg.VAE, seed+1)
	if err != nil {
		return nil, err
	}
	opts := cfg.VAETrain
	opts.Seed = seed
	if _, err := vm.Train(frames, opts); err != nil {
		return nil, err
	}
	return vm, nil
}

// globalKMeans clusters feature vectors and returns the assignment.
func globalKMeans(feats [][]float64, k int) ([]int, error) {
	res, err := cluster.GlobalKMeans(feats, k, 0)
	if err != nil {
		return nil, err
	}
	return res.Assign, nil
}
