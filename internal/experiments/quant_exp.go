package experiments

import (
	"fmt"

	"dcsr/internal/core"
	"dcsr/internal/video"
)

// QuantGateResult summarizes one pipeline run with the int8 calibration
// stage enabled: how many cluster models passed the quality gate, the
// mean per-cluster PSNRs of the two numeric paths on their calibration
// frames, and how playback actually routed.
type QuantGateResult struct {
	// Models is the number of trained cluster models calibrated.
	Models int `json:"models"`
	// Fallbacks counts clusters the gate kept on float32.
	Fallbacks    int     `json:"fallbacks"`
	FallbackRate float64 `json:"fallback_rate"`
	// PSNRFloat32/PSNRInt8 are means over clusters of the calibration
	// PSNR against the pristine originals; PSNRDelta = float32 − int8
	// (positive means the quantized path lost that many dB).
	PSNRFloat32 float64 `json:"psnr_float32"`
	PSNRInt8    float64 `json:"psnr_int8"`
	PSNRDelta   float64 `json:"psnr_delta"`
	// Enhanced/EnhancedInt8 are the playback routing counts: I frames
	// enhanced in total and the subset served on the int8 kernel path.
	Enhanced     int `json:"enhanced"`
	EnhancedInt8 int `json:"enhanced_int8"`
}

// ExperimentQuantGate prepares the news video with the quantize_int8
// stage enabled (default 0.5 dB gate), plays it back, and reports the
// per-cluster gate outcomes plus the playback precision routing.
func ExperimentQuantGate(cfg EvalConfig) (Table, *QuantGateResult, error) {
	clip := cfg.clip(video.GenreNews)
	frames := clip.YUVFrames()
	sc := cfg.serverConfig()
	sc.Quant = core.QuantConfig{Enabled: true}
	prep, err := core.Prepare(frames, clip.FPS, sc)
	if err != nil {
		return Table{}, nil, err
	}
	playRes, err := core.NewPlayer(prep).Play()
	if err != nil {
		return Table{}, nil, err
	}

	r := &QuantGateResult{
		Enhanced:     playRes.Decode.Enhanced,
		EnhancedInt8: playRes.Decode.EnhancedInt8,
	}
	t := Table{
		Title:  "Int8 calibration quality gate (per cluster)",
		Header: []string{"cluster", "f32 PSNR (dB)", "int8 PSNR (dB)", "delta", "verdict"},
	}
	for _, label := range prep.Manifest.ModelLabels() {
		sm := prep.Models[label]
		if sm == nil || sm.Quant == nil {
			continue
		}
		q := sm.Quant
		r.Models++
		r.PSNRFloat32 += q.PSNRFloat32
		r.PSNRInt8 += q.PSNRInt8
		verdict := "int8"
		if !q.Int8OK {
			verdict = "float32 fallback"
			r.Fallbacks++
		}
		t.Add(fmt.Sprintf("%d", label), f2(q.PSNRFloat32), f2(q.PSNRInt8),
			f2(q.PSNRFloat32-q.PSNRInt8), verdict)
	}
	if r.Models > 0 {
		r.PSNRFloat32 /= float64(r.Models)
		r.PSNRInt8 /= float64(r.Models)
		r.PSNRDelta = r.PSNRFloat32 - r.PSNRInt8
		r.FallbackRate = float64(r.Fallbacks) / float64(r.Models)
	}
	return t, r, nil
}
