package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/faultnet"
	"dcsr/internal/quality"
	"dcsr/internal/transport"
	"dcsr/internal/video"
)

// FaultCell is the outcome of streaming one playback session under one
// (drop scope, drop rate, retry budget) combination.
type FaultCell struct {
	// Scope is "all" (every response may drop) or "model" (only
	// micro-model responses drop — a model-CDN outage while video
	// delivery stays healthy).
	Scope    string
	DropRate float64
	Retries  int

	// Completed reports whether playback finished. With no retry budget a
	// dropped segment or manifest response is fatal; model drops always
	// degrade instead.
	Completed bool
	// PSNR is the mean luma+chroma PSNR against the pristine source
	// (NaN-free only when Completed).
	PSNR float64
	// Degraded counts segments that played without SR.
	Degraded int
	// RetryCount, Reconnects and Stall are the client's fault-recovery
	// accounting for the whole session.
	RetryCount int
	Reconnects int
	Stall      time.Duration
	// Faults is how many responses the injector actually dropped.
	Faults int
}

// FaultsResult is the full sweep (drop rate × retry budget).
type FaultsResult struct {
	Cells []FaultCell
}

// Cell returns the sweep entry for (scope, drop, retries), or nil.
func (r *FaultsResult) Cell(scope string, drop float64, retries int) *FaultCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Scope == scope && c.DropRate == drop && c.Retries == retries {
			return c
		}
	}
	return nil
}

// ExperimentFaults measures fault-tolerant streaming end to end: one
// prepared video is streamed through a fault-injecting connection while
// sweeping the response drop rate against the client's retry budget. It
// reports playback quality (PSNR vs the pristine source), how many
// segments degraded to unenhanced playback, and the recovery cost
// (retries, reconnects, backoff stall). Every cell uses a seeded injector
// and a seeded jitter PRNG, so the table is reproducible.
//
// The headline behaviour: with no retry budget any dropped response ends
// the session, while even a small budget converts drops into bounded
// stall plus (for model fetches that exhaust the budget) degraded
// segments — the graceful-degradation story of docs/OPERATIONS.md as a
// measured curve.
func ExperimentFaults(cfg EvalConfig) (Table, *FaultsResult, error) {
	genre := video.GenreNews
	if len(cfg.Genres) > 0 {
		genre = cfg.Genres[0]
	}
	clip := cfg.clip(genre)
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, cfg.serverConfig())
	if err != nil {
		return Table{}, nil, fmt.Errorf("experiments: faults prepare: %w", err)
	}
	srv, err := transport.NewServer(prep)
	if err != nil {
		return Table{}, nil, fmt.Errorf("experiments: faults server: %w", err)
	}

	retryBudgets := []int{0, 1, 3}
	res := &FaultsResult{}
	table := Table{
		Title:  "Fault-injected streaming: drop scope × rate × retry budget (genre " + genre.String() + ")",
		Header: []string{"scope", "drop", "retries", "completed", "PSNR(dB)", "degraded", "retried", "reconnects", "stall(ms)", "dropped"},
	}
	runCell := func(scope string, drop float64, budget int, fc faultnet.Config) {
		inj := faultnet.New(fc)
		var open []io.Closer
		dial := func() (io.ReadWriter, error) {
			cconn, sconn := net.Pipe()
			//lint:allow errcheck fault sweep: handler errors are the injected faults under test, counted by the injector, not failures to surface
			//lint:allow goleak the handler exits when runCell closes both pipe ends below; a WaitGroup per cell would serialize the sweep for no coverage gain
			go func() { _ = srv.ServeConn(sconn) }()
			open = append(open, cconn, sconn)
			return inj.Wrap(cconn), nil
		}
		conn, _ := dial()
		client := transport.NewClient(conn)
		client.Redial = dial
		client.Retry = transport.RetryPolicy{
			MaxRetries: budget,
			// Keep the sweep fast: microsecond-scale backoffs with the
			// same exponential shape as production settings.
			BaseDelay: 200 * time.Microsecond,
			MaxDelay:  2 * time.Millisecond,
			Seed:      cfg.Seed,
		}
		out, stats, err := client.Play(true)
		cell := FaultCell{Scope: scope, DropRate: drop, Retries: budget,
			RetryCount: client.Retries, Reconnects: client.Reconnects,
			Stall: client.StallTime, Faults: inj.Counts()["drop"]}
		if err == nil {
			cell.Completed = true
			cell.Degraded = stats.DegradedSegments
			var psnr float64
			for i := range out {
				psnr += quality.PSNRYUV(frames[i], out[i])
			}
			cell.PSNR = psnr / float64(len(out))
		}
		for _, c := range open {
			//lint:allow errcheck tearing down net.Pipe ends after the cell; double-close of an already-broken pipe is expected here
			c.Close()
		}
		res.Cells = append(res.Cells, cell)
		psnrCell := "-"
		completed := "aborted"
		if cell.Completed {
			psnrCell = f2(cell.PSNR)
			completed = "yes"
		}
		table.Add(scope, f2(drop), fmt.Sprint(budget), completed, psnrCell,
			fmt.Sprint(cell.Degraded), fmt.Sprint(cell.RetryCount),
			fmt.Sprint(cell.Reconnects), f2(float64(cell.Stall)/float64(time.Millisecond)),
			fmt.Sprint(cell.Faults))
	}

	// Scope "all": every response may drop (a flaky last-mile link). A
	// dropped segment or manifest response aborts the session once the
	// budget is exhausted, so this axis measures survival and stall.
	for di, drop := range []float64{0, 0.1, 0.25, 0.4} {
		for ri, budget := range retryBudgets {
			runCell("all", drop, budget, faultnet.Config{
				Seed:     cfg.Seed + int64(100*di+ri),
				DropRate: drop,
			})
		}
	}
	// Scope "model": only micro-model responses drop (the model CDN is
	// down while video delivery stays healthy). Exhausted budgets degrade
	// instead of aborting, so this axis measures the quality cost of
	// playing without SR — the degraded-segment curve.
	for di, drop := range []float64{0.5, 1} {
		for ri, budget := range retryBudgets {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+100*di+ri)))
			mdrop := drop
			runCell("model", drop, budget, faultnet.Config{
				Decide: func(_ int, frame []byte) faultnet.Kind {
					if len(frame) == 9 && frame[4] == transport.OpModel && rng.Float64() < mdrop {
						return faultnet.KindDrop
					}
					return faultnet.KindNone
				},
			})
		}
	}
	return table, res, nil
}
