package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/faultnet"
	"dcsr/internal/obs"
	"dcsr/internal/transport"
	"dcsr/internal/video"
)

// SwarmConfig shapes the fleet-load experiment. The zero value runs the
// headline cell from docs/SERVING.md: 1000 concurrent clients against an
// admission budget of 64 with 2% response loss.
type SwarmConfig struct {
	// Sessions is how many synthetic clients stream concurrently.
	Sessions int
	// DropRate is the faultnet response-loss probability per exchange
	// (negative disables fault injection entirely).
	DropRate float64
	// MaxInflight is the server's global admission budget; requests
	// beyond it are shed with a typed retry-after, never queued.
	MaxInflight int
	// PerConnRate and PerConnBurst shape the per-connection token
	// bucket — the fairness mechanism. Sessions run a tight request
	// loop, so without a per-client budget whoever holds an inflight
	// slot monopolizes it; with one, every client is paced to the same
	// sustainable rate and the fairness index stays near 1.
	PerConnRate  float64
	PerConnBurst float64
	// RetryAfter is the hint attached to concurrency sheds.
	RetryAfter time.Duration
	// Duration is the per-session measurement window: every session
	// loops its playlist walk until its window closes, so all sessions
	// are active for the same wall time and per-session ops are
	// comparable (the fairness index is Jain over exactly those counts).
	Duration time.Duration
	// Ramp staggers session starts evenly across this span. Without it
	// Sessions×PerConnBurst ops land on the admission gate in the same
	// instant and the thundering herd dominates the latency tail; with
	// it the tail reflects steady-state contention, which is what
	// capacity planning needs.
	Ramp time.Duration
	// Clock supplies timestamps for latency measurement; nil means the
	// wall clock. Injected so the experiment's control flow stays free
	// of ambient time sources.
	Clock func() time.Time
}

func (c SwarmConfig) withDefaults() SwarmConfig {
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.DropRate == 0 {
		c.DropRate = 0.02
	}
	if c.DropRate < 0 {
		c.DropRate = 0
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	// The per-conn rate is sized so the aggregate offered load
	// (Sessions × PerConnRate) stays below the admitted-op capacity of
	// the inflight gate; the fair rate bucket must be the binding
	// constraint or admission degenerates into a racy free-for-all at
	// the global gate and the fairness index collapses.
	if c.PerConnRate <= 0 {
		c.PerConnRate = 5
	}
	if c.PerConnBurst <= 0 {
		c.PerConnBurst = 3
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Ramp <= 0 {
		c.Ramp = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// SwarmOpStats summarizes client-observed latency for one request kind.
// Latencies are end-to-end per successful call, including any shed
// backoff and drop-recovery retries inside that call.
type SwarmOpStats struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
	Maxms float64 `json:"max_ms"`
}

// SwarmResult is the machine-readable outcome of the swarm experiment
// (BENCH_swarm.json embeds it). The invariant the experiment pins:
// HardErrors == 0 while Sheds > 0 — overload is shed as typed,
// retryable rejections that clients absorb, never as client failures.
type SwarmResult struct {
	Sessions    int   `json:"sessions"`
	Videos      int   `json:"videos"`
	MaxInflight int   `json:"max_inflight"`
	// Requests counts every request frame the server read — shed ones
	// included; Sheds counts the typed rejections among them, so
	// ShedRate = Sheds/Requests is the fraction of offered load shed.
	Requests    int64   `json:"requests"`
	Sheds       int64   `json:"sheds"`
	ShedRate    float64 `json:"shed_rate"`
	ClientSheds int     `json:"client_sheds"`
	// Drops is how many responses faultnet destroyed; Retries and
	// Reconnects are the clients' recovery work for them.
	Drops      int `json:"faultnet_drops"`
	Retries    int `json:"client_retries"`
	Reconnects int `json:"client_reconnects"`
	// HardErrors counts sessions that failed outright. Must be zero:
	// sheds and drops are both absorbed by the retry policy.
	HardErrors int `json:"hard_errors"`
	// FairnessJain is Jain's index over the ops each session completed
	// inside the shared measurement window: (Σx)²/(n·Σx²), 1.0 =
	// perfectly even service, 1/n = one session monopolized the server.
	FairnessJain float64 `json:"fairness_jain"`
	// WindowSec is the configured measurement window; ElapsedSec the
	// actual wall time including the slowest session's final op.
	WindowSec    float64 `json:"window_sec"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	InflightPeak int64   `json:"inflight_peak"`

	Manifest  SwarmOpStats `json:"manifest"`
	Directory SwarmOpStats `json:"directory"`
	Segment   SwarmOpStats `json:"segment"`
	Model     SwarmOpStats `json:"model"`
}

// swarm op indices for latency sample buckets.
const (
	swarmOpManifest = iota
	swarmOpDirectory
	swarmOpSegment
	swarmOpModel
	swarmOpCount
)

// swarmSession is what one synthetic client hands back to the collector.
type swarmSession struct {
	samples    [swarmOpCount][]float64 // per-op latencies, milliseconds
	ops        int
	sheds      int
	retries    int
	reconnects int
	err        error
}

func pctl(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func swarmStats(samples []float64) SwarmOpStats {
	sort.Float64s(samples)
	st := SwarmOpStats{Count: len(samples), P50ms: pctl(samples, 0.50), P99ms: pctl(samples, 0.99)}
	if len(samples) > 0 {
		st.Maxms = samples[len(samples)-1]
	}
	return st
}

// jain computes Jain's fairness index over per-session service shares.
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// ExperimentSwarm is the fleet-load harness: sc.Sessions synthetic
// clients concurrently stream from ONE server hosting two content-
// distinct videos, routed by digest, through lossy faultnet links, while
// admission control sheds everything past sc.MaxInflight with typed
// retry-after hints. Each session lists the directory, selects its video
// by digest, then loops a walk over every segment (fetching micro-models
// on first reference) until the shared measurement window closes — the
// real playback access pattern, minus decode (the server under test is
// the transport layer, not the codec).
//
// The experiment measures what docs/SERVING.md needs for capacity
// planning: per-op p50/p99 latency under contention, the shed rate at
// this offered load, Jain's fairness index across sessions, and — the
// acceptance invariant — zero hard client errors: every shed and every
// injected drop is absorbed by the retry policy.
func ExperimentSwarm(cfg EvalConfig, sc SwarmConfig) (Table, *SwarmResult, error) {
	sc = sc.withDefaults()
	clock := sc.Clock

	// Two content-distinct videos: different genres, different seeds.
	gA, gB := video.GenreNews, video.GenreSports
	if len(cfg.Genres) > 1 {
		gA, gB = cfg.Genres[0], cfg.Genres[1]
	}
	cfgB := cfg
	cfgB.Seed = cfg.Seed + 1
	var preps [2]*core.Prepared
	for i, c := range []struct {
		cfg EvalConfig
		g   video.Genre
	}{{cfg, gA}, {cfgB, gB}} {
		clip := c.cfg.clip(c.g)
		prep, err := core.Prepare(clip.YUVFrames(), clip.FPS, c.cfg.serverConfig())
		if err != nil {
			return Table{}, nil, fmt.Errorf("experiments: swarm prepare %d: %w", i, err)
		}
		preps[i] = prep
	}

	// One fleet server, its own metric sink (the swarm's counters must
	// not mix with other experiments sharing cfg.Obs).
	srvObs := obs.New()
	srv := transport.NewFleetServer()
	srv.Obs = srvObs
	srv.Admission = transport.AdmissionConfig{
		MaxInflight:  sc.MaxInflight,
		PerConnRate:  sc.PerConnRate,
		PerConnBurst: sc.PerConnBurst,
		RetryAfter:   sc.RetryAfter,
	}
	var digests [2]string
	for i, prep := range preps {
		d, err := srv.Register(prep)
		if err != nil {
			return Table{}, nil, fmt.Errorf("experiments: swarm register %d: %w", i, err)
		}
		digests[i] = d
	}

	// One seeded injector shared by every link, so total loss tracks
	// DropRate across the whole swarm.
	inj := faultnet.New(faultnet.Config{Seed: cfg.Seed, DropRate: sc.DropRate})

	runSession := func(i int) swarmSession {
		// Staggered start (see SwarmConfig.Ramp); each session measures
		// its own full Duration window from its own start.
		time.Sleep(sc.Ramp * time.Duration(i) / time.Duration(sc.Sessions))
		var s swarmSession
		var open []io.Closer
		defer func() {
			for _, c := range open {
				//lint:allow errcheck tearing down net.Pipe ends after the session; double-close of a faulted pipe is expected
				c.Close()
			}
		}()
		dial := func() (io.ReadWriter, error) {
			cconn, sconn := net.Pipe()
			//lint:allow errcheck handler errors here are injected faults and client hangups, counted by the injector and the client's recovery stats
			//lint:allow goleak the handler exits when the session closes both pipe ends in the deferred teardown above
			go func() { _ = srv.ServeConn(sconn) }()
			open = append(open, cconn, sconn)
			return inj.Wrap(cconn), nil
		}
		conn, _ := dial()
		client := transport.NewClient(conn)
		client.Redial = dial
		client.Retry = transport.RetryPolicy{
			// Both budgets are deep because an op under sustained
			// contention makes MANY attempts: each shed retry is a fresh
			// wire exchange that can independently draw a faultnet drop,
			// so the drop budget must cover the worst-case attempt count
			// of one op, not the 2% per-exchange rate. Under transient
			// overload a client waits, it does not fail.
			MaxRetries:  128,
			ShedRetries: 1 << 16,
			BaseDelay:   200 * time.Microsecond,
			MaxDelay:    2 * time.Millisecond,
			Seed:        cfg.Seed + int64(i),
		}

		start := clock()
		timed := func(op int, f func() error) error {
			t0 := clock()
			err := f()
			if err != nil {
				return err
			}
			s.samples[op] = append(s.samples[op], float64(clock().Sub(t0))/float64(time.Millisecond))
			s.ops++
			return nil
		}
		finish := func(err error) swarmSession {
			s.err = err
			s.sheds = client.Sheds
			s.retries = client.Retries
			s.reconnects = client.Reconnects
			return s
		}

		// The first manifest negotiates mux framing (required to route
		// at a non-default video); then half the swarm selects each
		// hosted video by digest and refetches that video's manifest.
		var wm *transport.WireManifest
		if err := timed(swarmOpManifest, func() error {
			var err error
			wm, err = client.Manifest()
			return err
		}); err != nil {
			return finish(fmt.Errorf("session %d manifest: %w", i, err))
		}
		want := digests[i%2]
		if err := timed(swarmOpDirectory, func() error {
			return client.SelectVideoCtx(context.Background(), want)
		}); err != nil {
			return finish(fmt.Errorf("session %d select %s: %w", i, want[:8], err))
		}
		if want != digests[0] {
			if err := timed(swarmOpManifest, func() error {
				var err error
				wm, err = client.Manifest()
				return err
			}); err != nil {
				return finish(fmt.Errorf("session %d manifest after select: %w", i, err))
			}
		}
		// Loop the playlist walk until the window closes, so every
		// session is active for the same wall time and per-session op
		// counts are directly comparable (models are fetched on first
		// reference only; later walks replay them from the client cache,
		// like a viewer scrubbing back through the video).
		deadline := start.Add(sc.Duration)
		fetched := make(map[int]bool)
		for clock().Before(deadline) {
			for j := range wm.Segments {
				if !clock().Before(deadline) {
					break
				}
				if err := timed(swarmOpSegment, func() error {
					_, err := client.Segment(j)
					return err
				}); err != nil {
					return finish(fmt.Errorf("session %d segment %d: %w", i, j, err))
				}
				if lbl := wm.Segments[j].ModelLabel; lbl >= 0 && !fetched[lbl] {
					fetched[lbl] = true
					if err := timed(swarmOpModel, func() error {
						_, _, err := client.Model(lbl, wm.MicroConfig)
						return err
					}); err != nil {
						return finish(fmt.Errorf("session %d model %d: %w", i, lbl, err))
					}
				}
			}
		}
		return finish(nil)
	}

	t0 := clock()
	results := make([]swarmSession, sc.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < sc.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(i)
		}(i)
	}
	wg.Wait()
	elapsed := clock().Sub(t0)

	res := &SwarmResult{
		Sessions:    sc.Sessions,
		Videos:      len(digests),
		MaxInflight: sc.MaxInflight,
		Sheds:       srvObs.Counter("transport_shed_total").Value(),
		Requests:    srvObs.Counter("transport_requests_total").Value(),
		Drops:       inj.Counts()["drop"],
		WindowSec:   float64(sc.Duration) / float64(time.Second),
		ElapsedSec:  float64(elapsed) / float64(time.Second),
	}
	res.InflightPeak = srvObs.Gauge("transport_inflight_peak").Value()
	if res.Requests > 0 {
		res.ShedRate = float64(res.Sheds) / float64(res.Requests)
	}
	var all [swarmOpCount][]float64
	var opsPerSession []float64
	var firstErr error
	for i := range results {
		s := &results[i]
		res.ClientSheds += s.sheds
		res.Retries += s.retries
		res.Reconnects += s.reconnects
		if s.err != nil {
			res.HardErrors++
			if firstErr == nil {
				firstErr = s.err
			}
			continue
		}
		for op := 0; op < swarmOpCount; op++ {
			all[op] = append(all[op], s.samples[op]...)
		}
		opsPerSession = append(opsPerSession, float64(s.ops))
	}
	res.FairnessJain = jain(opsPerSession)
	res.Manifest = swarmStats(all[swarmOpManifest])
	res.Directory = swarmStats(all[swarmOpDirectory])
	res.Segment = swarmStats(all[swarmOpSegment])
	res.Model = swarmStats(all[swarmOpModel])

	table := Table{
		Title: fmt.Sprintf("Swarm load: %d concurrent clients, %d videos, admission max-inflight %d, drop rate %s",
			sc.Sessions, res.Videos, sc.MaxInflight, f2(sc.DropRate)),
		Header: []string{"op", "count", "p50(ms)", "p99(ms)", "max(ms)"},
	}
	for _, row := range []struct {
		name string
		st   SwarmOpStats
	}{
		{"directory", res.Directory},
		{"manifest", res.Manifest},
		{"segment", res.Segment},
		{"model", res.Model},
	} {
		table.Add(row.name, fmt.Sprint(row.st.Count), f2(row.st.P50ms), f2(row.st.P99ms), f2(row.st.Maxms))
	}
	table.Add("— sheds", fmt.Sprint(res.Sheds), "", "", "")
	table.Add("— shed rate", f3(res.ShedRate), "", "", "")
	table.Add("— fairness (Jain)", f3(res.FairnessJain), "", "", "")
	table.Add("— hard errors", fmt.Sprint(res.HardErrors), "", "", "")

	if firstErr != nil {
		return table, res, fmt.Errorf("experiments: swarm: %d/%d sessions hard-failed, first: %w",
			res.HardErrors, sc.Sessions, firstErr)
	}
	return table, res, nil
}
