package experiments

import (
	"fmt"
	"math"
	"sort"

	"dcsr/internal/baseline"
	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/obs"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// EvalConfig scales the trained experiments. The defaults are the
// "evaluation scale" documented in EXPERIMENTS.md: small frames and small
// models so that pure-Go CPU training finishes in seconds while every
// pipeline stage (codec, VAE, clustering, training, decoder-integrated
// enhancement) runs for real.
type EvalConfig struct {
	W, H                       int
	QP                         int
	Micro, Big                 edsr.Config
	MicroSteps                 int
	BigSteps                   int
	Genres                     []video.Genre
	CueFramesMin, CueFramesMax int
	Seed                       int64

	// Obs, when set, instruments every Prepare/Play an experiment runs
	// (dcsr-bench uses this to embed a metrics snapshot in its JSON
	// report). Nil disables instrumentation.
	Obs *obs.Obs
}

// DefaultEvalConfig returns the evaluation-scale settings.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		W: 80, H: 48,
		QP:           51, // the paper's CRF-51 "worst quality" regime
		Micro:        edsr.Config{Filters: 8, ResBlocks: 2},
		Big:          edsr.Config{Filters: 16, ResBlocks: 4},
		MicroSteps:   400,
		BigSteps:     600,
		Genres:       video.AllGenres(),
		CueFramesMin: 5,
		CueFramesMax: 9,
		Seed:         7,
	}
}

func (c EvalConfig) serverConfig() core.ServerConfig {
	return core.ServerConfig{
		QP:          c.QP,
		Split:       splitter.Config{Threshold: 14, MinLen: 3},
		VAE:         vae.Config{ImgSize: 16, LatentDim: 8, BaseCh: 4},
		VAETrain:    vae.TrainOptions{Epochs: 25, BatchSize: 4, Seed: c.Seed},
		BigModel:    c.Big,
		MicroConfig: c.Micro,
		Train:       edsr.TrainOptions{Steps: c.MicroSteps, BatchSize: 2, PatchSize: 16},
		Seed:        c.Seed,
		Obs:         c.Obs,
	}
}

func (c EvalConfig) clip(g video.Genre) *video.Clip {
	gc := video.GenreConfig(g, c.W, c.H, c.Seed)
	gc.MinFrames = c.CueFramesMin
	gc.MaxFrames = c.CueFramesMax
	return video.Generate(gc)
}

// MethodQuality is one method's outcome on one video.
type MethodQuality struct {
	PSNR, SSIM   float64
	Bytes        int
	PerFramePSNR []float64
}

// VideoResult is the full comparison for one genre video (paper Figs 9/10).
type VideoResult struct {
	Genre          video.Genre
	Frames         int
	Segments       int
	K              int
	Methods        map[string]MethodQuality
	DcSRTrainFLOPs float64
	BigTrainFLOPs  float64
}

// Fig9Result aggregates the per-video comparisons.
type Fig9Result struct {
	Videos []VideoResult
}

// RunFig9 runs the paper's §4 quality/bandwidth comparison: for each genre
// video, prepare dcSR (micro models per cluster) and the NAS/NEMO big
// model over the same low-quality stream, play all four methods back, and
// measure PSNR, SSIM and downloaded bytes.
func RunFig9(cfg EvalConfig) (*Fig9Result, error) {
	out := &Fig9Result{}
	for _, g := range cfg.Genres {
		clip := cfg.clip(g)
		frames := clip.YUVFrames()
		vr := VideoResult{Genre: g, Frames: len(frames), Methods: map[string]MethodQuality{}}

		// dcSR.
		prep, err := core.Prepare(frames, clip.FPS, cfg.serverConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s dcSR prepare: %v", g, err)
		}
		vr.Segments = len(prep.Segments)
		vr.K = prep.K
		vr.DcSRTrainFLOPs = prep.TrainFLOPs
		pl := core.NewPlayer(prep)
		pl.Obs = cfg.Obs
		dcsrPlay, err := pl.Play()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s dcSR play: %v", g, err)
		}
		vr.Methods["dcSR"] = measure(frames, dcsrPlay.Frames, dcsrPlay.TotalBytes())

		// One big model shared by NAS and NEMO (both train one large model
		// on all frames; they differ only in the inference schedule).
		nas, err := baseline.Prepare(baseline.NAS, frames, prep.Stream, baseline.Config{
			Model:            cfg.Big,
			Train:            edsr.TrainOptions{Steps: cfg.BigSteps, BatchSize: 2, PatchSize: 16},
			TrainFrameStride: 4,
			Seed:             cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s NAS prepare: %v", g, err)
		}
		vr.BigTrainFLOPs = nas.TrainFLOPs
		nasPlay, err := nas.Play()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s NAS play: %v", g, err)
		}
		vr.Methods["NAS"] = measure(frames, nasPlay.Frames, nasPlay.TotalBytes)

		nemo := &baseline.Prepared{
			Method: baseline.NEMO, Model: nas.Model,
			ModelBytes: nas.ModelBytes, Stream: prep.Stream,
		}
		nemoPlay, err := nemo.Play()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s NEMO play: %v", g, err)
		}
		vr.Methods["NEMO"] = measure(frames, nemoPlay.Frames, nemoPlay.TotalBytes)

		low := &baseline.Prepared{Method: baseline.Low, Stream: prep.Stream}
		lowPlay, err := low.Play()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s LOW play: %v", g, err)
		}
		vr.Methods["LOW"] = measure(frames, lowPlay.Frames, lowPlay.TotalBytes)

		out.Videos = append(out.Videos, vr)
	}
	return out, nil
}

func measure(orig, played []*video.YUV, bytes int) MethodQuality {
	q := MethodQuality{Bytes: bytes}
	for i := range orig {
		p := quality.PSNRYUV(orig[i], played[i])
		q.PerFramePSNR = append(q.PerFramePSNR, p)
		q.SSIM += quality.SSIMYUV(orig[i], played[i])
	}
	st := quality.Summarize(q.PerFramePSNR)
	q.PSNR = st.Mean
	q.SSIM /= float64(len(orig))
	return q
}

// Methods lists the comparison methods in presentation order.
var Methods = []string{"NAS", "NEMO", "dcSR", "LOW"}

// QualityTables renders paper Fig 9(a) and 9(b).
func (r *Fig9Result) QualityTables() (psnr, ssim Table) {
	psnr = Table{Title: "Fig 9(a): PSNR (dB) per video", Header: []string{"video"}}
	ssim = Table{Title: "Fig 9(b): SSIM per video", Header: []string{"video"}}
	psnr.Header = append(psnr.Header, Methods...)
	ssim.Header = append(ssim.Header, Methods...)
	for _, v := range r.Videos {
		pr := []string{v.Genre.String()}
		sr := []string{v.Genre.String()}
		for _, m := range Methods {
			pr = append(pr, f2(v.Methods[m].PSNR))
			sr = append(sr, f3(v.Methods[m].SSIM))
		}
		psnr.Rows = append(psnr.Rows, pr)
		ssim.Rows = append(ssim.Rows, sr)
	}
	return psnr, ssim
}

// NetworkTable renders paper Fig 10: per-video bytes normalized to NAS.
func (r *Fig9Result) NetworkTable() Table {
	t := Table{
		Title:  "Fig 10: normalized network usage (NAS = 1.0)",
		Header: []string{"video", "NAS", "NEMO", "dcSR", "LOW", "dcSR saving"},
	}
	for _, v := range r.Videos {
		nas := float64(v.Methods["NAS"].Bytes)
		row := []string{v.Genre.String()}
		for _, m := range []string{"NAS", "NEMO", "dcSR", "LOW"} {
			row = append(row, f3(float64(v.Methods[m].Bytes)/nas))
		}
		saving := 1 - float64(v.Methods["dcSR"].Bytes)/nas
		row = append(row, fmt.Sprintf("%.0f%%", saving*100))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MeanSaving returns dcSR's average bandwidth saving versus NAS (the
// paper's "25% less bandwidth" headline).
func (r *Fig9Result) MeanSaving() float64 {
	var s float64
	for _, v := range r.Videos {
		s += 1 - float64(v.Methods["dcSR"].Bytes)/float64(v.Methods["NAS"].Bytes)
	}
	return s / float64(len(r.Videos))
}

// SpeedupTable renders the §4 training-cost comparison (paper: micro-model
// training is ≈3× cheaper than big-model training).
func (r *Fig9Result) SpeedupTable() Table {
	t := Table{
		Title:  "Training cost: dcSR micro models vs one big model",
		Header: []string{"video", "dcSR GFLOP", "big GFLOP", "speedup"},
	}
	for _, v := range r.Videos {
		t.Add(v.Genre.String(), f2(v.DcSRTrainFLOPs/1e9), f2(v.BigTrainFLOPs/1e9),
			fmt.Sprintf("%.1fx", v.BigTrainFLOPs/v.DcSRTrainFLOPs))
	}
	return t
}

// MeanSpeedup returns the average big/micro training-compute ratio.
func (r *Fig9Result) MeanSpeedup() float64 {
	var s float64
	for _, v := range r.Videos {
		s += v.BigTrainFLOPs / v.DcSRTrainFLOPs
	}
	return s / float64(len(r.Videos))
}

// Fig1c reproduces paper Fig 1(c): one big model trained over a whole
// multi-scene video cannot serve every frame equally — the per-frame PSNR
// of NAS playback spreads by several dB.
func Fig1c(cfg EvalConfig) (Table, quality.Stats, []float64) {
	clip := cfg.clip(video.GenreMusic) // most scenes of the presets
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, cfg.serverConfig())
	if err != nil {
		panic(err)
	}
	nas, err := baseline.Prepare(baseline.NAS, frames, prep.Stream, baseline.Config{
		Model:            cfg.Big,
		Train:            edsr.TrainOptions{Steps: cfg.BigSteps, BatchSize: 2, PatchSize: 16},
		TrainFrameStride: 4,
		Seed:             cfg.Seed,
	})
	if err != nil {
		panic(err)
	}
	play, err := nas.Play()
	if err != nil {
		panic(err)
	}
	q := measure(frames, play.Frames, play.TotalBytes)
	st := quality.Summarize(q.PerFramePSNR)
	sorted := append([]float64(nil), q.PerFramePSNR...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 { return sorted[int(p*float64(len(sorted)-1))] }
	t := Table{
		Title:  "Fig 1(c): per-frame PSNR variance of one big model (CDF summary)",
		Header: []string{"p5", "p25", "median", "p75", "p95", "spread p95-p5 (dB)"},
	}
	t.Add(f2(pct(0.05)), f2(pct(0.25)), f2(pct(0.5)), f2(pct(0.75)), f2(pct(0.95)), f2(pct(0.95)-pct(0.05)))
	return t, st, q.PerFramePSNR
}

// Fig5 reproduces paper Fig 5: the silhouette-coefficient sweep over K for
// one video's VAE segment features; the peak selects K*.
func Fig5(cfg EvalConfig) (Table, int, []float64) {
	gc := video.GenConfig{
		W: cfg.W, H: cfg.H, Seed: cfg.Seed + 77, NumScenes: 5, TotalCues: 20,
		MinFrames: cfg.CueFramesMin, MaxFrames: cfg.CueFramesMax,
	}
	clip := video.Generate(gc)
	frames := clip.YUVFrames()
	sc := cfg.serverConfig()
	prep, err := core.Prepare(frames, clip.FPS, sc)
	if err != nil {
		panic(err)
	}
	t := Table{
		Title:  fmt.Sprintf("Fig 5: silhouette coefficient vs K (video with %d distinct scenes, %d segments)", gc.NumScenes, len(prep.Segments)),
		Header: []string{"K", "silhouette"},
	}
	var curve []float64
	bestK, bestS := 0, math.Inf(-1)
	for _, s := range prep.Sweeps {
		t.Add(fmt.Sprintf("%d", s.K), f3(s.Silhouette))
		curve = append(curve, s.Silhouette)
		if s.Silhouette > bestS {
			bestK, bestS = s.K, s.Silhouette
		}
	}
	return t, bestK, curve
}

// Fig11 reproduces paper Fig 11: with identical initialization and budget,
// the final training loss grows with the number of frames the micro model
// must memorize.
func Fig11(cfg EvalConfig) (Table, []float64) {
	gc := video.GenConfig{
		W: cfg.W, H: cfg.H, Seed: cfg.Seed + 99, NumScenes: 8, TotalCues: 16,
		MinFrames: 2, MaxFrames: 2,
	}
	clip := video.Generate(gc)
	frames := clip.Frames()
	var pairs []edsr.Pair
	for _, f := range frames {
		low := video.ResizeRGB(video.ResizeRGB(f, cfg.W/2, cfg.H/2), cfg.W, cfg.H)
		pairs = append(pairs, edsr.Pair{Low: low, High: f})
	}
	t := Table{
		Title:  "Fig 11: training loss vs training data size (same init, same budget)",
		Header: []string{"images", "final train MSE"},
	}
	sizes := []int{2, 5, 10, 16}
	var losses []float64
	for _, n := range sizes {
		if n > len(pairs) {
			n = len(pairs)
		}
		m, err := edsr.New(cfg.Micro, 4242) // identical init across sizes
		if err != nil {
			panic(err)
		}
		if _, err := m.Train(pairs[:n], edsr.TrainOptions{
			Steps: cfg.MicroSteps, BatchSize: 2, PatchSize: 16, Seed: 1,
		}); err != nil {
			panic(err)
		}
		loss := m.EvalMSE(pairs[:n])
		losses = append(losses, loss)
		t.Add(fmt.Sprintf("%d", n), f2(loss))
	}
	return t, losses
}
