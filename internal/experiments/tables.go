// Package experiments regenerates every table and figure of the dcSR
// paper's evaluation (§2, §4, Appendix). Each experiment returns both a
// formatted text table (what cmd/dcsr-bench prints) and the raw series
// (what the root bench_test.go benchmarks and the tests assert on).
//
// Two experiment families exist:
//
//   - Device-analytic experiments (Figs 1a/1b, Table 1, Figs 8, 12) use
//     the calibrated device profiles of internal/device and the FLOPs
//     arithmetic of internal/edsr; they are instantaneous.
//   - Trained experiments (Figs 1c, 5, 9, 10, 11 and the ablations) run
//     the real pipeline — codec, VAE, clustering, CNN training — at a
//     reduced "evaluation scale" (small frames, small models) so pure-Go
//     CPU training completes in seconds. EXPERIMENTS.md records how each
//     reduced setting maps to the paper's.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func mb(bytes int) string { return fmt.Sprintf("%.3f", float64(bytes)/(1<<20)) }
