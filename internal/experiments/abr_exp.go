package experiments

import (
	"fmt"

	"dcsr/internal/abr"
	"dcsr/internal/core"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/video"
)

// ABRResult holds the per-policy streaming outcomes of the ABR experiment.
type ABRResult struct {
	QoE      map[string]float64
	Rebuffer map[string]float64
	SeenPSNR map[string]float64
	Bytes    map[string]int
}

// ExperimentABR implements the paper's §4 suggestion that "an ABR
// algorithm can use the decoded and super-resolved quality level as an
// input to trade the network and compute capacity": it builds a real
// multi-QP ladder for one video, measures the actual SR gain dcSR's micro
// models deliver on the lowest rungs, and streams the ladder through a
// constrained two-state bandwidth trace under three policies.
func ExperimentABR(cfg EvalConfig) (Table, *ABRResult) {
	clip := cfg.clip(video.GenreDocumentary)
	frames := clip.YUVFrames()
	segs := splitter.Split(frames, splitter.Config{Threshold: 14, MinLen: 3})

	qps := []int{51, 43, 35}
	ladder, err := abr.BuildLadder(frames, clip.FPS, segs, qps)
	if err != nil {
		panic(err)
	}
	// Project segment payloads to 1080p scale: coded bytes grow linearly
	// with pixel count, while micro-model sizes are resolution-independent
	// (they depend only on n_f × n_RB). Without this projection the
	// eval-scale frames (80×48) make models look enormous next to
	// segments, inverting the economics the paper's setting has.
	byteScale := float64(1920*1080) / float64(cfg.W*cfg.H)
	for li := range ladder.Levels {
		for si := range ladder.Levels[li].SegmentBytes {
			ladder.Levels[li].SegmentBytes[si] = int(float64(ladder.Levels[li].SegmentBytes[si]) * byteScale)
		}
	}

	// Measure the real enhancement gain at the lowest level by running the
	// dcSR pipeline; attenuate for higher levels in proportion to their
	// remaining quality headroom (enhancement recovers less when less was
	// lost).
	prep, err := core.Prepare(frames, clip.FPS, cfg.serverConfig())
	if err != nil {
		panic(err)
	}
	enh, err := core.NewPlayer(prep).Play()
	if err != nil {
		panic(err)
	}
	lowPl := core.NewPlayer(prep)
	lowPl.Enhance = false
	low, err := lowPl.Play()
	if err != nil {
		panic(err)
	}
	var gain0 float64
	for i := range frames {
		gain0 += quality.PSNRYUV(frames[i], enh.Frames[i]) - quality.PSNRYUV(frames[i], low.Frames[i])
	}
	gain0 /= float64(len(frames))
	if gain0 < 0 {
		gain0 = 0
	}
	top := ladder.MeanPSNR(len(qps) - 1)
	gains := make([]float64, len(qps))
	for li := range gains {
		headroom := top - ladder.MeanPSNR(li)
		if maxHead := top - ladder.MeanPSNR(0); maxHead > 0 {
			gains[li] = gain0 * headroom / maxHead
		}
	}

	// Model labels and sizes from the real manifest.
	segModels := make([]int, len(segs))
	for i, s := range prep.Manifest.Segments {
		segModels[i] = s.ModelLabel
	}
	modelBytes := map[int]int{}
	for l, mi := range prep.Manifest.Models {
		modelBytes[l] = mi.Bytes
	}

	// A two-state link sized around the middle rung.
	mid := ladder.Levels[1].Bitrate(ladder.SegDur) / 8
	trace := abr.MarkovTrace(mid*1.6, mid*0.5, 0.12, 900, cfg.Seed)

	opts := abr.SimOptions{
		SRGain: gains, SegmentModel: segModels, ModelBytes: modelBytes, ComputeOK: true,
	}
	noSR := abr.SimOptions{}

	t := Table{
		Title:  fmt.Sprintf("ABR integration: streaming a %d-level ladder (SR gain at lowest level: %.2f dB)", len(qps), gain0),
		Header: []string{"policy", "seen PSNR (dB)", "rebuffer (s)", "bytes", "QoE"},
	}
	res := &ABRResult{
		QoE: map[string]float64{}, Rebuffer: map[string]float64{},
		SeenPSNR: map[string]float64{}, Bytes: map[string]int{},
	}
	runs := []struct {
		policy abr.Policy
		opts   abr.SimOptions
	}{
		{abr.RateBased{}, noSR},
		{abr.BufferBased{}, noSR},
		{abr.SRAware{}, opts},
	}
	for _, r := range runs {
		sim, err := abr.Simulate(ladder, trace, r.policy, r.opts)
		if err != nil {
			panic(err)
		}
		name := r.policy.Name()
		res.QoE[name] = sim.QoE
		res.Rebuffer[name] = sim.RebufferS
		res.SeenPSNR[name] = sim.MeanPSNR
		res.Bytes[name] = sim.TotalBytes
		t.Add(name, f2(sim.MeanPSNR), f2(sim.RebufferS), fmt.Sprintf("%d", sim.TotalBytes), f2(sim.QoE))
	}
	return t, res
}
