package experiments

import (
	"fmt"

	"dcsr/internal/codec"
	"dcsr/internal/edsr"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/video"
)

// UpscaleResult compares ×2 super-resolution against bicubic upscaling.
type UpscaleResult struct {
	SRPSNR, BicubicPSNR map[string]float64
}

// ExperimentUpscale exercises the paper's literal super-resolution mode:
// the client downloads a *half-resolution* stream and reconstructs full
// resolution, with dcSR's per-cluster ×2 micro EDSR models against the
// bicubic upscaler (the "LOW" of paper Fig 9 in resolution terms). The
// main pipeline's same-resolution enhancement is the decoder-integrated
// mode; this one runs post-decode on every frame, NAS-style, but with the
// data-centric per-cluster models.
func ExperimentUpscale(cfg EvalConfig) (Table, *UpscaleResult) {
	// Dimensions must keep both full and half resolution multiples of 16.
	fullW, fullH := 96, 64
	lowW, lowH := fullW/2, fullH/2
	res := &UpscaleResult{SRPSNR: map[string]float64{}, BicubicPSNR: map[string]float64{}}
	t := Table{
		Title:  "Upscaling mode: x2 SR vs bicubic (half-resolution stream)",
		Header: []string{"video", "bicubic PSNR (dB)", "dcSR x2 PSNR (dB)", "gain"},
	}
	genres := cfg.Genres
	if len(genres) > 3 {
		genres = genres[:3]
	}
	for _, g := range genres {
		gc := video.GenreConfig(g, fullW, fullH, cfg.Seed)
		gc.MinFrames, gc.MaxFrames = cfg.CueFramesMin, cfg.CueFramesMax
		clip := video.Generate(gc)
		full := clip.Frames()

		// Downscale the source and encode the low-resolution stream.
		var lowYUV []*video.YUV
		for _, f := range full {
			lowYUV = append(lowYUV, video.ResizeRGB(f, lowW, lowH).ToYUV())
		}
		segs := splitter.Split(lowYUV, splitter.Config{Threshold: 14, MinLen: 3})
		forceI := splitter.ForceIFlags(len(lowYUV), segs)
		st, err := codec.Encode(lowYUV, forceI, clip.FPS, codec.EncoderConfig{QP: cfg.QP - 15})
		if err != nil {
			panic(err)
		}
		var dec codec.Decoder
		decoded, err := dec.Decode(st)
		if err != nil {
			panic(err)
		}

		// Cluster segments exactly as the main pipeline does, but train
		// ×2 models: decoded low-res I frame → pristine full-res I frame.
		micro := cfg.Micro
		micro.Scale = 2
		var lowI, highI []*video.RGB
		for _, s := range segs {
			lowI = append(lowI, decoded[s.Start].ToRGB())
			highI = append(highI, full[s.Start])
		}
		assign := clusterIFrames(cfg, highI, len(segs))
		models := map[int]*edsr.Model{}
		for label := 0; label < maxInt(assign)+1; label++ {
			var pairs []edsr.Pair
			for si, a := range assign {
				if a == label {
					pairs = append(pairs, edsr.Pair{Low: lowI[si], High: highI[si]})
				}
			}
			if len(pairs) == 0 {
				continue
			}
			m, err := edsr.New(micro, cfg.Seed+300+int64(label))
			if err != nil {
				panic(err)
			}
			if _, err := m.Train(pairs, edsr.TrainOptions{
				Steps: cfg.MicroSteps, BatchSize: 2, PatchSize: 12, Seed: cfg.Seed,
			}); err != nil {
				panic(err)
			}
			models[label] = m
		}

		// Reconstruct full resolution: per-segment micro model on every
		// frame vs bicubic on every frame.
		segOf := func(i int) int {
			for si, s := range segs {
				if i >= s.Start && i < s.End {
					return si
				}
			}
			return len(segs) - 1
		}
		var srSum, biSum float64
		for i, f := range decoded {
			rgb := f.ToRGB()
			bi := video.BicubicResizeRGB(rgb, fullW, fullH)
			biSum += quality.PSNR(full[i], bi)
			if m, ok := models[assign[segOf(i)]]; ok {
				srSum += quality.PSNR(full[i], m.Enhance(rgb))
			} else {
				srSum += quality.PSNR(full[i], bi)
			}
		}
		n := float64(len(decoded))
		res.SRPSNR[g.String()] = srSum / n
		res.BicubicPSNR[g.String()] = biSum / n
		t.Add(g.String(), f2(biSum/n), f2(srSum/n), fmt.Sprintf("%+.2f dB", (srSum-biSum)/n))
	}
	return t, res
}

// clusterIFrames runs the VAE+global-k-means stage standalone (the core
// pipeline couples it to same-resolution preparation).
func clusterIFrames(cfg EvalConfig, iframes []*video.RGB, n int) []int {
	if n < 3 {
		return make([]int, n)
	}
	prepCfg := cfg.serverConfig()
	vm, err := newTrainedVAE(prepCfg, iframes, cfg.Seed)
	if err != nil {
		panic(err)
	}
	feats := make([][]float64, len(iframes))
	for i, f := range iframes {
		feats[i] = vm.Features(f)
	}
	k := 3
	if k > n-1 {
		k = n - 1
	}
	res, err := globalKMeans(feats, k)
	if err != nil {
		panic(err)
	}
	return res
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
