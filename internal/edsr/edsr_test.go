package edsr

import (
	"bytes"
	"math"
	"testing"

	"dcsr/internal/nn"
	"dcsr/internal/video"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Filters: 0, ResBlocks: 4},
		{Filters: 8, ResBlocks: 0},
		{Filters: 8, ResBlocks: 2, Scale: 3},
	}
	for _, c := range bad {
		if _, err := New(c, 1); err == nil {
			t.Errorf("New accepted invalid config %+v", c)
		}
	}
	if _, err := New(Config{Filters: 8, ResBlocks: 2}, 1); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigString(t *testing.T) {
	got := Config{Filters: 16, ResBlocks: 4}.String()
	if got != "EDSR(16f×4RB,x1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestNumParamsFormula(t *testing.T) {
	// Analytical parameter count for scale 1: head (3·nf·9+nf) +
	// nRB·2·(nf²·9+nf) + body conv (nf²·9+nf) + tail (nf·3·9+3).
	for _, cfg := range []Config{{Filters: 4, ResBlocks: 1}, {Filters: 16, ResBlocks: 4}, {Filters: 8, ResBlocks: 3}} {
		m, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		nf := cfg.Filters
		want := (3*nf*9 + nf) + cfg.ResBlocks*2*(nf*nf*9+nf) + (nf*nf*9 + nf) + (nf*3*9 + 3)
		if got := m.NumParams(); got != want {
			t.Errorf("%v: NumParams = %d, want %d", cfg, got, want)
		}
	}
}

func TestSizeMonotonicity(t *testing.T) {
	// Table 1 property: size grows monotonically in both n_f and n_RB.
	grid := []int{4, 8, 16}
	for _, scale := range []int{1, 4} {
		var prevRowMax int
		for _, nf := range grid {
			var prev int
			for _, rb := range []int{4, 8, 16} {
				m, err := New(Config{Filters: nf, ResBlocks: rb, Scale: scale}, 1)
				if err != nil {
					t.Fatal(err)
				}
				if m.SizeBytes() <= prev {
					t.Fatalf("size not monotone in ResBlocks at nf=%d scale=%d", nf, scale)
				}
				prev = m.SizeBytes()
			}
			if prev <= prevRowMax {
				t.Fatalf("size not monotone in Filters at scale=%d", scale)
			}
			prevRowMax = prev
		}
	}
}

func TestCheckpointBytesFactor(t *testing.T) {
	m, _ := New(Config{Filters: 8, ResBlocks: 2}, 1)
	if m.CheckpointBytes() != 3*m.SizeBytes() {
		t.Fatal("checkpoint factor wrong")
	}
}

func TestUntrainedScale1IsIdentity(t *testing.T) {
	m, err := New(Config{Filters: 8, ResBlocks: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	clip := video.Generate(video.GenConfig{W: 32, H: 32, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	f := clip.Frames()[0]
	out := m.Enhance(f)
	for i := range f.Pix {
		if d := int(f.Pix[i]) - int(out.Pix[i]); d < -1 || d > 1 {
			t.Fatalf("untrained scale-1 model not identity at %d: %d vs %d", i, f.Pix[i], out.Pix[i])
		}
	}
}

func TestUntrainedUpscaleEqualsNearest(t *testing.T) {
	m, err := New(Config{Filters: 4, ResBlocks: 1, Scale: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	clip := video.Generate(video.GenConfig{W: 16, H: 16, Seed: 4, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	f := clip.Frames()[0]
	out := m.Enhance(f)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			wr, wg, wb := f.At(x/2, y/2)
			gr, gg, gb := out.At(x, y)
			if absDiff(wr, gr) > 1 || absDiff(wg, gg) > 1 || absDiff(wb, gb) > 1 {
				t.Fatalf("untrained x2 model not nearest-upsample at (%d,%d)", x, y)
			}
		}
	}
}

func absDiff(a, b uint8) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

func TestUpscaleTrainingBeatsNearestBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	clip := video.Generate(video.GenConfig{W: 64, H: 64, Seed: 6, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	high := clip.Frames()[0]
	low := video.ResizeRGB(high, 32, 32)
	m, err := New(Config{Filters: 8, ResBlocks: 2, Scale: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	pair := Pair{Low: low, High: high}
	before := m.EvalMSE([]Pair{pair})
	if _, err := m.Train([]Pair{pair}, TrainOptions{Steps: 250, BatchSize: 2, PatchSize: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := m.EvalMSE([]Pair{pair})
	t.Logf("x2 overfit MSE %.2f -> %.2f", before, after)
	if after >= before {
		t.Fatalf("x2 training did not improve on the nearest baseline: %.2f -> %.2f", before, after)
	}
}

func TestForwardShapes(t *testing.T) {
	for _, scale := range []int{1, 2, 4} {
		m, err := New(Config{Filters: 4, ResBlocks: 1, Scale: scale}, 1)
		if err != nil {
			t.Fatal(err)
		}
		f := video.NewRGB(16, 8)
		out := m.Enhance(f)
		if out.W != 16*scale || out.H != 8*scale {
			t.Fatalf("scale %d: output %dx%d", scale, out.W, out.H)
		}
	}
}

func TestTrainingOverfitsSingleImage(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	clip := video.Generate(video.GenConfig{W: 48, H: 48, Seed: 5, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	high := clip.Frames()[0]
	low := video.ResizeRGB(video.ResizeRGB(high, 12, 12), 48, 48) // heavily blurred
	m, err := New(Config{Filters: 8, ResBlocks: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := m.EvalMSE([]Pair{{Low: low, High: high}})
	tr, err := m.Train([]Pair{{Low: low, High: high}}, TrainOptions{Steps: 500, BatchSize: 4, PatchSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := m.EvalMSE([]Pair{{Low: low, High: high}})
	t.Logf("single-image overfit MSE %.2f -> %.2f", before, after)
	if after >= before {
		t.Fatalf("training did not reduce MSE: %.2f -> %.2f", before, after)
	}
	if after > before*0.7 {
		t.Errorf("weak overfit: %.2f -> %.2f", before, after)
	}
	if tr.TrainFLOPs <= 0 {
		t.Error("TrainFLOPs not accounted")
	}
}

func TestPaperFig11LossGrowsWithDataSize(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	// Paper Appendix A.1 / Fig 11: with identical initialization and budget,
	// final training loss increases with the amount of data to memorize.
	clip := video.Generate(video.GenConfig{W: 48, H: 48, Seed: 11, NumScenes: 8, TotalCues: 8, MinFrames: 2, MaxFrames: 2})
	frames := clip.Frames()
	var pairs []Pair
	for _, f := range frames {
		low := video.ResizeRGB(video.ResizeRGB(f, 24, 24), 48, 48)
		pairs = append(pairs, Pair{Low: low, High: f})
	}
	// Memorization property, controlled for content difficulty: evaluate
	// both models on the SAME two frames. The model that only had to
	// memorize those two must reconstruct them better than a same-capacity,
	// same-initialization model that also had to memorize fourteen others.
	probe := pairs[:2]
	var losses []float64
	for _, n := range []int{2, 16} {
		m, err := New(Config{Filters: 8, ResBlocks: 2}, 42) // same init every time
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(pairs[:n], TrainOptions{Steps: 120, BatchSize: 4, PatchSize: 16, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		losses = append(losses, m.EvalMSE(probe))
	}
	t.Logf("probe loss trained on 2: %.2f, trained on 16: %.2f", losses[0], losses[1])
	if !(losses[0] < losses[1]) {
		t.Errorf("memorization did not improve with smaller training set: %v", losses)
	}
}

func TestTrainValidation(t *testing.T) {
	m, _ := New(Config{Filters: 4, ResBlocks: 1}, 1)
	if _, err := m.Train(nil, TrainOptions{}); err == nil {
		t.Error("accepted empty pairs")
	}
	small := video.NewRGB(8, 8)
	if _, err := m.Train([]Pair{{Low: small, High: small}}, TrainOptions{PatchSize: 16}); err == nil {
		t.Error("accepted frames smaller than patch")
	}
	m2, _ := New(Config{Filters: 4, ResBlocks: 1, Scale: 2}, 1)
	if _, err := m2.Train([]Pair{{Low: small, High: small}}, TrainOptions{PatchSize: 4}); err == nil {
		t.Error("accepted dimension mismatch for scale 2")
	}
}

func TestWeightsRoundTripThroughBytes(t *testing.T) {
	cfg := Config{Filters: 4, ResBlocks: 2}
	src, _ := New(cfg, 33)
	dst, _ := New(cfg, 99)
	data := nn.EncodeWeights(src.Params())
	if len(data) != src.SizeBytes() {
		t.Fatalf("encoded %d bytes, SizeBytes %d", len(data), src.SizeBytes())
	}
	if err := nn.LoadWeights(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	f := video.NewRGB(16, 16)
	for i := range f.Pix {
		f.Pix[i] = uint8(i * 7 % 255)
	}
	a, b := src.Enhance(f), dst.Enhance(f)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("restored model output differs")
		}
	}
}

func TestConfigFLOPsScalesLinearly(t *testing.T) {
	small := ConfigFLOPs(Config{Filters: 16, ResBlocks: 4}, 100, 100)
	big := ConfigFLOPs(Config{Filters: 16, ResBlocks: 4}, 200, 100)
	if math.Abs(big/small-2) > 1e-9 {
		t.Fatalf("FLOPs not linear in pixels: ratio %v", big/small)
	}
	deeper := ConfigFLOPs(Config{Filters: 16, ResBlocks: 8}, 100, 100)
	if deeper <= small {
		t.Fatal("FLOPs not increasing in depth")
	}
	wider := ConfigFLOPs(Config{Filters: 32, ResBlocks: 4}, 100, 100)
	if wider/small < 3 || wider/small > 4.5 {
		t.Fatalf("doubling width should ~4x body FLOPs, got ratio %.2f", wider/small)
	}
}

func TestInferenceFLOPsMatchesConfig(t *testing.T) {
	cfg := Config{Filters: 8, ResBlocks: 2}
	m, _ := New(cfg, 1)
	if m.InferenceFLOPs(64, 64) != ConfigFLOPs(cfg, 64, 64) {
		t.Fatal("InferenceFLOPs disagrees with ConfigFLOPs")
	}
}

func TestActivationBytesScale(t *testing.T) {
	base := ConfigActivationBytes(Config{Filters: 16, ResBlocks: 4}, 1000, 1000)
	withUp := ConfigActivationBytes(Config{Filters: 16, ResBlocks: 4, Scale: 4}, 1000, 1000)
	if withUp <= base {
		t.Fatal("upsampling must increase activation memory")
	}
	wide := ConfigActivationBytes(Config{Filters: 64, ResBlocks: 4}, 1000, 1000)
	if wide != 4*base {
		t.Fatalf("activation bytes not linear in filters: %d vs %d", wide, base)
	}
}

func TestEnhanceYUVPreservesDimensions(t *testing.T) {
	m, _ := New(Config{Filters: 4, ResBlocks: 1}, 1)
	f := video.NewYUV(32, 16)
	out := m.EnhanceYUV(f)
	if out.W != 32 || out.H != 16 {
		t.Fatalf("EnhanceYUV changed dims to %dx%d", out.W, out.H)
	}
}

func TestPaperConfigs(t *testing.T) {
	// dcSR-1/2/3 from §4: 4, 12, 16 ResBlocks of 16 filters.
	if ConfigDCSR1.ResBlocks != 4 || ConfigDCSR2.ResBlocks != 12 || ConfigDCSR3.ResBlocks != 16 {
		t.Fatal("dcSR config ResBlocks wrong")
	}
	for _, c := range []Config{ConfigDCSR1, ConfigDCSR2, ConfigDCSR3} {
		if c.Filters != 16 {
			t.Fatal("dcSR configs use 16 filters")
		}
	}
	if ConfigBig.Filters != 64 {
		t.Fatal("big model uses 64 filters")
	}
	// Micro models must be dramatically smaller than the big model.
	micro, _ := New(ConfigDCSR1, 1)
	big, _ := New(ConfigBig, 1)
	if ratio := float64(big.SizeBytes()) / float64(micro.SizeBytes()); ratio < 10 {
		t.Fatalf("big/micro size ratio only %.1f", ratio)
	}
}
