package edsr

import (
	"errors"
	"fmt"
	"math/rand"

	"dcsr/internal/nn"
	"dcsr/internal/tensor"
	"dcsr/internal/video"
)

// Pair is one training example: a degraded frame and its pristine ground
// truth. For Scale 1 both have equal dimensions; for Scale s the high
// frame is s× larger in each dimension.
type Pair struct {
	Low, High *video.RGB
}

// ErrStopped is returned by Train when TrainOptions.Stop interrupts the
// optimization loop before all steps have run.
var ErrStopped = errors.New("edsr: training stopped")

// TrainOptions controls micro-model training.
type TrainOptions struct {
	Steps     int     // optimizer steps; default 200
	BatchSize int     // patches per step; default 4
	PatchSize int     // low-res patch edge; default 24
	LR        float64 // Adam learning rate; default 1e-3
	Seed      int64   // patch sampling seed

	// Stop, when non-nil, is polled before every optimizer step; returning
	// true aborts training with ErrStopped. It bounds cancellation latency
	// to a single step without threading a context into this deterministic
	// package (callers map ErrStopped back to their context's error).
	Stop func() bool `json:"-"`
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Steps == 0 {
		o.Steps = 200
	}
	if o.BatchSize == 0 {
		o.BatchSize = 4
	}
	if o.PatchSize == 0 {
		o.PatchSize = 24
	}
	if o.LR == 0 {
		o.LR = 1e-3
	}
	return o
}

// TrainResult reports what training did.
type TrainResult struct {
	Steps      int
	FinalLoss  float64 // mean MSE over the last 10% of steps (pixel scale 0–255²)
	FirstLoss  float64 // MSE of the first step, same scale
	TrainFLOPs float64 // total training compute (forward+backward ≈ 3× forward)
}

// Train fits the model to pairs by sampling random aligned patches and
// minimizing MSE with Adam. It is the "overfit the video" training of the
// paper (§3.1.3, Appendix A.1): train and test data are identical by
// design, so the training loss directly measures enhancement quality.
func (m *Model) Train(pairs []Pair, opts TrainOptions) (*TrainResult, error) {
	opts = opts.withDefaults()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("edsr: no training pairs")
	}
	s := m.Cfg.withDefaults().Scale
	for i, p := range pairs {
		if p.High.W != p.Low.W*s || p.High.H != p.Low.H*s {
			return nil, fmt.Errorf("edsr: pair %d dimensions %dx%d / %dx%d inconsistent with scale %d",
				i, p.Low.W, p.Low.H, p.High.W, p.High.H, s)
		}
		if p.Low.W < opts.PatchSize || p.Low.H < opts.PatchSize {
			return nil, fmt.Errorf("edsr: pair %d smaller than patch size %d", i, opts.PatchSize)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	opt := nn.NewAdam(opts.LR)
	opt.GradClip = 1
	params := m.Params()
	res := &TrainResult{Steps: opts.Steps}
	ps := opts.PatchSize
	var tailSum float64
	var tailN int
	for step := 0; step < opts.Steps; step++ {
		if opts.Stop != nil && opts.Stop() {
			return nil, ErrStopped
		}
		x := tensor.New(opts.BatchSize, 3, ps, ps)
		y := tensor.New(opts.BatchSize, 3, ps*s, ps*s)
		for b := 0; b < opts.BatchSize; b++ {
			p := pairs[rng.Intn(len(pairs))]
			px := rng.Intn(p.Low.W - ps + 1)
			py := rng.Intn(p.Low.H - ps + 1)
			copyPatch(x, b, p.Low, px, py, ps)
			copyPatch(y, b, p.High, px*s, py*s, ps*s)
		}
		nn.ZeroGrads(params)
		pred := m.Forward(x)
		loss, grad := nn.MSELoss(pred, y)
		m.Backward(grad)
		opt.Step(params)
		// Report loss on the 0–255 pixel scale like the paper's Fig 11.
		pixLoss := loss * 255 * 255
		if step == 0 {
			res.FirstLoss = pixLoss
		}
		if step >= opts.Steps*9/10 {
			tailSum += pixLoss
			tailN++
		}
	}
	if tailN > 0 {
		res.FinalLoss = tailSum / float64(tailN)
	}
	perStep := 3 * ConfigFLOPs(m.Cfg, ps, ps) * float64(opts.BatchSize)
	res.TrainFLOPs = perStep * float64(opts.Steps)
	return res, nil
}

// copyPatch copies a ps×ps patch at (px, py) of frame f into batch slot b
// of tensor t, normalized to [−0.5, 0.5].
func copyPatch(t *tensor.Tensor, b int, f *video.RGB, px, py, ps int) {
	for c := 0; c < 3; c++ {
		plane := t.Data[(b*3+c)*ps*ps : (b*3+c+1)*ps*ps]
		for y := 0; y < ps; y++ {
			for x := 0; x < ps; x++ {
				plane[y*ps+x] = float32(f.Pix[((py+y)*f.W+px+x)*3+c])/255 - 0.5
			}
		}
	}
}

// EvalMSE returns the mean per-pixel MSE (0–255² scale) of the model's
// output against ground truth over the given pairs, without training.
func (m *Model) EvalMSE(pairs []Pair) float64 {
	var sum float64
	for _, p := range pairs {
		pred := m.ForwardInference(ToTensor(p.Low))
		loss, _ := nn.MSELoss(pred, ToTensor(p.High))
		sum += loss * 255 * 255
	}
	return sum / float64(len(pairs))
}
