package edsr

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"dcsr/internal/tensor"
	"dcsr/internal/video"
)

func genFrame(t testing.TB, w, h int, seed int64) *video.RGB {
	t.Helper()
	clip := video.Generate(video.GenConfig{W: w, H: h, Seed: seed, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	return clip.Frames()[0]
}

// TestForwardInferenceMatchesForward pins the fast path's contract: the
// fused, buffer-reusing inference pass produces bit-identical output to
// the training Forward pass, at scale 1 and through the upsampling tail.
func TestForwardInferenceMatchesForward(t *testing.T) {
	for _, scale := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("x%d", scale), func(t *testing.T) {
			m, err := New(Config{Filters: 8, ResBlocks: 2, Scale: scale}, 7)
			if err != nil {
				t.Fatal(err)
			}
			// Train a few steps so the tail weights are non-zero and the
			// comparison exercises real values end to end.
			low := genFrame(t, 48, 32, 5)
			high := low
			if scale > 1 {
				high = genFrame(t, 48*scale, 32*scale, 5)
			}
			if _, err := m.Train([]Pair{{Low: low, High: high}}, TrainOptions{Steps: 3, PatchSize: 16}); err != nil {
				t.Fatal(err)
			}
			x := ToTensor(genFrame(t, 40, 24, 9))
			want := m.Forward(x)
			for i := 0; i < 2; i++ { // second pass exercises buffer reuse
				got := m.ForwardInference(x)
				if len(got.Data) != len(want.Data) {
					t.Fatalf("size mismatch: %v vs %v", got.Shape, want.Shape)
				}
				for j := range got.Data {
					if got.Data[j] != want.Data[j] {
						t.Fatalf("pass %d: element %d differs: inference %v vs forward %v",
							i, j, got.Data[j], want.Data[j])
					}
				}
			}
		})
	}
}

// TestEnhanceConcurrent hammers the shared kernel worker pool from
// concurrent Enhance calls on independent models (run under -race by
// make verify), checking results stay identical to serial execution and
// that a pool restart mid-load is safe.
func TestEnhanceConcurrent(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	tensor.ShutdownPool()
	defer func() {
		runtime.GOMAXPROCS(prev)
		tensor.ShutdownPool()
	}()
	const models = 4
	f := genFrame(t, 96, 54, 3)
	serial := make([]*video.RGB, models)
	for i := range serial {
		m, err := New(ConfigDCSR1, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = m.Enhance(f)
	}
	tensor.ShutdownPool() // restart under the concurrent load below
	var wg sync.WaitGroup
	errs := make(chan error, models)
	for i := 0; i < models; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := New(ConfigDCSR1, int64(i))
			if err != nil {
				errs <- err
				return
			}
			for pass := 0; pass < 3; pass++ {
				out := m.Enhance(f)
				for j := range out.Pix {
					if out.Pix[j] != serial[i].Pix[j] {
						errs <- fmt.Errorf("model %d pass %d: pixel %d differs", i, pass, j)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEnhanceSteadyStateAllocs pins the alloc-free inference path: after
// warmup, ForwardInference performs zero heap allocations per frame and
// Enhance only pays for the returned RGB frame. Measured at one worker —
// with more, each parallel kernel launch adds a constant-size job header.
func TestEnhanceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		// The race detector deliberately drops sync.Pool items to widen
		// interleaving coverage, so the scratch arena re-allocates and the
		// steady-state counts below no longer hold.
		t.Skip("allocation counts are distorted under the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	tensor.ShutdownPool()
	defer func() {
		runtime.GOMAXPROCS(prev)
		tensor.ShutdownPool()
	}()
	m, err := New(ConfigDCSR1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := genFrame(t, 96, 54, 3)
	x := ToTensor(f)
	m.ForwardInference(x)
	m.ForwardInference(x)
	if avg := testing.AllocsPerRun(10, func() { m.ForwardInference(x) }); avg > 0 {
		t.Errorf("ForwardInference allocates %.1f objects per frame, want 0", avg)
	}
	m.Enhance(f)
	// Enhance additionally allocates the returned *video.RGB (a handful
	// of objects, independent of layer count and frame size).
	if avg := testing.AllocsPerRun(10, func() { m.Enhance(f) }); avg > 4 {
		t.Errorf("Enhance allocates %.1f objects per frame, want <= 4", avg)
	}
}
