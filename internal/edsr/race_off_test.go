//go:build !race

package edsr

const raceEnabled = false
