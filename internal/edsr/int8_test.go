package edsr

import (
	"fmt"
	"runtime"
	"testing"

	"dcsr/internal/quality"
	"dcsr/internal/tensor"
	"dcsr/internal/video"
)

// trainedModel returns a briefly trained dcSR-style model plus the
// frame it was trained on (which doubles as the calibration input).
func trainedModel(t testing.TB, seed int64) (*Model, *video.RGB) {
	t.Helper()
	m, err := New(Config{Filters: 8, ResBlocks: 2}, seed)
	if err != nil {
		t.Fatal(err)
	}
	f := genFrame(t, 64, 48, seed)
	if _, err := m.Train([]Pair{{Low: f, High: f}}, TrainOptions{Steps: 3, PatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	return m, f
}

// TestEnhanceInt8CloseToFloat32 checks the quantized path stays visually
// equivalent to float32 on the calibration distribution — the per-layer
// scales come from the same frames the model trained on, dcSR's serving
// situation.
func TestEnhanceInt8CloseToFloat32(t *testing.T) {
	m, f := trainedModel(t, 11)
	if m.Int8Ready() {
		t.Fatal("Int8Ready before calibration")
	}
	if err := m.Calibrate([]*video.RGB{f}); err != nil {
		t.Fatal(err)
	}
	if !m.Int8Ready() {
		t.Fatal("Int8Ready false after Calibrate")
	}
	want := m.Enhance(f)
	got := m.EnhanceInt8(f)
	if psnr := quality.PSNR(got, want); psnr < 40 {
		t.Fatalf("int8 vs float32 PSNR = %.1f dB, want >= 40", psnr)
	}
}

// TestEnhanceInt8DeterministicAcrossWorkers pins bit-identical quantized
// output across worker counts (run under -race by make verify): integer
// accumulation is associative, and every float step is a fixed
// per-element expression.
func TestEnhanceInt8DeterministicAcrossWorkers(t *testing.T) {
	m, f := trainedModel(t, 12)
	if err := m.Calibrate([]*video.RGB{f}); err != nil {
		t.Fatal(err)
	}
	var ref *video.RGB
	for _, procs := range []int{1, 2, 4} {
		prev := runtime.GOMAXPROCS(procs)
		tensor.ShutdownPool()
		got := m.EnhanceInt8(f)
		runtime.GOMAXPROCS(prev)
		tensor.ShutdownPool()
		if ref == nil {
			ref = got
			continue
		}
		for j := range got.Pix {
			if got.Pix[j] != ref.Pix[j] {
				t.Fatalf("procs=%d: pixel %d differs from single-worker output", procs, j)
			}
		}
	}
}

// TestEnhanceInt8SteadyStateAllocs mirrors TestEnhanceSteadyStateAllocs
// for the quantized path: zero allocations per ForwardInferenceInt8
// after warmup, and EnhanceInt8 pays only for the returned frame.
func TestEnhanceInt8SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	tensor.ShutdownPool()
	defer func() {
		runtime.GOMAXPROCS(prev)
		tensor.ShutdownPool()
	}()
	m, f := trainedModel(t, 13)
	if err := m.Calibrate([]*video.RGB{f}); err != nil {
		t.Fatal(err)
	}
	x := ToTensor(f)
	m.ForwardInferenceInt8(x)
	m.ForwardInferenceInt8(x)
	if avg := testing.AllocsPerRun(10, func() { m.ForwardInferenceInt8(x) }); avg > 0 {
		t.Errorf("ForwardInferenceInt8 allocates %.1f objects per frame, want 0", avg)
	}
	m.EnhanceInt8(f)
	if avg := testing.AllocsPerRun(10, func() { m.EnhanceInt8(f) }); avg > 4 {
		t.Errorf("EnhanceInt8 allocates %.1f objects per frame, want <= 4", avg)
	}
}

// TestActScalesRoundTrip checks that scales persisted from one process
// re-arm an identical model to bit-identical quantized output.
func TestActScalesRoundTrip(t *testing.T) {
	m1, f := trainedModel(t, 14)
	if err := m1.Calibrate([]*video.RGB{f}); err != nil {
		t.Fatal(err)
	}
	scales := m1.ActScales()
	if len(scales) != len(m1.convs()) {
		t.Fatalf("ActScales returned %d entries for %d convs", len(scales), len(m1.convs()))
	}
	m2, _ := trainedModel(t, 14) // same seed + training → same weights
	if err := m2.CalibrateFromScales(scales); err != nil {
		t.Fatal(err)
	}
	a, b := m1.EnhanceInt8(f), m2.EnhanceInt8(f)
	for j := range a.Pix {
		if a.Pix[j] != b.Pix[j] {
			t.Fatalf("pixel %d differs after scale round trip", j)
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	m, err := New(Config{Filters: 4, ResBlocks: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(nil); err == nil {
		t.Fatal("Calibrate with no frames did not error")
	}
	if err := m.CalibrateFromScales([]float32{1, 2}); err == nil {
		t.Fatal("CalibrateFromScales with wrong count did not error")
	}
}

// TestForwardInferenceInt8Scales exercises the upsampling tail on the
// quantized path (scale 2 and 4 shapes, shuffle in float32).
func TestForwardInferenceInt8Scales(t *testing.T) {
	for _, scale := range []int{2, 4} {
		t.Run(fmt.Sprintf("x%d", scale), func(t *testing.T) {
			m, err := New(Config{Filters: 8, ResBlocks: 2, Scale: scale}, 7)
			if err != nil {
				t.Fatal(err)
			}
			low := genFrame(t, 48, 32, 5)
			high := genFrame(t, 48*scale, 32*scale, 5)
			if _, err := m.Train([]Pair{{Low: low, High: high}}, TrainOptions{Steps: 3, PatchSize: 16}); err != nil {
				t.Fatal(err)
			}
			if err := m.Calibrate([]*video.RGB{low}); err != nil {
				t.Fatal(err)
			}
			want := m.Enhance(low)
			got := m.EnhanceInt8(low)
			if got.W != want.W || got.H != want.H {
				t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.W, got.H, want.W, want.H)
			}
			if psnr := quality.PSNR(got, want); psnr < 35 {
				t.Fatalf("int8 vs float32 PSNR = %.1f dB at x%d, want >= 35", psnr, scale)
			}
		})
	}
}
