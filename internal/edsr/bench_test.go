package edsr

import (
	"fmt"
	"testing"

	"dcsr/internal/video"
)

// benchEnhance measures steady-state single-frame enhancement (the
// decoder-loop hot path) for dcSR-1 at a given input resolution.
func benchEnhance(b *testing.B, w, h int) {
	m, err := New(ConfigDCSR1, 1)
	if err != nil {
		b.Fatal(err)
	}
	clip := video.Generate(video.GenConfig{W: w, H: h, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	f := clip.Frames()[0]
	m.Enhance(f) // warm buffers so the loop measures steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Enhance(f)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkEnhance270p(b *testing.B)  { benchEnhance(b, 480, 270) }
func BenchmarkEnhance540p(b *testing.B)  { benchEnhance(b, 960, 540) }
func BenchmarkEnhance1080p(b *testing.B) { benchEnhance(b, 1920, 1080) }

// BenchmarkForwardInference pins the cost of the no-grad tensor-to-tensor
// path on a small frame across model widths.
func BenchmarkForwardInference(b *testing.B) {
	for _, nf := range []int{8, 16} {
		b.Run(fmt.Sprintf("nf%d", nf), func(b *testing.B) {
			m, err := New(Config{Filters: nf, ResBlocks: 4}, 1)
			if err != nil {
				b.Fatal(err)
			}
			clip := video.Generate(video.GenConfig{W: 192, H: 108, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
			x := ToTensor(clip.Frames()[0])
			m.ForwardInference(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardInference(x)
			}
		})
	}
}

// benchEnhanceInt8 is benchEnhance on the quantized path: same model,
// same frame, per-layer scales calibrated on that frame.
func benchEnhanceInt8(b *testing.B, w, h int) {
	m, err := New(ConfigDCSR1, 1)
	if err != nil {
		b.Fatal(err)
	}
	clip := video.Generate(video.GenConfig{W: w, H: h, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1})
	f := clip.Frames()[0]
	if err := m.Calibrate([]*video.RGB{f}); err != nil {
		b.Fatal(err)
	}
	m.EnhanceInt8(f) // warm buffers so the loop measures steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EnhanceInt8(f)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkEnhanceInt8270p(b *testing.B) { benchEnhanceInt8(b, 480, 270) }
func BenchmarkEnhanceInt8540p(b *testing.B) { benchEnhanceInt8(b, 960, 540) }
