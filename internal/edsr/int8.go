package edsr

import (
	"fmt"

	"dcsr/internal/nn"
	"dcsr/internal/tensor"
	"dcsr/internal/video"
)

// Int8 inference. A dcSR micro model serves exactly one cluster of one
// video, so its activation distribution at serving time is the
// distribution of the cluster's own training frames — calibrating the
// per-layer activation scales on a handful of those frames is
// representative by construction (the same data-centric argument that
// lets a 4-block EDSR match a general model on its own cluster). The
// quantized path swaps every convolution onto the int8 SWAR kernels and
// keeps the structural glue — residual adds, pixel shuffle, the global
// image residual — in float32, mirroring ForwardInference layer for
// layer and buffer for buffer.

// convs enumerates the model's convolutions in forward order. This is
// the calibration/quantization unit: every conv owns one activation
// scale (its input) and per-output-channel weight scales.
func (m *Model) convs() []*nn.Conv2D {
	cs := make([]*nn.Conv2D, 0, 2+2*len(m.body)+len(m.ups))
	cs = append(cs, m.head)
	for _, b := range m.body {
		cs = append(cs, b.Conv1, b.Conv2)
	}
	cs = append(cs, m.bodyConv)
	for _, u := range m.ups {
		cs = append(cs, u.conv)
	}
	cs = append(cs, m.tail)
	return cs
}

// Calibrate records per-layer activation ranges by running the float32
// inference path over the given frames (typically a few of the
// cluster's own training inputs), then builds every convolution's int8
// state. Must be called after training; call again if weights change.
func (m *Model) Calibrate(frames []*video.RGB) error {
	if len(frames) == 0 {
		return fmt.Errorf("edsr: Calibrate needs at least one frame")
	}
	cs := m.convs()
	for _, c := range cs {
		c.BeginCalibration()
	}
	for _, f := range frames {
		m.in = toTensorInto(f, m.in)
		m.ForwardInference(m.in)
	}
	for _, c := range cs {
		c.EndCalibration()
		c.QuantizeInt8()
	}
	return nil
}

// ActScales returns the calibrated activation ranges in forward conv
// order, for persisting alongside the model so a later process can
// re-arm the int8 path without calibration frames.
func (m *Model) ActScales() []float32 {
	cs := m.convs()
	out := make([]float32, len(cs))
	for i, c := range cs {
		out[i] = c.ActMax()
	}
	return out
}

// CalibrateFromScales rebuilds the int8 state from previously recorded
// ActScales output, bit-identical to the calibration run that produced
// them (given identical weights).
func (m *Model) CalibrateFromScales(scales []float32) error {
	cs := m.convs()
	if len(scales) != len(cs) {
		return fmt.Errorf("edsr: got %d activation scales, model has %d convs", len(scales), len(cs))
	}
	for i, c := range cs {
		c.SetActMax(scales[i])
		c.QuantizeInt8()
	}
	return nil
}

// Int8Ready reports whether every convolution has quantized state.
func (m *Model) Int8Ready() bool {
	for _, c := range m.convs() {
		if !c.Int8Ready() {
			return false
		}
	}
	return true
}

// ForwardInferenceInt8 is ForwardInference with every convolution on the
// int8 kernel path. It shares the float32 path's layer-owned buffers
// (the two must not be interleaved mid-pass) and allocates nothing in
// steady state. Output is bit-deterministic across worker counts.
func (m *Model) ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor {
	h := m.head.ForwardInferenceInt8(x)
	b := h
	for _, blk := range m.body {
		b = blk.ForwardInferenceInt8(b)
	}
	b = m.bodyConv.ForwardInferenceInt8(b)
	b.AddInPlace(h) // global skip (h is head's buffer, untouched since)
	for _, u := range m.ups {
		b = u.conv.ForwardInferenceInt8(b)
		b = u.shuffle.ForwardInference(b)
	}
	out := m.tail.ForwardInferenceInt8(b)
	if m.Cfg.Scale == 1 {
		out.AddInPlace(x) // global image residual
	} else {
		m.upBuf = upsampleNearestInto(x, m.Cfg.Scale, m.upBuf)
		out.AddInPlace(m.upBuf)
	}
	return out
}

// EnhanceInt8 is Enhance on the quantized path. The model must be
// calibrated (Calibrate or CalibrateFromScales) first.
func (m *Model) EnhanceInt8(low *video.RGB) *video.RGB {
	m.in = toTensorInto(low, m.in)
	return FromTensor(m.ForwardInferenceInt8(m.in))
}

// EnhanceYUVInt8 is EnhanceYUV on the quantized path.
func (m *Model) EnhanceYUVInt8(f *video.YUV) *video.YUV {
	return m.EnhanceInt8(f.ToRGB()).ToYUV()
}
