// Package edsr implements the Enhanced Deep Super-Resolution network
// (Lim et al., CVPRW 2017) that dcSR trains its micro models with: a head
// convolution, a stack of residual blocks with a global skip connection,
// and a pixel-shuffle upsampling tail. Model capacity is controlled by the
// two hyperparameters the paper's Appendix A.1 grid-searches — the number
// of convolution filters (n_f) and the number of ResBlocks (n_RB) — which
// determine both model size (Table 1) and inference FLOPs.
//
// Scale 1 configures the network as a same-resolution quality enhancer
// (compression-artifact removal, the mode integrated into the decoder
// loop); scale 2 or 4 adds sub-pixel upsampling stages.
package edsr

import (
	"fmt"
	"math/rand"

	"dcsr/internal/nn"
	"dcsr/internal/tensor"
	"dcsr/internal/video"
)

// Config selects an EDSR architecture.
type Config struct {
	Filters   int     // n_f: convolution filters per layer
	ResBlocks int     // n_RB: residual blocks in the body
	Scale     int     // 1 (quality enhancement), 2, or 4 (upscaling)
	ResScale  float32 // residual scaling; 0 means 1.0
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.ResScale == 0 {
		c.ResScale = 1.0
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Filters < 1 {
		return fmt.Errorf("edsr: Filters must be >= 1, got %d", c.Filters)
	}
	if c.ResBlocks < 1 {
		return fmt.Errorf("edsr: ResBlocks must be >= 1, got %d", c.ResBlocks)
	}
	if c.Scale != 1 && c.Scale != 2 && c.Scale != 4 {
		return fmt.Errorf("edsr: Scale must be 1, 2 or 4, got %d", c.Scale)
	}
	return nil
}

// String formats the configuration compactly, e.g. "EDSR(16f×4RB,x1)".
func (c Config) String() string {
	c = c.withDefaults()
	return fmt.Sprintf("EDSR(%df×%dRB,x%d)", c.Filters, c.ResBlocks, c.Scale)
}

// Standard configurations from the paper's evaluation (§4): dcSR-1/2/3 are
// 4, 12 and 16 ResBlocks of 16 filters; the big model (NAS/NEMO) uses the
// original EDSR width of 64 filters and 16 ResBlocks.
var (
	ConfigDCSR1 = Config{Filters: 16, ResBlocks: 4}
	ConfigDCSR2 = Config{Filters: 16, ResBlocks: 12}
	ConfigDCSR3 = Config{Filters: 16, ResBlocks: 16}
	ConfigBig   = Config{Filters: 64, ResBlocks: 16, ResScale: 0.1}
)

// upStage is one ×2 sub-pixel upsampling stage.
type upStage struct {
	conv    *nn.Conv2D
	shuffle *nn.PixelShuffle
}

// Model is an EDSR network instance.
type Model struct {
	Cfg Config

	head     *nn.Conv2D
	body     []*nn.ResBlock
	bodyConv *nn.Conv2D
	ups      []upStage
	tail     *nn.Conv2D

	// Reusable inference buffers (input conversion and nearest-neighbor
	// baseline), so steady-state Enhance allocates nothing per frame.
	in    *tensor.Tensor
	upBuf *tensor.Tensor
}

// New builds an EDSR model with weights initialized from seed.
func New(cfg Config, seed int64) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	nf := cfg.Filters
	m := &Model{Cfg: cfg}
	m.head = nn.NewConv2D(rng, 3, nf, 3, 1, 1)
	for i := 0; i < cfg.ResBlocks; i++ {
		m.body = append(m.body, nn.NewResBlock(rng, nf, cfg.ResScale))
	}
	m.bodyConv = nn.NewConv2D(rng, nf, nf, 3, 1, 1)
	for s := cfg.Scale; s > 1; s /= 2 {
		m.ups = append(m.ups, upStage{
			conv:    nn.NewConv2D(rng, nf, nf*4, 3, 1, 1),
			shuffle: &nn.PixelShuffle{R: 2},
		})
	}
	m.tail = nn.NewConv2D(rng, nf, 3, 3, 1, 1)
	// Every model predicts a *residual* on top of a cheap baseline — the
	// input itself at scale 1, its nearest-neighbor upsampling at scale
	// 2/4 — with a zero-initialized tail so the untrained model equals
	// that baseline. This keeps an under-trained micro model from ever
	// falling below the trivial reconstruction.
	m.tail.Wt.W.Zero()
	return m, nil
}

// upsampleNearest repeats each input sample s× in both dimensions.
func upsampleNearest(x *tensor.Tensor, s int) *tensor.Tensor {
	return upsampleNearestInto(x, s, nil)
}

// upsampleNearestInto is upsampleNearest writing into a reusable buffer
// (grown via Ensure; pass nil to allocate).
func upsampleNearestInto(x *tensor.Tensor, s int, out *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out = tensor.Ensure(out, n, c, h*s, w*s)
	for nc := 0; nc < n*c; nc++ {
		src := x.Data[nc*h*w : (nc+1)*h*w]
		dst := out.Data[nc*h*s*w*s : (nc+1)*h*s*w*s]
		for y := 0; y < h*s; y++ {
			srow := src[(y/s)*w : (y/s+1)*w]
			drow := dst[y*w*s : (y+1)*w*s]
			for xx := range drow {
				drow[xx] = srow[xx/s]
			}
		}
	}
	return out
}

// downsumNearest is the adjoint of upsampleNearest: it sums each s×s
// output window back onto its source sample.
func downsumNearest(gy *tensor.Tensor, s int) *tensor.Tensor {
	n, c, hs, ws := gy.Shape[0], gy.Shape[1], gy.Shape[2], gy.Shape[3]
	h, w := hs/s, ws/s
	out := tensor.New(n, c, h, w)
	for nc := 0; nc < n*c; nc++ {
		src := gy.Data[nc*hs*ws : (nc+1)*hs*ws]
		dst := out.Data[nc*h*w : (nc+1)*h*w]
		for y := 0; y < hs; y++ {
			srow := src[y*ws : (y+1)*ws]
			drow := dst[(y/s)*w : (y/s+1)*w]
			for xx, v := range srow {
				drow[xx/s] += v
			}
		}
	}
	return out
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.head.Params()...)
	for _, b := range m.body {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.bodyConv.Params()...)
	for _, u := range m.ups {
		ps = append(ps, u.conv.Params()...)
	}
	ps = append(ps, m.tail.Params()...)
	return ps
}

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

// SizeBytes returns the serialized weight size — the bytes a client must
// download per model (paper Fig 1(b), Fig 10).
func (m *Model) SizeBytes() int { return nn.WeightsSize(m.Params()) }

// CheckpointBytes approximates a training-framework checkpoint (weights
// plus two Adam moment tensors), which is what paper Table 1 reports.
func (m *Model) CheckpointBytes() int { return 3 * m.SizeBytes() }

// Forward runs the network on x (N, 3, H, W) in [−0.5, 0.5] and returns
// (N, 3, H·scale, W·scale). Activations are cached for Backward.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := m.head.Forward(x)
	b := h
	for _, blk := range m.body {
		b = blk.Forward(b)
	}
	b = m.bodyConv.Forward(b)
	b = tensor.Add(b, h) // global skip
	for _, u := range m.ups {
		b = u.conv.Forward(b)
		b = u.shuffle.Forward(b)
	}
	out := m.tail.Forward(b)
	if m.Cfg.Scale == 1 {
		out.AddInPlace(x) // global image residual (identity at init)
	} else {
		out.AddInPlace(upsampleNearest(x, m.Cfg.Scale))
	}
	return out
}

// ForwardInference runs the network on the no-grad fast path: fused
// conv+bias+ReLU kernels, banded im2col through pooled scratch, and
// layer-owned output buffers, so no activations or column matrices are
// retained and steady-state calls allocate nothing. The output is
// bitwise identical to Forward. The returned tensor is owned by the
// model and valid until the next ForwardInference call.
func (m *Model) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	h := m.head.ForwardInference(x)
	b := h
	for _, blk := range m.body {
		b = blk.ForwardInference(b)
	}
	b = m.bodyConv.ForwardInference(b)
	b.AddInPlace(h) // global skip (h is head's buffer, untouched since)
	for _, u := range m.ups {
		b = u.conv.ForwardInference(b)
		b = u.shuffle.ForwardInference(b)
	}
	out := m.tail.ForwardInference(b)
	if m.Cfg.Scale == 1 {
		out.AddInPlace(x) // global image residual (identity at init)
	} else {
		m.upBuf = upsampleNearestInto(x, m.Cfg.Scale, m.upBuf)
		out.AddInPlace(m.upBuf)
	}
	return out
}

// Backward propagates the loss gradient, accumulating parameter gradients.
func (m *Model) Backward(gy *tensor.Tensor) *tensor.Tensor {
	g := m.tail.Backward(gy)
	for i := len(m.ups) - 1; i >= 0; i-- {
		g = m.ups[i].shuffle.Backward(g)
		g = m.ups[i].conv.Backward(g)
	}
	gSkip := g.Clone()
	g = m.bodyConv.Backward(g)
	for i := len(m.body) - 1; i >= 0; i-- {
		g = m.body[i].Backward(g)
	}
	g.AddInPlace(gSkip) // global skip gradient
	gx := m.head.Backward(g)
	if m.Cfg.Scale == 1 {
		gx.AddInPlace(gy) // global image-residual gradient
	} else {
		gx.AddInPlace(downsumNearest(gy, m.Cfg.Scale))
	}
	return gx
}

// ToTensor converts an RGB frame into a normalized (1, 3, H, W) tensor in
// [−0.5, 0.5].
func ToTensor(f *video.RGB) *tensor.Tensor {
	return toTensorInto(f, nil)
}

// toTensorInto is ToTensor writing into a reusable tensor (grown via
// Ensure; pass nil to allocate).
func toTensorInto(f *video.RGB, t *tensor.Tensor) *tensor.Tensor {
	t = tensor.Ensure(t, 1, 3, f.H, f.W)
	for c := 0; c < 3; c++ {
		plane := t.Data[c*f.H*f.W : (c+1)*f.H*f.W]
		for i := 0; i < f.W*f.H; i++ {
			plane[i] = float32(f.Pix[i*3+c])/255 - 0.5
		}
	}
	return t
}

// FromTensor converts a (1, 3, H, W) tensor in [−0.5, 0.5] back to RGB.
func FromTensor(t *tensor.Tensor) *video.RGB {
	h, w := t.Shape[2], t.Shape[3]
	f := video.NewRGB(w, h)
	for c := 0; c < 3; c++ {
		plane := t.Data[c*h*w : (c+1)*h*w]
		for i := 0; i < w*h; i++ {
			v := (plane[i] + 0.5) * 255
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			f.Pix[i*3+c] = uint8(v + 0.5)
		}
	}
	return f
}

// Enhance super-resolves one RGB frame. It runs on the inference fast
// path: after the first call on a given frame size the model reuses its
// internal buffers, so the per-frame steady-state cost is the kernels
// plus one output RGB allocation.
func (m *Model) Enhance(low *video.RGB) *video.RGB {
	m.in = toTensorInto(low, m.in)
	return FromTensor(m.ForwardInference(m.in))
}

// EnhanceYUV performs the client-side dcSR conversion chain of paper Fig 6:
// YUV→RGB, SR inference, RGB→YUV. Scale must be 1 for in-loop use.
func (m *Model) EnhanceYUV(f *video.YUV) *video.YUV {
	return m.Enhance(f.ToRGB()).ToYUV()
}

// InferenceFLOPs returns the multiply-add count (×2) of one forward pass
// on an input of lowW×lowH pixels. The device model converts this to
// latency per device profile.
func (m *Model) InferenceFLOPs(lowW, lowH int) float64 {
	return ConfigFLOPs(m.Cfg, lowW, lowH)
}

// ConfigFLOPs computes inference FLOPs for a configuration without
// building the model. Per convolution: 2·K²·inC·outC·outH·outW.
func ConfigFLOPs(cfg Config, lowW, lowH int) float64 {
	cfg = cfg.withDefaults()
	nf := float64(cfg.Filters)
	px := float64(lowW * lowH)
	conv := func(inC, outC, pixels float64) float64 { return 2 * 9 * inC * outC * pixels }
	fl := conv(3, nf, px)                               // head
	fl += float64(cfg.ResBlocks) * 2 * conv(nf, nf, px) // body
	fl += conv(nf, nf, px)                              // body conv
	p := px
	for s := cfg.Scale; s > 1; s /= 2 {
		fl += conv(nf, nf*4, p)
		p *= 4
	}
	fl += conv(nf, 3, p) // tail
	return fl
}

// ActivationBytes estimates peak activation memory for one inference at
// the given input size: the dominant term is two float32 feature maps of
// n_f channels at input resolution (plus upsampled maps when Scale > 1).
// The device model uses this for the OOM behaviour seen in paper Fig 8
// (NAS/NEMO cannot run 4K on the Jetson).
func ConfigActivationBytes(cfg Config, lowW, lowH int) int64 {
	cfg = cfg.withDefaults()
	px := int64(lowW) * int64(lowH)
	base := 2 * 4 * int64(cfg.Filters) * px // two resident feature maps
	if cfg.Scale > 1 {
		base += 4 * 4 * int64(cfg.Filters) * px // widest upsampling activation
	}
	return base
}
