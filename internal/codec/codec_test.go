package codec

import (
	"math"
	"math/rand"
	"testing"

	"dcsr/internal/video"
)

func TestExpGolombRoundTrip(t *testing.T) {
	w := NewBitWriter()
	ues := []uint32{0, 1, 2, 3, 7, 8, 100, 65535}
	ses := []int32{0, 1, -1, 2, -2, 17, -100, 32000, -32000}
	for _, v := range ues {
		w.WriteUE(v)
	}
	for _, v := range ses {
		w.WriteSE(v)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range ues {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatalf("ReadUE: %v", err)
		}
		if got != want {
			t.Fatalf("ReadUE = %d, want %d", got, want)
		}
	}
	for _, want := range ses {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatalf("ReadSE: %v", err)
		}
		if got != want {
			t.Fatalf("ReadSE = %d, want %d", got, want)
		}
	}
}

func TestBitReaderTruncated(t *testing.T) {
	r := NewBitReader(nil)
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("ReadBit on empty stream should fail")
	}
	if _, err := r.ReadUE(); err == nil {
		t.Fatal("ReadUE on empty stream should fail")
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var in, freq, out [16]float64
		for i := range in {
			in[i] = rng.Float64()*255 - 128
		}
		fdct4(&in, &freq)
		idct4(&freq, &out)
		for i := range in {
			if math.Abs(in[i]-out[i]) > 1e-9 {
				t.Fatalf("trial %d: idct(dct(x))[%d] = %g, want %g", trial, i, out[i], in[i])
			}
		}
	}
}

func TestQStepMonotonic(t *testing.T) {
	prev := 0.0
	for qp := 0; qp <= 51; qp++ {
		s := QStep(qp)
		if s <= prev {
			t.Fatalf("QStep(%d) = %g not > QStep(%d) = %g", qp, s, qp-1, prev)
		}
		prev = s
	}
	// Step doubles every 6 QP.
	if r := QStep(18) / QStep(12); math.Abs(r-2) > 1e-9 {
		t.Fatalf("QStep(18)/QStep(12) = %g, want 2", r)
	}
}

func TestLevelsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var levels [16]int32
		nz := rng.Intn(17)
		perm := rng.Perm(16)
		for i := 0; i < nz; i++ {
			v := int32(rng.Intn(100) - 50)
			if v == 0 {
				v = 1
			}
			levels[perm[i]] = v
		}
		w := NewBitWriter()
		writeLevels(w, &levels)
		var got [16]int32
		if err := readLevels(NewBitReader(w.Bytes()), &got); err != nil {
			t.Fatalf("trial %d: readLevels: %v", trial, err)
		}
		if got != levels {
			t.Fatalf("trial %d: levels mismatch\n got %v\nwant %v", trial, got, levels)
		}
	}
}

// testClipYUV renders a deterministic clip at codec-friendly dimensions.
func testClipYUV(t testing.TB, w, h, cues int, seed int64) []*video.YUV {
	t.Helper()
	clip := video.Generate(video.GenConfig{
		W: w, H: h, Seed: seed, NumScenes: 3, TotalCues: cues,
		MinFrames: 6, MaxFrames: 10,
	})
	return clip.YUVFrames()
}

func psnrY(a, b *video.YUV) float64 {
	var mse float64
	for i := range a.Y {
		d := float64(a.Y[i]) - float64(b.Y[i])
		mse += d * d
	}
	mse /= float64(len(a.Y))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 7)
	for _, bf := range []int{0, 2} {
		st, err := Encode(frames, nil, 30, EncoderConfig{QP: 20, GOPSize: 12, BFrames: bf})
		if err != nil {
			t.Fatalf("BFrames=%d: Encode: %v", bf, err)
		}
		var d Decoder
		out, err := d.Decode(st)
		if err != nil {
			t.Fatalf("BFrames=%d: Decode: %v", bf, err)
		}
		if len(out) != len(frames) {
			t.Fatalf("BFrames=%d: decoded %d frames, want %d", bf, len(out), len(frames))
		}
		for i := range frames {
			if p := psnrY(frames[i], out[i]); p < 30 {
				t.Errorf("BFrames=%d: frame %d PSNR %.1f dB < 30 at QP 20", bf, i, p)
			}
		}
		if d.Stats.Frames() != len(frames) {
			t.Errorf("BFrames=%d: stats count %d != %d", bf, d.Stats.Frames(), len(frames))
		}
	}
}

func TestQPQualityAndRateOrdering(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 2, 11)
	var prevBytes int
	var prevPSNR float64 = math.Inf(1)
	for i, qp := range []int{10, 28, 45} {
		st, err := Encode(frames, nil, 30, EncoderConfig{QP: qp})
		if err != nil {
			t.Fatalf("QP %d: %v", qp, err)
		}
		var d Decoder
		out, err := d.Decode(st)
		if err != nil {
			t.Fatalf("QP %d: %v", qp, err)
		}
		var avg float64
		for j := range frames {
			avg += psnrY(frames[j], out[j])
		}
		avg /= float64(len(frames))
		if i > 0 {
			if st.Bytes() >= prevBytes {
				t.Errorf("QP %d used %d bytes, not fewer than %d at lower QP", qp, st.Bytes(), prevBytes)
			}
			if avg >= prevPSNR {
				t.Errorf("QP %d PSNR %.1f, not lower than %.1f at lower QP", qp, avg, prevPSNR)
			}
		}
		prevBytes, prevPSNR = st.Bytes(), avg
	}
}

func TestForceIFramePlacement(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 13)
	forceI := make([]bool, len(frames))
	cut := len(frames) / 2
	forceI[cut] = true
	st, err := Encode(frames, forceI, 30, EncoderConfig{QP: 30, GOPSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range st.Frames {
		if f.Display == cut && f.Type == FrameI {
			found = true
		}
	}
	if !found {
		t.Fatalf("no I frame at forced cut %d", cut)
	}
	if got := st.CountType(FrameI); got != 2 {
		t.Errorf("expected exactly 2 I frames (start + cut), got %d", got)
	}
}

func TestGOPSizeForcesPeriodicI(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 17)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 30, GOPSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	lastI := -1
	// Check in display order over anchors only.
	for _, f := range st.Frames {
		if f.Type == FrameI {
			if lastI >= 0 && f.Display-lastI > 8 {
				t.Errorf("I frames at %d and %d exceed GOP size 8", lastI, f.Display)
			}
			if f.Display > lastI {
				lastI = f.Display
			}
		}
	}
	if lastI < 0 {
		t.Fatal("no I frames")
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 2, 19)
	st, err := Encode(frames, nil, 24, EncoderConfig{QP: 25, BFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := st.Marshal()
	if len(data) != st.Bytes() {
		t.Errorf("Marshal length %d != Bytes() %d", len(data), st.Bytes())
	}
	st2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if st2.W != st.W || st2.H != st.H || st2.FPS != st.FPS || len(st2.Frames) != len(st.Frames) {
		t.Fatalf("header mismatch after round trip: %+v vs %+v", st2, st)
	}
	var d1, d2 Decoder
	out1, err := d1.Decode(st)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := d2.Decode(st2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out1 {
		for j := range out1[i].Y {
			if out1[i].Y[j] != out2[i].Y[j] {
				t.Fatalf("frame %d differs after marshal round trip", i)
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 1, 23)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	data := st.Marshal()
	cases := map[string][]byte{
		"empty":     {},
		"short":     data[:10],
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)-5],
	}
	for name, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("%s: Unmarshal accepted corrupt data", name)
		}
	}
}

func TestEnhancerHookAppliedToIFramesOnly(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 29)
	forceI := make([]bool, len(frames))
	forceI[len(frames)/2] = true
	st, err := Encode(frames, forceI, 30, EncoderConfig{QP: 28, GOPSize: 1000, BFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	var calls []int
	d := Decoder{Enhancer: EnhancerFunc(func(display int, f *video.YUV) *video.YUV {
		calls = append(calls, display)
		// Brighten the I frame so propagation is observable.
		g := f.Clone()
		for i := range g.Y {
			if g.Y[i] < 215 {
				g.Y[i] += 40
			}
		}
		return g
	})}
	out, err := d.Decode(st)
	if err != nil {
		t.Fatal(err)
	}
	wantI := st.CountType(FrameI)
	if len(calls) != wantI || d.Stats.Enhanced != wantI {
		t.Fatalf("enhancer called %d times (stats %d), want %d", len(calls), d.Stats.Enhanced, wantI)
	}
	// The enhancement must propagate: decoded P/B frames should be brighter
	// than the plain decode of the same stream.
	var plain Decoder
	base, err := plain.Decode(st)
	if err != nil {
		t.Fatal(err)
	}
	brighter := 0
	for i := range out {
		var se, sb int64
		for j := range out[i].Y {
			se += int64(out[i].Y[j])
			sb += int64(base[i].Y[j])
		}
		if se > sb {
			brighter++
		}
	}
	if brighter < len(out)*9/10 {
		t.Errorf("enhancement propagated to only %d/%d frames", brighter, len(out))
	}
}

func TestEnhancerDimensionChangeRejected(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 1, 31)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	d := Decoder{Enhancer: EnhancerFunc(func(_ int, f *video.YUV) *video.YUV {
		return video.NewYUV(f.W*2, f.H*2)
	})}
	if _, err := d.Decode(st); err == nil {
		t.Fatal("decoder accepted an enhancer that changed dimensions")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(nil, nil, 30, EncoderConfig{}); err == nil {
		t.Error("Encode accepted empty input")
	}
	odd := []*video.YUV{video.NewYUV(30, 30)}
	if _, err := Encode(odd, nil, 30, EncoderConfig{}); err == nil {
		t.Error("Encode accepted non-multiple-of-16 dimensions")
	}
	bad := []*video.YUV{video.NewYUV(32, 32)}
	if _, err := Encode(bad, []bool{true, false}, 30, EncoderConfig{}); err == nil {
		t.Error("Encode accepted mismatched forceI length")
	}
}

func TestSkipModeStaticScene(t *testing.T) {
	// A perfectly static clip should compress P frames to nearly nothing
	// via skip macroblocks.
	f0 := video.Generate(video.GenConfig{W: 64, H: 48, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 2, MaxFrames: 2}).YUVFrames()[0]
	frames := []*video.YUV{f0, f0.Clone(), f0.Clone(), f0.Clone()}
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 24})
	if err != nil {
		t.Fatal(err)
	}
	iSize := 0
	pSize := 0
	for _, f := range st.Frames {
		if f.Type == FrameI {
			iSize += len(f.Data)
		} else {
			pSize += len(f.Data)
		}
	}
	// All three P frames together should cost well under one I frame: most
	// macroblocks are skip, with only quantization-error refresh coded.
	if pSize >= iSize {
		t.Errorf("static P frames use %d bytes vs I %d; skip mode ineffective", pSize, iSize)
	}
}
