package codec

import (
	"testing"

	"dcsr/internal/obs"
	"dcsr/internal/video"
)

// TestPrecisionEnhancerRouting pins the per-precision attribution: a
// PrecisionEnhancer that alternates paths per I frame must have every
// enhancement counted in Enhanced, only the int8 ones in EnhancedInt8
// and codec_enhance_int8_window_seconds, and declined frames (input
// returned unchanged) in neither — regardless of reported precision.
func TestPrecisionEnhancerRouting(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 31)
	forceI := make([]bool, len(frames))
	for i := range forceI {
		forceI[i] = i%4 == 0
	}
	st, err := Encode(frames, forceI, 30, EncoderConfig{QP: 28, GOPSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	numI := st.CountType(FrameI)
	if numI < 3 {
		t.Fatalf("need at least 3 I frames, got %d", numI)
	}
	o := obs.New()
	call := 0
	d := Decoder{
		Obs: o,
		Enhancer: PrecisionEnhancerFunc(func(_ int, f *video.YUV) (*video.YUV, Precision) {
			call++
			switch call % 3 {
			case 0:
				// Declined: even a claimed int8 precision must not count
				// when the hook returns its input unchanged.
				return f, PrecisionInt8
			case 1:
				return f.Clone(), PrecisionInt8
			default:
				return f.Clone(), PrecisionFloat32
			}
		}),
	}
	if _, err := d.Decode(st); err != nil {
		t.Fatal(err)
	}
	declined := numI / 3
	wantInt8 := (numI + 2) / 3
	if got := d.Stats.Enhanced; got != numI-declined {
		t.Errorf("Enhanced = %d, want %d", got, numI-declined)
	}
	if got := d.Stats.EnhancedInt8; got != wantInt8 {
		t.Errorf("EnhancedInt8 = %d, want %d", got, wantInt8)
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Histograms["codec_enhance_seconds"].Count; got != int64(d.Stats.Enhanced) {
		t.Errorf("codec_enhance_seconds count = %d, want %d", got, d.Stats.Enhanced)
	}
	if got := snap.WindowedHistograms["codec_enhance_int8_window_seconds"].Count; got != int64(wantInt8) {
		t.Errorf("codec_enhance_int8_window_seconds count = %d, want %d", got, wantInt8)
	}

	// A plain FrameEnhancer on the same stream attributes nothing to int8.
	d2 := Decoder{Enhancer: EnhancerFunc(func(_ int, f *video.YUV) *video.YUV { return f.Clone() })}
	if _, err := d2.Decode(st); err != nil {
		t.Fatal(err)
	}
	if d2.Stats.Enhanced != numI || d2.Stats.EnhancedInt8 != 0 {
		t.Errorf("plain enhancer: Enhanced=%d EnhancedInt8=%d, want %d and 0",
			d2.Stats.Enhanced, d2.Stats.EnhancedInt8, numI)
	}
}
