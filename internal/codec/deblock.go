package codec

import "dcsr/internal/video"

// In-loop deblocking filter (opt-in via EncoderConfig.Deblock, signaled
// per frame). Block-based coding at high QP leaves visible discontinuities
// at 4×4 block boundaries; this filter smooths boundary pixel pairs whose
// step is small enough to be a coding artifact rather than a real edge
// (the H.263 Annex J idea, radically simplified). Being in-loop, the
// encoder applies it to its reconstruction exactly as the decoder does,
// so prediction references stay bit-identical.

// deblockThreshold maps the quantizer step to the maximum boundary step
// treated as an artifact.
func deblockThreshold(qstep float64) int32 {
	t := int32(qstep / 2)
	if t < 2 {
		t = 2
	}
	if t > 24 {
		t = 24
	}
	return t
}

// deblockPlane smooths 4×4 block boundaries of one plane in place.
func deblockPlane(p []uint8, w, h int, thr int32) {
	// Vertical boundaries.
	for x := blockSize; x < w; x += blockSize {
		for y := 0; y < h; y++ {
			i := y*w + x
			a, b := int32(p[i-1]), int32(p[i])
			d := b - a
			if d > -thr && d < thr {
				p[i-1] = clamp8(a + d/4)
				p[i] = clamp8(b - d/4)
			}
		}
	}
	// Horizontal boundaries.
	for y := blockSize; y < h; y += blockSize {
		row := p[y*w:]
		prev := p[(y-1)*w:]
		for x := 0; x < w; x++ {
			a, b := int32(prev[x]), int32(row[x])
			d := b - a
			if d > -thr && d < thr {
				prev[x] = clamp8(a + d/4)
				row[x] = clamp8(b - d/4)
			}
		}
	}
}

// deblockFrame filters all three planes of a reconstructed frame.
func deblockFrame(f *video.YUV, qstep float64) {
	thr := deblockThreshold(qstep)
	deblockPlane(f.Y, f.W, f.H, thr)
	deblockPlane(f.U, f.ChromaW(), f.ChromaH(), thr)
	deblockPlane(f.V, f.ChromaW(), f.ChromaH(), thr)
}
