package codec

import "math"

// 4×4 DCT-II transform pair and QP-driven scalar quantization. QP follows
// the H.264 convention: quantizer step doubles every 6 QP steps, covering
// the same 0–51 range FFMPEG's CRF exposes (the paper generates its
// low-quality inputs with CRF 51).

const blockSize = 4

var dctBasis [blockSize][blockSize]float64

func init() {
	for k := 0; k < blockSize; k++ {
		var c float64
		if k == 0 {
			c = math.Sqrt(1.0 / blockSize)
		} else {
			c = math.Sqrt(2.0 / blockSize)
		}
		for n := 0; n < blockSize; n++ {
			dctBasis[k][n] = c * math.Cos(math.Pi*float64(k)*(2*float64(n)+1)/(2*blockSize))
		}
	}
}

// fdct4 computes the forward 4×4 DCT of a residual block (row-major 16).
func fdct4(in *[16]float64, out *[16]float64) {
	var tmp [16]float64
	// Rows.
	for y := 0; y < 4; y++ {
		for k := 0; k < 4; k++ {
			var s float64
			for n := 0; n < 4; n++ {
				s += dctBasis[k][n] * in[y*4+n]
			}
			tmp[y*4+k] = s
		}
	}
	// Columns.
	for x := 0; x < 4; x++ {
		for k := 0; k < 4; k++ {
			var s float64
			for n := 0; n < 4; n++ {
				s += dctBasis[k][n] * tmp[n*4+x]
			}
			out[k*4+x] = s
		}
	}
}

// idct4 computes the inverse 4×4 DCT.
func idct4(in *[16]float64, out *[16]float64) {
	var tmp [16]float64
	// Columns.
	for x := 0; x < 4; x++ {
		for n := 0; n < 4; n++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += dctBasis[k][n] * in[k*4+x]
			}
			tmp[n*4+x] = s
		}
	}
	// Rows.
	for y := 0; y < 4; y++ {
		for n := 0; n < 4; n++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += dctBasis[k][n] * tmp[y*4+k]
			}
			out[y*4+n] = s
		}
	}
}

// QStep returns the quantizer step size for a QP in [0, 51].
func QStep(qp int) float64 {
	if qp < 0 {
		qp = 0
	}
	if qp > 51 {
		qp = 51
	}
	return 0.625 * math.Pow(2, float64(qp)/6.0)
}

// Quantizer rounding offsets. Intra blocks use ordinary rounding; inter
// residuals use a deadzone (smaller offset) so marginal corrections are
// dropped rather than coded — the cheap stand-in for the rate-distortion
// decisions of production encoders, and what keeps P/B frames from
// spending bits refreshing reference quantization noise.
const (
	roundIntra = 0.5
	roundInter = 1.0 / 3.0
)

// quantizeBlock forward-transforms and quantizes a residual block into
// integer levels using the given deadzone rounding offset. Returns the
// number of nonzero levels.
func quantizeBlock(res *[16]float64, qstep, roundOff float64, levels *[16]int32) int {
	var coef [16]float64
	fdct4(res, &coef)
	nz := 0
	for i := 0; i < 16; i++ {
		c := coef[i] / qstep
		var q int32
		if c >= 0 {
			q = int32(c + roundOff)
		} else {
			q = -int32(-c + roundOff)
		}
		levels[i] = q
		if q != 0 {
			nz++
		}
	}
	return nz
}

// dequantizeBlock reconstructs a residual block from quantized levels.
func dequantizeBlock(levels *[16]int32, qstep float64, res *[16]float64) {
	var coef [16]float64
	for i := 0; i < 16; i++ {
		coef[i] = float64(levels[i]) * qstep
	}
	idct4(&coef, res)
}

// zigzag4 is the scan order for 4×4 coefficient blocks.
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// writeLevels entropy-codes quantized levels: ue(#nonzero), then for each
// nonzero coefficient in zigzag order ue(zero-run before it) and se(level).
func writeLevels(w *BitWriter, levels *[16]int32) {
	nz := 0
	for _, v := range levels {
		if v != 0 {
			nz++
		}
	}
	w.WriteUE(uint32(nz))
	if nz == 0 {
		return
	}
	run := uint32(0)
	for _, zi := range zigzag4 {
		v := levels[zi]
		if v == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(v)
		run = 0
	}
}

// readLevels decodes what writeLevels produced.
func readLevels(r *BitReader, levels *[16]int32) error {
	for i := range levels {
		levels[i] = 0
	}
	nz, err := r.ReadUE()
	if err != nil {
		return err
	}
	if nz > 16 {
		return ErrBitstream
	}
	pos := 0
	for k := uint32(0); k < nz; k++ {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= 16 {
			return ErrBitstream
		}
		v, err := r.ReadSE()
		if err != nil {
			return err
		}
		levels[zigzag4[pos]] = v
		pos++
	}
	return nil
}
