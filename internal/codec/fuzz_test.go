package codec

import (
	"math/rand"
	"testing"

	"dcsr/internal/video"
)

// TestDecodeNeverPanicsOnCorruption flips random bits/bytes in a valid
// stream and asserts the decoder returns errors instead of panicking or
// allocating absurd amounts. This is the property a client needs when the
// network hands it garbage.
func TestDecodeNeverPanicsOnCorruption(t *testing.T) {
	frames := testClipYUV(t, 48, 32, 2, 77)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 35, BFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig := st.Marshal()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), orig...)
		// Corrupt 1–8 random bytes.
		for k := 0; k < 1+rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			s2, err := Unmarshal(data)
			if err != nil {
				return // rejected at parse time: fine
			}
			var d Decoder
			_, _ = d.Decode(s2) // errors are fine; panics are not
		}()
	}
}

// TestDecodeNeverPanicsOnTruncation checks every truncation point of the
// container parses or fails cleanly.
func TestDecodeNeverPanicsOnTruncation(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 1, 78)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 40})
	if err != nil {
		t.Fatal(err)
	}
	orig := st.Marshal()
	step := len(orig)/64 + 1
	for cut := 0; cut < len(orig); cut += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panicked: %v", cut, r)
				}
			}()
			if s2, err := Unmarshal(orig[:cut]); err == nil {
				var d Decoder
				_, _ = d.Decode(s2)
			}
		}()
	}
}

// TestDecodeRandomGarbage feeds entirely random bytes.
func TestDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, rng.Intn(2000))
		rng.Read(data)
		// Make some trials look like streams (right magic).
		if trial%3 == 0 && len(data) >= 4 {
			copy(data, streamMagic)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panicked: %v", trial, r)
				}
			}()
			if s2, err := Unmarshal(data); err == nil {
				var d Decoder
				_, _ = d.Decode(s2)
			}
		}()
	}
}

// TestUnmarshalRejectsAbsurdHeaders confirms the sanity bounds.
func TestUnmarshalRejectsAbsurdHeaders(t *testing.T) {
	frames := []*video.YUV{video.NewYUV(32, 32)}
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 40})
	if err != nil {
		t.Fatal(err)
	}
	data := st.Marshal()
	// Absurd width.
	bad := append([]byte(nil), data...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Unmarshal(bad); err == nil {
		t.Error("absurd width accepted")
	}
	// Absurd display index.
	bad2 := append([]byte(nil), data...)
	bad2[21], bad2[22], bad2[23], bad2[24] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Unmarshal(bad2); err == nil {
		t.Error("absurd display index accepted")
	}
}
