package codec

import (
	"encoding/binary"
	"fmt"
)

// FrameType classifies a coded frame within the GOP structure.
type FrameType uint8

// Frame types. I frames are self-contained; P frames reference the previous
// anchor (I or P); B frames reference the surrounding anchors in both
// directions (paper §1, "Insights").
const (
	FrameI FrameType = iota
	FrameP
	FrameB
)

// String returns "I", "P" or "B".
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// EncodedFrame is one coded picture in coding order.
type EncodedFrame struct {
	Type    FrameType
	Display int // display-order index within the stream
	Data    []byte
}

// Stream is a coded video sequence: a small header plus frames in coding
// order. Display order is recovered from each frame's Display index.
type Stream struct {
	W, H   int
	FPS    int
	Frames []EncodedFrame
}

// Bytes returns the total serialized size in bytes; this is the number the
// bandwidth experiments (paper Fig 10) account for each video segment.
func (s *Stream) Bytes() int {
	n := len(streamMagic) + 4*3 + 4 // header + frame count
	for _, f := range s.Frames {
		n += 1 + 4 + 4 + len(f.Data)
	}
	return n
}

// FrameCount returns the number of coded frames.
func (s *Stream) FrameCount() int { return len(s.Frames) }

// CountType returns how many frames of type t the stream holds.
func (s *Stream) CountType(t FrameType) int {
	n := 0
	for _, f := range s.Frames {
		if f.Type == t {
			n++
		}
	}
	return n
}

var streamMagic = []byte("dcV1")

// Sanity bounds enforced when parsing untrusted streams: dimensions up to
// 8K, a day of video at 120 FPS. They exist so a corrupt length or index
// cannot make the decoder allocate unbounded memory.
const (
	maxDimension  = 7680 * 2
	maxFrameCount = 120 * 60 * 60 * 24
)

// Marshal serializes the stream to a byte slice.
func (s *Stream) Marshal() []byte {
	out := make([]byte, 0, s.Bytes())
	out = append(out, streamMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.W))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.H))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.FPS))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Frames)))
	for _, f := range s.Frames {
		out = append(out, byte(f.Type))
		out = binary.LittleEndian.AppendUint32(out, uint32(f.Display))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Data)))
		out = append(out, f.Data...)
	}
	return out
}

// Unmarshal parses a stream serialized by Marshal.
func Unmarshal(data []byte) (*Stream, error) {
	if len(data) < len(streamMagic)+16 {
		return nil, fmt.Errorf("%w: short header", ErrBitstream)
	}
	if string(data[:4]) != string(streamMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBitstream)
	}
	s := &Stream{
		W:   int(binary.LittleEndian.Uint32(data[4:])),
		H:   int(binary.LittleEndian.Uint32(data[8:])),
		FPS: int(binary.LittleEndian.Uint32(data[12:])),
	}
	if s.W <= 0 || s.H <= 0 || s.W > maxDimension || s.H > maxDimension {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrBitstream, s.W, s.H)
	}
	n := int(binary.LittleEndian.Uint32(data[16:]))
	if n > maxFrameCount {
		return nil, fmt.Errorf("%w: implausible frame count %d", ErrBitstream, n)
	}
	off := 20
	for i := 0; i < n; i++ {
		if off+9 > len(data) {
			return nil, fmt.Errorf("%w: truncated frame header", ErrBitstream)
		}
		f := EncodedFrame{Type: FrameType(data[off])}
		f.Display = int(binary.LittleEndian.Uint32(data[off+1:]))
		if f.Display < 0 || f.Display > maxFrameCount {
			return nil, fmt.Errorf("%w: implausible display index %d", ErrBitstream, f.Display)
		}
		sz := int(binary.LittleEndian.Uint32(data[off+5:]))
		off += 9
		if off+sz > len(data) {
			return nil, fmt.Errorf("%w: truncated frame payload", ErrBitstream)
		}
		f.Data = append([]byte(nil), data[off:off+sz]...)
		off += sz
		s.Frames = append(s.Frames, f)
	}
	return s, nil
}
