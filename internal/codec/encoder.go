package codec

import (
	"fmt"
	"math"

	"dcsr/internal/video"
)

// mbSize is the macroblock size in luma samples.
const mbSize = 16

// EncoderConfig controls rate/quality and GOP structure.
type EncoderConfig struct {
	// QP is the quantization parameter in [0, 51]; it plays the role of
	// FFMPEG's CRF (the paper encodes low-quality inputs at CRF 51).
	QP int
	// GOPSize is the maximum distance between I frames. Scene cuts may
	// place I frames earlier. Default 30.
	GOPSize int
	// BFrames is the number of B frames between consecutive anchors (0–3).
	BFrames int
	// SearchRange is the full-pel motion search range. Default 8.
	SearchRange int
	// HalfPel enables half-sample motion compensation for P/B luma
	// (bilinearly interpolated). Off by default.
	HalfPel bool
	// Deblock enables the in-loop deblocking filter. Off by default.
	Deblock bool
	// TargetBitrate, when positive, enables one-pass rate control: QP is
	// adapted per frame by a virtual-buffer controller so the stream
	// lands near this many bits per second at the given fps. QP then
	// serves as the controller's starting point (default 35).
	TargetBitrate int
}

func (c EncoderConfig) withDefaults() EncoderConfig {
	if c.GOPSize == 0 {
		c.GOPSize = 30
	}
	if c.SearchRange == 0 {
		c.SearchRange = 8
	}
	if c.QP < 0 {
		c.QP = 0
	}
	if c.QP > 51 {
		c.QP = 51
	}
	if c.BFrames < 0 {
		c.BFrames = 0
	}
	if c.BFrames > 3 {
		c.BFrames = 3
	}
	return c
}

// Encode compresses frames (display order) into a Stream. forceI marks
// display indices that must start with an I frame (scene cuts from the
// shot-based splitter); it may be nil. Frame dimensions must be multiples
// of 16. fps is recorded in the stream header.
func Encode(frames []*video.YUV, forceI []bool, fps int, cfg EncoderConfig) (*Stream, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("codec: no frames to encode")
	}
	w, h := frames[0].W, frames[0].H
	if w%mbSize != 0 || h%mbSize != 0 {
		return nil, fmt.Errorf("codec: frame dimensions %dx%d must be multiples of %d", w, h, mbSize)
	}
	for i, f := range frames {
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("codec: frame %d dimension mismatch", i)
		}
	}
	if forceI != nil && len(forceI) != len(frames) {
		return nil, fmt.Errorf("codec: forceI length %d != frame count %d", len(forceI), len(frames))
	}
	cfg = cfg.withDefaults()
	n := len(frames)

	// Anchor placement: every BFrames+1 frames, pulled in by scene cuts.
	anchors := []int{0}
	for anchors[len(anchors)-1] < n-1 {
		last := anchors[len(anchors)-1]
		next := last + cfg.BFrames + 1
		if next > n-1 {
			next = n - 1
		}
		for j := last + 1; j <= next; j++ {
			if forceI != nil && forceI[j] {
				next = j
				break
			}
		}
		anchors = append(anchors, next)
	}

	st := &Stream{W: w, H: h, FPS: fps}
	// Per-frame-type QP offsets, as production encoders use: I frames are
	// coded finer because every frame in the GOP inherits their quality
	// (exactly the structure dcSR's I-frame enhancement relies on); B
	// frames, referenced by nothing, are coded coarser. With a target
	// bitrate set, the controller steers the base QP per frame.
	rc := newRateControl(cfg, fps)
	lastI := 0

	var prevRecon *video.YUV
	for k, a := range anchors {
		isI := k == 0 || (forceI != nil && forceI[a]) || a-lastI >= cfg.GOPSize
		qpI, qpP, qpB := rc.frameQPs()
		var data []byte
		var recon *video.YUV
		if isI {
			data, recon = encodeIFrame(frames[a], qpI, QStep(qpI), cfg.Deblock)
			st.Frames = append(st.Frames, EncodedFrame{Type: FrameI, Display: a, Data: data})
			lastI = a
		} else {
			data, recon = encodePFrame(frames[a], prevRecon, qpP, QStep(qpP), cfg.SearchRange, cfg.HalfPel, cfg.Deblock)
			st.Frames = append(st.Frames, EncodedFrame{Type: FrameP, Display: a, Data: data})
		}
		rc.consume(len(data) * 8)
		// B frames between the previous anchor and this one, coded after it.
		if k > 0 {
			for b := anchors[k-1] + 1; b < a; b++ {
				bd := encodeBFrame(frames[b], prevRecon, recon, qpB, QStep(qpB), cfg.SearchRange, cfg.HalfPel, cfg.Deblock)
				st.Frames = append(st.Frames, EncodedFrame{Type: FrameB, Display: b, Data: bd})
				rc.consume(len(bd) * 8)
			}
		}
		prevRecon = recon
	}
	return st, nil
}

// rateControl is a one-pass virtual-buffer controller: it tracks how far
// the produced bits run ahead of (or behind) the per-frame budget and
// nudges QP to steer the stream toward the target bitrate. Without a
// target it degenerates to the configured constant QP.
type rateControl struct {
	enabled   bool
	baseQP    int
	budget    float64 // bits per frame
	reservoir float64 // bits produced beyond budget so far

	// Adaptation happens over windows of several frames so the natural
	// I/P bit-cost bimodality does not whipsaw the controller. The first
	// few windows are short so the controller locks on quickly.
	winBits   float64
	winFrames int
	windows   int
}

// rcWindow is the adaptation window in frames.
const rcWindow = 8

func newRateControl(cfg EncoderConfig, fps int) *rateControl {
	rc := &rateControl{baseQP: cfg.QP}
	if cfg.TargetBitrate > 0 {
		rc.enabled = true
		if fps <= 0 {
			fps = 30
		}
		rc.budget = float64(cfg.TargetBitrate) / float64(fps)
		if cfg.QP == 0 {
			rc.baseQP = 35
		}
	}
	return rc
}

// frameQPs returns the (I, P, B) QPs for the next frame, applying the
// standard frame-type offsets around the controller's current level.
func (rc *rateControl) frameQPs() (qpI, qpP, qpB int) {
	qp := rc.baseQP
	if rc.enabled {
		// Reservoir trim on top of the windowed adaptation, bounded so it
		// cannot fight the window steps.
		adj := int(rc.reservoir / (8 * rc.budget))
		if adj > 6 {
			adj = 6
		}
		if adj < -6 {
			adj = -6
		}
		qp = clampQP(rc.baseQP + adj)
	}
	return clampQP(qp - 6), qp, clampQP(qp + 2)
}

// consume feeds the bits of one coded frame back into the controller.
// The base QP reacts multiplicatively (≈3 QP per doubling of the
// overshoot, since one QP step scales the quantizer by 2^(1/6)) so the
// controller locks on within a few frames; the reservoir term in
// frameQPs trims the residual steady-state error.
func (rc *rateControl) consume(bits int) {
	if !rc.enabled {
		return
	}
	rc.winBits += float64(bits)
	rc.winFrames++
	rc.reservoir += float64(bits) - rc.budget
	rc.reservoir *= 0.99 // slow leak
	window := rcWindow
	if rc.windows < 3 {
		window = 3 // warm-up: adapt quickly off the initial guess
	}
	if rc.winFrames < window {
		return
	}
	ratio := rc.winBits / (float64(rc.winFrames) * rc.budget)
	if ratio < 1.0/64 {
		ratio = 1.0 / 64
	}
	step := int(math.Round(3 * math.Log2(ratio)))
	if step > 5 {
		step = 5
	}
	if step < -5 {
		step = -5
	}
	rc.baseQP = clampQP(rc.baseQP + step)
	rc.winBits, rc.winFrames = 0, 0
	rc.windows++
}

func clampQP(qp int) int {
	if qp < 0 {
		return 0
	}
	if qp > 51 {
		return 51
	}
	return qp
}

// encodeIFrame codes a frame with intra DC-predicted 4×4 blocks and returns
// the bitstream plus the closed-loop reconstruction.
func encodeIFrame(f *video.YUV, qp int, qstep float64, deblock bool) ([]byte, *video.YUV) {
	w := NewBitWriter()
	w.WriteBits(uint64(qp), 6)
	if deblock {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	recon := video.NewYUV(f.W, f.H)
	encodePlaneIntra(w, f.Y, recon.Y, f.W, f.H, qstep)
	encodePlaneIntra(w, f.U, recon.U, f.ChromaW(), f.ChromaH(), qstep)
	encodePlaneIntra(w, f.V, recon.V, f.ChromaW(), f.ChromaH(), qstep)
	if deblock {
		deblockFrame(recon, qstep)
	}
	return w.Bytes(), recon
}

// Intra 4×4 prediction modes (a subset of H.264's nine): DC from the
// neighbor average, vertical extrapolation of the row above, horizontal
// extrapolation of the column to the left.
const (
	intraDC = 0
	intraV  = 1
	intraH  = 2
)

// intraPredict fills a 4×4 prediction block for the given mode from
// reconstructed neighbors. Modes needing unavailable neighbors fall back
// to DC, and the caller must not signal them in that case.
func intraPredict(rec []uint8, pw, x, y, mode int, pred *[16]int32) {
	switch {
	case mode == intraV && y > 0:
		row := rec[(y-1)*pw:]
		for bx := 0; bx < blockSize; bx++ {
			v := int32(row[x+bx])
			for by := 0; by < blockSize; by++ {
				pred[by*blockSize+bx] = v
			}
		}
	case mode == intraH && x > 0:
		for by := 0; by < blockSize; by++ {
			v := int32(rec[(y+by)*pw+x-1])
			for bx := 0; bx < blockSize; bx++ {
				pred[by*blockSize+bx] = v
			}
		}
	default:
		dc := intraDCPred(rec, pw, x, y)
		for i := range pred {
			pred[i] = dc
		}
	}
}

// encodePlaneIntra codes one plane in raster 4×4 blocks. For each block
// the encoder tries the available intra prediction modes, keeps the one
// with the lowest residual energy, and signals it with an Exp-Golomb code
// before the coefficients.
func encodePlaneIntra(w *BitWriter, src, rec []uint8, pw, ph int, qstep float64) {
	var res [16]float64
	var levels [16]int32
	var pred, bestPred [16]int32
	for y := 0; y < ph; y += blockSize {
		for x := 0; x < pw; x += blockSize {
			bestMode, bestCost := intraDC, int64(1)<<62
			for _, mode := range [...]int{intraDC, intraV, intraH} {
				if (mode == intraV && y == 0) || (mode == intraH && x == 0) {
					continue
				}
				intraPredict(rec, pw, x, y, mode, &pred)
				var cost int64
				for by := 0; by < blockSize; by++ {
					for bx := 0; bx < blockSize; bx++ {
						d := int64(src[(y+by)*pw+x+bx]) - int64(pred[by*blockSize+bx])
						cost += d * d
					}
				}
				if cost < bestCost {
					bestMode, bestCost = mode, cost
					bestPred = pred
				}
			}
			w.WriteUE(uint32(bestMode))
			for by := 0; by < blockSize; by++ {
				for bx := 0; bx < blockSize; bx++ {
					res[by*blockSize+bx] = float64(src[(y+by)*pw+x+bx]) - float64(bestPred[by*blockSize+bx])
				}
			}
			quantizeBlock(&res, qstep, roundIntra, &levels)
			writeLevels(w, &levels)
			dequantizeBlock(&levels, qstep, &res)
			for by := 0; by < blockSize; by++ {
				for bx := 0; bx < blockSize; bx++ {
					rec[(y+by)*pw+x+bx] = clampPix(float64(bestPred[by*blockSize+bx]) + res[by*blockSize+bx])
				}
			}
		}
	}
}

// intraDCPred predicts a 4×4 block's DC value from the reconstructed row
// above and column left of the block, falling back to 128 at the frame
// border (mirroring H.264's DC intra mode).
func intraDCPred(rec []uint8, pw, x, y int) int32 {
	var sum, cnt int32
	if y > 0 {
		row := rec[(y-1)*pw:]
		for i := 0; i < blockSize; i++ {
			sum += int32(row[x+i])
			cnt++
		}
	}
	if x > 0 {
		for i := 0; i < blockSize; i++ {
			sum += int32(rec[(y+i)*pw+x-1])
			cnt++
		}
	}
	if cnt == 0 {
		return 128
	}
	return (sum + cnt/2) / cnt
}

func clampPix(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// mbLevels holds the quantized levels of one macroblock: 16 luma blocks
// followed by 4+4 chroma blocks.
type mbLevels struct {
	luma   [16][16]int32
	chromU [4][16]int32
	chromV [4][16]int32
	nz     int
}

// quantizeMB computes residual levels for the macroblock at luma position
// (mx·16, my·16) given per-plane predictions (predY 16×16, predU/predV 8×8).
func quantizeMB(cur planes, mx, my int, predY, predU, predV []int32, qstep float64, out *mbLevels) {
	out.nz = 0
	var res [16]float64
	x0, y0 := mx*mbSize, my*mbSize
	bi := 0
	for by := 0; by < mbSize; by += blockSize {
		for bx := 0; bx < mbSize; bx += blockSize {
			for yy := 0; yy < blockSize; yy++ {
				for xx := 0; xx < blockSize; xx++ {
					sp := float64(cur.y[(y0+by+yy)*cur.lw+x0+bx+xx])
					pp := float64(predY[(by+yy)*mbSize+bx+xx])
					res[yy*blockSize+xx] = sp - pp
				}
			}
			out.nz += quantizeBlock(&res, qstep, roundInter, &out.luma[bi])
			bi++
		}
	}
	cx0, cy0 := mx*8, my*8
	for pi, plane := range [][]uint8{cur.u, cur.v} {
		pred := predU
		if pi == 1 {
			pred = predV
		}
		bi = 0
		for by := 0; by < 8; by += blockSize {
			for bx := 0; bx < 8; bx += blockSize {
				for yy := 0; yy < blockSize; yy++ {
					for xx := 0; xx < blockSize; xx++ {
						sp := float64(plane[(cy0+by+yy)*cur.cw+cx0+bx+xx])
						pp := float64(pred[(by+yy)*8+bx+xx])
						res[yy*blockSize+xx] = sp - pp
					}
				}
				if pi == 0 {
					out.nz += quantizeBlock(&res, qstep, roundInter, &out.chromU[bi])
				} else {
					out.nz += quantizeBlock(&res, qstep, roundInter, &out.chromV[bi])
				}
				bi++
			}
		}
	}
}

// writeMBLevels entropy-codes all 24 blocks of a macroblock.
func writeMBLevels(w *BitWriter, lv *mbLevels) {
	for i := range lv.luma {
		writeLevels(w, &lv.luma[i])
	}
	for i := range lv.chromU {
		writeLevels(w, &lv.chromU[i])
	}
	for i := range lv.chromV {
		writeLevels(w, &lv.chromV[i])
	}
}

// reconMB reconstructs a macroblock into rec from predictions + levels.
func reconMB(rec planes, mx, my int, predY, predU, predV []int32, lv *mbLevels, qstep float64) {
	var res [16]float64
	x0, y0 := mx*mbSize, my*mbSize
	bi := 0
	for by := 0; by < mbSize; by += blockSize {
		for bx := 0; bx < mbSize; bx += blockSize {
			dequantizeBlock(&lv.luma[bi], qstep, &res)
			bi++
			for yy := 0; yy < blockSize; yy++ {
				for xx := 0; xx < blockSize; xx++ {
					p := float64(predY[(by+yy)*mbSize+bx+xx])
					rec.y[(y0+by+yy)*rec.lw+x0+bx+xx] = clampPix(p + res[yy*blockSize+xx])
				}
			}
		}
	}
	cx0, cy0 := mx*8, my*8
	for pi, plane := range [][]uint8{rec.u, rec.v} {
		pred := predU
		blocks := &lv.chromU
		if pi == 1 {
			pred = predV
			blocks = &lv.chromV
		}
		bi = 0
		for by := 0; by < 8; by += blockSize {
			for bx := 0; bx < 8; bx += blockSize {
				dequantizeBlock(&blocks[bi], qstep, &res)
				bi++
				for yy := 0; yy < blockSize; yy++ {
					for xx := 0; xx < blockSize; xx++ {
						p := float64(pred[(by+yy)*8+bx+xx])
						plane[(cy0+by+yy)*rec.cw+cx0+bx+xx] = clampPix(p + res[yy*blockSize+xx])
					}
				}
			}
		}
	}
}

// predictMB fills per-plane prediction buffers for a macroblock from a
// reference frame displaced by m. In full-pel mode m is in luma samples
// and chroma vectors are halved; in half-pel mode m is in half-samples,
// luma is interpolated, and chroma rounds to the nearest full sample.
func predictMB(ref planes, mx, my int, m mv, hp bool, predY, predU, predV []int32) {
	if hp {
		fetchBlockHP(ref.y, ref.lw, ref.lh, mx*mbSize, my*mbSize, m, mbSize, mbSize, predY)
		cm := mv{roundDiv(m.x, 4), roundDiv(m.y, 4)}
		fetchBlock(ref.u, ref.cw, ref.ch, mx*8, my*8, cm, 8, 8, predU)
		fetchBlock(ref.v, ref.cw, ref.ch, mx*8, my*8, cm, 8, 8, predV)
		return
	}
	fetchBlock(ref.y, ref.lw, ref.lh, mx*mbSize, my*mbSize, m, mbSize, mbSize, predY)
	cm := mv{m.x / 2, m.y / 2}
	fetchBlock(ref.u, ref.cw, ref.ch, mx*8, my*8, cm, 8, 8, predU)
	fetchBlock(ref.v, ref.cw, ref.ch, mx*8, my*8, cm, 8, 8, predV)
}

// roundDiv divides rounding to nearest, away from zero on ties.
func roundDiv(v, d int) int {
	if v >= 0 {
		return (v + d/2) / d
	}
	return -((-v + d/2) / d)
}

// predictMBBi fills prediction buffers with the bi-directional average of
// two references.
func predictMBBi(fwd, bwd planes, mx, my int, m0, m1 mv, hp bool, predY, predU, predV []int32) {
	if hp {
		t0 := make([]int32, mbSize*mbSize)
		t1 := make([]int32, mbSize*mbSize)
		fetchBlockHP(fwd.y, fwd.lw, fwd.lh, mx*mbSize, my*mbSize, m0, mbSize, mbSize, t0)
		fetchBlockHP(bwd.y, bwd.lw, bwd.lh, mx*mbSize, my*mbSize, m1, mbSize, mbSize, t1)
		for i := range predY {
			predY[i] = (t0[i] + t1[i] + 1) / 2
		}
		c0 := mv{roundDiv(m0.x, 4), roundDiv(m0.y, 4)}
		c1 := mv{roundDiv(m1.x, 4), roundDiv(m1.y, 4)}
		fetchBlockAvg(fwd.u, c0, bwd.u, c1, fwd.cw, fwd.ch, mx*8, my*8, 8, 8, predU)
		fetchBlockAvg(fwd.v, c0, bwd.v, c1, fwd.cw, fwd.ch, mx*8, my*8, 8, 8, predV)
		return
	}
	fetchBlockAvg(fwd.y, m0, bwd.y, m1, fwd.lw, fwd.lh, mx*mbSize, my*mbSize, mbSize, mbSize, predY)
	c0, c1 := mv{m0.x / 2, m0.y / 2}, mv{m1.x / 2, m1.y / 2}
	fetchBlockAvg(fwd.u, c0, bwd.u, c1, fwd.cw, fwd.ch, mx*8, my*8, 8, 8, predU)
	fetchBlockAvg(fwd.v, c0, bwd.v, c1, fwd.cw, fwd.ch, mx*8, my*8, 8, 8, predV)
}

// Macroblock modes.
const (
	mbSkip  = 0 // zero motion, no residual (direct mode for B frames)
	mbCoded = 1 // explicit motion vector(s) + residual
)

// encodePFrame codes an inter frame against one reference.
func encodePFrame(f, ref *video.YUV, qp int, qstep float64, searchRange int, hp, deblock bool) ([]byte, *video.YUV) {
	w := NewBitWriter()
	w.WriteBits(uint64(qp), 6)
	if hp {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	if deblock {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	cur, refp := framePlanes(f), framePlanes(ref)
	recon := video.NewYUV(f.W, f.H)
	recp := framePlanes(recon)
	mbW, mbH := f.W/mbSize, f.H/mbSize
	predY := make([]int32, mbSize*mbSize)
	predU := make([]int32, 8*8)
	predV := make([]int32, 8*8)
	var lv mbLevels
	for my := 0; my < mbH; my++ {
		predMV := mv{0, 0}
		for mx := 0; mx < mbW; mx++ {
			fullPred := predMV
			if hp {
				fullPred = mv{roundDiv(predMV.x, 2), roundDiv(predMV.y, 2)}
			}
			best, _ := searchMV(cur.y, refp.y, f.W, f.H, mx*mbSize, my*mbSize, searchRange, fullPred)
			if hp {
				best = refineHalfPel(cur.y, refp.y, f.W, f.H, mx*mbSize, my*mbSize, best)
			}
			predictMB(refp, mx, my, best, hp, predY, predU, predV)
			quantizeMB(cur, mx, my, predY, predU, predV, qstep, &lv)
			if best == (mv{0, 0}) && lv.nz == 0 {
				w.WriteUE(mbSkip)
				reconMB(recp, mx, my, predY, predU, predV, &lv, qstep)
				predMV = mv{0, 0}
				continue
			}
			w.WriteUE(mbCoded)
			w.WriteSE(int32(best.x - predMV.x))
			w.WriteSE(int32(best.y - predMV.y))
			writeMBLevels(w, &lv)
			reconMB(recp, mx, my, predY, predU, predV, &lv, qstep)
			predMV = best
		}
	}
	if deblock {
		deblockFrame(recon, qstep)
	}
	return w.Bytes(), recon
}

// encodeBFrame codes a bi-predicted frame against forward and backward
// anchor references.
func encodeBFrame(f, fwd, bwd *video.YUV, qp int, qstep float64, searchRange int, hp, deblock bool) []byte {
	w := NewBitWriter()
	w.WriteBits(uint64(qp), 6)
	if hp {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	if deblock {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	cur, fp, bp := framePlanes(f), framePlanes(fwd), framePlanes(bwd)
	mbW, mbH := f.W/mbSize, f.H/mbSize
	predY := make([]int32, mbSize*mbSize)
	predU := make([]int32, 8*8)
	predV := make([]int32, 8*8)
	var lv mbLevels
	for my := 0; my < mbH; my++ {
		predMV0, predMV1 := mv{0, 0}, mv{0, 0}
		for mx := 0; mx < mbW; mx++ {
			fp0, fp1 := predMV0, predMV1
			if hp {
				fp0 = mv{roundDiv(predMV0.x, 2), roundDiv(predMV0.y, 2)}
				fp1 = mv{roundDiv(predMV1.x, 2), roundDiv(predMV1.y, 2)}
			}
			m0, _ := searchMV(cur.y, fp.y, f.W, f.H, mx*mbSize, my*mbSize, searchRange, fp0)
			m1, _ := searchMV(cur.y, bp.y, f.W, f.H, mx*mbSize, my*mbSize, searchRange, fp1)
			if hp {
				m0 = refineHalfPel(cur.y, fp.y, f.W, f.H, mx*mbSize, my*mbSize, m0)
				m1 = refineHalfPel(cur.y, bp.y, f.W, f.H, mx*mbSize, my*mbSize, m1)
			}
			predictMBBi(fp, bp, mx, my, m0, m1, hp, predY, predU, predV)
			quantizeMB(cur, mx, my, predY, predU, predV, qstep, &lv)
			if m0 == (mv{0, 0}) && m1 == (mv{0, 0}) && lv.nz == 0 {
				w.WriteUE(mbSkip)
				predMV0, predMV1 = mv{0, 0}, mv{0, 0}
				continue
			}
			w.WriteUE(mbCoded)
			w.WriteSE(int32(m0.x - predMV0.x))
			w.WriteSE(int32(m0.y - predMV0.y))
			w.WriteSE(int32(m1.x - predMV1.x))
			w.WriteSE(int32(m1.y - predMV1.y))
			writeMBLevels(w, &lv)
			predMV0, predMV1 = m0, m1
		}
	}
	return w.Bytes()
}
