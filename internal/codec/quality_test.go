package codec

import (
	"testing"
)

// TestNearLosslessAtQP0 checks the codec's fidelity floor: at QP 0 the
// quantizer step is 0.625, so reconstruction should be visually perfect.
func TestNearLosslessAtQP0(t *testing.T) {
	frames := testClipYUV(t, 48, 48, 2, 71)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 0})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	out, err := d.Decode(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if p := psnrY(frames[i], out[i]); p < 45 {
			t.Errorf("frame %d: QP 0 PSNR %.1f dB < 45", i, p)
		}
	}
}

// TestIFrameQualityBestInGOP verifies the per-frame-type QP offsets: I
// frames must be the highest-fidelity frames of their GOP (the property
// dcSR's I-frame enhancement builds on).
func TestIFrameQualityBestInGOP(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 2, 72)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 40, GOPSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	out, err := d.Decode(st)
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[int]FrameType)
	for _, f := range st.Frames {
		types[f.Display] = f.Type
	}
	var iSum, pSum float64
	var iN, pN int
	for i := range frames {
		p := psnrY(frames[i], out[i])
		if types[i] == FrameI {
			iSum += p
			iN++
		} else {
			pSum += p
			pN++
		}
	}
	if iN == 0 || pN == 0 {
		t.Fatal("degenerate stream")
	}
	if iSum/float64(iN) <= pSum/float64(pN) {
		t.Errorf("I frames (%.2f dB) not above P frames (%.2f dB); QP offsets broken",
			iSum/float64(iN), pSum/float64(pN))
	}
}

// TestBitsAccounting verifies DecodeStats.Bits matches payload sizes.
func TestBitsAccounting(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 1, 73)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 35})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if _, err := d.Decode(st); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, f := range st.Frames {
		want += len(f.Data) * 8
	}
	if d.Stats.Bits != want {
		t.Fatalf("Stats.Bits = %d, want %d", d.Stats.Bits, want)
	}
}

// TestFrameTypeString covers the Stringer.
func TestFrameTypeString(t *testing.T) {
	if FrameI.String() != "I" || FrameP.String() != "P" || FrameB.String() != "B" {
		t.Fatal("frame type names wrong")
	}
	if FrameType(9).String() == "" {
		t.Fatal("unknown type must still format")
	}
}
