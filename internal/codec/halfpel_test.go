package codec

import (
	"testing"

	"dcsr/internal/video"
)

func TestHalfPelRoundTrip(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 91)
	for _, bf := range []int{0, 2} {
		st, err := Encode(frames, nil, 30, EncoderConfig{QP: 24, BFrames: bf, HalfPel: true})
		if err != nil {
			t.Fatalf("BFrames=%d: %v", bf, err)
		}
		var d Decoder
		out, err := d.Decode(st)
		if err != nil {
			t.Fatalf("BFrames=%d: Decode: %v", bf, err)
		}
		for i := range frames {
			if p := psnrY(frames[i], out[i]); p < 28 {
				t.Errorf("BFrames=%d frame %d: PSNR %.1f too low", bf, i, p)
			}
		}
	}
}

// smoothPanClip renders a textured frame panned by 1.5 px/frame — content
// where half-pel compensation genuinely matters.
func smoothPanClip(t *testing.T, n int) []*video.YUV {
	t.Helper()
	base := video.Generate(video.GenConfig{W: 128, H: 48, Seed: 3, NumScenes: 1, TotalCues: 1, MinFrames: 1, MaxFrames: 1}).Frames()[0]
	var frames []*video.YUV
	for i := 0; i < n; i++ {
		f := video.NewRGB(64, 48)
		// Sample base shifted by 1.5·i pixels with bilinear interpolation
		// via the resize helper on a cropped window.
		off := float64(i) * 1.5
		x0 := int(off)
		frac := off - float64(x0)
		for y := 0; y < 48; y++ {
			for x := 0; x < 64; x++ {
				r0, g0, b0 := base.At(min(x+x0, 127), y)
				r1, g1, b1 := base.At(min(x+x0+1, 127), y)
				f.Set(x, y,
					uint8(float64(r0)*(1-frac)+float64(r1)*frac),
					uint8(float64(g0)*(1-frac)+float64(g1)*frac),
					uint8(float64(b0)*(1-frac)+float64(b1)*frac))
			}
		}
		frames = append(frames, f.ToYUV())
	}
	return frames
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHalfPelImprovesRateDistortionOnSubPixelMotion(t *testing.T) {
	frames := smoothPanClip(t, 12)
	full, err := Encode(frames, nil, 30, EncoderConfig{QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Encode(frames, nil, 30, EncoderConfig{QP: 30, HalfPel: true})
	if err != nil {
		t.Fatal(err)
	}
	var df, dh Decoder
	outF, err := df.Decode(full)
	if err != nil {
		t.Fatal(err)
	}
	outH, err := dh.Decode(half)
	if err != nil {
		t.Fatal(err)
	}
	var pf, ph float64
	for i := range frames {
		pf += psnrY(frames[i], outF[i])
		ph += psnrY(frames[i], outH[i])
	}
	pf /= float64(len(frames))
	ph /= float64(len(frames))
	t.Logf("sub-pixel pan: full-pel %.2f dB / %d B, half-pel %.2f dB / %d B",
		pf, full.Bytes(), ph, half.Bytes())
	// Rate-distortion must improve: fewer bytes at no quality loss, or
	// better quality at no byte increase (bilinear interpolation smooths,
	// so either axis may absorb the gain).
	if half.Bytes() >= full.Bytes() && ph <= pf {
		t.Errorf("half-pel gave no RD benefit: %d B / %.2f dB vs %d B / %.2f dB",
			half.Bytes(), ph, full.Bytes(), pf)
	}
}

func TestHalfPelEnhancementPropagates(t *testing.T) {
	frames := smoothPanClip(t, 10)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 40, HalfPel: true})
	if err != nil {
		t.Fatal(err)
	}
	brighten := EnhancerFunc(func(_ int, f *video.YUV) *video.YUV {
		g := f.Clone()
		for i := range g.Y {
			if g.Y[i] < 215 {
				g.Y[i] += 40
			}
		}
		return g
	})
	for _, mode := range []Propagation{PropagateReplace, PropagateDelta} {
		d := Decoder{Enhancer: brighten, Mode: mode}
		out, err := d.Decode(st)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		plain := Decoder{}
		base, err := plain.Decode(st)
		if err != nil {
			t.Fatal(err)
		}
		brighter := 0
		for i := range out {
			var se, sb int64
			for j := range out[i].Y {
				se += int64(out[i].Y[j])
				sb += int64(base[i].Y[j])
			}
			if se > sb {
				brighter++
			}
		}
		if brighter < len(out)*9/10 {
			t.Errorf("mode %d: enhancement reached only %d/%d frames", mode, brighter, len(out))
		}
	}
}

func TestFloorDiv2(t *testing.T) {
	cases := map[int]int{4: 2, 5: 2, 0: 0, -1: -1, -2: -1, -3: -2, -4: -2, 3: 1}
	for in, want := range cases {
		if got := floorDiv2(in); got != want {
			t.Errorf("floorDiv2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFetchBlockHPIntegerEqualsFullPel(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 1, 5)
	src := frames[0].Y
	a := make([]int32, 16)
	b := make([]int32, 16)
	for _, m := range []mv{{0, 0}, {2, -4}, {-6, 8}} {
		fetchBlockHP(src, 32, 32, 8, 8, mv{m.x * 2, m.y * 2}, 4, 4, a)
		fetchBlock(src, 32, 32, 8, 8, m, 4, 4, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mv %v: HP integer position differs from full-pel at %d", m, i)
			}
		}
	}
}
