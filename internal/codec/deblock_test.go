package codec

import (
	"testing"
)

// blockiness measures the mean absolute luma step across 4×4 block
// boundaries minus the mean step at non-boundary columns — positive values
// mean visible blocking structure.
func blockiness(y []uint8, w, h int) float64 {
	var boundary, inner float64
	var nb, ni int
	for yy := 0; yy < h; yy++ {
		for x := 1; x < w; x++ {
			d := float64(y[yy*w+x]) - float64(y[yy*w+x-1])
			if d < 0 {
				d = -d
			}
			if x%blockSize == 0 {
				boundary += d
				nb++
			} else {
				inner += d
				ni++
			}
		}
	}
	return boundary/float64(nb) - inner/float64(ni)
}

func TestDeblockRoundTrip(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 2, 55)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 45, Deblock: true, BFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	out, err := d.Decode(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames) {
		t.Fatalf("decoded %d frames", len(out))
	}
	for i := range frames {
		if p := psnrY(frames[i], out[i]); p < 22 {
			t.Errorf("frame %d: PSNR %.1f collapsed with deblocking", i, p)
		}
	}
}

func TestDeblockReducesBlockiness(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 1, 56)
	var on, off float64
	for _, deblock := range []bool{false, true} {
		st, err := Encode(frames, nil, 30, EncoderConfig{QP: 48, Deblock: deblock})
		if err != nil {
			t.Fatal(err)
		}
		var d Decoder
		out, err := d.Decode(st)
		if err != nil {
			t.Fatal(err)
		}
		var b float64
		for _, f := range out {
			b += blockiness(f.Y, f.W, f.H)
		}
		b /= float64(len(out))
		if deblock {
			on = b
		} else {
			off = b
		}
	}
	t.Logf("blockiness: filter off %.3f, on %.3f", off, on)
	if on >= off {
		t.Errorf("deblocking did not reduce boundary structure: %.3f -> %.3f", off, on)
	}
}

func TestDeblockPreservesQualityRoughly(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 1, 57)
	var pOn, pOff float64
	for _, deblock := range []bool{false, true} {
		st, err := Encode(frames, nil, 30, EncoderConfig{QP: 48, Deblock: deblock})
		if err != nil {
			t.Fatal(err)
		}
		var d Decoder
		out, err := d.Decode(st)
		if err != nil {
			t.Fatal(err)
		}
		var p float64
		for i := range frames {
			p += psnrY(frames[i], out[i])
		}
		p /= float64(len(frames))
		if deblock {
			pOn = p
		} else {
			pOff = p
		}
	}
	t.Logf("PSNR: filter off %.2f dB, on %.2f dB", pOff, pOn)
	if pOn < pOff-1.0 {
		t.Errorf("deblocking cost %.2f dB; the filter is too aggressive", pOff-pOn)
	}
}

func TestDeblockThresholdBounds(t *testing.T) {
	if deblockThreshold(0.1) != 2 {
		t.Error("low-QP threshold should clamp to 2")
	}
	if deblockThreshold(1000) != 24 {
		t.Error("high-QP threshold should clamp to 24")
	}
}
