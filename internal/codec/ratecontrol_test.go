package codec

import (
	"math"
	"testing"
)

func TestRateControlHitsTarget(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 4, 81) // multi-scene, enough frames to settle
	fps := 30
	duration := float64(len(frames)) / float64(fps)
	// Establish the achievable bitrate envelope at constant QP, then aim
	// for two targets comfortably inside it.
	loQP, err := Encode(frames, nil, fps, EncoderConfig{QP: 45, GOPSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	hiQP, err := Encode(frames, nil, fps, EncoderConfig{QP: 15, GOPSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	loBps := float64(loQP.Bytes()*8) / duration
	hiBps := float64(hiQP.Bytes()*8) / duration
	for _, frac := range []float64{0.3, 0.7} {
		target := int(loBps + frac*(hiBps-loBps))
		st, err := Encode(frames, nil, fps, EncoderConfig{TargetBitrate: target, GOPSize: 12})
		if err != nil {
			t.Fatal(err)
		}
		gotBps := float64(st.Bytes()*8) / duration
		ratio := gotBps / float64(target)
		t.Logf("target %d bps -> %.0f bps (%.2fx)", target, gotBps, ratio)
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("target %d: achieved %.0f bps, off by %.2fx", target, gotBps, ratio)
		}
	}
}

func TestRateControlHigherTargetHigherQuality(t *testing.T) {
	frames := testClipYUV(t, 64, 48, 3, 83)
	fps := 30
	var prevBytes int
	var prevPSNR float64
	for i, target := range []int{50_000, 200_000} {
		st, err := Encode(frames, nil, fps, EncoderConfig{TargetBitrate: target})
		if err != nil {
			t.Fatal(err)
		}
		var d Decoder
		out, err := d.Decode(st)
		if err != nil {
			t.Fatal(err)
		}
		var psnr float64
		for j := range frames {
			psnr += psnrY(frames[j], out[j])
		}
		psnr /= float64(len(frames))
		if i == 1 {
			if st.Bytes() <= prevBytes {
				t.Errorf("4x target did not increase bytes: %d vs %d", st.Bytes(), prevBytes)
			}
			if psnr <= prevPSNR {
				t.Errorf("4x target did not increase PSNR: %.2f vs %.2f", psnr, prevPSNR)
			}
		}
		prevBytes, prevPSNR = st.Bytes(), psnr
	}
}

func TestRateControlDisabledIsConstantQP(t *testing.T) {
	frames := testClipYUV(t, 48, 32, 2, 85)
	a, err := Encode(frames, nil, 30, EncoderConfig{QP: 38})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(frames, nil, 30, EncoderConfig{QP: 38, TargetBitrate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes() != b.Bytes() {
		t.Fatal("zero TargetBitrate changed constant-QP behaviour")
	}
}

func TestRateControllerUnits(t *testing.T) {
	rc := newRateControl(EncoderConfig{TargetBitrate: 300_000}, 30)
	if math.Abs(rc.budget-10_000) > 1e-9 {
		t.Fatalf("budget %.1f bits/frame, want 10000", rc.budget)
	}
	// Sustained overshoot must raise QP; undershoot must lower it.
	i0, p0, b0 := rc.frameQPs()
	for k := 0; k < 20; k++ {
		rc.consume(40_000)
	}
	_, pHigh, _ := rc.frameQPs()
	if pHigh <= p0 {
		t.Fatalf("overshoot did not raise QP: %d -> %d", p0, pHigh)
	}
	rc2 := newRateControl(EncoderConfig{TargetBitrate: 300_000}, 30)
	for k := 0; k < 20; k++ {
		rc2.consume(1_000)
	}
	_, pLow, _ := rc2.frameQPs()
	if pLow >= p0 {
		t.Fatalf("undershoot did not lower QP: %d -> %d", p0, pLow)
	}
	if i0 != clampQP(p0-6) || b0 != clampQP(p0+2) {
		t.Fatal("frame-type offsets broken")
	}
}
