package codec

import (
	"math"
	"testing"
	"time"

	"dcsr/internal/obs"
	"dcsr/internal/video"
)

// TestDecoderInjectedClock pins the enhance-latency histogram to the
// decoder's injected clock: with a fake clock advancing a fixed step per
// reading, every observation is exactly one step, so the histogram's
// count and sum are fully determined by Stats.Enhanced.
func TestDecoderInjectedClock(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 2, 41)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 30, GOPSize: 6, BFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	const step = 10 * time.Millisecond
	base := time.Unix(0, 0)
	ticks := 0
	o := obs.New()
	d := Decoder{
		Enhancer: EnhancerFunc(func(_ int, f *video.YUV) *video.YUV { return f.Clone() }),
		Obs:      o,
		Now: func() time.Time {
			ticks++
			return base.Add(time.Duration(ticks) * step)
		},
	}
	if _, err := d.Decode(st); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Enhanced == 0 {
		t.Fatal("no I frames enhanced; fixture clip produced no anchors")
	}
	// The clock is read exactly twice per timed enhancement.
	if ticks != 2*d.Stats.Enhanced {
		t.Fatalf("clock read %d times, want %d", ticks, 2*d.Stats.Enhanced)
	}
	hs := o.Metrics.Snapshot().Histograms["codec_enhance_seconds"]
	if hs.Count != int64(d.Stats.Enhanced) {
		t.Fatalf("histogram count = %d, want %d", hs.Count, d.Stats.Enhanced)
	}
	want := step.Seconds() * float64(d.Stats.Enhanced)
	if math.Abs(hs.Sum-want) > 1e-9 {
		t.Fatalf("histogram sum = %g, want %g", hs.Sum, want)
	}
}

// TestDecoderDefaultClock checks the nil-Now default still works.
func TestDecoderDefaultClock(t *testing.T) {
	frames := testClipYUV(t, 32, 32, 1, 43)
	st, err := Encode(frames, nil, 30, EncoderConfig{QP: 30, GOPSize: 8, BFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	d := Decoder{
		Enhancer: EnhancerFunc(func(_ int, f *video.YUV) *video.YUV { return f.Clone() }),
		Obs:      o,
	}
	if _, err := d.Decode(st); err != nil {
		t.Fatal(err)
	}
	hs := o.Metrics.Snapshot().Histograms["codec_enhance_seconds"]
	if hs.Count != int64(d.Stats.Enhanced) {
		t.Fatalf("histogram count = %d, want %d", hs.Count, d.Stats.Enhanced)
	}
	if hs.Sum < 0 {
		t.Fatalf("histogram sum = %g, want >= 0", hs.Sum)
	}
}
