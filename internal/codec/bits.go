// Package codec implements the simplified H.264-style hybrid video codec
// the dcSR reproduction is built on: I/P/B frame types in a group-of-
// pictures structure, 16×16 macroblocks with full-pel motion compensation,
// a 4×4 DCT with QP-driven quantization (the CRF-style rate/quality knob),
// zigzag + Exp-Golomb entropy coding, and a decoder with a decoded-picture
// buffer exposing the I-frame enhancement hook that client-side dcSR
// patches into FFMPEG in the paper (Fig 6).
//
// The codec is not bit-compatible with H.264 — it is a faithful structural
// stand-in: P and B frames reference I frames through motion-compensated
// prediction, so enhancing the I frame in the DPB propagates quality to the
// rest of the GOP exactly as the paper's insight requires.
package codec

import (
	"errors"
	"fmt"
)

// BitWriter writes a most-significant-bit-first bitstream.
type BitWriter struct {
	buf  []byte
	cur  byte
	nbit uint
}

// NewBitWriter returns an empty BitWriter.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUE appends v in unsigned Exp-Golomb code.
func (w *BitWriter) WriteUE(v uint32) {
	x := uint64(v) + 1
	n := uint(0)
	for t := x; t > 1; t >>= 1 {
		n++
	}
	w.WriteBits(0, n) // n leading zeros
	w.WriteBits(x, n+1)
}

// WriteSE appends v in signed Exp-Golomb code (0, 1, −1, 2, −2, …).
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	w.WriteUE(u)
}

// Bytes flushes any partial byte (zero-padded) and returns the stream.
func (w *BitWriter) Bytes() []byte {
	out := append([]byte(nil), w.buf...)
	if w.nbit > 0 {
		out = append(out, w.cur<<(8-w.nbit))
	}
	return out
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// ErrBitstream is returned when a bitstream is truncated or malformed.
var ErrBitstream = errors.New("codec: malformed bitstream")

// BitReader reads a most-significant-bit-first bitstream.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrBitstream
	}
	b := (r.buf[r.pos>>3] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits consumes n bits and returns them as an unsigned integer.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUE consumes an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	n := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("%w: runaway exp-golomb prefix", ErrBitstream)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return uint32((1<<n)-1) + uint32(rest), nil
}

// ReadSE consumes a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}

// BitsRead returns the number of bits consumed so far.
func (r *BitReader) BitsRead() int { return r.pos }
