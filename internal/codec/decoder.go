package codec

import (
	"fmt"
	"time"

	"dcsr/internal/obs"
	"dcsr/internal/video"
)

// FrameEnhancer is the client-side dcSR hook: after the decoder
// reconstructs an I frame into the decoded picture buffer it pauses,
// hands the frame to the enhancer, and stores the result back in the DPB
// before any P or B frame references it (paper Fig 6, steps 2–5). The
// returned frame must have the same dimensions as the input so the
// remaining motion-compensated decoding stays valid; color conversion
// (YUV→RGB→YUV) happens inside the enhancer.
type FrameEnhancer interface {
	EnhanceIFrame(display int, f *video.YUV) *video.YUV
}

// EnhancerFunc adapts a function to the FrameEnhancer interface.
type EnhancerFunc func(display int, f *video.YUV) *video.YUV

// EnhanceIFrame calls the function.
func (fn EnhancerFunc) EnhanceIFrame(display int, f *video.YUV) *video.YUV {
	return fn(display, f)
}

// Precision identifies the numeric path an enhancer used for a frame.
type Precision int

// Enhancer numeric paths.
const (
	// PrecisionFloat32 is the full-precision kernel path (the default
	// assumed for plain FrameEnhancers).
	PrecisionFloat32 Precision = iota
	// PrecisionInt8 is the quantized kernel path; frames enhanced on it
	// are counted separately (DecodeStats.EnhancedInt8,
	// codec_enhance_int8_window_seconds) so an operator can see which
	// path is actually serving.
	PrecisionInt8
)

// PrecisionEnhancer is an optional FrameEnhancer extension for hooks
// that choose between numeric paths per frame (e.g. int8 for clusters
// that passed the server's calibration quality gate, float32 for the
// rest). A Decoder whose Enhancer implements it uses the extended
// method and attributes each enhancement to the reported precision.
type PrecisionEnhancer interface {
	FrameEnhancer
	EnhanceIFramePrecision(display int, f *video.YUV) (*video.YUV, Precision)
}

// PrecisionEnhancerFunc adapts a function to PrecisionEnhancer.
type PrecisionEnhancerFunc func(display int, f *video.YUV) (*video.YUV, Precision)

// EnhanceIFrame calls the function, dropping the precision.
func (fn PrecisionEnhancerFunc) EnhanceIFrame(display int, f *video.YUV) *video.YUV {
	out, _ := fn(display, f)
	return out
}

// EnhanceIFramePrecision calls the function.
func (fn PrecisionEnhancerFunc) EnhanceIFramePrecision(display int, f *video.YUV) (*video.YUV, Precision) {
	return fn(display, f)
}

// Propagation selects how I-frame enhancement reaches dependent frames.
type Propagation int

// Propagation modes.
const (
	// PropagateReplace is the paper-literal mechanism (Fig 6): the
	// enhanced I frame replaces the original in the DPB and the remaining
	// frames decode against it. Coded P/B residuals were produced against
	// the *unenhanced* reconstruction, so they partially double-correct —
	// the "quality drift" the paper mentions.
	PropagateReplace Propagation = iota
	// PropagateDelta is the drift-free variant (NEMO-style quality
	// transfer): P and B frames decode against the plain reference chain
	// exactly as encoded, and the enhancement delta (enhanced − plain)
	// rides along motion compensation into every dependent frame. This is
	// the default used by the dcSR player; the ablation benchmark
	// compares the two modes.
	PropagateDelta
)

// refPair tracks the two parallel reconstructions of a reference frame:
// the bitstream-consistent plain decode and the enhancement-carrying
// version shown to the user.
type refPair struct {
	plain *video.YUV
	enh   *video.YUV

	// cached (enh − plain) planes for delta motion compensation
	dy, du, dv []int16
}

func newRefPair(plain, enh *video.YUV) *refPair {
	return &refPair{plain: plain, enh: enh}
}

// hasDelta reports whether the enhanced version differs from the plain one.
func (rp *refPair) hasDelta() bool { return rp.enh != rp.plain }

// deltas lazily computes the enhancement difference planes.
func (rp *refPair) deltas() (dy, du, dv []int16) {
	if rp.dy == nil {
		rp.dy = diffPlane(rp.enh.Y, rp.plain.Y)
		rp.du = diffPlane(rp.enh.U, rp.plain.U)
		rp.dv = diffPlane(rp.enh.V, rp.plain.V)
	}
	return rp.dy, rp.du, rp.dv
}

func diffPlane(a, b []uint8) []int16 {
	d := make([]int16, len(a))
	for i := range a {
		d[i] = int16(a[i]) - int16(b[i])
	}
	return d
}

// fetchDelta motion-compensates a bw×bh block of an int16 delta plane.
func fetchDelta(src []int16, pw, ph, x, y int, m mv, bw, bh int, dst []int32) {
	for by := 0; by < bh; by++ {
		sy := clampi(y+m.y+by, 0, ph-1)
		row := src[sy*pw:]
		for bx := 0; bx < bw; bx++ {
			sx := clampi(x+m.x+bx, 0, pw-1)
			dst[by*bw+bx] = int32(row[sx])
		}
	}
}

// fetchDeltaHP is fetchDelta with half-pel bilinear interpolation.
func fetchDeltaHP(src []int16, pw, ph, x, y int, m mv, bw, bh int, dst []int32) {
	ix, iy := floorDiv2(m.x), floorDiv2(m.y)
	fx, fy := m.x&1, m.y&1
	if fx == 0 && fy == 0 {
		fetchDelta(src, pw, ph, x, y, mv{ix, iy}, bw, bh, dst)
		return
	}
	at := func(px, py int) int32 {
		return int32(src[clampi(py, 0, ph-1)*pw+clampi(px, 0, pw-1)])
	}
	for by := 0; by < bh; by++ {
		sy := y + iy + by
		for bx := 0; bx < bw; bx++ {
			sx := x + ix + bx
			dst[by*bw+bx] = (at(sx, sy) + at(sx+fx, sy) + at(sx, sy+fy) + at(sx+fx, sy+fy) + 2) / 4
		}
	}
}

// DecodeStats records what a decode pass did; the device model consumes
// these counts to estimate latency and power.
type DecodeStats struct {
	IFrames, PFrames, BFrames int
	Enhanced                  int // I frames actually enhanced (hook may decline by returning its input)
	EnhancedInt8              int // subset of Enhanced served on the int8 path (PrecisionEnhancer hooks)
	Bits                      int
}

// Frames returns the total decoded frame count.
func (s DecodeStats) Frames() int { return s.IFrames + s.PFrames + s.BFrames }

// Decoder decodes a Stream. If Enhancer is non-nil it is applied to every
// I frame in the DPB before dependent frames are decoded, so the
// enhancement propagates to P and B frames — the core client-side dcSR
// mechanism. Mode selects between the paper-literal DPB replacement and
// drift-free delta propagation. The zero value is a ready-to-use decoder
// without enhancement.
type Decoder struct {
	Enhancer FrameEnhancer
	Mode     Propagation
	Stats    DecodeStats
	// Obs, when set, records codec_frames_decoded_total,
	// codec_iframes_enhanced_total and the I-frame-enhance latency as
	// both the lifetime histogram codec_enhance_seconds and its
	// rolling-window twin codec_enhance_window_seconds; enhancements a
	// PrecisionEnhancer attributes to the int8 path additionally feed
	// codec_enhance_int8_window_seconds.
	Obs *obs.Obs
	// Now supplies the clock for the enhance-latency histogram; nil
	// means time.Now. Tests inject a fake clock to make the recorded
	// latencies deterministic.
	Now func() time.Time
}

// Decode reconstructs all frames of s in display order.
func (d *Decoder) Decode(s *Stream) ([]*video.YUV, error) {
	if s.W%mbSize != 0 || s.H%mbSize != 0 {
		return nil, fmt.Errorf("codec: stream dimensions %dx%d invalid", s.W, s.H)
	}
	// Resolve metric handles once per decode; all are nil (no-op) when
	// Obs is unset, so the per-frame path stays branch-cheap.
	enhHist := d.Obs.Histogram("codec_enhance_seconds")
	enhWHist := d.Obs.WindowedHistogram("codec_enhance_window_seconds")
	enhI8WHist := d.Obs.WindowedHistogram("codec_enhance_int8_window_seconds")
	enhCtr := d.Obs.Counter("codec_iframes_enhanced_total")
	frameCtr := d.Obs.Counter("codec_frames_decoded_total")
	// One type assertion per decode, not per frame.
	pe, _ := d.Enhancer.(PrecisionEnhancer)
	now := d.Now
	if now == nil {
		now = time.Now
	}
	out := make([]*video.YUV, frameSpan(s))
	var prevAnchor, lastAnchor *refPair
	for i := range s.Frames {
		ef := &s.Frames[i]
		r := NewBitReader(ef.Data)
		qpBits, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		qstep := QStep(int(qpBits))
		var display *video.YUV
		switch ef.Type {
		case FrameI:
			f, err := decodeIFrame(r, s.W, s.H, qstep)
			if err != nil {
				return nil, fmt.Errorf("codec: I frame %d: %w", ef.Display, err)
			}
			d.Stats.IFrames++
			enh := f
			if d.Enhancer != nil {
				var t0 time.Time
				if enhHist != nil {
					t0 = now()
				}
				prec := PrecisionFloat32
				if pe != nil {
					enh, prec = pe.EnhanceIFramePrecision(ef.Display, f)
				} else {
					enh = d.Enhancer.EnhanceIFrame(ef.Display, f)
				}
				if enh.W != f.W || enh.H != f.H {
					return nil, fmt.Errorf("codec: enhancer changed frame dimensions %dx%d -> %dx%d", f.W, f.H, enh.W, enh.H)
				}
				// A hook that returns its input unchanged declined (no
				// model for the segment, or it is degraded); only real
				// enhancements count and are timed.
				if enh != f {
					if enhHist != nil {
						elapsed := now().Sub(t0).Seconds()
						enhHist.Observe(elapsed)
						enhWHist.Observe(elapsed)
						if prec == PrecisionInt8 {
							enhI8WHist.Observe(elapsed)
						}
					}
					enhCtr.Inc()
					d.Stats.Enhanced++
					if prec == PrecisionInt8 {
						d.Stats.EnhancedInt8++
					}
				}
			}
			pair := newRefPair(f, enh)
			if d.Mode == PropagateReplace {
				// Paper Fig 6: the enhanced frame replaces the decoded one
				// in the DPB; dependent frames reference it directly.
				pair = newRefPair(enh, enh)
			}
			display = enh
			prevAnchor, lastAnchor = lastAnchor, pair
		case FrameP:
			if lastAnchor == nil {
				return nil, fmt.Errorf("codec: P frame %d before any anchor", ef.Display)
			}
			pair, err := decodePFrame(r, s.W, s.H, lastAnchor, qstep)
			if err != nil {
				return nil, fmt.Errorf("codec: P frame %d: %w", ef.Display, err)
			}
			d.Stats.PFrames++
			display = pair.enh
			prevAnchor, lastAnchor = lastAnchor, pair
		case FrameB:
			if prevAnchor == nil || lastAnchor == nil {
				return nil, fmt.Errorf("codec: B frame %d lacks two anchors", ef.Display)
			}
			f, err := decodeBFrame(r, s.W, s.H, prevAnchor, lastAnchor, qstep)
			if err != nil {
				return nil, fmt.Errorf("codec: B frame %d: %w", ef.Display, err)
			}
			d.Stats.BFrames++
			display = f
		default:
			return nil, fmt.Errorf("codec: unknown frame type %d", ef.Type)
		}
		d.Stats.Bits += len(ef.Data) * 8
		if ef.Display < 0 || ef.Display >= len(out) {
			return nil, fmt.Errorf("codec: display index %d out of range", ef.Display)
		}
		out[ef.Display] = display
	}
	for i, f := range out {
		if f == nil {
			return nil, fmt.Errorf("codec: display slot %d never decoded", i)
		}
	}
	frameCtr.Add(int64(len(s.Frames)))
	return out, nil
}

// frameSpan returns 1 + the maximum display index.
func frameSpan(s *Stream) int {
	maxDisplay := -1
	for _, f := range s.Frames {
		if f.Display > maxDisplay {
			maxDisplay = f.Display
		}
	}
	return maxDisplay + 1
}

func decodeIFrame(r *BitReader, w, h int, qstep float64) (*video.YUV, error) {
	dbBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	f := video.NewYUV(w, h)
	if err := decodePlaneIntra(r, f.Y, w, h, qstep); err != nil {
		return nil, err
	}
	if err := decodePlaneIntra(r, f.U, f.ChromaW(), f.ChromaH(), qstep); err != nil {
		return nil, err
	}
	if err := decodePlaneIntra(r, f.V, f.ChromaW(), f.ChromaH(), qstep); err != nil {
		return nil, err
	}
	if dbBit == 1 {
		deblockFrame(f, qstep)
	}
	return f, nil
}

func decodePlaneIntra(r *BitReader, rec []uint8, pw, ph int, qstep float64) error {
	var res [16]float64
	var levels [16]int32
	var pred [16]int32
	for y := 0; y < ph; y += blockSize {
		for x := 0; x < pw; x += blockSize {
			mode, err := r.ReadUE()
			if err != nil {
				return err
			}
			if mode > intraH {
				return fmt.Errorf("%w: bad intra mode %d", ErrBitstream, mode)
			}
			if err := readLevels(r, &levels); err != nil {
				return err
			}
			intraPredict(rec, pw, x, y, int(mode), &pred)
			dequantizeBlock(&levels, qstep, &res)
			for by := 0; by < blockSize; by++ {
				for bx := 0; bx < blockSize; bx++ {
					rec[(y+by)*pw+x+bx] = clampPix(float64(pred[by*blockSize+bx]) + res[by*blockSize+bx])
				}
			}
		}
	}
	return nil
}

// readMBLevels decodes all 24 coefficient blocks of a macroblock.
func readMBLevels(r *BitReader, lv *mbLevels) error {
	for i := range lv.luma {
		if err := readLevels(r, &lv.luma[i]); err != nil {
			return err
		}
	}
	for i := range lv.chromU {
		if err := readLevels(r, &lv.chromU[i]); err != nil {
			return err
		}
	}
	for i := range lv.chromV {
		if err := readLevels(r, &lv.chromV[i]); err != nil {
			return err
		}
	}
	return nil
}

// applyMBDelta adds the motion-compensated enhancement delta of ref to the
// plain macroblock reconstruction, writing the result into enh. The
// transfer is gated per 4×4 block: where the bitstream coded a residual,
// the encoder already corrected the block against its own (unenhanced)
// reference, so overwriting it with the enhancement delta would fight the
// coded correction — those blocks keep the plain reconstruction. Blocks
// with no coded residual (the vast majority at CRF-51-like rates) inherit
// the reference enhancement through motion compensation. Pass a second
// reference to average two deltas (bi-prediction for B frames).
func applyMBDelta(plain, enh planes, mx, my int, lv *mbLevels, hp bool, ref *refPair, m mv, ref2 *refPair, m2 mv) {
	buf := make([]int32, mbSize*mbSize)
	buf2 := make([]int32, mbSize*mbSize)
	addPlane := func(dst, src []uint8, pw, ph int, d1, d2 []int16, x0, y0, bw, bh int, mm, mm2 mv, bi, hpPlane bool, coded func(bx, by int) bool) {
		if hpPlane {
			fetchDeltaHP(d1, pw, ph, x0, y0, mm, bw, bh, buf[:bw*bh])
		} else {
			fetchDelta(d1, pw, ph, x0, y0, mm, bw, bh, buf[:bw*bh])
		}
		if bi {
			if hpPlane {
				fetchDeltaHP(d2, pw, ph, x0, y0, mm2, bw, bh, buf2[:bw*bh])
			} else {
				fetchDelta(d2, pw, ph, x0, y0, mm2, bw, bh, buf2[:bw*bh])
			}
		}
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				pos := (y0+by)*pw + x0 + bx
				if coded(bx, by) {
					dst[pos] = src[pos]
					continue
				}
				dv := buf[by*bw+bx]
				if bi {
					dv = (dv + buf2[by*bw+bx] + 1) / 2
				}
				dst[pos] = clamp8(int32(src[pos]) + dv)
			}
		}
	}
	bi := ref2 != nil
	var d2y, d2u, d2v []int16
	dy, du, dv := ref.deltas()
	if bi {
		d2y, d2u, d2v = ref2.deltas()
	}
	blockCoded := func(blocks *[16]int32) bool {
		for _, v := range blocks {
			if v != 0 {
				return true
			}
		}
		return false
	}
	lumaCoded := func(bx, by int) bool {
		return blockCoded(&lv.luma[(by/blockSize)*4+bx/blockSize])
	}
	uCoded := func(bx, by int) bool {
		return blockCoded(&lv.chromU[(by/blockSize)*2+bx/blockSize])
	}
	vCoded := func(bx, by int) bool {
		return blockCoded(&lv.chromV[(by/blockSize)*2+bx/blockSize])
	}
	cm := mv{m.x / 2, m.y / 2}
	cm2 := mv{m2.x / 2, m2.y / 2}
	if hp {
		cm = mv{roundDiv(m.x, 4), roundDiv(m.y, 4)}
		cm2 = mv{roundDiv(m2.x, 4), roundDiv(m2.y, 4)}
	}
	addPlane(enh.y, plain.y, plain.lw, plain.lh, dy, d2y, mx*mbSize, my*mbSize, mbSize, mbSize, m, m2, bi, hp, lumaCoded)
	addPlane(enh.u, plain.u, plain.cw, plain.ch, du, d2u, mx*8, my*8, 8, 8, cm, cm2, bi, false, uCoded)
	addPlane(enh.v, plain.v, plain.cw, plain.ch, dv, d2v, mx*8, my*8, 8, 8, cm, cm2, bi, false, vCoded)
}

func clamp8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func decodePFrame(r *BitReader, w, h int, ref *refPair, qstep float64) (*refPair, error) {
	hpBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	hp := hpBit == 1
	dbBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	f := video.NewYUV(w, h)
	refp, recp := framePlanes(ref.plain), framePlanes(f)
	carry := ref.hasDelta()
	var enhFrame *video.YUV
	var enhp planes
	if carry {
		enhFrame = video.NewYUV(w, h)
		enhp = framePlanes(enhFrame)
	}
	mbW, mbH := w/mbSize, h/mbSize
	predY := make([]int32, mbSize*mbSize)
	predU := make([]int32, 8*8)
	predV := make([]int32, 8*8)
	var lv mbLevels
	var zero mbLevels
	for my := 0; my < mbH; my++ {
		predMV := mv{0, 0}
		for mx := 0; mx < mbW; mx++ {
			mode, err := r.ReadUE()
			if err != nil {
				return nil, err
			}
			var m mv
			cur := &zero
			switch mode {
			case mbSkip:
				predictMB(refp, mx, my, mv{0, 0}, hp, predY, predU, predV)
				reconMB(recp, mx, my, predY, predU, predV, &zero, qstep)
				predMV = mv{0, 0}
			case mbCoded:
				dx, err := r.ReadSE()
				if err != nil {
					return nil, err
				}
				dy, err := r.ReadSE()
				if err != nil {
					return nil, err
				}
				m = mv{predMV.x + int(dx), predMV.y + int(dy)}
				if err := readMBLevels(r, &lv); err != nil {
					return nil, err
				}
				predictMB(refp, mx, my, m, hp, predY, predU, predV)
				reconMB(recp, mx, my, predY, predU, predV, &lv, qstep)
				predMV = m
				cur = &lv
			default:
				return nil, fmt.Errorf("%w: bad P macroblock mode %d", ErrBitstream, mode)
			}
			if carry {
				applyMBDelta(recp, enhp, mx, my, cur, hp, ref, m, nil, mv{})
			}
		}
	}
	if dbBit == 1 {
		deblockFrame(f, qstep)
		if carry {
			deblockFrame(enhFrame, qstep)
		}
	}
	if !carry {
		return newRefPair(f, f), nil
	}
	return newRefPair(f, enhFrame), nil
}

func decodeBFrame(r *BitReader, w, h int, fwd, bwd *refPair, qstep float64) (*video.YUV, error) {
	hpBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	hp := hpBit == 1
	dbBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	f := video.NewYUV(w, h)
	fp, bp, recp := framePlanes(fwd.plain), framePlanes(bwd.plain), framePlanes(f)
	carry := fwd.hasDelta() || bwd.hasDelta()
	var enhFrame *video.YUV
	var enhp planes
	if carry {
		enhFrame = video.NewYUV(w, h)
		enhp = framePlanes(enhFrame)
		// Ensure both refs expose deltas (zero deltas if plain == enh).
		fwd.deltas()
		bwd.deltas()
	}
	mbW, mbH := w/mbSize, h/mbSize
	predY := make([]int32, mbSize*mbSize)
	predU := make([]int32, 8*8)
	predV := make([]int32, 8*8)
	var lv mbLevels
	var zero mbLevels
	for my := 0; my < mbH; my++ {
		predMV0, predMV1 := mv{0, 0}, mv{0, 0}
		for mx := 0; mx < mbW; mx++ {
			mode, err := r.ReadUE()
			if err != nil {
				return nil, err
			}
			var m0, m1 mv
			cur := &zero
			switch mode {
			case mbSkip:
				predictMBBi(fp, bp, mx, my, mv{0, 0}, mv{0, 0}, hp, predY, predU, predV)
				reconMB(recp, mx, my, predY, predU, predV, &zero, qstep)
				predMV0, predMV1 = mv{0, 0}, mv{0, 0}
			case mbCoded:
				var d [4]int32
				for i := range d {
					v, err := r.ReadSE()
					if err != nil {
						return nil, err
					}
					d[i] = v
				}
				m0 = mv{predMV0.x + int(d[0]), predMV0.y + int(d[1])}
				m1 = mv{predMV1.x + int(d[2]), predMV1.y + int(d[3])}
				if err := readMBLevels(r, &lv); err != nil {
					return nil, err
				}
				predictMBBi(fp, bp, mx, my, m0, m1, hp, predY, predU, predV)
				reconMB(recp, mx, my, predY, predU, predV, &lv, qstep)
				predMV0, predMV1 = m0, m1
				cur = &lv
			default:
				return nil, fmt.Errorf("%w: bad B macroblock mode %d", ErrBitstream, mode)
			}
			if carry {
				applyMBDelta(recp, enhp, mx, my, cur, hp, fwd, m0, bwd, m1)
			}
		}
	}
	if dbBit == 1 {
		deblockFrame(f, qstep)
		if carry {
			deblockFrame(enhFrame, qstep)
		}
	}
	if carry {
		return enhFrame, nil
	}
	return f, nil
}
