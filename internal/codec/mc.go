package codec

import "dcsr/internal/video"

// Motion-compensation helpers. All motion is full-pel; reference reads are
// edge-clamped, which matches the unrestricted-motion-vector behaviour of
// modern codecs without needing padded reference planes.

// mv is a full-pel motion vector in luma units.
type mv struct{ x, y int }

// clampi clamps v into [lo, hi].
func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Half-pel support: when a frame is coded with half-pel motion, vectors
// are expressed in half-sample units and prediction samples at fractional
// positions are bilinearly interpolated (H.264 uses a 6-tap filter for
// luma; bilinear is the documented simplification here). Chroma vectors
// round to the nearest full chroma sample.

// floorDiv2 divides by 2 rounding toward −∞ (half-pel integer part).
func floorDiv2(v int) int {
	if v < 0 {
		return (v - 1) / 2
	}
	return v / 2
}

// fetchBlockHP copies a bw×bh block displaced by the half-pel vector m
// from src into dst, bilinearly interpolating fractional positions.
func fetchBlockHP(src []uint8, pw, ph, x, y int, m mv, bw, bh int, dst []int32) {
	ix, iy := floorDiv2(m.x), floorDiv2(m.y)
	fx, fy := m.x&1, m.y&1
	if fx == 0 && fy == 0 {
		fetchBlock(src, pw, ph, x, y, mv{ix, iy}, bw, bh, dst)
		return
	}
	at := func(px, py int) int32 {
		return int32(src[clampi(py, 0, ph-1)*pw+clampi(px, 0, pw-1)])
	}
	for by := 0; by < bh; by++ {
		sy := y + iy + by
		for bx := 0; bx < bw; bx++ {
			sx := x + ix + bx
			a := at(sx, sy)
			b := at(sx+fx, sy)
			c := at(sx, sy+fy)
			d := at(sx+fx, sy+fy)
			dst[by*bw+bx] = (a + b + c + d + 2) / 4
		}
	}
}

// sadBlockHP is sadBlock at half-pel precision.
func sadBlockHP(cur, ref []uint8, pw, ph, x, y int, m mv, bw, bh int) int {
	tmp := make([]int32, bw*bh)
	fetchBlockHP(ref, pw, ph, x, y, m, bw, bh, tmp)
	var sad int
	for by := 0; by < bh; by++ {
		row := cur[(y+by)*pw:]
		for bx := 0; bx < bw; bx++ {
			d := int(row[x+bx]) - int(tmp[by*bw+bx])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// refineHalfPel upgrades a full-pel winner to half-pel by trying the 8
// surrounding half-sample offsets; returns the vector in half-pel units.
func refineHalfPel(cur, ref []uint8, pw, ph, x, y int, full mv) mv {
	best := mv{full.x * 2, full.y * 2}
	bestSAD := sadBlock(cur, ref, pw, ph, x, y, full, mbSize, mbSize)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cand := mv{full.x*2 + dx, full.y*2 + dy}
			if sad := sadBlockHP(cur, ref, pw, ph, x, y, cand, mbSize, mbSize); sad < bestSAD {
				best, bestSAD = cand, sad
			}
		}
	}
	return best
}

// fetchBlock copies a bw×bh block at (x+m.x, y+m.y) from plane src
// (dimensions pw×ph) into dst, clamping reads at the plane edges.
func fetchBlock(src []uint8, pw, ph, x, y int, m mv, bw, bh int, dst []int32) {
	for by := 0; by < bh; by++ {
		sy := clampi(y+m.y+by, 0, ph-1)
		row := src[sy*pw:]
		for bx := 0; bx < bw; bx++ {
			sx := clampi(x+m.x+bx, 0, pw-1)
			dst[by*bw+bx] = int32(row[sx])
		}
	}
}

// fetchBlockAvg fetches the rounded average of two motion-compensated
// blocks (bi-prediction for B frames).
func fetchBlockAvg(src0 []uint8, m0 mv, src1 []uint8, m1 mv, pw, ph, x, y, bw, bh int, dst []int32) {
	tmp0 := make([]int32, bw*bh)
	tmp1 := make([]int32, bw*bh)
	fetchBlock(src0, pw, ph, x, y, m0, bw, bh, tmp0)
	fetchBlock(src1, pw, ph, x, y, m1, bw, bh, tmp1)
	for i := range dst {
		dst[i] = (tmp0[i] + tmp1[i] + 1) / 2
	}
}

// sadBlock computes the sum of absolute differences between the cur block
// at (x, y) and the reference block displaced by m.
func sadBlock(cur, ref []uint8, pw, ph, x, y int, m mv, bw, bh int) int {
	var sad int
	for by := 0; by < bh; by++ {
		cy := y + by
		curRow := cur[cy*pw:]
		sy := clampi(cy+m.y, 0, ph-1)
		refRow := ref[sy*pw:]
		for bx := 0; bx < bw; bx++ {
			cx := x + bx
			sx := clampi(cx+m.x, 0, pw-1)
			d := int(curRow[cx]) - int(refRow[sx])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// searchMV finds the motion vector minimizing SAD for the 16×16 luma block
// at (x, y) using a two-stage search: a coarse step-4 scan over ±rng
// followed by a local step-1 refinement. pred biases tie-breaking toward
// the predicted vector so MV fields stay smooth (cheaper to entropy-code).
func searchMV(cur, ref []uint8, pw, ph, x, y, rng int, pred mv) (best mv, bestSAD int) {
	best = mv{0, 0}
	bestSAD = sadBlock(cur, ref, pw, ph, x, y, best, mbSize, mbSize)
	if psad := sadBlock(cur, ref, pw, ph, x, y, pred, mbSize, mbSize); psad < bestSAD {
		best, bestSAD = pred, psad
	}
	// Coarse scan.
	for dy := -rng; dy <= rng; dy += 4 {
		for dx := -rng; dx <= rng; dx += 4 {
			cand := mv{dx, dy}
			if cand == best {
				continue
			}
			if sad := sadBlock(cur, ref, pw, ph, x, y, cand, mbSize, mbSize); sad < bestSAD {
				best, bestSAD = cand, sad
			}
		}
	}
	// Local refinement around the coarse winner.
	for {
		improved := false
		for _, d := range [...]mv{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}} {
			cand := mv{best.x + d.x, best.y + d.y}
			if cand.x < -rng || cand.x > rng || cand.y < -rng || cand.y > rng {
				continue
			}
			if sad := sadBlock(cur, ref, pw, ph, x, y, cand, mbSize, mbSize); sad < bestSAD {
				best, bestSAD = cand, sad
				improved = true
			}
		}
		if !improved {
			return best, bestSAD
		}
	}
}

// planes bundles the three planes of a frame with their dimensions, giving
// uniform per-plane access to coding loops.
type planes struct {
	y, u, v []uint8
	lw, lh  int // luma dimensions
	cw, ch  int // chroma dimensions
}

func framePlanes(f *video.YUV) planes {
	return planes{y: f.Y, u: f.U, v: f.V, lw: f.W, lh: f.H, cw: f.ChromaW(), ch: f.ChromaH()}
}
