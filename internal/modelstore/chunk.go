package modelstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"

	"dcsr/internal/obs"
)

// Chunk-level content addressing. Whole-payload dedupe only collapses
// byte-identical models; the model-stream representation (shared backbone
// + per-cluster deltas, see internal/nn's dcW5 format) wants something
// finer — the backbone's bytes stored once however many videos reference
// it, and deltas that share runs of residuals deduping partially.
// PutChunked splits a payload into content-defined chunks (a gear-hash
// rolling boundary, so a local edit reshuffles at most the chunks it
// touches) and stores each chunk as an ordinary content-addressed object,
// plus one small "recipe" object listing the chunk digests:
//
//	magic 'dcC1' (4 bytes)
//	payload digest (32 bytes) — SHA-256 of the assembled payload
//	chunk count (uint32)
//	chunk digests (32 bytes each)
//
// The recipe's own digest is the handle callers keep; GetChunked follows
// it, reassembles, and verifies the embedded payload digest end-to-end.

const (
	chunkMin  = 512
	chunkMax  = 8192
	chunkMask = 0x7FF // boundary when the rolling hash's low 11 bits clear: ~2 KiB average
)

var chunkMagic = [4]byte{'d', 'c', 'C', '1'}

// gearTable drives the rolling hash. It is filled deterministically from
// a splitmix64 sequence so chunk boundaries — and therefore every chunk
// digest — are stable across processes and platforms.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	x := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// SplitChunks cuts data into content-defined chunks between chunkMin and
// chunkMax bytes (the final chunk may be shorter). The slices alias data.
func SplitChunks(data []byte) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := nextBoundary(data)
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// nextBoundary returns the length of the first chunk of data.
func nextBoundary(data []byte) int {
	if len(data) <= chunkMin {
		return len(data)
	}
	limit := chunkMax
	if len(data) < limit {
		limit = len(data)
	}
	var h uint64
	for i := 0; i < limit; i++ {
		h = h<<1 + gearTable[data[i]]
		if i >= chunkMin && h&chunkMask == 0 {
			return i + 1
		}
	}
	return limit
}

// storeObs returns the Obs registry attached to a known backend, so the
// chunk helpers can count dedupe hits; nil (no instrumentation) otherwise.
func storeObs(s Store) *obs.Obs {
	switch b := s.(type) {
	case *Mem:
		return b.Obs
	case *Disk:
		return b.Obs
	}
	return nil
}

// PutChunked stores data as content-defined chunks plus a recipe object
// and returns the recipe's digest — the handle to pass to GetChunked.
// Chunks already present in the store (the backbone referenced by a
// second video, a run of residuals two deltas share) are deduped and
// counted as modelstore_chunk_hits_total; fresh chunks count toward
// modelstore_chunk_puts_total.
func PutChunked(s Store, data []byte) (Digest, error) {
	o := storeObs(s)
	chunks := SplitChunks(data)
	var recipe bytes.Buffer
	//lint:allow errcheck bytes.Buffer.Write is documented to always return a nil error
	recipe.Write(chunkMagic[:])
	payload := DigestOf(data)
	//lint:allow errcheck bytes.Buffer.Write is documented to always return a nil error
	recipe.Write(payload[:])
	if err := binary.Write(&recipe, binary.LittleEndian, uint32(len(chunks))); err != nil {
		return Digest{}, err
	}
	for _, c := range chunks {
		if s.Has(DigestOf(c)) {
			o.Counter("modelstore_chunk_hits_total").Inc()
		} else {
			o.Counter("modelstore_chunk_puts_total").Inc()
		}
		d, err := s.Put(c)
		if err != nil {
			return Digest{}, err
		}
		//lint:allow errcheck bytes.Buffer.Write is documented to always return a nil error
		recipe.Write(d[:])
	}
	return s.Put(recipe.Bytes())
}

// GetChunked follows a recipe digest, reassembles the payload from its
// chunks, and verifies the embedded end-to-end digest. A missing chunk
// surfaces as the store's os.ErrNotExist; a reassembly that does not hash
// to the recorded payload digest is rejected.
func GetChunked(s Store, recipe Digest) ([]byte, error) {
	rb, err := s.Get(recipe)
	if err != nil {
		return nil, err
	}
	const header = 4 + 32 + 4
	if len(rb) < header || [4]byte(rb[:4]) != chunkMagic {
		return nil, fmt.Errorf("modelstore: object %s is not a chunk recipe", recipe)
	}
	var payload Digest
	copy(payload[:], rb[4:36])
	count := binary.LittleEndian.Uint32(rb[36:40])
	if len(rb) != header+int(count)*32 {
		return nil, fmt.Errorf("modelstore: recipe %s malformed (%d chunks, %d bytes)", recipe, count, len(rb))
	}
	var out []byte
	for i := 0; i < int(count); i++ {
		var cd Digest
		copy(cd[:], rb[header+32*i:])
		chunk, err := s.Get(cd)
		if err != nil {
			return nil, fmt.Errorf("modelstore: recipe %s chunk %d: %w", recipe, i, err)
		}
		out = append(out, chunk...)
	}
	if DigestOf(out) != payload {
		return nil, fmt.Errorf("modelstore: recipe %s reassembly digest mismatch: %w", recipe, os.ErrNotExist)
	}
	return out, nil
}
