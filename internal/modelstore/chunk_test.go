package modelstore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dcsr/internal/obs"
)

func randPayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(256))
	}
	return out
}

func TestSplitChunksDeterministicAndBounded(t *testing.T) {
	data := randPayload(1, 50_000)
	a, b := SplitChunks(data), SplitChunks(data)
	if len(a) != len(b) {
		t.Fatalf("two splits disagree: %d vs %d chunks", len(a), len(b))
	}
	var total int
	for i, c := range a {
		if !bytes.Equal(c, b[i]) {
			t.Fatalf("chunk %d differs between splits", i)
		}
		if len(c) > chunkMax {
			t.Fatalf("chunk %d is %d bytes, above max %d", i, len(c), chunkMax)
		}
		if i < len(a)-1 && len(c) < chunkMin {
			t.Fatalf("non-final chunk %d is %d bytes, below min %d", i, len(c), chunkMin)
		}
		total += len(c)
	}
	if total != len(data) {
		t.Fatalf("chunks cover %d of %d bytes", total, len(data))
	}
	if len(a) < 3 {
		t.Fatalf("50 KB split into only %d chunks; boundaries not firing", len(a))
	}
	if got := SplitChunks(nil); got != nil {
		t.Fatalf("empty payload split into %d chunks", len(got))
	}
}

func TestPutGetChunkedRoundTrip(t *testing.T) {
	for name, s := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			payload := randPayload(2, 30_000)
			recipe, err := PutChunked(s, payload)
			if err != nil {
				t.Fatal(err)
			}
			got, err := GetChunked(s, recipe)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("chunked round trip corrupted the payload")
			}
			// Idempotent: a second put returns the same recipe digest.
			again, err := PutChunked(s, payload)
			if err != nil {
				t.Fatal(err)
			}
			if again != recipe {
				t.Fatalf("re-put recipe %s, want %s", again, recipe)
			}
			if _, err := GetChunked(s, DigestOf([]byte("absent"))); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("missing recipe error = %v, want os.ErrNotExist", err)
			}
		})
	}
}

// TestChunkedDedup pins the point of chunking: a payload that shares a
// long prefix with an already-stored one reuses its chunks, so stored
// bytes grow by far less than the second payload's size and the shared
// chunks count as hits.
func TestChunkedDedup(t *testing.T) {
	s := NewMem()
	o := obs.New()
	s.Obs = o
	base := randPayload(3, 40_000)
	if _, err := PutChunked(s, base); err != nil {
		t.Fatal(err)
	}
	before := s.SizeBytes()
	// Same prefix, different tail: only tail-side chunks are new.
	variant := append(append([]byte{}, base[:35_000]...), randPayload(4, 5_000)...)
	if _, err := PutChunked(s, variant); err != nil {
		t.Fatal(err)
	}
	added := s.SizeBytes() - before
	if added >= int64(len(variant))/2 {
		t.Fatalf("variant added %d bytes of %d; chunk dedupe not effective", added, len(variant))
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["modelstore_chunk_hits_total"] == 0 {
		t.Fatal("no chunk dedupe hits counted")
	}
	if snap.Counters["modelstore_chunk_puts_total"] == 0 {
		t.Fatal("no chunk puts counted")
	}
	got, err := GetChunked(s, mustPut(t, s, variant))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, variant) {
		t.Fatal("variant reassembly corrupted")
	}
}

func mustPut(t *testing.T, s Store, data []byte) Digest {
	t.Helper()
	d, err := PutChunked(s, data)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskCorruptObjectRecovered: a truncated or overwritten object file
// must read as a miss (os.ErrNotExist), be deleted so the store heals,
// and accept a clean re-Put.
func TestDiskCorruptObjectRecovered(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := randPayload(5, 4096)
	d, err := disk.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(disk.Dir(), d.String()+".bin")
	if err := os.WriteFile(path, payload[:1000], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disk.Get(d); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt object Get error = %v, want os.ErrNotExist", err)
	}
	if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Fatal("corrupt object file was not deleted")
	}
	if disk.Has(d) {
		t.Fatal("Has still true after corrupt object dropped")
	}
	if _, err := disk.Put(payload); err != nil {
		t.Fatal(err)
	}
	got, err := disk.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("re-put payload does not round-trip")
	}
}

// TestBoundedCacheChunked: chunk accounting charges shared chunks once
// and refunds them only when the last referencing label leaves.
func TestBoundedCacheChunked(t *testing.T) {
	c := NewBoundedCache(-1)
	c.EnableChunked()
	base := randPayload(6, 20_000)
	variant := append(append([]byte{}, base[:18_000]...), randPayload(7, 2_000)...)
	c.Put(1, base)
	afterBase := c.Bytes()
	if afterBase != int64(len(base)) {
		t.Fatalf("single payload accounts %d bytes, want %d", afterBase, len(base))
	}
	c.Put(2, variant)
	shared := c.Bytes() - afterBase
	if shared >= int64(len(variant))/2 {
		t.Fatalf("variant charged %d of %d bytes; shared chunks double-counted", shared, len(variant))
	}
	if got, ok := c.Get(2); !ok || !bytes.Equal(got, variant) {
		t.Fatal("chunked cache does not return the exact payload")
	}
	c.Remove(2)
	if c.Bytes() != afterBase {
		t.Fatalf("removing the variant left %d bytes, want %d", c.Bytes(), afterBase)
	}
	c.Remove(1)
	if c.Bytes() != 0 {
		t.Fatalf("empty chunked cache accounts %d bytes", c.Bytes())
	}
}

// TestBoundedCacheChunkedEviction: under a budget, evicting a label that
// shares chunks with a survivor frees only the unshared bytes.
func TestBoundedCacheChunkedEviction(t *testing.T) {
	base := randPayload(8, 20_000)
	variant := append(append([]byte{}, base[:18_000]...), randPayload(9, 2_000)...)
	other := randPayload(10, 20_000)
	c := NewBoundedCache(int64(len(base) + len(variant) + len(other))) // roomy enough for all three whole
	c.EnableChunked()
	c.Put(1, base)
	c.Put(2, variant)
	withBoth := c.Bytes()
	evicted := c.Put(3, other)
	if len(evicted) != 0 {
		t.Fatalf("unexpected evictions %v within budget", evicted)
	}
	// Shrink scenario: a budget 500 bytes short of everything forces the
	// LRU label 1 out — and because label 2 still references the shared
	// prefix chunks, the eviction frees far less than len(base).
	c2 := NewBoundedCache(withBoth + int64(len(other)) - 500)
	c2.EnableChunked()
	c2.Put(1, base)
	c2.Put(2, variant)
	ev := c2.Put(3, other)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want exactly LRU label 1", ev)
	}
	freed := withBoth + int64(len(other)) - c2.Bytes()
	if freed <= 0 || freed >= int64(len(base)) {
		t.Fatalf("evicting label 1 freed %d bytes; shared chunks were not retained for label 2", freed)
	}
	if _, ok := c2.Get(2); !ok {
		t.Fatal("label 2 lost its payload after sibling eviction")
	}
}
