package modelstore

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"dcsr/internal/obs"
)

// storeBackends builds one of each Store implementation for shared
// contract tests.
func storeBackends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "disk": disk}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			payload := []byte("micro model weights")
			d, err := s.Put(payload)
			if err != nil {
				t.Fatal(err)
			}
			if want := DigestOf(payload); d != want {
				t.Fatalf("Put digest %s, want %s", d, want)
			}
			if !s.Has(d) {
				t.Fatal("Has = false after Put")
			}
			got, err := s.Get(d)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("Get = %q, want %q", got, payload)
			}
			if n := s.SizeBytes(); n != int64(len(payload)) {
				t.Fatalf("SizeBytes = %d, want %d", n, len(payload))
			}
		})
	}
}

func TestStoreDedupe(t *testing.T) {
	// Two identical trained cluster models must be stored once: same
	// digest, single object, single payload's worth of bytes.
	for name, s := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			payload := []byte("identical cluster weights")
			d1, err := s.Put(payload)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := s.Put(append([]byte(nil), payload...))
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 {
				t.Fatalf("identical payloads got digests %s and %s", d1, d2)
			}
			if got := len(s.Digests()); got != 1 {
				t.Fatalf("store holds %d objects, want 1 (dedupe)", got)
			}
			if n := s.SizeBytes(); n != int64(len(payload)) {
				t.Fatalf("SizeBytes = %d after dedupe, want %d", n, len(payload))
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			_, err := s.Get(DigestOf([]byte("never stored")))
			if !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("Get missing = %v, want os.ErrNotExist", err)
			}
		})
	}
}

func TestDiskStoreReopens(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s1.Put([]byte("persisted weights"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(d) {
		t.Fatal("reopened store lost the object")
	}
	got, err := s2.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted weights" {
		t.Fatalf("reopened Get = %q", got)
	}
	if ds := s2.Digests(); len(ds) != 1 || ds[0] != d {
		t.Fatalf("reopened Digests = %v", ds)
	}
}

func TestParseDigest(t *testing.T) {
	d := DigestOf([]byte("x"))
	back, err := ParseDigest(d.String())
	if err != nil || back != d {
		t.Fatalf("ParseDigest round trip: %v %s", err, back)
	}
	if _, err := ParseDigest("zz"); err == nil {
		t.Fatal("ParseDigest accepted malformed input")
	}
}

func TestStoreMetrics(t *testing.T) {
	o := obs.New()
	m := NewMem()
	m.Obs = o
	payload := []byte("weights")
	if _, err := m.Put(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(payload); err != nil { // dedupe hit
		t.Fatal(err)
	}
	d := DigestOf(payload)
	if _, err := m.Get(d); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["modelstore_puts_total"]; got != 1 {
		t.Errorf("modelstore_puts_total = %d, want 1", got)
	}
	if got := snap.Counters["modelstore_hits_total"]; got != 2 {
		t.Errorf("modelstore_hits_total = %d, want 2 (dedupe + get)", got)
	}
	if got := snap.Gauges["modelstore_bytes"]; got != int64(len(payload)) {
		t.Errorf("modelstore_bytes = %d, want %d", got, len(payload))
	}
}
