package modelstore

import (
	"container/list"
	"sort"

	"dcsr/internal/obs"
)

// BoundedCache is the client-side micro-model cache of Algorithm 1 with
// a byte budget: labels map to real model payloads, and inserting past
// the budget evicts least-recently-used entries. An evicted label is
// simply absent, so the streaming session's next reference re-fetches
// it lazily — exactly the degraded-then-retry semantics of the fault
// model, driven by capacity instead of failure.
//
// Budget semantics:
//
//   - budget < 0: unbounded — every successful download stays cached
//     (the paper's Algorithm 1, today's default behaviour);
//   - budget == 0: caching disabled — nothing is ever stored (the
//     §3.2.2 no-cache ablation);
//   - budget > 0: entries are evicted LRU-first so the resident bytes
//     never exceed the budget. A single payload larger than the whole
//     budget is refused (nothing useful could be evicted to fit it);
//     the refusal is not an eviction.
//
// A BoundedCache is not safe for concurrent use; it lives inside a
// single-goroutine streaming session (see stream.Session).
type BoundedCache struct {
	budget int64
	bytes  int64
	ll     *list.List            // front = most recently used
	byKey  map[int]*list.Element // label → element; value is *cacheEntry

	// Evictions counts entries removed to make room (mirrors the
	// modelstore_evictions_total counter for callers without a registry).
	Evictions int

	// OnEvict, when set, observes each evicted label (e.g. to drop a
	// deserialized model kept alongside the bytes).
	OnEvict func(label int)

	// Obs receives modelstore_puts_total / modelstore_hits_total /
	// modelstore_evictions_total and the modelstore_bytes gauge (plus
	// modelstore_chunk_puts_total / modelstore_chunk_hits_total in
	// chunked mode); nil disables instrumentation.
	Obs *obs.Obs

	// Chunked-accounting state (see EnableChunked).
	chunked   bool
	chunkRefs map[Digest]int
	chunkLen  map[Digest]int64
}

// NewBoundedCache returns a cache with the given byte budget (see the
// type doc for the <0 / 0 / >0 semantics).
func NewBoundedCache(budget int64) *BoundedCache {
	return &BoundedCache{
		budget: budget,
		ll:     list.New(),
		byKey:  make(map[int]*list.Element),
	}
}

type cacheEntry struct {
	label  int
	data   []byte
	chunks []Digest // content-defined chunk digests; nil unless chunked
}

// EnableChunked switches the cache from whole-payload to chunk-level
// accounting: payloads are split with SplitChunks, shared chunks are
// counted once however many labels reference them, and evicting a label
// frees only the chunks whose reference count drops to zero. This is the
// accounting the model stream wants — a session caching one backbone
// plus k deltas pays for the backbone's bytes once, not k times. Must be
// called before the first Put.
func (c *BoundedCache) EnableChunked() {
	if c.ll.Len() != 0 {
		panic("modelstore: EnableChunked on a non-empty cache")
	}
	c.chunked = true
	c.chunkRefs = make(map[Digest]int)
	c.chunkLen = make(map[Digest]int64)
}

// Budget returns the configured byte budget.
func (c *BoundedCache) Budget() int64 { return c.budget }

// Bytes returns the resident payload bytes.
func (c *BoundedCache) Bytes() int64 { return c.bytes }

// Len returns the number of cached labels.
func (c *BoundedCache) Len() int { return len(c.byKey) }

// Contains reports whether label is cached without touching recency.
func (c *BoundedCache) Contains(label int) bool {
	_, ok := c.byKey[label]
	return ok
}

// Get returns the cached payload for label and marks it most recently
// used. The second result is false on miss.
func (c *BoundedCache) Get(label int) ([]byte, bool) {
	el, ok := c.byKey[label]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.Obs.Counter("modelstore_hits_total").Inc()
	return el.Value.(*cacheEntry).data, true
}

// Put inserts (or refreshes) label's payload, evicting LRU entries as
// needed, and returns the labels evicted to make room. A payload larger
// than the whole budget (or any payload under a zero budget) is refused:
// nothing is stored and nothing is evicted.
func (c *BoundedCache) Put(label int, data []byte) []int {
	if c.chunked {
		return c.putChunked(label, data)
	}
	size := int64(len(data))
	if c.budget == 0 || (c.budget > 0 && size > c.budget) {
		return nil
	}
	if el, ok := c.byKey[label]; ok {
		// Refresh: replace the payload and update accounting.
		ent := el.Value.(*cacheEntry)
		c.bytes += size - int64(len(ent.data))
		c.Obs.Gauge("modelstore_bytes").Add(size - int64(len(ent.data)))
		ent.data = data
		c.ll.MoveToFront(el)
	} else {
		c.byKey[label] = c.ll.PushFront(&cacheEntry{label: label, data: data})
		c.bytes += size
		c.Obs.Counter("modelstore_puts_total").Inc()
		c.Obs.Gauge("modelstore_bytes").Add(size)
	}
	var evicted []int
	for c.budget > 0 && c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil || el.Value.(*cacheEntry).label == label {
			break // never evict the entry just inserted
		}
		evicted = append(evicted, c.evict(el))
	}
	return evicted
}

// putChunked is Put under chunk accounting: the payload's footprint is
// the total size of its distinct chunks not already held for another
// label, so a delta sharing most of its runs with a cached sibling is
// nearly free and the budget meters real resident bytes.
func (c *BoundedCache) putChunked(label int, data []byte) []int {
	chunks := SplitChunks(data)
	digests := make([]Digest, len(chunks))
	var uniq int64
	seen := make(map[Digest]bool, len(chunks))
	for i, ch := range chunks {
		d := DigestOf(ch)
		digests[i] = d
		if !seen[d] {
			seen[d] = true
			uniq += int64(len(ch))
		}
	}
	if c.budget == 0 || (c.budget > 0 && uniq > c.budget) {
		return nil
	}
	if el, ok := c.byKey[label]; ok {
		ent := el.Value.(*cacheEntry)
		c.releaseChunks(ent.chunks)
		ent.data, ent.chunks = data, digests
		c.retainChunks(digests, chunks)
		c.ll.MoveToFront(el)
	} else {
		c.byKey[label] = c.ll.PushFront(&cacheEntry{label: label, data: data, chunks: digests})
		c.retainChunks(digests, chunks)
		c.Obs.Counter("modelstore_puts_total").Inc()
	}
	var evicted []int
	for c.budget > 0 && c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil || el.Value.(*cacheEntry).label == label {
			break // never evict the entry just inserted
		}
		evicted = append(evicted, c.evict(el))
	}
	return evicted
}

// retainChunks bumps reference counts, charging only first references.
func (c *BoundedCache) retainChunks(digests []Digest, chunks [][]byte) {
	for i, d := range digests {
		if c.chunkRefs[d] == 0 {
			c.chunkLen[d] = int64(len(chunks[i]))
			c.bytes += int64(len(chunks[i]))
			c.Obs.Counter("modelstore_chunk_puts_total").Inc()
			c.Obs.Gauge("modelstore_bytes").Add(int64(len(chunks[i])))
		} else {
			c.Obs.Counter("modelstore_chunk_hits_total").Inc()
		}
		c.chunkRefs[d]++
	}
}

// releaseChunks drops reference counts, refunding chunks nobody holds.
func (c *BoundedCache) releaseChunks(digests []Digest) {
	for _, d := range digests {
		c.chunkRefs[d]--
		if c.chunkRefs[d] == 0 {
			c.bytes -= c.chunkLen[d]
			c.Obs.Gauge("modelstore_bytes").Add(-c.chunkLen[d])
			delete(c.chunkRefs, d)
			delete(c.chunkLen, d)
		}
	}
}

// Remove drops label from the cache (not counted as an eviction).
func (c *BoundedCache) Remove(label int) {
	el, ok := c.byKey[label]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.byKey, ent.label)
	if c.chunked {
		c.releaseChunks(ent.chunks)
	} else {
		c.bytes -= int64(len(ent.data))
		c.Obs.Gauge("modelstore_bytes").Add(-int64(len(ent.data)))
	}
}

// evict removes the given element, fires OnEvict, and returns its label.
func (c *BoundedCache) evict(el *list.Element) int {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.byKey, ent.label)
	if c.chunked {
		c.releaseChunks(ent.chunks)
	} else {
		c.bytes -= int64(len(ent.data))
		c.Obs.Gauge("modelstore_bytes").Add(-int64(len(ent.data)))
	}
	c.Evictions++
	c.Obs.Counter("modelstore_evictions_total").Inc()
	if c.OnEvict != nil {
		c.OnEvict(ent.label)
	}
	return ent.label
}

// Labels returns the cached labels in ascending order.
func (c *BoundedCache) Labels() []int {
	out := make([]int, 0, len(c.byKey))
	for l := range c.byKey {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
