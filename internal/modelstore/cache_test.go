package modelstore

import (
	"reflect"
	"testing"

	"dcsr/internal/obs"
)

func payload(n int) []byte { return make([]byte, n) }

func TestBoundedCacheLRUEviction(t *testing.T) {
	c := NewBoundedCache(100)
	c.Put(0, payload(40))
	c.Put(1, payload(40))
	// Touch label 0 so label 1 becomes the LRU victim.
	if _, ok := c.Get(0); !ok {
		t.Fatal("label 0 missing")
	}
	evicted := c.Put(2, payload(40))
	if !reflect.DeepEqual(evicted, []int{1}) {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	if c.Contains(1) {
		t.Fatal("evicted label 1 still cached")
	}
	if !c.Contains(0) || !c.Contains(2) {
		t.Fatalf("cache contents %v, want [0 2]", c.Labels())
	}
	if c.Bytes() != 80 {
		t.Fatalf("Bytes = %d, want 80", c.Bytes())
	}
	if c.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions)
	}
}

func TestBoundedCacheZeroBudgetStoresNothing(t *testing.T) {
	c := NewBoundedCache(0)
	if evicted := c.Put(0, payload(1)); evicted != nil {
		t.Fatalf("zero-budget Put evicted %v", evicted)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("zero-budget cache holds %d entries / %d bytes", c.Len(), c.Bytes())
	}
	if _, ok := c.Get(0); ok {
		t.Fatal("zero-budget cache returned a hit")
	}
	if c.Evictions != 0 {
		t.Fatalf("refusal counted as eviction: %d", c.Evictions)
	}
}

func TestBoundedCacheOversizedPayloadRefused(t *testing.T) {
	c := NewBoundedCache(10)
	c.Put(0, payload(6))
	// A payload bigger than the whole budget is refused outright; the
	// resident entry must survive (evicting it could not make room).
	if evicted := c.Put(1, payload(11)); evicted != nil {
		t.Fatalf("oversized Put evicted %v", evicted)
	}
	if c.Contains(1) {
		t.Fatal("oversized payload was cached")
	}
	if !c.Contains(0) {
		t.Fatal("resident entry lost to a refused insert")
	}
	if c.Evictions != 0 {
		t.Fatalf("refusal counted as eviction: %d", c.Evictions)
	}
}

func TestBoundedCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewBoundedCache(-1)
	for i := 0; i < 50; i++ {
		if evicted := c.Put(i, payload(1000)); evicted != nil {
			t.Fatalf("unbounded cache evicted %v", evicted)
		}
	}
	if c.Len() != 50 || c.Bytes() != 50000 {
		t.Fatalf("unbounded cache holds %d entries / %d bytes", c.Len(), c.Bytes())
	}
}

func TestBoundedCacheRefreshUpdatesBytes(t *testing.T) {
	c := NewBoundedCache(100)
	c.Put(0, payload(30))
	c.Put(0, payload(50)) // refresh with a larger payload
	if c.Len() != 1 || c.Bytes() != 50 {
		t.Fatalf("after refresh: %d entries / %d bytes, want 1 / 50", c.Len(), c.Bytes())
	}
}

func TestBoundedCacheMultiEviction(t *testing.T) {
	c := NewBoundedCache(100)
	c.Put(0, payload(40))
	c.Put(1, payload(40))
	// 90 bytes fits only alone: both residents must go, oldest first.
	evicted := c.Put(2, payload(90))
	if !reflect.DeepEqual(evicted, []int{0, 1}) {
		t.Fatalf("evicted %v, want [0 1]", evicted)
	}
	if got := c.Labels(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("cache contents %v, want [2]", got)
	}
}

func TestBoundedCacheOnEvictAndRemove(t *testing.T) {
	var seen []int
	c := NewBoundedCache(10)
	c.OnEvict = func(label int) { seen = append(seen, label) }
	c.Put(0, payload(6))
	c.Put(1, payload(6))
	if !reflect.DeepEqual(seen, []int{0}) {
		t.Fatalf("OnEvict saw %v, want [0]", seen)
	}
	c.Remove(1)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Remove: %d entries / %d bytes", c.Len(), c.Bytes())
	}
	if len(seen) != 1 {
		t.Fatalf("Remove fired OnEvict: %v", seen)
	}
}

func TestBoundedCacheMetrics(t *testing.T) {
	o := obs.New()
	c := NewBoundedCache(10)
	c.Obs = o
	c.Put(0, payload(6))
	if _, ok := c.Get(0); !ok {
		t.Fatal("miss on resident label")
	}
	c.Put(1, payload(6)) // evicts label 0
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["modelstore_puts_total"]; got != 2 {
		t.Errorf("modelstore_puts_total = %d, want 2", got)
	}
	if got := snap.Counters["modelstore_hits_total"]; got != 1 {
		t.Errorf("modelstore_hits_total = %d, want 1", got)
	}
	if got := snap.Counters["modelstore_evictions_total"]; got != 1 {
		t.Errorf("modelstore_evictions_total = %d, want 1", got)
	}
	if got := snap.Gauges["modelstore_bytes"]; got != 6 {
		t.Errorf("modelstore_bytes = %d, want 6", got)
	}
}
