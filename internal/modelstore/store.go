// Package modelstore is the model artifact layer of dcSR: micro models
// are trained per cluster, shipped over the network, and cached on
// device (paper §3.2, Algorithm 1), so their serialized weights are
// first-class artifacts with a lifecycle — produced by core.Prepare,
// published by an origin, downloaded and evicted by clients.
//
// The package provides two cooperating pieces:
//
//   - Store, a content-addressed blob store keyed by the SHA-256 digest
//     of the serialized weights, with an in-memory backend (Mem) and a
//     directory backend (Disk, the layout core/persist publishes).
//     Identical payloads dedupe automatically: two clusters that train
//     to identical weights occupy one object.
//   - BoundedCache, the client-side byte-budgeted LRU that replaces the
//     boolean "have I downloaded label L" set of Algorithm 1 with real
//     bytes under a budget; evictions force the label's next reference
//     to re-fetch lazily.
//
// All backends carry the stable obs metric surface (modelstore_puts_total,
// modelstore_hits_total, modelstore_evictions_total and the
// modelstore_bytes gauge — see docs/OPERATIONS.md); a nil Obs disables
// instrumentation at no cost.
package modelstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dcsr/internal/obs"
)

// Digest is the content address of a stored payload: its SHA-256.
type Digest [sha256.Size]byte

// DigestOf computes the content address of a payload.
func DigestOf(data []byte) Digest { return sha256.Sum256(data) }

// String renders the digest as lowercase hex (the Disk filename stem).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest parses the hex form produced by Digest.String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(d) {
		return d, fmt.Errorf("modelstore: malformed digest %q", s)
	}
	copy(d[:], raw)
	return d, nil
}

// Store is a content-addressed blob store for serialized model weights.
// Implementations are safe for concurrent use.
type Store interface {
	// Put stores data and returns its digest. Storing a payload that is
	// already present is a cheap no-op (dedupe) returning the same digest.
	Put(data []byte) (Digest, error)
	// Get returns the payload for d, or an error satisfying
	// errors.Is(err, os.ErrNotExist) when absent.
	Get(d Digest) ([]byte, error)
	// Has reports whether d is present without reading the payload.
	Has(d Digest) bool
	// Digests returns every stored digest in sorted (hex) order.
	Digests() []Digest
	// SizeBytes returns the total payload bytes currently stored.
	SizeBytes() int64
}

// Mem is the in-memory Store backend.
type Mem struct {
	mu      sync.RWMutex
	objects map[Digest][]byte
	bytes   int64

	// Obs receives modelstore_puts_total / modelstore_hits_total and the
	// modelstore_bytes gauge; nil disables instrumentation.
	Obs *obs.Obs
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{objects: make(map[Digest][]byte)} }

// Put implements Store. The payload is copied, so the caller may reuse
// its buffer.
func (m *Mem) Put(data []byte) (Digest, error) {
	d := DigestOf(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[d]; ok {
		m.Obs.Counter("modelstore_hits_total").Inc()
		return d, nil // dedupe: identical weights stored once
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.objects[d] = cp
	m.bytes += int64(len(cp))
	m.Obs.Counter("modelstore_puts_total").Inc()
	m.Obs.Gauge("modelstore_bytes").Add(int64(len(cp)))
	return d, nil
}

// Get implements Store.
func (m *Mem) Get(d Digest) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.objects[d]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("modelstore: object %s: %w", d, os.ErrNotExist)
	}
	m.Obs.Counter("modelstore_hits_total").Inc()
	return data, nil
}

// Has implements Store.
func (m *Mem) Has(d Digest) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.objects[d]
	return ok
}

// Digests implements Store.
func (m *Mem) Digests() []Digest {
	m.mu.RLock()
	out := make([]Digest, 0, len(m.objects))
	for d := range m.objects {
		out = append(out, d)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SizeBytes implements Store.
func (m *Mem) SizeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Disk is the directory Store backend: one file per object named
// <hex-digest>.bin, the weight encoding core/persist publishes. Writes
// go through a temp file + rename so a crashed writer never leaves a
// half object behind.
type Disk struct {
	dir string
	mu  sync.Mutex

	// Obs receives the same metric surface as Mem; nil disables it.
	Obs *obs.Obs
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Disk) Dir() string { return s.dir }

func (s *Disk) path(d Digest) string {
	return filepath.Join(s.dir, d.String()+".bin")
}

// Put implements Store.
func (s *Disk) Put(data []byte) (Digest, error) {
	d := DigestOf(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.path(d)); err == nil {
		s.Obs.Counter("modelstore_hits_total").Inc()
		return d, nil // dedupe: the object is already on disk
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return d, fmt.Errorf("modelstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		//lint:allow errcheck the write already failed; closing the doomed temp file is best-effort cleanup before reporting that error
		tmp.Close()
		os.Remove(tmp.Name())
		return d, fmt.Errorf("modelstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return d, fmt.Errorf("modelstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(d)); err != nil {
		return d, fmt.Errorf("modelstore: %w", err)
	}
	s.Obs.Counter("modelstore_puts_total").Inc()
	s.Obs.Gauge("modelstore_bytes").Add(int64(len(data)))
	return d, nil
}

// Get implements Store. The payload is re-hashed on the way out: a
// truncated or corrupted object file (digest mismatch) is treated as a
// miss — the broken file is deleted so the next Put can repopulate it —
// rather than handed to a caller that would arm garbage weights.
func (s *Disk) Get(d Digest) ([]byte, error) {
	data, err := os.ReadFile(s.path(d))
	if err != nil {
		return nil, fmt.Errorf("modelstore: object %s: %w", d, err)
	}
	if DigestOf(data) != d {
		s.mu.Lock()
		os.Remove(s.path(d))
		s.mu.Unlock()
		return nil, fmt.Errorf("modelstore: object %s corrupt on disk, dropped: %w", d, os.ErrNotExist)
	}
	s.Obs.Counter("modelstore_hits_total").Inc()
	return data, nil
}

// Has implements Store.
func (s *Disk) Has(d Digest) bool {
	_, err := os.Stat(s.path(d))
	return err == nil
}

// Digests implements Store.
func (s *Disk) Digests() []Digest {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []Digest
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".bin" {
			continue
		}
		d, err := ParseDigest(name[:len(name)-len(".bin")])
		if err != nil {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SizeBytes implements Store.
func (s *Disk) SizeBytes() int64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".bin" {
			continue
		}
		if info, err := e.Info(); err == nil {
			n += info.Size()
		}
	}
	return n
}
