package stream

import (
	"fmt"
	"reflect"
	"testing"
)

// paperFig7Manifest reproduces the walk-through example of paper Fig 7:
// segments 0..6 with model labels 0,1,1,2,2,2,3.
func paperFig7Manifest() *Manifest {
	labels := []int{0, 1, 1, 2, 2, 2, 3}
	m := &Manifest{Models: map[int]ModelInfo{
		0: {Label: 0, Bytes: 100},
		1: {Label: 1, Bytes: 110},
		2: {Label: 2, Bytes: 120},
		3: {Label: 3, Bytes: 130},
	}}
	for i, l := range labels {
		m.Segments = append(m.Segments, SegmentInfo{
			Index: i, Start: i * 10, End: (i + 1) * 10, Bytes: 1000, ModelLabel: l,
		})
	}
	return m
}

func TestPaperFig7WalkThrough(t *testing.T) {
	m := paperFig7Manifest()
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Models download exactly at segments 0, 1, 3 and 6 (paper Fig 7).
	wantDownloads := map[int]bool{0: true, 1: true, 3: true, 6: true}
	for _, ev := range s.Events {
		if ev.ModelDownloaded != wantDownloads[ev.Segment] {
			t.Errorf("segment %d: downloaded=%v, want %v", ev.Segment, ev.ModelDownloaded, wantDownloads[ev.Segment])
		}
	}
	if s.Downloads != 4 {
		t.Errorf("downloads = %d, want 4", s.Downloads)
	}
	if s.CacheHits != 3 {
		t.Errorf("cache hits = %d, want 3 (segments 2, 4, 5)", s.CacheHits)
	}
	if got := s.CacheContents(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("cache contents %v", got)
	}
	if s.ModelBytes != 100+110+120+130 {
		t.Errorf("model bytes %d", s.ModelBytes)
	}
	if s.VideoBytes != 7000 {
		t.Errorf("video bytes %d", s.VideoBytes)
	}
	if s.TotalBytes() != s.VideoBytes+s.ModelBytes {
		t.Error("TotalBytes inconsistent")
	}
}

func TestNoCacheDownloadsEverySegment(t *testing.T) {
	m := paperFig7Manifest()
	s, err := NewSession(m, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Downloads != 7 {
		t.Errorf("no-cache downloads = %d, want 7", s.Downloads)
	}
	if s.CacheHits != 0 {
		t.Errorf("no-cache hits = %d", s.CacheHits)
	}
	// Caching saves exactly the re-downloads: 1×110 + 2×120.
	withCache, _ := NewSession(m, true)
	withCache.Run()
	if saved := s.ModelBytes - withCache.ModelBytes; saved != 110+120+120 {
		t.Errorf("cache saved %d bytes, want %d", saved, 110+120+120)
	}
}

func TestSegmentsWithoutModels(t *testing.T) {
	m := &Manifest{
		Segments: []SegmentInfo{
			{Index: 0, Start: 0, End: 5, Bytes: 500, ModelLabel: -1},
			{Index: 1, Start: 5, End: 9, Bytes: 400, ModelLabel: -1},
		},
		Models: map[int]ModelInfo{},
	}
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	total := s.Run()
	if total != 900 || s.Downloads != 0 {
		t.Fatalf("total=%d downloads=%d", total, s.Downloads)
	}
}

func TestManifestValidate(t *testing.T) {
	valid := func() *Manifest {
		return &Manifest{
			Segments: []SegmentInfo{{Index: 0, Start: 0, End: 5, Bytes: 500, ModelLabel: 1}},
			Models:   map[int]ModelInfo{1: {Label: 1, Bytes: 100}},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*Manifest)
		wantErr bool
	}{
		{"valid", func(*Manifest) {}, false},
		{"zero-byte segment is fine (all-skip coding)", func(m *Manifest) {
			m.Segments[0].Bytes = 0
		}, false},
		{"no model needed", func(m *Manifest) {
			m.Segments[0].ModelLabel = -1
		}, false},
		{"dangling model reference", func(m *Manifest) {
			m.Segments[0].ModelLabel = 9
		}, true},
		{"empty frame range", func(m *Manifest) {
			m.Segments[0].Start, m.Segments[0].End = 5, 5
		}, true},
		{"inverted frame range", func(m *Manifest) {
			m.Segments[0].Start, m.Segments[0].End = 5, 2
		}, true},
		{"negative segment bytes", func(m *Manifest) {
			m.Segments[0].Bytes = -1
		}, true},
		{"zero-byte model", func(m *Manifest) {
			m.Models[1] = ModelInfo{Label: 1, Bytes: 0}
		}, true},
		{"negative model bytes", func(m *Manifest) {
			m.Models[1] = ModelInfo{Label: 1, Bytes: -100}
		}, true},
		{"unreferenced zero-byte model still rejected", func(m *Manifest) {
			m.Models[7] = ModelInfo{Label: 7}
		}, true},
		{"duplicate segment index (silent shadowing)", func(m *Manifest) {
			m.Segments = append(m.Segments, SegmentInfo{Index: 0, Start: 5, End: 9, Bytes: 100, ModelLabel: -1})
		}, true},
		{"model keyed under a different label", func(m *Manifest) {
			m.Models[2] = ModelInfo{Label: 1, Bytes: 100}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := valid()
			tc.mutate(m)
			err := m.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
			if _, serr := NewSession(m, true); (serr != nil) != tc.wantErr {
				t.Fatalf("NewSession error = %v, wantErr=%v", serr, tc.wantErr)
			}
		})
	}
}

// failTwiceFetcher fails the first two fetches of each label, modelling a
// transient outage that lazy retry rides out.
func failTwiceFetcher(failed map[int]int) func(int) error {
	return func(label int) error {
		if failed[label] < 2 {
			failed[label]++
			return errInjected
		}
		return nil
	}
}

var errInjected = fmt.Errorf("stream_test: injected fetch failure")

func TestSessionDegradesOnFetchFailure(t *testing.T) {
	m := paperFig7Manifest()
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	failed := map[int]int{}
	s.Fetcher = failTwiceFetcher(failed)
	s.Run()
	// Label 2 covers segments 3,4,5: fetches at 3 and 4 fail, 5 succeeds.
	// Labels 0,1,3 cover too few segments to recover.
	var degraded []int
	for _, ev := range s.Events {
		if ev.Degraded {
			if ev.ModelDownloaded || ev.ModelBytes != 0 {
				t.Errorf("degraded segment %d counted as a download", ev.Segment)
			}
			degraded = append(degraded, ev.Segment)
		}
	}
	if !reflect.DeepEqual(degraded, []int{0, 1, 2, 3, 4, 6}) {
		t.Errorf("degraded segments %v, want [0 1 2 3 4 6]", degraded)
	}
	if s.DegradedSegments != 6 {
		t.Errorf("DegradedSegments = %d, want 6", s.DegradedSegments)
	}
	if s.Downloads != 1 {
		t.Errorf("Downloads = %d, want 1 (only label 2 recovers)", s.Downloads)
	}
	// Misses count attempts (7: every non-hit reference), downloads count
	// successes (1); hits are zero because nothing earlier got cached
	// except label 2 at segment 5 — which has no later reference.
	if s.CacheMisses != 7 || s.CacheHits != 0 {
		t.Errorf("misses=%d hits=%d, want 7/0", s.CacheMisses, s.CacheHits)
	}
	// Byte accounting covers only real transfers: video + one model.
	if s.ModelBytes != 120 {
		t.Errorf("ModelBytes = %d, want 120 (label 2 only)", s.ModelBytes)
	}
	if got := s.CacheContents(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("cache contents %v, want [2]", got)
	}
}

func TestSessionFetcherAllSucceedMatchesSeed(t *testing.T) {
	m := paperFig7Manifest()
	plain, _ := NewSession(m, true)
	plain.Run()
	hooked, _ := NewSession(m, true)
	hooked.Fetcher = func(int) error { return nil }
	hooked.Run()
	if !reflect.DeepEqual(plain.Events, hooked.Events) {
		t.Error("always-succeeding Fetcher changed the event log")
	}
	if plain.TotalBytes() != hooked.TotalBytes() ||
		plain.Downloads != hooked.Downloads ||
		plain.CacheHits != hooked.CacheHits ||
		plain.CacheMisses != hooked.CacheMisses ||
		hooked.DegradedSegments != 0 {
		t.Errorf("accounting diverged: plain %+v, hooked %+v", plain, hooked)
	}
}

func TestManifestTotals(t *testing.T) {
	m := paperFig7Manifest()
	if m.TotalVideoBytes() != 7000 {
		t.Errorf("TotalVideoBytes %d", m.TotalVideoBytes())
	}
	if m.TotalModelBytes() != 460 {
		t.Errorf("TotalModelBytes %d", m.TotalModelBytes())
	}
	if got := m.ModelLabels(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("ModelLabels %v", got)
	}
}
