package stream

import (
	"reflect"
	"testing"
)

// paperFig7Manifest reproduces the walk-through example of paper Fig 7:
// segments 0..6 with model labels 0,1,1,2,2,2,3.
func paperFig7Manifest() *Manifest {
	labels := []int{0, 1, 1, 2, 2, 2, 3}
	m := &Manifest{Models: map[int]ModelInfo{
		0: {Label: 0, Bytes: 100},
		1: {Label: 1, Bytes: 110},
		2: {Label: 2, Bytes: 120},
		3: {Label: 3, Bytes: 130},
	}}
	for i, l := range labels {
		m.Segments = append(m.Segments, SegmentInfo{
			Index: i, Start: i * 10, End: (i + 1) * 10, Bytes: 1000, ModelLabel: l,
		})
	}
	return m
}

func TestPaperFig7WalkThrough(t *testing.T) {
	m := paperFig7Manifest()
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Models download exactly at segments 0, 1, 3 and 6 (paper Fig 7).
	wantDownloads := map[int]bool{0: true, 1: true, 3: true, 6: true}
	for _, ev := range s.Events {
		if ev.ModelDownloaded != wantDownloads[ev.Segment] {
			t.Errorf("segment %d: downloaded=%v, want %v", ev.Segment, ev.ModelDownloaded, wantDownloads[ev.Segment])
		}
	}
	if s.Downloads != 4 {
		t.Errorf("downloads = %d, want 4", s.Downloads)
	}
	if s.CacheHits != 3 {
		t.Errorf("cache hits = %d, want 3 (segments 2, 4, 5)", s.CacheHits)
	}
	if got := s.CacheContents(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("cache contents %v", got)
	}
	if s.ModelBytes != 100+110+120+130 {
		t.Errorf("model bytes %d", s.ModelBytes)
	}
	if s.VideoBytes != 7000 {
		t.Errorf("video bytes %d", s.VideoBytes)
	}
	if s.TotalBytes() != s.VideoBytes+s.ModelBytes {
		t.Error("TotalBytes inconsistent")
	}
}

func TestNoCacheDownloadsEverySegment(t *testing.T) {
	m := paperFig7Manifest()
	s, err := NewSession(m, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Downloads != 7 {
		t.Errorf("no-cache downloads = %d, want 7", s.Downloads)
	}
	if s.CacheHits != 0 {
		t.Errorf("no-cache hits = %d", s.CacheHits)
	}
	// Caching saves exactly the re-downloads: 1×110 + 2×120.
	withCache, _ := NewSession(m, true)
	withCache.Run()
	if saved := s.ModelBytes - withCache.ModelBytes; saved != 110+120+120 {
		t.Errorf("cache saved %d bytes, want %d", saved, 110+120+120)
	}
}

func TestSegmentsWithoutModels(t *testing.T) {
	m := &Manifest{
		Segments: []SegmentInfo{
			{Index: 0, Start: 0, End: 5, Bytes: 500, ModelLabel: -1},
			{Index: 1, Start: 5, End: 9, Bytes: 400, ModelLabel: -1},
		},
		Models: map[int]ModelInfo{},
	}
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	total := s.Run()
	if total != 900 || s.Downloads != 0 {
		t.Fatalf("total=%d downloads=%d", total, s.Downloads)
	}
}

func TestManifestValidate(t *testing.T) {
	bad := &Manifest{
		Segments: []SegmentInfo{{Index: 0, Start: 0, End: 5, ModelLabel: 9}},
		Models:   map[int]ModelInfo{},
	}
	if err := bad.Validate(); err == nil {
		t.Error("accepted dangling model reference")
	}
	empty := &Manifest{
		Segments: []SegmentInfo{{Index: 0, Start: 5, End: 5, ModelLabel: -1}},
		Models:   map[int]ModelInfo{},
	}
	if err := empty.Validate(); err == nil {
		t.Error("accepted empty segment range")
	}
	if _, err := NewSession(bad, true); err == nil {
		t.Error("NewSession accepted invalid manifest")
	}
}

func TestManifestTotals(t *testing.T) {
	m := paperFig7Manifest()
	if m.TotalVideoBytes() != 7000 {
		t.Errorf("TotalVideoBytes %d", m.TotalVideoBytes())
	}
	if m.TotalModelBytes() != 460 {
		t.Errorf("TotalModelBytes %d", m.TotalModelBytes())
	}
	if got := m.ModelLabels(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("ModelLabels %v", got)
	}
}
