package stream

import (
	"errors"
	"testing"

	"dcsr/internal/obs"
)

// pingPongManifest alternates two labels so a budget that fits only one
// model must evict on every switch: segments 0..3 with labels 0,1,0,1.
func pingPongManifest() *Manifest {
	m := &Manifest{Models: map[int]ModelInfo{
		0: {Label: 0, Bytes: 100},
		1: {Label: 1, Bytes: 100},
	}}
	for i, l := range []int{0, 1, 0, 1} {
		m.Segments = append(m.Segments, SegmentInfo{
			Index: i, Start: i * 10, End: (i + 1) * 10, Bytes: 1000, ModelLabel: l,
		})
	}
	return m
}

func TestSessionBudgetEvictsAndRefetches(t *testing.T) {
	o := obs.New()
	s, err := NewSessionWithBudget(pingPongManifest(), 150)
	if err != nil {
		t.Fatal(err)
	}
	s.Obs = o
	s.Run()
	// Budget 150 holds one 100-byte model: every label switch evicts the
	// resident model, and every reference re-downloads.
	if s.Downloads != 4 || s.CacheHits != 0 || s.CacheMisses != 4 {
		t.Errorf("downloads/hits/misses = %d/%d/%d, want 4/0/4",
			s.Downloads, s.CacheHits, s.CacheMisses)
	}
	if s.Evictions() != 3 {
		t.Errorf("evictions = %d, want 3", s.Evictions())
	}
	if s.CacheBytes() != 100 {
		t.Errorf("cache bytes = %d, want 100", s.CacheBytes())
	}
	if got := o.Metrics.Snapshot().Counters["modelstore_evictions_total"]; got != 3 {
		t.Errorf("modelstore_evictions_total = %d, want 3", got)
	}
	if s.ModelBytes != 400 {
		t.Errorf("model bytes = %d, want 400 (every reference re-downloads)", s.ModelBytes)
	}
}

func TestSessionAmpleBudgetMatchesUnbounded(t *testing.T) {
	unbounded, err := NewSession(pingPongManifest(), true)
	if err != nil {
		t.Fatal(err)
	}
	unbounded.Run()
	ample, err := NewSessionWithBudget(pingPongManifest(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ample.Run()
	if ample.CacheHits != unbounded.CacheHits || ample.Downloads != unbounded.Downloads {
		t.Errorf("ample budget hits/downloads = %d/%d, unbounded = %d/%d",
			ample.CacheHits, ample.Downloads, unbounded.CacheHits, unbounded.Downloads)
	}
	if ample.Evictions() != 0 {
		t.Errorf("ample budget evicted %d models", ample.Evictions())
	}
	if unbounded.CacheHits != 2 {
		t.Errorf("unbounded cache hits = %d, want 2", unbounded.CacheHits)
	}
}

func TestSessionFetchDataPayloadAndFailure(t *testing.T) {
	m := pingPongManifest()
	s, err := NewSessionWithBudget(m, -1)
	if err != nil {
		t.Fatal(err)
	}
	fail := true
	s.FetchData = func(label int) ([]byte, error) {
		if label == 1 && fail {
			fail = false
			return nil, errors.New("transient")
		}
		return make([]byte, m.Models[label].Bytes), nil
	}
	s.Run()
	// Label 1's first fetch failed: segment 1 degraded, label 1 retried
	// (and cached) at segment 3.
	if s.DegradedSegments != 1 {
		t.Errorf("degraded = %d, want 1", s.DegradedSegments)
	}
	if !s.Events[1].Degraded || s.Events[3].Degraded {
		t.Errorf("degraded events: %+v", s.Events)
	}
	if s.Downloads != 2 {
		t.Errorf("downloads = %d, want 2 (label 0 once, label 1 on retry)", s.Downloads)
	}
	if s.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1 (segment 2)", s.CacheHits)
	}
	if s.CacheBytes() != 200 {
		t.Errorf("cache bytes = %d, want 200 (both real payloads resident)", s.CacheBytes())
	}
}
