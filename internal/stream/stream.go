// Package stream implements the streaming-session bookkeeping of dcSR's
// client: the manifest mapping video segments to micro-model labels, the
// model cache with the fetch-on-miss policy of paper Algorithm 1, and
// byte-accurate download accounting used by the bandwidth experiments
// (paper Fig 10).
//
// # Fault model
//
// Algorithm 1 assumes every model fetch succeeds; Session extends it
// with graceful degradation. A Session with a Fetcher hook performs a
// real download per cache miss, and a failed fetch degrades the segment
// (Event.Degraded, Session.DegradedSegments) instead of aborting the
// walk: playback continues without SR for that segment, and because the
// cache only ever records successful downloads, the label is retried
// lazily the next time a segment references it. The degraded counters
// surface as the obs metrics degraded_segments_total and
// model_fetch_failures_total. See docs/OPERATIONS.md for the full
// failure-mode catalogue and DESIGN.md for the retry/degrade state
// machine.
//
// A Session is single-goroutine, like the transport.Client that usually
// backs its Fetcher: segments are walked strictly in order, one at a
// time.
package stream

import (
	"fmt"
	"sort"

	"dcsr/internal/modelstore"
	"dcsr/internal/obs"
)

// SegmentInfo describes one video segment in a manifest.
type SegmentInfo struct {
	Index      int
	Start, End int // frame range [Start, End)
	Bytes      int // serialized segment size
	ModelLabel int // micro model this segment needs; -1 for none
}

// ModelInfo describes one downloadable micro model.
type ModelInfo struct {
	Label int
	Bytes int
	// Int8 reports that the model passed the server-side int8
	// calibration quality gate: its manifest entry ships activation
	// scales and the client may run it on the quantized kernel path.
	// False (including manifests from servers predating the field)
	// keeps the client on float32.
	Int8 bool `json:"int8,omitempty"`
	// ActScales are the per-conv activation quantization scales the
	// server calibrated from the cluster's own frames; a client feeds
	// them to Model.CalibrateFromScales to arm the int8 path
	// bit-identically to the origin. Only set when Int8 is true.
	ActScales []float32 `json:"act_scales,omitempty"`
	// Delta marks a model shipped as a dcW5 delta against the manifest's
	// shared backbone: Bytes is the delta payload (the wire download),
	// and the client assembles the full weights locally. False (including
	// manifests from servers predating the field) means Bytes is the
	// complete serialized model.
	Delta bool `json:"delta,omitempty"`
	// BackboneDigest is the hex SHA-256 of the backbone payload the delta
	// was encoded against; it must match Backbone.Digest. Only set when
	// Delta is true.
	BackboneDigest string `json:"backbone_digest,omitempty"`
	// Digest is the hex SHA-256 of the full serialized weights, letting a
	// client verify an assembled (or fetched) model before arming it.
	Digest string `json:"digest,omitempty"`
	// FullBytes is the size of the complete serialized model when Delta
	// is true (what a fallback full fetch downloads); zero otherwise.
	FullBytes int `json:"full_bytes,omitempty"`
}

// BackboneInfo describes the shared backbone model the manifest's delta
// entries are encoded against. The backbone is itself one of the cluster
// models (Label), fetched at most once per session via its own wire op.
type BackboneInfo struct {
	Label  int    `json:"label"`
	Digest string `json:"digest"` // hex SHA-256 of the backbone payload
	Bytes  int    `json:"bytes"`
}

// Manifest is the per-video index a dcSR client downloads first: the
// segment list (HashMap_L of Algorithm 1 is the Segment→ModelLabel
// mapping) and the model directory.
type Manifest struct {
	Segments []SegmentInfo
	Models   map[int]ModelInfo
	// Backbone, when non-nil, is the shared model that every Delta entry
	// in Models is encoded against (the model-stream representation);
	// nil means every model ships complete.
	Backbone *BackboneInfo
}

// Validate checks internal consistency: frame ranges must be non-empty,
// model references must resolve, segment sizes must be non-negative,
// every model must have a positive payload (a zero- or negative-byte
// model is undeserializable and would silently corrupt the byte
// accounting the bandwidth experiments depend on), segment indices must
// be unique, and each Models entry's Label must match its map key. The
// last two guard against silent shadowing: duplicate indices or
// mislabeled models would make lookups quietly resolve to the wrong
// payload instead of failing.
func (m *Manifest) Validate() error {
	seen := make(map[int]bool, len(m.Segments))
	for _, s := range m.Segments {
		if seen[s.Index] {
			return fmt.Errorf("stream: duplicate segment index %d", s.Index)
		}
		seen[s.Index] = true
		if s.ModelLabel >= 0 {
			if _, ok := m.Models[s.ModelLabel]; !ok {
				return fmt.Errorf("stream: segment %d references unknown model %d", s.Index, s.ModelLabel)
			}
		}
		if s.End <= s.Start {
			return fmt.Errorf("stream: segment %d has empty frame range", s.Index)
		}
		if s.Bytes < 0 {
			return fmt.Errorf("stream: segment %d has negative size %d", s.Index, s.Bytes)
		}
	}
	if b := m.Backbone; b != nil {
		if b.Digest == "" || b.Bytes <= 0 {
			return fmt.Errorf("stream: backbone missing digest or size")
		}
		if _, ok := m.Models[b.Label]; !ok {
			return fmt.Errorf("stream: backbone label %d has no model entry", b.Label)
		}
	}
	for label, mi := range m.Models {
		if mi.Label != label {
			return fmt.Errorf("stream: model keyed %d carries label %d", label, mi.Label)
		}
		if mi.Bytes <= 0 {
			return fmt.Errorf("stream: model %d has non-positive size %d", label, mi.Bytes)
		}
		if mi.Delta {
			if m.Backbone == nil {
				return fmt.Errorf("stream: delta model %d but manifest carries no backbone", label)
			}
			if mi.BackboneDigest != m.Backbone.Digest {
				return fmt.Errorf("stream: delta model %d references backbone digest %.12s absent from the manifest", label, mi.BackboneDigest)
			}
			if mi.Digest == "" || mi.FullBytes <= 0 {
				return fmt.Errorf("stream: delta model %d missing full-payload digest or size", label)
			}
		}
	}
	return nil
}

// TotalVideoBytes sums all segment payloads.
func (m *Manifest) TotalVideoBytes() int {
	n := 0
	for _, s := range m.Segments {
		n += s.Bytes
	}
	return n
}

// TotalModelBytes sums the unique model payloads.
func (m *Manifest) TotalModelBytes() int {
	n := 0
	for _, mi := range m.Models {
		n += mi.Bytes
	}
	return n
}

// ModelLabels returns the sorted distinct model labels.
func (m *Manifest) ModelLabels() []int {
	labels := make([]int, 0, len(m.Models))
	for l := range m.Models {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	return labels
}

// Event records one segment step of a session walk-through (the rows of
// paper Fig 7).
type Event struct {
	Segment         int
	ModelLabel      int
	ModelDownloaded bool // false = cache hit, no model needed, or degraded
	SegmentBytes    int
	ModelBytes      int
	// Degraded marks a segment whose model fetch failed: it plays without
	// SR and its label stays uncached so the next reference retries.
	Degraded bool
}

// Session simulates a client streaming session: segments are downloaded in
// order and each segment's micro model is fetched only on cache miss
// (Algorithm 1). The cache holds real model bytes under a byte budget
// (modelstore.BoundedCache): when the budget is exceeded the
// least-recently-used model is evicted, and an evicted label's next
// reference re-fetches it lazily — same retry path as a degraded fetch,
// driven by capacity instead of failure. The zero value is not usable;
// call NewSession or NewSessionWithBudget.
type Session struct {
	manifest *Manifest
	cache    *modelstore.BoundedCache

	// Obs receives cache hit/miss and byte counters
	// (segments_fetched_total and its rolling-window twin
	// segments_fetched_window_total, cache_hits_total,
	// cache_misses_total, video_bytes_total, model_bytes_total); nil
	// disables them.
	Obs *obs.Obs
	// Trace, when set, receives one "segment_fetch" child span per Step
	// (the rows of paper Fig 7 as a trace).
	Trace *obs.Span

	Events     []Event
	VideoBytes int
	ModelBytes int
	// BackboneBytes, DeltaModelBytes and FullModelBytes break ModelBytes
	// down for manifests carrying a model stream: the shared backbone is
	// downloaded once per session (BackboneBytes), delta entries cost
	// their delta payloads (DeltaModelBytes), and everything else —
	// including every model of a backbone-less manifest — is a complete
	// download (FullModelBytes). The three always sum to ModelBytes.
	BackboneBytes   int
	DeltaModelBytes int
	FullModelBytes  int
	CacheHits       int
	// CacheMisses counts segments whose model had to be downloaded
	// (kept separate from Downloads so hit+miss covers exactly the
	// segments that needed a model; with a Fetcher the two differ by the
	// failed attempts, which are misses but not downloads).
	CacheMisses int
	// Downloads counts successful model downloads.
	Downloads int

	// Fetcher, when set, performs the actual model download on each cache
	// miss (e.g. a transport round-trip). A nil Fetcher (the default)
	// treats every download as instantaneous success — the seed
	// simulation behaviour. When Fetcher returns an error the segment is
	// marked degraded (it plays without SR), the failure is recorded in
	// DegradedSegments and the obs counters model_fetch_failures_total /
	// degraded_segments_total, and the label stays uncached so its next
	// reference retries the fetch lazily.
	Fetcher func(label int) error
	// FetchData, when set, performs the model download and returns the
	// serialized weights, which are what the byte-budgeted cache holds.
	// It takes precedence over Fetcher; error semantics are identical.
	// When neither hook is set (or Fetcher alone succeeded) the cache
	// stores a placeholder of the manifest-declared size, so byte
	// accounting and eviction behave identically in simulation.
	FetchData func(label int) ([]byte, error)
	// DegradedSegments counts segments whose model fetch failed.
	DegradedSegments int

	// backboneFetched records that this session already paid for the
	// shared backbone; every later model assembled from it is free of
	// that cost (the model-stream accounting).
	backboneFetched bool
}

// NewSession starts a session over manifest. When useCache is false every
// segment re-downloads its model (the ablation of paper §3.2.2). Caching
// is unbounded, the paper's Algorithm 1 behaviour; use
// NewSessionWithBudget to bound it.
func NewSession(m *Manifest, useCache bool) (*Session, error) {
	budget := int64(-1)
	if !useCache {
		budget = 0
	}
	return NewSessionWithBudget(m, budget)
}

// NewSessionWithBudget starts a session whose model cache holds at most
// budget bytes of serialized weights (budget < 0 → unbounded, the
// Algorithm 1 default; 0 → caching disabled, the §3.2.2 ablation; > 0 →
// LRU eviction past the budget).
func NewSessionWithBudget(m *Manifest, budget int64) (*Session, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Session{manifest: m, cache: modelstore.NewBoundedCache(budget)}, nil
}

// Run walks every segment in order, applying Algorithm 1, and returns the
// total bytes transferred.
func (s *Session) Run() int {
	for _, seg := range s.manifest.Segments {
		s.Step(seg)
	}
	return s.TotalBytes()
}

// Step processes one segment: download the segment, then fetch its model
// if it is not cached (Algorithm 1 lines 3–6).
func (s *Session) Step(seg SegmentInfo) Event {
	sp := s.Trace.Child("segment_fetch")
	sp.Set("segment", seg.Index)
	s.cache.Obs = s.Obs // single-goroutine session; keep the cache's registry in sync
	ev := Event{Segment: seg.Index, ModelLabel: seg.ModelLabel, SegmentBytes: seg.Bytes}
	s.VideoBytes += seg.Bytes
	s.Obs.Counter("segments_fetched_total").Inc()
	s.Obs.WindowedCounter("segments_fetched_window_total").Inc()
	s.Obs.Counter("video_bytes_total").Add(int64(seg.Bytes))
	if seg.ModelLabel >= 0 {
		if _, hit := s.cache.Get(seg.ModelLabel); hit {
			s.CacheHits++
			s.Obs.Counter("cache_hits_total").Inc()
			sp.Set("cache", "hit")
		} else {
			s.CacheMisses++
			s.Obs.Counter("cache_misses_total").Inc()
			var data []byte
			var err error
			if s.FetchData != nil {
				data, err = s.FetchData(seg.ModelLabel)
			} else if s.Fetcher != nil {
				err = s.Fetcher(seg.ModelLabel)
			}
			if err != nil {
				// Degrade instead of aborting: the segment plays
				// without SR and the label stays uncached so its next
				// reference retries the fetch (Algorithm 1's cache
				// only ever holds successful downloads).
				ev.Degraded = true
				s.DegradedSegments++
				s.Obs.Counter("model_fetch_failures_total").Inc()
				s.Obs.Counter("degraded_segments_total").Inc()
				sp.Set("cache", "degraded")
				s.Events = append(s.Events, ev)
				sp.End()
				return ev
			}
			mi := s.manifest.Models[seg.ModelLabel]
			ev.ModelDownloaded = true
			s.Downloads++
			cost := mi.Bytes
			bb := s.manifest.Backbone
			switch {
			case mi.Delta:
				// Delta entry: the first one in the session also pulls the
				// shared backbone; after that each new cluster costs only
				// its delta payload.
				if !s.backboneFetched {
					s.backboneFetched = true
					cost += bb.Bytes
					s.BackboneBytes += bb.Bytes
					s.Obs.Counter("modelstream_backbone_fetch_total").Inc()
				}
				s.DeltaModelBytes += mi.Bytes
				s.Obs.Counter("modelstream_delta_bytes_total").Add(int64(mi.Bytes))
			case bb != nil && seg.ModelLabel == bb.Label:
				// The backbone's own label: its full payload is the backbone
				// itself, so a session that already fetched the backbone
				// reuses it for free, and fetching it here covers every
				// later delta.
				if s.backboneFetched {
					cost = 0
				} else {
					s.backboneFetched = true
					s.Obs.Counter("modelstream_backbone_fetch_total").Inc()
				}
				s.BackboneBytes += cost
			default:
				s.FullModelBytes += mi.Bytes
			}
			ev.ModelBytes = cost
			s.ModelBytes += cost
			s.Obs.Counter("model_bytes_total").Add(int64(cost))
			sp.Set("cache", "miss")
			sp.Set("model_bytes", cost)
			if data == nil {
				// Simulation mode: no real payload, so budget accounting
				// uses the manifest-declared size.
				data = make([]byte, mi.Bytes)
			}
			if evicted := s.cache.Put(seg.ModelLabel, data); len(evicted) > 0 {
				sp.Set("evicted", len(evicted))
			}
		}
	}
	s.Events = append(s.Events, ev)
	sp.End()
	return ev
}

// TotalBytes returns video + model bytes transferred so far.
func (s *Session) TotalBytes() int { return s.VideoBytes + s.ModelBytes }

// CacheContents returns the sorted labels currently cached.
func (s *Session) CacheContents() []int {
	labels := s.cache.Labels()
	if len(labels) == 0 {
		return nil
	}
	return labels
}

// CacheBytes returns the serialized model bytes currently resident in
// the cache.
func (s *Session) CacheBytes() int64 { return s.cache.Bytes() }

// Evictions returns how many cached models were evicted to stay within
// the byte budget.
func (s *Session) Evictions() int { return s.cache.Evictions }
