package stream

import (
	"strings"
	"testing"
)

// modelStreamManifest builds a Fig-7-style manifest whose models ship as
// a backbone (label 0) plus deltas: segments touch clusters 0,1,1,2,2,2,3.
func modelStreamManifest() *Manifest {
	const bbDigest = "aa11"
	m := &Manifest{
		Backbone: &BackboneInfo{Label: 0, Digest: bbDigest, Bytes: 100},
		Models: map[int]ModelInfo{
			0: {Label: 0, Bytes: 100, Digest: bbDigest},
			1: {Label: 1, Bytes: 25, Delta: true, BackboneDigest: bbDigest, Digest: "bb22", FullBytes: 110},
			2: {Label: 2, Bytes: 30, Delta: true, BackboneDigest: bbDigest, Digest: "cc33", FullBytes: 120},
			3: {Label: 3, Bytes: 130}, // gated out of delta encoding: ships complete
		},
	}
	for i, l := range []int{0, 1, 1, 2, 2, 2, 3} {
		m.Segments = append(m.Segments, SegmentInfo{
			Index: i, Start: i * 10, End: (i + 1) * 10, Bytes: 1000, ModelLabel: l,
		})
	}
	return m
}

func TestManifestValidateModelStream(t *testing.T) {
	if err := modelStreamManifest().Validate(); err != nil {
		t.Fatalf("valid model-stream manifest rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"delta without any backbone", func(m *Manifest) {
			m.Backbone = nil
		}, "no backbone"},
		{"delta against absent backbone digest", func(m *Manifest) {
			mi := m.Models[1]
			mi.BackboneDigest = "deadbeef"
			m.Models[1] = mi
		}, "absent from the manifest"},
		{"delta missing full-payload digest", func(m *Manifest) {
			mi := m.Models[2]
			mi.Digest = ""
			m.Models[2] = mi
		}, "missing full-payload digest"},
		{"backbone label without model entry", func(m *Manifest) {
			m.Backbone.Label = 9
		}, "no model entry"},
		{"backbone without digest", func(m *Manifest) {
			m.Backbone.Digest = ""
		}, "missing digest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := modelStreamManifest()
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken model-stream manifest")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSessionModelStreamAccounting walks the Fig-7 segment order over a
// model-stream manifest: the backbone is paid for exactly once (its own
// label's fetch), deltas cost their delta payloads, the gated-out model
// costs its full payload, and the breakdown sums to ModelBytes.
func TestSessionModelStreamAccounting(t *testing.T) {
	m := modelStreamManifest()
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	total := s.Run()
	// Label 0 (the backbone itself): 100. Deltas 1 and 2: 25 + 30.
	// Full model 3: 130.
	if s.BackboneBytes != 100 || s.DeltaModelBytes != 55 || s.FullModelBytes != 130 {
		t.Fatalf("breakdown backbone=%d delta=%d full=%d, want 100/55/130",
			s.BackboneBytes, s.DeltaModelBytes, s.FullModelBytes)
	}
	if s.ModelBytes != s.BackboneBytes+s.DeltaModelBytes+s.FullModelBytes {
		t.Fatalf("ModelBytes %d does not equal breakdown sum", s.ModelBytes)
	}
	if want := 7*1000 + 285; total != want {
		t.Fatalf("TotalBytes = %d, want %d", total, want)
	}
}

// TestSessionModelStreamBackboneFirstDelta: when the session never plays
// the backbone's own cluster, the first delta fetch pays for the
// backbone; later deltas ride on it.
func TestSessionModelStreamBackboneFirstDelta(t *testing.T) {
	m := modelStreamManifest()
	m.Segments = m.Segments[1:6] // labels 1,1,2,2,2 — no backbone segment
	s, err := NewSession(m, true)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.BackboneBytes != 100 {
		t.Fatalf("BackboneBytes = %d, want 100 (fetched once for the first delta)", s.BackboneBytes)
	}
	if s.DeltaModelBytes != 55 || s.FullModelBytes != 0 {
		t.Fatalf("delta=%d full=%d, want 55/0", s.DeltaModelBytes, s.FullModelBytes)
	}
	if s.Events[0].ModelBytes != 125 {
		t.Fatalf("first delta fetch cost %d, want 125 (backbone + delta)", s.Events[0].ModelBytes)
	}
	if s.Events[2].ModelBytes != 30 {
		t.Fatalf("second cluster cost %d, want 30 (delta only)", s.Events[2].ModelBytes)
	}
	// A backbone-label segment after the fact costs nothing new.
	ev := s.Step(SegmentInfo{Index: 9, Start: 90, End: 100, Bytes: 1000, ModelLabel: 0})
	if ev.ModelBytes != 0 {
		t.Fatalf("backbone label after backbone fetch cost %d, want 0", ev.ModelBytes)
	}
	if s.BackboneBytes != 100 {
		t.Fatalf("BackboneBytes grew to %d on reuse", s.BackboneBytes)
	}
}
