package abr

// Context is what a policy sees when choosing the next segment's level.
type Context struct {
	Segment      int
	Ladder       *Ladder
	Buffer       float64   // seconds of video buffered
	MaxBuffer    float64   // buffer capacity in seconds
	Throughput   float64   // smoothed estimate, bytes/s (0 before first sample)
	PrevLevel    int       // last chosen level (-1 for the first segment)
	ModelCached  []bool    // per model label: already downloaded? (SR-aware)
	SegmentModel int       // model label this segment needs (-1: none)
	ModelBytes   int       // bytes to fetch that model on a miss
	SRGain       []float64 // per level: PSNR gain SR adds on top (nil: no SR)
	ComputeOK    bool      // device can run SR in real time
}

// Policy selects the ladder level for the next segment.
type Policy interface {
	Name() string
	Choose(ctx Context) int
}

// RateBased picks the highest level whose expected download fits within
// Safety × estimated throughput (the classic throughput rule).
type RateBased struct {
	Safety float64 // fraction of the estimate to use; default 0.9
}

// Name identifies the policy.
func (RateBased) Name() string { return "rate-based" }

// Choose implements Policy.
func (p RateBased) Choose(ctx Context) int {
	safety := p.Safety
	if safety == 0 {
		safety = 0.9
	}
	if ctx.Throughput <= 0 {
		return 0
	}
	budget := safety * ctx.Throughput * ctx.Ladder.SegDur[ctx.Segment]
	best := 0
	for li := range ctx.Ladder.Levels {
		if float64(ctx.Ladder.Levels[li].SegmentBytes[ctx.Segment]) <= budget {
			best = li
		}
	}
	return best
}

// BufferBased maps buffer occupancy linearly onto the ladder (the shape of
// BOLA/BBA: empty buffer → lowest level, full buffer → highest), with a
// reservoir that always plays the lowest level.
type BufferBased struct {
	Reservoir float64 // seconds; below this always pick level 0. Default 5.
}

// Name identifies the policy.
func (BufferBased) Name() string { return "buffer-based" }

// Choose implements Policy.
func (p BufferBased) Choose(ctx Context) int {
	res := p.Reservoir
	if res == 0 {
		res = 5
	}
	if ctx.Buffer <= res {
		return 0
	}
	span := ctx.MaxBuffer - res
	if span <= 0 {
		return len(ctx.Ladder.Levels) - 1
	}
	frac := (ctx.Buffer - res) / span
	li := int(frac * float64(len(ctx.Ladder.Levels)))
	if li >= len(ctx.Ladder.Levels) {
		li = len(ctx.Ladder.Levels) - 1
	}
	return li
}

// SRAware is the dcSR-integrated policy the paper sketches: it scores each
// level by the quality the viewer will SEE — the decoded PSNR plus the
// super-resolution gain available at that level — and by the bytes the
// level actually costs, including the micro model on a cache miss. Under
// constrained bandwidth it therefore prefers a low layer plus SR over a
// high layer, spending client compute instead of network capacity.
type SRAware struct {
	Safety float64 // throughput safety factor; default 0.9
}

// Name identifies the policy.
func (SRAware) Name() string { return "sr-aware (dcSR)" }

// Choose implements Policy.
func (p SRAware) Choose(ctx Context) int {
	safety := p.Safety
	if safety == 0 {
		safety = 0.9
	}
	if ctx.Throughput <= 0 {
		return 0
	}
	budget := safety * ctx.Throughput * ctx.Ladder.SegDur[ctx.Segment]
	best, bestScore := 0, -1.0
	for li := range ctx.Ladder.Levels {
		bytes := float64(ctx.Ladder.Levels[li].SegmentBytes[ctx.Segment])
		score := ctx.Ladder.Levels[li].SegmentPSNR[ctx.Segment]
		if ctx.SRGain != nil && ctx.ComputeOK && ctx.SegmentModel >= 0 {
			score += ctx.SRGain[li]
			if ctx.ModelCached != nil && !ctx.ModelCached[ctx.SegmentModel] {
				bytes += float64(ctx.ModelBytes)
			}
		}
		if bytes > budget && li > 0 {
			continue
		}
		if score > bestScore {
			best, bestScore = li, score
		}
	}
	return best
}
