// Package abr implements the adaptive-bitrate layer the paper positions
// dcSR inside (§4: "an ABR algorithm can use the decoded and
// super-resolved quality level as an input to trade the network and
// compute capacity"): a per-video quality ladder built with the real
// codec, synthetic bandwidth traces, a buffer-level playback simulator,
// and three ABR policies — throughput-based, buffer-based (in the spirit
// of BOLA), and an SR-aware policy that counts the post-enhancement
// quality of low layers and the micro-model bytes it must fetch.
package abr

import (
	"fmt"

	"dcsr/internal/codec"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/video"
)

// Level is one rung of the quality ladder.
type Level struct {
	QP           int
	SegmentBytes []int     // per segment
	SegmentPSNR  []float64 // per segment, decoded vs source
}

// Bitrate returns the level's mean bits per second given the segment
// durations.
func (l *Level) Bitrate(segDur []float64) float64 {
	var bytes int
	var dur float64
	for i, b := range l.SegmentBytes {
		bytes += b
		dur += segDur[i]
	}
	if dur == 0 {
		return 0
	}
	return float64(bytes) * 8 / dur
}

// Ladder is a multi-quality encode of one video.
type Ladder struct {
	Levels   []Level   // ascending quality (descending QP)
	SegDur   []float64 // seconds per segment
	Segments int
}

// MeanPSNR returns the mean quality of level li across segments.
func (l *Ladder) MeanPSNR(li int) float64 {
	var s float64
	for _, p := range l.Levels[li].SegmentPSNR {
		s += p
	}
	return s / float64(len(l.Levels[li].SegmentPSNR))
}

// BuildLadder encodes the video once per QP (descending quality order is
// enforced: QPs must be strictly decreasing so levels ascend in quality)
// and measures per-segment bytes and PSNR with the real codec.
func BuildLadder(frames []*video.YUV, fps int, segs []splitter.Segment, qps []int) (*Ladder, error) {
	if len(qps) < 2 {
		return nil, fmt.Errorf("abr: ladder needs at least 2 levels")
	}
	for i := 1; i < len(qps); i++ {
		if qps[i] >= qps[i-1] {
			return nil, fmt.Errorf("abr: QPs must be strictly decreasing (ascending quality), got %v", qps)
		}
	}
	forceI := splitter.ForceIFlags(len(frames), segs)
	ld := &Ladder{Segments: len(segs)}
	for _, s := range segs {
		ld.SegDur = append(ld.SegDur, float64(s.Len())/float64(fps))
	}
	segOf := func(display int) int {
		for i, s := range segs {
			if display >= s.Start && display < s.End {
				return i
			}
		}
		return len(segs) - 1
	}
	for _, qp := range qps {
		st, err := codec.Encode(frames, forceI, fps, codec.EncoderConfig{QP: qp, GOPSize: 1000})
		if err != nil {
			return nil, fmt.Errorf("abr: encoding QP %d: %w", qp, err)
		}
		var dec codec.Decoder
		out, err := dec.Decode(st)
		if err != nil {
			return nil, fmt.Errorf("abr: decoding QP %d: %w", qp, err)
		}
		lv := Level{QP: qp, SegmentBytes: make([]int, len(segs)), SegmentPSNR: make([]float64, len(segs))}
		for _, f := range st.Frames {
			lv.SegmentBytes[segOf(f.Display)] += len(f.Data) + 9
		}
		counts := make([]int, len(segs))
		for i := range frames {
			si := segOf(i)
			lv.SegmentPSNR[si] += quality.PSNRYUV(frames[i], out[i])
			counts[si]++
		}
		for i := range lv.SegmentPSNR {
			lv.SegmentPSNR[i] /= float64(counts[i])
		}
		ld.Levels = append(ld.Levels, lv)
	}
	return ld, nil
}
