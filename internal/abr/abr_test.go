package abr

import (
	"math"
	"testing"

	"dcsr/internal/splitter"
	"dcsr/internal/video"
)

func testLadder(t testing.TB) (*Ladder, []splitter.Segment) {
	t.Helper()
	clip := video.Generate(video.GenConfig{
		W: 64, H: 48, Seed: 41, NumScenes: 3, TotalCues: 8, MinFrames: 5, MaxFrames: 8,
	})
	frames := clip.YUVFrames()
	segs := splitter.Split(frames, splitter.Config{Threshold: 14, MinLen: 3})
	ld, err := BuildLadder(frames, clip.FPS, segs, []int{51, 43, 35})
	if err != nil {
		t.Fatal(err)
	}
	return ld, segs
}

func TestBuildLadderShape(t *testing.T) {
	ld, segs := testLadder(t)
	if len(ld.Levels) != 3 || ld.Segments != len(segs) {
		t.Fatalf("ladder %d levels, %d segments", len(ld.Levels), ld.Segments)
	}
	// Quality and size must both ascend with level.
	for li := 1; li < len(ld.Levels); li++ {
		if ld.MeanPSNR(li) <= ld.MeanPSNR(li-1) {
			t.Errorf("level %d PSNR %.2f not above level %d %.2f", li, ld.MeanPSNR(li), li-1, ld.MeanPSNR(li-1))
		}
		if ld.Levels[li].Bitrate(ld.SegDur) <= ld.Levels[li-1].Bitrate(ld.SegDur) {
			t.Errorf("level %d bitrate not above level %d", li, li-1)
		}
	}
}

func TestBuildLadderValidation(t *testing.T) {
	clip := video.Generate(video.GenConfig{W: 32, H: 32, Seed: 1, NumScenes: 1, TotalCues: 1, MinFrames: 4, MaxFrames: 4})
	frames := clip.YUVFrames()
	segs := splitter.FixedSplit(len(frames), 2)
	if _, err := BuildLadder(frames, 30, segs, []int{40}); err == nil {
		t.Error("single-level ladder accepted")
	}
	if _, err := BuildLadder(frames, 30, segs, []int{40, 45}); err == nil {
		t.Error("non-decreasing QPs accepted")
	}
}

func TestTraceDownloadTime(t *testing.T) {
	tr := ConstantTrace(1000, 100)
	if dt := tr.DownloadTime(0, 500); math.Abs(dt-0.5) > 1e-9 {
		t.Fatalf("500 B at 1000 B/s took %v", dt)
	}
	// Rate change mid-download: 1000 B/s for 1 s then 500 B/s.
	tr2 := &Trace{Step: 1, Rates: []float64{1000, 500}}
	if dt := tr2.DownloadTime(0, 1500); math.Abs(dt-2.0) > 1e-9 {
		t.Fatalf("split-rate download took %v, want 2.0", dt)
	}
	// Past the trace end the final rate holds.
	if dt := tr2.DownloadTime(0, 2500); math.Abs(dt-4.0) > 1e-9 {
		t.Fatalf("overrun download took %v, want 4.0", dt)
	}
}

func TestMarkovTraceDeterministicAndBounded(t *testing.T) {
	a := MarkovTrace(1e6, 1e5, 0.1, 60, 7)
	b := MarkovTrace(1e6, 1e5, 0.1, 60, 7)
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("MarkovTrace not deterministic")
		}
		if a.Rates[i] < 1e5*0.9 || a.Rates[i] > 1e6*1.1 {
			t.Fatalf("rate %v out of bounds", a.Rates[i])
		}
	}
}

func TestWalkTraceBounds(t *testing.T) {
	tr := WalkTrace(5e5, 1e5, 1e6, 120, 3)
	for _, r := range tr.Rates {
		if r < 1e5 || r > 1e6 {
			t.Fatalf("walk rate %v escaped bounds", r)
		}
	}
}

func TestRateBasedRespectsBudget(t *testing.T) {
	ld, _ := testLadder(t)
	// Generous throughput → top level; tiny throughput → bottom level.
	top := RateBased{}.Choose(Context{Segment: 0, Ladder: ld, Throughput: 1e9})
	if top != len(ld.Levels)-1 {
		t.Errorf("rich link chose level %d", top)
	}
	bottom := RateBased{}.Choose(Context{Segment: 0, Ladder: ld, Throughput: 1})
	if bottom != 0 {
		t.Errorf("starved link chose level %d", bottom)
	}
}

func TestBufferBasedMapsOccupancy(t *testing.T) {
	ld, _ := testLadder(t)
	p := BufferBased{Reservoir: 5}
	if got := p.Choose(Context{Segment: 0, Ladder: ld, Buffer: 2, MaxBuffer: 20}); got != 0 {
		t.Errorf("reservoir violated: level %d", got)
	}
	if got := p.Choose(Context{Segment: 0, Ladder: ld, Buffer: 19.9, MaxBuffer: 20}); got != len(ld.Levels)-1 {
		t.Errorf("full buffer chose level %d", got)
	}
}

func TestSRAwarePrefersLowLayerPlusSR(t *testing.T) {
	ld, _ := testLadder(t)
	// SR gain makes the lowest layer's effective quality beat the top
	// layer; budget covers everything, so the decision is quality-driven.
	gain := make([]float64, len(ld.Levels))
	gain[0] = ld.MeanPSNR(len(ld.Levels)-1) - ld.MeanPSNR(0) + 2
	ctx := Context{
		Segment: 0, Ladder: ld, Throughput: 1e9,
		SegmentModel: 0, ModelCached: []bool{false}, ModelBytes: 100,
		SRGain: gain, ComputeOK: true,
	}
	if got := (SRAware{}).Choose(ctx); got != 0 {
		t.Errorf("SR-aware chose level %d, expected 0 (low layer + SR)", got)
	}
	// Without compute headroom it behaves quality-first on raw PSNR.
	ctx.ComputeOK = false
	if got := (SRAware{}).Choose(ctx); got != len(ld.Levels)-1 {
		t.Errorf("SR-aware without compute chose %d", got)
	}
}

func TestSimulateConstantLinkNoRebuffer(t *testing.T) {
	ld, _ := testLadder(t)
	// A link comfortably above the top bitrate must not stall.
	topBps := ld.Levels[len(ld.Levels)-1].Bitrate(ld.SegDur) / 8 * 4
	res, err := Simulate(ld, ConstantTrace(topBps, 600), RateBased{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RebufferS > 0.01 {
		t.Errorf("fast link rebuffered %.2fs", res.RebufferS)
	}
	if res.MeanPSNR < ld.MeanPSNR(0) {
		t.Errorf("mean PSNR %.2f below lowest level", res.MeanPSNR)
	}
	if len(res.Log) != ld.Segments {
		t.Errorf("log has %d entries", len(res.Log))
	}
}

func TestSimulateStarvedLinkRebuffers(t *testing.T) {
	ld, _ := testLadder(t)
	lowBps := ld.Levels[0].Bitrate(ld.SegDur) / 8 / 3 // a third of the lowest level
	res, err := Simulate(ld, ConstantTrace(lowBps, 600), RateBased{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RebufferS <= 0 {
		t.Error("starved link did not rebuffer")
	}
}

func TestSimulateSRAwareBeatsRateBasedWhenConstrained(t *testing.T) {
	ld, segs := testLadder(t)
	// Link sized between the lowest and middle level bitrates: the rate
	// policy oscillates on low layers without SR; the SR-aware policy
	// gets the low layer plus enhancement.
	bps := (ld.Levels[0].Bitrate(ld.SegDur)/8 + ld.Levels[1].Bitrate(ld.SegDur)/8) / 2
	trace := MarkovTrace(bps*1.5, bps*0.6, 0.15, 600, 11)
	segModels := make([]int, len(segs))
	for i := range segModels {
		segModels[i] = i % 2
	}
	// Micro models amortize over recurring segments; size them like the
	// real pipeline does (a fraction of one segment's payload).
	modelBytes := ld.Levels[0].SegmentBytes[0] / 3
	opts := SimOptions{
		SRGain:       []float64{2.5, 1.2, 0.4},
		SegmentModel: segModels,
		ModelBytes:   map[int]int{0: modelBytes, 1: modelBytes},
		ComputeOK:    true,
	}
	sr, err := Simulate(ld, trace, SRAware{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := Simulate(ld, trace, RateBased{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("QoE: sr-aware %.2f (rebuf %.2fs) vs rate-based %.2f (rebuf %.2fs)",
		sr.QoE, sr.RebufferS, rate.QoE, rate.RebufferS)
	if sr.QoE <= rate.QoE {
		t.Errorf("SR-aware QoE %.2f not above rate-based %.2f under constrained link", sr.QoE, rate.QoE)
	}
}

func TestSimulateValidation(t *testing.T) {
	ld, _ := testLadder(t)
	if _, err := Simulate(&Ladder{}, ConstantTrace(1e6, 10), RateBased{}, SimOptions{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := Simulate(ld, ConstantTrace(1e6, 10), RateBased{}, SimOptions{SRGain: []float64{1}}); err == nil {
		t.Error("mismatched SRGain accepted")
	}
}
