package abr

import "math/rand"

// Trace is a piecewise-constant bandwidth profile: Rate[i] bytes/s holds
// for Step seconds starting at i·Step.
type Trace struct {
	Step  float64
	Rates []float64 // bytes per second
}

// At returns the link rate at time t (clamped to the trace ends).
func (tr *Trace) At(t float64) float64 {
	if len(tr.Rates) == 0 {
		return 0
	}
	i := int(t / tr.Step)
	if i < 0 {
		i = 0
	}
	if i >= len(tr.Rates) {
		i = len(tr.Rates) - 1
	}
	return tr.Rates[i]
}

// Duration returns the trace length in seconds.
func (tr *Trace) Duration() float64 { return tr.Step * float64(len(tr.Rates)) }

// DownloadTime integrates the trace from start until bytes have been
// transferred, returning the elapsed seconds.
func (tr *Trace) DownloadTime(start float64, bytes int) float64 {
	remaining := float64(bytes)
	t := start
	for remaining > 0 {
		rate := tr.At(t)
		if rate <= 0 {
			rate = 1 // pathological trace: crawl instead of dividing by zero
		}
		// Time left in the current step.
		stepEnd := (float64(int(t/tr.Step)) + 1) * tr.Step
		dt := stepEnd - t
		if t >= tr.Duration() {
			// Past the end: final rate holds forever.
			return t - start + remaining/rate
		}
		if can := rate * dt; can >= remaining {
			return t - start + remaining/rate
		}
		remaining -= rate * dt
		t = stepEnd
	}
	return t - start
}

// ConstantTrace is a fixed-rate link.
func ConstantTrace(bytesPerSecond, duration float64) *Trace {
	n := int(duration) + 1
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = bytesPerSecond
	}
	return &Trace{Step: 1, Rates: rates}
}

// MarkovTrace alternates between a good and a bad state with the given
// switching probability per second — the classic two-state wireless-link
// model. Deterministic for a fixed seed.
func MarkovTrace(goodBps, badBps, pSwitch, duration float64, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(duration) + 1
	rates := make([]float64, n)
	good := true
	for i := range rates {
		if rng.Float64() < pSwitch {
			good = !good
		}
		base := badBps
		if good {
			base = goodBps
		}
		// ±10% jitter.
		rates[i] = base * (0.9 + 0.2*rng.Float64())
	}
	return &Trace{Step: 1, Rates: rates}
}

// WalkTrace is a bounded multiplicative random walk between lo and hi.
func WalkTrace(startBps, lo, hi, duration float64, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := int(duration) + 1
	rates := make([]float64, n)
	cur := startBps
	for i := range rates {
		cur *= 1 + 0.2*(rng.Float64()-0.5)
		if cur < lo {
			cur = lo
		}
		if cur > hi {
			cur = hi
		}
		rates[i] = cur
	}
	return &Trace{Step: 1, Rates: rates}
}
