package abr

import (
	"fmt"
	"math"
)

// SimOptions configures a playback simulation.
type SimOptions struct {
	MaxBuffer float64 // seconds; default 20
	// SR integration (nil SRGain disables SR accounting entirely).
	SRGain       []float64 // per level, dB added by enhancement
	SegmentModel []int     // per segment, model label (-1 none)
	ModelBytes   map[int]int
	ComputeOK    bool
	// QoE weights (Yin et al. MPC-style): QoE = Σ quality − RebufPenalty·rebuf
	// − SwitchPenalty·|ΔPSNR|.
	RebufPenalty  float64 // dB-equivalent per second of stall; default 50
	SwitchPenalty float64 // per dB of level change; default 0.5
}

func (o SimOptions) withDefaults() SimOptions {
	if o.MaxBuffer == 0 {
		o.MaxBuffer = 20
	}
	if o.RebufPenalty == 0 {
		o.RebufPenalty = 50
	}
	if o.SwitchPenalty == 0 {
		o.SwitchPenalty = 0.5
	}
	return o
}

// SegmentLog records one simulated segment download.
type SegmentLog struct {
	Segment      int
	Level        int
	Bytes        int
	DownloadS    float64
	RebufferS    float64
	BufferAfter  float64
	SeenPSNR     float64 // displayed quality incl. SR gain
	ModelFetched bool
}

// Result aggregates a simulated session.
type Result struct {
	Policy     string
	Log        []SegmentLog
	MeanPSNR   float64 // displayed quality
	StartupS   float64 // time to first frame (not counted as rebuffering)
	RebufferS  float64
	Switches   int
	SwitchMag  float64 // summed |ΔPSNR| across switches
	TotalBytes int
	ModelBytes int
	QoE        float64
}

// Simulate plays the ladder through the trace under the policy using the
// standard download-then-play buffer model: segment i downloads while the
// buffer drains; if the buffer empties, playback stalls (rebuffering).
func Simulate(ladder *Ladder, trace *Trace, policy Policy, opts SimOptions) (*Result, error) {
	opts = opts.withDefaults()
	if ladder.Segments == 0 {
		return nil, fmt.Errorf("abr: empty ladder")
	}
	if opts.SRGain != nil && len(opts.SRGain) != len(ladder.Levels) {
		return nil, fmt.Errorf("abr: SRGain has %d entries for %d levels", len(opts.SRGain), len(ladder.Levels))
	}
	res := &Result{Policy: policy.Name()}
	var (
		clock      float64 // wall time
		buffer     float64 // seconds of media buffered
		throughput float64 // smoothed estimate, bytes/s
		prevLevel  = -1
		prevPSNR   float64
	)
	cached := map[int]bool{}
	cachedSlice := func() []bool {
		if opts.SegmentModel == nil {
			return nil
		}
		maxLabel := 0
		for _, l := range opts.SegmentModel {
			if l > maxLabel {
				maxLabel = l
			}
		}
		out := make([]bool, maxLabel+1)
		for l := range out {
			out[l] = cached[l]
		}
		return out
	}
	for i := 0; i < ladder.Segments; i++ {
		ctx := Context{
			Segment: i, Ladder: ladder, Buffer: buffer, MaxBuffer: opts.MaxBuffer,
			Throughput: throughput, PrevLevel: prevLevel,
			SegmentModel: -1, SRGain: opts.SRGain, ComputeOK: opts.ComputeOK,
		}
		if opts.SegmentModel != nil {
			ctx.SegmentModel = opts.SegmentModel[i]
			ctx.ModelCached = cachedSlice()
			if ctx.SegmentModel >= 0 && opts.ModelBytes != nil {
				ctx.ModelBytes = opts.ModelBytes[ctx.SegmentModel]
			}
		}
		level := policy.Choose(ctx)
		if level < 0 || level >= len(ladder.Levels) {
			return nil, fmt.Errorf("abr: policy %q chose invalid level %d", policy.Name(), level)
		}
		bytes := ladder.Levels[level].SegmentBytes[i]
		lg := SegmentLog{Segment: i, Level: level, Bytes: bytes}
		// SR model fetch on cache miss (only when SR will be applied).
		srActive := opts.SRGain != nil && opts.ComputeOK && ctx.SegmentModel >= 0
		if srActive && !cached[ctx.SegmentModel] {
			bytes += ctx.ModelBytes
			cached[ctx.SegmentModel] = true
			lg.ModelFetched = true
			res.ModelBytes += ctx.ModelBytes
			lg.Bytes = bytes
		}
		dl := trace.DownloadTime(clock, bytes)
		lg.DownloadS = dl
		// Buffer drains while downloading. The wait for the very first
		// segment is startup latency, not a stall.
		if i == 0 {
			res.StartupS = dl
		} else if dl > buffer {
			lg.RebufferS = dl - buffer
			res.RebufferS += dl - buffer
			buffer = 0
		} else {
			buffer -= dl
		}
		clock += dl
		buffer += ladder.SegDur[i]
		if buffer > opts.MaxBuffer {
			// Client idles until there is room; the link is unused.
			clock += buffer - opts.MaxBuffer
			buffer = opts.MaxBuffer
		}
		lg.BufferAfter = buffer
		// Throughput estimate: EWMA of measured rate.
		if dl > 0 {
			sample := float64(bytes) / dl
			if throughput == 0 {
				throughput = sample
			} else {
				throughput = 0.7*throughput + 0.3*sample
			}
		}
		seen := ladder.Levels[level].SegmentPSNR[i]
		if srActive {
			seen += opts.SRGain[level]
		}
		lg.SeenPSNR = seen
		res.MeanPSNR += seen
		if prevLevel >= 0 && level != prevLevel {
			res.Switches++
			res.SwitchMag += math.Abs(seen - prevPSNR)
		}
		prevLevel, prevPSNR = level, seen
		res.TotalBytes += bytes
		res.Log = append(res.Log, lg)
	}
	res.MeanPSNR /= float64(ladder.Segments)
	res.QoE = res.MeanPSNR - opts.RebufPenalty*res.RebufferS/float64(ladder.Segments) -
		opts.SwitchPenalty*res.SwitchMag/float64(ladder.Segments)
	return res, nil
}
