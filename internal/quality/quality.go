// Package quality implements the image/video quality metrics the paper
// evaluates with: PSNR and SSIM (Wang et al. 2004), plus small aggregation
// helpers for per-video statistics.
package quality

import (
	"math"

	"dcsr/internal/video"
)

// MSEToPSNR converts a mean squared error on the 0–255 pixel scale to
// peak signal-to-noise ratio in dB: 10·log10(255²/MSE). A zero (or
// negative) MSE yields +Inf — a perfect reconstruction. This is the one
// PSNR formula in the repo; every other conversion delegates here.
func MSEToPSNR(mse float64) float64 {
	if mse <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// PSNR returns the peak signal-to-noise ratio in dB between two RGB frames
// of identical dimensions, computed over all three channels. Identical
// frames yield +Inf.
func PSNR(a, b *video.RGB) float64 {
	if a.W != b.W || a.H != b.H {
		panic("quality: PSNR dimension mismatch")
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	return MSEToPSNR(mse)
}

// PSNRYUV returns luma-plane PSNR between two YUV frames.
func PSNRYUV(a, b *video.YUV) float64 {
	if a.W != b.W || a.H != b.H {
		panic("quality: PSNRYUV dimension mismatch")
	}
	var mse float64
	for i := range a.Y {
		d := float64(a.Y[i]) - float64(b.Y[i])
		mse += d * d
	}
	mse /= float64(len(a.Y))
	return MSEToPSNR(mse)
}

// SSIM constants per Wang et al. 2004 with L = 255.
const (
	ssimC1 = (0.01 * 255) * (0.01 * 255)
	ssimC2 = (0.03 * 255) * (0.03 * 255)
)

// SSIM returns the mean structural similarity index between two RGB frames,
// computed on the luma approximation over sliding 8×8 windows with stride 4
// (a standard fast variant; the paper's conclusions depend only on relative
// SSIM, e.g. "no more than 0.05 SSIM loss").
func SSIM(a, b *video.RGB) float64 {
	if a.W != b.W || a.H != b.H {
		panic("quality: SSIM dimension mismatch")
	}
	la := lumaPlane(a)
	lb := lumaPlane(b)
	return ssimPlanes(la, lb, a.W, a.H)
}

// SSIMYUV returns the mean SSIM over the luma planes of two YUV frames.
func SSIMYUV(a, b *video.YUV) float64 {
	if a.W != b.W || a.H != b.H {
		panic("quality: SSIMYUV dimension mismatch")
	}
	fa := make([]float64, len(a.Y))
	fb := make([]float64, len(b.Y))
	for i := range a.Y {
		fa[i] = float64(a.Y[i])
		fb[i] = float64(b.Y[i])
	}
	return ssimPlanes(fa, fb, a.W, a.H)
}

func lumaPlane(f *video.RGB) []float64 {
	out := make([]float64, f.W*f.H)
	for i := 0; i < f.W*f.H; i++ {
		r := float64(f.Pix[i*3])
		g := float64(f.Pix[i*3+1])
		b := float64(f.Pix[i*3+2])
		out[i] = 0.299*r + 0.587*g + 0.114*b
	}
	return out
}

func ssimPlanes(a, b []float64, w, h int) float64 {
	const win = 8
	const stride = 4
	if w < win || h < win {
		// Degenerate frames: single global window.
		return ssimWindow(a, b, w, 0, 0, w, h)
	}
	var sum float64
	var n int
	for y := 0; y+win <= h; y += stride {
		for x := 0; x+win <= w; x += stride {
			sum += ssimWindow(a, b, w, x, y, win, win)
			n++
		}
	}
	return sum / float64(n)
}

func ssimWindow(a, b []float64, w, x0, y0, ww, wh int) float64 {
	var ma, mb float64
	n := float64(ww * wh)
	for y := y0; y < y0+wh; y++ {
		for x := x0; x < x0+ww; x++ {
			ma += a[y*w+x]
			mb += b[y*w+x]
		}
	}
	ma /= n
	mb /= n
	var va, vb, cov float64
	for y := y0; y < y0+wh; y++ {
		for x := x0; x < x0+ww; x++ {
			da := a[y*w+x] - ma
			db := b[y*w+x] - mb
			va += da * da
			vb += db * db
			cov += da * db
		}
	}
	va /= n - 1
	vb /= n - 1
	cov /= n - 1
	return ((2*ma*mb + ssimC1) * (2*cov + ssimC2)) /
		((ma*ma + mb*mb + ssimC1) * (va + vb + ssimC2))
}

// Stats summarizes a series of per-frame metric values.
type Stats struct {
	Mean, Min, Max, StdDev float64
	N                      int
}

// Summarize computes summary statistics over vals, ignoring +Inf entries
// (identical frames under PSNR).
func Summarize(vals []float64) Stats {
	var s Stats
	var sum, sumsq float64
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, v := range vals {
		if math.IsInf(v, 1) {
			continue
		}
		sum += v
		sumsq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.N++
	}
	if s.N == 0 {
		return Stats{}
	}
	s.Mean = sum / float64(s.N)
	variance := sumsq/float64(s.N) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	return s
}
