package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcsr/internal/video"
)

func noisyCopy(rng *rand.Rand, f *video.RGB, sigma float64) *video.RGB {
	out := f.Clone()
	for i := range out.Pix {
		v := float64(out.Pix[i]) + rng.NormFloat64()*sigma
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Pix[i] = uint8(v)
	}
	return out
}

func testImage(rng *rand.Rand, w, h int) *video.RGB {
	f := video.NewRGB(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, uint8(3*x+rng.Intn(30)), uint8(2*y+rng.Intn(30)), uint8(x+y))
		}
	}
	return f
}

func TestPSNRIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := testImage(rng, 32, 24)
	if !math.IsInf(PSNR(f, f), 1) {
		t.Fatal("PSNR of identical frames must be +Inf")
	}
	y := f.ToYUV()
	if !math.IsInf(PSNRYUV(y, y), 1) {
		t.Fatal("PSNRYUV of identical frames must be +Inf")
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := video.NewRGB(8, 8)
	b := video.NewRGB(8, 8)
	for i := range b.Pix {
		b.Pix[i] = 10 // uniform error of 10 → MSE 100
	}
	want := 10 * math.Log10(255*255/100.0)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
}

func TestPSNRMonotoneInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := testImage(rng, 48, 32)
	prev := math.Inf(1)
	for _, sigma := range []float64{1, 4, 16, 40} {
		p := PSNR(f, noisyCopy(rng, f, sigma))
		if p >= prev {
			t.Fatalf("PSNR %.2f at σ=%v not below %.2f", p, sigma, prev)
		}
		prev = p
	}
}

func TestSSIMProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := testImage(rng, 64, 48)
	if s := SSIM(f, f); math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM(x,x) = %v, want 1", s)
	}
	sLow := SSIM(f, noisyCopy(rng, f, 30))
	sHigh := SSIM(f, noisyCopy(rng, f, 5))
	if !(sLow < sHigh && sHigh < 1) {
		t.Fatalf("SSIM ordering violated: noisy=%.4f mild=%.4f", sLow, sHigh)
	}
	if sLow < -1 || sLow > 1 {
		t.Fatalf("SSIM out of range: %v", sLow)
	}
}

func TestSSIMSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := testImage(rng, 24, 16)
		b := noisyCopy(rng, a, 12)
		return math.Abs(SSIM(a, b)-SSIM(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSSIMYUVAgreesWithRGBOnGray(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := video.NewRGB(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := uint8(rng.Intn(256))
			a.Set(x, y, v, v, v)
		}
	}
	b := noisyCopy(rng, a, 10)
	sRGB := SSIM(a, b)
	sYUV := SSIMYUV(a.ToYUV(), b.ToYUV())
	if math.Abs(sRGB-sYUV) > 0.1 {
		t.Fatalf("gray SSIM mismatch: RGB %.4f vs YUV %.4f", sRGB, sYUV)
	}
}

func TestSSIMTinyFrame(t *testing.T) {
	a := video.NewRGB(4, 4)
	if s := SSIM(a, a); math.Abs(s-1) > 1e-9 {
		t.Fatalf("tiny-frame SSIM(x,x) = %v", s)
	}
}

func TestMetricDimensionMismatchPanics(t *testing.T) {
	a := video.NewRGB(8, 8)
	b := video.NewRGB(16, 8)
	for name, fn := range map[string]func(){
		"PSNR": func() { PSNR(a, b) },
		"SSIM": func() { SSIM(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatched dims", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30})
	if s.Mean != 20 || s.Min != 10 || s.Max != 30 || s.N != 3 {
		t.Fatalf("bad stats %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(200.0/3.0)) > 1e-9 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	// +Inf entries (identical frames) are ignored.
	s2 := Summarize([]float64{10, math.Inf(1), 30})
	if s2.N != 2 || s2.Mean != 20 {
		t.Fatalf("Inf not ignored: %+v", s2)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summarize %+v", z)
	}
}
