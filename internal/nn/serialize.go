package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Weight serialization format: every parameter is written as its element
// count (uint32) followed by the raw float32 values, little-endian, after a
// 4-byte magic and a uint32 parameter count. The format is position-based:
// loading requires a model with an identical parameter layout, which is how
// dcSR ships micro-model weights alongside video segments (the client knows
// each model's architecture from the stream manifest).

var weightsMagic = [4]byte{'d', 'c', 'W', '1'}

// SaveWeights writes every parameter in ps to w.
func SaveWeights(w io.Writer, ps []*Param) error {
	if _, err := w.Write(weightsMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ps))); err != nil {
		return err
	}
	for _, p := range ps {
		if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Len())); err != nil {
			return err
		}
		buf := make([]byte, 4*p.W.Len())
		for i, v := range p.W.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadWeights reads parameters previously written by SaveWeights into ps.
// The parameter count and per-parameter sizes must match exactly.
func LoadWeights(r io.Reader, ps []*Param) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	if magic != weightsMagic {
		return fmt.Errorf("nn: bad weights magic %q", magic[:])
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(ps) {
		return fmt.Errorf("nn: weights hold %d params, model has %d", count, len(ps))
	}
	for _, p := range ps {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != p.W.Len() {
			return fmt.Errorf("nn: param %q size mismatch: file %d, model %d", p.Name, n, p.W.Len())
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range p.W.Data {
			p.W.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}

// WeightsSize returns the exact number of bytes SaveWeights would emit for
// ps. This is the "model download size" used throughout the bandwidth
// experiments (paper Table 1 and Fig 10).
func WeightsSize(ps []*Param) int {
	n := 4 + 4 // magic + count
	for _, p := range ps {
		n += 4 + 4*p.W.Len()
	}
	return n
}

// EncodeWeights serializes ps to a byte slice.
func EncodeWeights(ps []*Param) []byte {
	var buf bytes.Buffer
	buf.Grow(WeightsSize(ps))
	if err := SaveWeights(&buf, ps); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}

// CopyWeights copies parameter values from src into dst. Layouts must match.
func CopyWeights(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyWeights param count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if dst[i].W.Len() != src[i].W.Len() {
			return fmt.Errorf("nn: CopyWeights param %d size mismatch", i)
		}
		copy(dst[i].W.Data, src[i].W.Data)
	}
	return nil
}
