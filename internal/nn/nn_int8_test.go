package nn

import (
	"math"
	"math/rand"
	"testing"

	"dcsr/internal/tensor"
)

// calibrateOn runs one float32 inference pass in calibration mode so the
// conv records its activation range, then quantizes.
func calibrateOn(c *Conv2D, x *tensor.Tensor) {
	c.BeginCalibration()
	c.ForwardInference(x.Clone())
	c.EndCalibration()
	c.QuantizeInt8()
}

func TestConv2DCalibrationRecordsMaxAbs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 2, 3, 3, 1, 1)
	x1 := tensor.New(1, 2, 4, 4)
	x1.Randn(rng, 1)
	x2 := tensor.New(1, 2, 4, 4)
	x2.Randn(rng, 3)
	c.BeginCalibration()
	c.ForwardInference(x1)
	c.ForwardInferenceReLU(x2)
	c.EndCalibration()
	want := x1.MaxAbs()
	if m := x2.MaxAbs(); m > want {
		want = m
	}
	if got := c.ActMax(); got != want {
		t.Fatalf("ActMax = %v, want %v", got, want)
	}
	// Out of calibration mode the range must not move.
	x3 := tensor.New(1, 2, 4, 4)
	x3.Fill(1e6)
	c.ForwardInference(x3)
	if got := c.ActMax(); got != want {
		t.Fatalf("ActMax moved outside calibration: %v, want %v", got, want)
	}
}

// TestConv2DInt8TracksFloat32 bounds the int8 path's deviation from the
// float32 path by the analytic quantization error: with input step
// actMax/127 and per-channel weight step wScale, each of the InC·K·K
// accumulated terms errs by at most half a step on each operand.
func TestConv2DInt8TracksFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, relu := range []bool{false, true} {
		c := NewConv2D(rng, 3, 5, 3, 1, 1)
		x := tensor.New(2, 3, 8, 7)
		x.Randn(rng, 1)
		calibrateOn(c, x)
		want := c.ForwardInference(x.Clone()).Clone()
		var got *tensor.Tensor
		if relu {
			// Compare against a separate ReLU pass over the float32 out.
			for i, v := range want.Data {
				if v < 0 {
					want.Data[i] = 0
				}
			}
			got = c.ForwardInferenceInt8ReLU(x.Clone())
		} else {
			got = c.ForwardInferenceInt8(x.Clone())
		}
		colRows := c.Spec.InC * c.Spec.K * c.Spec.K
		tol := float64(colRows) * float64(c.Wt.W.MaxAbs()) * float64(c.ActMax()) / 100
		for i := range got.Data {
			if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > tol {
				t.Fatalf("relu=%v: element %d off by %v (tol %v): int8 %v, f32 %v",
					relu, i, d, tol, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestConv2DInt8Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D(rng, 4, 4, 3, 1, 1)
	x := tensor.New(1, 4, 9, 11)
	x.Randn(rng, 1)
	calibrateOn(c, x)
	first := c.ForwardInferenceInt8(x.Clone()).Clone()
	for pass := 0; pass < 2; pass++ {
		got := c.ForwardInferenceInt8(x.Clone())
		for i := range got.Data {
			if got.Data[i] != first.Data[i] {
				t.Fatalf("pass %d: element %d not bit-identical", pass, i)
			}
		}
	}
}

func TestConv2DInt8PanicsBeforeQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2D(rng, 1, 1, 3, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("int8 inference before QuantizeInt8 did not panic")
		}
	}()
	x := tensor.New(1, 1, 3, 3)
	c.ForwardInferenceInt8(x)
}

// TestSequentialInt8FallsBackPerLayer checks that a stack with one
// quantized and one unquantized conv runs the former on int8 and the
// latter on the bit-exact float32 path.
func TestSequentialInt8FallsBackPerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := &Sequential{Layers: []Layer{
		NewConv2D(rng, 2, 6, 3, 1, 1),
		&ReLU{},
		NewResBlock(rng, 6, 0.5),
		NewConv2D(rng, 6, 4, 3, 1, 1),
		&PixelShuffle{R: 2},
	}}
	x := tensor.New(1, 2, 6, 5)
	x.Randn(rng, 1)
	if seq.Int8Ready() {
		t.Fatal("Int8Ready before any quantization")
	}
	// Nothing quantized: the int8 entry point must reproduce the float32
	// path exactly.
	want := seq.ForwardInference(x.Clone()).Clone()
	got := seq.ForwardInferenceInt8(x.Clone())
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("unquantized fallback not bit-exact at %d", i)
		}
	}
	// Quantize everything: calibrate every conv in one stack-wide pass
	// (each records its own layer input), then build the int8 states.
	var convs []*Conv2D
	for _, l := range seq.Layers {
		switch v := l.(type) {
		case *Conv2D:
			convs = append(convs, v)
		case *ResBlock:
			convs = append(convs, v.Conv1, v.Conv2)
		}
	}
	for _, c := range convs {
		c.BeginCalibration()
	}
	seq.ForwardInference(x.Clone())
	for _, c := range convs {
		c.EndCalibration()
		c.QuantizeInt8()
	}
	if !seq.Int8Ready() {
		t.Fatal("Int8Ready false after quantizing every conv")
	}
	want = seq.ForwardInference(x.Clone()).Clone()
	got = seq.ForwardInferenceInt8(x.Clone())
	var maxDiff float64
	for i := range got.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.5 {
		t.Fatalf("quantized stack drifted %v from float32", maxDiff)
	}
}

func TestQuantizeRowInt8(t *testing.T) {
	// Zero rows get scale 1 (the dcW3 convention) and all-zero codes.
	dst := make([]int8, 4)
	if s := quantizeRowInt8(make([]float32, 4), dst); s != 1 {
		t.Fatalf("zero-row scale = %v, want 1", s)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("zero row quantized to nonzero")
		}
	}
	// Max element maps to exactly ±127.
	row := []float32{0.5, -2, 1}
	s := quantizeRowInt8(row, dst[:3])
	if s != 2.0/127 {
		t.Fatalf("scale = %v, want %v", s, 2.0/127)
	}
	if dst[1] != -127 {
		t.Fatalf("max element quantized to %d, want -127", dst[1])
	}
}
