package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"dcsr/internal/tensor"
)

// numericalGradCheck verifies that the analytic gradient of a scalar loss
// matches central finite differences for both inputs and parameters.
func numericalGradCheck(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	loss := func() float64 {
		out := layer.Forward(x.Clone())
		var s float64
		for _, v := range out.Data {
			s += float64(v) * float64(v)
		}
		return s
	}
	// Analytic pass.
	out := layer.Forward(x.Clone())
	gy := tensor.New(out.Shape...)
	for i, v := range out.Data {
		gy.Data[i] = 2 * v
	}
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	gx := layer.Backward(gy)

	const eps = 1e-3
	checkOne := func(name string, data []float32, grad []float32, idx int) {
		orig := data[idx]
		data[idx] = orig + eps
		lp := loss()
		data[idx] = orig - eps
		lm := loss()
		data[idx] = orig
		num := (lp - lm) / (2 * eps)
		got := float64(grad[idx])
		denom := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
		if math.Abs(num-got)/denom > tol {
			t.Errorf("%s[%d]: analytic %g vs numeric %g", name, idx, got, num)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < 12; k++ {
		checkOne("input", x.Data, gx.Data, rng.Intn(len(x.Data)))
	}
	for _, p := range layer.Params() {
		for k := 0; k < 8; k++ {
			checkOne(p.Name, p.W.Data, p.Grad.Data, rng.Intn(p.W.Len()))
		}
	}
}

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	x.Randn(rng, 0.5)
	return x
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 2, 3, 3, 1, 1)
	numericalGradCheck(t, conv, randTensor(rng, 2, 2, 5, 5), 1e-2)
}

func TestConv2DStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(rng, 1, 2, 3, 2, 1)
	numericalGradCheck(t, conv, randTensor(rng, 1, 1, 6, 6), 1e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	numericalGradCheck(t, &ReLU{}, randTensor(rng, 1, 2, 4, 4), 1e-2)
}

func TestResBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	blk := NewResBlock(rng, 3, 1.0)
	numericalGradCheck(t, blk, randTensor(rng, 1, 3, 4, 4), 1e-2)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(rng, 6, 4)
	numericalGradCheck(t, d, randTensor(rng, 3, 6), 1e-2)
}

func TestPixelShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := &PixelShuffle{R: 2}
	x := randTensor(rng, 1, 8, 3, 3)
	out := ps.Forward(x)
	if out.Shape[1] != 2 || out.Shape[2] != 6 || out.Shape[3] != 6 {
		t.Fatalf("PixelShuffle output shape %v", out.Shape)
	}
	// Backward of forward output must reproduce the input exactly
	// (pixel shuffle is a permutation).
	back := ps.Backward(out)
	for i := range x.Data {
		if x.Data[i] != back.Data[i] {
			t.Fatalf("PixelShuffle backward not the exact inverse at %d", i)
		}
	}
	// Energy conservation under permutation.
	if math.Abs(x.SumSquares()-out.SumSquares()) > 1e-6 {
		t.Fatal("PixelShuffle changed tensor energy")
	}
}

func TestPixelShufflePlacement(t *testing.T) {
	// Channel (dy*r+dx) of a 1-output-channel shuffle must land at spatial
	// offset (dy, dx).
	x := tensor.New(1, 4, 2, 2)
	for c := 0; c < 4; c++ {
		for i := 0; i < 4; i++ {
			x.Data[c*4+i] = float32(c + 1)
		}
	}
	ps := &PixelShuffle{R: 2}
	out := ps.Forward(x)
	want := [][]float32{
		{1, 2, 1, 2},
		{3, 4, 3, 4},
		{1, 2, 1, 2},
		{3, 4, 3, 4},
	}
	for y := 0; y < 4; y++ {
		for xx := 0; xx < 4; xx++ {
			if out.Data[y*4+xx] != want[y][xx] {
				t.Fatalf("out[%d][%d] = %v, want %v", y, xx, out.Data[y*4+xx], want[y][xx])
			}
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	target := tensor.FromSlice([]float32{1, 2, 3, 6}, 4)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-1.0) > 1e-9 {
		t.Fatalf("loss = %g, want 1", loss)
	}
	wantGrad := []float32{0, 0, 0, -1} // 2*(4-6)/4
	for i, g := range grad.Data {
		if math.Abs(float64(g-wantGrad[i])) > 1e-6 {
			t.Fatalf("grad[%d] = %g, want %g", i, g, wantGrad[i])
		}
	}
}

func TestSGDConvergesOnLinearFit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(rng, 2, 1)
	opt := NewSGD(0.05, 0.9)
	// Target function y = 3x0 − 2x1 + 0.5.
	for step := 0; step < 500; step++ {
		x := randTensor(rng, 8, 2)
		y := tensor.New(8, 1)
		for i := 0; i < 8; i++ {
			y.Data[i] = 3*x.Data[i*2] - 2*x.Data[i*2+1] + 0.5
		}
		ZeroGrads(d.Params())
		pred := d.Forward(x)
		_, grad := MSELoss(pred, y)
		d.Backward(grad)
		opt.Step(d.Params())
	}
	if math.Abs(float64(d.Wt.W.Data[0])-3) > 0.05 ||
		math.Abs(float64(d.Wt.W.Data[1])+2) > 0.05 ||
		math.Abs(float64(d.Bias.W.Data[0])-0.5) > 0.05 {
		t.Fatalf("SGD did not converge: w=%v b=%v", d.Wt.W.Data, d.Bias.W.Data)
	}
}

func TestAdamConvergesFasterThanSGDOnIllConditioned(t *testing.T) {
	run := func(opt Optimizer) float64 {
		rng := rand.New(rand.NewSource(8))
		d := NewDense(rng, 2, 1)
		var last float64
		for step := 0; step < 100; step++ {
			x := tensor.New(8, 2)
			y := tensor.New(8, 1)
			for i := 0; i < 8; i++ {
				// Ill-conditioned inputs: second feature is tiny.
				x.Data[i*2] = float32(rng.NormFloat64())
				x.Data[i*2+1] = float32(rng.NormFloat64() * 0.01)
				y.Data[i] = x.Data[i*2] + 100*x.Data[i*2+1]
			}
			ZeroGrads(d.Params())
			pred := d.Forward(x)
			loss, grad := MSELoss(pred, y)
			d.Backward(grad)
			opt.Step(d.Params())
			last = loss
		}
		return last
	}
	sgd := run(NewSGD(0.05, 0))
	adam := run(NewAdam(0.05))
	if adam >= sgd {
		t.Fatalf("Adam final loss %g not better than SGD %g on ill-conditioned problem", adam, sgd)
	}
}

func TestAdamGradClip(t *testing.T) {
	p := &Param{Name: "p", W: tensor.FromSlice([]float32{0}, 1), Grad: tensor.FromSlice([]float32{1e6}, 1)}
	opt := NewAdam(0.1)
	opt.GradClip = 1
	opt.Step([]*Param{p})
	// With clipping, one step moves at most ~LR (Adam normalizes magnitude).
	if math.Abs(float64(p.W.Data[0])) > 0.11 {
		t.Fatalf("clipped Adam step moved %g", p.W.Data[0])
	}
}

func TestWeightsSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := &Sequential{Layers: []Layer{NewConv2D(rng, 3, 4, 3, 1, 1), &ReLU{}, NewConv2D(rng, 4, 3, 3, 1, 1)}}
	dst := &Sequential{Layers: []Layer{NewConv2D(rng, 3, 4, 3, 1, 1), &ReLU{}, NewConv2D(rng, 4, 3, 3, 1, 1)}}
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != WeightsSize(src.Params()) {
		t.Fatalf("serialized %d bytes, WeightsSize says %d", buf.Len(), WeightsSize(src.Params()))
	}
	if err := LoadWeights(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := randTensor(rng, 1, 3, 5, 5)
	a := src.Forward(x.Clone())
	b := dst.Forward(x.Clone())
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model disagrees with source model")
		}
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewConv2D(rng, 3, 4, 3, 1, 1)
	other := NewConv2D(rng, 3, 5, 3, 1, 1)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, other.Params()); err == nil {
		t.Fatal("LoadWeights accepted mismatched layout")
	}
	if err := LoadWeights(bytes.NewReader([]byte("garbage....")), src.Params()); err == nil {
		t.Fatal("LoadWeights accepted garbage")
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := &Sequential{Layers: []Layer{
		NewConv2D(rng, 1, 2, 3, 1, 1),
		&ReLU{},
		NewConv2D(rng, 2, 1, 3, 1, 1),
	}}
	numericalGradCheck(t, seq, randTensor(rng, 1, 1, 4, 4), 1e-2)
	if got := len(seq.Params()); got != 4 {
		t.Fatalf("Sequential.Params() returned %d params, want 4", got)
	}
}

func TestNumParamsConv(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewConv2D(rng, 3, 16, 3, 1, 1)
	want := 16*3*3*3 + 16
	if got := NumParams(c.Params()); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}
