package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float32
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param][]float32)}
}

// Step applies one SGD update to every parameter.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i, g := range p.Grad.Data {
				p.W.Data[i] -= float32(o.LR) * g
			}
			continue
		}
		v, ok := o.vel[p]
		if !ok {
			v = make([]float32, p.W.Len())
			o.vel[p] = v
		}
		m := float32(o.Momentum)
		lr := float32(o.LR)
		for i, g := range p.Grad.Data {
			v[i] = m*v[i] - lr*g
			p.W.Data[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). EDSR and the VAE are
// both trained with Adam in the paper's reference implementation.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	t        int
	m, v     map[*Param][]float32
	GradClip float64 // if > 0, clip each gradient element to ±GradClip
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float32), v: make(map[*Param][]float32),
	}
}

// Step applies one Adam update to every parameter.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float32, p.W.Len())
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = make([]float32, p.W.Len())
			o.v[p] = v
		}
		b1, b2 := float32(o.Beta1), float32(o.Beta2)
		clip := float32(o.GradClip)
		for i, g := range p.Grad.Data {
			if clip > 0 {
				if g > clip {
					g = clip
				} else if g < -clip {
					g = -clip
				}
			}
			m[i] = b1*m[i] + (1-b1)*g
			v[i] = b2*v[i] + (1-b2)*g*g
			mh := float64(m[i]) / bc1
			vh := float64(v[i]) / bc2
			p.W.Data[i] -= float32(o.LR * mh / (math.Sqrt(vh) + o.Eps))
		}
	}
}
