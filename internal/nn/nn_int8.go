package nn

import (
	"math"

	"dcsr/internal/tensor"
)

// Int8 inference path. Quantized inference mirrors the float32
// ForwardInference contract layer for layer: no grad state, layer-owned
// output buffers (shared with the float32 path — the two paths must not
// be interleaved mid-pass), zero steady-state allocations. The scheme is
// symmetric linear quantization with per-output-channel weight scales
// and one calibrated per-layer activation scale:
//
//	x_q = round(x · 127/actMax)          (per layer, calibrated)
//	w_q[oc] = round(w / wScale[oc])      (per output channel)
//	out = (Σ x_q·w_q) · wScale[oc]·actMax/127 + bias
//
// Calibration records each conv input's max absolute value while the
// float32 path runs over representative frames — for dcSR that is a
// handful of the cluster's own training frames, which is exactly the
// distribution the model will see (the data-centric premise). Layers
// without arithmetic of their own (ReLU, PixelShuffle) run their float32
// code on the requantized activations, so the int8 graph is the float32
// graph with only the convolutions swapped.

// Int8Layer is implemented by layers that can run on the quantized
// inference path. ForwardInferenceInt8 follows the ForwardInference
// contract (layer-owned output, no grad state, input may be modified);
// Int8Ready reports whether the layer has been calibrated and quantized.
type Int8Layer interface {
	Layer
	ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor
	Int8Ready() bool
}

// conv2DInt8 is the quantized execution state of a Conv2D, built by
// QuantizeInt8 and owned by the layer.
type conv2DInt8 struct {
	w      []int8    // (OutC, InC·K·K) per-channel quantized weights
	scales []float32 // per-output-channel requantization multiplier
	inInv  float32   // input quantization multiplier 127/actMax
	qin    []int8    // reusable quantized-input buffer
}

// BeginCalibration puts the convolution into calibration mode: until
// EndCalibration, every ForwardInference observes its input's max
// absolute value into the layer's activation range.
func (c *Conv2D) BeginCalibration() {
	c.calibrating = true
	c.actMax = 0
	c.int8 = nil
}

// EndCalibration leaves calibration mode, freezing the observed
// activation range.
func (c *Conv2D) EndCalibration() { c.calibrating = false }

// ActMax returns the calibrated input activation range (0 before any
// calibration pass has run).
func (c *Conv2D) ActMax() float32 { return c.actMax }

// SetActMax installs a previously calibrated activation range, e.g. one
// restored from a serving manifest, so QuantizeInt8 can rebuild the
// int8 state without rerunning calibration frames.
func (c *Conv2D) SetActMax(m float32) { c.actMax = m }

// Int8Ready reports whether QuantizeInt8 has built the quantized state.
func (c *Conv2D) Int8Ready() bool { return c.int8 != nil }

// QuantizeInt8 builds the layer's int8 inference state from the current
// weights and the calibrated activation range. Weights are quantized
// per output channel (each flattened InC·K·K row gets its own symmetric
// scale); the per-channel requantization multiplier folds the weight
// and activation scales so the kernel epilogue is a single multiply.
// Must be called again after any weight update.
func (c *Conv2D) QuantizeInt8() {
	colRows := c.Spec.InC * c.Spec.K * c.Spec.K
	q := &conv2DInt8{
		w:      make([]int8, c.Spec.OutC*colRows),
		scales: make([]float32, c.Spec.OutC),
	}
	actScale := c.actMax / 127
	if c.actMax > 0 {
		q.inInv = 127 / c.actMax
	}
	for oc := 0; oc < c.Spec.OutC; oc++ {
		row := c.Wt.W.Data[oc*colRows : (oc+1)*colRows]
		wScale := quantizeRowInt8(row, q.w[oc*colRows:(oc+1)*colRows])
		q.scales[oc] = wScale * actScale
	}
	c.int8 = q
}

// ForwardInferenceInt8 runs the convolution on the int8 kernel path:
// quantize the input with the calibrated scale, int8×int8 → int32
// accumulate, requantize + bias in the epilogue.
func (c *Conv2D) ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor {
	return c.forwardInt8(x, false)
}

// ForwardInferenceInt8ReLU is ForwardInferenceInt8 with ReLU fused into
// the kernel epilogue.
func (c *Conv2D) ForwardInferenceInt8ReLU(x *tensor.Tensor) *tensor.Tensor {
	return c.forwardInt8(x, true)
}

func (c *Conv2D) forwardInt8(x *tensor.Tensor, relu bool) *tensor.Tensor {
	q := c.int8
	if q == nil {
		panic("nn: Conv2D int8 inference before QuantizeInt8")
	}
	if cap(q.qin) < x.Len() {
		q.qin = make([]int8, x.Len())
	}
	qin := q.qin[:x.Len()]
	tensor.QuantizeInt8Into(qin, x.Data, q.inInv)
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	c.out = tensor.Conv2DInferInt8(qin, n, c.Spec.InC, h, w, q.w, q.scales, c.Bias.W.Data, c.Spec, relu, c.out)
	return c.out
}

// ForwardInferenceInt8 for ReLU is the float32 code: activations on the
// int8 path are already requantized to float32 between layers.
func (r *ReLU) ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor {
	return r.ForwardInference(x)
}

// Int8Ready reports true; ReLU has no quantized state.
func (r *ReLU) Int8Ready() bool { return true }

// ForwardInferenceInt8 for PixelShuffle is the float32 rearrangement.
func (p *PixelShuffle) ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor {
	return p.ForwardInference(x)
}

// Int8Ready reports true; PixelShuffle has no quantized state.
func (p *PixelShuffle) Int8Ready() bool { return true }

// ForwardInferenceInt8 runs the residual block with both convolutions on
// the int8 path (the first with fused ReLU) and the residual add in
// float32, mirroring ForwardInference exactly.
func (b *ResBlock) ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor {
	h := b.Conv1.ForwardInferenceInt8ReLU(x)
	h = b.Conv2.ForwardInferenceInt8(h)
	b.out = tensor.Ensure(b.out, x.Shape...)
	for i, v := range h.Data {
		b.out.Data[i] = x.Data[i] + b.ResScale*v
	}
	return b.out
}

// Int8Ready reports whether both convolutions are quantized.
func (b *ResBlock) Int8Ready() bool {
	return b.Conv1.Int8Ready() && b.Conv2.Int8Ready()
}

// ForwardInferenceInt8 runs each layer on its int8 path when available
// and quantized, falling back to float32 per layer otherwise.
func (s *Sequential) ForwardInferenceInt8(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		if il, ok := l.(Int8Layer); ok && il.Int8Ready() {
			x = il.ForwardInferenceInt8(x)
		} else {
			x = l.ForwardInference(x)
		}
	}
	return x
}

// Int8Ready reports whether every layer that has a quantized form is
// ready (layers without one fall back to float32 and don't block).
func (s *Sequential) Int8Ready() bool {
	for _, l := range s.Layers {
		if c, ok := l.(*Conv2D); ok && !c.Int8Ready() {
			return false
		}
	}
	return true
}

// quantizeRowInt8 symmetrically quantizes row into dst and returns the
// scale: maxabs/127, or 1 for an all-zero row — the same convention as
// the dcW3 wire format, so wire and inference quantization agree
// bit-for-bit on identical inputs.
func quantizeRowInt8(row []float32, dst []int8) float32 {
	var maxAbs float32
	for _, v := range row {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	for i, v := range row {
		q := math.Round(float64(v / scale))
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}
