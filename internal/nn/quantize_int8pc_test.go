package nn

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"dcsr/internal/tensor"
)

func TestQuantizedRoundTripInt8PC(t *testing.T) {
	src := quantModel(t, 9)
	dst := quantModel(t, 10)
	data := EncodeWeightsQuantized(src.Params(), QuantInt8PC)
	if len(data) != QuantizedSize(src.Params(), QuantInt8PC) {
		t.Fatalf("encoded %d bytes, QuantizedSize says %d", len(data), QuantizedSize(src.Params(), QuantInt8PC))
	}
	if err := LoadWeightsAny(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	// Per-channel: each value errs by at most half of its own channel's
	// quantization step, a strictly tighter bound than per-tensor.
	for i, p := range src.Params() {
		sc := scaleCount(p)
		rowLen := p.W.Len() / sc
		for ch := 0; ch < sc; ch++ {
			row := p.W.Data[ch*rowLen : (ch+1)*rowLen]
			var maxAbs float64
			for _, v := range row {
				if a := math.Abs(float64(v)); a > maxAbs {
					maxAbs = a
				}
			}
			step := maxAbs / 127
			for j, v := range row {
				got := dst.Params()[i].W.Data[ch*rowLen+j]
				if math.Abs(float64(got-v)) > step/2+1e-7 {
					t.Fatalf("param %d ch %d[%d]: %v -> %v exceeds half a channel step %v",
						i, ch, j, v, got, step)
				}
			}
		}
	}
}

// TestInt8PCMatchesInferenceQuant pins the contract that makes dcW4 the
// wire twin of the inference path: decoding then re-quantizing with
// quantizeRowInt8 reproduces the exact codes and scales that were
// serialized.
func TestInt8PCMatchesInferenceQuant(t *testing.T) {
	src := quantModel(t, 11)
	dst := quantModel(t, 12)
	data := EncodeWeightsQuantized(src.Params(), QuantInt8PC)
	if err := LoadWeightsAny(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		sc := scaleCount(p)
		rowLen := p.W.Len() / sc
		orig := make([]int8, rowLen)
		redec := make([]int8, rowLen)
		for ch := 0; ch < sc; ch++ {
			s1 := quantizeRowInt8(p.W.Data[ch*rowLen:(ch+1)*rowLen], orig)
			s2 := quantizeRowInt8(dst.Params()[i].W.Data[ch*rowLen:(ch+1)*rowLen], redec)
			if s1 != s2 {
				t.Fatalf("param %d ch %d: scale drifted %v -> %v through the wire", i, ch, s1, s2)
			}
			for j := range orig {
				if orig[j] != redec[j] {
					t.Fatalf("param %d ch %d[%d]: code drifted %d -> %d", i, ch, j, orig[j], redec[j])
				}
			}
		}
	}
}

// TestInt8PCBeatsPerTensorOnSkewedChannels builds a weight whose
// channels differ in magnitude by 100×; per-tensor quantization crushes
// the small channel, per-channel keeps it.
func TestInt8PCBeatsPerTensorOnSkewedChannels(t *testing.T) {
	p := &Param{Name: "w", W: tensor.New(2, 8), Grad: tensor.New(2, 8)}
	for j := 0; j < 8; j++ {
		p.W.Data[j] = 100 * (float32(j) - 3.5) / 3.5
		p.W.Data[8+j] = (float32(j) - 3.5) / 3.5
	}
	decode := func(q Quantization) []float32 {
		dst := &Param{Name: "w", W: tensor.New(2, 8), Grad: tensor.New(2, 8)}
		data := EncodeWeightsQuantized([]*Param{p}, q)
		if err := LoadWeightsAny(bytes.NewReader(data), []*Param{dst}); err != nil {
			t.Fatal(err)
		}
		return dst.W.Data
	}
	rms := func(got []float32) float64 {
		var sum float64
		for j := 8; j < 16; j++ {
			d := float64(got[j] - p.W.Data[j])
			sum += d * d
		}
		return math.Sqrt(sum / 8)
	}
	perTensor := rms(decode(QuantInt8))
	perChannel := rms(decode(QuantInt8PC))
	if perChannel*10 > perTensor {
		t.Fatalf("per-channel rms %v not ≪ per-tensor rms %v on skewed channels", perChannel, perTensor)
	}
}

// TestInt8PCLegacyDecode checks dcW3 streams still decode after the
// dcW4 addition (stacked-format compatibility).
func TestInt8PCLegacyDecode(t *testing.T) {
	src := quantModel(t, 13)
	dst := quantModel(t, 14)
	data := EncodeWeightsQuantized(src.Params(), QuantInt8)
	if data[3] != '3' {
		t.Fatalf("dcW3 magic changed: %q", data[:4])
	}
	if err := LoadWeightsAny(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatalf("legacy dcW3 decode failed: %v", err)
	}
}

func TestInt8PCRejectsBadStreams(t *testing.T) {
	ps := quantModel(t, 15).Params()
	data := EncodeWeightsQuantized(ps, QuantInt8PC)
	if err := LoadWeightsAny(bytes.NewReader(data[:len(data)-3]), ps); err == nil {
		t.Fatal("truncated dcW4 stream accepted")
	}
	// A zero scale count divides nothing evenly and must be rejected.
	var buf bytes.Buffer
	buf.Write([]byte("dcW4"))
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	binary.Write(&buf, binary.LittleEndian, uint32(ps[0].W.Len()))
	binary.Write(&buf, binary.LittleEndian, uint32(0))
	if err := LoadWeightsAny(bytes.NewReader(buf.Bytes()), ps[:1]); err == nil {
		t.Fatal("zero scale count accepted")
	}
}

func TestQuantizedSizeOrderingInt8PC(t *testing.T) {
	ps := quantModel(t, 16).Params()
	int8s := QuantizedSize(ps, QuantInt8)
	int8pc := QuantizedSize(ps, QuantInt8PC)
	fp16 := QuantizedSize(ps, QuantF16)
	if !(int8s < int8pc && int8pc < fp16) {
		t.Fatalf("size ordering violated: int8 %d, int8pc %d, fp16 %d", int8s, int8pc, fp16)
	}
}
