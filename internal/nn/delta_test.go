package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// Property-style coverage for the dcW5 delta codec: random models,
// zero-delta and adversarial near-duplicate weights, float32 and
// int8-processed weights, wrong-backbone rejection, and payload
// corruption. The central invariant is determinism: whatever weights the
// encoder's reconstruction implies, ApplyWeightsDelta reproduces them
// bit-identically on every decode.

func bitsEqual(a, b []*Param) bool {
	for i := range a {
		for j, v := range a[i].W.Data {
			if math.Float32bits(v) != math.Float32bits(b[i].W.Data[j]) {
				return false
			}
		}
	}
	return true
}

// TestDeltaRoundTripProperty: for random backbone/target pairs, the delta
// (a) beats the full dcW1 encoding, (b) applies deterministically —
// two independent decodes agree bit-for-bit — and (c) reconstructs each
// weight to within half its channel's residual quantization step.
func TestDeltaRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		backbone := quantModel(t, 100+seed)
		target := quantModel(t, 200+seed)
		delta, err := EncodeWeightsDelta(backbone.Params(), target.Params())
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		full := EncodeWeights(target.Params())
		if len(delta) >= len(full) {
			t.Fatalf("seed %d: delta %d B not smaller than full %d B", seed, len(delta), len(full))
		}
		dst1, dst2 := quantModel(t, 300+seed), quantModel(t, 400+seed)
		if err := ApplyWeightsDelta(backbone.Params(), delta, dst1.Params()); err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if err := ApplyWeightsDelta(backbone.Params(), delta, dst2.Params()); err != nil {
			t.Fatalf("seed %d: apply (second decode): %v", seed, err)
		}
		if !bitsEqual(dst1.Params(), dst2.Params()) {
			t.Fatalf("seed %d: two decodes disagree bit-for-bit", seed)
		}
		for i, p := range target.Params() {
			sc := scaleCount(p)
			rowLen := p.W.Len() / sc
			for ch := 0; ch < sc; ch++ {
				var maxAbs float64
				for j := ch * rowLen; j < (ch+1)*rowLen; j++ {
					r := math.Abs(float64(p.W.Data[j]) - float64(backbone.Params()[i].W.Data[j]))
					if r > maxAbs {
						maxAbs = r
					}
				}
				step := maxAbs / 127
				for j := ch * rowLen; j < (ch+1)*rowLen; j++ {
					got := dst1.Params()[i].W.Data[j]
					if math.Abs(float64(got-p.W.Data[j])) > step/2+1e-7 {
						t.Fatalf("seed %d param %d[%d]: %v -> %v exceeds half step %v",
							seed, i, j, p.W.Data[j], got, step)
					}
				}
			}
		}
	}
}

// TestDeltaZeroDelta: encoding a model against itself yields a near-empty
// sparse delta whose application reproduces the weights bit-exactly —
// including a planted negative zero, which x+0 arithmetic would destroy.
func TestDeltaZeroDelta(t *testing.T) {
	backbone := quantModel(t, 7)
	backbone.Params()[0].W.Data[0] = float32(math.Copysign(0, -1))
	target := quantModel(t, 8)
	if err := CopyWeights(target.Params(), backbone.Params()); err != nil {
		t.Fatal(err)
	}
	delta, err := EncodeWeightsDelta(backbone.Params(), target.Params())
	if err != nil {
		t.Fatal(err)
	}
	full := EncodeWeights(target.Params())
	if len(delta) >= len(full)/4 {
		t.Fatalf("zero delta is %d B, full %d B; expected a tiny payload", len(delta), len(full))
	}
	dst := quantModel(t, 9)
	if err := ApplyWeightsDelta(backbone.Params(), delta, dst.Params()); err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(dst.Params(), target.Params()) {
		t.Fatal("zero-delta reconstruction is not bit-identical")
	}
	if math.Signbit(float64(dst.Params()[0].W.Data[0])) != true {
		t.Fatal("negative zero did not survive the zero-delta round trip")
	}
}

// TestDeltaNearDuplicate: an adversarial near-duplicate — the backbone
// with a handful of perturbed weights — must pick the sparse encoding,
// shrink far below the dense form, and keep every untouched channel
// bit-exact (their residual scale is zero, so codes copy the backbone).
func TestDeltaNearDuplicate(t *testing.T) {
	backbone := quantModel(t, 20)
	target := quantModel(t, 21)
	if err := CopyWeights(target.Params(), backbone.Params()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	touched := map[[2]int]bool{}
	for k := 0; k < 5; k++ {
		pi := rng.Intn(len(target.Params()))
		j := rng.Intn(target.Params()[pi].W.Len())
		target.Params()[pi].W.Data[j] += 0.25
		touched[[2]int{pi, j}] = true
	}
	delta, err := EncodeWeightsDelta(backbone.Params(), target.Params())
	if err != nil {
		t.Fatal(err)
	}
	var elems int
	for _, p := range target.Params() {
		elems += p.W.Len()
	}
	// Dense code sections alone would cost `elems` bytes; a sparse
	// near-duplicate delta must undercut that.
	if len(delta) >= elems {
		t.Fatalf("near-duplicate delta is %d B for %d weights; sparse mode not engaged", len(delta), elems)
	}
	dst := quantModel(t, 23)
	if err := ApplyWeightsDelta(backbone.Params(), delta, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for pi, p := range dst.Params() {
		sc := scaleCount(p)
		rowLen := p.W.Len() / sc
		for j, v := range p.W.Data {
			if touched[[2]int{pi, j}] {
				continue
			}
			// Untouched weight: bit-exact unless it shares a channel with a
			// perturbed weight (then it is still within half a step).
			rowTouched := false
			for k := range touched {
				if k[0] == pi && k[1]/rowLen == j/rowLen {
					rowTouched = true
				}
			}
			if rowTouched {
				continue
			}
			if math.Float32bits(v) != math.Float32bits(backbone.Params()[pi].W.Data[j]) {
				t.Fatalf("untouched weight %d[%d] changed: %v -> %v", pi, j, backbone.Params()[pi].W.Data[j], v)
			}
		}
	}
}

// TestDeltaInt8Composition: dcW5 composes with the dcW3/dcW4 stack —
// weights that already went through per-channel int8 serialization
// (the int8-gated pipeline path) delta-encode and reconstruct
// deterministically, and the reconstruction re-serializes to dcW4
// identically on both sides of the wire.
func TestDeltaInt8Composition(t *testing.T) {
	backbone := quantModel(t, 30)
	target := quantModel(t, 31)
	for _, m := range []*Sequential{backbone, target} {
		data := EncodeWeightsQuantized(m.Params(), QuantInt8PC)
		if err := LoadWeightsAny(bytes.NewReader(data), m.Params()); err != nil {
			t.Fatal(err)
		}
	}
	delta, err := EncodeWeightsDelta(backbone.Params(), target.Params())
	if err != nil {
		t.Fatal(err)
	}
	origin, client := quantModel(t, 32), quantModel(t, 33)
	if err := ApplyWeightsDelta(backbone.Params(), delta, origin.Params()); err != nil {
		t.Fatal(err)
	}
	if err := ApplyWeightsDelta(backbone.Params(), delta, client.Params()); err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(origin.Params(), client.Params()) {
		t.Fatal("int8-processed weights reconstruct differently across decodes")
	}
	ow := EncodeWeightsQuantized(origin.Params(), QuantInt8PC)
	cw := EncodeWeightsQuantized(client.Params(), QuantInt8PC)
	if !bytes.Equal(ow, cw) {
		t.Fatal("dcW4 re-serialization of assembled weights differs between origin and client")
	}
}

// TestDeltaWrongBackbone: applying a delta against any backbone other
// than the one it was encoded for must fail the digest check up front.
func TestDeltaWrongBackbone(t *testing.T) {
	backbone := quantModel(t, 40)
	target := quantModel(t, 41)
	delta, err := EncodeWeightsDelta(backbone.Params(), target.Params())
	if err != nil {
		t.Fatal(err)
	}
	wrong := quantModel(t, 42)
	dst := quantModel(t, 43)
	if err := ApplyWeightsDelta(wrong.Params(), delta, dst.Params()); err == nil {
		t.Fatal("applying against the wrong backbone succeeded")
	}
	d, err := DeltaBackboneDigest(delta)
	if err != nil {
		t.Fatal(err)
	}
	var zero [DeltaDigestSize]byte
	if d == zero {
		t.Fatal("backbone digest is zero")
	}
}

// TestDeltaCorruptPayload: truncations and garbage must error, never
// panic or silently produce weights.
func TestDeltaCorruptPayload(t *testing.T) {
	backbone := quantModel(t, 50)
	target := quantModel(t, 51)
	delta, err := EncodeWeightsDelta(backbone.Params(), target.Params())
	if err != nil {
		t.Fatal(err)
	}
	dst := quantModel(t, 52)
	for _, n := range []int{0, 3, 4 + DeltaDigestSize, len(delta) / 2, len(delta) - 1} {
		if err := ApplyWeightsDelta(backbone.Params(), delta[:n], dst.Params()); err == nil {
			t.Fatalf("truncation to %d bytes applied cleanly", n)
		}
	}
	long := append(append([]byte{}, delta...), 0xFF)
	if err := ApplyWeightsDelta(backbone.Params(), long, dst.Params()); err == nil {
		t.Fatal("trailing garbage applied cleanly")
	}
	if err := LoadWeightsAny(bytes.NewReader(delta), dst.Params()); err == nil {
		t.Fatal("LoadWeightsAny accepted a dcW5 payload without a backbone")
	}
}
