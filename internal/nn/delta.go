package nn

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Delta weight format (dcW5). SRVC ships one lightweight model plus small
// updates instead of N independent models; dcSR's analogue represents every
// cluster model as a shared backbone plus a per-cluster residual. The dcW5
// payload carries (backbone digest, per-parameter int8-quantized residuals):
//
//	magic 'dcW5' (4 bytes)
//	backbone digest (32 bytes) — SHA-256 of the backbone's dcW1 encoding
//	param count (uint32)
//	per parameter:
//	  element count (uint32)
//	  scale count (uint32) — one per dim-0 slice for ≥2-dim params, else 1
//	  scales ([scale count]float32, little-endian)
//	  mode (byte) — 0 dense (one code byte per element),
//	                1 sparse (uint32 nonzero count, then uint32 index +
//	                int8 code per nonzero; chosen when strictly smaller)
//
// Residuals are quantized per channel like dcW4 (scale = maxabs/127), so a
// delta is ~4× smaller than the dcW1 full encoding even when every weight
// moved, and collapses to a few bytes per parameter when the models agree.
// The encoding is lossy with respect to the residual, deterministic with
// respect to the payload: ApplyWeightsDelta reconstructs
// backbone + scale×code in float32 (codes of 0 copy the backbone value
// bit-exactly), so delta applied to backbone reproduces the same weights on
// every decoder — the delta_encode pipeline stage makes that reconstruction
// the model's canonical weights, and clients assemble bit-identical models.

var magicDelta = [4]byte{'d', 'c', 'W', '5'}

// DeltaDigestSize is the length of the backbone digest embedded in a dcW5
// payload (SHA-256).
const DeltaDigestSize = sha256.Size

// DeltaBackboneDigest extracts the backbone digest a dcW5 payload was
// encoded against without decoding the residuals.
func DeltaBackboneDigest(delta []byte) ([DeltaDigestSize]byte, error) {
	var d [DeltaDigestSize]byte
	if len(delta) < 4+DeltaDigestSize || [4]byte(delta[:4]) != magicDelta {
		return d, fmt.Errorf("nn: not a dcW5 delta payload")
	}
	copy(d[:], delta[4:4+DeltaDigestSize])
	return d, nil
}

// reconstructDelta writes the canonical reconstruction of one channel into
// out: backbone plus the dequantized residual, computed in float32. A zero
// code (or zero scale) copies the backbone value without arithmetic, so
// untouched weights survive bit-exactly (including negative zero). Both the
// encoder and ApplyWeightsDelta go through this function, which is what
// makes the round trip exact by construction.
func reconstructDelta(out, backbone []float32, codes []int8, scale float32) {
	for i := range out {
		if codes[i] == 0 || scale == 0 {
			out[i] = backbone[i]
			continue
		}
		out[i] = backbone[i] + scale*float32(codes[i])
	}
}

// EncodeWeightsDelta encodes target as a dcW5 delta against backbone. The
// two parameter sets must share an identical layout. The delta embeds the
// SHA-256 of the backbone's dcW1 encoding so decoders can reject a
// mismatched backbone. Note the quantization is lossy: the weights the
// delta reproduces are the reconstruction backbone + scale×code, not the
// original target — callers that adopt the delta must also adopt the
// reconstruction (see ApplyWeightsDelta) as the model's canonical weights.
func EncodeWeightsDelta(backbone, target []*Param) ([]byte, error) {
	if len(backbone) != len(target) {
		return nil, fmt.Errorf("nn: delta param count mismatch %d vs %d", len(backbone), len(target))
	}
	var buf bytes.Buffer
	//lint:allow errcheck bytes.Buffer.Write is documented to always return a nil error
	buf.Write(magicDelta[:])
	digest := sha256.Sum256(EncodeWeights(backbone))
	//lint:allow errcheck bytes.Buffer.Write is documented to always return a nil error
	buf.Write(digest[:])
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(target))); err != nil {
		return nil, err
	}
	for pi, t := range target {
		b := backbone[pi]
		if b.W.Len() != t.W.Len() {
			return nil, fmt.Errorf("nn: delta param %d size mismatch: backbone %d, target %d", pi, b.W.Len(), t.W.Len())
		}
		n := t.W.Len()
		sc := scaleCount(t)
		if err := binary.Write(&buf, binary.LittleEndian, uint32(n)); err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint32(sc)); err != nil {
			return nil, err
		}
		rowLen := n / sc
		scales := make([]float32, sc)
		codes := make([]int8, n)
		nz := 0
		for ch := 0; ch < sc; ch++ {
			maxAbs := 0.0
			for i := ch * rowLen; i < (ch+1)*rowLen; i++ {
				r := math.Abs(float64(t.W.Data[i]) - float64(b.W.Data[i]))
				if r > maxAbs {
					maxAbs = r
				}
			}
			scale := float32(maxAbs / 127)
			scales[ch] = scale
			if scale == 0 {
				continue
			}
			for i := ch * rowLen; i < (ch+1)*rowLen; i++ {
				r := float64(t.W.Data[i]) - float64(b.W.Data[i])
				q := math.Round(r / float64(scale))
				if q > 127 {
					q = 127
				}
				if q < -127 {
					q = -127
				}
				codes[i] = int8(q)
				if codes[i] != 0 {
					nz++
				}
			}
		}
		if err := binary.Write(&buf, binary.LittleEndian, scales); err != nil {
			return nil, err
		}
		if sparse := 4 + 5*nz; sparse < n {
			buf.WriteByte(1)
			if err := binary.Write(&buf, binary.LittleEndian, uint32(nz)); err != nil {
				return nil, err
			}
			for i, c := range codes {
				if c == 0 {
					continue
				}
				if err := binary.Write(&buf, binary.LittleEndian, uint32(i)); err != nil {
					return nil, err
				}
				buf.WriteByte(byte(c))
			}
		} else {
			buf.WriteByte(0)
			dense := make([]byte, n)
			for i, c := range codes {
				dense[i] = byte(c)
			}
			//lint:allow errcheck bytes.Buffer.Write is documented to always return a nil error
			buf.Write(dense)
		}
	}
	return buf.Bytes(), nil
}

// ApplyWeightsDelta reconstructs full weights from a backbone and a dcW5
// delta payload, writing the result into dst (whose layout must match the
// backbone's). It verifies the payload's embedded digest against the
// backbone before touching dst, so applying a delta to the wrong backbone
// fails instead of producing garbage weights. The reconstruction is
// deterministic: every decoder produces bit-identical weights.
func ApplyWeightsDelta(backbone []*Param, delta []byte, dst []*Param) error {
	want, err := DeltaBackboneDigest(delta)
	if err != nil {
		return err
	}
	if got := sha256.Sum256(EncodeWeights(backbone)); got != want {
		return fmt.Errorf("nn: delta backbone digest mismatch: payload %x, backbone %x", want[:8], got[:8])
	}
	if len(dst) != len(backbone) {
		return fmt.Errorf("nn: delta dst param count mismatch %d vs %d", len(dst), len(backbone))
	}
	r := bytes.NewReader(delta[4+DeltaDigestSize:])
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(backbone) {
		return fmt.Errorf("nn: delta holds %d params, model has %d", count, len(backbone))
	}
	for pi, b := range backbone {
		d := dst[pi]
		if d.W.Len() != b.W.Len() {
			return fmt.Errorf("nn: delta dst param %d size mismatch: backbone %d, dst %d", pi, b.W.Len(), d.W.Len())
		}
		var n, sc uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != b.W.Len() {
			return fmt.Errorf("nn: delta param %d size mismatch: payload %d, model %d", pi, n, b.W.Len())
		}
		if err := binary.Read(r, binary.LittleEndian, &sc); err != nil {
			return err
		}
		if sc == 0 || n%sc != 0 {
			return fmt.Errorf("nn: delta param %d has %d scales for %d values", pi, sc, n)
		}
		scales := make([]float32, sc)
		if err := binary.Read(r, binary.LittleEndian, scales); err != nil {
			return err
		}
		mode, err := r.ReadByte()
		if err != nil {
			return err
		}
		codes := make([]int8, n)
		switch mode {
		case 0:
			dense := make([]byte, n)
			if _, err := io.ReadFull(r, dense); err != nil {
				return err
			}
			for i, c := range dense {
				codes[i] = int8(c)
			}
		case 1:
			var nz uint32
			if err := binary.Read(r, binary.LittleEndian, &nz); err != nil {
				return err
			}
			for j := uint32(0); j < nz; j++ {
				var idx uint32
				if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
					return err
				}
				c, err := r.ReadByte()
				if err != nil {
					return err
				}
				if idx >= n {
					return fmt.Errorf("nn: delta param %d sparse index %d out of range %d", pi, idx, n)
				}
				codes[idx] = int8(c)
			}
		default:
			return fmt.Errorf("nn: delta param %d has unknown mode %d", pi, mode)
		}
		rowLen := int(n) / int(sc)
		for ch := 0; ch < int(sc); ch++ {
			lo, hi := ch*rowLen, (ch+1)*rowLen
			reconstructDelta(d.W.Data[lo:hi], b.W.Data[lo:hi], codes[lo:hi], scales[ch])
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("nn: delta payload has %d trailing bytes", r.Len())
	}
	return nil
}
