package nn

import (
	"math/rand"
	"testing"

	"dcsr/internal/tensor"
)

// TestSequentialForwardInferenceMatchesForward checks every layer kind's
// inference path against its training Forward on one mixed stack, twice
// in a row so the reused buffers are exercised.
func TestSequentialForwardInferenceMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := &Sequential{Layers: []Layer{
		NewConv2D(rng, 2, 8, 3, 1, 1),
		&ReLU{},
		NewResBlock(rng, 8, 0.5),
		NewConv2D(rng, 8, 4, 3, 1, 1),
		&PixelShuffle{R: 2},
	}}
	x := tensor.New(2, 2, 6, 5)
	x.Randn(rng, 1)
	want := seq.Forward(x.Clone())
	for pass := 0; pass < 2; pass++ {
		got := seq.ForwardInference(x.Clone())
		if len(got.Data) != len(want.Data) {
			t.Fatalf("shape mismatch: %v vs %v", got.Shape, want.Shape)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("pass %d: element %d differs: %v vs %v", pass, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestDenseForwardInferenceMatchesForward covers the Dense fast path
// (the VAE feature heads).
func TestDenseForwardInferenceMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense(rng, 12, 7)
	x := tensor.New(3, 12)
	x.Randn(rng, 1)
	want := d.Forward(x)
	for pass := 0; pass < 2; pass++ {
		got := d.ForwardInference(x)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("pass %d: element %d differs: %v vs %v", pass, i, got.Data[i], want.Data[i])
			}
		}
	}
}
