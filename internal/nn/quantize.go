package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Quantized weight formats. Micro-model downloads are pure overhead for
// the client, so shrinking them matters at scale; NEMO ships fp16 models
// for the same reason. Two formats are provided:
//
//   - Float16: IEEE 754 half precision, 2 bytes/weight, visually lossless
//     for SR weights.
//   - Int8: symmetric per-tensor linear quantization (scale = maxabs/127),
//     1 byte/weight plus one float32 scale per tensor.
//   - Int8PC: symmetric per-channel quantization — one scale per dim-0
//     slice (output channel) for multi-dimensional parameters, one for
//     the whole tensor otherwise. This is the same scheme the int8
//     inference path uses (see nn_int8.go), so a model shipped as dcW4
//     decodes to exactly the weights the client would have quantized
//     itself.
//
// Quantization is applied at serialization time only; decoded weights
// are float32 — the int8 inference path re-quantizes from them, and
// because both sides share quantizeRowInt8 the round trip is lossless
// with respect to the quantized values.

// Quantization selects a weight serialization precision.
type Quantization int

// Supported precisions.
const (
	QuantNone Quantization = iota // float32 (SaveWeights format)
	QuantF16
	QuantInt8
	QuantInt8PC
)

// String names the quantization mode.
func (q Quantization) String() string {
	switch q {
	case QuantNone:
		return "fp32"
	case QuantF16:
		return "fp16"
	case QuantInt8:
		return "int8"
	case QuantInt8PC:
		return "int8pc"
	default:
		return fmt.Sprintf("Quantization(%d)", int(q))
	}
}

var (
	magicF16    = [4]byte{'d', 'c', 'W', '2'}
	magicInt8   = [4]byte{'d', 'c', 'W', '3'}
	magicInt8PC = [4]byte{'d', 'c', 'W', '4'}
)

// scaleCount returns how many per-channel scales a parameter gets in
// the dcW4 format: one per dim-0 slice for ≥2-dimensional parameters
// (conv and dense weight rows), one for everything else (biases).
func scaleCount(p *Param) int {
	if len(p.W.Shape) >= 2 && p.W.Shape[0] > 0 {
		return p.W.Shape[0]
	}
	return 1
}

// Float32To16 converts a float32 to IEEE 754 half precision bits with
// round-to-nearest; overflow saturates to ±Inf, subnormals flush through
// the standard denormal path.
func Float32To16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	man := b & 0x7fffff
	switch {
	case exp >= 31: // overflow or inf/nan
		if b&0x7fffffff > 0x7f800000 { // NaN
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(man >> shift)
		if man>>(shift-1)&1 == 1 { // round
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(man>>13)
		if man&0x1000 != 0 { // round
			half++
		}
		return half
	}
}

// Float16To32 expands half-precision bits to float32.
func Float16To32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case exp == 31:
		return math.Float32frombits(sign | 0xff<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
	}
}

// SaveWeightsQuantized writes parameters at the requested precision.
// QuantNone falls through to SaveWeights.
func SaveWeightsQuantized(w io.Writer, ps []*Param, q Quantization) error {
	switch q {
	case QuantNone:
		return SaveWeights(w, ps)
	case QuantF16:
		if _, err := w.Write(magicF16[:]); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(ps))); err != nil {
			return err
		}
		for _, p := range ps {
			if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Len())); err != nil {
				return err
			}
			buf := make([]byte, 2*p.W.Len())
			for i, v := range p.W.Data {
				binary.LittleEndian.PutUint16(buf[2*i:], Float32To16(v))
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	case QuantInt8:
		if _, err := w.Write(magicInt8[:]); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(ps))); err != nil {
			return err
		}
		for _, p := range ps {
			if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Len())); err != nil {
				return err
			}
			scale := p.W.MaxAbs() / 127
			if scale == 0 {
				scale = 1
			}
			if err := binary.Write(w, binary.LittleEndian, scale); err != nil {
				return err
			}
			buf := make([]byte, p.W.Len())
			for i, v := range p.W.Data {
				q := math.Round(float64(v / scale))
				if q > 127 {
					q = 127
				}
				if q < -127 {
					q = -127
				}
				buf[i] = byte(int8(q))
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	case QuantInt8PC:
		if _, err := w.Write(magicInt8PC[:]); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(ps))); err != nil {
			return err
		}
		for _, p := range ps {
			if err := binary.Write(w, binary.LittleEndian, uint32(p.W.Len())); err != nil {
				return err
			}
			sc := scaleCount(p)
			if err := binary.Write(w, binary.LittleEndian, uint32(sc)); err != nil {
				return err
			}
			rowLen := p.W.Len() / sc
			scales := make([]float32, sc)
			buf := make([]byte, p.W.Len())
			qrow := make([]int8, rowLen)
			for ch := 0; ch < sc; ch++ {
				row := p.W.Data[ch*rowLen : (ch+1)*rowLen]
				scales[ch] = quantizeRowInt8(row, qrow)
				for i, v := range qrow {
					buf[ch*rowLen+i] = byte(v)
				}
			}
			if err := binary.Write(w, binary.LittleEndian, scales); err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("nn: unknown quantization %d", q)
	}
}

// LoadWeightsAny reads weights written by SaveWeights or
// SaveWeightsQuantized, detecting the format from the magic.
func LoadWeightsAny(r io.Reader, ps []*Param) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	switch magic {
	case weightsMagic:
		return LoadWeights(io.MultiReader(bytes.NewReader(magic[:]), r), ps)
	case magicDelta:
		return fmt.Errorf("nn: dcW5 delta payload needs a backbone; use ApplyWeightsDelta")
	case magicF16, magicInt8, magicInt8PC:
		var count uint32
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return err
		}
		if int(count) != len(ps) {
			return fmt.Errorf("nn: weights hold %d params, model has %d", count, len(ps))
		}
		for _, p := range ps {
			var n uint32
			if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
				return err
			}
			if int(n) != p.W.Len() {
				return fmt.Errorf("nn: param %q size mismatch: file %d, model %d", p.Name, n, p.W.Len())
			}
			switch magic {
			case magicF16:
				buf := make([]byte, 2*n)
				if _, err := io.ReadFull(r, buf); err != nil {
					return err
				}
				for i := range p.W.Data {
					p.W.Data[i] = Float16To32(binary.LittleEndian.Uint16(buf[2*i:]))
				}
			case magicInt8:
				var scale float32
				if err := binary.Read(r, binary.LittleEndian, &scale); err != nil {
					return err
				}
				buf := make([]byte, n)
				if _, err := io.ReadFull(r, buf); err != nil {
					return err
				}
				for i := range p.W.Data {
					p.W.Data[i] = float32(int8(buf[i])) * scale
				}
			default: // magicInt8PC
				var sc uint32
				if err := binary.Read(r, binary.LittleEndian, &sc); err != nil {
					return err
				}
				if sc == 0 || n%sc != 0 {
					return fmt.Errorf("nn: param %q has %d scales for %d values", p.Name, sc, n)
				}
				scales := make([]float32, sc)
				if err := binary.Read(r, binary.LittleEndian, scales); err != nil {
					return err
				}
				buf := make([]byte, n)
				if _, err := io.ReadFull(r, buf); err != nil {
					return err
				}
				rowLen := int(n) / int(sc)
				for i := range p.W.Data {
					p.W.Data[i] = float32(int8(buf[i])) * scales[i/rowLen]
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("nn: unknown weights magic %q", magic[:])
	}
}

// QuantizedSize returns the exact byte size SaveWeightsQuantized emits.
func QuantizedSize(ps []*Param, q Quantization) int {
	switch q {
	case QuantNone:
		return WeightsSize(ps)
	case QuantF16:
		n := 8
		for _, p := range ps {
			n += 4 + 2*p.W.Len()
		}
		return n
	case QuantInt8:
		n := 8
		for _, p := range ps {
			n += 4 + 4 + p.W.Len()
		}
		return n
	case QuantInt8PC:
		n := 8
		for _, p := range ps {
			n += 4 + 4 + 4*scaleCount(p) + p.W.Len()
		}
		return n
	default:
		return 0
	}
}

// EncodeWeightsQuantized serializes ps at the given precision.
func EncodeWeightsQuantized(ps []*Param, q Quantization) []byte {
	var buf bytes.Buffer
	buf.Grow(QuantizedSize(ps, q))
	if err := SaveWeightsQuantized(&buf, ps, q); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}
