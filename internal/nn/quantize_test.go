package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcsr/internal/tensor"
)

func TestFloat16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in fp16 must survive unchanged.
	for _, v := range []float32{0, 1, -1, 0.5, 2, -2, 0.25, 1024, -0.09375} {
		if got := Float16To32(Float32To16(v)); got != v {
			t.Errorf("fp16 round trip of %v gave %v", v, got)
		}
	}
}

func TestFloat16RelativeError(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		// Keep within fp16 normal range.
		if v > 60000 || v < -60000 {
			return true
		}
		got := Float16To32(Float32To16(v))
		if v == 0 {
			return got == 0
		}
		if math.Abs(float64(v)) < 6.2e-5 { // subnormal territory
			return math.Abs(float64(got-v)) < 1e-4
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel < 1.0/1024 // 10-bit mantissa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat16Specials(t *testing.T) {
	if Float16To32(Float32To16(float32(math.Inf(1)))) != float32(math.Inf(1)) {
		t.Error("inf not preserved")
	}
	if !math.IsNaN(float64(Float16To32(Float32To16(float32(math.NaN()))))) {
		t.Error("NaN not preserved")
	}
	// Overflow saturates to inf.
	if Float16To32(Float32To16(1e30)) != float32(math.Inf(1)) {
		t.Error("overflow did not saturate")
	}
}

func quantModel(t *testing.T, seed int64) *Sequential {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return &Sequential{Layers: []Layer{
		NewConv2D(rng, 3, 4, 3, 1, 1), &ReLU{}, NewConv2D(rng, 4, 3, 3, 1, 1),
	}}
}

func TestQuantizedRoundTripF16(t *testing.T) {
	src := quantModel(t, 1)
	dst := quantModel(t, 2)
	data := EncodeWeightsQuantized(src.Params(), QuantF16)
	if len(data) != QuantizedSize(src.Params(), QuantF16) {
		t.Fatalf("encoded %d bytes, QuantizedSize says %d", len(data), QuantizedSize(src.Params(), QuantF16))
	}
	if err := LoadWeightsAny(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		for j, v := range p.W.Data {
			got := dst.Params()[i].W.Data[j]
			if math.Abs(float64(got-v)) > math.Max(1e-4, math.Abs(float64(v))/512) {
				t.Fatalf("param %d[%d]: %v -> %v", i, j, v, got)
			}
		}
	}
}

func TestQuantizedRoundTripInt8(t *testing.T) {
	src := quantModel(t, 3)
	dst := quantModel(t, 4)
	data := EncodeWeightsQuantized(src.Params(), QuantInt8)
	if err := LoadWeightsAny(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		maxAbs := p.W.MaxAbs()
		for j, v := range p.W.Data {
			got := dst.Params()[i].W.Data[j]
			if math.Abs(float64(got-v)) > float64(maxAbs)/127+1e-7 {
				t.Fatalf("param %d[%d]: %v -> %v exceeds one quantization step", i, j, v, got)
			}
		}
	}
}

func TestLoadWeightsAnyDetectsFP32(t *testing.T) {
	src := quantModel(t, 5)
	dst := quantModel(t, 6)
	data := EncodeWeights(src.Params())
	if err := LoadWeightsAny(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		for j, v := range p.W.Data {
			if dst.Params()[i].W.Data[j] != v {
				t.Fatal("fp32 path lost precision")
			}
		}
	}
}

func TestQuantizedSizeOrdering(t *testing.T) {
	ps := quantModel(t, 7).Params()
	fp32 := QuantizedSize(ps, QuantNone)
	fp16 := QuantizedSize(ps, QuantF16)
	int8s := QuantizedSize(ps, QuantInt8)
	if !(int8s < fp16 && fp16 < fp32) {
		t.Fatalf("size ordering violated: int8 %d, fp16 %d, fp32 %d", int8s, fp16, fp32)
	}
	// fp16 ≈ half of fp32 payload.
	if float64(fp16) > 0.6*float64(fp32) {
		t.Errorf("fp16 %d not ≈ half of fp32 %d", fp16, fp32)
	}
}

func TestLoadWeightsAnyRejectsGarbage(t *testing.T) {
	ps := quantModel(t, 8).Params()
	if err := LoadWeightsAny(bytes.NewReader([]byte("garbagegarbage")), ps); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated quantized stream.
	data := EncodeWeightsQuantized(ps, QuantInt8)
	if err := LoadWeightsAny(bytes.NewReader(data[:len(data)-3]), ps); err == nil {
		t.Fatal("truncated int8 stream accepted")
	}
}

func TestZeroTensorInt8(t *testing.T) {
	p := &Param{Name: "z", W: tensor.New(4), Grad: tensor.New(4)}
	data := EncodeWeightsQuantized([]*Param{p}, QuantInt8)
	q := &Param{Name: "z", W: tensor.New(4), Grad: tensor.New(4)}
	q.W.Fill(9)
	if err := LoadWeightsAny(bytes.NewReader(data), []*Param{q}); err != nil {
		t.Fatal(err)
	}
	for _, v := range q.W.Data {
		if v != 0 {
			t.Fatal("zero tensor did not survive int8 round trip")
		}
	}
}
