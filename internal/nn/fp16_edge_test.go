package nn

import (
	"math"
	"testing"
	"testing/quick"
)

// Edge-case coverage for the fp16 converters: every representable half
// value, NaN/Inf propagation, the subnormal boundary, overflow
// saturation, and the tie-rounding convention.

// TestFloat16ExhaustiveRoundTrip walks all 65536 half bit patterns:
// every non-NaN half must survive Float16To32 → Float32To16 bit-exactly
// (float32 represents all halves exactly, so the down-conversion has
// nothing to round); every NaN half must come back as some NaN.
func TestFloat16ExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		bits := uint16(h)
		f := Float16To32(bits)
		got := Float32To16(f)
		if bits&0x7C00 == 0x7C00 && bits&0x3FF != 0 { // NaN
			if got&0x7C00 != 0x7C00 || got&0x3FF == 0 {
				t.Fatalf("half NaN %#04x came back as %#04x (not NaN)", bits, got)
			}
			continue
		}
		if got != bits {
			t.Fatalf("half %#04x -> %v -> %#04x", bits, f, got)
		}
	}
}

func TestFloat16NaNAndInf(t *testing.T) {
	nan32 := float32(math.NaN())
	if h := Float32To16(nan32); h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Fatalf("NaN encoded as %#04x", h)
	}
	if !math.IsNaN(float64(Float16To32(0x7E00))) {
		t.Fatal("half NaN did not decode to NaN")
	}
	if h := Float32To16(float32(math.Inf(1))); h != 0x7C00 {
		t.Fatalf("+Inf encoded as %#04x, want 0x7c00", h)
	}
	if h := Float32To16(float32(math.Inf(-1))); h != 0xFC00 {
		t.Fatalf("-Inf encoded as %#04x, want 0xfc00", h)
	}
	if Float16To32(0xFC00) != float32(math.Inf(-1)) {
		t.Fatal("half -Inf did not decode to -Inf")
	}
}

func TestFloat16SubnormalBoundaries(t *testing.T) {
	tiny := float32(math.Ldexp(1, -24)) // smallest half subnormal
	if h := Float32To16(tiny); h != 0x0001 {
		t.Fatalf("2^-24 encoded as %#04x, want 0x0001", h)
	}
	if got := Float16To32(0x0001); got != tiny {
		t.Fatalf("smallest subnormal decoded to %v, want %v", got, tiny)
	}
	// Half of the smallest subnormal sits on a tie; the converter rounds
	// it up rather than to zero.
	if h := Float32To16(float32(math.Ldexp(1, -25))); h != 0x0001 {
		t.Fatalf("2^-25 encoded as %#04x, want 0x0001 (tie rounds up)", h)
	}
	// Anything below the tie underflows to signed zero.
	if h := Float32To16(float32(math.Ldexp(1, -26))); h != 0 {
		t.Fatalf("2^-26 encoded as %#04x, want 0", h)
	}
	if h := Float32To16(float32(-math.Ldexp(1, -26))); h != 0x8000 {
		t.Fatalf("-2^-26 encoded as %#04x, want 0x8000", h)
	}
	// Largest subnormal and smallest normal are adjacent codes.
	if h := Float32To16(float32(math.Ldexp(1023, -24))); h != 0x03FF {
		t.Fatalf("largest subnormal encoded as %#04x, want 0x03ff", h)
	}
	if h := Float32To16(float32(math.Ldexp(1, -14))); h != 0x0400 {
		t.Fatalf("smallest normal encoded as %#04x, want 0x0400", h)
	}
}

// TestFloat16TieRounding pins the converter's convention on exact
// halfway values: it rounds ties up (away from the lower code), not
// to-nearest-even. 1 + 2^-11 is exactly between half codes 0x3C00 and
// 0x3C01; RNE would pick the even 0x3C00.
func TestFloat16TieRounding(t *testing.T) {
	if h := Float32To16(1 + 1.0/2048); h != 0x3C01 {
		t.Fatalf("tie 1+2^-11 encoded as %#04x, want 0x3c01 (half-up)", h)
	}
	// A tie above an odd code lands on the even code — same answer as
	// RNE there, so only the case above distinguishes the conventions.
	if h := Float32To16(1 + 3.0/2048); h != 0x3C02 {
		t.Fatalf("tie 1+3·2^-11 encoded as %#04x, want 0x3c02", h)
	}
}

func TestFloat16OverflowBoundary(t *testing.T) {
	if h := Float32To16(65504); h != 0x7BFF { // largest finite half
		t.Fatalf("65504 encoded as %#04x, want 0x7bff", h)
	}
	// 65520 is the tie between the largest finite half and infinity; the
	// rounding increment carries the code into the Inf encoding.
	if h := Float32To16(65520); h != 0x7C00 {
		t.Fatalf("65520 encoded as %#04x, want 0x7c00 (rounds to Inf)", h)
	}
	if h := Float32To16(-65520); h != 0xFC00 {
		t.Fatalf("-65520 encoded as %#04x, want 0xfc00", h)
	}
	if h := Float32To16(1e9); h != 0x7C00 {
		t.Fatalf("1e9 encoded as %#04x, want saturation to Inf", h)
	}
}

// TestFloat16ConversionIdempotent fuzzes arbitrary float32 bit patterns:
// converting twice must equal converting once (the first conversion
// lands on a representable half, which then round-trips exactly).
func TestFloat16ConversionIdempotent(t *testing.T) {
	f := func(bits uint32) bool {
		v := math.Float32frombits(bits)
		h1 := Float32To16(v)
		h2 := Float32To16(Float16To32(h1))
		if math.IsNaN(float64(v)) {
			return h1&0x7C00 == 0x7C00 && h1&0x3FF != 0 &&
				h2&0x7C00 == 0x7C00 && h2&0x3FF != 0
		}
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
