// Package nn implements the small neural-network toolkit that dcSR's models
// are built from: 2-D convolution, ReLU, residual blocks, pixel-shuffle
// upsampling, fully connected layers, a Sequential container, MSE loss, and
// SGD/Adam optimizers — all in pure Go on float32 tensors with exact
// backpropagation.
//
// The design mirrors the classic define-by-stack style: a Layer owns its
// parameters and caches whatever it needs during Forward to compute
// Backward. Networks here are small (dcSR micro models are 4–16 residual
// blocks of ≤16 filters); the heavy lifting (im2col convolutions, blocked
// GEMM kernels) lives in internal/tensor. Alongside the training pair
// every Layer exposes ForwardInference, a no-grad path that fuses
// conv+bias+ReLU, reuses layer-owned output buffers, and retains no
// column buffers — the decoder hot loop runs entirely on it.
package nn

import (
	"math"
	"math/rand"

	"dcsr/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward consumes an activation and
// returns the next one; Backward consumes the gradient of the loss with
// respect to the output and returns the gradient with respect to the input,
// accumulating parameter gradients along the way. A Layer is stateful
// between a Forward and the matching Backward (it caches activations), so a
// single Layer instance must not be used concurrently.
//
// ForwardInference is the no-grad fast path: it produces the same bits
// as Forward but caches nothing for Backward, reuses a layer-owned
// output buffer across calls (so steady-state inference allocates
// nothing), and may modify x in place. The returned tensor is owned by
// the layer and valid until its next ForwardInference call; callers
// needing to retain it must Clone. Do not interleave ForwardInference
// between a Forward and its matching Backward.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	ForwardInference(x *tensor.Tensor) *tensor.Tensor
	Backward(gy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Conv2D is a 2-D convolution layer with bias.
type Conv2D struct {
	Spec tensor.ConvSpec
	Wt   *Param
	Bias *Param

	x    *tensor.Tensor
	cols [][]float32
	out  *tensor.Tensor // reusable inference output (both precisions)

	calibrating bool        // observing activation ranges (see nn_int8.go)
	actMax      float32     // calibrated input max-abs
	int8        *conv2DInt8 // quantized state, nil until QuantizeInt8
}

// NewConv2D creates a KxK convolution from inC to outC channels with the
// given stride and padding, He-initialized from rng.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		Spec: tensor.ConvSpec{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad},
		Wt:   newParam("conv.w", outC, inC, k, k),
		Bias: newParam("conv.b", outC),
	}
	fanIn := float64(inC * k * k)
	c.Wt.W.Randn(rng, math.Sqrt(2.0/fanIn))
	return c
}

// Forward applies the convolution to x (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	out, cols := tensor.Conv2DForward(x, c.Wt.W, c.Bias.W, c.Spec)
	c.cols = cols
	return out
}

// ForwardInference applies the convolution without retaining column
// buffers, writing into the layer's reusable output tensor.
func (c *Conv2D) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	c.observe(x)
	c.out = tensor.Conv2DInfer(x, c.Wt.W, c.Bias.W, c.Spec, false, c.out)
	return c.out
}

// observe widens the calibrated activation range while the layer is in
// calibration mode (see nn_int8.go); otherwise it is a no-op.
func (c *Conv2D) observe(x *tensor.Tensor) {
	if c.calibrating {
		if m := x.MaxAbs(); m > c.actMax {
			c.actMax = m
		}
	}
}

// ForwardInferenceReLU is ForwardInference with the ReLU activation
// fused into the convolution epilogue, bitwise identical to a separate
// ReLU pass over the same output.
func (c *Conv2D) ForwardInferenceReLU(x *tensor.Tensor) *tensor.Tensor {
	c.observe(x)
	c.out = tensor.Conv2DInfer(x, c.Wt.W, c.Bias.W, c.Spec, true, c.out)
	return c.out
}

// Backward propagates gy through the convolution.
func (c *Conv2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	gx := tensor.Conv2DBackward(gy, c.cols, c.x.Shape, c.Wt.W, c.Wt.Grad, c.Bias.Grad, c.Spec)
	c.cols = nil
	return gx
}

// Params returns the weight and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.Wt, c.Bias} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// ForwardInference clamps negatives to zero in place (no mask is kept).
func (r *ReLU) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	return x
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(gy *tensor.Tensor) *tensor.Tensor {
	gx := gy.Clone()
	for i := range gx.Data {
		if !r.mask[i] {
			gx.Data[i] = 0
		}
	}
	return gx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// ResBlock is the EDSR residual block: conv → ReLU → conv, the result scaled
// by ResScale and added to the input. EDSR omits batch normalization.
type ResBlock struct {
	Conv1, Conv2 *Conv2D
	Act          *ReLU
	ResScale     float32

	out *tensor.Tensor // reusable inference output
}

// NewResBlock builds a residual block over nf feature maps with 3×3 convs.
func NewResBlock(rng *rand.Rand, nf int, resScale float32) *ResBlock {
	return &ResBlock{
		Conv1:    NewConv2D(rng, nf, nf, 3, 1, 1),
		Conv2:    NewConv2D(rng, nf, nf, 3, 1, 1),
		Act:      &ReLU{},
		ResScale: resScale,
	}
}

// Forward computes x + ResScale · conv2(relu(conv1(x))).
func (b *ResBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := b.Conv1.Forward(x)
	h = b.Act.Forward(h)
	h = b.Conv2.Forward(h)
	out := x.Clone()
	for i, v := range h.Data {
		out.Data[i] += b.ResScale * v
	}
	return out
}

// ForwardInference runs the block with the first conv's ReLU fused into
// its epilogue and the residual add written into a reusable buffer.
func (b *ResBlock) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	h := b.Conv1.ForwardInferenceReLU(x)
	h = b.Conv2.ForwardInference(h)
	b.out = tensor.Ensure(b.out, x.Shape...)
	for i, v := range h.Data {
		b.out.Data[i] = x.Data[i] + b.ResScale*v
	}
	return b.out
}

// Backward splits the gradient across the residual and identity paths.
func (b *ResBlock) Backward(gy *tensor.Tensor) *tensor.Tensor {
	gBranch := gy.Clone()
	gBranch.ScaleInPlace(b.ResScale)
	g := b.Conv2.Backward(gBranch)
	g = b.Act.Backward(g)
	g = b.Conv1.Backward(g)
	g.AddInPlace(gy) // identity path
	return g
}

// Params returns the parameters of both convolutions.
func (b *ResBlock) Params() []*Param {
	return append(b.Conv1.Params(), b.Conv2.Params()...)
}

// PixelShuffle rearranges (N, C·r², H, W) into (N, C, H·r, W·r); it is the
// standard sub-pixel upsampling layer used by EDSR tails.
type PixelShuffle struct {
	R     int
	shape []int
	out   *tensor.Tensor // reusable inference output
}

// Forward performs the depth-to-space rearrangement.
func (p *PixelShuffle) Forward(x *tensor.Tensor) *tensor.Tensor {
	p.shape = x.Shape
	out := tensor.New(p.outShape(x)...)
	p.shuffleInto(x, out)
	return out
}

// ForwardInference performs the same rearrangement into a reusable
// buffer and keeps no state for Backward.
func (p *PixelShuffle) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	p.out = tensor.Ensure(p.out, p.outShape(x)...)
	p.shuffleInto(x, p.out)
	return p.out
}

// outShape validates the channel count and returns the (N, C/r², H·r,
// W·r) output shape.
func (p *PixelShuffle) outShape(x *tensor.Tensor) []int {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	r := p.R
	if c%(r*r) != 0 {
		panic("nn: PixelShuffle channel count not divisible by r²")
	}
	return []int{n, c / (r * r), h * r, w * r}
}

// shuffleInto writes the depth-to-space rearrangement of x into out.
func (p *PixelShuffle) shuffleInto(x, out *tensor.Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	r := p.R
	oc := c / (r * r)
	for ni := 0; ni < n; ni++ {
		for co := 0; co < oc; co++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ci := co*r*r + dy*r + dx
					src := x.Data[((ni*c+ci)*h)*w : ((ni*c+ci)*h+h)*w]
					for y := 0; y < h; y++ {
						oy := y*r + dy
						dstRow := out.Data[((ni*oc+co)*h*r+oy)*w*r : ((ni*oc+co)*h*r+oy+1)*w*r]
						srcRow := src[y*w : (y+1)*w]
						for xx := 0; xx < w; xx++ {
							dstRow[xx*r+dx] = srcRow[xx]
						}
					}
				}
			}
		}
	}
}

// Backward performs the inverse space-to-depth rearrangement on gy.
func (p *PixelShuffle) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.shape[0], p.shape[1], p.shape[2], p.shape[3]
	r := p.R
	oc := c / (r * r)
	gx := tensor.New(n, c, h, w)
	for ni := 0; ni < n; ni++ {
		for co := 0; co < oc; co++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ci := co*r*r + dy*r + dx
					dst := gx.Data[((ni*c+ci)*h)*w : ((ni*c+ci)*h+h)*w]
					for y := 0; y < h; y++ {
						oy := y*r + dy
						srcRow := gy.Data[((ni*oc+co)*h*r+oy)*w*r : ((ni*oc+co)*h*r+oy+1)*w*r]
						dstRow := dst[y*w : (y+1)*w]
						for xx := 0; xx < w; xx++ {
							dstRow[xx] = srcRow[xx*r+dx]
						}
					}
				}
			}
		}
	}
	return gx
}

// Params returns nil; PixelShuffle has no parameters.
func (p *PixelShuffle) Params() []*Param { return nil }

// Dense is a fully connected layer acting on (N, In) tensors.
type Dense struct {
	In, Out int
	Wt      *Param // (Out, In)
	Bias    *Param // (Out)
	x       *tensor.Tensor
	gw      []float32      // reusable weight-gradient staging buffer
	out     *tensor.Tensor // reusable inference output
}

// NewDense creates a fully connected layer, Xavier-initialized from rng.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, Wt: newParam("dense.w", out, in), Bias: newParam("dense.b", out)}
	d.Wt.W.Randn(rng, math.Sqrt(1.0/float64(in)))
	return d
}

// Forward computes x·Wᵀ + b for a batch of row vectors.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	d.x = x
	out := tensor.New(n, d.Out)
	tensor.MatMulBT(x.Data, d.Wt.W.Data, out.Data, n, d.In, d.Out)
	for i := 0; i < n; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.Bias.W.Data[j]
		}
	}
	return out
}

// ForwardInference computes x·Wᵀ + b into a reusable output buffer,
// keeping no state for Backward.
func (d *Dense) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	d.out = tensor.Ensure(d.out, n, d.Out)
	tensor.MatMulBT(x.Data, d.Wt.W.Data, d.out.Data, n, d.In, d.Out)
	for i := 0; i < n; i++ {
		row := d.out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.Bias.W.Data[j]
		}
	}
	return d.out
}

// Backward computes input gradients and accumulates weight/bias gradients.
func (d *Dense) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n := gy.Shape[0]
	// gW(Out×In) += gyᵀ(N×Out)ᵀ · x(N×In), staged through a scratch
	// buffer reused across steps rather than allocated per call.
	if cap(d.gw) < d.Out*d.In {
		d.gw = make([]float32, d.Out*d.In)
	}
	gw := d.gw[:d.Out*d.In]
	tensor.MatMulAT(gy.Data, d.x.Data, gw, n, d.Out, d.In)
	for i, v := range gw {
		d.Wt.Grad.Data[i] += v
	}
	for i := 0; i < n; i++ {
		row := gy.Data[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			d.Bias.Grad.Data[j] += v
		}
	}
	gx := tensor.New(n, d.In)
	tensor.MatMul(gy.Data, d.Wt.W.Data, gx.Data, n, d.Out, d.In)
	return gx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Wt, d.Bias} }

// Sequential chains layers; Forward runs them left to right and Backward in
// reverse.
type Sequential struct {
	Layers []Layer
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardInference runs all layers in order on the no-grad fast path.
func (s *Sequential) ForwardInference(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.ForwardInference(x)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(gy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gy = s.Layers[i].Backward(gy)
	}
	return gy
}

// Params collects parameters from every layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of scalar parameters across ps.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.W.Len()
	}
	return n
}

// ZeroGrads clears every gradient in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// MSELoss returns ½·mean((pred−target)²)… precisely mean squared error and
// the gradient of that loss with respect to pred.
func MSELoss(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if pred.Len() != target.Len() {
		panic("nn: MSELoss size mismatch")
	}
	grad = tensor.New(pred.Shape...)
	n := float64(pred.Len())
	var sum float64
	for i, v := range pred.Data {
		d := float64(v) - float64(target.Data[i])
		sum += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return sum / n, grad
}
