// Package cluster implements the segment-grouping machinery of server-side
// dcSR (paper §3.1.2): Lloyd's k-means, the global k-means algorithm of
// Likas, Vlassis & Verbeek (2003) used to avoid local optima, the
// silhouette coefficient (Rousseeuw 1987) for choosing K, and the
// model-size-constrained K selection of paper Eq. 2–3.
package cluster

import (
	"fmt"
	"math"
)

// Result is a clustering of N points into K clusters.
type Result struct {
	K         int
	Centroids [][]float64
	Assign    []int   // len N, cluster index per point
	Inertia   float64 // sum of squared distances to assigned centroids
}

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, a := range r.Assign {
		sizes[a]++
	}
	return sizes
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// assignAll assigns every point to its nearest centroid and returns inertia.
func assignAll(points, centroids [][]float64, assign []int) float64 {
	var inertia float64
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := sqDist(p, cen); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		inertia += bestD
	}
	return inertia
}

// lloyd runs standard k-means iterations from the given initial centroids
// until convergence (assignments stable) or maxIter.
func lloyd(points [][]float64, centroids [][]float64, maxIter int) *Result {
	n := len(points)
	k := len(centroids)
	dim := len(points[0])
	assign := make([]int, n)
	cents := make([][]float64, k)
	for i := range cents {
		cents[i] = append([]float64(nil), centroids[i]...)
	}
	var inertia float64
	for iter := 0; iter < maxIter; iter++ {
		inertia = assignAll(points, cents, assign)
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for i := range next {
			next[i] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				next[c][j] += v
			}
		}
		moved := false
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cluster: re-seed at the point farthest from its centroid.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, cents[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(next[c], points[far])
				moved = true
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
			if sqDist(next[c], cents[c]) > 1e-12 {
				moved = true
			}
		}
		cents = next
		if !moved {
			break
		}
	}
	inertia = assignAll(points, cents, assign)
	return &Result{K: k, Centroids: cents, Assign: assign, Inertia: inertia}
}

// KMeans runs Lloyd's algorithm with deterministic k-means++-style seeding
// (farthest-point heuristic from the dataset mean).
func KMeans(points [][]float64, k, maxIter int) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	// Deterministic seeding: first centroid = dataset mean's nearest point,
	// then repeatedly add the point farthest from all chosen centroids.
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(points))
	}
	first, firstD := 0, math.Inf(1)
	for i, p := range points {
		if d := sqDist(p, mean); d < firstD {
			first, firstD = i, d
		}
	}
	cents := [][]float64{append([]float64(nil), points[first]...)}
	for len(cents) < k {
		far, farD := 0, -1.0
		for i, p := range points {
			near := math.Inf(1)
			for _, c := range cents {
				if d := sqDist(p, c); d < near {
					near = d
				}
			}
			if near > farD {
				far, farD = i, near
			}
		}
		cents = append(cents, append([]float64(nil), points[far]...))
	}
	return lloyd(points, cents, maxIter), nil
}

// GlobalKMeans implements the incremental global k-means algorithm: the
// solution for k clusters is built from the solution for k−1 by trying
// every data point as the k-th initial centroid and keeping the best
// converged result. This deterministic procedure avoids the local optima
// Lloyd's algorithm can fall into (paper §3.1.2).
func GlobalKMeans(points [][]float64, k, maxIter int) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	n := len(points)
	dim := len(points[0])
	// k = 1: centroid is the mean.
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	best := lloyd(points, [][]float64{mean}, maxIter)
	for kk := 2; kk <= k; kk++ {
		var bestNext *Result
		for i := 0; i < n; i++ {
			init := make([][]float64, 0, kk)
			for _, c := range best.Centroids {
				init = append(init, append([]float64(nil), c...))
			}
			init = append(init, append([]float64(nil), points[i]...))
			r := lloyd(points, init, maxIter)
			if bestNext == nil || r.Inertia < bestNext.Inertia {
				bestNext = r
			}
		}
		best = bestNext
	}
	// The greedy increment is deterministic but not guaranteed to dominate
	// a well-seeded direct run; taking the better of the two makes
	// GlobalKMeans never worse than KMeans while staying deterministic.
	if direct, err := KMeans(points, k, maxIter); err == nil && direct.Inertia < best.Inertia {
		best = direct
	}
	return best, nil
}

func validate(points [][]float64, k int) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points")
	}
	if k < 1 {
		return fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > len(points) {
		return fmt.Errorf("cluster: k=%d exceeds %d points", k, len(points))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	return nil
}
