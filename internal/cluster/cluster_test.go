package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated Gaussian clusters of n points each.
func blobs(rng *rand.Rand, k, n, dim int, sep float64) (points [][]float64, truth []int) {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = float64(c) * sep * float64(d%2*2-1)
		}
		centers[c][0] = float64(c) * sep
	}
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = centers[c][d] + rng.NormFloat64()*0.3
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

// agree checks whether assign matches truth up to label permutation, by
// verifying every truth-cluster maps to a single assigned label.
func agree(truth, assign []int) bool {
	m := map[int]int{}
	for i, tl := range truth {
		al, ok := m[tl]
		if !ok {
			m[tl] = assign[i]
			continue
		}
		if al != assign[i] {
			return false
		}
	}
	// And distinct truth clusters map to distinct labels.
	seen := map[int]bool{}
	for _, al := range m {
		if seen[al] {
			return false
		}
		seen[al] = true
	}
	return true
}

func TestKMeansRecoverssBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := blobs(rng, 3, 15, 4, 10)
	r, err := KMeans(points, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !agree(truth, r.Assign) {
		t.Fatalf("k-means failed to recover well-separated blobs: %v", r.Assign)
	}
}

func TestGlobalKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, truth := blobs(rng, 4, 10, 3, 8)
	r, err := GlobalKMeans(points, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !agree(truth, r.Assign) {
		t.Fatalf("global k-means failed on blobs: %v", r.Assign)
	}
	if len(r.Sizes()) != 4 {
		t.Fatalf("Sizes() len %d", len(r.Sizes()))
	}
}

func TestGlobalKMeansInertiaMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _ := blobs(rng, 3, 8, 3, 5)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		r, err := GlobalKMeans(points, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Inertia > prev+1e-9 {
			t.Fatalf("inertia rose from %.4f to %.4f at k=%d", prev, r.Inertia, k)
		}
		prev = r.Inertia
	}
}

func TestGlobalKMeansNotWorseThanLloyd(t *testing.T) {
	// The defining property (paper §3.1.2): global k-means avoids the local
	// optima plain Lloyd can fall into, so its inertia is never worse.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nblobs := 2 + int(uint64(seed)%3)
		sep := 3 + float64(uint64(seed)%5)
		points, _ := blobs(rng, nblobs, 6, 2, sep)
		k := 3
		if len(points) < k {
			return true
		}
		g, err := GlobalKMeans(points, k, 0)
		if err != nil {
			return false
		}
		l, err := KMeans(points, k, 0)
		if err != nil {
			return false
		}
		return g.Inertia <= l.Inertia+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 2, 0); err == nil {
		t.Error("accepted empty points")
	}
	pts := [][]float64{{1, 2}, {3, 4}}
	if _, err := KMeans(pts, 0, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := KMeans(pts, 3, 0); err == nil {
		t.Error("accepted k > n")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 0); err == nil {
		t.Error("accepted ragged dimensions")
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sepPts, sepTruth := blobs(rng, 3, 10, 3, 20)
	s1, err := Silhouette(sepPts, sepTruth, 3)
	if err != nil {
		t.Fatal(err)
	}
	ovlPts, ovlTruth := blobs(rng, 3, 10, 3, 0.2)
	s2, err := Silhouette(ovlPts, ovlTruth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < 0.8 {
		t.Errorf("separated blobs silhouette %.3f < 0.8", s1)
	}
	if s2 >= s1 {
		t.Errorf("overlapping silhouette %.3f >= separated %.3f", s2, s1)
	}
	if s1 > 1.0001 || s1 < -1.0001 {
		t.Errorf("silhouette out of [-1,1]: %v", s1)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	if _, err := Silhouette(pts, []int{0, 0, 0}, 1); err == nil {
		t.Error("accepted k=1")
	}
	if _, err := Silhouette(pts, []int{0, 1}, 2); err == nil {
		t.Error("accepted short assign")
	}
	if _, err := Silhouette(pts, []int{0, 1, 5}, 2); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestSweepKPeaksAtTrueK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _ := blobs(rng, 4, 8, 3, 15)
	sweeps, err := SweepK(points, 8)
	if err != nil {
		t.Fatal(err)
	}
	best := sweeps[0]
	for _, s := range sweeps {
		if s.Silhouette > best.Silhouette {
			best = s
		}
	}
	if best.K != 4 {
		t.Fatalf("silhouette peaked at K=%d, want 4", best.K)
	}
}

func TestSelectKHonorsSizeConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, _ := blobs(rng, 6, 6, 3, 15)
	// Constraint allows at most 3 micro models.
	res, sweeps, err := SelectK(points, 3000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Fatalf("SelectK chose K=%d beyond constraint 3", res.K)
	}
	for _, s := range sweeps {
		if s.K > 3 {
			t.Fatalf("sweep explored K=%d beyond constraint", s.K)
		}
	}
	if _, _, err := SelectK(points, 3000, 0); err == nil {
		t.Error("accepted zero minimum model size")
	}
}

func TestSelectKUnconstrainedFindsTrueK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points, truth := blobs(rng, 3, 10, 4, 12)
	res, _, err := SelectK(points, 1<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("SelectK found K=%d, want 3", res.K)
	}
	if !agree(truth, res.Assign) {
		t.Fatal("assignment does not match generative structure")
	}
}

func TestEmptyClusterReseeded(t *testing.T) {
	// Points where a naive centroid update could empty a cluster must
	// still produce k non-empty clusters.
	points := [][]float64{{0}, {0.1}, {0.2}, {10}, {10.1}, {20}}
	r, err := GlobalKMeans(points, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c, sz := range r.Sizes() {
		if sz == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
}
