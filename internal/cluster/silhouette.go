package cluster

import (
	"fmt"
	"math"

	"dcsr/internal/tensor"
)

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, s = (b − a) / max(a, b) where a is the mean distance to
// points of its own cluster and b the smallest mean distance to any other
// cluster. Values near 1 indicate cohesive, well-separated clusters
// (paper §3.1.2). Points in singleton clusters contribute 0 by convention.
// The clustering must use at least 2 clusters.
func Silhouette(points [][]float64, assign []int, k int) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette requires k >= 2, got %d", k)
	}
	n := len(points)
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: assign length %d != %d points", len(assign), n)
	}
	sizes := make([]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: point %d assigned to invalid cluster %d", i, a)
		}
		sizes[a]++
	}
	// The O(n²) pairwise-distance loop dominates SelectK on large
	// corpora, so points are scored in parallel: each worker writes
	// contrib[i] for a disjoint index range (a per-point value that does
	// not depend on how the ranges are chunked), and the final reduction
	// runs sequentially in ascending point order — so the result is
	// bit-identical to the serial loop regardless of worker count or
	// scheduling.
	contrib := make([]float64, n)
	tensor.ParallelFor(n, func(lo, hi int) {
		sums := make([]float64, k) // per-worker scratch, reused across points
		for i := lo; i < hi; i++ {
			ci := assign[i]
			if sizes[ci] <= 1 {
				continue // s(i) = 0
			}
			// Mean distance to every cluster.
			for c := range sums {
				sums[c] = 0
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				sums[assign[j]] += math.Sqrt(sqDist(points[i], points[j]))
			}
			a := sums[ci] / float64(sizes[ci]-1)
			b := math.Inf(1)
			for c := 0; c < k; c++ {
				if c == ci || sizes[c] == 0 {
					continue
				}
				if m := sums[c] / float64(sizes[c]); m < b {
					b = m
				}
			}
			if math.IsInf(b, 1) {
				continue
			}
			den := math.Max(a, b)
			if den > 0 {
				contrib[i] = (b - a) / den
			}
		}
	})
	var total float64
	for _, s := range contrib {
		total += s
	}
	return total / float64(n), nil
}

// Sweep holds the silhouette score obtained at one K.
type Sweep struct {
	K          int
	Silhouette float64
	Result     *Result
}

// SweepK clusters points with global k-means for every k in [2, maxK] and
// returns the per-k silhouette scores (the curve of paper Fig 5). maxK is
// clipped to len(points)−1 (silhouette is undefined when every point is
// its own cluster).
func SweepK(points [][]float64, maxK int) ([]Sweep, error) {
	if maxK > len(points)-1 {
		maxK = len(points) - 1
	}
	if maxK < 2 {
		return nil, fmt.Errorf("cluster: need at least 3 points to sweep K, have %d", len(points))
	}
	var sweeps []Sweep
	for k := 2; k <= maxK; k++ {
		r, err := GlobalKMeans(points, k, 0)
		if err != nil {
			return nil, err
		}
		s, err := Silhouette(points, r.Assign, k)
		if err != nil {
			return nil, err
		}
		sweeps = append(sweeps, Sweep{K: k, Silhouette: s, Result: r})
	}
	return sweeps, nil
}

// SelectK implements paper Eq. 2–3: it sweeps k from 2 to maxK and returns
// the clustering with the maximum silhouette coefficient, where maxK is
// the deployment constraint ⌊|M_big| / |M_min|⌋ — the number of micro
// models whose combined size still does not exceed one big model.
func SelectK(points [][]float64, bigModelBytes, minModelBytes int) (*Result, []Sweep, error) {
	if minModelBytes <= 0 {
		return nil, nil, fmt.Errorf("cluster: minimum model size must be positive")
	}
	maxK := bigModelBytes / minModelBytes
	if maxK < 2 {
		maxK = 2
	}
	sweeps, err := SweepK(points, maxK)
	if err != nil {
		return nil, nil, err
	}
	best := sweeps[0]
	for _, s := range sweeps[1:] {
		if s.Silhouette > best.Silhouette {
			best = s
		}
	}
	return best.Result, sweeps, nil
}
