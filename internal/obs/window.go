package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Windowed metrics answer the question lifetime metrics cannot: "what is
// the p99 / request rate *right now*?" A lifetime histogram's quantiles
// are frozen by history — a 30-second overload event is invisible inside
// a p99 computed since process start — so the fleet-scale serving
// metrics additionally record into a rolling window.
//
// The implementation is a fixed ring of sub-window slots, each covering
// window/windowSlots of wall time. Recording locates the current slot
// from the clock, lazily resets it when it has rotated into a new
// sub-window (a CAS elects one resetter; no locks, no allocation), and
// updates atomic counts. Snapshots aggregate every slot still inside the
// window. Observations racing a rotation may be attributed to either
// adjacent sub-window — windowed values are operational telemetry, not
// accounting, and the lifetime metrics remain exact.

// Default rolling-window geometry: 30 s of history in 3 s sub-windows,
// matched to the overload events the fleet-serving roadmap cares about.
const (
	DefaultWindow = 30 * time.Second
	windowSlots   = 10
)

// windowSlot is one sub-window of a rolling window. seq identifies which
// rotation the slot's contents belong to; a slot whose seq has fallen
// out of the window is expired (and is reset on its next use).
type windowSlot struct {
	seq     atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
	buckets []atomic.Int64
}

// rotate ensures the slot holds data for sub-window seq, electing one
// caller to clear stale contents. Allocation-free.
func (s *windowSlot) rotate(seq int64) {
	old := s.seq.Load()
	if old == seq {
		return
	}
	if !s.seq.CompareAndSwap(old, seq) {
		return // another recorder is resetting; record into its slot
	}
	s.count.Store(0)
	s.sum.Store(0)
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
}

// WindowedCounter counts events over a rolling time window, from which
// Stats derives an events-per-second rate. Inc/Add are lock-free and
// allocation-free; a nil *WindowedCounter is a no-op.
type WindowedCounter struct {
	slotDur int64 // nanoseconds per sub-window
	slots   []windowSlot
	clock   func() time.Time // test hook; nil means time.Now
}

func newWindowedCounter(window time.Duration) *WindowedCounter {
	if window <= 0 {
		window = DefaultWindow
	}
	return &WindowedCounter{
		slotDur: int64(window) / windowSlots,
		slots:   make([]windowSlot, windowSlots),
	}
}

func (c *WindowedCounter) now() int64 {
	if c.clock != nil {
		return c.clock().UnixNano()
	}
	return time.Now().UnixNano()
}

// Inc adds one to the current sub-window.
func (c *WindowedCounter) Inc() { c.Add(1) }

// Add increases the current sub-window's count by n.
func (c *WindowedCounter) Add(n int64) {
	if c == nil {
		return
	}
	seq := c.now() / c.slotDur
	s := &c.slots[int(seq%int64(len(c.slots)))]
	s.rotate(seq)
	s.count.Add(n)
}

// Window returns the rolling window's span.
func (c *WindowedCounter) Window() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.slotDur * int64(len(c.slots)))
}

// Stats aggregates the sub-windows still inside the rolling window.
func (c *WindowedCounter) Stats() WindowedCounterStats {
	if c == nil {
		return WindowedCounterStats{}
	}
	cur := c.now() / c.slotDur
	st := WindowedCounterStats{WindowSeconds: c.Window().Seconds()}
	for i := range c.slots {
		s := &c.slots[i]
		if seq := s.seq.Load(); seq > cur-int64(len(c.slots)) && seq <= cur {
			st.Count += s.count.Load()
		}
	}
	if st.WindowSeconds > 0 {
		st.RatePerSec = float64(st.Count) / st.WindowSeconds
	}
	return st
}

// WindowedCounterStats is the exported summary of one windowed counter.
type WindowedCounterStats struct {
	Count         int64   `json:"count"`
	RatePerSec    float64 `json:"rate_per_sec"`
	WindowSeconds float64 `json:"window_seconds"`
}

// WindowedHistogram is a streaming histogram over a rolling time window:
// same fixed bucket bounds as Histogram, but Stats reports quantiles,
// mean and rate computed from only the last Window of observations.
// Observe is lock-free and allocation-free; a nil *WindowedHistogram is
// a no-op.
type WindowedHistogram struct {
	bounds  []float64
	slotDur int64
	slots   []windowSlot
	clock   func() time.Time // test hook; nil means time.Now
}

func newWindowedHistogram(bounds []float64, window time.Duration) *WindowedHistogram {
	if window <= 0 {
		window = DefaultWindow
	}
	h := &WindowedHistogram{
		bounds:  bounds,
		slotDur: int64(window) / windowSlots,
		slots:   make([]windowSlot, windowSlots),
	}
	for i := range h.slots {
		h.slots[i].buckets = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

func (h *WindowedHistogram) now() int64 {
	if h.clock != nil {
		return h.clock().UnixNano()
	}
	return time.Now().UnixNano()
}

// Observe records one value into the current sub-window.
func (h *WindowedHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	seq := h.now() / h.slotDur
	s := &h.slots[int(seq%int64(len(h.slots)))]
	s.rotate(seq)
	s.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sum.Load()
		if s.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// Window returns the rolling window's span.
func (h *WindowedHistogram) Window() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.slotDur * int64(len(h.slots)))
}

// Stats aggregates the live sub-windows into count, sum, rate and
// interpolated quantiles (the same estimator as Histogram.Quantile,
// over the merged bucket counts).
func (h *WindowedHistogram) Stats() WindowedHistogramStats {
	if h == nil {
		return WindowedHistogramStats{}
	}
	cur := h.now() / h.slotDur
	st := WindowedHistogramStats{WindowSeconds: h.Window().Seconds()}
	merged := make([]int64, len(h.bounds)+1)
	for i := range h.slots {
		s := &h.slots[i]
		if seq := s.seq.Load(); seq > cur-int64(len(h.slots)) && seq <= cur {
			st.Count += s.count.Load()
			st.Sum += math.Float64frombits(s.sum.Load())
			for b := range s.buckets {
				merged[b] += s.buckets[b].Load()
			}
		}
	}
	if st.Count == 0 {
		return st
	}
	st.Mean = st.Sum / float64(st.Count)
	if st.WindowSeconds > 0 {
		st.RatePerSec = float64(st.Count) / st.WindowSeconds
	}
	st.P50 = windowQuantile(h.bounds, merged, st.Count, 0.50)
	st.P95 = windowQuantile(h.bounds, merged, st.Count, 0.95)
	st.P99 = windowQuantile(h.bounds, merged, st.Count, 0.99)
	return st
}

// windowQuantile interpolates the p-quantile inside merged bucket
// counts, mirroring Histogram.Quantile. The overflow bucket has no
// upper bound; its estimate is the last finite bound.
func windowQuantile(bounds []float64, buckets []int64, total int64, p float64) float64 {
	rank := p * float64(total)
	cum := 0.0
	for i, bn := range buckets {
		n := float64(bn)
		if cum+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := lo
			if i < len(bounds) {
				hi = bounds[i]
			}
			return lo + (hi-lo)*((rank-cum)/n)
		}
		cum += n
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// WindowedHistogramStats is the exported summary of one windowed
// histogram: the last WindowSeconds of observations only.
type WindowedHistogramStats struct {
	Count         int64   `json:"count"`
	Sum           float64 `json:"sum"`
	Mean          float64 `json:"mean"`
	RatePerSec    float64 `json:"rate_per_sec"`
	P50           float64 `json:"p50"`
	P95           float64 `json:"p95"`
	P99           float64 `json:"p99"`
	WindowSeconds float64 `json:"window_seconds"`
}
