// Package obs is the observability substrate of the dcSR system: a
// concurrency-safe metrics registry (atomic counters, gauges, streaming
// histograms with quantile estimates), a lightweight span tracer for
// nested pipeline stages exportable as a JSON trace tree, and a leveled
// structured logger — all standard-library only.
//
// Every handle is nil-safe: a nil *Obs, *Registry, *Tracer, *Logger,
// *Counter, *Gauge, *Histogram or *Span turns every operation into a
// no-op that performs zero allocations, so instrumented code paths pay
// nothing when observability is disabled. Components therefore take a
// plain `Obs *obs.Obs` field (or parameter) whose zero value means
// "off"; the instrumentation call sites never branch on it.
//
// Stable metric surface (asserted by tests, tabulated with meanings in
// docs/OPERATIONS.md):
//
//	prepare_runs_total, prepare_segments_total, prepare_clusters_total,
//	train_samples_total, train_steps_total, train_flops_total,
//	segments_fetched_total, cache_hits_total, cache_misses_total,
//	video_bytes_total, model_bytes_total,
//	degraded_segments_total, model_fetch_failures_total,
//	codec_frames_decoded_total, codec_iframes_enhanced_total,
//	codec_enhance_seconds (histogram),
//	transport_requests_total, transport_not_found_total,
//	transport_shed_total,
//	transport_bytes_in_total, transport_bytes_out_total,
//	transport_open_conns, transport_videos, transport_inflight,
//	transport_inflight_peak (gauges),
//	transport_manifest_seconds, transport_segment_seconds,
//	transport_model_seconds, transport_directory_seconds,
//	transport_unknown_seconds (histograms),
//	transport_client_requests_total, transport_client_bytes_up_total,
//	transport_client_bytes_down_total, transport_client_retries_total,
//	transport_client_timeouts_total, transport_client_reconnects_total,
//	transport_client_shed_total,
//	transport_client_rtt_seconds (histogram),
//	and the time-resolved rolling-window series
//	transport_requests_window_total, transport_shed_window_total,
//	segments_fetched_window_total
//	(windowed counters), transport_manifest_window_seconds,
//	transport_segment_window_seconds, transport_model_window_seconds,
//	transport_client_rtt_window_seconds, codec_enhance_window_seconds
//	(windowed histograms).
package obs

// Obs bundles the observability facilities a component may use.
// The zero value (and a nil pointer) disables everything.
type Obs struct {
	Metrics *Registry
	Trace   *Tracer
	Log     *Logger
	// TraceBuf retains recently completed cross-process request spans
	// (the transport server's half of wire trace propagation), looked
	// up by trace ID on /debug/trace?id=.
	TraceBuf *TraceBuffer
}

// New returns an Obs with a fresh registry, a tracer keeping the last
// 32 root spans, and a trace buffer keeping the last 256 request
// spans. Log is left nil (no-op); set it to enable logging.
func New() *Obs {
	return &Obs{Metrics: NewRegistry(), Trace: NewTracer(32), TraceBuf: NewTraceBuffer(256)}
}

// Counter returns the named counter, or nil (a no-op) when o is nil.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil (a no-op) when o is nil.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram with default bounds, or nil.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// WindowedCounter returns the named rolling-window counter, or nil (a
// no-op) when o is nil.
func (o *Obs) WindowedCounter(name string) *WindowedCounter {
	if o == nil {
		return nil
	}
	return o.Metrics.WindowedCounter(name)
}

// WindowedHistogram returns the named rolling-window histogram with
// default bounds and window, or nil (a no-op) when o is nil.
func (o *Obs) WindowedHistogram(name string) *WindowedHistogram {
	if o == nil {
		return nil
	}
	return o.Metrics.WindowedHistogram(name)
}

// Start opens a new root span on the tracer, or returns nil when o is
// nil (all Span operations on nil are no-ops).
func (o *Obs) Start(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Start(name)
}

// RecordTrace retains a completed span in the trace buffer for
// /debug/trace?id= lookup; a no-op when o (or its buffer) is nil.
func (o *Obs) RecordTrace(s *Span) {
	if o == nil {
		return
	}
	o.TraceBuf.Record(s)
}

// Logger returns the bundle's logger (possibly nil, which is a no-op).
func (o *Obs) Logger() *Logger {
	if o == nil {
		return nil
	}
	return o.Log
}
