package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// is a valid no-op receiver for every method.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// defaultBounds spans 1µs … ~16.8s in powers of two — suitable for the
// latency measurements the pipeline records (seconds as float64).
var defaultBounds = func() []float64 {
	b := make([]float64, 25)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bound streaming histogram: observations update
// atomic bucket counts plus sum/min/max, from which Quantile estimates
// p50/p95/p99 without storing samples. Observe is lock-free and
// allocation-free; a nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket implied
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
	min     atomic.Uint64 // float64 bits, seeded +Inf
	max     atomic.Uint64 // float64 bits, seeded -Inf
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// inside the bucket containing it. Returns 0 with no observations.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := math.Float64frombits(h.max.Load())
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*((rank-cum)/n)
		}
		cum += n
	}
	return math.Float64frombits(h.max.Load())
}

// Stats summarizes the histogram for snapshots.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	st := HistogramStats{}
	st.Count = h.count.Load()
	if st.Count == 0 {
		return st
	}
	st.Sum = h.Sum()
	st.Mean = st.Sum / float64(st.Count)
	st.Min = math.Float64frombits(h.min.Load())
	st.Max = math.Float64frombits(h.max.Load())
	st.P50 = h.Quantile(0.50)
	st.P95 = h.Quantile(0.95)
	st.P99 = h.Quantile(0.99)
	return st
}

// HistogramStats is the exported summary of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Registry holds named metrics. Metric handles are get-or-create and
// stable, so call sites may resolve once and hold the pointer. All
// methods are safe for concurrent use; a nil *Registry returns nil
// (no-op) handles.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	wcounters map[string]*WindowedCounter
	whists    map[string]*WindowedHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		wcounters: make(map[string]*WindowedCounter),
		whists:    make(map[string]*WindowedHistogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default (latency)
// bounds, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, defaultBounds)
}

// HistogramWith returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls keep the original
// bounds).
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WindowedCounter returns the named rolling-window counter with the
// default window (DefaultWindow), creating it on first use. Windowed
// metric names carry a `window` component by convention (enforced by
// the metricnames lint) so the time-resolved series are visibly
// distinct from their lifetime twins on /metrics.
func (r *Registry) WindowedCounter(name string) *WindowedCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.wcounters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.wcounters[name]; c == nil {
		c = newWindowedCounter(DefaultWindow)
		r.wcounters[name] = c
	}
	return c
}

// WindowedHistogram returns the named rolling-window histogram with the
// default (latency) bounds and window, creating it on first use.
func (r *Registry) WindowedHistogram(name string) *WindowedHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.whists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.whists[name]; h == nil {
		h = newWindowedHistogram(defaultBounds, DefaultWindow)
		r.whists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, JSON-marshalable.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
	// WindowedCounters and WindowedHistograms are the time-resolved
	// series: rates and quantiles over the last rolling window only,
	// alongside the lifetime values above.
	WindowedCounters   map[string]WindowedCounterStats   `json:"windowed_counters,omitempty"`
	WindowedHistograms map[string]WindowedHistogramStats `json:"windowed_histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return emptySnapshot()
	}
	s := emptySnapshot()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stats()
	}
	for name, c := range r.wcounters {
		s.WindowedCounters[name] = c.Stats()
	}
	for name, h := range r.whists {
		s.WindowedHistograms[name] = h.Stats()
	}
	return s
}

// emptySnapshot returns a Snapshot with every map initialized, so a nil
// registry still yields a marshal-safe value.
func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:           map[string]int64{},
		Gauges:             map[string]int64{},
		Histograms:         map[string]HistogramStats{},
		WindowedCounters:   map[string]WindowedCounterStats{},
		WindowedHistograms: map[string]WindowedHistogramStats{},
	}
}

// Text renders the snapshot as sorted plain-text lines in a
// Prometheus-like exposition format: `name value` for counters and
// gauges, and `name_count`, `name_sum`, `name_p50/p95/p99`,
// `name_min/max` lines for histograms.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %g\n", n, h.Sum)
		if h.Count > 0 {
			fmt.Fprintf(&b, "%s_min %g\n", n, h.Min)
			fmt.Fprintf(&b, "%s_max %g\n", n, h.Max)
			fmt.Fprintf(&b, "%s_p50 %g\n", n, h.P50)
			fmt.Fprintf(&b, "%s_p95 %g\n", n, h.P95)
			fmt.Fprintf(&b, "%s_p99 %g\n", n, h.P99)
		}
	}
	names = names[:0]
	for n := range s.WindowedCounters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := s.WindowedCounters[n]
		fmt.Fprintf(&b, "%s %d\n", n, c.Count)
		fmt.Fprintf(&b, "%s_rate %g\n", n, c.RatePerSec)
	}
	names = names[:0]
	for n := range s.WindowedHistograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.WindowedHistograms[n]
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_rate %g\n", n, h.RatePerSec)
		if h.Count > 0 {
			fmt.Fprintf(&b, "%s_p50 %g\n", n, h.P50)
			fmt.Fprintf(&b, "%s_p95 %g\n", n, h.P95)
			fmt.Fprintf(&b, "%s_p99 %g\n", n, h.P99)
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // maps of scalars cannot fail to marshal
		return []byte("{}")
	}
	return data
}
