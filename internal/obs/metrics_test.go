// Tests for the metrics registry. The concurrency tests here and in
// trace_test.go are written to be meaningful under the race detector;
// the documented invocation is:
//
//	go test -race ./internal/obs/...
package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("reqs_total").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Error("counter handle not stable across lookups")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000.0) // 1ms … 1s uniform
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-500.5) > 1e-6 {
		t.Errorf("sum = %g, want 500.5", h.Sum())
	}
	st := h.Stats()
	if st.Min != 0.001 || st.Max != 1.0 {
		t.Errorf("min/max = %g/%g", st.Min, st.Max)
	}
	// Bucketed estimates are coarse (power-of-two bounds); accept a
	// factor-of-two window around the exact quantile.
	checks := []struct {
		name       string
		got, exact float64
	}{{"p50", st.P50, 0.5}, {"p95", st.P95, 0.95}, {"p99", st.P99, 0.99}}
	for _, c := range checks {
		if c.got < c.exact/2 || c.got > c.exact*2 {
			t.Errorf("%s = %g, want within [%g, %g]", c.name, c.got, c.exact/2, c.exact*2)
		}
	}
	if st.P50 > st.P95 || st.P95 > st.P99 {
		t.Errorf("quantiles not monotone: %g %g %g", st.P50, st.P95, st.P99)
	}
}

func TestHistogramCustomBounds(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("bytes", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(1.0); q != 5000 {
		t.Errorf("p100 = %g, want 5000 (overflow bucket → max)", q)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// handle creation, counter increments, gauge sets and histogram
// observations all racing — and asserts the exact totals. Run with
// `go test -race ./internal/obs/...` to verify memory safety.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h_seconds").Observe(float64(i%100) / 1e3)
				if i%100 == 0 { // racing get-or-create on fresh names
					r.Counter("c2_total").Add(2)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != goroutines*perG {
		t.Errorf("c_total = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("c2_total").Value(); got != goroutines*(perG/100)*2 {
		t.Errorf("c2_total = %d, want %d", got, goroutines*(perG/100)*2)
	}
	if got := r.Histogram("h_seconds").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache_hits_total").Add(3)
	r.Gauge("sessions").Set(2)
	r.Histogram("enhance_seconds").Observe(0.01)
	snap := r.Snapshot()
	text := snap.Text()
	for _, want := range []string{
		"cache_hits_total 3\n",
		"sessions 2\n",
		"enhance_seconds_count 1\n",
		"enhance_seconds_p99",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(snap.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Counters["cache_hits_total"] != 3 {
		t.Errorf("JSON counters = %v", back.Counters)
	}
	if back.Histograms["enhance_seconds"].Count != 1 {
		t.Errorf("JSON histograms = %v", back.Histograms)
	}
}

// TestNopPathZeroAllocs asserts the disabled-observability contract:
// with a nil *Obs (and hence nil metric, span and logger handles) every
// per-event operation performs zero allocations.
func TestNopPathZeroAllocs(t *testing.T) {
	var o *Obs
	c := o.Counter("x_total")
	g := o.Gauge("x")
	h := o.Histogram("x_seconds")
	lg := o.Logger()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		h.Observe(0.5)
		sp := o.Start("prepare")
		ch := sp.Child("stage")
		ch.Set("k", 1)
		ch.End()
		sp.End()
		lg.Info("event")
		lg.Debug("event")
	}); n != 0 {
		t.Errorf("no-op path allocates %v bytes/event, want 0", n)
	}
}

// TestLiveObserveZeroAllocs asserts the hot recording path (counter
// add + histogram observe on live handles) is also allocation-free.
func TestLiveObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	h := r.Histogram("x_seconds")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.25)
	}); n != 0 {
		t.Errorf("live observe allocates %v bytes/event, want 0", n)
	}
}
