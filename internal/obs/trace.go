package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Span is one timed stage of a pipeline run. Spans form a tree: child
// spans are created with Child and may be added concurrently (per-span
// mutex), which core.Prepare relies on for its parallel per-cluster
// training stage. A nil *Span is a no-op for every method, so call
// sites never branch on whether tracing is enabled.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child opens a sub-span. Safe to call from multiple goroutines.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Set attaches an attribute (last write for a key wins on export).
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End marks the span finished; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns the span's wall time (time-to-now if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanJSON is the exportable snapshot of a span subtree.
type SpanJSON struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	InFlight   bool           `json:"in_flight,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// Export snapshots the span and its descendants into a JSON-ready tree.
func (s *Span) Export() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{Name: s.name, Start: s.start}
	if s.end.IsZero() {
		out.InFlight = true
		out.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	} else {
		out.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// Tracer retains the most recent root spans (a bounded ring) so an
// operator can inspect the last few Prepare/Play runs via /debug/trace.
// A nil *Tracer returns nil spans from Start.
type Tracer struct {
	mu    sync.Mutex
	keep  int
	roots []*Span
}

// NewTracer returns a tracer retaining the last keep root spans
// (keep <= 0 means 16).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 16
	}
	return &Tracer{keep: keep}
}

// Start opens and retains a new root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	if len(t.roots) > t.keep {
		t.roots = append(t.roots[:0], t.roots[len(t.roots)-t.keep:]...)
	}
	t.mu.Unlock()
	return s
}

// Traces exports the retained root spans, oldest first.
func (t *Tracer) Traces() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, len(t.roots))
	copy(roots, t.roots)
	t.mu.Unlock()
	out := make([]SpanJSON, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Export())
	}
	return out
}

// TracesJSON renders Traces as indented JSON.
func (t *Tracer) TracesJSON() []byte {
	data, err := json.MarshalIndent(t.Traces(), "", "  ")
	if err != nil {
		return []byte("[]")
	}
	return data
}
