package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// idCounter drives trace/span ID generation: a process-unique seed
// (stamped from the clock at init) advanced by a large odd constant and
// mixed through splitmix64, so IDs are cheap, allocation-free, unique
// within a process and well-distributed across processes. IDs are
// identifiers, not randomness — determinism of the pipeline's outputs
// is untouched.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(uint64(time.Now().UnixNano()))
}

// newID returns a non-zero 64-bit identifier. Zero is reserved as the
// wire encoding of "no trace".
func newID() uint64 {
	x := idCounter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// IDString renders a trace or span ID the way /debug/trace and the
// -trace CLI flag print them: 16 lower-case hex digits.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// Span is one timed stage of a pipeline run. Spans form a tree: child
// spans are created with Child and may be added concurrently (per-span
// mutex), which core.Prepare relies on for its parallel per-cluster
// training stage. A nil *Span is a no-op for every method, so call
// sites never branch on whether tracing is enabled.
//
// Every span carries identity: a trace ID shared by the whole tree (and
// propagated across the wire by internal/transport) plus its own span
// ID and its parent's. The IDs are immutable after creation.
type Span struct {
	mu       sync.Mutex
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

func newSpan(name string) *Span {
	return &Span{name: name, traceID: newID(), spanID: newID(), start: time.Now()}
}

// JoinSpan opens a detached root span that joins an existing trace —
// the server side of wire trace propagation, where the parent span
// lives in another process. The span is not retained anywhere; record
// it into a TraceBuffer (Obs.RecordTrace) once ended.
func JoinSpan(name string, traceID, parentID uint64) *Span {
	s := newSpan(name)
	s.traceID = traceID
	s.parentID = parentID
	return s
}

// TraceID returns the identifier shared by every span of this trace
// (zero on a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns this span's own identifier (zero on a nil span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// Child opens a sub-span sharing the parent's trace ID. Safe to call
// from multiple goroutines.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	c.traceID = s.traceID
	c.parentID = s.spanID
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Set attaches an attribute (last write for a key wins on export).
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End marks the span finished; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns the span's wall time (time-to-now if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanJSON is the exportable snapshot of a span subtree. TraceID,
// SpanID and ParentID are 16-hex-digit identifiers (see IDString);
// ParentID is empty on a locally rooted span.
type SpanJSON struct {
	Name       string         `json:"name"`
	TraceID    string         `json:"trace_id,omitempty"`
	SpanID     string         `json:"span_id,omitempty"`
	ParentID   string         `json:"parent_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	InFlight   bool           `json:"in_flight,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// Export snapshots the span and its descendants into a JSON-ready tree.
func (s *Span) Export() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{Name: s.name, Start: s.start}
	if s.traceID != 0 {
		out.TraceID = IDString(s.traceID)
		out.SpanID = IDString(s.spanID)
	}
	if s.parentID != 0 {
		out.ParentID = IDString(s.parentID)
	}
	if s.end.IsZero() {
		out.InFlight = true
		out.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	} else {
		out.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// Tracer retains the most recent root spans (a bounded ring) so an
// operator can inspect the last few Prepare/Play runs via /debug/trace.
// A nil *Tracer returns nil spans from Start.
type Tracer struct {
	mu    sync.Mutex
	keep  int
	roots []*Span
}

// NewTracer returns a tracer retaining the last keep root spans
// (keep <= 0 means 16).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 16
	}
	return &Tracer{keep: keep}
}

// Start opens and retains a new root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	if len(t.roots) > t.keep {
		t.roots = append(t.roots[:0], t.roots[len(t.roots)-t.keep:]...)
	}
	t.mu.Unlock()
	return s
}

// Traces exports the retained root spans, oldest first.
func (t *Tracer) Traces() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, len(t.roots))
	copy(roots, t.roots)
	t.mu.Unlock()
	out := make([]SpanJSON, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Export())
	}
	return out
}

// TracesJSON renders Traces as indented JSON.
func (t *Tracer) TracesJSON() []byte {
	data, err := json.MarshalIndent(t.Traces(), "", "  ")
	if err != nil {
		return []byte("[]")
	}
	return data
}

// TraceBuffer retains the most recent completed spans in a bounded
// ring, indexed by trace ID, so an operator can reassemble one
// request's cross-process story after the fact: the transport server
// records one span per traced request here, and /debug/trace?id=
// returns every retained span of that trace. A nil *TraceBuffer is a
// no-op recorder and an empty lookup.
type TraceBuffer struct {
	mu    sync.Mutex
	cap   int
	spans []*Span // recording order, oldest first
}

// NewTraceBuffer returns a buffer retaining the last capacity spans
// (capacity <= 0 means 256).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceBuffer{cap: capacity}
}

// Record retains a completed span, evicting the oldest past capacity.
func (b *TraceBuffer) Record(s *Span) {
	if b == nil {
		return
	}
	if s == nil {
		return
	}
	b.mu.Lock()
	b.spans = append(b.spans, s)
	if len(b.spans) > b.cap {
		b.spans = append(b.spans[:0], b.spans[len(b.spans)-b.cap:]...)
	}
	b.mu.Unlock()
}

// Len returns how many spans are currently retained.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spans)
}

// Trace exports every retained span belonging to traceID, in recording
// order. The result is nil when the trace has aged out (or never hit
// this process).
func (b *TraceBuffer) Trace(traceID uint64) []SpanJSON {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	var match []*Span
	for _, s := range b.spans {
		if s.traceID == traceID {
			match = append(match, s)
		}
	}
	b.mu.Unlock()
	out := make([]SpanJSON, 0, len(match))
	for _, s := range match {
		out = append(out, s.Export())
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
