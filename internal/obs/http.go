package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the debug HTTP sidecar mux:
//
//	/metrics        — plain-text metric lines; ?format=json for a
//	                  structured Snapshot
//	/debug/trace    — JSON array of the most recent root span trees
//	                  (?n=K limits to the last K traces);
//	                  ?id=<16-hex-digit trace ID> instead returns every
//	                  retained request span of that trace from the
//	                  cross-process trace buffer (404 if aged out)
//	/debug/pprof/…  — the standard net/http/pprof endpoints
//
// The handler is safe to serve while the pipeline is running; snapshots
// and trace exports never block metric or span recording for long.
func (o *Obs) Handler() http.Handler {
	if o == nil {
		o = &Obs{} // nil handles degrade to empty snapshots, not panics
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := o.Metrics.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			writeBody(w, snap.JSON())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeBody(w, []byte(snap.Text()))
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id: want 16 hex digits", http.StatusBadRequest)
				return
			}
			spans := o.TraceBuf.Trace(id)
			if spans == nil {
				http.Error(w, "trace not found (aged out or never seen)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			data, err := json.MarshalIndent(spans, "", "  ")
			if err != nil {
				data = []byte("[]")
			}
			writeBody(w, data)
			return
		}
		traces := o.Trace.Traces()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(traces, "", "  ")
		if err != nil {
			data = []byte("[]")
		}
		writeBody(w, data)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeBody sends an already-assembled response body on a debug
// endpoint.
func writeBody(w http.ResponseWriter, body []byte) {
	//lint:allow errcheck the debug sidecar is best-effort: a failed write means the scraper disconnected and there is no caller to surface the error to
	_, _ = w.Write(body)
}
