package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func fixedLogger(buf *syncBuf, min Level) *Logger {
	l := NewLogger(buf, min)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLoggerFormatAndLevels(t *testing.T) {
	var buf syncBuf
	l := fixedLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("prepare: done", "segments", 5, "path", "a b")
	l.Error("boom", "err", "broken pipe")
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if want := `2026-08-05T12:00:00.000Z INFO prepare: done segments=5 path="a b"`; lines[0] != want {
		t.Errorf("line = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "2026-08-05T12:00:00.000Z ERROR boom err=") {
		t.Errorf("error line = %q", lines[1])
	}
}

func TestLoggerWithContext(t *testing.T) {
	var buf syncBuf
	l := fixedLogger(&buf, LevelDebug).With("conn", "127.0.0.1:9")
	l.Debug("req", "op", 1)
	if got := buf.String(); !strings.Contains(got, "req conn=127.0.0.1:9 op=1") {
		t.Errorf("line = %q", got)
	}
}

func TestLoggerOddKV(t *testing.T) {
	var buf syncBuf
	fixedLogger(&buf, LevelInfo).Info("x", "key")
	if got := buf.String(); !strings.Contains(got, "key=!MISSING") {
		t.Errorf("line = %q", got)
	}
}

func TestLoggerEnabled(t *testing.T) {
	var nilL *Logger
	if nilL.Enabled(LevelError) {
		t.Error("nil logger reported enabled")
	}
	nilL.Info("no-op")
	nilL.With("k", "v").Error("still no-op")
	var buf syncBuf
	l := fixedLogger(&buf, LevelWarn)
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) {
		t.Error("Enabled thresholds wrong")
	}
}

// TestLoggerConcurrent verifies whole lines are emitted atomically when
// many goroutines share one logger (and a With-derived sibling).
func TestLoggerConcurrent(t *testing.T) {
	var buf syncBuf
	l := fixedLogger(&buf, LevelInfo)
	d := l.With("worker", "d")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("tick", "g", g, "i", i)
				d.Info("tock", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d lines, want 1600", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "2026-08-05T12:00:00.000Z INFO t") {
			t.Fatalf("interleaved line: %q", ln)
		}
	}
}
