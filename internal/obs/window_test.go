// Tests for the rolling-window metrics. Rotation is driven by an
// injected fake clock so expiry behaviour is fully deterministic (no
// wall-clock sleeps), which also keeps the nodeterm lint contract easy
// to reason about: the production path reads time.Now only through the
// unexported clock hook.
package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for window tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestWindowedCounterRotationDeterminism(t *testing.T) {
	clk := newFakeClock()
	c := newWindowedCounter(10 * time.Second) // 1s sub-windows
	c.clock = clk.now

	c.Add(5)
	if st := c.Stats(); st.Count != 5 {
		t.Fatalf("fresh count = %d, want 5", st.Count)
	}

	// Half-way through the window the events are still visible.
	clk.advance(5 * time.Second)
	c.Inc()
	if st := c.Stats(); st.Count != 6 {
		t.Fatalf("mid-window count = %d, want 6", st.Count)
	}

	// Advance so only the second burst survives: the first burst is
	// now 10.5s old (outside), the second 5.5s old (inside).
	clk.advance(5500 * time.Millisecond)
	if st := c.Stats(); st.Count != 1 {
		t.Fatalf("post-expiry count = %d, want 1", st.Count)
	}

	// A full window later everything has aged out.
	clk.advance(10 * time.Second)
	st := c.Stats()
	if st.Count != 0 || st.RatePerSec != 0 {
		t.Fatalf("drained window = %+v, want zero", st)
	}
	if st.WindowSeconds != 10 {
		t.Fatalf("window seconds = %g, want 10", st.WindowSeconds)
	}
}

func TestWindowedCounterSlotReuse(t *testing.T) {
	clk := newFakeClock()
	c := newWindowedCounter(10 * time.Second)
	c.clock = clk.now

	// Write into the same physical slot across two rotations: the
	// second write must see a cleared slot, not accumulate onto the
	// first (windowSlots sub-windows later the ring index repeats).
	c.Add(7)
	clk.advance(10 * time.Second) // exactly windowSlots sub-windows
	c.Add(2)
	if st := c.Stats(); st.Count != 2 {
		t.Fatalf("count after slot reuse = %d, want 2", st.Count)
	}
}

func TestWindowedCounterRate(t *testing.T) {
	clk := newFakeClock()
	c := newWindowedCounter(10 * time.Second)
	c.clock = clk.now
	for i := 0; i < 40; i++ {
		c.Inc()
		clk.advance(250 * time.Millisecond)
	}
	// Reading at t=10s, the first 1s sub-window (4 events) has rolled
	// off; the remaining 36 events over 10s give 3.6/s.
	st := c.Stats()
	if st.Count != 36 {
		t.Fatalf("count = %d, want 36", st.Count)
	}
	if math.Abs(st.RatePerSec-3.6) > 1e-9 {
		t.Fatalf("rate = %g, want 3.6", st.RatePerSec)
	}
}

func TestWindowedHistogramStats(t *testing.T) {
	clk := newFakeClock()
	h := newWindowedHistogram(defaultBounds, 10*time.Second)
	h.clock = clk.now

	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000.0)
	}
	st := h.Stats()
	if st.Count != 1000 {
		t.Fatalf("count = %d, want 1000", st.Count)
	}
	if math.Abs(st.Sum-500.5) > 1e-6 {
		t.Fatalf("sum = %g, want 500.5", st.Sum)
	}
	if math.Abs(st.Mean-0.5005) > 1e-6 {
		t.Fatalf("mean = %g", st.Mean)
	}
	// Same coarse power-of-two bucket tolerance as the lifetime
	// histogram tests.
	checks := []struct {
		name       string
		got, exact float64
	}{{"p50", st.P50, 0.5}, {"p95", st.P95, 0.95}, {"p99", st.P99, 0.99}}
	for _, c := range checks {
		if c.got < c.exact/2 || c.got > c.exact*2 {
			t.Errorf("%s = %g, want within [%g, %g]", c.name, c.got, c.exact/2, c.exact*2)
		}
	}

	// Unlike the lifetime histogram, the windowed view forgets: after a
	// full window of silence the quantiles reset.
	clk.advance(11 * time.Second)
	if st := h.Stats(); st.Count != 0 || st.P99 != 0 {
		t.Fatalf("expired stats = %+v, want empty", st)
	}
}

func TestWindowedHistogramPartialExpiry(t *testing.T) {
	clk := newFakeClock()
	h := newWindowedHistogram(defaultBounds, 10*time.Second)
	h.clock = clk.now

	h.Observe(0.001) // fast era
	clk.advance(8 * time.Second)
	h.Observe(4.0) // slow era
	clk.advance(3 * time.Second)

	// The fast observation (11s old) is out; the slow one (3s) remains,
	// so the windowed p99 reflects only the recent regime.
	st := h.Stats()
	if st.Count != 1 {
		t.Fatalf("count = %d, want 1", st.Count)
	}
	if st.P99 < 1.0 {
		t.Fatalf("p99 = %g, want dominated by the slow observation", st.P99)
	}
}

// TestWindowedRecordZeroAllocs pins the hot record path — the property
// BenchmarkObsOverhead measures — as a hard test: recording into live
// windowed handles must not allocate.
func TestWindowedRecordZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.WindowedCounter("x_window_total")
	h := r.WindowedHistogram("x_window_seconds")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(0.25)
	}); n != 0 {
		t.Errorf("windowed record path allocates %v bytes/event, want 0", n)
	}
}

func TestWindowedNilSafety(t *testing.T) {
	var c *WindowedCounter
	var h *WindowedHistogram
	var o *Obs
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(5)
		h.Observe(1.0)
		o.WindowedCounter("x_window_total").Inc()
		o.WindowedHistogram("x_window_seconds").Observe(1.0)
	}); n != 0 {
		t.Errorf("nil windowed path allocates %v bytes/event, want 0", n)
	}
	if st := c.Stats(); st != (WindowedCounterStats{}) {
		t.Errorf("nil counter stats = %+v", st)
	}
	if st := h.Stats(); st != (WindowedHistogramStats{}) {
		t.Errorf("nil histogram stats = %+v", st)
	}
	if c.Window() != 0 || h.Window() != 0 {
		t.Error("nil Window() should be 0")
	}
}

func TestWindowedHandleStability(t *testing.T) {
	r := NewRegistry()
	if r.WindowedCounter("a_window_total") != r.WindowedCounter("a_window_total") {
		t.Error("windowed counter handle not stable across lookups")
	}
	if r.WindowedHistogram("a_window_seconds") != r.WindowedHistogram("a_window_seconds") {
		t.Error("windowed histogram handle not stable across lookups")
	}
	var nilReg *Registry
	if nilReg.WindowedCounter("x") != nil || nilReg.WindowedHistogram("x") != nil {
		t.Error("nil registry should hand out nil windowed handles")
	}
}

func TestWindowedSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.WindowedCounter("req_window_total").Add(3)
	r.WindowedHistogram("lat_window_seconds").Observe(0.5)

	snap := r.Snapshot()
	if snap.WindowedCounters["req_window_total"].Count != 3 {
		t.Errorf("snapshot windowed counters = %+v", snap.WindowedCounters)
	}
	if snap.WindowedHistograms["lat_window_seconds"].Count != 1 {
		t.Errorf("snapshot windowed histograms = %+v", snap.WindowedHistograms)
	}

	text := snap.Text()
	for _, want := range []string{"req_window_total 3", "req_window_total_rate", "lat_window_seconds_count 1", "lat_window_seconds_p99"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}

	var back Snapshot
	if err := json.Unmarshal(snap.JSON(), &back); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	if back.WindowedCounters["req_window_total"].Count != 3 {
		t.Errorf("JSON windowed counters = %+v", back.WindowedCounters)
	}
	if back.WindowedHistograms["lat_window_seconds"].P99 <= 0 {
		t.Errorf("JSON windowed histogram p99 = %+v", back.WindowedHistograms)
	}
}

func TestWindowedConcurrent(t *testing.T) {
	// Meaningful under -race: concurrent recorders across a rotation
	// boundary must not trip the detector or corrupt totals beyond the
	// documented adjacent-sub-window tolerance.
	r := NewRegistry()
	c := r.WindowedCounter("c_window_total")
	h := r.WindowedHistogram("h_window_seconds")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	// All recording happened well inside one window span.
	if got := c.Stats().Count; got != 16000 {
		t.Errorf("concurrent windowed count = %d, want 16000", got)
	}
	if got := h.Stats().Count; got != 16000 {
		t.Errorf("concurrent windowed histogram count = %d, want 16000", got)
	}
}
