package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, ascending.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the canonical upper-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// Logger is a leveled structured logger emitting logfmt-style lines:
//
//	2026-08-05T12:00:00.000Z INFO prepare: stage done stage=encode bytes=1234
//
// Key/value context is passed as alternating kv pairs. A nil *Logger is
// the no-op default: every method returns immediately, so components
// can hold a plain *Logger field whose zero value disables logging.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	attrs string // pre-rendered " k=v" context from With
	now   func() time.Time
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a derived logger whose lines carry the extra kv context.
// The derived logger shares the parent's writer and mutex.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	var b strings.Builder
	b.WriteString(l.attrs)
	appendKV(&b, kv)
	d.attrs = b.String()
	return &d
}

// Enabled reports whether a line at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if l == nil || lv < l.min {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(lv.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	b.WriteString(l.attrs)
	appendKV(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKV renders alternating key/value pairs as " k=v". A trailing
// key without a value gets the marker value "!MISSING".
func appendKV(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprint(b, kv[i])
		b.WriteByte('=')
		if i+1 < len(kv) {
			writeValue(b, kv[i+1])
		} else {
			b.WriteString("!MISSING")
		}
	}
}

// writeValue quotes values containing spaces so lines stay parseable.
func writeValue(b *strings.Builder, v any) {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"=") {
		fmt.Fprintf(b, "%q", s)
		return
	}
	b.WriteString(s)
}
