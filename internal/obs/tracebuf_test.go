// Tests for span identity, cross-process trace joining and the bounded
// trace buffer behind /debug/trace?id=.
package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSpanIdentity(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("play")
	child := root.Child("segment")

	if root.TraceID() == 0 || root.SpanID() == 0 {
		t.Fatal("root span must carry non-zero identity")
	}
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace ID %x != root %x", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() {
		t.Error("child must have its own span ID")
	}
	child.End()
	root.End()

	out := root.Export()
	if out.TraceID != IDString(root.TraceID()) || out.SpanID != IDString(root.SpanID()) {
		t.Errorf("export IDs = %q/%q", out.TraceID, out.SpanID)
	}
	if out.ParentID != "" {
		t.Errorf("root parent = %q, want empty", out.ParentID)
	}
	if len(out.Children) != 1 || out.Children[0].ParentID != out.SpanID {
		t.Errorf("child not parented to root: %+v", out.Children)
	}
}

func TestNewIDUniqueAndNonZero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatal("newID returned the reserved zero value")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %x after %d draws", id, i)
		}
		seen[id] = true
	}
	if got := IDString(0x1a); got != "000000000000001a" {
		t.Errorf("IDString = %q", got)
	}
}

func TestJoinSpan(t *testing.T) {
	// Simulate the server side: a remote parent identified only by IDs.
	const traceID, parentID = 0xabc, 0xdef
	s := JoinSpan("server.segment", traceID, parentID)
	s.Set("status", "ok")
	s.End()

	if s.TraceID() != traceID {
		t.Errorf("trace ID = %x, want %x", s.TraceID(), traceID)
	}
	out := s.Export()
	if out.ParentID != IDString(parentID) {
		t.Errorf("parent ID = %q, want %q", out.ParentID, IDString(parentID))
	}
	if out.SpanID == IDString(parentID) || out.SpanID == "" {
		t.Errorf("joined span must mint its own span ID, got %q", out.SpanID)
	}
}

func TestTraceBufferLookupAndEviction(t *testing.T) {
	b := NewTraceBuffer(4)
	for i := 0; i < 6; i++ {
		s := JoinSpan(fmt.Sprintf("req%d", i), uint64(100+i), 1)
		s.End()
		b.Record(s)
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", b.Len())
	}
	// The two oldest traces were evicted.
	if got := b.Trace(100); got != nil {
		t.Errorf("evicted trace still retrievable: %+v", got)
	}
	if got := b.Trace(105); len(got) != 1 || got[0].Name != "req5" {
		t.Errorf("trace 105 = %+v", got)
	}
	if got := b.Trace(0xffff); got != nil {
		t.Errorf("unknown trace = %+v, want nil", got)
	}

	// Multiple spans of one trace come back in recording order.
	b2 := NewTraceBuffer(8)
	for attempt := 1; attempt <= 3; attempt++ {
		s := JoinSpan("server.model", 0x77, uint64(attempt))
		s.End()
		b2.Record(s)
	}
	got := b2.Trace(0x77)
	if len(got) != 3 {
		t.Fatalf("trace spans = %d, want 3", len(got))
	}
	for i, sp := range got {
		if sp.ParentID != IDString(uint64(i+1)) {
			t.Errorf("span %d parent = %q", i, sp.ParentID)
		}
	}
}

func TestTraceBufferNilSafety(t *testing.T) {
	var b *TraceBuffer
	b.Record(JoinSpan("x", 1, 0))
	if b.Len() != 0 || b.Trace(1) != nil {
		t.Error("nil buffer must be an empty no-op")
	}
	live := NewTraceBuffer(0) // defaulted capacity
	live.Record(nil)          // nil span ignored
	if live.Len() != 0 {
		t.Error("recording a nil span must be a no-op")
	}
	var o *Obs
	o.RecordTrace(JoinSpan("x", 1, 0)) // must not panic
}

func TestDebugTraceByID(t *testing.T) {
	o := New()
	s := JoinSpan("server.segment", 0xbeef, 0x1)
	s.Set("op", "segment")
	s.End()
	o.RecordTrace(s)

	h := o.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+IDString(0xbeef), nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var spans []SpanJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "server.segment" || spans[0].TraceID != IDString(0xbeef) {
		t.Errorf("spans = %+v", spans)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id=00000000000000aa", nil))
	if rec.Code != 404 {
		t.Errorf("unknown trace status = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id=nothex", nil))
	if rec.Code != 400 {
		t.Errorf("malformed id status = %d, want 400", rec.Code)
	}

	// Without ?id= the endpoint still serves the local root-span list.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 || !strings.HasPrefix(strings.TrimSpace(rec.Body.String()), "[") {
		t.Errorf("trace list status = %d, body %q", rec.Code, rec.Body.String())
	}
}
