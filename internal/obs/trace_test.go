package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("prepare")
	enc := root.Child("encode")
	enc.Set("bytes", 1234)
	time.Sleep(time.Millisecond)
	enc.End()
	train := root.Child("train")
	c0 := train.Child("train_cluster")
	c0.Set("label", 0)
	c0.End()
	train.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Name != "prepare" || len(got.Children) != 2 {
		t.Fatalf("root = %+v", got)
	}
	if got.Children[0].Name != "encode" {
		t.Errorf("encode child = %+v", got.Children[0])
	}
	if v, ok := got.Children[0].Attrs["bytes"].(int); !ok || v != 1234 {
		t.Errorf("encode attrs = %+v", got.Children[0].Attrs)
	}
	if got.Children[0].DurationMS <= 0 {
		t.Errorf("encode duration = %v, want > 0", got.Children[0].DurationMS)
	}
	if got.Children[1].Children[0].Name != "train_cluster" {
		t.Errorf("nested child = %+v", got.Children[1])
	}
	if got.InFlight {
		t.Error("ended root reported in flight")
	}
	// The tree must be JSON-marshalable for /debug/trace.
	if _, err := json.Marshal(traces); err != nil {
		t.Fatalf("marshal traces: %v", err)
	}
}

func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Start("run").End()
	}
	if got := len(tr.Traces()); got != 3 {
		t.Errorf("retained %d traces, want 3", got)
	}
}

// TestSpanConcurrentChildren mirrors core.Prepare's concurrent
// per-cluster training: many goroutines attach children and attributes
// to one parent span while another goroutine exports the tree. Run
// under `go test -race ./internal/obs/...`.
func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer(2)
	root := tr.Start("prepare")
	train := root.Child("train")
	const workers = 8
	const perW = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-stop:
				return
			default:
				tr.Traces()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c := train.Child("train_cluster")
				c.Set("label", w*perW+i)
				c.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	train.End()
	root.End()
	got := train.Export()
	if len(got.Children) != workers*perW {
		t.Errorf("children = %d, want %d", len(got.Children), workers*perW)
	}
}

func TestNilSpanAndTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// All no-ops:
	sp.Set("k", 1)
	sp.Child("c").End()
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if tr.Traces() != nil {
		t.Error("nil tracer returned traces")
	}
}
