// Package splitter implements shot-based variable-length video
// segmentation (paper §3.1.1, following Netflix's optimized shot-based
// encoding): a new segment starts wherever the difference between
// consecutive frames exceeds a threshold, so each segment is one visually
// coherent shot representable by its I frame.
package splitter

import (
	"fmt"

	"dcsr/internal/video"
)

// Config tunes scene-cut detection.
type Config struct {
	// Threshold is the mean-absolute luma difference (0–255) above which a
	// cut is declared. Default 18.
	Threshold float64
	// MinLen is the minimum segment length in frames; cuts closer than this
	// to the previous cut are suppressed. Default 4.
	MinLen int
	// MaxLen forces a segment boundary after this many frames even without
	// a detected cut (keeps worst-case segment durations bounded for ABR,
	// per the paper's note on adapting fixed-length ABR to variable
	// segments). 0 disables the cap.
	MaxLen int
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 18
	}
	if c.MinLen == 0 {
		c.MinLen = 4
	}
	return c
}

// Segment is a half-open frame range [Start, End) of one shot.
type Segment struct {
	Index      int
	Start, End int
}

// Len returns the segment length in frames.
func (s Segment) Len() int { return s.End - s.Start }

// String formats the segment range.
func (s Segment) String() string { return fmt.Sprintf("seg%d[%d:%d)", s.Index, s.Start, s.End) }

// Split partitions frames into variable-length shot segments.
func Split(frames []*video.YUV, cfg Config) []Segment {
	cfg = cfg.withDefaults()
	if len(frames) == 0 {
		return nil
	}
	cuts := CutPoints(frames, cfg)
	var segs []Segment
	start := 0
	for _, c := range cuts {
		segs = append(segs, Segment{Index: len(segs), Start: start, End: c})
		start = c
	}
	segs = append(segs, Segment{Index: len(segs), Start: start, End: len(frames)})
	return segs
}

// CutPoints returns the ascending frame indices where new segments begin
// (excluding index 0).
func CutPoints(frames []*video.YUV, cfg Config) []int {
	cfg = cfg.withDefaults()
	var cuts []int
	last := 0
	for i := 1; i < len(frames); i++ {
		cut := false
		if video.MeanAbsDiff(frames[i-1], frames[i]) > cfg.Threshold && i-last >= cfg.MinLen {
			cut = true
		}
		if cfg.MaxLen > 0 && i-last >= cfg.MaxLen {
			cut = true
		}
		if cut {
			cuts = append(cuts, i)
			last = i
		}
	}
	return cuts
}

// ForceIFlags converts segment boundaries into the per-frame force-I mask
// the encoder consumes, so every segment starts with an I frame.
func ForceIFlags(n int, segs []Segment) []bool {
	flags := make([]bool, n)
	for _, s := range segs {
		if s.Start < n {
			flags[s.Start] = true
		}
	}
	return flags
}

// FixedSplit partitions n frames into fixed-length segments (the
// content-agnostic strategy of NAS/NEMO, used by the split ablation).
func FixedSplit(n, segLen int) []Segment {
	if segLen <= 0 {
		panic("splitter: FixedSplit requires positive segment length")
	}
	var segs []Segment
	for start := 0; start < n; start += segLen {
		end := start + segLen
		if end > n {
			end = n
		}
		segs = append(segs, Segment{Index: len(segs), Start: start, End: end})
	}
	return segs
}
