package splitter

import (
	"testing"

	"dcsr/internal/video"
)

func clipWithCuts(t *testing.T, cueLens []int) ([]*video.YUV, []int) {
	t.Helper()
	cues := make([]video.Cue, len(cueLens))
	for i, l := range cueLens {
		cues[i] = video.Cue{Scene: i % 3, Frames: l}
	}
	clip := video.Generate(video.GenConfig{W: 48, H: 48, Seed: 5, NumScenes: 3, Cues: cues})
	var wantCuts []int
	pos := 0
	for _, l := range cueLens[:len(cueLens)-1] {
		pos += l
		wantCuts = append(wantCuts, pos)
	}
	return clip.YUVFrames(), wantCuts
}

func TestSplitFindsSceneCuts(t *testing.T) {
	frames, wantCuts := clipWithCuts(t, []int{8, 6, 10, 7})
	segs := Split(frames, Config{Threshold: 10, MinLen: 2})
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4: %v", len(segs), segs)
	}
	for i, c := range wantCuts {
		if segs[i+1].Start != c {
			t.Errorf("segment %d starts at %d, want %d", i+1, segs[i+1].Start, c)
		}
	}
}

func TestSplitCoversAllFramesExactlyOnce(t *testing.T) {
	frames, _ := clipWithCuts(t, []int{5, 9, 4, 6, 8})
	segs := Split(frames, Config{Threshold: 10, MinLen: 2})
	covered := 0
	for i, s := range segs {
		if s.Index != i {
			t.Errorf("segment %d has Index %d", i, s.Index)
		}
		if s.Len() <= 0 {
			t.Errorf("segment %d empty", i)
		}
		if i > 0 && s.Start != segs[i-1].End {
			t.Errorf("gap between segment %d and %d", i-1, i)
		}
		covered += s.Len()
	}
	if covered != len(frames) {
		t.Fatalf("segments cover %d frames of %d", covered, len(frames))
	}
	if segs[0].Start != 0 || segs[len(segs)-1].End != len(frames) {
		t.Fatal("segments do not span the video")
	}
}

func TestSplitVariableLengths(t *testing.T) {
	frames, _ := clipWithCuts(t, []int{5, 12, 7, 15})
	segs := Split(frames, Config{Threshold: 10, MinLen: 2})
	lens := map[int]bool{}
	for _, s := range segs {
		lens[s.Len()] = true
	}
	if len(lens) < 3 {
		t.Fatalf("expected variable segment lengths, got %v", segs)
	}
}

func TestMinLenSuppressesRapidCuts(t *testing.T) {
	frames, _ := clipWithCuts(t, []int{2, 2, 2, 2, 2})
	segs := Split(frames, Config{Threshold: 10, MinLen: 4})
	for i, s := range segs[:len(segs)-1] {
		if s.Len() < 4 {
			t.Fatalf("segment %d has length %d < MinLen 4", i, s.Len())
		}
	}
}

func TestMaxLenForcesBoundaries(t *testing.T) {
	frames, _ := clipWithCuts(t, []int{40})
	segs := Split(frames, Config{Threshold: 250, MinLen: 2, MaxLen: 10})
	if len(segs) != 4 {
		t.Fatalf("MaxLen 10 over 40 static frames gave %d segments", len(segs))
	}
	for _, s := range segs {
		if s.Len() > 10 {
			t.Fatalf("segment %v exceeds MaxLen", s)
		}
	}
}

func TestHighThresholdYieldsSingleSegment(t *testing.T) {
	frames, _ := clipWithCuts(t, []int{6, 6})
	segs := Split(frames, Config{Threshold: 255, MinLen: 2})
	if len(segs) != 1 {
		t.Fatalf("got %d segments with impossible threshold", len(segs))
	}
}

func TestSplitEmpty(t *testing.T) {
	if segs := Split(nil, Config{}); segs != nil {
		t.Fatalf("Split(nil) = %v", segs)
	}
}

func TestForceIFlags(t *testing.T) {
	segs := []Segment{{0, 0, 5}, {1, 5, 9}, {2, 9, 12}}
	flags := ForceIFlags(12, segs)
	for i, want := range map[int]bool{0: true, 5: true, 9: true, 3: false, 11: false} {
		if flags[i] != want {
			t.Errorf("flags[%d] = %v, want %v", i, flags[i], want)
		}
	}
}

func TestFixedSplit(t *testing.T) {
	segs := FixedSplit(10, 4)
	if len(segs) != 3 {
		t.Fatalf("FixedSplit(10,4) gave %d segments", len(segs))
	}
	if segs[2].Start != 8 || segs[2].End != 10 {
		t.Fatalf("tail segment %v", segs[2])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FixedSplit with non-positive length did not panic")
		}
	}()
	FixedSplit(10, 0)
}

func TestSegmentString(t *testing.T) {
	s := Segment{Index: 2, Start: 5, End: 9}
	if s.String() != "seg2[5:9)" {
		t.Fatalf("String = %q", s.String())
	}
}
