package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// respondingConn echoes a canned response for every request written,
// standing in for a request/response server.
type respondingConn struct {
	response string
	buf      bytes.Reader
}

func (r *respondingConn) Write(p []byte) (int, error) {
	r.buf.Reset([]byte(r.response))
	return len(p), nil
}

func (r *respondingConn) Read(p []byte) (int, error) { return r.buf.Read(p) }

func request(t *testing.T, conn io.ReadWriter) (string, error) {
	t.Helper()
	if _, err := conn.Write([]byte("req")); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := io.ReadAll(conn)
	return string(out), err
}

func TestPassthroughWhenZeroConfig(t *testing.T) {
	inj := New(Config{})
	conn := inj.Wrap(&respondingConn{response: "hello world"})
	for i := 0; i < 5; i++ {
		got, err := request(t, conn)
		if err != nil || got != "hello world" {
			t.Fatalf("request %d: got %q, err %v", i, got, err)
		}
	}
	if n := inj.Requests(); n != 5 {
		t.Errorf("Requests() = %d, want 5", n)
	}
	if c := inj.Counts(); c["none"] != 5 || len(c) != 1 {
		t.Errorf("Counts() = %v, want only none=5", c)
	}
}

func TestScriptedFaults(t *testing.T) {
	inj := New(Config{Script: map[int]Kind{
		1: KindDrop,
		2: KindError,
		3: KindTruncate,
	}, TruncateAfter: 4})
	conn := inj.Wrap(&respondingConn{response: "0123456789"})

	if got, err := request(t, conn); err != nil || got != "0123456789" {
		t.Fatalf("request 0 should pass: %q, %v", got, err)
	}
	if _, err := request(t, conn); !errors.Is(err, ErrInjected) {
		t.Fatalf("request 1 should drop, got err %v", err)
	}
	if _, err := request(t, conn); !errors.Is(err, ErrInjected) {
		t.Fatalf("request 2 should error, got err %v", err)
	}
	got, err := request(t, conn)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("request 3 should truncate, got err %v", err)
	}
	if got != "0123" {
		t.Fatalf("truncated response = %q, want first 4 bytes", got)
	}
	if got, err := request(t, conn); err != nil || got != "0123456789" {
		t.Fatalf("request 4 should pass again: %q, %v", got, err)
	}
	c := inj.Counts()
	if c["drop"] != 1 || c["error"] != 1 || c["truncate"] != 1 || c["none"] != 2 {
		t.Errorf("Counts() = %v", c)
	}
}

func TestDropKeepsFailingUntilNextRequest(t *testing.T) {
	inj := New(Config{Script: map[int]Kind{0: KindDrop}})
	conn := inj.Wrap(&respondingConn{response: "data"})
	if _, err := conn.Write([]byte("req")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	for i := 0; i < 3; i++ {
		if _, err := conn.Read(buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d after drop: err %v, want ErrInjected", i, err)
		}
	}
}

func TestDelayUsesSleeperOnce(t *testing.T) {
	inj := New(Config{Script: map[int]Kind{0: KindDelay}, Delay: 250 * time.Millisecond})
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept += d }
	conn := inj.Wrap(&respondingConn{response: "abcdef"})
	got, err := request(t, conn) // ReadAll issues several reads
	if err != nil || got != "abcdef" {
		t.Fatalf("delayed response corrupted: %q, %v", got, err)
	}
	if slept != 250*time.Millisecond {
		t.Errorf("slept %v, want exactly one 250ms delay", slept)
	}
}

func TestDeterministicAcrossInjectors(t *testing.T) {
	run := func() []string {
		inj := New(Config{Seed: 42, DropRate: 0.3, DelayRate: 0.2, ErrorRate: 0.1, Delay: time.Nanosecond})
		inj.sleep = func(time.Duration) {}
		conn := inj.Wrap(&respondingConn{response: "x"})
		var outcomes []string
		for i := 0; i < 40; i++ {
			_, err := request(t, conn)
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			default:
				outcomes = append(outcomes, err.Error())
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at request %d: %q vs %q", i, a[i], b[i])
		}
	}
	// With these rates over 40 requests, at least one fault and at least
	// one clean response must appear (deterministic given the seed).
	joined := strings.Join(a, "\n")
	if !strings.Contains(joined, "ok") || !strings.Contains(joined, "faultnet") {
		t.Fatalf("seed 42 schedule degenerate:\n%s", joined)
	}
}

func TestGlobalRequestIndexAcrossWraps(t *testing.T) {
	// The schedule follows the injector, not the connection: after a
	// "reconnect" (a fresh Wrap) the request index keeps counting.
	inj := New(Config{Script: map[int]Kind{1: KindDrop}})
	c1 := inj.Wrap(&respondingConn{response: "a"})
	if _, err := request(t, c1); err != nil {
		t.Fatalf("request 0: %v", err)
	}
	c2 := inj.Wrap(&respondingConn{response: "a"})
	if _, err := request(t, c2); !errors.Is(err, ErrInjected) {
		t.Fatalf("request 1 on fresh conn should drop, got %v", err)
	}
	if _, err := request(t, c2); err != nil {
		t.Fatalf("request 2: %v", err)
	}
}

func TestDecideOverridesEverything(t *testing.T) {
	var seen []int
	inj := New(Config{
		DropRate: 1, // would drop everything if rates applied
		Decide: func(idx int, frame []byte) Kind {
			seen = append(seen, idx)
			if string(frame) == "bad" {
				return KindDrop
			}
			return KindNone
		},
	})
	conn := inj.Wrap(&respondingConn{response: "ok"})
	if _, err := request(t, conn); err != nil {
		t.Fatalf("Decide=None request failed: %v", err)
	}
	if _, err := conn.Write([]byte("bad")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(make([]byte, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Decide=Drop request survived: %v", err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("Decide saw indices %v, want [0 1]", seen)
	}
}

func TestDeadlineAndCloseForwarding(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := New(Config{}).Wrap(a)
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read past deadline succeeded")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read past deadline returned %v, want a timeout", err)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("inner conn still open after Close")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindNone: "none", KindDrop: "drop", KindDelay: "delay",
		KindTruncate: "truncate", KindError: "error",
		KindDropRequest: "drop_request", KindTruncateRequest: "truncate_request",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// recordingConn captures every write so request-side faults can be
// checked against what actually reached "the server".
type recordingConn struct {
	writes [][]byte
}

func (r *recordingConn) Write(p []byte) (int, error) {
	r.writes = append(r.writes, append([]byte(nil), p...))
	return len(p), nil
}

func (r *recordingConn) Read(p []byte) (int, error) { return 0, io.EOF }

func TestDropRequestNeverReachesServer(t *testing.T) {
	inner := &recordingConn{}
	inj := New(Config{Script: map[int]Kind{0: KindDropRequest}})
	conn := inj.Wrap(inner)

	n, err := conn.Write([]byte("request-frame"))
	if err != nil || n != 13 {
		t.Fatalf("write = %d, %v; the drop must look like a successful send", n, err)
	}
	if len(inner.writes) != 0 {
		t.Fatalf("server received %d frames, want 0", len(inner.writes))
	}
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after dropped request = %v, want ErrInjected", err)
	}
	// The next request passes through and its response is readable.
	if _, err := conn.Write([]byte("next")); err != nil {
		t.Fatal(err)
	}
	if len(inner.writes) != 1 || string(inner.writes[0]) != "next" {
		t.Fatalf("server writes = %q, want only the second request", inner.writes)
	}
	if c := inj.Counts(); c["drop_request"] != 1 || c["none"] != 1 {
		t.Errorf("Counts() = %v", c)
	}
}

func TestTruncateRequestForwardsPrefixOnly(t *testing.T) {
	inner := &recordingConn{}
	inj := New(Config{Script: map[int]Kind{0: KindTruncateRequest}, TruncateAfter: 4})
	conn := inj.Wrap(inner)

	n, err := conn.Write([]byte("request-frame"))
	if err != nil || n != 13 {
		t.Fatalf("write = %d, %v; truncation must look like a successful send", n, err)
	}
	if len(inner.writes) != 1 || string(inner.writes[0]) != "requ" {
		t.Fatalf("server received %q, want the 4-byte prefix", inner.writes)
	}
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after truncated request = %v, want ErrInjected", err)
	}
	if c := inj.Counts(); c["truncate_request"] != 1 {
		t.Errorf("Counts() = %v", c)
	}
}
