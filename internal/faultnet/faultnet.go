// Package faultnet injects deterministic, seedable network faults into
// any io.ReadWriter, so the delivery path can be tested (and benchmarked)
// against the failure modes a real CDN edge exhibits: lost responses,
// long-tail latency, truncated payloads, hard I/O errors, and requests
// lost or cut mid-frame before ever reaching the server.
//
// The unit of fault injection is the request/response exchange, not the
// byte: every Write on a wrapped connection is treated as one outbound
// request frame, and the Injector decides — deterministically, from a
// seeded PRNG, an explicit per-request Script, or a caller-supplied
// Decide hook — the fate of the response that follows. Reads between two
// Writes all belong to the same response and share its fault.
//
// One Injector may wrap many connections over its lifetime (the request
// index is global across wraps), which is what makes reconnect testing
// deterministic: a client that redials mid-session keeps consuming the
// same fault schedule on the fresh connection.
//
// Composition with the rest of the transport stack is by plain wrapping;
// both orders work, and the conventional one puts the throttler inside so
// injected faults apply to the already-shaped link:
//
//	inj := faultnet.New(faultnet.Config{Seed: 1, DropRate: 0.1})
//	conn := inj.Wrap(transport.NewThrottledConn(tcpConn, 64<<10))
//
// Close and SetReadDeadline calls are forwarded to the wrapped connection
// when it supports them, so per-request timeouts and reconnect cleanup
// behave exactly as they would on the bare connection.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindNone passes the response through untouched.
	KindNone Kind = iota
	// KindDrop loses the response: every read until the next request
	// fails with an error wrapping ErrInjected. The connection must be
	// considered broken (the response bytes are still in flight), which
	// is exactly how a real lost response manifests.
	KindDrop
	// KindDelay injects Config.Delay of extra latency before the first
	// read of the response, then passes it through.
	KindDelay
	// KindTruncate passes Config.TruncateAfter bytes of the response
	// through, then fails every further read.
	KindTruncate
	// KindError fails reads immediately with an injected I/O error,
	// without consuming the response.
	KindError
	// KindDropRequest loses the request before it reaches the server:
	// the write is swallowed (reported as successful — the bytes left
	// the client), the server never sees the frame, and every read
	// until the next request fails wrapping ErrInjected. Unlike
	// KindDrop, the server performs no work for the request.
	KindDropRequest
	// KindTruncateRequest forwards only Config.TruncateAfter bytes of
	// the request frame to the server, then reports the write as
	// successful; reads fail wrapping ErrInjected. The server is left
	// holding a partial frame — closing the connection on the client
	// side is what surfaces it there (io.ErrUnexpectedEOF), exactly
	// like a mid-frame network cut.
	KindTruncateRequest
	numKinds int = iota
)

// String returns the stable lower-case name of the fault kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindTruncate:
		return "truncate"
	case KindError:
		return "error"
	case KindDropRequest:
		return "drop_request"
	case KindTruncateRequest:
		return "truncate_request"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is wrapped by every error a fault produces, so callers can
// distinguish injected faults from genuine transport failures in tests.
var ErrInjected = errors.New("faultnet: injected fault")

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives the fault PRNG; equal seeds over equal request
	// sequences reproduce identical fault schedules.
	Seed int64

	// DropRate, DelayRate, TruncateRate and ErrorRate are per-request
	// probabilities in [0,1], evaluated cumulatively in that order
	// against one uniform draw per request. The request-side kinds
	// (KindDropRequest, KindTruncateRequest) have no rate; reach them
	// through Script or Decide.
	DropRate     float64
	DelayRate    float64
	TruncateRate float64
	ErrorRate    float64

	// Delay is the latency injected by KindDelay faults (default 50ms).
	Delay time.Duration
	// TruncateAfter is how many response bytes a KindTruncate fault lets
	// through before erroring (default 3 — enough for a partial header).
	TruncateAfter int

	// Script pins specific global request indices (0-based, counted
	// across every wrapped connection) to a fault kind, overriding the
	// rates for those indices. Unlisted indices fall back to the rates.
	Script map[int]Kind

	// Decide, when set, replaces rates and Script entirely: it receives
	// the global request index and the request frame just written and
	// returns the fault for the response. It must be deterministic for
	// reproducible runs.
	Decide func(reqIndex int, frame []byte) Kind
}

// Injector owns the fault schedule. It is safe for concurrent use and
// may wrap any number of connections; see the package doc.
type Injector struct {
	cfg   Config
	sleep func(time.Duration) // test hook; time.Sleep by default

	mu       sync.Mutex
	rng      *rand.Rand
	requests int
	counts   [numKinds]int
}

// New returns an Injector for the given configuration.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	if cfg.TruncateAfter <= 0 {
		cfg.TruncateAfter = 3
	}
	return &Injector{
		cfg:   cfg,
		sleep: time.Sleep,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Wrap returns conn with the injector's fault schedule applied.
func (in *Injector) Wrap(conn io.ReadWriter) *Conn {
	return &Conn{in: in, inner: conn}
}

// Requests returns how many request frames the injector has seen.
func (in *Injector) Requests() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.requests
}

// Counts returns how many faults of each kind were injected, keyed by
// the kind's String name ("none" counts untouched requests).
func (in *Injector) Counts() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	m := make(map[string]int, numKinds)
	for k, n := range in.counts {
		if n > 0 {
			m[Kind(k).String()] = n
		}
	}
	return m
}

// decide assigns a fault to the request frame just written.
func (in *Injector) decide(frame []byte) (int, Kind) {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.requests
	in.requests++
	k, decided := KindNone, false
	if in.cfg.Decide != nil {
		k, decided = in.cfg.Decide(idx, frame), true
	} else if s, ok := in.cfg.Script[idx]; ok {
		k, decided = s, true
	}
	if !decided {
		c := in.cfg
		switch r := in.rng.Float64(); {
		case r < c.DropRate:
			k = KindDrop
		case r < c.DropRate+c.DelayRate:
			k = KindDelay
		case r < c.DropRate+c.DelayRate+c.TruncateRate:
			k = KindTruncate
		case r < c.DropRate+c.DelayRate+c.TruncateRate+c.ErrorRate:
			k = KindError
		}
	}
	if k < 0 || int(k) >= numKinds {
		k = KindNone
	}
	in.counts[k]++
	return idx, k
}

// Conn is a fault-injecting connection wrapper produced by Injector.Wrap.
// Like the transport protocol it wraps, it assumes one goroutine drives
// the request/response exchange; concurrent Reads against one in-flight
// response are serialized but the fault state is per-response.
type Conn struct {
	in    *Injector
	inner io.ReadWriter

	mu        sync.Mutex
	reqIndex  int
	kind      Kind
	delayed   bool
	remaining int // truncate budget
}

// Write rolls the fault for this exchange, then passes the request
// frame through — in full, partially (KindTruncateRequest) or not at
// all (KindDropRequest). The fault is decided before the inner write so
// request-side faults can intercept the frame; a request whose inner
// write fails still consumes its schedule index.
func (c *Conn) Write(p []byte) (int, error) {
	idx, kind := c.in.decide(p)
	c.mu.Lock()
	c.reqIndex, c.kind = idx, kind
	c.delayed = false
	c.remaining = c.in.cfg.TruncateAfter
	c.mu.Unlock()
	switch kind {
	case KindDropRequest:
		return len(p), nil // swallowed: the bytes left the client, the server never sees them
	case KindTruncateRequest:
		limit := c.in.cfg.TruncateAfter
		if limit > len(p) {
			limit = len(p)
		}
		if _, err := c.inner.Write(p[:limit]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return c.inner.Write(p)
}

// Read applies the pending response fault, passing through when none.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	kind, idx := c.kind, c.reqIndex
	switch kind {
	case KindDrop:
		c.mu.Unlock()
		return 0, fmt.Errorf("faultnet: response to request %d dropped: %w", idx, ErrInjected)
	case KindError:
		c.mu.Unlock()
		return 0, fmt.Errorf("faultnet: read error on request %d: %w", idx, ErrInjected)
	case KindDropRequest:
		c.mu.Unlock()
		return 0, fmt.Errorf("faultnet: request %d dropped before the server: %w", idx, ErrInjected)
	case KindTruncateRequest:
		c.mu.Unlock()
		return 0, fmt.Errorf("faultnet: request %d truncated after %d bytes: %w",
			idx, c.in.cfg.TruncateAfter, ErrInjected)
	case KindDelay:
		if !c.delayed {
			c.delayed = true
			d := c.in.cfg.Delay
			c.mu.Unlock()
			c.in.sleep(d)
			return c.inner.Read(p)
		}
		c.mu.Unlock()
		return c.inner.Read(p)
	case KindTruncate:
		if c.remaining <= 0 {
			c.mu.Unlock()
			return 0, fmt.Errorf("faultnet: response to request %d truncated after %d bytes: %w",
				idx, c.in.cfg.TruncateAfter, ErrInjected)
		}
		limit := len(p)
		if limit > c.remaining {
			limit = c.remaining
		}
		c.mu.Unlock()
		n, err := c.inner.Read(p[:limit])
		c.mu.Lock()
		c.remaining -= n
		c.mu.Unlock()
		return n, err
	}
	c.mu.Unlock()
	return c.inner.Read(p)
}

// Close forwards to the wrapped connection when it is an io.Closer, so a
// client that reconnects can release the faulty connection underneath.
func (c *Conn) Close() error {
	if cl, ok := c.inner.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// SetReadDeadline forwards to the wrapped connection when supported, so
// per-request timeouts keep working through the fault layer. Note that
// KindDelay sleeps before touching the connection: the deadline fires on
// the first post-delay read, exactly like real queueing latency.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}
