package transport

import (
	"context"
	"net"
	"testing"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/splitter"
	"dcsr/internal/stream"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// fixture2 is a second, content-distinct prepared stream for multi-video
// tests, built once per test binary like getFixture's.
var fixture2 struct {
	prep   *core.Prepared
	frames []*video.YUV
}

func getFixture2(t testing.TB) (*core.Prepared, []*video.YUV) {
	t.Helper()
	if fixture2.prep == nil {
		clip := video.Generate(video.GenConfig{
			W: 64, H: 48, Seed: 31, NumScenes: 2, TotalCues: 4, MinFrames: 5, MaxFrames: 7,
		})
		frames := clip.YUVFrames()
		prep, err := core.Prepare(frames, clip.FPS, core.ServerConfig{
			QP:          51,
			Split:       splitter.Config{Threshold: 14, MinLen: 3},
			VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
			VAETrain:    vae.TrainOptions{Epochs: 8, BatchSize: 4},
			MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
			Train:       edsr.TrainOptions{Steps: 40, BatchSize: 2, PatchSize: 16},
			Seed:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		fixture2.prep = prep
		fixture2.frames = frames
	}
	return fixture2.prep, fixture2.frames
}

// TestMultiVideoRegisterAndRoute pins the tentpole: one server hosts two
// content-distinct videos, clients list them, select one by digest, and
// play it end to end — all over one connection.
func TestMultiVideoRegisterAndRoute(t *testing.T) {
	prep1, frames1 := getFixture(t)
	prep2, frames2 := getFixture2(t)
	srv := NewFleetServer()
	d1, err := srv.Register(prep1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := srv.Register(prep2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("content-distinct videos produced the same digest")
	}
	if _, err := srv.Register(prep1); err == nil {
		t.Fatal("re-registering the same content succeeded")
	}
	vids := srv.Videos()
	if len(vids) != 2 || vids[0].Digest != d1 || vids[1].Digest != d2 {
		t.Fatalf("Videos() = %+v, want [%s %s]", vids, d1, d2)
	}
	if vids[1].Segments != len(prep2.Manifest.Segments) {
		t.Errorf("directory entry reports %d segments, want %d", vids[1].Segments, len(prep2.Manifest.Segments))
	}

	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)

	// Before selection the client plays the default video.
	wm, err := client.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(wm.Segments) != len(prep1.Manifest.Segments) {
		t.Fatalf("default manifest has %d segments, want video 0's %d",
			len(wm.Segments), len(prep1.Manifest.Segments))
	}
	out, _, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames1) {
		t.Fatalf("default video played %d frames, want %d", len(out), len(frames1))
	}

	// Select the second video by digest and replay: same connection, new
	// content.
	if err := client.SelectVideoCtx(context.Background(), d2); err != nil {
		t.Fatal(err)
	}
	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames2) {
		t.Fatalf("selected video played %d frames, want %d", len(out), len(frames2))
	}
	if stats.ModelDownloads == 0 {
		t.Error("selected video fetched no models")
	}
	// Selecting back to the default works too.
	if err := client.SelectVideoCtx(context.Background(), d1); err != nil {
		t.Fatal(err)
	}
	if wm, err = client.Manifest(); err != nil {
		t.Fatal(err)
	}
	if len(wm.Segments) != len(prep1.Manifest.Segments) {
		t.Errorf("reselected default manifest has %d segments, want %d",
			len(wm.Segments), len(prep1.Manifest.Segments))
	}
}

// TestSelectVideoErrors pins the failure modes of digest selection.
func TestSelectVideoErrors(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)
	if _, err := client.Manifest(); err != nil {
		t.Fatal(err)
	}
	if err := client.SelectVideoCtx(context.Background(), "no-such-digest"); err == nil {
		t.Fatal("selecting an unhosted digest succeeded")
	}
	if client.Video != 0 {
		t.Errorf("failed selection moved Video to %d", client.Video)
	}
}

// TestMuxRoutesNonDefaultVideo drives the second video through the
// pipelined client: the 34-byte frame's video field routes each request.
func TestMuxRoutesNonDefaultVideo(t *testing.T) {
	prep1, _ := getFixture(t)
	prep2, _ := getFixture2(t)
	srv := NewFleetServer()
	if _, err := srv.Register(prep1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Register(prep2); err != nil {
		t.Fatal(err)
	}
	dial, _ := muxDialer(srv)
	mux, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	for vid := uint32(0); vid < 2; vid++ {
		payload, err := mux.Do(context.Background(), OpManifest, 0, vid)
		if err != nil {
			t.Fatalf("video %d manifest: %v", vid, err)
		}
		wm, err := DecodeWireManifest(payload)
		if err != nil {
			t.Fatal(err)
		}
		want := len(srv.videos[vid].segments)
		if len(wm.Segments) != want {
			t.Errorf("video %d manifest has %d segments, want %d", vid, len(wm.Segments), want)
		}
	}
	// An out-of-range video ID is a typed NotFound, not a hang or a crash.
	if _, err := mux.Do(context.Background(), OpManifest, 0, 99); !IsNotFound(err) {
		t.Fatalf("out-of-range video: want NotFound, got %v", err)
	}
}

// TestRegisterRejectsCorruptManifest pins the registration-side guard
// against the silent-shadowing bug class: a manifest with duplicate
// segment indices is refused before any bytes are hosted.
func TestRegisterRejectsCorruptManifest(t *testing.T) {
	prep, _ := getFixture(t)
	bad := *prep
	man := *prep.Manifest // deep-copy: the fixture's manifest must stay pristine
	man.Segments = append([]stream.SegmentInfo(nil), prep.Manifest.Segments...)
	man.Segments[len(man.Segments)-1].Index = man.Segments[0].Index
	bad.Manifest = &man
	srv := NewFleetServer()
	if _, err := srv.Register(&bad); err == nil {
		t.Fatal("duplicate segment index registered")
	}
	if len(srv.Videos()) != 0 {
		t.Fatal("rejected registration left a hosted video behind")
	}
}

// TestFleetServerEmpty pins the degenerate case: a fleet server with no
// videos answers data ops NotFound but still serves an empty directory.
func TestFleetServerEmpty(t *testing.T) {
	srv := NewFleetServer()
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)
	if _, err := client.Manifest(); !IsNotFound(err) {
		t.Fatalf("manifest on an empty server: want NotFound, got %v", err)
	}
	dir, err := client.Videos()
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.Videos) != 0 {
		t.Fatalf("empty server lists %d videos", len(dir.Videos))
	}
}
