package transport

import (
	"io"
	"sync"
	"time"
)

// ThrottledConn wraps a connection (or any ReadWriter) with a token-bucket
// rate limit on reads, emulating a constrained downlink. Writes (requests)
// pass through unthrottled — request frames are 9 bytes and real uplinks
// are not the bottleneck dcSR addresses.
type ThrottledConn struct {
	inner io.ReadWriter

	mu        sync.Mutex
	bytesPerS float64
	bucket    float64
	burst     float64
	last      time.Time
	sleeper   func(time.Duration)
	clock     func() time.Time
}

// NewThrottledConn limits reads to bytesPerSecond with a burst of one
// bucket (¼ second of budget, at least 1 KiB).
func NewThrottledConn(inner io.ReadWriter, bytesPerSecond float64) *ThrottledConn {
	burst := bytesPerSecond / 4
	if burst < 1024 {
		burst = 1024
	}
	return &ThrottledConn{
		inner:     inner,
		bytesPerS: bytesPerSecond,
		bucket:    burst,
		burst:     burst,
		last:      time.Now(),
		sleeper:   time.Sleep,
		clock:     time.Now,
	}
}

// SetRate changes the simulated link rate (e.g. to replay a bandwidth
// trace mid-session).
func (t *ThrottledConn) SetRate(bytesPerSecond float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refill()
	t.bytesPerS = bytesPerSecond
	t.burst = bytesPerSecond / 4
	if t.burst < 1024 {
		t.burst = 1024
	}
	if t.bucket > t.burst {
		t.bucket = t.burst
	}
}

// refill adds tokens for the elapsed time. Caller holds the lock.
func (t *ThrottledConn) refill() {
	now := t.clock()
	t.bucket += now.Sub(t.last).Seconds() * t.bytesPerS
	if t.bucket > t.burst {
		t.bucket = t.burst
	}
	t.last = now
}

// Read blocks until the bucket covers the bytes actually read.
func (t *ThrottledConn) Read(p []byte) (int, error) {
	n, err := t.inner.Read(p)
	if n > 0 {
		t.mu.Lock()
		t.refill()
		t.bucket -= float64(n)
		deficit := -t.bucket
		rate := t.bytesPerS
		t.mu.Unlock()
		if deficit > 0 && rate > 0 {
			t.sleeper(time.Duration(deficit / rate * float64(time.Second)))
		}
	}
	return n, err
}

// Write passes through to the inner connection.
func (t *ThrottledConn) Write(p []byte) (int, error) { return t.inner.Write(p) }

// Close forwards to the inner connection when it is an io.Closer, so a
// reconnecting client can release the throttled link underneath.
func (t *ThrottledConn) Close() error {
	if cl, ok := t.inner.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// SetReadDeadline forwards to the inner connection when supported, so
// per-request timeouts keep working through the throttling layer. Note
// that the token-bucket sleep happens after the read: a deadline bounds
// the wait for bytes, not the simulated drain time.
func (t *ThrottledConn) SetReadDeadline(dl time.Time) error {
	if d, ok := t.inner.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(dl)
	}
	return nil
}
