package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dcsr/internal/obs"
)

// TestClientCtxCancelledBeforeRequest: a dead context short-circuits the
// retry state machine before any bytes hit the wire.
func TestClientCtxCancelledBeforeRequest(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.ManifestCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ManifestCtx with cancelled ctx = %v, want context.Canceled", err)
	}
	if client.BytesUp != 0 {
		t.Errorf("cancelled request wrote %d bytes", client.BytesUp)
	}
}

// TestClientCtxCancelsBackoff: cancellation lands while the client sleeps
// out a retry backoff. The sleep must be interrupted immediately — the
// call returns context.Canceled orders of magnitude sooner than the
// 30-second backoff it was in.
func TestClientCtxCancelsBackoff(t *testing.T) {
	cconn, sconn := net.Pipe()
	cconn.Close() // every attempt fails instantly, driving a backoff
	sconn.Close()
	client := NewClient(cconn)
	client.Retry = RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  30 * time.Second,
		MaxDelay:   30 * time.Second,
		Jitter:     -1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := client.ManifestCtx(ctx)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ManifestCtx during backoff = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backoff sleep was not interrupted by cancellation")
	}
}

// TestClientCtxDeadlineCutsRead: a context deadline tightens the read
// deadline of the in-flight request, so a server that never answers
// cannot stall the client past the context's lifetime.
func TestClientCtxDeadlineCutsRead(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()
	go func() {
		// Swallow the request, never respond.
		buf := make([]byte, reqFrameBytes)
		for {
			if _, err := sconn.Read(buf); err != nil {
				return
			}
		}
	}()
	client := NewClient(cconn)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.ManifestCtx(ctx)
	if err == nil {
		t.Fatal("ManifestCtx succeeded against a mute server")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !isTimeoutErr(err) {
		t.Fatalf("err = %v, want deadline/timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read stalled %v past the 100ms context deadline", elapsed)
	}
	if client.Timeouts == 0 {
		t.Error("timeout was not counted")
	}
}

// serveTCP starts srv on a loopback listener and returns its address
// plus a channel that closes when the accept loop exits. Connections
// accepted this way are tracked by the server's drain waitgroup — the
// population Shutdown manages.
func serveTCP(t *testing.T, srv *Server) (string, <-chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), served
}

// TestServerShutdownGraceful: once clients hang up on their own,
// Shutdown drains without force-closing anything and returns nil ctx
// error (the listener close result).
func TestServerShutdownGraceful(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	addr, served := serveTCP(t, srv)
	client, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Manifest(); err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	conn.Close() // handler sees EOF and exits on its own
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown on a drained server = %v, want nil", err)
	}
	select {
	case <-served:
	case <-time.After(time.Second):
		t.Fatal("accept loop still running after Shutdown returned")
	}
}

// TestServerShutdownForceClosesStragglers: a connection that stays open
// counts as in-flight; when the drain deadline expires Shutdown
// force-closes it, finishes the drain, and reports the deadline error.
func TestServerShutdownForceClosesStragglers(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := serveTCP(t, srv)
	client, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := client.Manifest(); err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with straggler = %v, want context.DeadlineExceeded", err)
	}
	// The forced close is visible client-side: the next request fails.
	if _, err := client.Manifest(); err == nil {
		t.Error("request succeeded over a force-closed connection")
	}
}

// TestPlayCtxCancelled: PlayCtx with a dead context returns before
// fetching anything.
func TestPlayCtxCancelled(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	d := &pipeDialer{t: t, srv: srv}
	defer d.cleanup()
	conn, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := client.PlayCtx(ctx, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlayCtx with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestPlayCacheBudgetEvictsAndRefetches pins the transport-level bounded
// cache: a budget that fits one model forces evictions and re-downloads
// without changing what gets enhanced, and an unbounded client (the
// default CacheBudget of 0) reproduces the pre-budget hit counts.
func TestPlayCacheBudgetEvictsAndRefetches(t *testing.T) {
	prep, _ := getFixture(t)
	if len(prep.Models) < 2 {
		t.Skip("fixture has a single model; nothing to evict")
	}
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	var modelSize int
	for _, sm := range prep.Models {
		modelSize = len(sm.Bytes)
		break
	}

	play := func(budget int64, o *obs.Obs) *PlayStats {
		t.Helper()
		d := &pipeDialer{t: t, srv: srv}
		defer d.cleanup()
		conn, err := d.dial()
		if err != nil {
			t.Fatal(err)
		}
		client := NewClient(conn)
		client.CacheBudget = budget
		client.Obs = o
		_, stats, err := client.Play(true)
		if err != nil {
			t.Fatalf("Play(budget=%d): %v", budget, err)
		}
		return stats
	}

	base := play(0, nil) // unbounded default
	if base.Evictions != 0 {
		t.Errorf("unbounded client evicted %d models", base.Evictions)
	}

	o := obs.New()
	tight := play(int64(modelSize), o)
	if tight.Evictions == 0 {
		t.Error("tight budget produced no evictions")
	}
	if tight.CacheBytes > int64(modelSize) {
		t.Errorf("cache bytes %d exceed budget %d", tight.CacheBytes, modelSize)
	}
	if tight.ModelDownloads <= base.ModelDownloads {
		t.Errorf("tight budget downloads = %d, want > unbounded %d",
			tight.ModelDownloads, base.ModelDownloads)
	}
	if tight.Enhanced != base.Enhanced {
		t.Errorf("enhanced frames %d != unbounded baseline %d", tight.Enhanced, base.Enhanced)
	}
	if tight.DegradedSegments != 0 {
		t.Errorf("degraded segments = %d, want 0", tight.DegradedSegments)
	}
	if got := o.Metrics.Snapshot().Counters["modelstore_evictions_total"]; got != int64(tight.Evictions) {
		t.Errorf("modelstore_evictions_total = %d, want %d", got, tight.Evictions)
	}
}
