package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// muxDialer returns a dial function that opens a fresh net.Pipe served
// by srv for every call, recording the client ends so tests can sever
// connections deliberately.
func muxDialer(srv *Server) (dial func() (io.ReadWriter, error), conns *[]net.Conn) {
	var mu sync.Mutex
	var cs []net.Conn
	conns = &cs
	dial = func() (io.ReadWriter, error) {
		cconn, sconn := net.Pipe()
		go func() { _ = srv.ServeConn(sconn) }()
		mu.Lock()
		cs = append(cs, cconn)
		mu.Unlock()
		return cconn, nil
	}
	return dial, conns
}

// TestMuxPipeliningOutOfOrder pins the point of 'dcT3' framing: a slow
// request does not block a later one on the same connection, and each
// response is matched back to its own request by ID.
func TestMuxPipeliningOutOfOrder(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	hold := make(chan struct{})
	var first sync.Once
	srv.admitHold = func(op byte) {
		if op != OpSegment {
			return
		}
		blocked := false
		first.Do(func() { blocked = true })
		if blocked {
			close(entered)
			<-hold
		}
	}
	dial, _ := muxDialer(srv)
	mux, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	slow := make(chan []byte, 1)
	go func() {
		p, err := mux.Do(context.Background(), OpSegment, 0, 0)
		if err != nil {
			t.Errorf("slow request failed: %v", err)
		}
		slow <- p
	}()
	<-entered // request 0 is pinned inside the handler
	fast, err := mux.Do(context.Background(), OpSegment, 1, 0)
	if err != nil {
		t.Fatalf("pipelined request stuck behind a slow one: %v", err)
	}
	close(hold)
	got0 := <-slow
	if !bytes.Equal(fast, srv.videos[0].segments[1]) {
		t.Error("out-of-order response matched to the wrong request (segment 1)")
	}
	if !bytes.Equal(got0, srv.videos[0].segments[0]) {
		t.Error("out-of-order response matched to the wrong request (segment 0)")
	}
}

// TestMuxConcurrentRequests hammers one MuxClient from many goroutines
// over a single TCP connection (run under -race) and checks every
// response lands on the request that asked for it.
func TestMuxConcurrentRequests(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	mux, err := DialMux(func() (io.ReadWriter, error) {
		return net.Dial("tcp", ln.Addr().String())
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range srv.videos[0].segments {
				p, err := mux.Do(context.Background(), OpSegment, uint32(i), 0)
				if err != nil {
					t.Errorf("segment %d: %v", i, err)
					return
				}
				if !bytes.Equal(p, srv.videos[0].segments[i]) {
					t.Errorf("segment %d: response mismatched", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := mux.Stats()
	if st.BytesUp == 0 || st.BytesDown == 0 {
		t.Errorf("stats did not account traffic: %+v", st)
	}
	if st.Reconnects != 0 || st.Timeouts != 0 {
		t.Errorf("clean run recorded failures: %+v", st)
	}
}

// TestMuxInteropNewClientOldServer pins the downgrade path: DialMux
// against a server whose manifest does not advertise mux must fail with
// ErrNoMux (callers fall back to the sequential Client), after speaking
// only 9-byte 'dcT1' frames on the wire.
func TestMuxInteropNewClientOldServer(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := DecodeWireManifest(srv.videos[0].manifest)
	if err != nil {
		t.Fatal(err)
	}
	wm.Trace = false // what an old server serves
	wm.Mux = false
	oldManifest, err := json.Marshal(wm)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()
	go serveOldWire(t, sconn, oldManifest, srv.videos[0].segments[0])

	if _, err := DialMux(func() (io.ReadWriter, error) { return cconn, nil }); !errors.Is(err, ErrNoMux) {
		t.Fatalf("DialMux against an old server: want ErrNoMux, got %v", err)
	}
}

// TestMuxInteropOldClientNewServer drives raw pre-mux frames at a
// current multi-video server: 'dcT1' requests get classic 5-byte-header
// responses for every op, including the directory, and the default video
// answers data ops — the drop-in-replacement guarantee.
func TestMuxInteropOldClientNewServer(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()

	// Oldest wire dialect: plain 9-byte request, classic response.
	if err := writeRequest(cconn, OpManifest, 0); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readResponse(cconn)
	if err != nil || status != StatusOK {
		t.Fatalf("manifest over dcT1: status=%d err=%v", status, err)
	}
	if _, err := DecodeWireManifest(payload); err != nil {
		t.Fatalf("manifest payload undecodable by an old client: %v", err)
	}
	if err := writeRequest(cconn, OpSegment, 0); err != nil {
		t.Fatal(err)
	}
	if status, payload, err = readResponse(cconn); err != nil || status != StatusOK {
		t.Fatalf("segment over dcT1: status=%d err=%v", status, err)
	}
	if !bytes.Equal(payload, srv.videos[0].segments[0]) {
		t.Error("dcT1 segment response is not the default video's payload")
	}
	// The directory op is served in classic framing too, so even a
	// non-mux client can list what the fleet hosts.
	if err := writeRequest(cconn, OpVideos, 0); err != nil {
		t.Fatal(err)
	}
	if status, payload, err = readResponse(cconn); err != nil || status != StatusOK {
		t.Fatalf("videos over dcT1: status=%d err=%v", status, err)
	}
	dir, err := DecodeWireDirectory(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.Videos) != 1 || dir.Videos[0].ID != 0 {
		t.Fatalf("directory over dcT1 = %+v, want the single default video", dir)
	}
}

// TestMuxTimeoutKeepsConnection pins the cheap-deadline property: a
// request that times out abandons its pending entry and retries on the
// SAME connection; the late response is discarded by ID instead of
// desynchronizing the stream.
func TestMuxTimeoutKeepsConnection(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	srv.admitHold = func(op byte) {
		if op == OpSegment && calls.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond) // first data request: slower than the deadline
		}
	}
	dial, _ := muxDialer(srv)
	mux, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	mux.Retry = RetryPolicy{
		MaxRetries: 1,
		Timeout:    30 * time.Millisecond,
		BaseDelay:  time.Millisecond,
		MaxDelay:   2 * time.Millisecond,
		Seed:       1,
	}
	p, err := mux.Do(context.Background(), OpSegment, 0, 0)
	if err != nil {
		t.Fatalf("retry after timeout failed: %v", err)
	}
	if !bytes.Equal(p, srv.videos[0].segments[0]) {
		t.Error("retried response mismatched")
	}
	st := mux.Stats()
	if st.Timeouts != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v, want exactly one timeout and one retry", st)
	}
	if st.Reconnects != 0 {
		t.Errorf("timeout forced a reconnect (%d); the connection should have been kept", st.Reconnects)
	}
}

// TestMuxReconnectAfterTransportError severs the connection under a
// MuxClient and checks the next request redials once and succeeds.
func TestMuxReconnectAfterTransportError(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	dial, conns := muxDialer(srv)
	mux, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	mux.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1}
	if _, err := mux.Do(context.Background(), OpSegment, 0, 0); err != nil {
		t.Fatal(err)
	}
	(*conns)[0].Close() // sever the live connection
	p, err := mux.Do(context.Background(), OpSegment, 1, 0)
	if err != nil {
		t.Fatalf("request after severed conn failed: %v", err)
	}
	if !bytes.Equal(p, srv.videos[0].segments[1]) {
		t.Error("post-reconnect response mismatched")
	}
	if got := mux.Stats().Reconnects; got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if len(*conns) != 2 {
		t.Errorf("dialer used %d connections, want 2", len(*conns))
	}
}

// TestMuxClosedClient pins Close semantics: no redial, typed failure.
func TestMuxClosedClient(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	dial, conns := muxDialer(srv)
	mux, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Do(context.Background(), OpSegment, 0, 0); err == nil {
		t.Fatal("request on a closed mux client succeeded")
	}
	if len(*conns) != 1 {
		t.Errorf("closed client redialed (%d conns)", len(*conns))
	}
}

// TestDialMuxDialFailure propagates the dial error instead of returning
// a half-constructed client.
func TestDialMuxDialFailure(t *testing.T) {
	boom := errors.New("boom")
	if _, err := DialMux(func() (io.ReadWriter, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want dial error, got %v", err)
	}
}
