package transport

import (
	"reflect"
	"testing"

	"dcsr/internal/edsr"
	"dcsr/internal/stream"
)

func TestWireManifestRoundTrip(t *testing.T) {
	m := &stream.Manifest{
		Segments: []stream.SegmentInfo{
			{Index: 0, Start: 0, End: 10, Bytes: 1000, ModelLabel: 0},
			{Index: 1, Start: 10, End: 25, Bytes: 1500, ModelLabel: 1},
			{Index: 2, Start: 25, End: 30, Bytes: 400, ModelLabel: 0},
		},
		Models: map[int]stream.ModelInfo{
			0: {Label: 0, Bytes: 5000},
			1: {Label: 1, Bytes: 5100},
		},
	}
	micro := edsr.Config{Filters: 8, ResBlocks: 2, Scale: 1}
	data, err := EncodeWireManifest(30, micro, m)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := DecodeWireManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if wm.FPS != 30 || wm.MicroConfig != micro {
		t.Fatalf("header mismatch: %+v", wm)
	}
	back := wm.Manifest()
	if !reflect.DeepEqual(back.Segments, m.Segments) {
		t.Fatalf("segments differ:\n%v\n%v", back.Segments, m.Segments)
	}
	if !reflect.DeepEqual(back.Models, m.Models) {
		t.Fatalf("models differ:\n%v\n%v", back.Models, m.Models)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWireManifestRejectsGarbage(t *testing.T) {
	if _, err := DecodeWireManifest([]byte("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}
