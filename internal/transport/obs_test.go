package transport

import (
	"net"
	"strings"
	"sync"
	"testing"

	"dcsr/internal/obs"
)

type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestServerClientObservability streams a full playback over a pipe
// with both sides instrumented and asserts the transport metric
// surface: request counts, byte accounting that matches the client's
// own BytesUp/BytesDown, per-op latency histograms, and client-side
// cache hit/miss counters.
func TestServerClientObservability(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	so := obs.New()
	srv.Obs = so
	cconn, sconn := net.Pipe()
	served := make(chan struct{})
	go func() { defer close(served); _ = srv.ServeConn(sconn) }()
	defer sconn.Close()

	co := obs.New()
	client := NewClient(cconn)
	client.Obs = co
	_, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	// Hang up and wait for ServeConn to return so the server has finished
	// accounting its final response before we snapshot its registry.
	cconn.Close()
	<-served

	ss := so.Metrics.Snapshot()
	wantReqs := int64(1 + len(prep.Segments) + stats.ModelDownloads)
	if got := ss.Counters["transport_requests_total"]; got != wantReqs {
		t.Errorf("transport_requests_total = %d, want %d", got, wantReqs)
	}
	// The manifest request goes out as a plain 9-byte frame (capability
	// not yet known); every later request rides the traced 26-byte frame
	// the server advertised. Mux framing is NOT in play: the client
	// never selects a non-default video, so it keeps classic framing.
	wantBytesIn := int64(reqFrameBytes) + (wantReqs-1)*tracedReqFrameBytes
	if got := ss.Counters["transport_bytes_in_total"]; got != wantBytesIn {
		t.Errorf("transport_bytes_in_total = %d, want %d", got, wantBytesIn)
	}
	if got := int64(client.BytesUp); got != wantBytesIn {
		t.Errorf("client BytesUp = %d, want %d", got, wantBytesIn)
	}
	if got := ss.Counters["transport_bytes_out_total"]; got != int64(client.BytesDown) {
		t.Errorf("server bytes out %d != client bytes down %d", got, client.BytesDown)
	}
	for _, h := range []string{"transport_manifest_seconds", "transport_segment_seconds", "transport_model_seconds"} {
		if ss.Histograms[h].Count == 0 {
			t.Errorf("histogram %s never observed", h)
		}
	}
	if got := ss.Histograms["transport_segment_seconds"].Count; got != int64(len(prep.Segments)) {
		t.Errorf("segment latency observations = %d, want %d", got, len(prep.Segments))
	}

	cs := co.Metrics.Snapshot()
	if got := cs.Counters["transport_client_requests_total"]; got != wantReqs {
		t.Errorf("transport_client_requests_total = %d, want %d", got, wantReqs)
	}
	if got := cs.Counters["transport_client_bytes_down_total"]; got != int64(client.BytesDown) {
		t.Errorf("transport_client_bytes_down_total = %d, want %d", got, client.BytesDown)
	}
	if got := cs.Counters["cache_hits_total"]; got != int64(stats.CacheHits) {
		t.Errorf("cache_hits_total = %d, want %d", got, stats.CacheHits)
	}
	if got := cs.Counters["cache_misses_total"]; got != int64(stats.ModelDownloads) {
		t.Errorf("cache_misses_total = %d, want %d", got, stats.ModelDownloads)
	}
	if got := cs.Counters["model_bytes_total"]; got != int64(stats.ModelBytes) {
		t.Errorf("model_bytes_total = %d, want %d", got, stats.ModelBytes)
	}

	// The windowed twins see the same traffic as the lifetime series.
	if got := ss.WindowedCounters["transport_requests_window_total"].Count; got != wantReqs {
		t.Errorf("transport_requests_window_total = %d, want %d", got, wantReqs)
	}
	if got := ss.WindowedHistograms["transport_segment_window_seconds"].Count; got != int64(len(prep.Segments)) {
		t.Errorf("transport_segment_window_seconds count = %d, want %d", got, len(prep.Segments))
	}
	if got := cs.WindowedHistograms["transport_client_rtt_window_seconds"].Count; got != wantReqs {
		t.Errorf("transport_client_rtt_window_seconds count = %d, want %d", got, wantReqs)
	}
	if got := cs.Histograms["transport_client_rtt_seconds"].Count; got != wantReqs {
		t.Errorf("transport_client_rtt_seconds count = %d, want %d", got, wantReqs)
	}
	if got := cs.WindowedCounters["segments_fetched_window_total"].Count; got != int64(len(prep.Segments)) {
		t.Errorf("segments_fetched_window_total = %d, want %d", got, len(prep.Segments))
	}

	// The client_play trace carries one segment_fetch child per segment
	// plus the manifest's attempt span (fault-free run: one attempt).
	traces := co.Trace.Traces()
	if len(traces) != 1 || traces[0].Name != "client_play" {
		t.Fatalf("client traces = %+v", traces)
	}
	var fetches, attempts int
	for _, ch := range traces[0].Children {
		switch ch.Name {
		case "segment_fetch":
			fetches++
		case "attempt":
			attempts++
		}
	}
	if fetches != len(prep.Segments) || attempts != 1 {
		t.Errorf("client_play children: %d segment_fetch + %d attempt, want %d + 1",
			fetches, attempts, len(prep.Segments))
	}
}

// TestClientLogsErrors verifies client failures are no longer silent:
// a request for a missing model must emit a WARN line through the
// plumbed obs.Logger.
func TestClientLogsErrors(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()

	var buf lockedBuf
	client := NewClient(cconn)
	client.Log = obs.NewLogger(&buf, obs.LevelDebug)
	if _, _, err := client.Model(9999, prep.MicroConfig); err == nil {
		t.Fatal("fetching a missing model succeeded")
	}
	if out := buf.String(); !strings.Contains(out, "WARN") || !strings.Contains(out, "op=model") {
		t.Errorf("client did not log the failed request: %q", out)
	}
}

// TestServerLogsRejections verifies the server's obs.Logger (which
// replaced the bespoke logf) records rejected requests.
func TestServerLogsRejections(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	var buf lockedBuf
	srv.Log = obs.NewLogger(&buf, obs.LevelDebug)
	srv.Obs = obs.New()
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()

	client := NewClient(cconn)
	if _, err := client.Segment(4242); err == nil {
		t.Fatal("fetching a missing segment succeeded")
	}
	if out := buf.String(); !strings.Contains(out, "request rejected") {
		t.Errorf("server did not log the rejection: %q", out)
	}
	if got := srv.Obs.Counter("transport_not_found_total").Value(); got != 1 {
		t.Errorf("transport_not_found_total = %d, want 1", got)
	}
}
