package transport_test

import (
	"fmt"
	"io"
	"net"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/faultnet"
	"dcsr/internal/splitter"
	"dcsr/internal/transport"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// Example_faultTolerantSession streams a prepared clip through a
// throttled, fault-injected connection where every micro-model response is
// dropped (a model-CDN outage while video delivery stays healthy). The
// client retries with backoff, reconnects, then degrades each affected
// segment and keeps playing unenhanced — the session still completes with
// every frame delivered. See docs/OPERATIONS.md for the failure-mode
// catalogue behind this behaviour.
func Example_faultTolerantSession() {
	clip := video.Generate(video.GenConfig{
		W: 80, H: 48, Seed: 23, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
	})
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, core.ServerConfig{
		QP:          51,
		Split:       splitter.Config{Threshold: 14, MinLen: 3},
		VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		VAETrain:    vae.TrainOptions{Epochs: 10, BatchSize: 4},
		MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
		Train:       edsr.TrainOptions{Steps: 60, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	srv, err := transport.NewServer(prep)
	if err != nil {
		panic(err)
	}

	// Drop every micro-model response; manifest and segments stay healthy.
	inj := faultnet.New(faultnet.Config{
		Decide: func(_ int, frame []byte) faultnet.Kind {
			// Both plain (9-byte) and traced (26-byte) frames carry
			// the opcode at byte 4.
			if len(frame) >= 9 && frame[4] == transport.OpModel {
				return faultnet.KindDrop
			}
			return faultnet.KindNone
		},
	})
	var conns []io.Closer
	dial := func() (io.ReadWriter, error) {
		cconn, sconn := net.Pipe()
		go func() { _ = srv.ServeConn(sconn) }()
		conns = append(conns, cconn, sconn)
		// A 1 MiB/s downlink with deterministic fault injection on top.
		return inj.Wrap(transport.NewThrottledConn(cconn, 1<<20)), nil
	}
	conn, _ := dial()
	client := transport.NewClient(conn)
	client.Redial = dial
	client.Retry = transport.RetryPolicy{
		MaxRetries: 1,
		BaseDelay:  time.Millisecond,
		MaxDelay:   2 * time.Millisecond,
		Seed:       1,
	}

	out, stats, err := client.Play(true)
	for _, c := range conns {
		c.Close()
	}
	fmt.Println("playback completed:", err == nil && len(out) == len(frames))
	fmt.Println("degraded but watchable:", stats.DegradedSegments > 0 && stats.VideoBytes > 0)
	fmt.Println("recovery attempted:", client.Retries > 0 && client.Reconnects > 0)
	// Output:
	// playback completed: true
	// degraded but watchable: true
	// recovery attempted: true
}
