package transport_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/faultnet"
	"dcsr/internal/splitter"
	"dcsr/internal/transport"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// Example_faultTolerantSession streams a prepared clip through a
// throttled, fault-injected connection where every micro-model response is
// dropped (a model-CDN outage while video delivery stays healthy). The
// client retries with backoff, reconnects, then degrades each affected
// segment and keeps playing unenhanced — the session still completes with
// every frame delivered. See docs/OPERATIONS.md for the failure-mode
// catalogue behind this behaviour.
func Example_faultTolerantSession() {
	clip := video.Generate(video.GenConfig{
		W: 80, H: 48, Seed: 23, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
	})
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, core.ServerConfig{
		QP:          51,
		Split:       splitter.Config{Threshold: 14, MinLen: 3},
		VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		VAETrain:    vae.TrainOptions{Epochs: 10, BatchSize: 4},
		MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
		Train:       edsr.TrainOptions{Steps: 60, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	srv, err := transport.NewServer(prep)
	if err != nil {
		panic(err)
	}

	// Drop every micro-model response; manifest and segments stay healthy.
	inj := faultnet.New(faultnet.Config{
		Decide: func(_ int, frame []byte) faultnet.Kind {
			// Both plain (9-byte) and traced (26-byte) frames carry
			// the opcode at byte 4.
			if len(frame) >= 9 && frame[4] == transport.OpModel {
				return faultnet.KindDrop
			}
			return faultnet.KindNone
		},
	})
	var conns []io.Closer
	dial := func() (io.ReadWriter, error) {
		cconn, sconn := net.Pipe()
		go func() { _ = srv.ServeConn(sconn) }()
		conns = append(conns, cconn, sconn)
		// A 1 MiB/s downlink with deterministic fault injection on top.
		return inj.Wrap(transport.NewThrottledConn(cconn, 1<<20)), nil
	}
	conn, _ := dial()
	client := transport.NewClient(conn)
	client.Redial = dial
	client.Retry = transport.RetryPolicy{
		MaxRetries: 1,
		BaseDelay:  time.Millisecond,
		MaxDelay:   2 * time.Millisecond,
		Seed:       1,
	}

	out, stats, err := client.Play(true)
	for _, c := range conns {
		c.Close()
	}
	fmt.Println("playback completed:", err == nil && len(out) == len(frames))
	fmt.Println("degraded but watchable:", stats.DegradedSegments > 0 && stats.VideoBytes > 0)
	fmt.Println("recovery attempted:", client.Retries > 0 && client.Reconnects > 0)
	// Output:
	// playback completed: true
	// degraded but watchable: true
	// recovery attempted: true
}

// prepareClip runs the server-side pipeline over a tiny generated clip;
// it exists so the multi-video example stays focused on serving.
func prepareClip(seed int64) (*core.Prepared, int) {
	clip := video.Generate(video.GenConfig{
		W: 64, H: 48, Seed: seed, NumScenes: 2, TotalCues: 4, MinFrames: 5, MaxFrames: 7,
	})
	frames := clip.YUVFrames()
	prep, err := core.Prepare(frames, clip.FPS, core.ServerConfig{
		QP:          51,
		Split:       splitter.Config{Threshold: 14, MinLen: 3},
		VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
		VAETrain:    vae.TrainOptions{Epochs: 8, BatchSize: 4},
		MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
		Train:       edsr.TrainOptions{Steps: 40, BatchSize: 2, PatchSize: 16},
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	return prep, len(frames)
}

// Example_multiVideoServer hosts two prepared videos behind one server,
// lists the directory, selects the second video by its content digest,
// and plays it — the fleet-serving flow documented in docs/SERVING.md.
// Printed values are structural, so the example is stable across runs.
func Example_multiVideoServer() {
	prepA, _ := prepareClip(23)
	prepB, framesB := prepareClip(31)

	srv := transport.NewFleetServer()
	srv.Admission = transport.AdmissionConfig{MaxInflight: 64} // shed, don't queue, past 64 concurrent requests
	digestA, err := srv.Register(prepA)
	if err != nil {
		panic(err)
	}
	digestB, err := srv.Register(prepB)
	if err != nil {
		panic(err)
	}

	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := transport.NewClient(cconn)

	// The first manifest negotiates capabilities (trace + mux framing).
	if _, err := client.Manifest(); err != nil {
		panic(err)
	}
	dir, err := client.Videos()
	if err != nil {
		panic(err)
	}
	fmt.Println("videos hosted:", len(dir.Videos))
	fmt.Println("distinct digests:", digestA != digestB)

	// Route every subsequent request at the second video by digest.
	if err := client.SelectVideoCtx(context.Background(), digestB); err != nil {
		panic(err)
	}
	out, stats, err := client.Play(true)
	if err != nil {
		panic(err)
	}
	fmt.Println("selected video played:", len(out) == framesB)
	fmt.Println("models fetched:", stats.ModelDownloads > 0)
	// Output:
	// videos hosted: 2
	// distinct digests: true
	// selected video played: true
	// models fetched: true
}
