package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dcsr/internal/obs"
)

func TestAdmissionConfigDefaults(t *testing.T) {
	c := AdmissionConfig{}.withDefaults()
	if c.RetryAfter != 50*time.Millisecond {
		t.Errorf("RetryAfter default = %v, want 50ms", c.RetryAfter)
	}
	if c.PerConnBurst != 0 {
		t.Errorf("PerConnBurst = %v without a rate, want 0", c.PerConnBurst)
	}
	c = AdmissionConfig{PerConnRate: 0.25}.withDefaults()
	if c.PerConnBurst != 1 {
		t.Errorf("PerConnBurst for sub-1 rate = %v, want 1", c.PerConnBurst)
	}
	c = AdmissionConfig{PerConnRate: 40}.withDefaults()
	if c.PerConnBurst != 40 {
		t.Errorf("PerConnBurst default = %v, want rate 40", c.PerConnBurst)
	}
	if (AdmissionConfig{}).limited() {
		t.Error("zero config reports limited")
	}
	for _, cfg := range []AdmissionConfig{
		{MaxInflight: 1}, {MaxPerConn: 1}, {PerConnRate: 1}, {OpLimits: map[byte]int{OpModel: 1}},
	} {
		if !cfg.limited() {
			t.Errorf("config %+v reports unlimited", cfg)
		}
	}
}

// TestTokenBucketHint pins the rate-limit shed hint math: an empty bucket
// tells the client exactly how long until the next whole token, and the
// bucket refills against the injected clock.
func TestTokenBucketHint(t *testing.T) {
	now := time.Unix(100, 0)
	adm := newAdmission(AdmissionConfig{PerConnRate: 10, PerConnBurst: 2})
	g := adm.gate(func() time.Time { return now })

	for i := 0; i < 2; i++ {
		release, _, ok := g.admit(OpSegment)
		if !ok {
			t.Fatalf("request %d within burst was shed", i)
		}
		release()
	}
	// Bucket empty: the next token arrives in 1/rate = 100ms.
	_, hint, ok := g.admit(OpSegment)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if hint != 100*time.Millisecond {
		t.Fatalf("shed hint = %v, want 100ms", hint)
	}
	// Advance half a token: 50ms of refill still sheds, with a 50ms hint.
	now = now.Add(50 * time.Millisecond)
	if _, hint, ok = g.admit(OpSegment); ok || hint != 50*time.Millisecond {
		t.Fatalf("half-refilled bucket: ok=%v hint=%v, want shed with 50ms", ok, hint)
	}
	// A full refill interval admits again.
	now = now.Add(50 * time.Millisecond)
	if _, _, ok := g.admit(OpSegment); !ok {
		t.Fatal("refilled bucket shed the request")
	}
}

// TestAdmissionLimits pins the concurrency limits: global MaxInflight,
// per-connection MaxPerConn, and per-opcode OpLimits, including release
// returning capacity.
func TestAdmissionLimits(t *testing.T) {
	adm := newAdmission(AdmissionConfig{
		MaxInflight: 3,
		MaxPerConn:  2,
		OpLimits:    map[byte]int{OpModel: 1},
		RetryAfter:  7 * time.Millisecond,
	})
	g1, g2 := adm.gate(nil), adm.gate(nil)

	rel1, _, ok := g1.admit(OpSegment)
	if !ok {
		t.Fatal("first request shed")
	}
	if _, _, ok := g1.admit(OpSegment); !ok {
		t.Fatal("second request on conn 1 shed")
	}
	// Conn 1 is at MaxPerConn; its third request sheds with the
	// configured hint while conn 2 is still admitted.
	if _, hint, ok := g1.admit(OpSegment); ok || hint != 7*time.Millisecond {
		t.Fatalf("per-conn limit: ok=%v hint=%v, want shed with 7ms", ok, hint)
	}
	relM, _, ok := g2.admit(OpModel)
	if !ok {
		t.Fatal("conn 2 first request shed")
	}
	// Global inflight is now 3 = MaxInflight: conn 2's next request sheds.
	if _, _, ok := g2.admit(OpSegment); ok {
		t.Fatal("request beyond MaxInflight admitted")
	}
	if got, peak := adm.snapshot(); got != 3 || peak != 3 {
		t.Fatalf("snapshot = (%d, %d), want (3, 3)", got, peak)
	}
	// Releasing a global slot is not enough for a second OpModel — the
	// per-op limit still holds — but a plain segment gets in.
	rel1()
	if _, _, ok := g1.admit(OpModel); ok {
		t.Fatal("second OpModel admitted past OpLimits")
	}
	relS, _, ok := g1.admit(OpSegment)
	if !ok {
		t.Fatal("segment shed after release freed a slot")
	}
	relS()
	relM()
	if _, _, ok := g2.admit(OpModel); !ok {
		t.Fatal("OpModel shed after its slot was released")
	}
	// Live slots: conn 1's unreleased segment and conn 2's re-admitted
	// model. Peak stays at the high-water mark.
	if got, peak := adm.snapshot(); got != 2 || peak != 3 {
		t.Fatalf("post-release snapshot = (%d, %d), want (2, 3)", got, peak)
	}
}

// TestAdmissionConcurrentLoad drives six pipelined requests into a
// MaxInflight=3 server (run under -race). The first three are admitted
// and pinned in the handler; the remaining three must be shed with typed
// retry-after rejections — no hard errors, no lost responses.
func TestAdmissionConcurrentLoad(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	srv.Obs = obs.New()
	srv.Admission = AdmissionConfig{MaxInflight: 3}
	hold := make(chan struct{})
	srv.admitHold = func(op byte) {
		if op == OpSegment { // let the negotiation probe through
			<-hold
		}
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()

	mux, err := DialMux(func() (io.ReadWriter, error) { return cconn, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Zero retry policy: a shed surfaces immediately as a typed error.
	const reqs = 6
	type result struct {
		payload []byte
		err     error
	}
	results := make(chan result, reqs)
	var launched sync.WaitGroup
	for i := 0; i < reqs; i++ {
		launched.Add(1)
		go func() {
			defer launched.Done()
			p, err := mux.Do(context.Background(), OpSegment, 0, 0)
			results <- result{p, err}
		}()
	}
	// Collect the three sheds first — only then unblock the held three.
	var sheds int
	for sheds < 3 {
		r := <-results
		if _, ok := IsRetryAfter(r.err); !ok {
			t.Fatalf("expected typed retry-after, got payload=%d err=%v", len(r.payload), r.err)
		}
		sheds++
	}
	close(hold)
	for i := 0; i < reqs-3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("admitted request failed: %v", r.err)
		}
		if len(r.payload) == 0 {
			t.Fatal("admitted request returned an empty segment")
		}
	}
	launched.Wait()
	if got := srv.Obs.Counter("transport_shed_total").Value(); got != 3 {
		t.Errorf("transport_shed_total = %d, want 3", got)
	}
	if got := mux.Stats().Sheds; got != 3 {
		t.Errorf("client sheds = %d, want 3", got)
	}
	if got := srv.Obs.Gauge("transport_inflight_peak").Value(); got != 3 {
		t.Errorf("transport_inflight_peak = %d, want 3", got)
	}
}

// TestAdmissionFairnessGreedyClient pins the MaxPerConn fairness knob: a
// greedy client pipelining four requests is clipped to its two slots
// while a modest client on another connection keeps being served.
func TestAdmissionFairnessGreedyClient(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	srv.Admission = AdmissionConfig{MaxPerConn: 2}
	hold := make(chan struct{})
	srv.admitHold = func(op byte) {
		if op == OpSegment {
			<-hold
		}
	}
	dial := func() (io.ReadWriter, error) {
		cconn, sconn := net.Pipe()
		go func() { _ = srv.ServeConn(sconn) }()
		return cconn, nil
	}
	greedy, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	const reqs = 4
	errs := make(chan error, reqs)
	for i := 0; i < reqs; i++ {
		go func() { // greedy: pipeline everything at once
			_, err := greedy.Do(context.Background(), OpSegment, 0, 0)
			errs <- err
		}()
	}
	var sheds int
	for sheds < reqs-2 {
		if _, ok := IsRetryAfter(<-errs); !ok {
			t.Fatal("greedy client got a non-shed failure while over its per-conn budget")
		}
		sheds++
	}
	// With the greedy client pinned at its cap, a modest client is still
	// admitted: OpVideos bypasses the hold, and there is no global limit.
	modest, err := DialMux(dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modest.Do(context.Background(), OpVideos, 0, 0); err != nil {
		t.Fatalf("modest client shed while greedy was clipped: %v", err)
	}
	close(hold)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("greedy client's admitted request failed: %v", err)
		}
	}
	if got := greedy.Stats().Sheds; got != 2 {
		t.Errorf("greedy sheds = %d, want 2", got)
	}
	if got := modest.Stats().Sheds; got != 0 {
		t.Errorf("modest sheds = %d, want 0", got)
	}
}

// TestRetryPolicyHonorsShedHint pins the client side of admission: a shed
// response's hint acts as a floor on the retry backoff, and sheds burn
// the shed budget, not the transport-failure budget.
func TestRetryPolicyHonorsShedHint(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	// A nearly-zero refill rate: the manifest consumes the single token
	// and every later request sheds with an enormous hint.
	srv.Admission = AdmissionConfig{PerConnRate: 1e-6, PerConnBurst: 1}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()

	client := NewClient(cconn)
	client.Retry = RetryPolicy{ShedRetries: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1}
	var slept []time.Duration
	client.sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := client.Manifest(); err != nil {
		t.Fatal(err)
	}
	_, err = client.Segment(0)
	hint, ok := IsRetryAfter(err)
	if !ok {
		t.Fatalf("want retry-after after shed budget exhausted, got %v", err)
	}
	if hint < time.Hour {
		t.Fatalf("rate hint = %v, expected the near-zero rate to produce a huge wait", hint)
	}
	// One shed retry was attempted, and its backoff was floored at the
	// server's hint rather than the policy's 1-2ms schedule.
	if len(slept) != 1 {
		t.Fatalf("client slept %d times, want exactly 1 shed backoff", len(slept))
	}
	if slept[0] < hint {
		t.Errorf("shed backoff %v below the server hint %v", slept[0], hint)
	}
	if client.Sheds != 2 {
		t.Errorf("client.Sheds = %d, want 2 (initial + one retry)", client.Sheds)
	}
	if client.Retries != 0 {
		t.Errorf("client.Retries = %d; sheds must not burn the transport budget", client.Retries)
	}
}

// TestMaxConnsRejectsTyped pins the connection cap: an over-capacity
// connection gets exactly one typed retry-after, then the server hangs up.
func TestMaxConnsRejectsTyped(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	srv.Admission = AdmissionConfig{MaxConns: 1, RetryAfter: 25 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	first, conn1, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	if _, err := first.Manifest(); err != nil {
		t.Fatal(err)
	}
	second, conn2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_, err = second.Manifest()
	hint, ok := IsRetryAfter(err)
	if !ok {
		t.Fatalf("over-capacity conn: want typed retry-after, got %v", err)
	}
	if hint != 25*time.Millisecond {
		t.Errorf("over-capacity hint = %v, want the configured 25ms", hint)
	}
	// The capped connection was closed after its one rejection…
	if _, err := second.Manifest(); err == nil {
		t.Error("second request on a rejected conn succeeded")
	}
	// …while the admitted connection keeps working.
	if _, err := first.Segment(0); err != nil {
		t.Errorf("admitted conn broken by the rejection: %v", err)
	}
}

var errSentinel = errors.New("sentinel")

func TestIsRetryAfterOnOtherErrors(t *testing.T) {
	if _, ok := IsRetryAfter(errSentinel); ok {
		t.Error("IsRetryAfter matched a plain error")
	}
	if _, ok := IsRetryAfter(&statusError{status: StatusNotFound}); ok {
		t.Error("IsRetryAfter matched NotFound")
	}
	if IsNotFound(&statusError{status: StatusRetryAfter}) {
		t.Error("IsNotFound matched RetryAfter")
	}
}
