package transport

import (
	"bytes"
	"net"
	"testing"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/splitter"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// int8Fixture prepares a clip with the quantize_int8 stage forced to
// admit every cluster (unbounded PSNR drop), so the manifest advertises
// int8 models with activation scales.
var int8Fixture *core.Prepared

func getInt8Fixture(t testing.TB) *core.Prepared {
	t.Helper()
	if int8Fixture == nil {
		clip := video.Generate(video.GenConfig{
			W: 80, H: 48, Seed: 23, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
		})
		prep, err := core.Prepare(clip.YUVFrames(), clip.FPS, core.ServerConfig{
			QP:          51,
			Split:       splitter.Config{Threshold: 14, MinLen: 3},
			VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
			VAETrain:    vae.TrainOptions{Epochs: 10, BatchSize: 4},
			MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
			Train:       edsr.TrainOptions{Steps: 60, BatchSize: 2, PatchSize: 16},
			Quant:       core.QuantConfig{Enabled: true, MaxPSNRDrop: 100},
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		int8Fixture = prep
	}
	return int8Fixture
}

func playOverPipe(t *testing.T, prep *core.Prepared, noInt8 bool) ([]*video.YUV, *PlayStats) {
	t.Helper()
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)
	client.NoInt8 = noInt8
	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

func framesEqual(a, b []*video.YUV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Y, b[i].Y) || !bytes.Equal(a[i].U, b[i].U) || !bytes.Equal(a[i].V, b[i].V) {
			return false
		}
	}
	return true
}

// TestPlayInt8OverWire pins the end-to-end quantized serving path: the
// manifest carries the gate verdict and activation scales over the wire,
// the client calibrates each downloaded model from them, and the decoded
// pixels are bit-identical to a local int8 playback at the origin. The
// NoInt8 ablation must reproduce the float32 pixels instead.
func TestPlayInt8OverWire(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the pipeline; skipped in short mode")
	}
	prep := getInt8Fixture(t)
	for label, mi := range prep.Manifest.Models {
		if !mi.Int8 || len(mi.ActScales) == 0 {
			t.Fatalf("model %d: manifest entry not int8-armed: %+v", label, mi)
		}
	}

	out, stats := playOverPipe(t, prep, false)
	if stats.Enhanced == 0 || stats.EnhancedInt8 != stats.Enhanced {
		t.Fatalf("int8 playback enhanced %d frames, %d on int8; want all on int8",
			stats.Enhanced, stats.EnhancedInt8)
	}
	local := core.NewPlayer(prep)
	ref, err := local.Play()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Decode.EnhancedInt8 != stats.EnhancedInt8 {
		t.Fatalf("origin played %d int8 frames, wire client %d", ref.Decode.EnhancedInt8, stats.EnhancedInt8)
	}
	if !framesEqual(out, ref.Frames) {
		t.Fatal("wire int8 playback differs from origin-local int8 playback")
	}

	outF, statsF := playOverPipe(t, prep, true)
	if statsF.EnhancedInt8 != 0 {
		t.Fatalf("NoInt8 client served %d frames on int8", statsF.EnhancedInt8)
	}
	if statsF.Enhanced != stats.Enhanced {
		t.Fatalf("NoInt8 enhanced %d frames, int8 run %d", statsF.Enhanced, stats.Enhanced)
	}
	localF := core.NewPlayer(prep)
	localF.Int8 = false
	refF, err := localF.Play()
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(outF, refF.Frames) {
		t.Fatal("wire float32 playback differs from origin-local float32 playback")
	}
	if framesEqual(out, outF) {
		t.Fatal("int8 and float32 playbacks produced identical pixels; quantization had no effect, test is vacuous")
	}
}
