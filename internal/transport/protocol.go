// Package transport serves and fetches dcSR artifacts over real network
// connections: a length-prefixed binary request/response protocol, a
// concurrent origin server wrapping a prepared stream, a client with
// micro-model caching, and a token-bucket bandwidth throttler for
// emulating constrained links.
//
// The paper's prototype pairs a streaming platform with SR-FFMPEG; this
// package is the equivalent delivery path: the client downloads the
// manifest, then per segment the coded sub-stream plus (on cache miss) the
// segment's micro model, decoding and enhancing as it goes.
//
// # Wire protocol
//
// Every exchange is one fixed-size request frame followed by one
// length-prefixed response. A plain request is exactly 9 bytes:
//
//	magic 'dcT1' (4) | opcode (1) | big-endian uint32 arg (4)
//
// where opcode is OpManifest, OpSegment or OpModel and arg is the segment
// index or model label (ignored for OpManifest). A traced request is the
// same frame under magic 'dcT2' followed by a 17-byte trace context —
//
//	magic 'dcT2' (4) | opcode (1) | arg (4) | trace ID (8) | parent span ID (8) | attempt (1)
//
// — which lets the server join the client's trace (see TraceContext).
// The magic doubles as the capability switch: a server that understands
// 'dcT2' advertises WireManifest.Trace, and a client only emits traced
// frames after seeing that flag, so old-client↔new-server and
// new-client↔old-server pairs interoperate on plain 'dcT1' frames.
//
// The response is a 5-byte header — status (1) | big-endian uint32
// payload length (4) — followed by the payload. Payloads are capped at
// maxPayload; a non-OK status carries no payload. Because frames carry no
// sequence numbers, a short read or dropped response desynchronizes the
// stream irrecoverably: the Client therefore marks its connection broken
// on any transport-level error and redials (Client.Redial) rather than
// attempting to resynchronize. A frame cut inside the trace-context bytes
// is the same failure mode: the server sees io.ErrUnexpectedEOF from the
// frame read and drops the connection, exactly as for a short 'dcT1'
// frame.
//
// # Client concurrency contract
//
// A Client owns exactly one connection and issues requests strictly
// sequentially; it is not safe for concurrent use. This mirrors a player's
// fetch loop (the paper's Algorithm 1 walks segments in order) and keeps
// the framing trivially correct — at most one request is ever in flight.
// Open multiple Clients for parallel sessions; the Server handles each
// connection in its own goroutine.
//
// # Fault tolerance
//
// Client.Retry configures retries with exponential backoff and jitter plus
// a per-request deadline; see RetryPolicy. Application-level failures
// (StatusNotFound, StatusBadReq) are never retried — only transport-level
// errors and timeouts are, after reconnecting through Client.Redial. The
// internal/faultnet package injects deterministic faults beneath a Client
// for testing; docs/OPERATIONS.md describes the failure modes and the
// degraded-playback semantics end to end.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"dcsr/internal/edsr"
	"dcsr/internal/stream"
)

// Opcodes of the request protocol.
const (
	OpManifest = 1 // payload: none          → JSON WireManifest
	OpSegment  = 2 // payload: segment index → marshaled codec.Stream
	OpModel    = 3 // payload: model label   → serialized weights
)

// Response status codes.
const (
	StatusOK       = 0
	StatusNotFound = 1
	StatusBadReq   = 2
)

// maxPayload bounds a single response (64 MiB) so a corrupt or malicious
// length prefix cannot make the client allocate unbounded memory.
const maxPayload = 64 << 20

// Framing sizes, used by both sides for byte accounting.
const (
	reqFrameBytes       = 9  // magic(4) + opcode(1) + arg(4)
	tracedReqFrameBytes = 26 // reqFrameBytes + traceID(8) + spanID(8) + attempt(1)
	respFrameBytes      = 5  // status(1) + length(4)
)

var (
	protoMagic  = [4]byte{'d', 'c', 'T', '1'}
	tracedMagic = [4]byte{'d', 'c', 'T', '2'}
)

// TraceContext is the trace identity a traced ('dcT2') request carries:
// which distributed trace the request belongs to, the client-side span
// that issued this attempt (the server span's parent), and the 0-based
// retry attempt number. The zero value — in particular TraceID == 0 —
// means "no trace", which is also how a plain 'dcT1' frame parses.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Attempt uint8
}

// frameBytes is the on-the-wire size of a request carrying (or not
// carrying) this trace context.
func (tc TraceContext) frameBytes() int64 {
	if tc.TraceID != 0 {
		return tracedReqFrameBytes
	}
	return reqFrameBytes
}

// WireManifest is the JSON document served for OpManifest: the byte-level
// manifest plus everything a client needs to decode and enhance.
type WireManifest struct {
	FPS         int                  `json:"fps"`
	MicroConfig edsr.Config          `json:"micro_config"`
	Segments    []stream.SegmentInfo `json:"segments"`
	Models      []stream.ModelInfo   `json:"models"`
	// Trace advertises that the server understands traced ('dcT2')
	// request frames. A manifest from an older server decodes with
	// Trace == false, keeping a newer client on plain frames.
	Trace bool `json:"trace,omitempty"`
}

// Manifest converts the wire form back to a stream.Manifest.
func (wm *WireManifest) Manifest() *stream.Manifest {
	m := &stream.Manifest{Models: make(map[int]stream.ModelInfo, len(wm.Models))}
	m.Segments = append(m.Segments, wm.Segments...)
	for _, mi := range wm.Models {
		m.Models[mi.Label] = mi
	}
	return m
}

// EncodeWireManifest serializes a manifest for OpManifest responses.
func EncodeWireManifest(fps int, micro edsr.Config, m *stream.Manifest) ([]byte, error) {
	wm := WireManifest{FPS: fps, MicroConfig: micro, Segments: m.Segments, Trace: true}
	for _, l := range m.ModelLabels() {
		wm.Models = append(wm.Models, m.Models[l])
	}
	return json.Marshal(wm)
}

// DecodeWireManifest parses an OpManifest payload.
func DecodeWireManifest(data []byte) (*WireManifest, error) {
	var wm WireManifest
	if err := json.Unmarshal(data, &wm); err != nil {
		return nil, fmt.Errorf("transport: bad manifest payload: %w", err)
	}
	return &wm, nil
}

// writeRequest frames a plain 'dcT1' request: magic, opcode byte, uint32
// argument.
func writeRequest(w io.Writer, op byte, arg uint32) error {
	var buf [reqFrameBytes]byte
	copy(buf[:4], protoMagic[:])
	buf[4] = op
	binary.BigEndian.PutUint32(buf[5:], arg)
	_, err := w.Write(buf[:])
	return err
}

// writeRequestTraced frames a traced 'dcT2' request carrying tc. The
// whole frame goes out in one Write so the fault layer treats it as one
// request.
func writeRequestTraced(w io.Writer, op byte, arg uint32, tc TraceContext) error {
	var buf [tracedReqFrameBytes]byte
	copy(buf[:4], tracedMagic[:])
	buf[4] = op
	binary.BigEndian.PutUint32(buf[5:], arg)
	binary.BigEndian.PutUint64(buf[9:], tc.TraceID)
	binary.BigEndian.PutUint64(buf[17:], tc.SpanID)
	buf[25] = tc.Attempt
	_, err := w.Write(buf[:])
	return err
}

// readRequest parses a plain or traced request frame; a plain frame (and
// a traced frame with trace ID zero) yields the zero TraceContext.
// io.EOF is returned as-is so servers can treat a clean close between
// requests as normal termination; a connection cut mid-frame — including
// inside the trace-context bytes — surfaces as a wrapped
// io.ErrUnexpectedEOF, the ordinary broken-connection path.
func readRequest(r io.Reader) (op byte, arg uint32, tc TraceContext, err error) {
	var buf [tracedReqFrameBytes]byte
	if _, err := io.ReadFull(r, buf[:reqFrameBytes]); err != nil {
		if err == io.EOF {
			return 0, 0, TraceContext{}, io.EOF
		}
		return 0, 0, TraceContext{}, fmt.Errorf("transport: reading request: %w", err)
	}
	switch [4]byte(buf[:4]) {
	case protoMagic:
	case tracedMagic:
		if _, err := io.ReadFull(r, buf[reqFrameBytes:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, 0, TraceContext{}, fmt.Errorf("transport: reading trace context: %w", err)
		}
		tc.TraceID = binary.BigEndian.Uint64(buf[9:])
		tc.SpanID = binary.BigEndian.Uint64(buf[17:])
		tc.Attempt = buf[25]
	default:
		return 0, 0, TraceContext{}, fmt.Errorf("transport: bad request magic %x", buf[:4])
	}
	return buf[4], binary.BigEndian.Uint32(buf[5:]), tc, nil
}

// writeResponse frames a response: status byte + uint32 length + payload.
func writeResponse(w io.Writer, status byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponse parses a response frame, enforcing the payload bound.
func readResponse(r io.Reader) (status byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("transport: reading response header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("transport: response of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: reading response payload: %w", err)
	}
	return hdr[0], payload, nil
}
