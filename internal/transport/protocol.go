// Package transport serves and fetches dcSR artifacts over real network
// connections: a length-prefixed binary request/response protocol, a
// concurrent origin server wrapping a prepared stream, a client with
// micro-model caching, and a token-bucket bandwidth throttler for
// emulating constrained links.
//
// The paper's prototype pairs a streaming platform with SR-FFMPEG; this
// package is the equivalent delivery path: the client downloads the
// manifest, then per segment the coded sub-stream plus (on cache miss) the
// segment's micro model, decoding and enhancing as it goes.
//
// # Wire protocol
//
// Every exchange is one fixed-size request frame followed by one
// length-prefixed response. A request is exactly 9 bytes:
//
//	magic 'dcT1' (4) | opcode (1) | big-endian uint32 arg (4)
//
// where opcode is OpManifest, OpSegment or OpModel and arg is the segment
// index or model label (ignored for OpManifest). The response is a 5-byte
// header — status (1) | big-endian uint32 payload length (4) — followed by
// the payload. Payloads are capped at maxPayload; a non-OK status carries
// no payload. Because frames carry no sequence numbers, a short read or
// dropped response desynchronizes the stream irrecoverably: the Client
// therefore marks its connection broken on any transport-level error and
// redials (Client.Redial) rather than attempting to resynchronize.
//
// # Client concurrency contract
//
// A Client owns exactly one connection and issues requests strictly
// sequentially; it is not safe for concurrent use. This mirrors a player's
// fetch loop (the paper's Algorithm 1 walks segments in order) and keeps
// the framing trivially correct — at most one request is ever in flight.
// Open multiple Clients for parallel sessions; the Server handles each
// connection in its own goroutine.
//
// # Fault tolerance
//
// Client.Retry configures retries with exponential backoff and jitter plus
// a per-request deadline; see RetryPolicy. Application-level failures
// (StatusNotFound, StatusBadReq) are never retried — only transport-level
// errors and timeouts are, after reconnecting through Client.Redial. The
// internal/faultnet package injects deterministic faults beneath a Client
// for testing; docs/OPERATIONS.md describes the failure modes and the
// degraded-playback semantics end to end.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"dcsr/internal/edsr"
	"dcsr/internal/stream"
)

// Opcodes of the request protocol.
const (
	OpManifest = 1 // payload: none          → JSON WireManifest
	OpSegment  = 2 // payload: segment index → marshaled codec.Stream
	OpModel    = 3 // payload: model label   → serialized weights
)

// Response status codes.
const (
	StatusOK       = 0
	StatusNotFound = 1
	StatusBadReq   = 2
)

// maxPayload bounds a single response (64 MiB) so a corrupt or malicious
// length prefix cannot make the client allocate unbounded memory.
const maxPayload = 64 << 20

// Framing sizes, used by both sides for byte accounting.
const (
	reqFrameBytes  = 9 // magic(4) + opcode(1) + arg(4)
	respFrameBytes = 5 // status(1) + length(4)
)

var protoMagic = [4]byte{'d', 'c', 'T', '1'}

// WireManifest is the JSON document served for OpManifest: the byte-level
// manifest plus everything a client needs to decode and enhance.
type WireManifest struct {
	FPS         int                  `json:"fps"`
	MicroConfig edsr.Config          `json:"micro_config"`
	Segments    []stream.SegmentInfo `json:"segments"`
	Models      []stream.ModelInfo   `json:"models"`
}

// Manifest converts the wire form back to a stream.Manifest.
func (wm *WireManifest) Manifest() *stream.Manifest {
	m := &stream.Manifest{Models: make(map[int]stream.ModelInfo, len(wm.Models))}
	m.Segments = append(m.Segments, wm.Segments...)
	for _, mi := range wm.Models {
		m.Models[mi.Label] = mi
	}
	return m
}

// EncodeWireManifest serializes a manifest for OpManifest responses.
func EncodeWireManifest(fps int, micro edsr.Config, m *stream.Manifest) ([]byte, error) {
	wm := WireManifest{FPS: fps, MicroConfig: micro, Segments: m.Segments}
	for _, l := range m.ModelLabels() {
		wm.Models = append(wm.Models, m.Models[l])
	}
	return json.Marshal(wm)
}

// DecodeWireManifest parses an OpManifest payload.
func DecodeWireManifest(data []byte) (*WireManifest, error) {
	var wm WireManifest
	if err := json.Unmarshal(data, &wm); err != nil {
		return nil, fmt.Errorf("transport: bad manifest payload: %w", err)
	}
	return &wm, nil
}

// writeRequest frames a request: magic, opcode byte, uint32 argument.
func writeRequest(w io.Writer, op byte, arg uint32) error {
	var buf [9]byte
	copy(buf[:4], protoMagic[:])
	buf[4] = op
	binary.BigEndian.PutUint32(buf[5:], arg)
	_, err := w.Write(buf[:])
	return err
}

// readRequest parses a request frame. io.EOF is returned as-is so servers
// can treat a clean close between requests as normal termination.
func readRequest(r io.Reader) (op byte, arg uint32, err error) {
	var buf [9]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			return 0, 0, io.EOF
		}
		return 0, 0, fmt.Errorf("transport: reading request: %w", err)
	}
	if [4]byte(buf[:4]) != protoMagic {
		return 0, 0, fmt.Errorf("transport: bad request magic %x", buf[:4])
	}
	return buf[4], binary.BigEndian.Uint32(buf[5:]), nil
}

// writeResponse frames a response: status byte + uint32 length + payload.
func writeResponse(w io.Writer, status byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponse parses a response frame, enforcing the payload bound.
func readResponse(r io.Reader) (status byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("transport: reading response header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("transport: response of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: reading response payload: %w", err)
	}
	return hdr[0], payload, nil
}
