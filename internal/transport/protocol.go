// Package transport serves and fetches dcSR artifacts over real network
// connections: a length-prefixed binary request/response protocol, a
// concurrent multi-video origin server with admission control, sequential
// and multiplexed clients with micro-model caching, and a token-bucket
// bandwidth throttler for emulating constrained links.
//
// The paper's prototype pairs a streaming platform with SR-FFMPEG; this
// package is the equivalent delivery path: the client downloads the
// manifest, then per segment the coded sub-stream plus (on cache miss) the
// segment's micro model, decoding and enhancing as it goes. The paper's
// deployment sketch (§5) is a CDN-side service handing per-cluster micro
// models to many concurrent clients; Server hosts any number of prepared
// videos behind one endpoint, routed by content digest, and sheds load
// with typed retry-after rejections when over budget (see
// docs/SERVING.md for the operator view).
//
// # Wire protocol
//
// Every exchange is one fixed-size request frame followed by one
// length-prefixed response. A plain request is exactly 9 bytes:
//
//	magic 'dcT1' (4) | opcode (1) | big-endian uint32 arg (4)
//
// where opcode is OpManifest, OpSegment, OpModel or OpVideos and arg is
// the segment index or model label (ignored for OpManifest/OpVideos). A
// traced request is the same frame under magic 'dcT2' followed by a
// 17-byte trace context —
//
//	magic 'dcT2' (4) | opcode (1) | arg (4) | trace ID (8) | parent span ID (8) | attempt (1)
//
// — which lets the server join the client's trace (see TraceContext).
// A multiplexed request is the third generation, magic 'dcT3', and is
// always exactly 34 bytes:
//
//	magic 'dcT3' (4) | opcode (1) | arg (4) | video ID (4) | request ID (4) |
//	trace ID (8) | parent span ID (8) | attempt (1)
//
// The video ID routes the request to one of the hosted videos (0 is the
// default video, so a mux frame with video 0 behaves exactly like a
// plain frame); the request ID is an opaque client token echoed in the
// response header, which is what makes pipelining possible: many mux
// requests may be in flight on one connection and the server may answer
// them out of order. A 'dcT3' request is answered with a 9-byte mux
// response header — request ID (4) | status (1) | length (4) — while
// 'dcT1'/'dcT2' requests keep the classic 5-byte header — status (1) |
// length (4) — so every protocol generation interoperates on one port. A
// connection must not mix classic and mux framing with responses
// outstanding: classic responses carry no ID, so interleaving them with
// out-of-order mux responses would be ambiguous. Clients here switch to
// mux framing for a connection at negotiation time and stay on it.
//
// Each magic doubles as a capability switch: a server that understands
// 'dcT2' advertises WireManifest.Trace, one that understands 'dcT3'
// advertises WireManifest.Mux (and serves OpVideos), and a client only
// emits the newer frames after seeing the flag, so old-client↔new-server
// and new-client↔old-server pairs interoperate on plain 'dcT1' frames.
//
// Payloads are capped at maxPayload. A non-OK status usually carries no
// payload; the one exception is StatusRetryAfter, whose 4-byte payload is
// the server's backoff hint in milliseconds (see AdmissionConfig and
// IsRetryAfter). Because classic frames carry no sequence numbers, a
// short read or dropped response desynchronizes the stream irrecoverably:
// the Client therefore marks its connection broken on any
// transport-level error and redials (Client.Redial) rather than
// attempting to resynchronize. A frame cut inside the trace-context
// bytes is the same failure mode: the server sees io.ErrUnexpectedEOF
// from the frame read and drops the connection, exactly as for a short
// 'dcT1' frame.
//
// # Client concurrency contract
//
// A Client owns exactly one connection and issues requests strictly
// sequentially; it is not safe for concurrent use. This mirrors a player's
// fetch loop (the paper's Algorithm 1 walks segments in order) and keeps
// the framing trivially correct — at most one request is ever in flight.
// Open multiple Clients for parallel sessions, or share one MuxClient —
// which is safe for concurrent use and pipelines requests on a single
// connection — among many sessions; the Server handles each connection
// in its own goroutine and each pipelined request in a bounded worker.
//
// # Fault tolerance and admission control
//
// Client.Retry configures retries with exponential backoff and jitter plus
// a per-request deadline; see RetryPolicy. Application-level failures
// (StatusNotFound, StatusBadReq) are never retried — only transport-level
// errors and timeouts are, after reconnecting through Client.Redial.
// StatusRetryAfter sits in between: it is a deterministic rejection (the
// connection stays synchronized) but a retryable one — clients honor the
// carried hint as a backoff floor and try again under a separate shed
// budget (RetryPolicy.ShedRetries). The internal/faultnet package
// injects deterministic faults beneath a Client for testing;
// docs/OPERATIONS.md describes the failure modes and the
// degraded-playback semantics end to end.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"dcsr/internal/edsr"
	"dcsr/internal/stream"
)

// Opcodes of the request protocol.
const (
	OpManifest = 1 // payload: none          → JSON WireManifest
	OpSegment  = 2 // payload: segment index → marshaled codec.Stream
	OpModel    = 3 // payload: model label   → serialized weights (always complete)
	OpVideos   = 4 // payload: none          → JSON WireDirectory
	// OpBackbone fetches the video's shared backbone weights (the model
	// stream's base payload, downloaded once per session); OpModelDelta
	// fetches model label's dcW5 delta against that backbone. Both answer
	// StatusNotFound when the video was prepared without delta encoding;
	// OpModel keeps serving every model complete, which is how pre-
	// model-stream clients (and assembly fallback) interoperate.
	OpBackbone   = 5 // payload: none        → backbone serialized weights
	OpModelDelta = 6 // payload: model label → dcW5 delta payload
)

// Response status codes.
const (
	StatusOK       = 0
	StatusNotFound = 1
	StatusBadReq   = 2
	// StatusRetryAfter is a typed admission rejection: the server is over
	// budget and shed the request deterministically. Its payload is a
	// 4-byte big-endian backoff hint in milliseconds; clients honor it as
	// a floor on their next backoff (see RetryPolicy.ShedRetries). Unlike
	// transport errors the connection stays synchronized, so no redial is
	// needed.
	StatusRetryAfter = 3
)

// maxPayload bounds a single response (64 MiB) so a corrupt or malicious
// length prefix cannot make the client allocate unbounded memory.
const maxPayload = 64 << 20

// Framing sizes, used by both sides for byte accounting.
const (
	reqFrameBytes       = 9  // magic(4) + opcode(1) + arg(4)
	tracedReqFrameBytes = 26 // reqFrameBytes + traceID(8) + spanID(8) + attempt(1)
	muxReqFrameBytes    = 34 // magic(4) + opcode(1) + arg(4) + video(4) + reqID(4) + traceID(8) + spanID(8) + attempt(1)
	respFrameBytes      = 5  // status(1) + length(4)
	muxRespFrameBytes   = 9  // reqID(4) + status(1) + length(4)
)

var (
	protoMagic  = [4]byte{'d', 'c', 'T', '1'}
	tracedMagic = [4]byte{'d', 'c', 'T', '2'}
	muxMagic    = [4]byte{'d', 'c', 'T', '3'}
)

// TraceContext is the trace identity a traced ('dcT2') request carries:
// which distributed trace the request belongs to, the client-side span
// that issued this attempt (the server span's parent), and the 0-based
// retry attempt number. The zero value — in particular TraceID == 0 —
// means "no trace", which is also how a plain 'dcT1' frame parses.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Attempt uint8
}

// frameBytes is the on-the-wire size of a request carrying (or not
// carrying) this trace context.
func (tc TraceContext) frameBytes() int64 {
	if tc.TraceID != 0 {
		return tracedReqFrameBytes
	}
	return reqFrameBytes
}

// WireManifest is the JSON document served for OpManifest: the byte-level
// manifest plus everything a client needs to decode and enhance.
type WireManifest struct {
	FPS         int                  `json:"fps"`
	MicroConfig edsr.Config          `json:"micro_config"`
	Segments    []stream.SegmentInfo `json:"segments"`
	Models      []stream.ModelInfo   `json:"models"`
	// Trace advertises that the server understands traced ('dcT2')
	// request frames. A manifest from an older server decodes with
	// Trace == false, keeping a newer client on plain frames.
	Trace bool `json:"trace,omitempty"`
	// Mux advertises that the server understands multiplexed ('dcT3')
	// request frames, serves OpVideos, and may answer any request with
	// StatusRetryAfter. A manifest from an older server decodes with
	// Mux == false, keeping a newer client on classic framing and
	// treating every rejection as terminal.
	Mux bool `json:"mux,omitempty"`
	// Backbone advertises the model stream: the video's models ship as
	// one shared backbone (served by OpBackbone) plus per-cluster deltas
	// (OpModelDelta) for every model entry flagged Delta. It doubles as
	// the capability switch — a manifest from an older server (or a video
	// prepared without delta encoding) decodes with Backbone == nil and
	// the client fetches every model complete via OpModel, exactly as
	// before.
	Backbone *stream.BackboneInfo `json:"backbone,omitempty"`
}

// Manifest converts the wire form back to a stream.Manifest.
func (wm *WireManifest) Manifest() *stream.Manifest {
	m := &stream.Manifest{Models: make(map[int]stream.ModelInfo, len(wm.Models)), Backbone: wm.Backbone}
	m.Segments = append(m.Segments, wm.Segments...)
	for _, mi := range wm.Models {
		m.Models[mi.Label] = mi
	}
	return m
}

// EncodeWireManifest serializes a manifest for OpManifest responses.
func EncodeWireManifest(fps int, micro edsr.Config, m *stream.Manifest) ([]byte, error) {
	wm := WireManifest{FPS: fps, MicroConfig: micro, Segments: m.Segments, Trace: true, Mux: true, Backbone: m.Backbone}
	for _, l := range m.ModelLabels() {
		wm.Models = append(wm.Models, m.Models[l])
	}
	return json.Marshal(wm)
}

// DecodeWireManifest parses an OpManifest payload. Duplicate segment
// indices or duplicate model labels are rejected here at the trust
// boundary: Manifest() keys models by label, so a duplicate would
// silently shadow an earlier entry and the client would enhance with the
// wrong weights.
func DecodeWireManifest(data []byte) (*WireManifest, error) {
	var wm WireManifest
	if err := json.Unmarshal(data, &wm); err != nil {
		return nil, fmt.Errorf("transport: bad manifest payload: %w", err)
	}
	seenSeg := make(map[int]bool, len(wm.Segments))
	for _, s := range wm.Segments {
		if seenSeg[s.Index] {
			return nil, fmt.Errorf("transport: manifest repeats segment index %d", s.Index)
		}
		seenSeg[s.Index] = true
	}
	seenModel := make(map[int]bool, len(wm.Models))
	for _, mi := range wm.Models {
		if seenModel[mi.Label] {
			return nil, fmt.Errorf("transport: manifest repeats model label %d", mi.Label)
		}
		seenModel[mi.Label] = true
	}
	return &wm, nil
}

// WireVideo is one hosted video's entry in the OpVideos directory:
// enough for a client to pick a video (by digest or position) and to
// budget the session before fetching the full manifest.
type WireVideo struct {
	// ID is the video's routing handle for mux frames; ID 0 is the
	// server's default video, the one classic clients get.
	ID uint32 `json:"id"`
	// Digest is the hex SHA-256 content digest of the prepared video
	// (segment payloads plus model payloads), the stable name a client
	// selects by.
	Digest     string `json:"digest"`
	FPS        int    `json:"fps"`
	Segments   int    `json:"segments"`
	Models     int    `json:"models"`
	VideoBytes int64  `json:"video_bytes"`
	ModelBytes int64  `json:"model_bytes"`
}

// WireDirectory is the JSON document served for OpVideos: every video the
// server hosts, in registration order (so Videos[0] is the default).
type WireDirectory struct {
	Videos []WireVideo `json:"videos"`
}

// EncodeWireDirectory serializes a directory for OpVideos responses.
func EncodeWireDirectory(d *WireDirectory) ([]byte, error) {
	return json.Marshal(d)
}

// DecodeWireDirectory parses an OpVideos payload.
func DecodeWireDirectory(data []byte) (*WireDirectory, error) {
	var d WireDirectory
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("transport: bad directory payload: %w", err)
	}
	return &d, nil
}

// retryAfterPayload encodes an admission backoff hint as the 4-byte
// big-endian millisecond payload of a StatusRetryAfter response. Hints
// round up to a whole millisecond so a nonzero hint never encodes to
// zero, and saturate at ~49 days.
func retryAfterPayload(d time.Duration) []byte {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 0 {
		ms = 0
	}
	if ms > 0xFFFFFFFF {
		ms = 0xFFFFFFFF
	}
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(ms))
	return buf[:]
}

// parseRetryAfter decodes a StatusRetryAfter payload; a malformed or
// absent payload yields zero, which clients treat as "no hint".
func parseRetryAfter(payload []byte) time.Duration {
	if len(payload) != 4 {
		return 0
	}
	return time.Duration(binary.BigEndian.Uint32(payload)) * time.Millisecond
}

// writeRequest frames a plain 'dcT1' request: magic, opcode byte, uint32
// argument.
func writeRequest(w io.Writer, op byte, arg uint32) error {
	var buf [reqFrameBytes]byte
	copy(buf[:4], protoMagic[:])
	buf[4] = op
	binary.BigEndian.PutUint32(buf[5:], arg)
	_, err := w.Write(buf[:])
	return err
}

// writeRequestTraced frames a traced 'dcT2' request carrying tc. The
// whole frame goes out in one Write so the fault layer treats it as one
// request.
func writeRequestTraced(w io.Writer, op byte, arg uint32, tc TraceContext) error {
	var buf [tracedReqFrameBytes]byte
	copy(buf[:4], tracedMagic[:])
	buf[4] = op
	binary.BigEndian.PutUint32(buf[5:], arg)
	binary.BigEndian.PutUint64(buf[9:], tc.TraceID)
	binary.BigEndian.PutUint64(buf[17:], tc.SpanID)
	buf[25] = tc.Attempt
	_, err := w.Write(buf[:])
	return err
}

// writeRequestMux frames a multiplexed 'dcT3' request routed to video,
// tagged with the client-chosen request ID that the server echoes back.
// The whole frame goes out in one Write so the fault layer treats it as
// one request.
func writeRequestMux(w io.Writer, op byte, arg, video, id uint32, tc TraceContext) error {
	var buf [muxReqFrameBytes]byte
	copy(buf[:4], muxMagic[:])
	buf[4] = op
	binary.BigEndian.PutUint32(buf[5:], arg)
	binary.BigEndian.PutUint32(buf[9:], video)
	binary.BigEndian.PutUint32(buf[13:], id)
	binary.BigEndian.PutUint64(buf[17:], tc.TraceID)
	binary.BigEndian.PutUint64(buf[25:], tc.SpanID)
	buf[33] = tc.Attempt
	_, err := w.Write(buf[:])
	return err
}

// wireRequest is one parsed request frame of any protocol generation.
// Video, ID and Mux are meaningful only for 'dcT3' frames; a classic
// frame parses with Mux false and video/ID zero, which routes it to the
// default video.
type wireRequest struct {
	Op    byte
	Arg   uint32
	Video uint32
	ID    uint32
	Mux   bool
	TC    TraceContext
}

// readRequest parses a plain, traced or multiplexed request frame; a
// plain frame (and a traced frame with trace ID zero) yields the zero
// TraceContext. io.EOF is returned as-is so servers can treat a clean
// close between requests as normal termination; a connection cut
// mid-frame — including inside the trace-context or mux bytes —
// surfaces as a wrapped io.ErrUnexpectedEOF, the ordinary
// broken-connection path.
func readRequest(r io.Reader) (wireRequest, error) {
	var req wireRequest
	var buf [muxReqFrameBytes]byte
	if _, err := io.ReadFull(r, buf[:reqFrameBytes]); err != nil {
		if errors.Is(err, io.EOF) {
			return req, io.EOF
		}
		return req, fmt.Errorf("transport: reading request: %w", err)
	}
	switch [4]byte(buf[:4]) {
	case protoMagic:
		req.Op = buf[4]
		req.Arg = binary.BigEndian.Uint32(buf[5:])
	case tracedMagic:
		if _, err := io.ReadFull(r, buf[reqFrameBytes:tracedReqFrameBytes]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return req, fmt.Errorf("transport: reading trace context: %w", err)
		}
		req.Op = buf[4]
		req.Arg = binary.BigEndian.Uint32(buf[5:])
		req.TC.TraceID = binary.BigEndian.Uint64(buf[9:])
		req.TC.SpanID = binary.BigEndian.Uint64(buf[17:])
		req.TC.Attempt = buf[25]
	case muxMagic:
		if _, err := io.ReadFull(r, buf[reqFrameBytes:muxReqFrameBytes]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return req, fmt.Errorf("transport: reading mux frame: %w", err)
		}
		req.Mux = true
		req.Op = buf[4]
		req.Arg = binary.BigEndian.Uint32(buf[5:])
		req.Video = binary.BigEndian.Uint32(buf[9:])
		req.ID = binary.BigEndian.Uint32(buf[13:])
		req.TC.TraceID = binary.BigEndian.Uint64(buf[17:])
		req.TC.SpanID = binary.BigEndian.Uint64(buf[25:])
		req.TC.Attempt = buf[33]
	default:
		return req, fmt.Errorf("transport: bad request magic %x", buf[:4])
	}
	return req, nil
}

// writeResponse frames a response: status byte + uint32 length + payload.
func writeResponse(w io.Writer, status byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponse parses a response frame, enforcing the payload bound.
func readResponse(r io.Reader) (status byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("transport: reading response header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("transport: response of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: reading response payload: %w", err)
	}
	return hdr[0], payload, nil
}

// writeResponseMux frames a multiplexed response: the echoed request ID,
// status byte, uint32 length, then the payload. The 9-byte header goes
// out in one Write.
func writeResponseMux(w io.Writer, id uint32, status byte, payload []byte) error {
	var hdr [muxRespFrameBytes]byte
	binary.BigEndian.PutUint32(hdr[:4], id)
	hdr[4] = status
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponseMux parses a multiplexed response frame, enforcing the
// payload bound.
func readResponseMux(r io.Reader) (id uint32, status byte, payload []byte, err error) {
	var hdr [muxRespFrameBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("transport: reading mux response header: %w", err)
	}
	id = binary.BigEndian.Uint32(hdr[:4])
	n := binary.BigEndian.Uint32(hdr[5:])
	if n > maxPayload {
		return 0, 0, nil, fmt.Errorf("transport: response of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("transport: reading mux response payload: %w", err)
	}
	return id, hdr[4], payload, nil
}
