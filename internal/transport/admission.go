package transport

import (
	"sync"
	"time"
)

// AdmissionConfig bounds what a Server will accept before it starts
// shedding load with StatusRetryAfter. The zero value admits everything —
// every limit is opt-in — so existing single-video deployments are
// unchanged until an operator sets a budget. docs/SERVING.md walks
// through tuning these knobs from measured swarm numbers.
type AdmissionConfig struct {
	// MaxInflight caps requests being served concurrently across all
	// connections; 0 means unlimited. This is the server's global
	// concurrency budget — the knob behind dcsr-serve -max-inflight.
	MaxInflight int
	// MaxPerConn caps requests in flight on one connection (only a
	// pipelining 'dcT3' client can exceed 1); 0 means unlimited. This is
	// the fairness knob: a greedy client that pipelines hundreds of
	// requests is clipped to MaxPerConn slots while modest clients keep
	// being admitted.
	MaxPerConn int
	// MaxConns caps concurrent connections; 0 means unlimited. A
	// connection over the cap is still accepted, but its first request is
	// answered with StatusRetryAfter and the connection is closed — a
	// typed rejection, not a silent RST. The knob behind dcsr-serve
	// -max-clients.
	MaxConns int
	// OpLimits caps concurrency per opcode (e.g. bound expensive OpModel
	// fetches tighter than manifest chatter); absent or zero entries mean
	// unlimited.
	OpLimits map[byte]int
	// PerConnRate refills each connection's token bucket at this many
	// requests per second; 0 disables rate limiting. Each request costs
	// one token; an empty bucket sheds with a hint telling the client
	// exactly how long until the next token.
	PerConnRate float64
	// PerConnBurst is the bucket capacity (and initial fill); it defaults
	// to max(1, PerConnRate) when 0 and PerConnRate is set.
	PerConnBurst float64
	// RetryAfter is the backoff hint carried by concurrency-limit sheds
	// (rate-limit sheds compute their own from the refill rate). Defaults
	// to 50ms.
	RetryAfter time.Duration
}

// withDefaults fills the derived defaults documented on the fields.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.PerConnBurst <= 0 && c.PerConnRate > 0 {
		c.PerConnBurst = c.PerConnRate
		if c.PerConnBurst < 1 {
			c.PerConnBurst = 1
		}
	}
	return c
}

// limited reports whether any request-level limit is configured (MaxConns
// is enforced at accept time, not per request).
func (c AdmissionConfig) limited() bool {
	return c.MaxInflight > 0 || c.MaxPerConn > 0 || c.PerConnRate > 0 || len(c.OpLimits) > 0
}

// admission is the server-wide admission state: global and per-op
// inflight counts shared by every connection's gate.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	peak     int
	perOp    map[byte]int
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg.withDefaults(), perOp: make(map[byte]int)}
}

// gate returns the per-connection admission gate. now is the token
// bucket's clock (a test seam; nil means time.Now).
func (a *admission) gate(now func() time.Time) *connGate {
	if now == nil {
		now = time.Now
	}
	g := &connGate{adm: a, now: now, tokens: a.cfg.PerConnBurst}
	g.last = now()
	return g
}

// connGate is one connection's view of admission: its token bucket and
// inflight count, backed by the shared admission state.
type connGate struct {
	adm *admission
	now func() time.Time

	mu       sync.Mutex
	inflight int
	peak     int
	tokens   float64
	last     time.Time
}

// admit decides one request. When admitted it returns a release function
// that must be called exactly once when the request finishes; when shed
// it returns the backoff hint to send with StatusRetryAfter. The lock
// order is gate before shared state, consistently, and release re-takes
// them in the same order.
func (g *connGate) admit(op byte) (release func(), hint time.Duration, ok bool) {
	a := g.adm
	if !a.cfg.limited() {
		return func() {}, 0, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if a.cfg.MaxPerConn > 0 && g.inflight >= a.cfg.MaxPerConn {
		return nil, a.cfg.RetryAfter, false
	}
	if a.cfg.PerConnRate > 0 {
		now := g.now()
		g.tokens += now.Sub(g.last).Seconds() * a.cfg.PerConnRate
		g.last = now
		if g.tokens > a.cfg.PerConnBurst {
			g.tokens = a.cfg.PerConnBurst
		}
		if g.tokens < 1 {
			// Tell the client exactly how long until the bucket holds a
			// whole token again.
			wait := time.Duration((1 - g.tokens) / a.cfg.PerConnRate * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			return nil, wait, false
		}
	}
	a.mu.Lock()
	if a.cfg.MaxInflight > 0 && a.inflight >= a.cfg.MaxInflight {
		a.mu.Unlock()
		return nil, a.cfg.RetryAfter, false
	}
	if lim := a.cfg.OpLimits[op]; lim > 0 && a.perOp[op] >= lim {
		a.mu.Unlock()
		return nil, a.cfg.RetryAfter, false
	}
	a.inflight++
	if a.inflight > a.peak {
		a.peak = a.inflight
	}
	a.perOp[op]++
	a.mu.Unlock()
	if a.cfg.PerConnRate > 0 {
		g.tokens--
	}
	g.inflight++
	if g.inflight > g.peak {
		g.peak = g.inflight
	}
	return func() {
		g.mu.Lock()
		g.inflight--
		g.mu.Unlock()
		a.mu.Lock()
		a.inflight--
		a.perOp[op]--
		a.mu.Unlock()
	}, 0, true
}

// snapshot returns the current and peak global inflight counts, for the
// transport_inflight / transport_inflight_peak gauges.
func (a *admission) snapshot() (inflight, peak int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, a.peak
}
