package transport

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/quality"
	"dcsr/internal/splitter"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// preparedFixture builds a small prepared stream once per test binary.
var fixture struct {
	prep   *core.Prepared
	frames []*video.YUV
}

func getFixture(t testing.TB) (*core.Prepared, []*video.YUV) {
	t.Helper()
	if fixture.prep == nil {
		clip := video.Generate(video.GenConfig{
			W: 80, H: 48, Seed: 23, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
		})
		frames := clip.YUVFrames()
		prep, err := core.Prepare(frames, clip.FPS, core.ServerConfig{
			QP:          51,
			Split:       splitter.Config{Threshold: 14, MinLen: 3},
			VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
			VAETrain:    vae.TrainOptions{Epochs: 10, BatchSize: 4},
			MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
			Train:       edsr.TrainOptions{Steps: 60, BatchSize: 2, PatchSize: 16},
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fixture.prep = prep
		fixture.frames = frames
	}
	return fixture.prep, fixture.frames
}

func TestRequestResponseFraming(t *testing.T) {
	var buf strings.Builder
	if err := writeRequest(&buf, OpSegment, 42); err != nil {
		t.Fatal(err)
	}
	req, err := readRequest(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpSegment || req.Arg != 42 {
		t.Fatalf("round trip gave op=%d arg=%d", req.Op, req.Arg)
	}
	if req.TC != (TraceContext{}) {
		t.Fatalf("plain frame parsed with trace context %+v", req.TC)
	}
	if req.Mux || req.Video != 0 || req.ID != 0 {
		t.Fatalf("plain frame parsed with mux fields %+v", req)
	}
	if _, err := readRequest(strings.NewReader("XXXXYYYYY")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := readRequest(strings.NewReader("")); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

func TestResponsePayloadBound(t *testing.T) {
	// A response header claiming a gigantic payload must be rejected
	// before allocation.
	var b strings.Builder
	b.WriteByte(StatusOK)
	b.WriteString("\xff\xff\xff\xff")
	if _, _, err := readResponse(strings.NewReader(b.String())); err == nil {
		t.Fatal("oversized response accepted")
	}
}

func TestServeOverPipe(t *testing.T) {
	prep, frames := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()

	client := NewClient(cconn)
	wm, err := client.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(wm.Segments) != len(prep.Segments) {
		t.Fatalf("manifest has %d segments, want %d", len(wm.Segments), len(prep.Segments))
	}
	if wm.MicroConfig != prep.MicroConfig {
		t.Fatalf("manifest micro config %v, want %v", wm.MicroConfig, prep.MicroConfig)
	}
	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames) {
		t.Fatalf("streamed %d frames, want %d", len(out), len(frames))
	}
	if stats.ModelDownloads != len(prep.Models) {
		t.Errorf("downloaded %d models, want %d", stats.ModelDownloads, len(prep.Models))
	}
	if stats.ModelDownloads+stats.CacheHits != len(prep.Segments) {
		t.Errorf("downloads %d + hits %d != segments %d", stats.ModelDownloads, stats.CacheHits, len(prep.Segments))
	}
	if stats.Enhanced == 0 {
		t.Error("no I frames enhanced during streamed playback")
	}
	// Streamed+enhanced playback must match in-process playback quality.
	local, err := core.NewPlayer(prep).Play()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if quality.PSNRYUV(local.Frames[i], out[i]) < 99 { // identical decode paths
			// Allow exact comparison failure to be diagnosed.
			if psnr := quality.PSNRYUV(local.Frames[i], out[i]); psnr < 45 {
				t.Fatalf("frame %d: streamed decode differs from local (%.1f dB)", i, psnr)
			}
		}
	}
}

func TestServeOverTCP(t *testing.T) {
	prep, frames := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	client, conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out, _, err := client.Play(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames) {
		t.Fatalf("streamed %d frames, want %d", len(out), len(frames))
	}
	if client.BytesDown <= prep.Manifest.TotalVideoBytes() {
		t.Errorf("accounted %d bytes down, expected more than raw video %d",
			client.BytesDown, prep.Manifest.TotalVideoBytes())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestConcurrentClients(t *testing.T) {
	prep, frames := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			client, conn, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			out, _, err := client.Play(true)
			if err == nil && len(out) != len(frames) {
				err = io.ErrUnexpectedEOF
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestNotFoundResponses(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)
	if _, err := client.Segment(9999); err == nil {
		t.Error("out-of-range segment accepted")
	}
	if _, _, err := client.Model(9999, prep.MicroConfig); err == nil {
		t.Error("unknown model accepted")
	}
	// The connection must remain usable after NotFound responses.
	if _, err := client.Manifest(); err != nil {
		t.Fatalf("connection dead after NotFound: %v", err)
	}
}

func TestThrottledConnRate(t *testing.T) {
	// Reading 32 KiB at 64 KiB/s (burst 16 KiB) should request roughly
	// 250 ms of sleep. Use an instrumented sleeper to keep the test fast.
	payload := make([]byte, 32<<10)
	var slept time.Duration
	base := time.Now()
	now := base
	tc := NewThrottledConn(readWriter{strings.NewReader(string(payload))}, 64<<10)
	tc.sleeper = func(d time.Duration) {
		slept += d
		now = now.Add(d) // sleeping lets the bucket refill
	}
	tc.clock = func() time.Time { return now }
	tc.last = base
	buf := make([]byte, 4096)
	for {
		if _, err := tc.Read(buf); err != nil {
			break
		}
	}
	if slept < 150*time.Millisecond || slept > 600*time.Millisecond {
		t.Fatalf("throttle slept %v for 32KiB at 64KiB/s; want ≈250ms", slept)
	}
}

func TestThrottledConnSetRate(t *testing.T) {
	tc := NewThrottledConn(readWriter{strings.NewReader(strings.Repeat("x", 8192))}, 1024)
	var slept time.Duration
	tc.sleeper = func(d time.Duration) { slept += d }
	base := time.Now()
	tc.clock = func() time.Time { return base }
	tc.last = base
	tc.SetRate(1 << 20) // fast link: nearly no sleeping
	buf := make([]byte, 8192)
	for {
		if _, err := tc.Read(buf); err != nil {
			break
		}
	}
	if slept > 50*time.Millisecond {
		t.Fatalf("fast link slept %v", slept)
	}
}

// readWriter adapts a Reader for the ReadWriter-based APIs.
type readWriter struct{ io.Reader }

func (readWriter) Write(p []byte) (int, error) { return len(p), nil }
