package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dcsr/internal/edsr"
	"dcsr/internal/nn"
	"dcsr/internal/obs"
	"dcsr/internal/stream"
)

// MuxClient multiplexes many concurrent requests over one connection
// using 'dcT3' framing: requests are pipelined (written as they arrive,
// tagged with unique IDs) and responses are matched back by ID, so N
// goroutines share one TCP connection instead of opening N. It is safe
// for concurrent use — the concurrency contract is the whole point.
//
// Construction dials through the given dial function and performs a
// classic-framing manifest probe to negotiate capability; a server that
// does not advertise WireManifest.Mux is rejected with ErrNoMux (use the
// sequential Client against old servers). The same probe runs again on
// every reconnect.
//
// Failure semantics follow the sequential Client: transport errors mark
// the connection broken, and the next request redials; StatusRetryAfter
// sheds are retried with the server's hint as a backoff floor; other
// non-OK statuses are returned immediately as deterministic rejections.
// A request timeout does NOT break the connection — the late response is
// discarded by ID when it eventually arrives — which is what makes
// per-request deadlines cheap under pipelining.
type MuxClient struct {
	// Retry configures per-request deadlines, retry/backoff and the shed
	// budget, exactly as on Client.
	Retry RetryPolicy
	// Log receives request failures and reconnect lines; nil discards.
	Log *obs.Logger
	// Obs records the transport_client_* metric surface (requests, bytes
	// up/down, rtt + windowed rtt, retries, timeouts, reconnects, shed);
	// nil disables metrics.
	Obs *obs.Obs

	dial func() (io.ReadWriter, error)

	// dialMu serializes reconnects so a burst of concurrent failures
	// produces one fresh connection, not one per waiter.
	dialMu sync.Mutex

	mu     sync.Mutex
	cur    *muxConn
	wm     *WireManifest
	nextID uint32
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	// bbMu guards backbones, the per-video cache of verified backbone
	// payloads ModelData assembles delta-shipped models from. Holding it
	// across the fetch means N concurrent sessions of one video pay for
	// exactly one OpBackbone download.
	bbMu      sync.Mutex
	backbones map[uint32][]byte

	stats struct {
		sync.Mutex
		retries, timeouts, reconnects, sheds int
		bytesUp, bytesDown                   int64
	}
}

// ErrNoMux reports a server that answered the negotiation probe without
// advertising mux support.
var ErrNoMux = errors.New("transport: server does not support multiplexing")

// muxConn is one live multiplexed connection: the wire, a write lock
// serializing frames, and the pending table the reader goroutine resolves
// responses against. A muxConn is abandoned (never repaired) on the first
// transport error; MuxClient dials a fresh one.
type muxConn struct {
	rw  io.ReadWriter
	wmu sync.Mutex

	pmu     sync.Mutex
	pending map[uint32]chan muxResult
	dead    bool
	done    chan struct{}
}

type muxResult struct {
	status  byte
	payload []byte
	err     error
}

// register adds a pending entry; it fails if the reader has already
// exited, so no request can wait on a connection nobody is reading.
func (mc *muxConn) register(id uint32, ch chan muxResult) error {
	mc.pmu.Lock()
	defer mc.pmu.Unlock()
	if mc.dead {
		return errors.New("transport: mux connection is down")
	}
	mc.pending[id] = ch
	return nil
}

// unregister abandons a pending entry (timeout / cancellation); a late
// response for it is discarded by the reader.
func (mc *muxConn) unregister(id uint32) {
	mc.pmu.Lock()
	delete(mc.pending, id)
	mc.pmu.Unlock()
}

// deliver hands one response to its waiter; unmatched IDs (abandoned by
// timeout) are dropped on the floor.
func (mc *muxConn) deliver(id uint32, status byte, payload []byte) {
	mc.pmu.Lock()
	ch, ok := mc.pending[id]
	delete(mc.pending, id)
	mc.pmu.Unlock()
	if ok {
		ch <- muxResult{status: status, payload: payload} // buffered, never blocks
	}
}

// fail marks the connection dead and errors out every waiter.
func (mc *muxConn) fail(err error) {
	mc.pmu.Lock()
	mc.dead = true
	for id, ch := range mc.pending {
		delete(mc.pending, id)
		ch <- muxResult{err: err} // buffered, never blocks
	}
	mc.pmu.Unlock()
}

// DialMux establishes a multiplexed client through dial, which is kept
// for reconnects (like Client.Redial, but mandatory — a mux client that
// cannot redial would strand every pipelined request on the first
// fault). The returned client has already negotiated: its WireManifest
// is available via Manifest.
func DialMux(dial func() (io.ReadWriter, error)) (*MuxClient, error) {
	m := &MuxClient{dial: dial}
	if _, err := m.connect(); err != nil {
		return nil, err
	}
	return m, nil
}

// Manifest returns the default video's manifest captured by the most
// recent negotiation probe.
func (m *MuxClient) Manifest() *WireManifest {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wm
}

// Close tears down the current connection; in-flight requests fail and
// later requests return net.ErrClosed-style errors rather than redialing.
func (m *MuxClient) Close() error {
	m.mu.Lock()
	mc := m.cur
	m.cur = nil
	m.closed = true
	m.mu.Unlock()
	if mc == nil {
		return nil
	}
	var err error
	if cl, ok := mc.rw.(io.Closer); ok {
		err = cl.Close()
	}
	return err
}

// connect dials a fresh connection, runs the classic-framing negotiation
// probe, and on success installs the connection with its reader
// goroutine. Callers must NOT hold m.mu.
func (m *MuxClient) connect() (*muxConn, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("transport: mux client is closed")
	}
	m.mu.Unlock()
	rw, err := m.dial()
	if err != nil {
		return nil, fmt.Errorf("transport: mux dial: %w", err)
	}
	closeIt := func() {
		if cl, ok := rw.(io.Closer); ok {
			//lint:allow errcheck the probe already failed; closing the unusable conn is best-effort cleanup
			cl.Close()
		}
	}
	// The probe is one classic sequential exchange, legal because nothing
	// else can be outstanding on a brand-new connection. It both checks
	// liveness and fetches the capability bits.
	if err := writeRequest(rw, OpManifest, 0); err != nil {
		closeIt()
		return nil, fmt.Errorf("transport: mux probe: %w", err)
	}
	status, payload, err := readResponse(rw)
	if err != nil {
		closeIt()
		return nil, fmt.Errorf("transport: mux probe: %w", err)
	}
	m.addBytes(reqFrameBytes, int64(respFrameBytes+len(payload)))
	if status != StatusOK {
		closeIt()
		return nil, fmt.Errorf("transport: mux probe: manifest status %d", status)
	}
	wm, err := DecodeWireManifest(payload)
	if err != nil {
		closeIt()
		return nil, err
	}
	if !wm.Mux {
		closeIt()
		return nil, ErrNoMux
	}
	mc := &muxConn{rw: rw, pending: make(map[uint32]chan muxResult), done: make(chan struct{})}
	go func() {
		defer close(mc.done)
		for {
			id, status, payload, err := readResponseMux(rw)
			if err != nil {
				mc.fail(err)
				return
			}
			mc.deliver(id, status, payload)
		}
	}()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		closeIt()
		<-mc.done
		return nil, errors.New("transport: mux client is closed")
	}
	m.cur = mc
	m.wm = wm
	m.mu.Unlock()
	return mc, nil
}

// conn returns the live connection, dialing one if the current one is
// gone. stale names the connection the caller just watched die, so
// concurrent failures retire it once and then pile onto the single
// reconnect behind dialMu.
func (m *MuxClient) conn(stale *muxConn) (*muxConn, error) {
	m.mu.Lock()
	mc := m.cur
	if mc != nil && mc != stale {
		m.mu.Unlock()
		return mc, nil
	}
	if mc == stale && mc != nil {
		m.cur = nil
		if cl, ok := mc.rw.(io.Closer); ok {
			//lint:allow errcheck the conn is already known broken; closing is best-effort unwinding before redial
			cl.Close()
		}
	}
	m.mu.Unlock()
	m.dialMu.Lock()
	defer m.dialMu.Unlock()
	// Another waiter may have finished the reconnect while this one
	// queued on dialMu.
	m.mu.Lock()
	if m.cur != nil {
		mc := m.cur
		m.mu.Unlock()
		return mc, nil
	}
	m.mu.Unlock()
	fresh, err := m.connect()
	if err != nil {
		return nil, err
	}
	m.stats.Lock()
	m.stats.reconnects++
	m.stats.Unlock()
	m.Obs.Counter("transport_client_reconnects_total").Inc()
	m.Log.Info("transport: mux reconnected")
	return fresh, nil
}

func (m *MuxClient) addBytes(up, down int64) {
	m.stats.Lock()
	m.stats.bytesUp += up
	m.stats.bytesDown += down
	m.stats.Unlock()
	m.Obs.Counter("transport_client_bytes_up_total").Add(up)
	m.Obs.Counter("transport_client_bytes_down_total").Add(down)
}

// backoff draws one jittered backoff under the rng lock (the shared PRNG
// is the only retry state concurrent requests contend on).
func (m *MuxClient) backoff(pol RetryPolicy, attempt int) time.Duration {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(m.Retry.Seed))
	}
	return pol.backoff(attempt, m.rng)
}

// exchange performs one pipelined request/response on the current
// connection. Timeouts abandon the pending entry without killing the
// connection; transport errors return the dead muxConn so the retry
// layer can route its reconnect.
func (m *MuxClient) exchange(ctx context.Context, op byte, arg, video uint32, timeout time.Duration, stale *muxConn) ([]byte, *muxConn, error) {
	mc, err := m.conn(stale)
	if err != nil {
		return nil, stale, err
	}
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	ch := make(chan muxResult, 1)
	if err := mc.register(id, ch); err != nil {
		return nil, mc, err
	}
	mc.wmu.Lock()
	err = writeRequestMux(mc.rw, op, arg, video, id, TraceContext{})
	mc.wmu.Unlock()
	if err != nil {
		mc.unregister(id)
		return nil, mc, err
	}
	m.addBytes(muxReqFrameBytes, 0)
	m.Obs.Counter("transport_client_requests_total").Inc()
	var t0 time.Time
	if m.Obs != nil {
		t0 = time.Now()
	}
	var timer *time.Timer
	var expire <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, mc, res.err
		}
		m.addBytes(0, muxRespFrameBytes+int64(len(res.payload)))
		if m.Obs != nil {
			rtt := time.Since(t0).Seconds()
			m.Obs.Histogram("transport_client_rtt_seconds").Observe(rtt)
			m.Obs.WindowedHistogram("transport_client_rtt_window_seconds").Observe(rtt)
		}
		if res.status == StatusOK {
			return res.payload, mc, nil
		}
		se := &statusError{op: op, arg: arg, status: res.status}
		if res.status == StatusRetryAfter {
			se.hint = parseRetryAfter(res.payload)
		}
		return nil, mc, se
	case <-ctx.Done():
		mc.unregister(id)
		return nil, mc, ctx.Err()
	case <-expire:
		mc.unregister(id)
		m.stats.Lock()
		m.stats.timeouts++
		m.stats.Unlock()
		m.Obs.Counter("transport_client_timeouts_total").Inc()
		// The connection itself is fine — the response will be discarded
		// by ID — so this is NOT routed through reconnect.
		return nil, mc, errTimeout
	}
}

// errTimeout is the mux client's per-request deadline expiry. It
// satisfies the retryable-transport-failure classification without
// poisoning the connection.
var errTimeout = errors.New("transport: request timed out")

// Do performs one request against the given video through the full retry
// state machine — the MuxClient counterpart of the sequential client's
// roundTrip. It is safe to call from any number of goroutines.
func (m *MuxClient) Do(ctx context.Context, op byte, arg, video uint32) ([]byte, error) {
	pol := m.Retry.withDefaults()
	var lastErr error
	var stale *muxConn
	fails, sheds := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		timeout := pol.Timeout
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); timeout == 0 || rem < timeout {
				timeout = rem
			}
		}
		payload, mc, err := m.exchange(ctx, op, arg, video, timeout, stale)
		if err == nil {
			return payload, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var se *statusError
		if errors.As(err, &se) {
			if se.status != StatusRetryAfter {
				return nil, err // deterministic rejection; never retried
			}
			m.stats.Lock()
			m.stats.sheds++
			m.stats.Unlock()
			m.Obs.Counter("transport_client_shed_total").Inc()
			if sheds >= pol.shedBudget() {
				return nil, err
			}
			d := m.backoff(pol, sheds)
			if d < se.hint {
				d = se.hint
			}
			sheds++
			m.Log.Warn("transport: mux request shed by server", "op", opName(op),
				"hint", se.hint, "backoff", d)
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			continue
		}
		lastErr = err
		if !errors.Is(err, errTimeout) {
			// Transport failure: this conn is done; route the retry
			// through a reconnect.
			stale = mc
		}
		if fails >= pol.MaxRetries {
			return nil, lastErr
		}
		m.stats.Lock()
		m.stats.retries++
		m.stats.Unlock()
		m.Obs.Counter("transport_client_retries_total").Inc()
		d := m.backoff(pol, fails)
		fails++
		m.Log.Warn("transport: retrying mux request", "op", opName(op), "arg", arg,
			"attempt", fails, "backoff", d, "err", lastErr)
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
	}
}

// ModelData fetches micro model label of the given video through the
// model stream when wm (that video's manifest) advertises a backbone:
// delta-shipped labels download their dcW5 delta (the video's backbone is
// fetched and verified at most once per client, shared by every
// concurrent session), assemble against the backbone, and verify the
// result against the manifest's full-payload digest before arming it.
// Everything else — non-delta labels, manifests without a backbone, and
// any assembly failure (modelstream_fallback_total) — takes the complete
// OpModel fetch every server answers. The returned int is the wire bytes
// this call downloaded (a delta label's first fetch also pays the
// backbone).
func (m *MuxClient) ModelData(ctx context.Context, video uint32, wm *WireManifest, label int, cfg edsr.Config) (*edsr.Model, int, error) {
	var mi stream.ModelInfo
	found := false
	if wm != nil && wm.Backbone != nil {
		for _, e := range wm.Models {
			if e.Label == label {
				mi, found = e, true
				break
			}
		}
	}
	if !found || (!mi.Delta && label != wm.Backbone.Label) {
		return m.fullModel(ctx, video, label, cfg)
	}
	model, wire, err := m.assembleModel(ctx, video, wm, label, cfg, mi)
	if err != nil {
		if ctx.Err() != nil {
			return nil, 0, err
		}
		m.Obs.Counter("modelstream_fallback_total").Inc()
		m.Log.Warn("transport: mux model assembly failed; falling back to full fetch",
			"model", label, "video", video, "err", err)
		return m.fullModel(ctx, video, label, cfg)
	}
	return model, wire, nil
}

// fullModel is the pre-model-stream path: complete weights via OpModel.
func (m *MuxClient) fullModel(ctx context.Context, video uint32, label int, cfg edsr.Config) (*edsr.Model, int, error) {
	data, err := m.Do(ctx, OpModel, uint32(label), video)
	if err != nil {
		return nil, 0, err
	}
	model, err := edsr.New(cfg, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := nn.LoadWeights(bytes.NewReader(data), model.Params()); err != nil {
		return nil, 0, fmt.Errorf("transport: model %d: %w", label, err)
	}
	return model, len(data), nil
}

// videoBackbone returns video's verified backbone payload and the wire
// bytes this call spent fetching it (zero on a cache hit).
func (m *MuxClient) videoBackbone(ctx context.Context, video uint32, wm *WireManifest) ([]byte, int, error) {
	m.bbMu.Lock()
	defer m.bbMu.Unlock()
	if bb, ok := m.backbones[video]; ok {
		return bb, 0, nil
	}
	data, err := m.Do(ctx, OpBackbone, 0, video)
	if err != nil {
		return nil, 0, err
	}
	if got := payloadDigest(data); got != wm.Backbone.Digest {
		return nil, 0, fmt.Errorf("transport: backbone digest %s, manifest says %s", got, wm.Backbone.Digest)
	}
	if m.backbones == nil {
		m.backbones = make(map[uint32][]byte)
	}
	m.backbones[video] = data
	m.Obs.Counter("modelstream_backbone_fetch_total").Inc()
	return data, len(data), nil
}

// assembleModel serves one model-stream label: the backbone's own label
// is the backbone payload itself; a delta label downloads its dcW5
// payload and reconstructs, verified end-to-end by digest.
func (m *MuxClient) assembleModel(ctx context.Context, video uint32, wm *WireManifest, label int, cfg edsr.Config, mi stream.ModelInfo) (*edsr.Model, int, error) {
	bb, bbWire, err := m.videoBackbone(ctx, video, wm)
	if err != nil {
		return nil, 0, err
	}
	base, err := edsr.New(cfg, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := nn.LoadWeights(bytes.NewReader(bb), base.Params()); err != nil {
		return nil, 0, fmt.Errorf("transport: backbone weights: %w", err)
	}
	if label == wm.Backbone.Label {
		return base, bbWire, nil
	}
	delta, err := m.Do(ctx, OpModelDelta, uint32(label), video)
	if err != nil {
		return nil, 0, err
	}
	model, err := edsr.New(cfg, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := nn.ApplyWeightsDelta(base.Params(), delta, model.Params()); err != nil {
		return nil, 0, fmt.Errorf("transport: model %d delta: %w", label, err)
	}
	if got := payloadDigest(nn.EncodeWeights(model.Params())); got != mi.Digest {
		return nil, 0, fmt.Errorf("transport: model %d assembled digest %s, manifest says %s", label, got, mi.Digest)
	}
	m.Obs.Counter("modelstream_delta_bytes_total").Add(int64(len(delta)))
	return model, bbWire + len(delta), nil
}

// MuxStats is a point-in-time snapshot of a MuxClient's accounting,
// mirroring the sequential Client's exported counter fields.
type MuxStats struct {
	Retries    int
	Timeouts   int
	Reconnects int
	Sheds      int
	BytesUp    int64
	BytesDown  int64
}

// Stats snapshots the client's counters.
func (m *MuxClient) Stats() MuxStats {
	m.stats.Lock()
	defer m.stats.Unlock()
	return MuxStats{
		Retries:    m.stats.retries,
		Timeouts:   m.stats.timeouts,
		Reconnects: m.stats.reconnects,
		Sheds:      m.stats.sheds,
		BytesUp:    m.stats.bytesUp,
		BytesDown:  m.stats.bytesDown,
	}
}

// sleepCtx blocks for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
