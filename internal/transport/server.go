package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/obs"
)

// Server serves one prepared dcSR stream to any number of concurrent
// clients. It is safe for concurrent use; all served state is immutable
// after construction.
type Server struct {
	manifest []byte
	segments [][]byte
	models   map[uint32][]byte

	// Log receives per-connection errors and debug lines; nil discards
	// them (the no-op default).
	Log *obs.Logger
	// Obs records transport_requests_total, transport_not_found_total,
	// transport_bytes_in/out_total, the per-message-type latency
	// histograms transport_{manifest,segment,model}_seconds, their
	// rolling-window twins transport_requests_window_total and
	// transport_{manifest,segment,model}_window_seconds, and the
	// transport_open_conns gauge. Traced ('dcT2') requests additionally
	// record one server span each into Obs.TraceBuf, retrievable by
	// trace ID via the debug sidecar's /debug/trace?id= endpoint. nil
	// disables all of it.
	Obs *obs.Obs

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer packages a prepared stream for serving: the manifest, every
// segment as an independently decodable sub-stream, and every micro model.
func NewServer(p *core.Prepared) (*Server, error) {
	man, err := EncodeWireManifest(p.FPS, p.MicroConfig, p.Manifest)
	if err != nil {
		return nil, err
	}
	s := &Server{
		manifest: man,
		models:   make(map[uint32][]byte),
		conns:    make(map[net.Conn]struct{}),
	}
	for i := range p.Segments {
		sub, err := p.SegmentStream(i)
		if err != nil {
			return nil, fmt.Errorf("transport: packaging segment %d: %w", i, err)
		}
		s.segments = append(s.segments, sub.Marshal())
	}
	for label, sm := range p.Models {
		if label < 0 {
			continue
		}
		s.models[uint32(label)] = sm.Bytes
	}
	return s, nil
}

// Serve accepts connections on l until Close is called. It always returns
// a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//lint:allow errcheck conn lost the accept-vs-Close race and was never served; the shutdown is already reported via net.ErrClosed
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.Obs.Gauge("transport_open_conns").Add(1)
		s.Log.Debug("transport: conn accepted", "remote", conn.RemoteAddr())
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				//lint:allow errcheck handler teardown: ServeConn already surfaced any read/write failure, and a close error on a drained conn is unactionable
				conn.Close()
				s.Obs.Gauge("transport_open_conns").Add(-1)
			}()
			if err := s.ServeConn(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Log.Error("transport: conn failed", "remote", conn.RemoteAddr(), "err", err)
			}
		}()
	}
}

// ServeConn answers requests on a single connection until it closes. It is
// exported so tests and in-process clients can use net.Pipe.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	reqCtr := s.Obs.Counter("transport_requests_total")
	nfCtr := s.Obs.Counter("transport_not_found_total")
	inCtr := s.Obs.Counter("transport_bytes_in_total")
	outCtr := s.Obs.Counter("transport_bytes_out_total")
	// Per-op latency histograms, resolved once per connection rather
	// than per request. Literal names keep the metric surface statically
	// pinned to docs/OPERATIONS.md; nil Obs yields nil no-op handles.
	opHists := map[byte]*obs.Histogram{
		OpManifest: s.Obs.Histogram("transport_manifest_seconds"),
		OpSegment:  s.Obs.Histogram("transport_segment_seconds"),
		OpModel:    s.Obs.Histogram("transport_model_seconds"),
	}
	unknownHist := s.Obs.Histogram("transport_unknown_seconds")
	wReqCtr := s.Obs.WindowedCounter("transport_requests_window_total")
	opWHists := map[byte]*obs.WindowedHistogram{
		OpManifest: s.Obs.WindowedHistogram("transport_manifest_window_seconds"),
		OpSegment:  s.Obs.WindowedHistogram("transport_segment_window_seconds"),
		OpModel:    s.Obs.WindowedHistogram("transport_model_window_seconds"),
	}
	for {
		op, arg, tc, err := readRequest(conn)
		if err != nil {
			return err
		}
		reqCtr.Inc()
		wReqCtr.Inc()
		inCtr.Add(tc.frameBytes())
		var t0 time.Time
		if s.Obs != nil {
			t0 = time.Now()
		}
		// A traced request gets a server-side span joined to the
		// client's trace, retained in the trace buffer for
		// /debug/trace?id= — this is what lets an operator attribute a
		// slow fetch to the serving side after the fact.
		var span *obs.Span
		if tc.TraceID != 0 && s.Obs != nil {
			span = obs.JoinSpan("server."+opName(op), tc.TraceID, tc.SpanID)
			span.Set("op", opName(op))
			span.Set("arg", arg)
			span.Set("attempt", int(tc.Attempt))
		}
		var payload []byte
		status := byte(StatusOK)
		switch op {
		case OpManifest:
			payload = s.manifest
		case OpSegment:
			if int(arg) >= len(s.segments) {
				status = StatusNotFound
			} else {
				payload = s.segments[arg]
			}
		case OpModel:
			data, ok := s.models[arg]
			if !ok {
				status = StatusNotFound
			} else {
				payload = data
			}
		default:
			status = StatusBadReq
		}
		if status != StatusOK {
			payload = nil
			if status == StatusNotFound {
				nfCtr.Inc()
			}
			s.Log.Warn("transport: request rejected", "op", opName(op), "arg", arg, "status", status)
		}
		err = writeResponse(conn, status, payload)
		if err != nil {
			if span != nil {
				span.Set("status", "write_failed")
				span.End()
				s.Obs.RecordTrace(span)
			}
			return err
		}
		outCtr.Add(respFrameBytes + int64(len(payload)))
		if span != nil {
			span.Set("status", int(status))
			span.Set("bytes_out", respFrameBytes+len(payload))
			span.End()
			s.Obs.RecordTrace(span)
		}
		if s.Obs != nil {
			elapsed := time.Since(t0).Seconds()
			h, ok := opHists[op]
			if !ok {
				h = unknownHist
			}
			h.Observe(elapsed)
			// Missing map entry (unknown op) yields a nil no-op handle.
			opWHists[op].Observe(elapsed)
		}
	}
}

// opName maps a protocol opcode to its stable metric-name component.
func opName(op byte) string {
	switch op {
	case OpManifest:
		return "manifest"
	case OpSegment:
		return "segment"
	case OpModel:
		return "model"
	default:
		return "unknown"
	}
}

// Shutdown stops the listener and waits for in-flight connections to
// finish on their own — the graceful counterpart to Close. If ctx
// expires first, the remaining connections are force-closed (Close's
// behaviour), the drain completes, and ctx's error is returned. A client
// that simply stays connected counts as in-flight, so callers should
// always pass a context with a deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			//lint:allow errcheck force-closing stragglers past the drain deadline; their goroutines report the resulting errors
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close stops the listener, closes active connections and waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		//lint:allow errcheck force-closing live conns to unblock handlers; their goroutines report the resulting errors, Close returns the listener's
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
