package transport

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"dcsr/internal/core"
)

// Server serves one prepared dcSR stream to any number of concurrent
// clients. It is safe for concurrent use; all served state is immutable
// after construction.
type Server struct {
	manifest []byte
	segments [][]byte
	models   map[uint32][]byte

	// ErrorLog receives per-connection errors; nil discards them.
	ErrorLog *log.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer packages a prepared stream for serving: the manifest, every
// segment as an independently decodable sub-stream, and every micro model.
func NewServer(p *core.Prepared) (*Server, error) {
	man, err := EncodeWireManifest(p.FPS, p.MicroConfig, p.Manifest)
	if err != nil {
		return nil, err
	}
	s := &Server{
		manifest: man,
		models:   make(map[uint32][]byte),
		conns:    make(map[net.Conn]struct{}),
	}
	for i := range p.Segments {
		sub, err := p.SegmentStream(i)
		if err != nil {
			return nil, fmt.Errorf("transport: packaging segment %d: %w", i, err)
		}
		s.segments = append(s.segments, sub.Marshal())
	}
	for label, sm := range p.Models {
		if label < 0 {
			continue
		}
		s.models[uint32(label)] = sm.Bytes
	}
	return s, nil
}

// Serve accepts connections on l until Close is called. It always returns
// a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			if err := s.ServeConn(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("transport: conn %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// ServeConn answers requests on a single connection until it closes. It is
// exported so tests and in-process clients can use net.Pipe.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	for {
		op, arg, err := readRequest(conn)
		if err != nil {
			return err
		}
		switch op {
		case OpManifest:
			err = writeResponse(conn, StatusOK, s.manifest)
		case OpSegment:
			if int(arg) >= len(s.segments) {
				err = writeResponse(conn, StatusNotFound, nil)
			} else {
				err = writeResponse(conn, StatusOK, s.segments[arg])
			}
		case OpModel:
			data, ok := s.models[arg]
			if !ok {
				err = writeResponse(conn, StatusNotFound, nil)
			} else {
				err = writeResponse(conn, StatusOK, data)
			}
		default:
			err = writeResponse(conn, StatusBadReq, nil)
		}
		if err != nil {
			return err
		}
	}
}

// Close stops the listener, closes active connections and waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}
