package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dcsr/internal/core"
	"dcsr/internal/modelstore"
	"dcsr/internal/obs"
)

// hostedVideo is one registered prepared stream: its encoded manifest,
// segment sub-streams, model payloads, and directory entry. All fields
// are immutable after registration.
type hostedVideo struct {
	manifest []byte
	segments [][]byte
	models   map[uint32][]byte
	// backbone and deltas serve the model stream: OpBackbone answers with
	// the shared backbone weights, OpModelDelta with a label's dcW5 delta.
	// Both are nil/empty for videos prepared without delta encoding — the
	// ops answer StatusNotFound and clients fetch full models via OpModel.
	backbone []byte
	deltas   map[uint32][]byte
	info     WireVideo
}

// Server serves any number of prepared dcSR streams to any number of
// concurrent clients, routed by content digest. It is safe for
// concurrent use: registration may interleave with serving, and each
// registered video's state is immutable.
//
// Classic ('dcT1'/'dcT2') clients are answered from the default video —
// the first one registered — so a multi-video server is a drop-in
// replacement for the old single-video one. Multiplexed ('dcT3') clients
// address videos by ID from the OpVideos directory and may pipeline
// requests; see the package documentation for the wire contract.
type Server struct {
	// Log receives per-connection errors and debug lines; nil discards
	// them (the no-op default).
	Log *obs.Logger
	// Obs records transport_requests_total, transport_not_found_total,
	// transport_shed_total, transport_bytes_in/out_total, the
	// per-message-type latency histograms
	// transport_{manifest,segment,model,directory,backbone,modeldelta}_seconds,
	// the chunk-dedupe counters modelstore_chunk_puts/hits_total, their
	// rolling-window twins transport_requests_window_total,
	// transport_shed_window_total and
	// transport_{manifest,segment,model}_window_seconds, and the
	// transport_open_conns, transport_videos, transport_inflight and
	// transport_inflight_peak gauges. Traced ('dcT2'/'dcT3') requests
	// additionally record one server span each into Obs.TraceBuf,
	// retrievable by trace ID via the debug sidecar's /debug/trace?id=
	// endpoint. nil disables all of it.
	Obs *obs.Obs
	// Admission bounds concurrent work before the server sheds load with
	// StatusRetryAfter; the zero value admits everything. It is read when
	// the first connection arrives — set it before calling Serve or
	// ServeConn.
	Admission AdmissionConfig

	mu        sync.Mutex
	videos    []*hostedVideo
	byDigest  map[string]uint32
	directory []byte
	store     *modelstore.Mem
	// assembled dedupes serving buffers across videos by payload digest —
	// the k-th video re-using a model (or delta, or backbone) serves the
	// same canonical copy. The chunk store underneath accounts sub-payload
	// sharing; see internPayload.
	assembled map[modelstore.Digest][]byte
	adm       *admission
	ln        net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	// admitHold, when set, is called for every admitted request while its
	// admission slot is held, before the response is written. Tests use
	// it to pin the server at a known inflight level; nil in production.
	admitHold func(op byte)
	// gateNow overrides the admission token bucket's clock in tests.
	gateNow func() time.Time
}

// NewFleetServer returns an empty multi-video server; call Register for
// each prepared stream to host. Serving with no videos registered
// answers every data op with StatusNotFound.
func NewFleetServer() *Server {
	s := &Server{
		byDigest:  make(map[string]uint32),
		store:     modelstore.NewMem(),
		assembled: make(map[modelstore.Digest][]byte),
		conns:     make(map[net.Conn]struct{}),
	}
	empty, err := EncodeWireDirectory(&WireDirectory{})
	if err != nil {
		// An empty directory is a constant JSON document; its encoding
		// cannot fail.
		panic(err)
	}
	s.directory = empty
	return s
}

// NewServer packages a single prepared stream for serving: the manifest,
// every segment as an independently decodable sub-stream, and every
// micro model. It is Register on a fresh fleet server — the common
// single-video case.
func NewServer(p *core.Prepared) (*Server, error) {
	s := NewFleetServer()
	if _, err := s.Register(p); err != nil {
		return nil, err
	}
	return s, nil
}

// Register adds a prepared stream to the server and returns its hex
// SHA-256 content digest — the stable name clients select it by. The
// digest covers every segment payload and every model payload in label
// order, so two Prepare runs that produced identical bytes collapse to
// one registration error rather than two hosted copies.
//
// Registration validates the manifest (rejecting duplicate segment
// indices and mismatched model labels — the silent-shadowing bug class),
// refuses a digest that is already hosted, and refuses model payloads
// whose content digest collides with a different payload already hosted
// by another video. Identical model payloads across videos are stored
// once (content-addressed dedupe).
func (s *Server) Register(p *core.Prepared) (string, error) {
	if err := p.Manifest.Validate(); err != nil {
		return "", fmt.Errorf("transport: refusing to register: %w", err)
	}
	man, err := EncodeWireManifest(p.FPS, p.MicroConfig, p.Manifest)
	if err != nil {
		return "", err
	}
	v := &hostedVideo{manifest: man, models: make(map[uint32][]byte), deltas: make(map[uint32][]byte)}
	hash := sha256.New()
	for i := range p.Segments {
		sub, err := p.SegmentStream(i)
		if err != nil {
			return "", fmt.Errorf("transport: packaging segment %d: %w", i, err)
		}
		data := sub.Marshal()
		v.segments = append(v.segments, data)
		//lint:allow errcheck hash.Hash.Write is documented to never return an error
		hash.Write(data)
	}
	for _, label := range p.Manifest.ModelLabels() {
		if label < 0 {
			continue
		}
		sm, ok := p.Models[label]
		if !ok {
			return "", fmt.Errorf("transport: manifest model %d has no weights", label)
		}
		var lbl [4]byte
		binary.BigEndian.PutUint32(lbl[:], uint32(label))
		//lint:allow errcheck hash.Hash.Write is documented to never return an error
		hash.Write(lbl[:])
		//lint:allow errcheck hash.Hash.Write is documented to never return an error
		hash.Write(sm.Bytes)
	}
	digest := hex.EncodeToString(hash.Sum(nil))

	s.mu.Lock()
	defer s.mu.Unlock()
	// The chunk store only counts dedupe when it can see the registry;
	// pick up whatever Obs the owner has attached by now (registrations
	// through the NewServer sugar happen before any Obs is assigned and
	// stay uninstrumented, same as every other server metric).
	s.store.Obs = s.Obs
	if _, dup := s.byDigest[digest]; dup {
		return "", fmt.Errorf("transport: video %s already registered", digest)
	}
	// Model payloads are content-addressed so the k-th video re-using a
	// model costs no extra memory, and a digest collision (same digest,
	// different bytes) is caught instead of silently serving the wrong
	// weights. Delta payloads go through the same path, and the chunk
	// store underneath additionally dedupes shared runs of bytes across
	// distinct payloads (modelstore_chunk_puts/hits_total).
	for _, label := range p.Manifest.ModelLabels() {
		if label < 0 {
			continue
		}
		sm := p.Models[label]
		data, err := s.internPayload(fmt.Sprintf("model %d", label), sm.Bytes)
		if err != nil {
			return "", err
		}
		v.models[uint32(label)] = data
		if sm.Delta != nil && sm.Delta.DeltaOK {
			dd, err := s.internPayload(fmt.Sprintf("model %d delta", label), sm.Delta.Bytes)
			if err != nil {
				return "", err
			}
			v.deltas[uint32(label)] = dd
		}
	}
	if bb := p.Manifest.Backbone; bb != nil {
		v.backbone = v.models[uint32(bb.Label)]
	}
	id := uint32(len(s.videos))
	v.info = WireVideo{
		ID:         id,
		Digest:     digest,
		FPS:        p.FPS,
		Segments:   len(p.Manifest.Segments),
		Models:     len(v.models),
		VideoBytes: int64(p.Manifest.TotalVideoBytes()),
		ModelBytes: int64(p.Manifest.TotalModelBytes()),
	}
	s.videos = append(s.videos, v)
	s.byDigest[digest] = id
	dir := WireDirectory{Videos: make([]WireVideo, 0, len(s.videos))}
	for _, hv := range s.videos {
		dir.Videos = append(dir.Videos, hv.info)
	}
	enc, err := EncodeWireDirectory(&dir)
	if err != nil {
		// Roll back so a half-registered video is never served.
		s.videos = s.videos[:id]
		delete(s.byDigest, digest)
		return "", err
	}
	s.directory = enc
	s.Obs.Gauge("transport_videos").Set(int64(len(s.videos)))
	s.Log.Debug("transport: video registered", "id", id, "digest", digest,
		"segments", v.info.Segments, "models", v.info.Models)
	return digest, nil
}

// internPayload dedupes one serving buffer by payload digest — callers
// holding s.mu get back the canonical copy of byte-identical payloads —
// and chunk-stores fresh payloads so sub-payload sharing (the backbone a
// second video re-uses, residual runs two deltas have in common) is
// accounted by the modelstore_chunk_puts/hits_total counters. A digest
// collision (same digest, different bytes) is refused.
func (s *Server) internPayload(what string, data []byte) ([]byte, error) {
	d := modelstore.DigestOf(data)
	if existing, ok := s.assembled[d]; ok {
		if !bytes.Equal(existing, data) {
			return nil, fmt.Errorf("transport: %s digest %s collides with a different hosted payload", what, d)
		}
		return existing, nil
	}
	if _, err := modelstore.PutChunked(s.store, data); err != nil {
		return nil, fmt.Errorf("transport: model store: %w", err)
	}
	s.assembled[d] = data
	return data, nil
}

// Videos returns the current directory of hosted videos in registration
// order (index == video ID).
func (s *Server) Videos() []WireVideo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WireVideo, 0, len(s.videos))
	for _, v := range s.videos {
		out = append(out, v.info)
	}
	return out
}

// serveState snapshots everything a request handler needs under one lock
// acquisition: the video table, encoded directory, and admission state.
func (s *Server) serveState() (videos []*hostedVideo, directory []byte, adm *admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adm == nil {
		s.adm = newAdmission(s.Admission)
	}
	return s.videos, s.directory, s.adm
}

// Serve accepts connections on l until Close is called. It always returns
// a non-nil error; after Close it returns net.ErrClosed.
//
// When AdmissionConfig.MaxConns is set and reached, an excess connection
// is still accepted but its first request is answered with
// StatusRetryAfter and the connection is closed — a typed rejection the
// client can back off from, rather than a silent refusal.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//lint:allow errcheck conn lost the accept-vs-Close race and was never served; the shutdown is already reported via net.ErrClosed
			conn.Close()
			return net.ErrClosed
		}
		over := s.Admission.MaxConns > 0 && len(s.conns) >= s.Admission.MaxConns
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.Obs.Gauge("transport_open_conns").Add(1)
		s.Log.Debug("transport: conn accepted", "remote", conn.RemoteAddr(), "over_capacity", over)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				//lint:allow errcheck handler teardown: ServeConn already surfaced any read/write failure, and a close error on a drained conn is unactionable
				conn.Close()
				s.Obs.Gauge("transport_open_conns").Add(-1)
			}()
			var err error
			if over {
				err = s.rejectConn(conn)
			} else {
				err = s.ServeConn(conn)
			}
			if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Log.Error("transport: conn failed", "remote", conn.RemoteAddr(), "err", err)
			}
		}()
	}
}

// rejectConn answers one request with StatusRetryAfter and returns,
// closing the over-capacity connection after a single typed rejection.
func (s *Server) rejectConn(conn io.ReadWriter) error {
	_, _, adm := s.serveState()
	req, err := readRequest(conn)
	if err != nil {
		return err
	}
	s.Obs.Counter("transport_shed_total").Inc()
	s.Obs.WindowedCounter("transport_shed_window_total").Inc()
	s.Log.Warn("transport: conn over capacity, shedding", "op", opName(req.Op))
	hint := retryAfterPayload(adm.cfg.RetryAfter)
	if req.Mux {
		return writeResponseMux(conn, req.ID, StatusRetryAfter, hint)
	}
	return writeResponse(conn, StatusRetryAfter, hint)
}

// connMetrics is the per-connection bundle of metric handles, resolved
// once per connection rather than per request. Literal names keep the
// metric surface statically pinned to docs/OPERATIONS.md; nil Obs yields
// nil no-op handles.
type connMetrics struct {
	reqCtr      *obs.Counter
	nfCtr       *obs.Counter
	shedCtr     *obs.Counter
	inCtr       *obs.Counter
	outCtr      *obs.Counter
	inflight    *obs.Gauge
	inflightPk  *obs.Gauge
	opHists     map[byte]*obs.Histogram
	unknownHist *obs.Histogram
	wReqCtr     *obs.WindowedCounter
	wShedCtr    *obs.WindowedCounter
	opWHists    map[byte]*obs.WindowedHistogram
}

func (s *Server) connMetrics() *connMetrics {
	return &connMetrics{
		reqCtr:     s.Obs.Counter("transport_requests_total"),
		nfCtr:      s.Obs.Counter("transport_not_found_total"),
		shedCtr:    s.Obs.Counter("transport_shed_total"),
		inCtr:      s.Obs.Counter("transport_bytes_in_total"),
		outCtr:     s.Obs.Counter("transport_bytes_out_total"),
		inflight:   s.Obs.Gauge("transport_inflight"),
		inflightPk: s.Obs.Gauge("transport_inflight_peak"),
		opHists: map[byte]*obs.Histogram{
			OpManifest:   s.Obs.Histogram("transport_manifest_seconds"),
			OpSegment:    s.Obs.Histogram("transport_segment_seconds"),
			OpModel:      s.Obs.Histogram("transport_model_seconds"),
			OpVideos:     s.Obs.Histogram("transport_directory_seconds"),
			OpBackbone:   s.Obs.Histogram("transport_backbone_seconds"),
			OpModelDelta: s.Obs.Histogram("transport_modeldelta_seconds"),
		},
		unknownHist: s.Obs.Histogram("transport_unknown_seconds"),
		wReqCtr:     s.Obs.WindowedCounter("transport_requests_window_total"),
		wShedCtr:    s.Obs.WindowedCounter("transport_shed_window_total"),
		opWHists: map[byte]*obs.WindowedHistogram{
			OpManifest: s.Obs.WindowedHistogram("transport_manifest_window_seconds"),
			OpSegment:  s.Obs.WindowedHistogram("transport_segment_window_seconds"),
			OpModel:    s.Obs.WindowedHistogram("transport_model_window_seconds"),
		},
	}
}

// connWriter serializes response writes on one connection: classic
// responses from the read loop and pipelined mux responses from handler
// goroutines interleave on the same conn, so every write goes through
// one mutex. The first write error is kept and poisons the connection —
// later writes are dropped so handlers drain quickly once the conn is
// gone.
type connWriter struct {
	mu   sync.Mutex
	conn io.ReadWriter
	err  error
}

func (w *connWriter) write(fn func(io.Writer) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := fn(w.conn); err != nil {
		w.err = err
		return err
	}
	return nil
}

// ServeConn answers requests on a single connection until it closes. It
// is exported so tests and in-process clients can use net.Pipe.
//
// Classic requests are answered in order, one at a time. Multiplexed
// ('dcT3') requests are dispatched to per-request goroutines and may be
// answered out of order; ServeConn does not return until every dispatched
// request has finished.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	m := s.connMetrics()
	videos, _, adm := s.serveState()
	// Refresh here as well as in Register: the common wiring attaches Obs
	// after construction, so the gauge would otherwise stay unregistered.
	s.Obs.Gauge("transport_videos").Set(int64(len(videos)))
	gate := adm.gate(s.gateNow)
	cw := &connWriter{conn: conn}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		req, err := readRequest(conn)
		if err != nil {
			return err
		}
		m.reqCtr.Inc()
		m.wReqCtr.Inc()
		if req.Mux {
			m.inCtr.Add(muxReqFrameBytes)
		} else {
			m.inCtr.Add(req.TC.frameBytes())
		}
		release, hint, ok := gate.admit(req.Op)
		if !ok {
			m.shedCtr.Inc()
			m.wShedCtr.Inc()
			s.Log.Warn("transport: request shed", "op", opName(req.Op), "hint", hint)
			if err := s.respond(cw, m, req, StatusRetryAfter, retryAfterPayload(hint)); err != nil {
				return err
			}
			continue
		}
		if req.Mux {
			wg.Add(1)
			go s.serveMux(cw, m, adm, req, &wg, release)
			continue
		}
		err = s.handle(cw, m, adm, req)
		release()
		if err != nil {
			return err
		}
	}
}

// serveMux is the per-request goroutine body for multiplexed dispatch:
// it serves one admitted request, then releases its admission slot and
// joins the connection's WaitGroup. The goleak analyzer resolves this
// named method through the package dataflow summaries and verifies the
// completion signal lives here, in the body, not at the launch site.
func (s *Server) serveMux(cw *connWriter, m *connMetrics, adm *admission, req wireRequest, wg *sync.WaitGroup, release func()) {
	defer wg.Done()
	defer release()
	//lint:allow errcheck the write error is retained in connWriter and surfaces when the read loop fails; a per-request goroutine has nowhere better to report it
	s.handle(cw, m, adm, req)
}

// handle serves one admitted request end to end: resolve the video,
// look up the payload, stamp the trace span, and write the response
// through the connection's serialized writer.
func (s *Server) handle(cw *connWriter, m *connMetrics, adm *admission, req wireRequest) error {
	if s.admitHold != nil {
		s.admitHold(req.Op)
	}
	inflight, peak := adm.snapshot()
	m.inflight.Set(int64(inflight))
	m.inflightPk.Set(int64(peak))
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	// A traced request gets a server-side span joined to the client's
	// trace, retained in the trace buffer for /debug/trace?id= — this is
	// what lets an operator attribute a slow fetch to the serving side
	// after the fact.
	var span *obs.Span
	if req.TC.TraceID != 0 && s.Obs != nil {
		span = obs.JoinSpan("server."+opName(req.Op), req.TC.TraceID, req.TC.SpanID)
		span.Set("op", opName(req.Op))
		span.Set("arg", req.Arg)
		span.Set("attempt", int(req.TC.Attempt))
		if req.Mux {
			span.Set("video", req.Video)
		}
	}
	videos, directory, _ := s.serveState()
	var payload []byte
	status := byte(StatusOK)
	var v *hostedVideo
	if int(req.Video) < len(videos) {
		v = videos[req.Video]
	}
	switch req.Op {
	case OpVideos:
		payload = directory
	case OpManifest:
		if v == nil {
			status = StatusNotFound
		} else {
			payload = v.manifest
		}
	case OpSegment:
		if v == nil || int(req.Arg) >= len(v.segments) {
			status = StatusNotFound
		} else {
			payload = v.segments[req.Arg]
		}
	case OpModel:
		if v == nil {
			status = StatusNotFound
		} else if data, ok := v.models[req.Arg]; ok {
			payload = data
		} else {
			status = StatusNotFound
		}
	case OpBackbone:
		if v == nil || v.backbone == nil {
			status = StatusNotFound
		} else {
			payload = v.backbone
		}
	case OpModelDelta:
		if v == nil {
			status = StatusNotFound
		} else if data, ok := v.deltas[req.Arg]; ok {
			payload = data
		} else {
			status = StatusNotFound
		}
	default:
		status = StatusBadReq
	}
	if status != StatusOK {
		payload = nil
		if status == StatusNotFound {
			m.nfCtr.Inc()
		}
		s.Log.Warn("transport: request rejected", "op", opName(req.Op), "arg", req.Arg,
			"video", req.Video, "status", status)
	}
	err := s.respond(cw, m, req, status, payload)
	if err != nil {
		if span != nil {
			span.Set("status", "write_failed")
			span.End()
			s.Obs.RecordTrace(span)
		}
		return err
	}
	if span != nil {
		span.Set("status", int(status))
		span.Set("bytes_out", respFrameBytes+len(payload))
		span.End()
		s.Obs.RecordTrace(span)
	}
	if s.Obs != nil {
		elapsed := time.Since(t0).Seconds()
		h, ok := m.opHists[req.Op]
		if !ok {
			h = m.unknownHist
		}
		h.Observe(elapsed)
		// Missing map entry (unknown op) yields a nil no-op handle.
		m.opWHists[req.Op].Observe(elapsed)
	}
	return nil
}

// respond writes one response in the framing the request arrived in.
func (s *Server) respond(cw *connWriter, m *connMetrics, req wireRequest, status byte, payload []byte) error {
	var err error
	if req.Mux {
		err = cw.write(func(w io.Writer) error {
			return writeResponseMux(w, req.ID, status, payload)
		})
		if err == nil {
			m.outCtr.Add(muxRespFrameBytes + int64(len(payload)))
		}
	} else {
		err = cw.write(func(w io.Writer) error {
			return writeResponse(w, status, payload)
		})
		if err == nil {
			m.outCtr.Add(respFrameBytes + int64(len(payload)))
		}
	}
	return err
}

// opName maps a protocol opcode to its stable metric-name component.
func opName(op byte) string {
	switch op {
	case OpManifest:
		return "manifest"
	case OpSegment:
		return "segment"
	case OpModel:
		return "model"
	case OpVideos:
		return "videos"
	case OpBackbone:
		return "backbone"
	case OpModelDelta:
		return "modeldelta"
	default:
		return "unknown"
	}
}

// Shutdown stops the listener and waits for in-flight connections to
// finish on their own — the graceful counterpart to Close. If ctx
// expires first, the remaining connections are force-closed (Close's
// behaviour), the drain completes, and ctx's error is returned. A client
// that simply stays connected counts as in-flight, so callers should
// always pass a context with a deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			//lint:allow errcheck force-closing stragglers past the drain deadline; their goroutines report the resulting errors
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close stops the listener, closes active connections and waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		//lint:allow errcheck force-closing live conns to unblock handlers; their goroutines report the resulting errors, Close returns the listener's
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
