// Tests for wire-level trace propagation: frame compatibility across
// protocol generations, fault behaviour of the traced frame, retry
// attribution, and the end-to-end client → server → /debug/trace?id=
// path. Everything here is meaningful under -race (the documented
// invocation for the interop suite is `go test -race`).
package transport

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dcsr/internal/faultnet"
	"dcsr/internal/obs"
)

// waitTraceLen waits for the server's trace buffer to hold at least
// want spans: the server records a request's span just after writing
// its response, so the client can observe the reply a moment before the
// span lands.
func waitTraceLen(t *testing.T, b *obs.TraceBuffer, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Len() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace buffer has %d spans, want at least %d", b.Len(), want)
}

// TestWireTraceFraming round-trips a traced frame and pins the
// compatibility contract at the byte level: a plain 'dcT1' frame parses
// as "no trace" and a traced 'dcT2' frame yields its context back.
func TestWireTraceFraming(t *testing.T) {
	var buf lockedBuf
	want := TraceContext{TraceID: 0xdeadbeef, SpanID: 0x1234, Attempt: 3}
	if err := writeRequestTraced(&buf, OpModel, 7, want); err != nil {
		t.Fatal(err)
	}
	if n := len(buf.String()); n != tracedReqFrameBytes {
		t.Fatalf("traced frame is %d bytes, want %d", n, tracedReqFrameBytes)
	}
	req, err := readRequest(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpModel || req.Arg != 7 || req.TC != want {
		t.Fatalf("round trip gave op=%d arg=%d tc=%+v", req.Op, req.Arg, req.TC)
	}
	if req.TC.frameBytes() != tracedReqFrameBytes {
		t.Errorf("frameBytes = %d", req.TC.frameBytes())
	}
	if (TraceContext{}).frameBytes() != reqFrameBytes {
		t.Errorf("zero frameBytes = %d", TraceContext{}.frameBytes())
	}

	// A traced frame cut inside the trace context is a broken
	// connection (io.ErrUnexpectedEOF), not a parse of garbage.
	cut := buf.String()[:reqFrameBytes+4]
	if _, err := readRequest(strings.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("cut trace context gave %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestWireTraceCompatOldClientNewServer drives a current server with
// hand-written 'dcT1' frames — what an old client emits — and asserts
// the requests are served normally with no trace recorded.
func TestWireTraceCompatOldClientNewServer(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	so := obs.New()
	srv.Obs = so
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	go func() { _ = srv.ServeConn(sconn) }()

	for _, req := range []struct {
		op  byte
		arg uint32
	}{{OpManifest, 0}, {OpSegment, 0}} {
		if err := writeRequest(cconn, req.op, req.arg); err != nil {
			t.Fatal(err)
		}
		status, payload, err := readResponse(cconn)
		if err != nil || status != StatusOK || len(payload) == 0 {
			t.Fatalf("op %d: status=%d err=%v", req.op, status, err)
		}
	}
	if n := so.TraceBuf.Len(); n != 0 {
		t.Errorf("untraced requests recorded %d server spans, want 0", n)
	}
	// The new server's manifest advertises the capability old clients
	// simply ignore.
	wm, err := DecodeWireManifest(srv.videos[0].manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !wm.Trace {
		t.Error("server manifest does not advertise trace support")
	}
}

// serveOldWire is a server from before the traced frame existed: it
// understands exactly 9-byte 'dcT1' frames and fails the test if
// anything else arrives.
func serveOldWire(t *testing.T, conn net.Conn, manifest, segment []byte) {
	for {
		var buf [reqFrameBytes]byte
		if _, err := io.ReadFull(conn, buf[:]); err != nil {
			return
		}
		if [4]byte(buf[:4]) != protoMagic {
			t.Errorf("old server received frame with magic %x — a new client must stay on dcT1", buf[:4])
			return
		}
		var payload []byte
		switch buf[4] {
		case OpManifest:
			payload = manifest
		case OpSegment:
			payload = segment
		}
		if err := writeResponse(conn, StatusOK, payload); err != nil {
			return
		}
	}
}

// TestWireTraceCompatNewClientOldServer runs a current client — with an
// active trace span — against a pre-trace server and asserts the client
// never emits a traced frame, because the old manifest carries no
// capability flag.
func TestWireTraceCompatNewClientOldServer(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := DecodeWireManifest(srv.videos[0].manifest)
	if err != nil {
		t.Fatal(err)
	}
	wm.Trace = false // what an old server serves
	wm.Mux = false
	oldManifest, err := json.Marshal(wm)
	if err != nil {
		t.Fatal(err)
	}

	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()
	go serveOldWire(t, sconn, oldManifest, srv.videos[0].segments[0])

	co := obs.New()
	client := NewClient(cconn)
	client.Obs = co
	client.Trace = co.Start("session") // active trace, but no wire capability
	got, err := client.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace || client.TraceWire {
		t.Fatal("client negotiated tracing against an old server")
	}
	if _, err := client.Segment(0); err != nil {
		t.Fatalf("segment fetch over plain frames: %v", err)
	}
	if client.BytesUp != 2*reqFrameBytes {
		t.Errorf("BytesUp = %d, want %d (two plain frames)", client.BytesUp, 2*reqFrameBytes)
	}
}

// TestTruncatedTraceHeaderIsBrokenConn injects a request-side truncation
// that cuts the frame inside the new trace-context bytes and asserts
// both sides take the pre-existing broken-connection path — the client
// reconnects and retries, the server sees io.ErrUnexpectedEOF — with no
// new failure mode.
func TestTruncatedTraceHeaderIsBrokenConn(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	so := obs.New()
	srv.Obs = so

	cut := true
	inj := faultnet.New(faultnet.Config{
		// 21 bytes: the full legacy header, the trace ID, plus 4 bytes
		// of span ID — the cut lands inside the trace-context fields.
		TruncateAfter: reqFrameBytes + 12,
		Decide: func(_ int, frame []byte) faultnet.Kind {
			if len(frame) == tracedReqFrameBytes && frame[4] == OpSegment && cut {
				cut = false
				return faultnet.KindTruncateRequest
			}
			return faultnet.KindNone
		},
	})

	srvErrs := make(chan error, 8)
	var conns []io.Closer
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	dial := func() (io.ReadWriter, error) {
		cconn, sconn := net.Pipe()
		go func() { srvErrs <- srv.ServeConn(sconn) }()
		conns = append(conns, cconn, sconn)
		return inj.Wrap(cconn), nil
	}

	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	co := obs.New()
	client := NewClient(conn)
	client.Obs = co
	client.Redial = dial
	client.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1, Seed: 1}
	if _, err := client.Manifest(); err != nil {
		t.Fatal(err)
	}
	if !client.TraceWire {
		t.Fatal("capability not negotiated")
	}
	client.Trace = co.Start("fetch")
	if _, err := client.Segment(0); err != nil {
		t.Fatalf("segment fetch did not survive the truncated frame: %v", err)
	}
	if client.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", client.Reconnects)
	}
	// The reconnect closed the half-written connection; its server
	// handler must report the standard mid-frame cut, nothing novel.
	select {
	case err := <-srvErrs:
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("server saw %v, want io.ErrUnexpectedEOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server handler never returned after truncated frame")
	}
	// The server never parsed the cut request, so no span exists for it:
	// only the successful retry is in the buffer.
	waitTraceLen(t, so.TraceBuf, 1)
	if n := so.TraceBuf.Len(); n != 1 {
		t.Errorf("server recorded %d spans, want 1 (the successful retry)", n)
	}
}

// TestRetryAttribution pins the tentpole's attribution story: a request
// dropped before the server, retried and then served yields ONE trace
// holding attempt-numbered client spans and exactly one server span,
// parented to the attempt that actually reached the server.
func TestRetryAttribution(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	so := obs.New()
	srv.Obs = so

	drop := true
	inj := faultnet.New(faultnet.Config{
		Decide: func(_ int, frame []byte) faultnet.Kind {
			if len(frame) == tracedReqFrameBytes && frame[4] == OpSegment && drop {
				drop = false
				return faultnet.KindDropRequest
			}
			return faultnet.KindNone
		},
	})
	d := &pipeDialer{t: t, srv: srv, inj: inj}
	defer d.cleanup()
	conn, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	co := obs.New()
	client := NewClient(conn)
	client.Obs = co
	client.Redial = d.dial
	client.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1, Seed: 1}
	client.TraceWire = true // capability pinned out of band; the manifest path has its own test
	root := co.Start("fetch_segment")
	client.Trace = root
	if _, err := client.Segment(0); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := root.Export()
	if len(tree.Children) != 2 {
		t.Fatalf("client trace has %d attempt spans, want 2: %+v", len(tree.Children), tree)
	}
	for i, ch := range tree.Children {
		if ch.Name != "attempt" || ch.Attrs["attempt"] != i {
			t.Errorf("child %d = %q attrs %v, want attempt-numbered", i, ch.Name, ch.Attrs)
		}
	}
	if tree.Children[0].Attrs["outcome"] != "error" || tree.Children[1].Attrs["outcome"] != "ok" {
		t.Errorf("attempt outcomes = %v / %v", tree.Children[0].Attrs, tree.Children[1].Attrs)
	}

	// Exactly one server span — the dropped request never reached the
	// server — and it hangs off the second attempt.
	waitTraceLen(t, so.TraceBuf, 1)
	spans := so.TraceBuf.Trace(root.TraceID())
	if len(spans) != 1 {
		t.Fatalf("server recorded %d spans for the trace, want exactly 1: %+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.Name != "server.segment" || sp.TraceID != tree.TraceID {
		t.Errorf("server span = %q in trace %q, want server.segment in %q", sp.Name, sp.TraceID, tree.TraceID)
	}
	if sp.ParentID != tree.Children[1].SpanID {
		t.Errorf("server span parent %q != successful attempt span %q", sp.ParentID, tree.Children[1].SpanID)
	}
	if sp.Attrs["attempt"] != float64(1) && sp.Attrs["attempt"] != 1 {
		t.Errorf("server span attempt attr = %v, want 1", sp.Attrs["attempt"])
	}
}

// TestEndToEndTraceRetrievable is the acceptance-criteria test: a full
// playback through faultnet (one dropped response forcing retry +
// redial), after which the trace ID recorded on the client side is
// retrievable from the server's /debug/trace?id= endpoint with every
// server span correctly parented to a client attempt span.
func TestEndToEndTraceRetrievable(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	so := obs.New()
	srv.Obs = so

	dropped := false
	inj := faultnet.New(faultnet.Config{
		Decide: func(_ int, frame []byte) faultnet.Kind {
			if len(frame) == tracedReqFrameBytes && frame[4] == OpSegment && !dropped {
				dropped = true
				return faultnet.KindDrop // response lost after the server served it
			}
			return faultnet.KindNone
		},
	})
	d := &pipeDialer{t: t, srv: srv, inj: inj}
	defer d.cleanup()
	conn, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	co := obs.New()
	client := NewClient(conn)
	client.Obs = co
	client.Redial = d.dial
	client.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1, Seed: 1}
	if _, _, err := client.Play(true); err != nil {
		t.Fatal(err)
	}

	traces := co.Trace.Traces()
	if len(traces) != 1 {
		t.Fatalf("client recorded %d traces, want 1", len(traces))
	}
	session := traces[0]
	if session.TraceID == "" {
		t.Fatal("client session trace has no ID")
	}
	clientSpanIDs := map[string]bool{}
	var collect func(obs.SpanJSON)
	collect = func(s obs.SpanJSON) {
		clientSpanIDs[s.SpanID] = true
		for _, c := range s.Children {
			collect(c)
		}
	}
	collect(session)

	// The client-recorded trace ID, queried against the *server's*
	// debug endpoint over HTTP — the cross-process lookup an operator
	// performs.
	waitTraceLen(t, so.TraceBuf, len(prep.Segments))
	rec := httptest.NewRecorder()
	so.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?id="+session.TraceID, nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace?id= returned %d: %s", rec.Code, rec.Body.String())
	}
	var serverSpans []obs.SpanJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &serverSpans); err != nil {
		t.Fatal(err)
	}
	// Every traced request lands one server span: each segment, each
	// model download, plus the extra serve of the dropped response.
	if len(serverSpans) < len(prep.Segments) {
		t.Fatalf("server retained %d spans, want at least %d", len(serverSpans), len(prep.Segments))
	}
	for _, sp := range serverSpans {
		if sp.TraceID != session.TraceID {
			t.Errorf("server span %q in trace %q, want %q", sp.Name, sp.TraceID, session.TraceID)
		}
		if !clientSpanIDs[sp.ParentID] {
			t.Errorf("server span %q parent %q is not a client span", sp.Name, sp.ParentID)
		}
		if sp.InFlight {
			t.Errorf("server span %q still in flight", sp.Name)
		}
	}
	// The retried exchange is attributable: some server span carries a
	// non-zero attempt number.
	var retried bool
	for _, sp := range serverSpans {
		if a, ok := sp.Attrs["attempt"].(float64); ok && a > 0 {
			retried = true
		}
	}
	if !retried {
		t.Error("no server span carries a retry attempt number")
	}
}
