package transport

import (
	"io"
	"net"
	"testing"

	"dcsr/internal/core"
	"dcsr/internal/edsr"
	"dcsr/internal/splitter"
	"dcsr/internal/vae"
	"dcsr/internal/video"
)

// deltaFixture prepares a clip with both the delta_encode and
// quantize_int8 stages forced to admit every cluster, so the manifest
// advertises a backbone, delta-shipped models, and int8 scales at once.
var deltaFixture *core.Prepared

func getDeltaFixture(t testing.TB) *core.Prepared {
	t.Helper()
	if deltaFixture == nil {
		clip := video.Generate(video.GenConfig{
			W: 80, H: 48, Seed: 23, NumScenes: 3, TotalCues: 6, MinFrames: 5, MaxFrames: 8,
		})
		prep, err := core.Prepare(clip.YUVFrames(), clip.FPS, core.ServerConfig{
			QP:          51,
			Split:       splitter.Config{Threshold: 14, MinLen: 3},
			VAE:         vae.Config{ImgSize: 16, LatentDim: 4, BaseCh: 4},
			VAETrain:    vae.TrainOptions{Epochs: 10, BatchSize: 4},
			MicroConfig: edsr.Config{Filters: 4, ResBlocks: 1},
			Train:       edsr.TrainOptions{Steps: 60, BatchSize: 2, PatchSize: 16},
			Quant:       core.QuantConfig{Enabled: true, MaxPSNRDrop: 100},
			Delta:       core.DeltaConfig{Enabled: true, MaxPSNRDrop: 100},
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prep.Manifest.Backbone == nil {
			t.Fatal("delta fixture produced no backbone; the model-stream tests would be vacuous")
		}
		deltaFixture = prep
	}
	return deltaFixture
}

// playServer plays one full session against an already-built server over
// a pipe and returns the frames and stats.
func playServer(t *testing.T, srv *Server, noInt8 bool) ([]*video.YUV, *PlayStats) {
	t.Helper()
	cconn, sconn := net.Pipe()
	go func() { _ = srv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	client := NewClient(cconn)
	client.NoInt8 = noInt8
	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestPlayModelStreamOverWire pins the end-to-end model stream: the
// manifest advertises backbone + deltas, the client fetches the backbone
// once and assembles every delta-shipped model locally, playback is
// pixel-identical to origin playback in both precisions, and the session
// downloads fewer model bytes than the same video served full-model.
func TestPlayModelStreamOverWire(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the pipeline; skipped in short mode")
	}
	prep := getDeltaFixture(t)
	bb := prep.Manifest.Backbone
	deltas := 0
	for label, mi := range prep.Manifest.Models {
		if mi.Delta {
			deltas++
			if mi.BackboneDigest != bb.Digest {
				t.Fatalf("model %d: backbone digest %s, manifest backbone %s", label, mi.BackboneDigest, bb.Digest)
			}
		}
	}
	if deltas == 0 {
		t.Fatal("no delta-shipped models; model-stream test is vacuous")
	}

	out, stats := playOverPipe(t, prep, false)
	ref, err := core.NewPlayer(prep).Play()
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(out, ref.Frames) {
		t.Fatal("model-stream int8 playback differs from origin-local playback")
	}
	if stats.Enhanced == 0 || stats.EnhancedInt8 != stats.Enhanced {
		t.Fatalf("enhanced %d, int8 %d; model stream must not break the int8 path",
			stats.Enhanced, stats.EnhancedInt8)
	}
	if stats.BackboneBytes != bb.Bytes {
		t.Fatalf("BackboneBytes = %d, manifest backbone is %d bytes (must be fetched exactly once)",
			stats.BackboneBytes, bb.Bytes)
	}
	if stats.DeltaModelBytes == 0 {
		t.Fatal("DeltaModelBytes = 0; no model arrived as a delta")
	}
	if got := stats.BackboneBytes + stats.DeltaModelBytes + stats.FullModelBytes; got != stats.ModelBytes {
		t.Fatalf("byte breakdown %d does not sum to ModelBytes %d", got, stats.ModelBytes)
	}

	// Float32 ablation: assembly must be precision-agnostic.
	outF, statsF := playOverPipe(t, prep, true)
	localF := core.NewPlayer(prep)
	localF.Int8 = false
	refF, err := localF.Play()
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(outF, refF.Frames) {
		t.Fatal("model-stream float32 playback differs from origin-local float32 playback")
	}
	if statsF.DeltaModelBytes != stats.DeltaModelBytes {
		t.Fatalf("float32 run downloaded %d delta bytes, int8 run %d; precision must not change the wire",
			statsF.DeltaModelBytes, stats.DeltaModelBytes)
	}

	// Control arm: the same canonical models served full. Pixels must be
	// identical (the reconstruction IS the canonical model) and the model
	// stream must be strictly cheaper.
	ctrlSrv, err := NewServer(prep.WithoutDelta())
	if err != nil {
		t.Fatal(err)
	}
	ctrlOut, ctrlStats := playServer(t, ctrlSrv, false)
	if !framesEqual(out, ctrlOut) {
		t.Fatal("full-model control playback differs from model-stream playback")
	}
	if ctrlStats.BackboneBytes != 0 || ctrlStats.DeltaModelBytes != 0 {
		t.Fatalf("control session used the model stream: backbone %d, delta %d bytes",
			ctrlStats.BackboneBytes, ctrlStats.DeltaModelBytes)
	}
	if ctrlStats.FullModelBytes != ctrlStats.ModelBytes {
		t.Fatalf("control FullModelBytes %d != ModelBytes %d", ctrlStats.FullModelBytes, ctrlStats.ModelBytes)
	}
	if stats.ModelBytes >= ctrlStats.ModelBytes {
		t.Fatalf("model stream downloaded %d model bytes, full-model control %d; stream must be smaller",
			stats.ModelBytes, ctrlStats.ModelBytes)
	}
	t.Logf("model bytes: stream %d (backbone %d + delta %d + full %d) vs full-model %d",
		stats.ModelBytes, stats.BackboneBytes, stats.DeltaModelBytes, stats.FullModelBytes,
		ctrlStats.ModelBytes)
}

// opSniffer records the opcode byte of every request frame a sequential
// client writes (classic and traced frames both carry it at offset 4).
type opSniffer struct {
	io.ReadWriter
	ops []byte
}

func (s *opSniffer) Write(p []byte) (int, error) {
	if len(p) >= 5 {
		s.ops = append(s.ops, p[4])
	}
	return s.ReadWriter.Write(p)
}

// TestModelStreamInterop pins both directions of the compatibility
// matrix. New client against a server whose video has no backbone (what
// an old server's manifest decodes to): every model is fetched complete
// and the new ops never appear on the wire. Old client against a new
// server: OpModel still serves the complete canonical weights for every
// label, including delta-shipped ones.
func TestModelStreamInterop(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the pipeline; skipped in short mode")
	}
	prep := getDeltaFixture(t)

	// New client ← old-style manifest (no backbone).
	oldSrv, err := NewServer(prep.WithoutDelta())
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go func() { _ = oldSrv.ServeConn(sconn) }()
	defer cconn.Close()
	defer sconn.Close()
	sniff := &opSniffer{ReadWriter: cconn}
	client := NewClient(sniff)
	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range sniff.ops {
		if op == OpBackbone || op == OpModelDelta {
			t.Fatalf("new client sent op %d to a backbone-less server", op)
		}
	}
	if stats.FullModelBytes != stats.ModelBytes || stats.BackboneBytes != 0 {
		t.Fatalf("fallback session breakdown wrong: full %d of %d, backbone %d",
			stats.FullModelBytes, stats.ModelBytes, stats.BackboneBytes)
	}
	ref, err := core.NewPlayer(prep).Play()
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(out, ref.Frames) {
		t.Fatal("new-client/old-server playback differs from origin playback")
	}

	// Old client → new server: OpModel answers every label with the
	// complete canonical weights (what sm.Bytes holds after delta_encode
	// adopted the reconstruction).
	newSrv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	cc2, sc2 := net.Pipe()
	go func() { _ = newSrv.ServeConn(sc2) }()
	defer cc2.Close()
	defer sc2.Close()
	old := NewClient(cc2)
	for label, sm := range prep.Models {
		_, n, err := old.Model(label, prep.MicroConfig)
		if err != nil {
			t.Fatalf("OpModel for label %d against new server: %v", label, err)
		}
		if n != len(sm.Bytes) {
			t.Fatalf("OpModel label %d served %d bytes, canonical weights are %d", label, n, len(sm.Bytes))
		}
	}
}

// TestModelStreamCorruptionFallsBack pins the client's verify-then-arm
// rule: a corrupted delta (or backbone) payload must never reach the
// decoder — the client falls back to the complete OpModel fetch and
// playback stays pixel-identical to the origin.
func TestModelStreamCorruptionFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the pipeline; skipped in short mode")
	}
	prep := getDeltaFixture(t)
	ref, err := core.NewPlayer(prep).Play()
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one delta payload in the serving buffers.
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for label, d := range srv.videos[0].deltas {
		bad := append([]byte(nil), d...)
		bad[len(bad)/2] ^= 0x5A
		srv.videos[0].deltas[label] = bad
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no delta payload to corrupt")
	}
	out, stats := playServer(t, srv, false)
	if !framesEqual(out, ref.Frames) {
		t.Fatal("playback with a corrupted delta differs from origin playback")
	}
	if stats.FullModelBytes == 0 {
		t.Fatal("corrupted delta did not trigger a full-model fallback")
	}

	// Corrupt the backbone: every delta label must fall back, playback
	// still pixel-identical.
	srv2, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), srv2.videos[0].backbone...)
	bad[len(bad)/2] ^= 0x5A
	srv2.videos[0].backbone = bad
	out2, stats2 := playServer(t, srv2, false)
	if !framesEqual(out2, ref.Frames) {
		t.Fatal("playback with a corrupted backbone differs from origin playback")
	}
	if stats2.DeltaModelBytes != 0 {
		t.Fatalf("client assembled %d delta bytes from a corrupted backbone", stats2.DeltaModelBytes)
	}
	if stats2.FullModelBytes != stats2.ModelBytes {
		t.Fatalf("corrupted-backbone session should be all full fetches: full %d of %d",
			stats2.FullModelBytes, stats2.ModelBytes)
	}
}
