package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"time"
)

// RetryPolicy configures how a Client survives delivery failures: how
// long one request may take, how often it is retried, and how the
// retries back off. The zero value is the seed behaviour — no deadline,
// no retry, fail on the first I/O error — so existing callers are
// byte-for-byte unaffected.
//
// Only transport-level failures (write errors, read errors, timeouts,
// injected faults) are retried; protocol-level rejections (StatusNotFound,
// StatusBadReq) are deterministic and returned immediately. A failed
// request leaves the connection desynchronized, so a retry first
// re-establishes the connection through Client.Redial; without a Redial
// hook, transport-level failures are fatal exactly as in the zero policy.
//
// StatusRetryAfter — the server's admission shed — is a third class: the
// connection stays synchronized (no redial) and the rejection is
// retryable under its own ShedRetries budget, with the server's carried
// hint acting as a floor on the backoff so a shedding server is never
// hammered faster than it asked for.
type RetryPolicy struct {
	// MaxRetries is how many additional attempts follow a failed one.
	// 0 (default) disables retrying.
	MaxRetries int
	// ShedRetries is how many additional attempts follow a
	// StatusRetryAfter shed, each backing off by at least the server's
	// hint. 0 (default) falls back to MaxRetries, so a retry-configured
	// client honors sheds without extra configuration.
	ShedRetries int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Jitter randomizes that fraction of each backoff (default 0.2;
	// negative disables jitter entirely). Jitter draws come from a PRNG
	// seeded with Seed, so schedules are reproducible.
	Jitter float64
	// Timeout bounds one request/response exchange via a read deadline
	// on the connection (0 = none). Connections that do not implement
	// SetReadDeadline — strings readers in tests, say — silently run
	// without a deadline.
	Timeout time.Duration
	// Seed seeds the jitter PRNG.
	Seed int64
}

// withDefaults fills the documented defaults for enabled retrying.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.ShedRetries < 0 {
		p.ShedRetries = 0
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 0
		if p.ShedRetries == 0 {
			return p
		}
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// backoff returns the sleep before retry number attempt (0-based):
// BaseDelay·Multiplier^attempt capped at MaxDelay, with the Jitter
// fraction redrawn uniformly so synchronized clients spread out.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d = d*(1-p.Jitter) + rng.Float64()*d*p.Jitter
	}
	return time.Duration(d)
}

// shedBudget is the effective retry budget for admission sheds:
// ShedRetries when set, otherwise MaxRetries.
func (p RetryPolicy) shedBudget() int {
	if p.ShedRetries > 0 {
		return p.ShedRetries
	}
	return p.MaxRetries
}

// statusError is a protocol-level failure: the response arrived intact
// but carried a non-OK status. The connection stays synchronized and the
// outcome is deterministic, so a statusError is never retried through the
// transport path — with one exception: StatusRetryAfter carries the
// server's backoff hint and is retried under RetryPolicy.ShedRetries.
type statusError struct {
	op     byte
	arg    uint32
	status byte
	// hint is the server's retry-after backoff hint; nonzero only for
	// StatusRetryAfter.
	hint time.Duration
}

func (e *statusError) Error() string {
	switch e.status {
	case StatusNotFound:
		return fmt.Sprintf("transport: op %d arg %d: not found", e.op, e.arg)
	case StatusRetryAfter:
		return fmt.Sprintf("transport: op %d arg %d: shed, retry after %v", e.op, e.arg, e.hint)
	}
	return fmt.Sprintf("transport: op %d arg %d: status %d", e.op, e.arg, e.status)
}

// IsNotFound reports whether err is the server's StatusNotFound reply —
// the one failure that is semantic (the artifact does not exist) rather
// than transport-level.
func IsNotFound(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == StatusNotFound
}

// IsRetryAfter reports whether err is the server's StatusRetryAfter
// admission shed, returning the carried backoff hint. A client that
// exhausts its shed budget surfaces this error; callers can keep backing
// off by at least the hint and try again later.
func IsRetryAfter(err error) (time.Duration, bool) {
	var se *statusError
	if errors.As(err, &se) && se.status == StatusRetryAfter {
		return se.hint, true
	}
	return 0, false
}

// isTimeoutErr classifies deadline expiries for the timeout metric.
func isTimeoutErr(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readDeadliner is the optional connection capability per-request
// timeouts need; net.Conn, net.Pipe ends, faultnet.Conn and
// ThrottledConn all provide it.
type readDeadliner interface{ SetReadDeadline(time.Time) error }
