package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"time"
)

// RetryPolicy configures how a Client survives delivery failures: how
// long one request may take, how often it is retried, and how the
// retries back off. The zero value is the seed behaviour — no deadline,
// no retry, fail on the first I/O error — so existing callers are
// byte-for-byte unaffected.
//
// Only transport-level failures (write errors, read errors, timeouts,
// injected faults) are retried; protocol-level rejections (StatusNotFound,
// StatusBadReq) are deterministic and returned immediately. A failed
// request leaves the connection desynchronized, so a retry first
// re-establishes the connection through Client.Redial; without a Redial
// hook, transport-level failures are fatal exactly as in the zero policy.
type RetryPolicy struct {
	// MaxRetries is how many additional attempts follow a failed one.
	// 0 (default) disables retrying.
	MaxRetries int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Jitter randomizes that fraction of each backoff (default 0.2;
	// negative disables jitter entirely). Jitter draws come from a PRNG
	// seeded with Seed, so schedules are reproducible.
	Jitter float64
	// Timeout bounds one request/response exchange via a read deadline
	// on the connection (0 = none). Connections that do not implement
	// SetReadDeadline — strings readers in tests, say — silently run
	// without a deadline.
	Timeout time.Duration
	// Seed seeds the jitter PRNG.
	Seed int64
}

// withDefaults fills the documented defaults for enabled retrying.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 0
		return p
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// backoff returns the sleep before retry number attempt (0-based):
// BaseDelay·Multiplier^attempt capped at MaxDelay, with the Jitter
// fraction redrawn uniformly so synchronized clients spread out.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d = d*(1-p.Jitter) + rng.Float64()*d*p.Jitter
	}
	return time.Duration(d)
}

// statusError is a protocol-level failure: the response arrived intact
// but carried a non-OK status. The connection stays synchronized and the
// outcome is deterministic, so statusError is never retried.
type statusError struct {
	op     byte
	arg    uint32
	status byte
}

func (e *statusError) Error() string {
	if e.status == StatusNotFound {
		return fmt.Sprintf("transport: op %d arg %d: not found", e.op, e.arg)
	}
	return fmt.Sprintf("transport: op %d arg %d: status %d", e.op, e.arg, e.status)
}

// IsNotFound reports whether err is the server's StatusNotFound reply —
// the one failure that is semantic (the artifact does not exist) rather
// than transport-level.
func IsNotFound(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == StatusNotFound
}

// isTimeoutErr classifies deadline expiries for the timeout metric.
func isTimeoutErr(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readDeadliner is the optional connection capability per-request
// timeouts need; net.Conn, net.Pipe ends, faultnet.Conn and
// ThrottledConn all provide it.
type readDeadliner interface{ SetReadDeadline(time.Time) error }
