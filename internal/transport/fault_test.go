package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"dcsr/internal/faultnet"
	"dcsr/internal/obs"
)

// pipeDialer produces fresh client connections to srv over net.Pipe,
// optionally wrapped by a fault injector, and remembers them so the test
// can close whatever is left open.
type pipeDialer struct {
	t     *testing.T
	srv   *Server
	inj   *faultnet.Injector
	conns []io.Closer
}

func (d *pipeDialer) dial() (io.ReadWriter, error) {
	cconn, sconn := net.Pipe()
	go func() { _ = d.srv.ServeConn(sconn) }()
	d.conns = append(d.conns, cconn, sconn)
	if d.inj == nil {
		return cconn, nil
	}
	return d.inj.Wrap(cconn), nil
}

func (d *pipeDialer) cleanup() {
	for _, c := range d.conns {
		c.Close()
	}
}

// repeatedLabel returns a model label referenced by at least two segments,
// so degrade-then-lazy-retry is observable.
func repeatedLabel(t *testing.T, srv *Server) int {
	t.Helper()
	prep, _ := getFixture(t)
	seen := map[int]int{}
	for _, s := range prep.Manifest.Segments {
		if s.ModelLabel < 0 {
			continue
		}
		seen[s.ModelLabel]++
		if seen[s.ModelLabel] == 2 {
			return s.ModelLabel
		}
	}
	t.Skip("fixture has no repeated model label")
	return -1
}

// TestPlaySurvivesDroppedModelFetch is the tentpole acceptance test: the
// response to every fetch attempt of one model's first reference is
// dropped. The client must retry with backoff, reconnect each time,
// eventually degrade the label, keep playing unenhanced, and re-fetch the
// label successfully on its next reference.
func TestPlaySurvivesDroppedModelFetch(t *testing.T) {
	prep, frames := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	label := repeatedLabel(t, srv)
	const maxRetries = 2
	failuresLeft := maxRetries + 1 // exactly the first reference's attempts
	inj := faultnet.New(faultnet.Config{
		Decide: func(_ int, frame []byte) faultnet.Kind {
			// Plain and traced frames alike carry op at [4], arg at [5:9].
			if len(frame) >= reqFrameBytes && frame[4] == OpModel &&
				binary.BigEndian.Uint32(frame[5:]) == uint32(label) && failuresLeft > 0 {
				failuresLeft--
				return faultnet.KindDrop
			}
			return faultnet.KindNone
		},
	})
	d := &pipeDialer{t: t, srv: srv, inj: inj}
	defer d.cleanup()
	conn, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	client := NewClient(conn)
	client.Obs = o
	client.Redial = d.dial
	client.Retry = RetryPolicy{
		MaxRetries: maxRetries,
		BaseDelay:  time.Millisecond,
		MaxDelay:   4 * time.Millisecond,
		Jitter:     -1,
		Seed:       1,
	}

	out, stats, err := client.Play(true)
	if err != nil {
		t.Fatalf("Play aborted despite degradation: %v", err)
	}
	if len(out) != len(frames) {
		t.Fatalf("streamed %d frames, want %d", len(out), len(frames))
	}
	if stats.DegradedSegments != 1 {
		t.Errorf("DegradedSegments = %d, want 1", stats.DegradedSegments)
	}
	if failuresLeft != 0 {
		t.Errorf("injector has %d scheduled failures unconsumed", failuresLeft)
	}
	// Every attempt of the failed reference except the last triggers a
	// backoff+retry; each retry (and the next request after the final
	// failure) reconnects.
	if client.Retries != maxRetries {
		t.Errorf("Retries = %d, want %d", client.Retries, maxRetries)
	}
	if client.Reconnects != maxRetries+1 {
		t.Errorf("Reconnects = %d, want %d", client.Reconnects, maxRetries+1)
	}
	if client.StallTime <= 0 {
		t.Error("StallTime not accumulated across backoffs")
	}
	// Lazy retry: the label's second reference downloads it, so every
	// model is still fetched exactly once successfully.
	if stats.ModelDownloads != len(prep.Models) {
		t.Errorf("ModelDownloads = %d, want %d (degraded label not re-fetched)",
			stats.ModelDownloads, len(prep.Models))
	}
	snap := o.Metrics.Snapshot()
	for name, want := range map[string]int64{
		"transport_client_retries_total":    int64(client.Retries),
		"transport_client_reconnects_total": int64(client.Reconnects),
		"degraded_segments_total":           1,
		"model_fetch_failures_total":        1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["transport_client_timeouts_total"] != 0 {
		t.Errorf("drops misclassified as timeouts: %d", snap.Counters["transport_client_timeouts_total"])
	}
}

// TestPlayWithTimeout delays one response beyond the per-request deadline
// and asserts the client classifies it as a timeout, reconnects, and
// completes the exchange.
func TestPlayWithTimeout(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.New(faultnet.Config{
		Script: map[int]faultnet.Kind{0: faultnet.KindDelay},
		Delay:  300 * time.Millisecond,
	})
	d := &pipeDialer{t: t, srv: srv, inj: inj}
	defer d.cleanup()
	conn, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	client := NewClient(conn)
	client.Obs = o
	client.Redial = d.dial
	client.Retry = RetryPolicy{
		MaxRetries: 1,
		BaseDelay:  time.Millisecond,
		Jitter:     -1,
		Timeout:    30 * time.Millisecond,
	}
	wm, err := client.Manifest()
	if err != nil {
		t.Fatalf("manifest after timeout+retry: %v", err)
	}
	if len(wm.Segments) != len(prep.Segments) {
		t.Fatalf("manifest has %d segments, want %d", len(wm.Segments), len(prep.Segments))
	}
	if client.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", client.Timeouts)
	}
	if got := o.Metrics.Snapshot().Counters["transport_client_timeouts_total"]; got != 1 {
		t.Errorf("transport_client_timeouts_total = %d, want 1", got)
	}
}

// TestFaultsDisabledByteIdentical pins the zero-fault path: a client with
// a retry policy, a redial hook and a zero-config injector in the stack
// must behave byte-for-byte like the seed client.
func TestFaultsDisabledByteIdentical(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	play := func(inj *faultnet.Injector, pol RetryPolicy) ([]int, *PlayStats, int, int) {
		d := &pipeDialer{t: t, srv: srv, inj: inj}
		defer d.cleanup()
		conn, err := d.dial()
		if err != nil {
			t.Fatal(err)
		}
		client := NewClient(conn)
		client.Retry = pol
		client.Redial = d.dial
		out, stats, err := client.Play(true)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]int, len(out))
		for i, f := range out {
			for _, p := range f.Y {
				sums[i] += int(p)
			}
		}
		return sums, stats, client.BytesUp, client.BytesDown
	}
	plainSums, plainStats, plainUp, plainDown := play(nil, RetryPolicy{})
	wrapSums, wrapStats, wrapUp, wrapDown := play(
		faultnet.New(faultnet.Config{}),
		RetryPolicy{MaxRetries: 3, Timeout: 5 * time.Second, Seed: 7},
	)
	if !reflect.DeepEqual(plainSums, wrapSums) {
		t.Error("frame content differs between plain and fault-instrumented stacks")
	}
	if !reflect.DeepEqual(plainStats, wrapStats) {
		t.Errorf("stats differ: plain %+v, instrumented %+v", plainStats, wrapStats)
	}
	if plainUp != wrapUp || plainDown != wrapDown {
		t.Errorf("byte accounting differs: plain %d/%d, instrumented %d/%d",
			plainUp, plainDown, wrapUp, wrapDown)
	}
	if wrapStats.DegradedSegments != 0 {
		t.Errorf("DegradedSegments = %d with no faults", wrapStats.DegradedSegments)
	}
}

// TestRetryBackoffSchedule pins the exponential schedule: base 10ms,
// doubling, capped at 50ms, jitter disabled.
func TestRetryBackoffSchedule(t *testing.T) {
	inj := faultnet.New(faultnet.Config{
		Decide: func(int, []byte) faultnet.Kind { return faultnet.KindDrop },
	})
	dead := func() (io.ReadWriter, error) {
		return inj.Wrap(readWriter{strings.NewReader("")}), nil
	}
	conn, _ := dead()
	client := NewClient(conn)
	client.Redial = dead
	client.Retry = RetryPolicy{
		MaxRetries: 4,
		BaseDelay:  10 * time.Millisecond,
		Multiplier: 2,
		MaxDelay:   50 * time.Millisecond,
		Jitter:     -1,
	}
	var sleeps []time.Duration
	client.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	_, err := client.Manifest()
	if !errors.Is(err, faultnet.ErrInjected) {
		t.Fatalf("exhausted retries returned %v, want wrapped ErrInjected", err)
	}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond,
	}
	if !reflect.DeepEqual(sleeps, want) {
		t.Fatalf("backoff schedule %v, want %v", sleeps, want)
	}
	var total time.Duration
	for _, d := range want {
		total += d
	}
	if client.StallTime != total {
		t.Errorf("StallTime = %v, want %v", client.StallTime, total)
	}
}

// TestBackoffJitterBounds checks jittered backoffs stay within the
// documented band and reproduce under one seed.
func TestBackoffJitterBounds(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 3, BaseDelay: 100 * time.Millisecond, Jitter: 0.5}.withDefaults()
	schedule := func(seed int64) []time.Duration {
		c := &Client{Retry: RetryPolicy{Seed: seed}}
		var out []time.Duration
		for a := 0; a < 6; a++ {
			d := pol.backoff(a, c.jitterRNG())
			out = append(out, d)
			base := pol.BaseDelay << a
			if base > pol.MaxDelay {
				base = pol.MaxDelay
			}
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", a, d, base/2, base)
			}
		}
		return out
	}
	if !reflect.DeepEqual(schedule(3), schedule(3)) {
		t.Error("same seed produced different jitter schedules")
	}
}

// TestNotFoundNeverRetried pins that deterministic protocol rejections
// bypass the retry machinery entirely.
func TestNotFoundNeverRetried(t *testing.T) {
	prep, _ := getFixture(t)
	srv, err := NewServer(prep)
	if err != nil {
		t.Fatal(err)
	}
	d := &pipeDialer{t: t, srv: srv}
	defer d.cleanup()
	conn, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	client.Redial = d.dial
	client.Retry = RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond}
	_, err = client.Segment(9999)
	if err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	if !IsNotFound(err) {
		t.Errorf("IsNotFound(%v) = false, want true", err)
	}
	if client.Retries != 0 || client.Reconnects != 0 {
		t.Errorf("NotFound consumed retries (%d) / reconnects (%d)", client.Retries, client.Reconnects)
	}
	// The connection stays synchronized after the rejection.
	if _, err := client.Manifest(); err != nil {
		t.Fatalf("connection dead after NotFound: %v", err)
	}
}

// TestBrokenConnWithoutRedialFails pins the zero-Redial contract:
// transport failures stay fatal.
func TestBrokenConnWithoutRedialFails(t *testing.T) {
	inj := faultnet.New(faultnet.Config{
		Decide: func(int, []byte) faultnet.Kind { return faultnet.KindDrop },
	})
	client := NewClient(inj.Wrap(readWriter{strings.NewReader("")}))
	client.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Microsecond}
	_, err := client.Manifest()
	if err == nil {
		t.Fatal("broken connection without Redial succeeded")
	}
	if !strings.Contains(err.Error(), "Redial") {
		t.Errorf("error %q does not mention the missing Redial hook", err)
	}
}
