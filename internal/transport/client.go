package transport

import (
	"bytes"
	"fmt"
	"io"
	"net"

	"dcsr/internal/codec"
	"dcsr/internal/edsr"
	"dcsr/internal/nn"
	"dcsr/internal/obs"
	"dcsr/internal/video"
)

// Client fetches a dcSR stream over a connection. It is not safe for
// concurrent use (the protocol is strictly request/response per
// connection); open one client per goroutine.
type Client struct {
	conn io.ReadWriter

	// BytesDown counts payload plus framing bytes received.
	BytesDown int
	// BytesUp counts request bytes sent.
	BytesUp int

	// Log receives request failures and per-segment debug lines; nil
	// (the default) discards them — previously client errors were
	// silent.
	Log *obs.Logger
	// Obs records transport_client_requests_total and
	// transport_client_bytes_up/down_total; nil disables metrics.
	Obs *obs.Obs
}

// NewClient wraps an established connection (TCP, net.Pipe, throttled…).
func NewClient(conn io.ReadWriter) *Client { return &Client{conn: conn} }

// Dial connects to a Server over TCP.
func Dial(addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return NewClient(conn), conn, nil
}

func (c *Client) roundTrip(op byte, arg uint32) ([]byte, error) {
	if err := writeRequest(c.conn, op, arg); err != nil {
		c.Log.Error("transport: client write failed", "op", opName(op), "arg", arg, "err", err)
		return nil, err
	}
	c.BytesUp += reqFrameBytes
	c.Obs.Counter("transport_client_requests_total").Inc()
	c.Obs.Counter("transport_client_bytes_up_total").Add(reqFrameBytes)
	status, payload, err := readResponse(c.conn)
	if err != nil {
		c.Log.Error("transport: client read failed", "op", opName(op), "arg", arg, "err", err)
		return nil, err
	}
	c.BytesDown += respFrameBytes + len(payload)
	c.Obs.Counter("transport_client_bytes_down_total").Add(respFrameBytes + int64(len(payload)))
	switch status {
	case StatusOK:
		return payload, nil
	case StatusNotFound:
		err = fmt.Errorf("transport: op %d arg %d: not found", op, arg)
	default:
		err = fmt.Errorf("transport: op %d arg %d: status %d", op, arg, status)
	}
	c.Log.Warn("transport: request failed", "op", opName(op), "arg", arg, "status", status)
	return nil, err
}

// Manifest fetches and parses the stream manifest.
func (c *Client) Manifest() (*WireManifest, error) {
	data, err := c.roundTrip(OpManifest, 0)
	if err != nil {
		return nil, err
	}
	return DecodeWireManifest(data)
}

// Segment fetches segment i as a decodable sub-stream.
func (c *Client) Segment(i int) (*codec.Stream, error) {
	data, err := c.roundTrip(OpSegment, uint32(i))
	if err != nil {
		return nil, err
	}
	return codec.Unmarshal(data)
}

// Model fetches and deserializes micro model label into a ready model of
// the given configuration.
func (c *Client) Model(label int, cfg edsr.Config) (*edsr.Model, int, error) {
	data, err := c.roundTrip(OpModel, uint32(label))
	if err != nil {
		return nil, 0, err
	}
	m, err := edsr.New(cfg, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := nn.LoadWeights(bytes.NewReader(data), m.Params()); err != nil {
		return nil, 0, fmt.Errorf("transport: model %d: %w", label, err)
	}
	return m, len(data), nil
}

// PlayStats summarizes a streamed playback session.
type PlayStats struct {
	Segments       int
	ModelDownloads int
	CacheHits      int
	VideoBytes     int
	ModelBytes     int
	Enhanced       int
}

// Play streams the whole video segment by segment: fetch the sub-stream,
// fetch its micro model on cache miss (paper Algorithm 1), decode with the
// model patched into the decoder's I-frame hook, and append the frames.
// With enhance=false it plays the raw low-quality stream.
func (c *Client) Play(enhance bool) ([]*video.YUV, *PlayStats, error) {
	root := c.Obs.Start("client_play")
	defer root.End()
	wm, err := c.Manifest()
	if err != nil {
		return nil, nil, err
	}
	stats := &PlayStats{}
	cache := make(map[int]*edsr.Model)
	var out []*video.YUV
	for _, seg := range wm.Segments {
		sp := root.Child("segment_fetch")
		sp.Set("segment", seg.Index)
		sub, err := c.Segment(seg.Index)
		if err != nil {
			sp.End()
			return nil, nil, fmt.Errorf("transport: segment %d: %w", seg.Index, err)
		}
		stats.Segments++
		stats.VideoBytes += seg.Bytes
		c.Obs.Counter("segments_fetched_total").Inc()
		c.Obs.Counter("video_bytes_total").Add(int64(seg.Bytes))
		var model *edsr.Model
		if enhance && seg.ModelLabel >= 0 {
			if m, ok := cache[seg.ModelLabel]; ok {
				model = m
				stats.CacheHits++
				c.Obs.Counter("cache_hits_total").Inc()
				sp.Set("cache", "hit")
			} else {
				m, n, err := c.Model(seg.ModelLabel, wm.MicroConfig)
				if err != nil {
					sp.End()
					return nil, nil, err
				}
				cache[seg.ModelLabel] = m
				model = m
				stats.ModelDownloads++
				stats.ModelBytes += n
				c.Obs.Counter("cache_misses_total").Inc()
				c.Obs.Counter("model_bytes_total").Add(int64(n))
				sp.Set("cache", "miss")
				sp.Set("model_bytes", n)
			}
		}
		sp.End()
		c.Log.Debug("transport: segment fetched", "segment", seg.Index,
			"bytes", seg.Bytes, "model", seg.ModelLabel)
		dec := codec.Decoder{Mode: codec.PropagateDelta, Obs: c.Obs}
		if model != nil {
			m := model
			dec.Enhancer = codec.EnhancerFunc(func(_ int, f *video.YUV) *video.YUV {
				return m.EnhanceYUV(f)
			})
		}
		frames, err := dec.Decode(sub)
		if err != nil {
			return nil, nil, fmt.Errorf("transport: decoding segment %d: %w", seg.Index, err)
		}
		stats.Enhanced += dec.Stats.Enhanced
		out = append(out, frames...)
	}
	return out, stats, nil
}
