package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"dcsr/internal/codec"
	"dcsr/internal/edsr"
	"dcsr/internal/modelstore"
	"dcsr/internal/nn"
	"dcsr/internal/obs"
	"dcsr/internal/stream"
	"dcsr/internal/video"
)

// Client fetches a dcSR stream over a connection. It is not safe for
// concurrent use: the protocol is strictly request/response per
// connection, so exactly one goroutine may drive a Client at a time —
// open one client per goroutine. (The Server side is concurrent; the
// single-goroutine contract is per client connection.)
//
// The zero-configured client fails on the first I/O error, like the
// original implementation. Set Retry and Redial to survive flaky links:
// failed exchanges are retried with exponential backoff on a freshly
// dialed connection, per-request deadlines bound slow responses, and
// Play degrades gracefully when a micro-model fetch ultimately fails
// (the affected segments play unenhanced instead of aborting playback).
type Client struct {
	conn io.ReadWriter
	// broken marks the connection desynchronized after an I/O failure:
	// a response may still be in flight, so the next exchange must
	// reconnect before writing.
	broken bool

	// BytesDown counts payload plus framing bytes received.
	BytesDown int
	// BytesUp counts request bytes sent.
	BytesUp int

	// Retries, Timeouts and Reconnects mirror the obs counters
	// transport_client_{retries,timeouts,reconnects}_total for callers
	// without a metrics registry.
	Retries    int
	Timeouts   int
	Reconnects int
	// Sheds counts StatusRetryAfter rejections received from the
	// server's admission layer, mirroring transport_client_shed_total.
	// Each one backed off by at least the server's hint before retrying
	// (see RetryPolicy.ShedRetries).
	Sheds int
	// StallTime accumulates backoff sleeps — delivery time lost to
	// faults, the "stall" axis of the fault-injection experiment.
	StallTime time.Duration

	// Retry configures per-request deadlines and retry/backoff; the
	// zero value reproduces the original fail-fast behaviour.
	Retry RetryPolicy
	// Redial, when set, re-establishes the connection after an I/O
	// failure (the previous connection is closed when it implements
	// io.Closer). Without it, transport-level failures are fatal.
	Redial func() (io.ReadWriter, error)

	// CacheBudget bounds Play's micro-model cache in bytes of serialized
	// weights: past the budget the least-recently-used model is evicted
	// and its next reference re-downloads it (PlayStats.Evictions). 0 or
	// negative (the default) leaves the cache unbounded — the paper's
	// Algorithm 1 behaviour.
	CacheBudget int64
	// NoInt8 keeps Play on the float32 enhancement path even for models
	// whose manifest entry advertises int8 calibration (the precision
	// ablation). The default serves every int8-gated model on the
	// quantized kernels, armed with the origin's activation scales from
	// the manifest (ModelInfo.ActScales) so client and origin produce
	// bit-identical pixels.
	NoInt8 bool

	// Log receives request failures and per-segment debug lines; nil
	// (the default) discards them — previously client errors were
	// silent.
	Log *obs.Logger
	// Obs records transport_client_requests_total,
	// transport_client_bytes_up/down_total, the fault-tolerance
	// counters transport_client_{retries,timeouts,reconnects}_total,
	// the admission-shed counter transport_client_shed_total, the
	// model-stream counters modelstream_backbone_fetch_total,
	// modelstream_delta_bytes_total and modelstream_fallback_total
	// (manifests advertising a backbone only), and per-exchange
	// round-trip latency as both the lifetime
	// transport_client_rtt_seconds histogram and its rolling-window
	// twin transport_client_rtt_window_seconds; nil disables metrics.
	Obs *obs.Obs

	// TraceWire enables traced ('dcT2') request frames. ManifestCtx
	// sets it automatically when the server's manifest advertises
	// WireManifest.Trace; it stays false against an older server, so
	// every frame remains backward compatible. Tests (or callers that
	// negotiated capability out of band) may set it directly.
	TraceWire bool
	// MuxWire enables multiplexed ('dcT3') request frames — the framing
	// that carries Video routing. Unlike TraceWire it is NOT switched on
	// merely because the server advertises WireManifest.Mux: a client
	// streaming the default video keeps the classic framing it always
	// spoke (so frame-level tooling and wire-sniffing fault hooks see no
	// change), and SelectVideoCtx upgrades lazily the moment a
	// non-default video actually needs routing. The sequential Client
	// still issues one request at a time; MuxWire here buys video
	// routing and the mux response framing, not pipelining (see
	// MuxClient for that).
	MuxWire bool
	// Video routes requests at one of a multi-video server's hosted
	// streams (0, the default, is the first video registered). Set it via
	// SelectVideoCtx, or directly from a WireDirectory entry's ID.
	// Nonzero Video requires MuxWire — classic frames carry no routing.
	Video uint32
	// Trace, when non-nil, is the client-side span wire traces hang
	// off: every roundTrip opens an attempt-numbered child span under
	// it and — when TraceWire is set — stamps that child's identity
	// into the request frame, so the server span parents to the exact
	// attempt that reached it. Play manages Trace itself (the root for
	// the manifest, the per-segment span for segment/model fetches);
	// callers driving raw requests may set it around any exchange.
	Trace *obs.Span

	sleep  func(time.Duration) // test hook; time.Sleep when nil
	rng    *rand.Rand          // jitter PRNG, lazily seeded from Retry.Seed
	nextID uint32              // mux request ID counter
	muxOK  bool                // server advertised Mux (learned at manifest)
}

// NewClient wraps an established connection (TCP, net.Pipe, throttled,
// fault-injected…).
func NewClient(conn io.ReadWriter) *Client { return &Client{conn: conn} }

// Dial connects to a Server over TCP.
func Dial(addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return NewClient(conn), conn, nil
}

// sleepFor blocks for the backoff duration or until ctx is cancelled,
// whichever comes first.
func (c *Client) sleepFor(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		c.sleep(d) // test hook: instantaneous
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) jitterRNG() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Retry.Seed))
	}
	return c.rng
}

// reconnect replaces a broken connection through Redial, closing the old
// one so the peer's stale handler can unwind.
func (c *Client) reconnect() error {
	if c.Redial == nil {
		return errors.New("transport: connection broken and no Redial configured")
	}
	if cl, ok := c.conn.(io.Closer); ok {
		//lint:allow errcheck the conn is already known broken; closing is best-effort unwinding and the caller is about to redial
		cl.Close()
	}
	conn, err := c.Redial()
	if err != nil {
		c.Log.Error("transport: redial failed", "err", err)
		return fmt.Errorf("transport: redial: %w", err)
	}
	c.conn = conn
	c.broken = false
	c.Reconnects++
	c.Obs.Counter("transport_client_reconnects_total").Inc()
	c.Log.Info("transport: reconnected", "reconnects", c.Reconnects)
	return nil
}

// attempt performs one request/response exchange on the current
// connection, framing it traced when tc carries a trace ID.
// Transport-level failures mark the connection broken; protocol
// rejections come back as *statusError with the connection still usable.
func (c *Client) attempt(op byte, arg uint32, timeout time.Duration, tc TraceContext) ([]byte, error) {
	if timeout > 0 {
		if d, ok := c.conn.(readDeadliner); ok {
			if err := d.SetReadDeadline(time.Now().Add(timeout)); err == nil {
				//lint:allow errcheck clearing a deadline can only fail on a conn that is already broken, which the exchange itself reports
				defer d.SetReadDeadline(time.Time{})
			}
		}
	}
	var t0 time.Time
	if c.Obs != nil {
		t0 = time.Now()
	}
	var err error
	var reqBytes int64
	var reqID uint32
	if c.MuxWire {
		c.nextID++
		reqID = c.nextID
		reqBytes = muxReqFrameBytes
		err = writeRequestMux(c.conn, op, arg, c.Video, reqID, tc)
	} else if tc.TraceID != 0 {
		reqBytes = tracedReqFrameBytes
		err = writeRequestTraced(c.conn, op, arg, tc)
	} else {
		reqBytes = reqFrameBytes
		err = writeRequest(c.conn, op, arg)
	}
	if err != nil {
		c.broken = true
		c.Log.Error("transport: client write failed", "op", opName(op), "arg", arg, "err", err)
		return nil, err
	}
	c.BytesUp += int(reqBytes)
	c.Obs.Counter("transport_client_requests_total").Inc()
	c.Obs.Counter("transport_client_bytes_up_total").Add(reqBytes)
	var status byte
	var payload []byte
	var respBytes int
	if c.MuxWire {
		var gotID uint32
		gotID, status, payload, err = readResponseMux(c.conn)
		if err == nil && gotID != reqID {
			// A sequential client has exactly one request outstanding, so
			// a mismatched ID means the stream is desynchronized.
			err = fmt.Errorf("transport: response for request %d, expected %d", gotID, reqID)
		}
		respBytes = muxRespFrameBytes + len(payload)
	} else {
		status, payload, err = readResponse(c.conn)
		respBytes = respFrameBytes + len(payload)
	}
	if err != nil {
		c.broken = true
		c.Log.Error("transport: client read failed", "op", opName(op), "arg", arg, "err", err)
		return nil, err
	}
	c.BytesDown += respBytes
	c.Obs.Counter("transport_client_bytes_down_total").Add(int64(respBytes))
	if c.Obs != nil {
		rtt := time.Since(t0).Seconds()
		c.Obs.Histogram("transport_client_rtt_seconds").Observe(rtt)
		c.Obs.WindowedHistogram("transport_client_rtt_window_seconds").Observe(rtt)
	}
	if status == StatusOK {
		return payload, nil
	}
	se := &statusError{op: op, arg: arg, status: status}
	if status == StatusRetryAfter {
		se.hint = parseRetryAfter(payload)
	}
	c.Log.Warn("transport: request failed", "op", opName(op), "arg", arg, "status", status)
	return nil, se
}

// roundTrip drives one request through the retry state machine: attempt,
// classify the failure, back off, reconnect, try again — up to
// Retry.MaxRetries extra attempts for transport failures and
// Retry.ShedRetries for admission sheds (which keep the connection and
// back off by at least the server's hint). Cancellation is
// attempt-granular: ctx is checked before each attempt and interrupts
// backoff sleeps immediately; a ctx deadline additionally tightens the
// per-request read deadline, so an expiring context cuts short even an
// in-flight read.
func (c *Client) roundTrip(ctx context.Context, op byte, arg uint32) ([]byte, error) {
	pol := c.Retry.withDefaults()
	var lastErr error
	fails, sheds := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.broken {
			if err := c.reconnect(); err != nil {
				lastErr = err
			}
		}
		if !c.broken {
			attempt := fails + sheds
			timeout := pol.Timeout
			if dl, ok := ctx.Deadline(); ok {
				if rem := time.Until(dl); timeout == 0 || rem < timeout {
					timeout = rem
				}
			}
			// Each attempt gets its own child span under the active
			// trace, numbered so retries are distinguishable; when the
			// wire supports it, the span's identity rides the request
			// frame and becomes the server span's parent.
			asp := c.Trace.Child("attempt")
			asp.Set("op", opName(op))
			asp.Set("attempt", attempt)
			var tc TraceContext
			if c.TraceWire && asp != nil {
				tc = TraceContext{TraceID: asp.TraceID(), SpanID: asp.SpanID(), Attempt: uint8(attempt)}
			}
			payload, err := c.attempt(op, arg, timeout, tc)
			if err == nil {
				asp.Set("outcome", "ok")
				asp.End()
				return payload, nil
			}
			var se *statusError
			if errors.As(err, &se) {
				if se.status == StatusRetryAfter {
					// Admission shed: the connection is still
					// synchronized, so no redial — back off by at least
					// the server's hint and try again under the shed
					// budget.
					c.Sheds++
					c.Obs.Counter("transport_client_shed_total").Inc()
					asp.Set("outcome", "shed")
					asp.Set("hint", se.hint.String())
					asp.End()
					if sheds >= pol.shedBudget() {
						return nil, err
					}
					d := pol.backoff(sheds, c.jitterRNG())
					if d < se.hint {
						d = se.hint
					}
					sheds++
					c.StallTime += d
					c.Log.Warn("transport: request shed by server", "op", opName(op), "arg", arg,
						"hint", se.hint, "backoff", d)
					if err := c.sleepFor(ctx, d); err != nil {
						return nil, err
					}
					continue
				}
				asp.Set("outcome", "rejected")
				asp.Set("status", int(se.status))
				asp.End()
				return nil, err // deterministic rejection; never retried
			}
			if isTimeoutErr(err) {
				c.Timeouts++
				c.Obs.Counter("transport_client_timeouts_total").Inc()
			}
			asp.Set("outcome", "error")
			asp.Set("error", err.Error())
			asp.End()
			lastErr = err
		}
		if fails >= pol.MaxRetries {
			return nil, lastErr
		}
		c.Retries++
		c.Obs.Counter("transport_client_retries_total").Inc()
		d := pol.backoff(fails, c.jitterRNG())
		fails++
		c.StallTime += d
		c.Log.Warn("transport: retrying request", "op", opName(op), "arg", arg,
			"attempt", fails, "backoff", d, "err", lastErr)
		if err := c.sleepFor(ctx, d); err != nil {
			return nil, err
		}
	}
}

// Manifest fetches and parses the stream manifest.
func (c *Client) Manifest() (*WireManifest, error) {
	return c.ManifestCtx(context.Background())
}

// ManifestCtx is Manifest with per-request cancellation. It doubles as
// capability negotiation: when the server's manifest advertises trace
// support, TraceWire is switched on for every subsequent request (the
// first manifest request itself always goes out in the oldest framing
// the client currently speaks — capability is unknown until the reply
// arrives). Mux capability is only remembered here; the framing itself
// stays classic until SelectVideoCtx actually needs routing, so a
// default-video session is byte-for-byte the wire an old client speaks.
func (c *Client) ManifestCtx(ctx context.Context) (*WireManifest, error) {
	data, err := c.roundTrip(ctx, OpManifest, 0)
	if err != nil {
		return nil, err
	}
	wm, err := DecodeWireManifest(data)
	if err != nil {
		return nil, err
	}
	if wm.Trace {
		c.TraceWire = true
	}
	if wm.Mux {
		c.muxOK = true
	}
	return wm, nil
}

// Videos fetches the server's directory of hosted videos.
func (c *Client) Videos() (*WireDirectory, error) {
	return c.VideosCtx(context.Background())
}

// VideosCtx is Videos with per-request cancellation. OpVideos is served
// in any framing, but only a multi-video (Mux-advertising) server
// understands it — an older server answers StatusBadReq.
func (c *Client) VideosCtx(ctx context.Context) (*WireDirectory, error) {
	data, err := c.roundTrip(ctx, OpVideos, 0)
	if err != nil {
		return nil, err
	}
	return DecodeWireDirectory(data)
}

// SelectVideoCtx routes all subsequent requests at the hosted video with
// the given hex content digest, as listed in the OpVideos directory. The
// next ManifestCtx (and therefore PlayCtx) then fetches that video.
// Selecting a non-default video requires the server to speak mux framing
// — classic frames carry no routing — so call ManifestCtx first, or
// accept that only digest-of-video-0 can match before negotiation.
func (c *Client) SelectVideoCtx(ctx context.Context, digest string) error {
	dir, err := c.VideosCtx(ctx)
	if err != nil {
		return err
	}
	for _, v := range dir.Videos {
		if v.Digest != digest {
			continue
		}
		if v.ID != 0 && !c.MuxWire {
			if !c.muxOK {
				return fmt.Errorf("transport: video %s needs mux framing the server did not advertise", digest)
			}
			// Lazy upgrade: routing is the first thing that actually
			// needs mux frames, so this is where the framing switches.
			c.MuxWire = true
		}
		c.Video = v.ID
		c.Log.Debug("transport: video selected", "id", v.ID, "digest", digest)
		return nil
	}
	return fmt.Errorf("transport: video %s not hosted", digest)
}

// Segment fetches segment i as a decodable sub-stream.
func (c *Client) Segment(i int) (*codec.Stream, error) {
	return c.SegmentCtx(context.Background(), i)
}

// SegmentCtx is Segment with per-request cancellation.
func (c *Client) SegmentCtx(ctx context.Context, i int) (*codec.Stream, error) {
	data, err := c.roundTrip(ctx, OpSegment, uint32(i))
	if err != nil {
		return nil, err
	}
	return codec.Unmarshal(data)
}

// Model fetches and deserializes micro model label into a ready model of
// the given configuration.
func (c *Client) Model(label int, cfg edsr.Config) (*edsr.Model, int, error) {
	m, data, err := c.modelData(context.Background(), label, cfg)
	if err != nil {
		return nil, 0, err
	}
	return m, len(data), nil
}

// ModelCtx is Model with per-request cancellation.
func (c *Client) ModelCtx(ctx context.Context, label int, cfg edsr.Config) (*edsr.Model, int, error) {
	m, data, err := c.modelData(ctx, label, cfg)
	if err != nil {
		return nil, 0, err
	}
	return m, len(data), nil
}

// modelData fetches micro model label, returning both the deserialized
// model and the raw weights (what the byte-budgeted cache holds).
func (c *Client) modelData(ctx context.Context, label int, cfg edsr.Config) (*edsr.Model, []byte, error) {
	data, err := c.roundTrip(ctx, OpModel, uint32(label))
	if err != nil {
		return nil, nil, err
	}
	m, err := edsr.New(cfg, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := nn.LoadWeights(bytes.NewReader(data), m.Params()); err != nil {
		return nil, nil, fmt.Errorf("transport: model %d: %w", label, err)
	}
	return m, data, nil
}

// payloadDigest is the hex SHA-256 manifests use to identify model
// payloads end-to-end (stream.BackboneInfo.Digest, ModelInfo.Digest).
func payloadDigest(data []byte) string {
	d := sha256.Sum256(data)
	return hex.EncodeToString(d[:])
}

// modelStream assembles micro models client-side when the manifest
// advertises a model stream (WireManifest.Backbone): the shared backbone
// is fetched once per session via OpBackbone and verified against the
// manifest's digest, and each delta-shipped model is fetched as a dcW5
// delta via OpModelDelta, applied to the backbone, and verified against
// the manifest's full-payload digest before it is armed. Any assembly
// failure falls back to the complete OpModel fetch
// (modelstream_fallback_total) — the same path every model takes against
// a manifest without a backbone or a server predating the ops. It also
// owns the session's model-byte accounting, so ModelBytes always equals
// BackboneBytes + DeltaModelBytes + FullModelBytes.
type modelStream struct {
	c     *Client
	wm    *WireManifest
	stats *PlayStats
	infos map[int]stream.ModelInfo

	backbone []byte      // verified backbone payload; nil until fetched
	bbModel  *edsr.Model // deserialized backbone, the delta base

	bbFetch  *obs.Counter
	deltaCtr *obs.Counter
	fallback *obs.Counter
}

func newModelStream(c *Client, wm *WireManifest, stats *PlayStats) *modelStream {
	ms := &modelStream{c: c, wm: wm, stats: stats, infos: make(map[int]stream.ModelInfo)}
	if wm.Backbone == nil {
		return ms
	}
	for _, mi := range wm.Models {
		ms.infos[mi.Label] = mi
	}
	ms.bbFetch = c.Obs.Counter("modelstream_backbone_fetch_total")
	ms.deltaCtr = c.Obs.Counter("modelstream_delta_bytes_total")
	ms.fallback = c.Obs.Counter("modelstream_fallback_total")
	return ms
}

// fetch downloads (or assembles) one micro model, returning the model and
// the payload the byte-budgeted cache should hold — the wire download
// unit: the delta for delta-shipped labels, the backbone payload for the
// backbone's own label, the complete weights otherwise.
func (ms *modelStream) fetch(ctx context.Context, label int, cfg edsr.Config) (*edsr.Model, []byte, error) {
	mi, ok := ms.infos[label]
	if ms.wm.Backbone == nil || !ok || (!mi.Delta && label != ms.wm.Backbone.Label) {
		return ms.fullFetch(ctx, label, cfg)
	}
	m, data, err := ms.assemble(ctx, label, cfg, mi)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, err
		}
		ms.fallback.Inc()
		ms.c.Log.Warn("transport: model assembly failed; falling back to full fetch",
			"model", label, "err", err)
		return ms.fullFetch(ctx, label, cfg)
	}
	return m, data, nil
}

// fullFetch is the pre-model-stream path: the complete weights via
// OpModel, which every server serves for every label.
func (ms *modelStream) fullFetch(ctx context.Context, label int, cfg edsr.Config) (*edsr.Model, []byte, error) {
	m, data, err := ms.c.modelData(ctx, label, cfg)
	if err != nil {
		return nil, nil, err
	}
	ms.stats.FullModelBytes += len(data)
	ms.stats.ModelBytes += len(data)
	ms.c.Obs.Counter("model_bytes_total").Add(int64(len(data)))
	return m, data, nil
}

// getBackbone fetches and verifies the shared backbone, at most once per
// session. A digest mismatch rejects the payload (the next delta label
// retries the fetch, and the caller falls back to a full fetch meanwhile).
func (ms *modelStream) getBackbone(ctx context.Context, cfg edsr.Config) error {
	if ms.backbone != nil {
		return nil
	}
	data, err := ms.c.roundTrip(ctx, OpBackbone, 0)
	if err != nil {
		return err
	}
	if got := payloadDigest(data); got != ms.wm.Backbone.Digest {
		return fmt.Errorf("transport: backbone digest %s, manifest says %s", got, ms.wm.Backbone.Digest)
	}
	bb, err := edsr.New(cfg, 0)
	if err != nil {
		return err
	}
	if err := nn.LoadWeights(bytes.NewReader(data), bb.Params()); err != nil {
		return fmt.Errorf("transport: backbone weights: %w", err)
	}
	ms.backbone = data
	ms.bbModel = bb
	ms.bbFetch.Inc()
	ms.stats.BackboneBytes += len(data)
	ms.stats.ModelBytes += len(data)
	ms.c.Obs.Counter("model_bytes_total").Add(int64(len(data)))
	ms.c.Log.Debug("transport: backbone fetched", "bytes", len(data))
	return nil
}

// assemble serves a model-stream label: the backbone's own label costs no
// wire bytes beyond the (session-wide, once) backbone fetch; a delta
// label downloads its dcW5 payload and reconstructs. The assembled
// weights must hash to the manifest's full-payload digest — the same
// canonical bytes the origin serves whole via OpModel — before arming.
func (ms *modelStream) assemble(ctx context.Context, label int, cfg edsr.Config, mi stream.ModelInfo) (*edsr.Model, []byte, error) {
	if err := ms.getBackbone(ctx, cfg); err != nil {
		return nil, nil, err
	}
	if label == ms.wm.Backbone.Label {
		m, err := edsr.New(cfg, 0)
		if err != nil {
			return nil, nil, err
		}
		if err := nn.LoadWeights(bytes.NewReader(ms.backbone), m.Params()); err != nil {
			return nil, nil, fmt.Errorf("transport: backbone weights: %w", err)
		}
		return m, ms.backbone, nil
	}
	delta, err := ms.c.roundTrip(ctx, OpModelDelta, uint32(label))
	if err != nil {
		return nil, nil, err
	}
	m, err := edsr.New(cfg, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := nn.ApplyWeightsDelta(ms.bbModel.Params(), delta, m.Params()); err != nil {
		return nil, nil, fmt.Errorf("transport: model %d delta: %w", label, err)
	}
	if got := payloadDigest(nn.EncodeWeights(m.Params())); got != mi.Digest {
		return nil, nil, fmt.Errorf("transport: model %d assembled digest %s, manifest says %s", label, got, mi.Digest)
	}
	ms.stats.DeltaModelBytes += len(delta)
	ms.stats.ModelBytes += len(delta)
	ms.deltaCtr.Add(int64(len(delta)))
	ms.c.Obs.Counter("model_bytes_total").Add(int64(len(delta)))
	return m, delta, nil
}

// PlayStats summarizes a streamed playback session.
type PlayStats struct {
	Segments       int
	ModelDownloads int
	CacheHits      int
	VideoBytes     int
	ModelBytes     int
	// BackboneBytes, DeltaModelBytes and FullModelBytes break ModelBytes
	// down for model-stream sessions: the shared backbone (paid once per
	// session), the per-cluster dcW5 deltas, and models downloaded
	// complete (non-delta entries, pre-model-stream manifests, and
	// assembly fallbacks). They always sum to ModelBytes.
	BackboneBytes   int
	DeltaModelBytes int
	FullModelBytes  int
	Enhanced        int
	// EnhancedInt8 counts the subset of Enhanced frames served on the
	// int8 kernel path (models the manifest advertised as int8-gated,
	// calibrated client-side from the manifest's activation scales).
	EnhancedInt8 int
	// DegradedSegments counts segments played without SR because their
	// micro-model fetch ultimately failed (after the retry budget).
	// Degraded labels are retried lazily on their next reference, so a
	// transient outage degrades a bounded stretch of playback rather
	// than the rest of the session.
	DegradedSegments int
	// Evictions counts models dropped from the cache to stay within
	// Client.CacheBudget; each evicted label's next reference
	// re-downloads it.
	Evictions int
	// CacheBytes is the serialized model bytes resident when playback
	// finished (≤ CacheBudget when bounded).
	CacheBytes int64
}

// Play streams the whole video segment by segment: fetch the sub-stream,
// fetch its micro model on cache miss (paper Algorithm 1), decode with the
// model patched into the decoder's I-frame hook, and append the frames.
// With enhance=false it plays the raw low-quality stream.
//
// Failure semantics: a segment (or manifest) fetch that fails after the
// retry budget aborts the session — there is nothing to show without
// video bytes. A micro-model fetch that fails after the retry budget
// degrades instead of aborting: the segment plays unenhanced, the label
// is marked degraded (stats.DegradedSegments, degraded_segments_total),
// and the next segment referencing the label retries the download.
func (c *Client) Play(enhance bool) ([]*video.YUV, *PlayStats, error) {
	return c.PlayCtx(context.Background(), enhance)
}

// PlayCtx is Play with cancellation: ctx aborts between requests and
// interrupts retry backoff immediately (see roundTrip for granularity).
func (c *Client) PlayCtx(ctx context.Context, enhance bool) ([]*video.YUV, *PlayStats, error) {
	root := c.Obs.Start("client_play")
	defer root.End()
	// Requests issued inside this session stamp their trace identity
	// from the span driving them: the root for the manifest, the
	// per-segment span for segment and model fetches.
	c.Trace = root
	defer func() { c.Trace = nil }()
	wm, err := c.ManifestCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	stats := &PlayStats{}
	// Activation scales of the models the origin's quality gate admitted
	// to int8, keyed by label; a downloaded model with an entry here is
	// calibrated before use so it runs on the quantized kernels.
	int8Scales := map[int][]float32{}
	if !c.NoInt8 {
		for _, mi := range wm.Models {
			if mi.Int8 && len(mi.ActScales) > 0 {
				int8Scales[mi.Label] = mi.ActScales
			}
		}
	}
	// The byte-budgeted cache tracks serialized weights (the unit the
	// budget is denominated in); models holds the deserialized twins and
	// is pruned in lockstep via OnEvict.
	models := make(map[int]*edsr.Model)
	mcache := modelstore.NewBoundedCache(clientBudget(c.CacheBudget))
	mcache.Obs = c.Obs
	mcache.OnEvict = func(label int) { delete(models, label) }
	// Model-stream sessions cache wire-download units (deltas, the
	// backbone payload) and account them chunk-wise, deduping the runs of
	// bytes deltas share; ms degrades to the plain full-fetch path for
	// manifests without a backbone.
	ms := newModelStream(c, wm, stats)
	if wm.Backbone != nil {
		mcache.EnableChunked()
	}
	degraded := make(map[int]bool)
	var out []*video.YUV
	for _, seg := range wm.Segments {
		sp := root.Child("segment_fetch")
		sp.Set("segment", seg.Index)
		c.Trace = sp
		sub, err := c.SegmentCtx(ctx, seg.Index)
		if err != nil {
			sp.End()
			return nil, nil, fmt.Errorf("transport: segment %d: %w", seg.Index, err)
		}
		stats.Segments++
		stats.VideoBytes += seg.Bytes
		c.Obs.Counter("segments_fetched_total").Inc()
		c.Obs.WindowedCounter("segments_fetched_window_total").Inc()
		c.Obs.Counter("video_bytes_total").Add(int64(seg.Bytes))
		var model *edsr.Model
		if enhance && seg.ModelLabel >= 0 {
			if _, ok := mcache.Get(seg.ModelLabel); ok {
				model = models[seg.ModelLabel]
				stats.CacheHits++
				c.Obs.Counter("cache_hits_total").Inc()
				sp.Set("cache", "hit")
			} else {
				c.Obs.Counter("cache_misses_total").Inc()
				m, data, err := ms.fetch(ctx, seg.ModelLabel, wm.MicroConfig)
				if err != nil {
					if ctx.Err() != nil {
						sp.End()
						return nil, nil, ctx.Err()
					}
					// Graceful degradation: play this segment without SR
					// rather than aborting the session; the label stays
					// uncached so its next reference retries the fetch.
					stats.DegradedSegments++
					degraded[seg.ModelLabel] = true
					c.Obs.Counter("model_fetch_failures_total").Inc()
					c.Obs.Counter("degraded_segments_total").Inc()
					sp.Set("cache", "degraded")
					c.Log.Warn("transport: model fetch failed; playing segment without SR",
						"segment", seg.Index, "model", seg.ModelLabel, "err", err)
				} else {
					if sc, ok := int8Scales[seg.ModelLabel]; ok {
						// A bad scale vector (origin/config mismatch) is not
						// worth degrading over: the float32 path is always
						// available.
						if cerr := m.CalibrateFromScales(sc); cerr != nil {
							c.Log.Warn("transport: int8 calibration rejected; model stays float32",
								"model", seg.ModelLabel, "err", cerr)
						}
					}
					models[seg.ModelLabel] = m
					if evicted := mcache.Put(seg.ModelLabel, data); len(evicted) > 0 {
						sp.Set("evicted", len(evicted))
					}
					model = m
					stats.ModelDownloads++
					// Byte accounting (ModelBytes and its backbone/delta/full
					// breakdown, model_bytes_total) happens inside ms.fetch —
					// a delta label's first miss also pays the backbone.
					sp.Set("cache", "miss")
					sp.Set("model_bytes", len(data))
					if degraded[seg.ModelLabel] {
						delete(degraded, seg.ModelLabel)
						c.Log.Info("transport: degraded model recovered",
							"segment", seg.Index, "model", seg.ModelLabel)
					}
				}
			}
		}
		sp.End()
		c.Trace = root
		c.Log.Debug("transport: segment fetched", "segment", seg.Index,
			"bytes", seg.Bytes, "model", seg.ModelLabel)
		dec := codec.Decoder{Mode: codec.PropagateDelta, Obs: c.Obs}
		if model != nil {
			m := model
			dec.Enhancer = codec.PrecisionEnhancerFunc(func(_ int, f *video.YUV) (*video.YUV, codec.Precision) {
				if m.Int8Ready() {
					return m.EnhanceYUVInt8(f), codec.PrecisionInt8
				}
				return m.EnhanceYUV(f), codec.PrecisionFloat32
			})
		}
		frames, err := dec.Decode(sub)
		if err != nil {
			return nil, nil, fmt.Errorf("transport: decoding segment %d: %w", seg.Index, err)
		}
		stats.Enhanced += dec.Stats.Enhanced
		stats.EnhancedInt8 += dec.Stats.EnhancedInt8
		out = append(out, frames...)
	}
	stats.Evictions = mcache.Evictions
	stats.CacheBytes = mcache.Bytes()
	return out, stats, nil
}

// clientBudget maps Client.CacheBudget's zero-value-is-unbounded
// convention onto BoundedCache's (where 0 disables caching entirely).
func clientBudget(b int64) int64 {
	if b <= 0 {
		return -1
	}
	return b
}
