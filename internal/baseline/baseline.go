// Package baseline implements the two state-of-the-art systems the paper
// compares against (§4):
//
//   - NAS (Yeo et al., OSDI '18): one large content-aware SR model per
//     video, trained on all frames, applied to every decoded frame.
//   - NEMO (Yeo et al., MobiCom '20): one large model per video, applied
//     only to selected anchor frames. Per the paper's evaluation setup,
//     NEMO is simplified to enhance exactly the I frames.
//
// Both download their single model at the start of the stream; neither
// benefits from dcSR's per-cluster micro models or model caching.
package baseline

import (
	"fmt"

	"dcsr/internal/codec"
	"dcsr/internal/edsr"
	"dcsr/internal/nn"
	"dcsr/internal/video"
)

// Method selects a baseline behaviour.
type Method int

// The evaluated methods.
const (
	// NAS applies the big model to every frame (post-decode).
	NAS Method = iota
	// NEMO applies the big model to I frames inside the decode loop.
	NEMO
	// Low performs no enhancement (the "LOW" series of paper Fig 9).
	Low
)

// String names the method as in the paper's figures.
func (m Method) String() string {
	switch m {
	case NAS:
		return "NAS"
	case NEMO:
		return "NEMO"
	case Low:
		return "LOW"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config parameterizes baseline preparation.
type Config struct {
	Model edsr.Config // big-model architecture (one per video)
	Train edsr.TrainOptions
	// TrainFrameStride subsamples the video's frames for training pairs
	// (the big model trains on all frames; a stride keeps CPU training
	// tractable while preserving the all-frames character). Default 1.
	TrainFrameStride int
	Seed             int64
}

// Prepared bundles a trained baseline for one video.
type Prepared struct {
	Method     Method
	Model      *edsr.Model
	ModelBytes int
	Stream     *codec.Stream
	Train      *edsr.TrainResult
	TrainFLOPs float64
}

// Prepare trains the baseline's big model for one video. frames are the
// pristine source frames; st is the already-encoded low-quality stream the
// client will download (shared with dcSR for a like-for-like comparison).
func Prepare(method Method, frames []*video.YUV, st *codec.Stream, cfg Config) (*Prepared, error) {
	p := &Prepared{Method: method, Stream: st}
	if method == Low {
		return p, nil
	}
	if cfg.Model.Filters == 0 {
		cfg.Model = edsr.Config{Filters: 16, ResBlocks: 6}
	}
	if cfg.TrainFrameStride <= 0 {
		cfg.TrainFrameStride = 1
	}
	var dec codec.Decoder
	lowFrames, err := dec.Decode(st)
	if err != nil {
		return nil, fmt.Errorf("baseline: decoding stream: %w", err)
	}
	if len(lowFrames) != len(frames) {
		return nil, fmt.Errorf("baseline: stream has %d frames, source %d", len(lowFrames), len(frames))
	}
	var pairs []edsr.Pair
	for i := 0; i < len(frames); i += cfg.TrainFrameStride {
		pairs = append(pairs, edsr.Pair{Low: lowFrames[i].ToRGB(), High: frames[i].ToRGB()})
	}
	m, err := edsr.New(cfg.Model, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	opts := cfg.Train
	opts.Seed = cfg.Seed + 8
	tr, err := m.Train(pairs, opts)
	if err != nil {
		return nil, fmt.Errorf("baseline: training big model: %w", err)
	}
	p.Model = m
	p.ModelBytes = m.SizeBytes()
	p.Train = tr
	p.TrainFLOPs = tr.TrainFLOPs
	return p, nil
}

// PlayResult is a baseline playback outcome.
type PlayResult struct {
	Frames []*video.YUV
	Decode codec.DecodeStats
	// Inferences counts SR forward passes (NAS: every frame).
	Inferences int
	// TotalBytes is video bytes plus the single model download.
	TotalBytes int
}

// Play decodes and enhances per the method's schedule.
func (p *Prepared) Play() (*PlayResult, error) {
	res := &PlayResult{}
	dec := codec.Decoder{Mode: codec.PropagateDelta}
	if p.Method == NEMO {
		dec.Enhancer = codec.EnhancerFunc(func(_ int, f *video.YUV) *video.YUV {
			res.Inferences++
			return p.Model.EnhanceYUV(f)
		})
	}
	frames, err := dec.Decode(p.Stream)
	if err != nil {
		return nil, err
	}
	if p.Method == NAS {
		// NAS enhances every frame after decoding.
		for i, f := range frames {
			frames[i] = p.Model.EnhanceYUV(f)
			res.Inferences++
		}
	}
	res.Frames = frames
	res.Decode = dec.Stats
	res.TotalBytes = p.Stream.Bytes() + p.ModelBytes
	return res, nil
}

// EncodeModel serializes the big model (download size accounting).
func (p *Prepared) EncodeModel() []byte {
	if p.Model == nil {
		return nil
	}
	return nn.EncodeWeights(p.Model.Params())
}
