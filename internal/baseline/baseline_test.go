package baseline

import (
	"testing"

	"dcsr/internal/codec"
	"dcsr/internal/edsr"
	"dcsr/internal/quality"
	"dcsr/internal/video"
)

func testStream(t testing.TB) ([]*video.YUV, *codec.Stream) {
	t.Helper()
	clip := video.Generate(video.GenConfig{
		W: 64, H: 48, Seed: 31, NumScenes: 2, TotalCues: 4, MinFrames: 5, MaxFrames: 7,
	})
	frames := clip.YUVFrames()
	st, err := codec.Encode(frames, nil, 30, codec.EncoderConfig{QP: 47})
	if err != nil {
		t.Fatal(err)
	}
	return frames, st
}

func TestMethodString(t *testing.T) {
	if NAS.String() != "NAS" || NEMO.String() != "NEMO" || Low.String() != "LOW" {
		t.Fatal("method names wrong")
	}
}

func TestLowNeedsNoModel(t *testing.T) {
	frames, st := testStream(t)
	p, err := Prepare(Low, frames, st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != nil || p.ModelBytes != 0 {
		t.Fatal("LOW must not train a model")
	}
	res, err := p.Play()
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferences != 0 {
		t.Fatalf("LOW made %d inferences", res.Inferences)
	}
	if res.TotalBytes != st.Bytes() {
		t.Fatalf("LOW bytes %d != stream %d", res.TotalBytes, st.Bytes())
	}
	if len(res.Frames) != len(frames) {
		t.Fatalf("decoded %d frames", len(res.Frames))
	}
}

func TestNEMOEnhancesIFramesOnly(t *testing.T) {
	frames, st := testStream(t)
	p, err := Prepare(NEMO, frames, st, Config{
		Model: edsr.Config{Filters: 4, ResBlocks: 1},
		Train: edsr.TrainOptions{Steps: 40, BatchSize: 2, PatchSize: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Play()
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferences != st.CountType(codec.FrameI) {
		t.Fatalf("NEMO made %d inferences, want %d (I frames)", res.Inferences, st.CountType(codec.FrameI))
	}
	if res.TotalBytes != st.Bytes()+p.ModelBytes {
		t.Fatal("NEMO bytes must include its single model")
	}
}

func TestNASEnhancesEveryFrame(t *testing.T) {
	frames, st := testStream(t)
	p, err := Prepare(NAS, frames, st, Config{
		Model:            edsr.Config{Filters: 4, ResBlocks: 1},
		Train:            edsr.TrainOptions{Steps: 40, BatchSize: 2, PatchSize: 16},
		TrainFrameStride: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Play()
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferences != len(frames) {
		t.Fatalf("NAS made %d inferences, want %d (every frame)", res.Inferences, len(frames))
	}
}

func TestNASImprovesOverLow(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	frames, st := testStream(t)
	nas, err := Prepare(NAS, frames, st, Config{
		Model:            edsr.Config{Filters: 8, ResBlocks: 2},
		Train:            edsr.TrainOptions{Steps: 200, BatchSize: 2, PatchSize: 16},
		TrainFrameStride: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Prepare(Low, frames, st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nasRes, err := nas.Play()
	if err != nil {
		t.Fatal(err)
	}
	lowRes, err := low.Play()
	if err != nil {
		t.Fatal(err)
	}
	var nasPSNR, lowPSNR float64
	for i := range frames {
		nasPSNR += quality.PSNRYUV(frames[i], nasRes.Frames[i])
		lowPSNR += quality.PSNRYUV(frames[i], lowRes.Frames[i])
	}
	nasPSNR /= float64(len(frames))
	lowPSNR /= float64(len(frames))
	t.Logf("NAS %.2f dB vs LOW %.2f dB", nasPSNR, lowPSNR)
	if nasPSNR <= lowPSNR {
		t.Errorf("NAS %.2f dB did not beat LOW %.2f dB", nasPSNR, lowPSNR)
	}
}

func TestPrepareTrainingAccounting(t *testing.T) {
	frames, st := testStream(t)
	p, err := Prepare(NEMO, frames, st, Config{
		Model: edsr.Config{Filters: 4, ResBlocks: 1},
		Train: edsr.TrainOptions{Steps: 20, BatchSize: 2, PatchSize: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.TrainFLOPs <= 0 {
		t.Fatal("training FLOPs not accounted")
	}
	if p.ModelBytes != p.Model.SizeBytes() {
		t.Fatal("ModelBytes inconsistent")
	}
	if len(p.EncodeModel()) != p.ModelBytes {
		t.Fatal("EncodeModel length inconsistent")
	}
}
