package video

import (
	"fmt"
	"math"
	"math/rand"
)

// The procedural generator below stands in for the paper's YouTube corpus.
// A Clip is a sequence of scenes; each scene has its own color palette,
// textured background, and a set of moving sprites. Scenes recur according
// to a schedule, which is the property dcSR exploits: recurring scenes
// produce visually similar I-frames that cluster together, so their
// segments share one micro SR model and the client's model cache gets hits.

// SceneSpec parameterizes one visual scene.
type SceneSpec struct {
	Seed      int64   // texture/palette seed; scenes with equal seeds look alike
	Sprites   int     // number of moving objects
	Motion    float64 // sprite speed in pixels/frame at 1080p-equivalent scale
	NoiseFreq float64 // background texture spatial frequency
	Contrast  float64 // texture contrast in [0,1]
}

// Cue schedules Frames consecutive frames of scene index Scene.
type Cue struct {
	Scene  int
	Frames int
}

// Clip is a generated video: an ordered frame supply plus its ground truth
// scene labels (used by tests to validate clustering against the known
// generative structure).
type Clip struct {
	W, H   int
	FPS    int
	Scenes []SceneSpec
	Sched  []Cue

	frames []*RGB
	labels []int
}

// GenConfig configures clip generation.
type GenConfig struct {
	W, H      int
	FPS       int
	Seed      int64
	NumScenes int   // distinct scenes to synthesize
	Cues      []Cue // explicit schedule; if nil, a recurring schedule is built
	TotalCues int   // when Cues is nil: number of scheduled segments
	MinFrames int   // min frames per cue (default 12)
	MaxFrames int   // max frames per cue (default 36)
	Motion    float64
}

// Generate renders a full clip deterministically from cfg.Seed.
func Generate(cfg GenConfig) *Clip {
	if cfg.W <= 0 || cfg.H <= 0 {
		panic("video: Generate requires positive dimensions")
	}
	if cfg.FPS == 0 {
		cfg.FPS = 30
	}
	if cfg.NumScenes == 0 {
		cfg.NumScenes = 4
	}
	if cfg.MinFrames == 0 {
		cfg.MinFrames = 12
	}
	if cfg.MaxFrames == 0 {
		cfg.MaxFrames = 36
	}
	if cfg.Motion == 0 {
		cfg.Motion = 2.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	scenes := make([]SceneSpec, cfg.NumScenes)
	for i := range scenes {
		scenes[i] = SceneSpec{
			Seed:      rng.Int63(),
			Sprites:   2 + rng.Intn(4),
			Motion:    cfg.Motion * (0.5 + rng.Float64()),
			NoiseFreq: 6 + 10*rng.Float64(),
			Contrast:  0.55 + 0.4*rng.Float64(),
		}
	}
	cues := cfg.Cues
	if cues == nil {
		n := cfg.TotalCues
		if n == 0 {
			n = 2 * cfg.NumScenes
		}
		cues = make([]Cue, n)
		for i := range cues {
			// Bias toward revisiting earlier scenes so long-term recurrence
			// (paper §3.2.2) is present: ~50% of cues repeat a prior scene.
			var s int
			if i > 0 && rng.Float64() < 0.5 {
				s = cues[rng.Intn(i)].Scene
			} else {
				s = rng.Intn(cfg.NumScenes)
			}
			// Never repeat the immediately previous scene (a cut must change
			// the picture, or the splitter has nothing to detect).
			if i > 0 && s == cues[i-1].Scene {
				s = (s + 1) % cfg.NumScenes
			}
			cues[i] = Cue{Scene: s, Frames: cfg.MinFrames + rng.Intn(cfg.MaxFrames-cfg.MinFrames+1)}
		}
	}
	c := &Clip{W: cfg.W, H: cfg.H, FPS: cfg.FPS, Scenes: scenes, Sched: cues}
	c.render(rng)
	return c
}

func (c *Clip) render(rng *rand.Rand) {
	type sprite struct {
		x, y, vx, vy, r float64
		cr, cg, cb      uint8
	}
	// Per-scene sprite state persists across recurrences but keeps moving
	// with global time, so a scene's later occurrences are similar to — but
	// not identical with — its first (same palette/texture, shifted objects).
	sprites := make([][]sprite, len(c.Scenes))
	for si, sc := range c.Scenes {
		srng := rand.New(rand.NewSource(sc.Seed))
		ss := make([]sprite, sc.Sprites)
		for i := range ss {
			ang := srng.Float64() * 2 * math.Pi
			speed := sc.Motion * float64(c.W) / 1920.0 * (0.5 + srng.Float64())
			ss[i] = sprite{
				x: srng.Float64() * float64(c.W), y: srng.Float64() * float64(c.H),
				vx: math.Cos(ang) * speed, vy: math.Sin(ang) * speed,
				r:  float64(c.W) * (0.03 + 0.08*srng.Float64()),
				cr: uint8(40 + srng.Intn(215)), cg: uint8(40 + srng.Intn(215)), cb: uint8(40 + srng.Intn(215)),
			}
		}
		sprites[si] = ss
	}
	_ = rng
	for _, cue := range c.Sched {
		sc := c.Scenes[cue.Scene]
		bg := renderBackground(c.W, c.H, sc)
		for f := 0; f < cue.Frames; f++ {
			frame := bg.Clone()
			ss := sprites[cue.Scene]
			for i := range ss {
				sp := &ss[i]
				drawDisc(frame, sp.x, sp.y, sp.r, sp.cr, sp.cg, sp.cb)
				sp.x += sp.vx
				sp.y += sp.vy
				if sp.x < 0 || sp.x >= float64(c.W) {
					sp.vx = -sp.vx
					sp.x += 2 * sp.vx
				}
				if sp.y < 0 || sp.y >= float64(c.H) {
					sp.vy = -sp.vy
					sp.y += 2 * sp.vy
				}
			}
			c.frames = append(c.frames, frame)
			c.labels = append(c.labels, cue.Scene)
		}
	}
}

// renderBackground draws the scene's static backdrop: a two-color gradient
// modulated by value noise.
func renderBackground(w, h int, sc SceneSpec) *RGB {
	srng := rand.New(rand.NewSource(sc.Seed ^ 0x5e3779b97f4a7c15))
	c0 := [3]float64{float64(srng.Intn(200)), float64(srng.Intn(200)), float64(srng.Intn(200))}
	c1 := [3]float64{55 + float64(srng.Intn(200)), 55 + float64(srng.Intn(200)), 55 + float64(srng.Intn(200))}
	frame := NewRGB(w, h)
	noise := newValueNoise(sc.Seed)
	fx := sc.NoiseFreq / float64(w)
	fy := sc.NoiseFreq / float64(h)
	for y := 0; y < h; y++ {
		g := float64(y) / float64(h)
		for x := 0; x < w; x++ {
			n := noise.at(float64(x)*fx, float64(y)*fy)
			t := g*(1-sc.Contrast) + n*sc.Contrast
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			i := (y*w + x) * 3
			frame.Pix[i] = clamp8(int32(c0[0] + (c1[0]-c0[0])*t))
			frame.Pix[i+1] = clamp8(int32(c0[1] + (c1[1]-c0[1])*t))
			frame.Pix[i+2] = clamp8(int32(c0[2] + (c1[2]-c0[2])*t))
		}
	}
	return frame
}

func drawDisc(f *RGB, cx, cy, r float64, cr, cg, cb uint8) {
	x0 := int(math.Max(0, cx-r))
	x1 := int(math.Min(float64(f.W-1), cx+r))
	y0 := int(math.Max(0, cy-r))
	y1 := int(math.Min(float64(f.H-1), cy+r))
	r2 := r * r
	for y := y0; y <= y1; y++ {
		dy := float64(y) - cy
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			if dx*dx+dy*dy <= r2 {
				f.Set(x, y, cr, cg, cb)
			}
		}
	}
}

// valueNoise is a small, seedable 2-D value-noise field with two octaves.
type valueNoise struct{ seed int64 }

func newValueNoise(seed int64) valueNoise { return valueNoise{seed: seed} }

func (v valueNoise) lattice(ix, iy int64) float64 {
	h := uint64(ix)*0x9e3779b97f4a7c15 ^ uint64(iy)*0xbf58476d1ce4e5b9 ^ uint64(v.seed)
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return float64(h%4096) / 4096.0
}

func (v valueNoise) octave(x, y float64) float64 {
	ix, iy := int64(math.Floor(x)), int64(math.Floor(y))
	fx, fy := x-float64(ix), y-float64(iy)
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	v00 := v.lattice(ix, iy)
	v10 := v.lattice(ix+1, iy)
	v01 := v.lattice(ix, iy+1)
	v11 := v.lattice(ix+1, iy+1)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

func (v valueNoise) at(x, y float64) float64 {
	// Three octaves: the finest one injects the high-frequency detail that
	// aggressive quantization destroys — the content SR must recover.
	return 0.5*v.octave(x, y) + 0.3*v.octave(x*2.7+13.1, y*2.7+7.9) + 0.2*v.octave(x*7.1+31.7, y*7.1+17.3)
}

// Frames returns the clip's RGB frames in display order.
func (c *Clip) Frames() []*RGB { return c.frames }

// Labels returns the generating scene index of every frame.
func (c *Clip) Labels() []int { return c.labels }

// Len returns the number of frames.
func (c *Clip) Len() int { return len(c.frames) }

// Duration returns the clip duration in seconds.
func (c *Clip) Duration() float64 { return float64(len(c.frames)) / float64(c.FPS) }

// YUVFrames converts all frames to YUV 4:2:0.
func (c *Clip) YUVFrames() []*YUV {
	out := make([]*YUV, len(c.frames))
	for i, f := range c.frames {
		out[i] = f.ToYUV()
	}
	return out
}

// String summarizes the clip.
func (c *Clip) String() string {
	return fmt.Sprintf("clip %dx%d@%dfps, %d frames, %d scenes, %d cues",
		c.W, c.H, c.FPS, len(c.frames), len(c.Scenes), len(c.Sched))
}

// Genre presets approximate the paper's "6 representative videos from
// different genres": they vary motion, scene count, and texture complexity.
type Genre int

// Genres used by the evaluation harness.
const (
	GenreSports Genre = iota
	GenreMusic
	GenreDocumentary
	GenreGaming
	GenreNews
	GenreAnimation
	numGenres
)

// String returns the genre's human-readable name.
func (g Genre) String() string {
	switch g {
	case GenreSports:
		return "sports"
	case GenreMusic:
		return "music"
	case GenreDocumentary:
		return "documentary"
	case GenreGaming:
		return "gaming"
	case GenreNews:
		return "news"
	case GenreAnimation:
		return "animation"
	default:
		return fmt.Sprintf("genre(%d)", int(g))
	}
}

// AllGenres lists the six evaluation genres.
func AllGenres() []Genre {
	return []Genre{GenreSports, GenreMusic, GenreDocumentary, GenreGaming, GenreNews, GenreAnimation}
}

// GenreConfig returns a GenConfig preset for genre g at the given frame
// size, with per-genre motion and scene statistics.
func GenreConfig(g Genre, w, h int, seed int64) GenConfig {
	cfg := GenConfig{W: w, H: h, FPS: 30, Seed: seed + int64(g)*1009}
	switch g {
	case GenreSports:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 5, 14, 5.0
	case GenreMusic:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 6, 16, 3.0
	case GenreDocumentary:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 4, 10, 1.0
	case GenreGaming:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 5, 12, 4.0
	case GenreNews:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 3, 10, 0.8
	case GenreAnimation:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 5, 12, 2.5
	default:
		cfg.NumScenes, cfg.TotalCues, cfg.Motion = 4, 10, 2.0
	}
	return cfg
}
