package video

import "math"

// ResizeRGB scales an RGB frame to (w, h) with bilinear interpolation.
// It is used to produce the low-resolution inputs SR models are trained on
// and to downsample I-frames for VAE feature extraction.
func ResizeRGB(src *RGB, w, h int) *RGB {
	if src.W == w && src.H == h {
		return src.Clone()
	}
	dst := NewRGB(w, h)
	xr := float64(src.W) / float64(w)
	yr := float64(src.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := (float64(y)+0.5)*yr - 0.5
		y0 := int(math.Floor(sy))
		fy := sy - float64(y0)
		y1 := y0 + 1
		if y0 < 0 {
			y0, y1, fy = 0, 0, 0
		}
		if y1 >= src.H {
			y1 = src.H - 1
			if y0 >= src.H {
				y0 = src.H - 1
			}
		}
		for x := 0; x < w; x++ {
			sx := (float64(x)+0.5)*xr - 0.5
			x0 := int(math.Floor(sx))
			fx := sx - float64(x0)
			x1 := x0 + 1
			if x0 < 0 {
				x0, x1, fx = 0, 0, 0
			}
			if x1 >= src.W {
				x1 = src.W - 1
				if x0 >= src.W {
					x0 = src.W - 1
				}
			}
			for c := 0; c < 3; c++ {
				p00 := float64(src.Pix[(y0*src.W+x0)*3+c])
				p01 := float64(src.Pix[(y0*src.W+x1)*3+c])
				p10 := float64(src.Pix[(y1*src.W+x0)*3+c])
				p11 := float64(src.Pix[(y1*src.W+x1)*3+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				v := top + (bot-top)*fy
				dst.Pix[(y*w+x)*3+c] = clamp8(int32(math.Round(v)))
			}
		}
	}
	return dst
}

// BicubicResizeRGB scales an RGB frame to (w, h) with Catmull-Rom bicubic
// interpolation — the reference upscaler SR quality is compared against
// (the "LOW" series in paper Fig 9 is bicubic-upscaled low-quality video).
func BicubicResizeRGB(src *RGB, w, h int) *RGB {
	if src.W == w && src.H == h {
		return src.Clone()
	}
	dst := NewRGB(w, h)
	xr := float64(src.W) / float64(w)
	yr := float64(src.H) / float64(h)
	cubic := func(t float64) float64 {
		// Catmull-Rom kernel (a = -0.5).
		a := -0.5
		t = math.Abs(t)
		switch {
		case t <= 1:
			return (a+2)*t*t*t - (a+3)*t*t + 1
		case t < 2:
			return a*t*t*t - 5*a*t*t + 8*a*t - 4*a
		default:
			return 0
		}
	}
	clampi := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for y := 0; y < h; y++ {
		sy := (float64(y)+0.5)*yr - 0.5
		y0 := int(math.Floor(sy))
		fy := sy - float64(y0)
		var wy [4]float64
		for i := 0; i < 4; i++ {
			wy[i] = cubic(float64(i-1) - fy)
		}
		for x := 0; x < w; x++ {
			sx := (float64(x)+0.5)*xr - 0.5
			x0 := int(math.Floor(sx))
			fx := sx - float64(x0)
			var wx [4]float64
			for i := 0; i < 4; i++ {
				wx[i] = cubic(float64(i-1) - fx)
			}
			for c := 0; c < 3; c++ {
				var acc, wsum float64
				for j := 0; j < 4; j++ {
					yy := clampi(y0+j-1, 0, src.H-1)
					for i := 0; i < 4; i++ {
						xx := clampi(x0+i-1, 0, src.W-1)
						wgt := wy[j] * wx[i]
						acc += wgt * float64(src.Pix[(yy*src.W+xx)*3+c])
						wsum += wgt
					}
				}
				dst.Pix[(y*w+x)*3+c] = clamp8(int32(math.Round(acc / wsum)))
			}
		}
	}
	return dst
}

// ResizeYUV scales a YUV frame via RGB round-trip bilinear resampling.
// Target dimensions must be even.
func ResizeYUV(src *YUV, w, h int) *YUV {
	if src.W == w && src.H == h {
		return src.Clone()
	}
	return ResizeRGB(src.ToRGB(), w, h).ToYUV()
}
