// Package video provides the raw-video substrate for the dcSR
// reproduction: planar YUV 4:2:0 and interleaved RGB frame types, BT.601
// color conversion, bilinear/bicubic resampling, frame differencing, and a
// deterministic procedural video generator that stands in for the paper's
// YouTube corpus (see DESIGN.md §1 for the substitution rationale).
package video

import "fmt"

// YUV is a planar YUV 4:2:0 frame (the format held in an H.264 decoder's
// decoded picture buffer). Chroma planes are half resolution in both
// dimensions; W and H must therefore be even.
type YUV struct {
	W, H    int
	Y, U, V []uint8
}

// NewYUV allocates a black 4:2:0 frame (Y=0 is black-ish; chroma neutral).
func NewYUV(w, h int) *YUV {
	if w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: YUV420 dimensions must be even, got %dx%d", w, h))
	}
	f := &YUV{W: w, H: h, Y: make([]uint8, w*h), U: make([]uint8, w*h/4), V: make([]uint8, w*h/4)}
	for i := range f.U {
		f.U[i] = 128
		f.V[i] = 128
	}
	return f
}

// Clone returns a deep copy of the frame.
func (f *YUV) Clone() *YUV {
	c := &YUV{W: f.W, H: f.H,
		Y: append([]uint8(nil), f.Y...),
		U: append([]uint8(nil), f.U...),
		V: append([]uint8(nil), f.V...)}
	return c
}

// ChromaW returns the chroma plane width.
func (f *YUV) ChromaW() int { return f.W / 2 }

// ChromaH returns the chroma plane height.
func (f *YUV) ChromaH() int { return f.H / 2 }

// RGB is an interleaved 8-bit RGB frame (the format micro SR models accept;
// the client converts DPB frames YUV→RGB before inference and back after,
// per paper Fig 6).
type RGB struct {
	W, H int
	Pix  []uint8 // len = W*H*3, row-major, R G B per pixel
}

// NewRGB allocates a black RGB frame.
func NewRGB(w, h int) *RGB {
	return &RGB{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// Clone returns a deep copy of the frame.
func (f *RGB) Clone() *RGB {
	return &RGB{W: f.W, H: f.H, Pix: append([]uint8(nil), f.Pix...)}
}

// At returns the pixel at (x, y).
func (f *RGB) At(x, y int) (r, g, b uint8) {
	i := (y*f.W + x) * 3
	return f.Pix[i], f.Pix[i+1], f.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (f *RGB) Set(x, y int, r, g, b uint8) {
	i := (y*f.W + x) * 3
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
}

func clamp8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// ToRGB converts a YUV 4:2:0 frame to RGB using BT.601 full-range
// coefficients (the conversion the dcSR client performs before SR).
func (f *YUV) ToRGB() *RGB {
	out := NewRGB(f.W, f.H)
	cw := f.ChromaW()
	for y := 0; y < f.H; y++ {
		cy := y / 2
		for x := 0; x < f.W; x++ {
			Y := int32(f.Y[y*f.W+x])
			U := int32(f.U[cy*cw+x/2]) - 128
			V := int32(f.V[cy*cw+x/2]) - 128
			// Fixed-point BT.601: R = Y + 1.402 V; G = Y − 0.344 U − 0.714 V; B = Y + 1.772 U
			r := Y + (1436*V)>>10
			g := Y - (352*U)>>10 - (731*V)>>10
			b := Y + (1815*U)>>10
			i := (y*f.W + x) * 3
			out.Pix[i] = clamp8(r)
			out.Pix[i+1] = clamp8(g)
			out.Pix[i+2] = clamp8(b)
		}
	}
	return out
}

// ToYUV converts an RGB frame to planar YUV 4:2:0 (BT.601 full range),
// averaging each 2×2 block for the chroma planes.
func (f *RGB) ToYUV() *YUV {
	w, h := f.W, f.H
	if w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: ToYUV requires even dimensions, got %dx%d", w, h))
	}
	out := NewYUV(w, h)
	cw := w / 2
	// Luma.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 3
			r, g, b := int32(f.Pix[i]), int32(f.Pix[i+1]), int32(f.Pix[i+2])
			Y := (306*r + 601*g + 117*b) >> 10
			out.Y[y*w+x] = clamp8(Y)
		}
	}
	// Chroma, subsampled 2×2.
	for cy := 0; cy < h/2; cy++ {
		for cx := 0; cx < w/2; cx++ {
			var ur, ug, ub int32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					i := ((cy*2+dy)*w + cx*2 + dx) * 3
					ur += int32(f.Pix[i])
					ug += int32(f.Pix[i+1])
					ub += int32(f.Pix[i+2])
				}
			}
			ur, ug, ub = ur/4, ug/4, ub/4
			U := ((-173*ur - 339*ug + 512*ub) >> 10) + 128
			V := ((512*ur - 429*ug - 83*ub) >> 10) + 128
			out.U[cy*cw+cx] = clamp8(U)
			out.V[cy*cw+cx] = clamp8(V)
		}
	}
	return out
}

// MeanAbsDiff returns the mean absolute luma difference between two frames
// of identical dimensions. It is the signal the shot-based splitter
// thresholds to detect scene changes (paper §3.1.1).
func MeanAbsDiff(a, b *YUV) float64 {
	if a.W != b.W || a.H != b.H {
		panic("video: MeanAbsDiff dimension mismatch")
	}
	var sum int64
	for i, v := range a.Y {
		d := int64(v) - int64(b.Y[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Y))
}
