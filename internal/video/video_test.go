package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewYUVNeutralChroma(t *testing.T) {
	f := NewYUV(16, 16)
	if f.ChromaW() != 8 || f.ChromaH() != 8 {
		t.Fatalf("chroma dims %dx%d", f.ChromaW(), f.ChromaH())
	}
	for _, v := range f.U {
		if v != 128 {
			t.Fatal("U plane not neutral")
		}
	}
}

func TestNewYUVOddDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewYUV(15,16) did not panic")
		}
	}()
	NewYUV(15, 16)
}

func TestRGBSetAt(t *testing.T) {
	f := NewRGB(4, 4)
	f.Set(2, 3, 10, 20, 30)
	r, g, b := f.At(2, 3)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = (%d,%d,%d)", r, g, b)
	}
}

func TestColorConversionRoundTrip(t *testing.T) {
	// RGB→YUV→RGB must be close to identity for smooth content (chroma is
	// subsampled, so pixel-exact equality is not expected on edges).
	rng := rand.New(rand.NewSource(1))
	f := NewRGB(32, 32)
	// Smooth gradient with mild noise.
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			f.Set(x, y, uint8(40+4*x+rng.Intn(3)), uint8(30+5*y%200), uint8(100+2*x))
		}
	}
	back := f.ToYUV().ToRGB()
	var mse float64
	for i := range f.Pix {
		d := float64(f.Pix[i]) - float64(back.Pix[i])
		mse += d * d
	}
	mse /= float64(len(f.Pix))
	psnr := 10 * math.Log10(255*255/math.Max(mse, 1e-9))
	if psnr < 35 {
		t.Fatalf("RGB→YUV→RGB PSNR %.1f dB < 35", psnr)
	}
}

func TestGrayConversionExactness(t *testing.T) {
	// Pure gray has no chroma; luma round trip should be near-exact.
	f := NewRGB(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			v := uint8(16*y + x)
			f.Set(x, y, v, v, v)
		}
	}
	back := f.ToYUV().ToRGB()
	for i := range f.Pix {
		d := int(f.Pix[i]) - int(back.Pix[i])
		if d < -3 || d > 3 {
			t.Fatalf("gray pixel %d drifted by %d", i, d)
		}
	}
}

func TestYUVConversionBounds(t *testing.T) {
	// Extreme RGB values must convert without over/underflow artifacts.
	f := func(r, g, b uint8) bool {
		img := NewRGB(2, 2)
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				img.Set(x, y, r, g, b)
			}
		}
		yuv := img.ToYUV()
		back := yuv.ToRGB()
		// Round trip of a constant image should stay within a small error.
		r2, g2, b2 := back.At(0, 0)
		return absInt(int(r)-int(r2)) <= 6 && absInt(int(g)-int(g2)) <= 6 && absInt(int(b)-int(b2)) <= 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewYUV(16, 16)
	b := NewYUV(16, 16)
	if d := MeanAbsDiff(a, b); d != 0 {
		t.Fatalf("identical frames diff %v", d)
	}
	for i := range b.Y {
		b.Y[i] = 10
	}
	if d := MeanAbsDiff(a, b); d != 10 {
		t.Fatalf("diff = %v, want 10", d)
	}
}

func TestResizeRGBIdentity(t *testing.T) {
	f := NewRGB(8, 8)
	f.Set(3, 3, 200, 100, 50)
	same := ResizeRGB(f, 8, 8)
	for i := range f.Pix {
		if f.Pix[i] != same.Pix[i] {
			t.Fatal("identity resize changed pixels")
		}
	}
}

func TestResizePreservesConstant(t *testing.T) {
	for _, resize := range []func(*RGB, int, int) *RGB{ResizeRGB, BicubicResizeRGB} {
		f := NewRGB(12, 10)
		for i := range f.Pix {
			f.Pix[i] = 77
		}
		out := resize(f, 30, 20)
		for i, v := range out.Pix {
			if v < 75 || v > 79 {
				t.Fatalf("constant image resample drifted at %d: %d", i, v)
			}
		}
		down := resize(f, 5, 4)
		for i, v := range down.Pix {
			if v < 75 || v > 79 {
				t.Fatalf("constant image downsample drifted at %d: %d", i, v)
			}
		}
	}
}

func TestResizeDownUpRecoversSmooth(t *testing.T) {
	// A smooth gradient should survive 2× down/up within a few dB of
	// perfection.
	f := NewRGB(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			f.Set(x, y, uint8(2*x+40), uint8(3*y+20), uint8(x+y))
		}
	}
	back := ResizeRGB(ResizeRGB(f, 32, 24), 64, 48)
	var mse float64
	for i := range f.Pix {
		d := float64(f.Pix[i]) - float64(back.Pix[i])
		mse += d * d
	}
	mse /= float64(len(f.Pix))
	if psnr := 10 * math.Log10(255*255/math.Max(mse, 1e-9)); psnr < 35 {
		t.Fatalf("down/up PSNR %.1f dB < 35 on smooth gradient", psnr)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{W: 32, H: 32, Seed: 9, NumScenes: 3, TotalCues: 5, MinFrames: 4, MaxFrames: 6}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Frames() {
		fa, fb := a.Frames()[i], b.Frames()[i]
		for j := range fa.Pix {
			if fa.Pix[j] != fb.Pix[j] {
				t.Fatalf("frame %d differs at byte %d", i, j)
			}
		}
	}
}

func TestGenerateSceneStructure(t *testing.T) {
	clip := Generate(GenConfig{W: 32, H: 32, Seed: 11, NumScenes: 3, TotalCues: 8, MinFrames: 4, MaxFrames: 6})
	if clip.Len() == 0 {
		t.Fatal("empty clip")
	}
	labels := clip.Labels()
	if len(labels) != clip.Len() {
		t.Fatalf("labels %d != frames %d", len(labels), clip.Len())
	}
	// Consecutive cues must have different scenes (a cut changes content).
	cueStarts := 0
	prev := -1
	for _, c := range clip.Sched {
		if c.Scene == prev {
			t.Fatal("adjacent cues share a scene; no visual cut")
		}
		prev = c.Scene
		cueStarts++
	}
	if cueStarts != 8 {
		t.Fatalf("expected 8 cues, got %d", cueStarts)
	}
	// Frames within one scene should differ less than frames across scenes.
	yuv := clip.YUVFrames()
	var intra, inter []float64
	for i := 1; i < clip.Len(); i++ {
		d := MeanAbsDiff(yuv[i-1], yuv[i])
		if labels[i-1] == labels[i] {
			intra = append(intra, d)
		} else {
			inter = append(inter, d)
		}
	}
	if len(inter) == 0 || len(intra) == 0 {
		t.Fatal("degenerate schedule")
	}
	if mean(intra) >= mean(inter) {
		t.Fatalf("intra-scene diff %.2f >= inter-scene diff %.2f", mean(intra), mean(inter))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSceneRecurrenceProducesSimilarFrames(t *testing.T) {
	clip := Generate(GenConfig{
		W: 32, H: 32, Seed: 13, NumScenes: 2,
		Cues:      []Cue{{0, 5}, {1, 5}, {0, 5}},
		MinFrames: 5, MaxFrames: 5,
	})
	frames := clip.YUVFrames()
	// First frame of cue 0 and first frame of cue 2 share scene 0.
	same := MeanAbsDiff(frames[0], frames[10])
	diff := MeanAbsDiff(frames[0], frames[5])
	if same >= diff {
		t.Fatalf("recurring scene diff %.2f >= different scene diff %.2f", same, diff)
	}
}

func TestGenreConfigsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range AllGenres() {
		if seen[g.String()] {
			t.Fatalf("duplicate genre name %q", g)
		}
		seen[g.String()] = true
		cfg := GenreConfig(g, 64, 48, 1)
		if cfg.W != 64 || cfg.H != 48 || cfg.NumScenes == 0 || cfg.Motion == 0 {
			t.Fatalf("genre %s produced bad config %+v", g, cfg)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 genres, got %d", len(seen))
	}
}

func TestClipAccessors(t *testing.T) {
	clip := Generate(GenConfig{W: 32, H: 32, FPS: 24, Seed: 17, NumScenes: 2, TotalCues: 3, MinFrames: 4, MaxFrames: 4})
	if clip.Duration() != float64(clip.Len())/24.0 {
		t.Fatalf("Duration %.3f inconsistent", clip.Duration())
	}
	if clip.String() == "" {
		t.Fatal("empty String()")
	}
	yuv := clip.YUVFrames()
	if len(yuv) != clip.Len() {
		t.Fatalf("YUVFrames %d != %d", len(yuv), clip.Len())
	}
}
