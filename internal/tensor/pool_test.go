package tensor

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// withProcs runs fn with GOMAXPROCS temporarily set to p and the worker
// pool cycled around it, so the pool is sized for p inside fn and reset
// to the ambient size afterwards.
func withProcs(t *testing.T, p int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(p)
	ShutdownPool()
	defer func() {
		runtime.GOMAXPROCS(prev)
		ShutdownPool()
	}()
	fn()
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	withProcs(t, 4, func() {
		for _, n := range []int{1, 2, 3, 7, 64, 1000} {
			hits := make([]int32, n)
			parallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d: index %d executed %d times", n, i, h)
				}
			}
		}
	})
}

// TestParallelForNested checks the claim-based scheduler is deadlock-free
// when every worker is itself inside a parallelFor (the submitter always
// claims unowned chunks, so progress never depends on a free worker).
func TestParallelForNested(t *testing.T) {
	withProcs(t, 4, func() {
		var total atomic.Int64
		parallelFor(8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				parallelFor(16, func(l2, h2 int) {
					total.Add(int64(h2 - l2))
				})
			}
		})
		if total.Load() != 8*16 {
			t.Fatalf("nested parallelFor executed %d inner indices, want %d", total.Load(), 8*16)
		}
	})
}

func TestPoolShutdownRestart(t *testing.T) {
	withProcs(t, 4, func() {
		ShutdownPool()
		if n := PoolWorkers(); n != 0 {
			t.Fatalf("PoolWorkers after shutdown = %d, want 0", n)
		}
		parallelFor(64, func(lo, hi int) {})
		if n := PoolWorkers(); n != 4 {
			t.Fatalf("PoolWorkers after first kernel = %d, want 4", n)
		}
		ShutdownPool()
		if n := PoolWorkers(); n != 0 {
			t.Fatalf("PoolWorkers after second shutdown = %d, want 0", n)
		}
		// Restart is lazy and transparent.
		parallelFor(64, func(lo, hi int) {})
		if n := PoolWorkers(); n != 4 {
			t.Fatalf("PoolWorkers after restart = %d, want 4", n)
		}
	})
}

// TestMatMulDeterministicAcrossWorkerCounts pins the bit-determinism
// contract: the same inputs produce identical bits at 1 worker and at 4.
func TestMatMulDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, k, n := 33, 50, 41
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	serial := make([]float32, m*n)
	parallel := make([]float32, m*n)
	withProcs(t, 1, func() { MatMul(a, b, serial, m, k, n) })
	withProcs(t, 4, func() { MatMul(a, b, parallel, m, k, n) })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("MatMul element %d differs across worker counts: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
