package tensor

// MatMul computes out(m×n) = a(m×k) * b(k×n). The out slice must have
// length m*n; it is fully overwritten.
func MatMul(a, b, out []float32, m, k, n int) { matmul(a, b, out, m, k, n) }

// MatMulAT computes out(k×n) = aᵀ * b where a is (m×k) and b is (m×n),
// i.e. out[r][j] = Σ_i a[i][r] * b[i][j]. The out slice is overwritten.
func MatMulAT(a, b, out []float32, m, k, n int) { matmulTA(a, b, out, m, k, n) }

// MatMulBT computes out(m×k) = a(m×n) * bᵀ where b is (k×n),
// i.e. out[i][r] = Σ_j a[i][j] * b[r][j]. The out slice is overwritten.
func MatMulBT(a, b, out []float32, m, n, k int) {
	parallelFor(m, func(lo, hi int) {
		gemmBTRows(a, b, out, lo, hi, n, k)
	})
}

// ParallelFor runs fn over disjoint chunks of [0, n) on all available CPUs
// and waits for completion. It is exported for use by other internal
// packages with embarrassingly parallel per-row work (color conversion,
// motion search, SSIM windows).
func ParallelFor(n int, fn func(lo, hi int)) { parallelFor(n, fn) }
