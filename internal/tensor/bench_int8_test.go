package tensor

import (
	"math/rand"
	"testing"
)

// Int8 twins of the float32 kernel benchmarks, at the same dcSR-1 body
// shapes, so the quantization speedup is a one-to-one comparison.

func benchMatsInt8(n int) (w, rec []int8, scales, bias, out []float32) {
	rng := rand.New(rand.NewSource(1))
	scales = make([]float32, benchM)
	for i := range scales {
		scales[i] = 1e-4
	}
	return randInt8Slice(rng, benchM*benchK), randInt8Slice(rng, n*benchK),
		scales, randSlice(rng, benchM), make([]float32, benchM*n)
}

func BenchmarkGEMMInt8(b *testing.B) {
	w, rec, scales, bias, out := benchMatsInt8(benchN)
	wp, wsum, rp, rsum, g := packOperands(w, rec, benchM, benchK, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemmInt8Rows(wp, wsum, rp, rsum, out, benchM, g, benchN, 0, benchN, scales, bias, true)
	}
}

// BenchmarkGEMMInt8Packed includes per-call record packing, the upper
// bound on what a consumer that cannot share packed sections would pay.
func BenchmarkGEMMInt8Packed(b *testing.B) {
	w, rec, scales, bias, out := benchMatsInt8(benchN)
	wp, wsum, rp, rsum, g := packOperands(w, rec, benchM, benchK, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packInt8HighLanes(rec, benchN, benchK, rp, rsum)
		gemmInt8Rows(wp, wsum, rp, rsum, out, benchM, g, benchN, 0, benchN, scales, bias, true)
	}
}

func BenchmarkGEMMInt8Ref(b *testing.B) {
	w, rec, scales, bias, out := benchMatsInt8(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmulInt8Ref(w, rec, out, benchM, benchK, benchN, scales, bias, true)
	}
}

func BenchmarkConv2DInferInt8270p(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	spec := ConvSpec{InC: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	cc := makeInt8ConvCase(rng, 1, 270, 480, spec)
	out := Conv2DInferInt8(cc.xq, 1, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = Conv2DInferInt8(cc.xq, 1, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, out)
	}
}

// BenchmarkPackSectionsInt8270p measures the band-expansion cost the
// conv pays instead of im2row: packed sections for 16 input rows at the
// dcSR-1 body shape.
func BenchmarkPackSectionsInt8270p(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	spec := ConvSpec{InC: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	xq := randInt8Slice(rng, 16*270*480)
	gs := packedGroups(16 * 3)
	dst := make([]uint64, 16*480*gs)
	sums := make([]uint64, 16*480)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packSectionsInt8(xq, 16, 270, 480, spec, 0, 16, dst, sums)
	}
}
