package tensor

import "runtime"

// ConvSpec describes a 2-D convolution: square kernel of size K with stride
// S and zero padding P, mapping InC input channels to OutC output channels.
type ConvSpec struct {
	InC, OutC int
	K         int
	Stride    int
	Pad       int
}

// OutSize returns the spatial output size for an input of size (h, w).
func (c ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*c.Pad-c.K)/c.Stride + 1
	ow = (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// im2col expands input x (C,H,W) into a column matrix of shape
// (C*K*K, OH*OW) stored in col.
func im2col(x []float32, c, h, w int, spec ConvSpec, col []float32) {
	oh, _ := spec.OutSize(h, w)
	im2colRange(x, c, h, w, spec, 0, oh, col)
}

// im2colRange expands only output rows [oy0, oy1) of the convolution
// into a compact column matrix of shape (C*K*K, (oy1-oy0)*OW) stored in
// col. Banding the expansion this way keeps the scratch footprint of a
// full-frame convolution bounded by the band size instead of the frame
// size, which is what makes the alloc-free inference path viable at
// 1080p (a full-frame column matrix there is over a gigabyte).
func im2colRange(x []float32, c, h, w int, spec ConvSpec, oy0, oy1 int, col []float32) {
	_, ow := spec.OutSize(h, w)
	k, s, p := spec.K, spec.Stride, spec.Pad
	bandCols := (oy1 - oy0) * ow
	idx := 0
	for ch := 0; ch < c; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for oy := oy0; oy < oy1; oy++ {
					iy := oy*s + ky - p
					rowBase := idx + (oy-oy0)*ow
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							col[rowBase+ox] = 0
						}
						continue
					}
					src := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*s + kx - p
						if ix < 0 || ix >= w {
							col[rowBase+ox] = 0
						} else {
							col[rowBase+ox] = src[ix]
						}
					}
				}
				idx += bandCols
			}
		}
	}
}

// col2im is the adjoint of im2col: it accumulates the column matrix back
// into an image gradient of shape (C,H,W).
func col2im(col []float32, c, h, w int, spec ConvSpec, x []float32) {
	oh, ow := spec.OutSize(h, w)
	k, s, p := spec.K, spec.Stride, spec.Pad
	idx := 0
	for ch := 0; ch < c; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*s + ky - p
					if iy < 0 || iy >= h {
						continue
					}
					rowBase := idx + oy*ow
					dst := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*s + kx - p
						if ix >= 0 && ix < w {
							dst[ix] += col[rowBase+ox]
						}
					}
				}
				idx += oh * ow
			}
		}
	}
}

// matmul computes out = a(m×k) * b(k×n), parallelized over rows of a.
func matmul(a, b, out []float32, m, k, n int) {
	parallelFor(m, func(lo, hi int) {
		gemmRows(a, b, out, lo, hi, k, n, n, nil, false)
	})
}

// matmulTA computes out = aᵀ * b where a is (m×k) and b is (m×n):
// out[kk][j] = Σ_i a[i][kk] * b[i][j]. Parallelized over rows of out.
func matmulTA(a, b, out []float32, m, k, n int) {
	parallelFor(k, func(lo, hi int) {
		gemmTARows(a, b, out, lo, hi, m, k, n)
	})
}

// bandFloatBudget caps the im2col scratch for one inference band, in
// float32 elements (2^18 floats = 1 MiB). The resulting band height
// depends only on the convolution geometry — never on GOMAXPROCS or the
// worker schedule — so banded outputs are bit-identical across runs and
// across machines with different core counts.
const bandFloatBudget = 1 << 18

// Conv2DInfer computes a batched 2-D convolution for inference with the
// bias addition and (optionally) ReLU fused into the GEMM epilogue. The
// result is written into out, which is grown/reshaped as needed via
// Ensure and returned (pass nil to allocate on first use). Unlike
// Conv2DForward it materializes no full-frame column matrix: the input
// is expanded band-by-band into pooled scratch, so steady-state calls
// allocate nothing. Outputs are bitwise identical to Conv2DForward
// followed by separate bias and ReLU passes.
func Conv2DInfer(x, w, b *Tensor, spec ConvSpec, relu bool, out *Tensor) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != spec.InC {
		panic("tensor: Conv2DInfer channel mismatch")
	}
	oh, ow := spec.OutSize(h, wd)
	out = Ensure(out, n, spec.OutC, oh, ow)
	colRows := spec.InC * spec.K * spec.K
	band := bandFloatBudget / (colRows * ow)
	if band < 1 {
		band = 1
	}
	if band > oh {
		band = oh
	}
	numBands := (oh + band - 1) / band
	a := convInferArgs{
		x: x.Data, w: w.Data, out: out.Data,
		c: c, h: h, wd: wd, spec: spec, relu: relu,
		oh: oh, ow: ow, band: band, colRows: colRows, numBands: numBands,
	}
	if b != nil {
		a.bias = b.Data
	}
	if runtime.GOMAXPROCS(0) <= 1 {
		// Closure-free serial path: with one worker the call performs
		// zero heap allocations (the steady-state inference contract).
		for i := 0; i < n; i++ {
			convInferBands(a, i, 0, numBands)
		}
		return out
	}
	// The closures capture a branch-local copy so `a` itself never
	// escapes and the serial path above stays allocation-free.
	ap := a
	if n == 1 {
		parallelFor(numBands, func(lo, hi int) { convInferBands(ap, 0, lo, hi) })
	} else {
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				convInferBands(ap, i, 0, ap.numBands)
			}
		})
	}
	return out
}

// convInferArgs carries the precomputed geometry of one Conv2DInfer call
// so band execution needs no closures (a by-value struct keeps the
// serial path allocation-free).
type convInferArgs struct {
	x, w, bias, out []float32
	c, h, wd        int
	spec            ConvSpec
	relu            bool
	oh, ow          int
	band, colRows   int
	numBands        int
}

// convInferBands runs output-row bands [lo, hi) of batch element i
// through im2colRange and the fused GEMM, using pooled scratch.
func convInferBands(a convInferArgs, i, lo, hi int) {
	planeIn := a.c * a.h * a.wd
	planeOut := a.spec.OutC * a.oh * a.ow
	xi := a.x[i*planeIn : (i+1)*planeIn]
	oi := a.out[i*planeOut : (i+1)*planeOut]
	colBuf := getScratch(a.colRows * a.band * a.ow)
	col := *colBuf
	for bi := lo; bi < hi; bi++ {
		oy0 := bi * a.band
		oy1 := oy0 + a.band
		if oy1 > a.oh {
			oy1 = a.oh
		}
		bandCols := (oy1 - oy0) * a.ow
		im2colRange(xi, a.c, a.h, a.wd, a.spec, oy0, oy1, col[:a.colRows*bandCols])
		gemmRows(a.w, col, oi[oy0*a.ow:], 0, a.spec.OutC, a.colRows, bandCols, a.oh*a.ow, a.bias, a.relu)
	}
	putScratch(colBuf)
}

// Conv2DForward computes a batched 2-D convolution for training.
//
//	x: (N, InC, H, W),  w: (OutC, InC, K, K),  b: (OutC) or nil
//
// It returns the output (N, OutC, OH, OW) and the im2col buffers for each
// batch element, which the backward pass reuses to avoid recomputation.
// The bias is fused into the GEMM epilogue; batch elements run in
// parallel (single-element batches parallelize over output channels
// instead). Use Conv2DInfer on the inference path — it skips the column
// buffers entirely.
func Conv2DForward(x, w, b *Tensor, spec ConvSpec) (out *Tensor, cols [][]float32) {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != spec.InC {
		panic("tensor: Conv2DForward channel mismatch")
	}
	oh, ow := spec.OutSize(h, wd)
	out = New(n, spec.OutC, oh, ow)
	colRows := spec.InC * spec.K * spec.K
	colCols := oh * ow
	cols = make([][]float32, n)
	var bias []float32
	if b != nil {
		bias = b.Data
	}
	if n == 1 {
		col := make([]float32, colRows*colCols)
		im2col(x.Data, c, h, wd, spec, col)
		cols[0] = col
		parallelFor(spec.OutC, func(lo, hi int) {
			gemmRows(w.Data, col, out.Data, lo, hi, colRows, colCols, colCols, bias, false)
		})
		return out, cols
	}
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			col := make([]float32, colRows*colCols)
			im2col(x.Data[i*c*h*wd:(i+1)*c*h*wd], c, h, wd, spec, col)
			cols[i] = col
			gemmRows(w.Data, col, out.Data[i*spec.OutC*colCols:], 0, spec.OutC, colRows, colCols, colCols, bias, false)
		}
	})
	return out, cols
}

// Conv2DBackward computes gradients for a convolution given the upstream
// gradient gy (N, OutC, OH, OW), the saved im2col buffers, the input shape,
// and the weights. It returns gradX and accumulates into gw and gb (which
// must be pre-allocated to the weight/bias shapes). The per-batch column
// gradient and weight-gradient staging buffers come from the scratch
// arena, so repeated training steps do not re-allocate them.
func Conv2DBackward(gy *Tensor, cols [][]float32, xShape []int, w, gw, gb *Tensor, spec ConvSpec) (gx *Tensor) {
	n, c, h, wd := xShape[0], xShape[1], xShape[2], xShape[3]
	oh, ow := spec.OutSize(h, wd)
	colRows := spec.InC * spec.K * spec.K
	colCols := oh * ow
	gx = New(n, c, h, wd)
	gcolBuf := getScratch(colRows * colCols)
	gwBuf := getScratch(len(gw.Data))
	gcol, gwTmp := *gcolBuf, *gwBuf
	for i := 0; i < n; i++ {
		gyi := gy.Data[i*spec.OutC*colCols : (i+1)*spec.OutC*colCols]
		// gw[oc][r] += Σ_j gy[oc][j] * col[r][j]
		convGradWeights(gyi, cols[i], gwTmp, spec.OutC, colRows, colCols)
		for j, v := range gwTmp {
			gw.Data[j] += v
		}
		if gb != nil {
			for oc := 0; oc < spec.OutC; oc++ {
				var s float32
				plane := gyi[oc*colCols : (oc+1)*colCols]
				for _, v := range plane {
					s += v
				}
				gb.Data[oc] += s
			}
		}
		// gcol (colRows × colCols) = Wᵀ (colRows × OutC) * gy_i
		matmulTA(w.Data, gyi, gcol, spec.OutC, colRows, colCols)
		col2im(gcol, c, h, wd, spec, gx.Data[i*c*h*wd:(i+1)*c*h*wd])
	}
	putScratch(gwBuf)
	putScratch(gcolBuf)
	return gx
}

// convGradWeights computes gw[oc][r] = Σ_j gy[oc][j] * col[r][j],
// i.e. gw = gy(OutC×colCols) * colᵀ, parallelized over output channels.
func convGradWeights(gy, col, gw []float32, outC, colRows, colCols int) {
	parallelFor(outC, func(lo, hi int) {
		gemmBTRows(gy, col, gw, lo, hi, colCols, colRows)
	})
}
