package tensor

import (
	"runtime"
	"sync"
)

// ConvSpec describes a 2-D convolution: square kernel of size K with stride
// S and zero padding P, mapping InC input channels to OutC output channels.
type ConvSpec struct {
	InC, OutC int
	K         int
	Stride    int
	Pad       int
}

// OutSize returns the spatial output size for an input of size (h, w).
func (c ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*c.Pad-c.K)/c.Stride + 1
	ow = (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// im2col expands input x (C,H,W starting at offset into x.Data given base)
// into a column matrix of shape (C*K*K, OH*OW) stored in col.
func im2col(x []float32, c, h, w int, spec ConvSpec, col []float32) {
	oh, ow := spec.OutSize(h, w)
	k, s, p := spec.K, spec.Stride, spec.Pad
	idx := 0
	for ch := 0; ch < c; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*s + ky - p
					rowBase := idx + oy*ow
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							col[rowBase+ox] = 0
						}
						continue
					}
					src := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*s + kx - p
						if ix < 0 || ix >= w {
							col[rowBase+ox] = 0
						} else {
							col[rowBase+ox] = src[ix]
						}
					}
				}
				idx += oh * ow
			}
		}
	}
}

// col2im is the adjoint of im2col: it accumulates the column matrix back
// into an image gradient of shape (C,H,W).
func col2im(col []float32, c, h, w int, spec ConvSpec, x []float32) {
	oh, ow := spec.OutSize(h, w)
	k, s, p := spec.K, spec.Stride, spec.Pad
	idx := 0
	for ch := 0; ch < c; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*s + ky - p
					if iy < 0 || iy >= h {
						continue
					}
					rowBase := idx + oy*ow
					dst := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*s + kx - p
						if ix >= 0 && ix < w {
							dst[ix] += col[rowBase+ox]
						}
					}
				}
				idx += oh * ow
			}
		}
	}
}

// matmul computes out = a(m×k) * b(k×n), parallelized over rows of a.
func matmul(a, b, out []float32, m, k, n int) {
	parallelFor(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// matmulTA computes out(k×n) = aᵀ(m×k)ᵀ * b ... precisely out = aᵀ * b where
// a is (m×k) and b is (m×n): out[kk][j] = Σ_i a[i][kk] * b[i][j].
func matmulTA(a, b, out []float32, m, k, n int) {
	for i := range out {
		out[i] = 0
	}
	parallelFor(k, func(k0, k1 int) {
		for i := 0; i < m; i++ {
			arow := a[i*k : (i+1)*k]
			brow := b[i*n : (i+1)*n]
			for kk := k0; kk < k1; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				orow := out[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// parallelFor splits [0,n) across workers and blocks until all complete.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Conv2DForward computes a batched 2-D convolution.
//
//	x: (N, InC, H, W),  w: (OutC, InC, K, K),  b: (OutC) or nil
//
// It returns the output (N, OutC, OH, OW) and the im2col buffers for each
// batch element, which the backward pass reuses to avoid recomputation.
func Conv2DForward(x, w, b *Tensor, spec ConvSpec) (out *Tensor, cols [][]float32) {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != spec.InC {
		panic("tensor: Conv2DForward channel mismatch")
	}
	oh, ow := spec.OutSize(h, wd)
	out = New(n, spec.OutC, oh, ow)
	colRows := spec.InC * spec.K * spec.K
	colCols := oh * ow
	cols = make([][]float32, n)
	for i := 0; i < n; i++ {
		col := make([]float32, colRows*colCols)
		im2col(x.Data[i*c*h*wd:(i+1)*c*h*wd], c, h, wd, spec, col)
		cols[i] = col
		// out_i (OutC × OH*OW) = W(OutC × colRows) * col(colRows × colCols)
		matmul(w.Data, col, out.Data[i*spec.OutC*colCols:(i+1)*spec.OutC*colCols], spec.OutC, colRows, colCols)
	}
	if b != nil {
		for i := 0; i < n; i++ {
			for oc := 0; oc < spec.OutC; oc++ {
				bias := b.Data[oc]
				plane := out.Data[(i*spec.OutC+oc)*colCols : (i*spec.OutC+oc+1)*colCols]
				for j := range plane {
					plane[j] += bias
				}
			}
		}
	}
	return out, cols
}

// Conv2DBackward computes gradients for a convolution given the upstream
// gradient gy (N, OutC, OH, OW), the saved im2col buffers, the input shape,
// and the weights. It returns gradX and accumulates into gw and gb (which
// must be pre-allocated to the weight/bias shapes).
func Conv2DBackward(gy *Tensor, cols [][]float32, xShape []int, w, gw, gb *Tensor, spec ConvSpec) (gx *Tensor) {
	n, c, h, wd := xShape[0], xShape[1], xShape[2], xShape[3]
	oh, ow := spec.OutSize(h, wd)
	colRows := spec.InC * spec.K * spec.K
	colCols := oh * ow
	gx = New(n, c, h, wd)
	gcol := make([]float32, colRows*colCols)
	gwTmp := make([]float32, len(gw.Data))
	for i := 0; i < n; i++ {
		gyi := gy.Data[i*spec.OutC*colCols : (i+1)*spec.OutC*colCols]
		// gw += gy_i (OutC × colCols) * col_iᵀ (colCols × colRows)
		// computed as matmulATB over transposed operands:
		// gw[oc][r] = Σ_j gy[oc][j] * col[r][j]
		convGradWeights(gyi, cols[i], gwTmp, spec.OutC, colRows, colCols)
		for j, v := range gwTmp {
			gw.Data[j] += v
		}
		if gb != nil {
			for oc := 0; oc < spec.OutC; oc++ {
				var s float32
				plane := gyi[oc*colCols : (oc+1)*colCols]
				for _, v := range plane {
					s += v
				}
				gb.Data[oc] += s
			}
		}
		// gcol (colRows × colCols) = Wᵀ (colRows × OutC) * gy_i
		matmulTA(w.Data, gyi, gcol, spec.OutC, colRows, colCols)
		col2im(gcol, c, h, wd, spec, gx.Data[i*c*h*wd:(i+1)*c*h*wd])
	}
	return gx
}

// convGradWeights computes gw[oc][r] = Σ_j gy[oc][j] * col[r][j].
func convGradWeights(gy, col, gw []float32, outC, colRows, colCols int) {
	parallelFor(outC, func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			gyRow := gy[oc*colCols : (oc+1)*colCols]
			for r := 0; r < colRows; r++ {
				colRow := col[r*colCols : (r+1)*colCols]
				var s float32
				for j, v := range gyRow {
					s += v * colRow[j]
				}
				gw[oc*colRows+r] = s
			}
		}
	})
}
