package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randInt8Slice(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127)
	}
	return s
}

// packOperands runs both pack passes for a w(m×k)·rec(cols×k)ᵀ problem:
// blocked-interleaved weights (single section per row) and flat records.
func packOperands(w, rec []int8, m, k, cols int) (wp, wsum, rp, rsum []uint64, g int) {
	g = packedGroups(k)
	wp = make([]uint64, m*g)
	wsum = make([]uint64, m)
	rp = make([]uint64, cols*g)
	rsum = make([]uint64, cols)
	packInt8RowsBlocked(w, m, k, 1, wp, wsum)
	packInt8HighLanes(rec, cols, k, rp, rsum)
	return wp, wsum, rp, rsum, g
}

// TestGemmInt8MatchesRef pins the blocked SWAR kernel bitwise against
// the naive int8 reference: the lane packing and bias-correction
// identity are exact, integer accumulation is order-independent, and
// both kernels share the requantInt8 epilogue expression, so parity is
// exact equality, not a tolerance.
func TestGemmInt8MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sh := range gemmShapes {
		w := randInt8Slice(rng, sh.m*sh.k)
		rec := randInt8Slice(rng, sh.n*sh.k)
		scales := make([]float32, sh.m)
		for i := range scales {
			scales[i] = float32(rng.Float64()*0.01 + 1e-4)
		}
		bias := randSlice(rng, sh.m)
		wp, wsum, rp, rsum, g := packOperands(w, rec, sh.m, sh.k, sh.n)
		for _, relu := range []bool{false, true} {
			got := make([]float32, sh.m*sh.n)
			want := make([]float32, sh.m*sh.n)
			gemmInt8Rows(wp, wsum, rp, rsum, got, sh.m, g, sh.n, 0, sh.n, scales, bias, relu)
			matmulInt8Ref(w, rec, want, sh.m, sh.k, sh.n, scales, bias, relu)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("gemmInt8Rows(%dx%dx%d relu=%v) element %d: got %v want %v",
						sh.m, sh.k, sh.n, relu, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmInt8ExtremeValues drives every operand to the clamp rails,
// where the SWAR lane groups are at their 3·255² maximum, to prove no
// lane ever carries into its neighbour.
func TestGemmInt8ExtremeValues(t *testing.T) {
	m, k, cols := 5, 146, 3 // k%3 != 0 exercises the padded tail group
	vals := []int8{-127, 127}
	w := make([]int8, m*k)
	rec := make([]int8, cols*k)
	rng := rand.New(rand.NewSource(37))
	for i := range w {
		w[i] = vals[rng.Intn(2)]
	}
	for i := range rec {
		rec[i] = vals[rng.Intn(2)]
	}
	scales := make([]float32, m)
	for i := range scales {
		scales[i] = 1e-4
	}
	wp, wsum, rp, rsum, g := packOperands(w, rec, m, k, cols)
	got := make([]float32, m*cols)
	want := make([]float32, m*cols)
	gemmInt8Rows(wp, wsum, rp, rsum, got, m, g, cols, 0, cols, scales, nil, false)
	matmulInt8Ref(w, rec, want, m, k, cols, scales, nil, false)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("extreme-value element %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestGemmInt8StridedOutput checks the banded-conv write pattern: out
// rows spaced outStride apart with an outOff band offset, untouched
// sentinels elsewhere. m=6 also exercises the two-row remainder after
// the four-row block.
func TestGemmInt8StridedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m, k, cols, stride, off := 6, 9, 5, 17, 3
	w := randInt8Slice(rng, m*k)
	rec := randInt8Slice(rng, cols*k)
	scales := make([]float32, m)
	for i := range scales {
		scales[i] = 0.01
	}
	wp, wsum, rp, rsum, g := packOperands(w, rec, m, k, cols)
	got := make([]float32, m*stride)
	for i := range got {
		got[i] = 99 // sentinel outside the written columns
	}
	gemmInt8Rows(wp, wsum, rp, rsum, got, m, g, cols, off, stride, scales, nil, false)
	want := make([]float32, m*cols)
	matmulInt8Ref(w, rec, want, m, k, cols, scales, nil, false)
	for i := 0; i < m; i++ {
		for j := 0; j < cols; j++ {
			if got[i*stride+off+j] != want[i*cols+j] {
				t.Fatalf("strided row %d col %d: got %v want %v", i, j, got[i*stride+off+j], want[i*cols+j])
			}
		}
		for j := 0; j < off; j++ {
			if got[i*stride+j] != 99 {
				t.Fatalf("row %d wrote before its band offset", i)
			}
		}
		for j := off + cols; j < stride; j++ {
			if got[i*stride+j] != 99 {
				t.Fatalf("row %d wrote past its %d columns", i, cols)
			}
		}
	}
}

func TestQuantizeInt8Into(t *testing.T) {
	src := []float32{0, 1, -1, 0.4, 0.6, -0.4, -0.6, 200, -200, 126.4, 126.6}
	dst := make([]int8, len(src))
	QuantizeInt8Into(dst, src, 1)
	want := []int8{0, 1, -1, 0, 1, 0, -1, 127, -127, 126, 127}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("QuantizeInt8Into(%v): got %d want %d", src[i], dst[i], want[i])
		}
	}
}

// int8ConvCase builds a quantized conv problem: random int8 input and
// weights plus plausible per-channel scales and a float32 bias.
type int8ConvCase struct {
	xq           []int8
	wq           []int8
	scales, bias []float32
	spec         ConvSpec
	n, h, w      int
}

func makeInt8ConvCase(rng *rand.Rand, n, h, w int, spec ConvSpec) int8ConvCase {
	colRows := spec.InC * spec.K * spec.K
	scales := make([]float32, spec.OutC)
	for i := range scales {
		scales[i] = float32(rng.Float64()*0.001 + 1e-5)
	}
	return int8ConvCase{
		xq:     randInt8Slice(rng, n*spec.InC*h*w),
		wq:     randInt8Slice(rng, spec.OutC*colRows),
		scales: scales,
		bias:   randSlice(rng, spec.OutC),
		spec:   spec, n: n, h: h, w: w,
	}
}

// conv2DInt8Ref is a dependency-free reference convolution over the
// quantized operands, with the same requantInt8 epilogue.
func conv2DInt8Ref(cc int8ConvCase, relu bool) []float32 {
	spec := cc.spec
	oh, ow := spec.OutSize(cc.h, cc.w)
	out := make([]float32, cc.n*spec.OutC*oh*ow)
	for i := 0; i < cc.n; i++ {
		xi := cc.xq[i*spec.InC*cc.h*cc.w:]
		for oc := 0; oc < spec.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc int32
					for ic := 0; ic < spec.InC; ic++ {
						for ky := 0; ky < spec.K; ky++ {
							iy := oy*spec.Stride + ky - spec.Pad
							if iy < 0 || iy >= cc.h {
								continue
							}
							for kx := 0; kx < spec.K; kx++ {
								ix := ox*spec.Stride + kx - spec.Pad
								if ix < 0 || ix >= cc.w {
									continue
								}
								wv := cc.wq[oc*spec.InC*spec.K*spec.K+ic*spec.K*spec.K+ky*spec.K+kx]
								acc += int32(wv) * int32(xi[ic*cc.h*cc.w+iy*cc.w+ix])
							}
						}
					}
					out[((i*spec.OutC+oc)*oh+oy)*ow+ox] = requantInt8(acc, cc.scales[oc], cc.bias[oc], relu)
				}
			}
		}
	}
	return out
}

// TestConv2DInferInt8MatchesRef pins the banded/pooled conv path
// bitwise against the naive direct convolution, across geometries that
// exercise padding, stride, multi-band splits, and batches.
func TestConv2DInferInt8MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cases := []struct {
		n, h, w int
		spec    ConvSpec
	}{
		{1, 5, 7, ConvSpec{InC: 3, OutC: 4, K: 3, Stride: 1, Pad: 1}},
		{1, 9, 9, ConvSpec{InC: 2, OutC: 5, K: 3, Stride: 2, Pad: 1}},
		{2, 6, 6, ConvSpec{InC: 4, OutC: 3, K: 3, Stride: 1, Pad: 1}},
		{1, 8, 8, ConvSpec{InC: 1, OutC: 7, K: 5, Stride: 1, Pad: 2}},
		{1, 4, 4, ConvSpec{InC: 3, OutC: 4, K: 1, Stride: 1, Pad: 0}},
		// Wide enough that bandInt8Budget forces multiple bands.
		{1, 40, 1024, ConvSpec{InC: 8, OutC: 6, K: 3, Stride: 1, Pad: 1}},
	}
	for _, tc := range cases {
		cc := makeInt8ConvCase(rng, tc.n, tc.h, tc.w, tc.spec)
		for _, relu := range []bool{false, true} {
			want := conv2DInt8Ref(cc, relu)
			got := Conv2DInferInt8(cc.xq, cc.n, tc.spec.InC, tc.h, tc.w, cc.wq, cc.scales, cc.bias, tc.spec, relu, nil)
			for i := range want {
				if got.Data[i] != want[i] {
					t.Fatalf("Conv2DInferInt8(n=%d %dx%d spec=%+v relu=%v) element %d: got %v want %v",
						tc.n, tc.h, tc.w, tc.spec, relu, i, got.Data[i], want[i])
				}
			}
		}
	}
}

// TestConv2DInferInt8Deterministic pins bit-identical outputs across
// worker counts: the serial path, the banded parallel path, and a
// batch-parallel path must all agree exactly.
func TestConv2DInferInt8Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	spec := ConvSpec{InC: 8, OutC: 16, K: 3, Stride: 1, Pad: 1}
	cc := makeInt8ConvCase(rng, 2, 24, 600, spec)
	var serial, par2, par4 *Tensor
	withProcs(t, 1, func() {
		serial = Conv2DInferInt8(cc.xq, cc.n, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, nil)
	})
	want := append([]float32(nil), serial.Data...)
	withProcs(t, 2, func() {
		par2 = Conv2DInferInt8(cc.xq, cc.n, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, nil)
	})
	withProcs(t, 4, func() {
		par4 = Conv2DInferInt8(cc.xq, cc.n, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, nil)
	})
	for i := range want {
		if par2.Data[i] != want[i] || par4.Data[i] != want[i] {
			t.Fatalf("element %d differs across worker counts: serial %v, 2 workers %v, 4 workers %v",
				i, want[i], par2.Data[i], par4.Data[i])
		}
	}
	// Single-batch inputs parallelize over bands rather than batch
	// elements; check that split too.
	one := makeInt8ConvCase(rng, 1, 40, 700, spec)
	var s1, p1 *Tensor
	withProcs(t, 1, func() {
		s1 = Conv2DInferInt8(one.xq, 1, spec.InC, one.h, one.w, one.wq, one.scales, one.bias, spec, false, nil)
	})
	w1 := append([]float32(nil), s1.Data...)
	withProcs(t, 4, func() {
		p1 = Conv2DInferInt8(one.xq, 1, spec.InC, one.h, one.w, one.wq, one.scales, one.bias, spec, false, nil)
	})
	for i := range w1 {
		if p1.Data[i] != w1[i] {
			t.Fatalf("band-parallel element %d differs: %v vs %v", i, w1[i], p1.Data[i])
		}
	}
}

// TestConv2DInferInt8SerialAllocFree pins the steady-state contract:
// with one worker and a warmed scratch arena, repeated calls reusing
// the output tensor perform zero heap allocations.
func TestConv2DInferInt8SerialAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	rng := rand.New(rand.NewSource(35))
	spec := ConvSpec{InC: 8, OutC: 8, K: 3, Stride: 1, Pad: 1}
	cc := makeInt8ConvCase(rng, 1, 16, 64, spec)
	withProcs(t, 1, func() {
		out := Conv2DInferInt8(cc.xq, 1, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, nil)
		allocs := testing.AllocsPerRun(10, func() {
			out = Conv2DInferInt8(cc.xq, 1, spec.InC, cc.h, cc.w, cc.wq, cc.scales, cc.bias, spec, true, out)
		})
		if allocs != 0 {
			t.Errorf("serial Conv2DInferInt8 allocated %v times per call, want 0", allocs)
		}
	})
}

// TestConv2DInferInt8TracksFloat32 checks the requantization error
// budget: quantizing a float32 conv problem and running the int8 path
// must land within the analytic per-element bound of the float32
// Conv2DInfer result (k accumulated half-ULP rounding errors on each
// operand grid).
func TestConv2DInferInt8TracksFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	spec := ConvSpec{InC: 4, OutC: 6, K: 3, Stride: 1, Pad: 1}
	h, w := 12, 18
	x := New(1, spec.InC, h, w)
	copy(x.Data, randSlice(rng, x.Len()))
	wt := New(spec.OutC, spec.InC, spec.K, spec.K)
	copy(wt.Data, randSlice(rng, wt.Len()))
	bias := New(spec.OutC)
	copy(bias.Data, randSlice(rng, bias.Len()))

	want := Conv2DInfer(x, wt, bias, spec, false, nil)

	// Symmetric per-tensor activation / per-channel weight quantization,
	// the same scheme the nn layer applies.
	actMax := x.MaxAbs()
	xq := make([]int8, x.Len())
	QuantizeInt8Into(xq, x.Data, 127/actMax)
	colRows := spec.InC * spec.K * spec.K
	wq := make([]int8, spec.OutC*colRows)
	scales := make([]float32, spec.OutC)
	for oc := 0; oc < spec.OutC; oc++ {
		row := wt.Data[oc*colRows : (oc+1)*colRows]
		var wmax float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > wmax {
				wmax = v
			}
		}
		ws := wmax / 127
		QuantizeInt8Into(wq[oc*colRows:(oc+1)*colRows], row, 127/wmax)
		scales[oc] = ws * (actMax / 127)
	}
	got := Conv2DInferInt8(xq, 1, spec.InC, h, w, wq, scales, bias.Data, spec, false, nil)

	// Each of the ≤ colRows products carries at most a half-step error
	// from each operand: |err| ≤ k·(act_step·|w| + w_step·|act| +
	// act_step·w_step/4) ≤ k·(act_step·wmax + w_step·actMax).
	for i := range want.Data {
		bound := 0.0
		for oc := 0; oc < spec.OutC; oc++ {
			step := float64(scales[oc]) * 127 // one quantization step in output units
			if b := float64(colRows) * step; b > bound {
				bound = b
			}
		}
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > bound {
			t.Fatalf("element %d: int8 %v vs float32 %v differs by %g (bound %g)",
				i, got.Data[i], want.Data[i], d, bound)
		}
	}
}
