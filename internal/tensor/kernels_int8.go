package tensor

import "math"

// Int8 GEMM kernels. The quantized inference path trades the float32
// kernels' row-major column matrix for a transposed "im2row" layout:
// each output pixel owns one contiguous record that lines up
// element-for-element with a row of the flattened weight matrix, so
// every output element is a dot product of two contiguous int8 vectors.
//
// A scalar int8 dot product cannot beat the float32 kernel — integer
// and float multiplies issue at the same rate — so the blocked kernel
// computes three products per hardware multiply with a SWAR packing:
// both operands are biased to unsigned (v+128 ∈ [1,255]) and three
// consecutive elements are packed into 18-bit lanes of a uint64 — lanes
// at bits {0, 18, 36} in the weight operand and {46, 28, 10} in the
// record operand. In the 64-bit (wrapping) product w·r the diagonal of
// the lane polynomials,
//
//	Σ_{t=0..2} w'[t]·r'[t],
//
// lands exactly in bits [46, 64): each cross-term group is a sum of at
// most three biased products ≤ 3·255² = 195075 < 2¹⁸, so no group ever
// carries into its neighbour, the group above the diagonal begins at
// bit 64 and wraps away, and the extraction (prod>>46)&(2¹⁸−1) is
// exact. One two-operand multiply plus a shift, a mask, and an add
// replace three multiply-accumulates. The bias unbiases through the
// exact identity
//
//	Σ a·b = Σ a'·b' − 128·Σa' − 128·Σb' + 128²·kp
//
// over the padded length kp (padding packs as the bias value, i.e.
// int8 0, and cancels in the identity), with the operand sums
// accumulated once at pack time. The result is the bit-exact int32
// accumulation of the naive int8 kernel — integer addition is
// associative, so any blocking, banding, or parallel split produces
// identical sums — at a third of the multiply count and far fewer ALU
// ops per term.
//
// Weight rows are packed four at a time, interleaved word-by-word
// (block word t·4+j is word t of row j), so the four-row dot loop walks
// ONE advancing pointer with constant displacements instead of four —
// with separate row slices the loop body clobbers the pointer registers
// and reloads three of them from the stack every iteration.
//
// The fused epilogue requantizes each finished sum with its per-row
// scale, adds the bias, and optionally applies ReLU; it is a fixed
// per-element float expression shared with the naive reference, so full
// outputs are bit-identical across worker counts, band boundaries, and
// the reference kernel.

const (
	// swarLane is the lane width of the packed representation. Three
	// lanes of biased products (≤ 3·255² < 2¹⁸) never carry.
	swarLane = 18
	swarMask = 1<<swarLane - 1
	// swarBias shifts int8 values to unsigned [1, 255] so lane groups
	// are non-negative and extraction needs no sign handling.
	swarBias = 128
	// swarGroup is how many int8 elements pack into one uint64.
	swarGroup = 3
	// swarDiagShift is where the diagonal group starts: the record
	// operand's top lane sits at 64−swarLane so the diagonal fills the
	// top of the low product word and the lane above wraps away.
	swarDiagShift = 64 - swarLane
	// swarMaxK bounds the padded reduction length: beyond it the biased
	// dot (≤ kp·255²) could overflow the int32 accumulator contract.
	swarMaxK = 1 << 14
)

// packedGroups returns the packed-word count for a k-long operand
// section (k rounded up to a multiple of swarGroup).
func packedGroups(k int) int { return (k + swarGroup - 1) / swarGroup }

// packInt8RowsBlocked packs rows of int8 into the blocked-interleaved
// low-lane weight layout consumed by gemmInt8Rows and the int8 conv.
// Each row is numSec sections of secLen elements; every section is
// padded independently to a whole number of groups (gs =
// packedGroups(secLen)), so a row occupies g = numSec·gs words. Rows
// are grouped four at a time with their words interleaved — word t of
// row 4b+j lands at dst[b·4g + t·4 + j] — and the ≤3 leftover rows
// follow flat at dst[(rows/4)·4g + r·g + t]. sums[i] receives Σ(v+128)
// over row i's padded elements. Sections matter to the banded conv,
// which assembles records from per-(input-row, x) section slices; plain
// GEMM callers pass numSec=1, secLen=k.
func packInt8RowsBlocked(src []int8, rows, secLen, numSec int, dst, sums []uint64) {
	gs := packedGroups(secLen)
	g := numSec * gs
	if swarGroup*g > swarMaxK {
		panic("tensor: int8 GEMM reduction too large")
	}
	nb4 := rows / 4
	rowLen := secLen * numSec
	for i := 0; i < rows; i++ {
		row := src[i*rowLen : (i+1)*rowLen]
		var sum uint64
		for s := 0; s < numSec; s++ {
			sec := row[s*secLen : (s+1)*secLen]
			for t := 0; t < gs; t++ {
				var v [swarGroup]uint64
				for q := 0; q < swarGroup; q++ {
					if e := t*swarGroup + q; e < secLen {
						v[q] = uint64(int64(sec[e]) + swarBias)
					} else {
						v[q] = swarBias // padding packs as int8 value 0
					}
					sum += v[q]
				}
				word := v[0] | v[1]<<swarLane | v[2]<<(2*swarLane)
				wi := s*gs + t
				if b := i / 4; b < nb4 {
					dst[b*4*g+wi*4+i&3] = word
				} else {
					dst[nb4*4*g+(i-nb4*4)*g+wi] = word
				}
			}
		}
		sums[i] = sum
	}
}

// packInt8HighLanes packs rows (rows × k int8) flat into rows × g
// uint64 words, g = packedGroups(k), with descending lanes from bit
// swarDiagShift — the record-side layout, so that the weight·record
// lane polynomials align element t with element t on the product
// diagonal. sums[i] receives Σ(v+128) over the padded row.
func packInt8HighLanes(src []int8, rows, k int, dst []uint64, sums []uint64) {
	if k > swarMaxK {
		panic("tensor: int8 GEMM reduction too large")
	}
	g := packedGroups(k)
	for i := 0; i < rows; i++ {
		row := src[i*k : (i+1)*k]
		drow := dst[i*g : (i+1)*g]
		var sum uint64
		di, t := 0, 0
		for ; t+swarGroup <= k; t += swarGroup {
			v0 := uint64(int64(row[t]) + swarBias)
			v1 := uint64(int64(row[t+1]) + swarBias)
			v2 := uint64(int64(row[t+2]) + swarBias)
			sum += v0 + v1 + v2
			drow[di] = v0<<swarDiagShift | v1<<(swarDiagShift-swarLane) | v2<<(swarDiagShift-2*swarLane)
			di++
		}
		if t < k {
			var v [swarGroup]uint64
			for q := range v {
				if t+q < k {
					v[q] = uint64(int64(row[t+q]) + swarBias)
				} else {
					v[q] = swarBias // padding packs as int8 value 0
				}
				sum += v[q]
			}
			drow[di] = v[0]<<swarDiagShift | v[1]<<(swarDiagShift-swarLane) | v[2]<<(swarDiagShift-2*swarLane)
		}
		sums[i] = sum
	}
}

// swarDot3 extracts the diagonal lane of one packed multiply: the sum
// of the three biased products aligned by the opposing lane orders. The
// wrapping 64-bit product is exactly the low word; everything above the
// diagonal group wraps away.
func swarDot3(w, r uint64) uint64 {
	return (w * r >> swarDiagShift) & swarMask
}

// swarDotRows4 runs one packed record section against an interleaved
// four-row weight block (w holds 4·len(r) words, word t·4+j belonging
// to row j), returning the four biased diagonal sums. Kept out of the
// caller's loop body on purpose: in isolation the accumulators, the two
// pointers, and the loop state all fit in registers, where the same
// code inlined into an epilogue-heavy frame spills on every iteration
// (~35% slower measured).
//
//go:noinline
func swarDotRows4(w, r []uint64) (d0, d1, d2, d3 uint64) {
	w = w[:4*len(r)]
	j := 0
	for _, rv := range r {
		d0 += swarDot3(w[j], rv)
		d1 += swarDot3(w[j+1], rv)
		d2 += swarDot3(w[j+2], rv)
		d3 += swarDot3(w[j+3], rv)
		j += 4
	}
	return d0, d1, d2, d3
}

// swarDotRow1 runs one packed record section against a single flat
// weight row. Separate and noinline for the same register-pressure
// reason as swarDotRows4: inlined into the remainder loop of a GEMM it
// inherits a frame that spills the hot values.
//
//go:noinline
func swarDotRow1(w, r []uint64) uint64 {
	w = w[:len(r)]
	var d uint64
	for t, rv := range r {
		d += swarDot3(w[t], rv)
	}
	return d
}

// gemmInt8Rows computes the int8 GEMM out(m×cols) = w(m×k) · recᵀ over
// packed operands: wp/wsum from packInt8RowsBlocked (blocked-interleaved
// weight rows), rp/rsum from packInt8HighLanes (flat records), g packed
// words per row. Out element (i, j) lands at out[i*outStride + outOff +
// j]. The fused epilogue applies the per-row requantization scale,
// bias, and optional ReLU:
//
//	out[i][j] = relu( float32(Σ_kk w[i][kk]·rec[j][kk]) * scales[i] + bias[i] )
func gemmInt8Rows(wp, wsum, rp, rsum []uint64, out []float32, m, g, cols, outOff, outStride int, scales, bias []float32, relu bool) {
	// The unbias identity over the padded length kp = g·swarGroup:
	// true dot = biased dot − 128·(rowSum + recSum) + 128²·kp.
	corr := int32(swarBias * swarBias * g * swarGroup)
	nb4 := m / 4
	for b := 0; b < nb4; b++ {
		i := b * 4
		wblk := wp[b*4*g : (b+1)*4*g]
		wt0 := corr - swarBias*int32(wsum[i])
		wt1 := corr - swarBias*int32(wsum[i+1])
		wt2 := corr - swarBias*int32(wsum[i+2])
		wt3 := corr - swarBias*int32(wsum[i+3])
		s0, s1, s2, s3 := scales[i], scales[i+1], scales[i+2], scales[i+3]
		var b0, b1, b2, b3 float32
		if bias != nil {
			b0, b1, b2, b3 = bias[i], bias[i+1], bias[i+2], bias[i+3]
		}
		o0 := out[i*outStride+outOff : i*outStride+outOff+cols]
		o1 := out[(i+1)*outStride+outOff : (i+1)*outStride+outOff+cols]
		o2 := out[(i+2)*outStride+outOff : (i+2)*outStride+outOff+cols]
		o3 := out[(i+3)*outStride+outOff : (i+3)*outStride+outOff+cols]
		for j := 0; j < cols; j++ {
			d0, d1, d2, d3 := swarDotRows4(wblk, rp[j*g:j*g+g])
			rterm := swarBias * int32(rsum[j])
			o0[j] = requantInt8(int32(d0)+wt0-rterm, s0, b0, relu)
			o1[j] = requantInt8(int32(d1)+wt1-rterm, s1, b1, relu)
			o2[j] = requantInt8(int32(d2)+wt2-rterm, s2, b2, relu)
			o3[j] = requantInt8(int32(d3)+wt3-rterm, s3, b3, relu)
		}
	}
	for i := nb4 * 4; i < m; i++ {
		wrow := wp[nb4*4*g+(i-nb4*4)*g : nb4*4*g+(i-nb4*4+1)*g]
		wt := corr - swarBias*int32(wsum[i])
		si := scales[i]
		var bi float32
		if bias != nil {
			bi = bias[i]
		}
		orow := out[i*outStride+outOff : i*outStride+outOff+cols]
		for j := 0; j < cols; j++ {
			d := swarDotRow1(wrow, rp[j*g:j*g+g])
			orow[j] = requantInt8(int32(d)+wt-swarBias*int32(rsum[j]), si, bi, relu)
		}
	}
}

// requantInt8 is the shared epilogue of the blocked kernel and the naive
// reference: one float32 multiply, one add, optional ReLU — identical
// expressions, so parity between the two kernels is exact, not
// approximate.
func requantInt8(acc int32, scale, bias float32, relu bool) float32 {
	v := float32(acc)*scale + bias
	if relu && v < 0 {
		v = 0
	}
	return v
}

// matmulInt8Ref is the naive reference for gemmInt8Rows, operating on
// the unpacked int8 operands with plain int32 accumulation, retained so
// parity tests check the SWAR kernel against an implementation whose
// correctness is obvious by inspection. It writes the full m×cols
// output contiguously (outStride = cols, outOff = 0).
func matmulInt8Ref(w, rec []int8, out []float32, m, k, cols int, scales, bias []float32, relu bool) {
	for i := 0; i < m; i++ {
		wrow := w[i*k : (i+1)*k]
		var bi float32
		if bias != nil {
			bi = bias[i]
		}
		for j := 0; j < cols; j++ {
			rrow := rec[j*k : (j+1)*k]
			var acc int32
			for kk := range rrow {
				acc += int32(wrow[kk]) * int32(rrow[kk])
			}
			out[i*cols+j] = requantInt8(acc, scales[i], bi, relu)
		}
	}
}

// QuantizeInt8Into quantizes src into dst with the symmetric multiplier
// inv (typically 127 / calibrated maxabs): each element is scaled,
// rounded half-away-from-zero, and clamped to [-127, 127]. The rounding
// is a fixed per-element float32 expression, so results are
// deterministic regardless of how callers split the work.
func QuantizeInt8Into(dst []int8, src []float32, inv float32) {
	if len(dst) != len(src) {
		panic("tensor: QuantizeInt8Into length mismatch")
	}
	for i, v := range src {
		f := v * inv
		// Branchless half-away-from-zero: add ±0.5 with f's own sign
		// bit, then truncate. Activation signs are effectively random,
		// so an if/else here costs a mispredict per element.
		half := math.Float32frombits(math.Float32bits(f)&0x80000000 | 0x3F000000)
		q := int32(f + half)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
}
