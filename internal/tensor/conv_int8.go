package tensor

import (
	"runtime"
	"sync"
)

// int8 and uint64 twins of the float32 scratch arena: the quantized
// conv path needs transient packed-section bands and a permuted weight
// staging buffer, and mixing element types in one pool would force a
// reallocation on every crossover.
var (
	scratchPoolInt8   = sync.Pool{New: func() any { return new([]int8) }}
	scratchPoolUint64 = sync.Pool{New: func() any { return new([]uint64) }}
)

// getScratchInt8 returns an int8 scratch buffer of length n from the
// arena; contents are unspecified. Return it with putScratchInt8.
func getScratchInt8(n int) *[]int8 {
	p := scratchPoolInt8.Get().(*[]int8)
	if cap(*p) < n {
		*p = make([]int8, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratchInt8 returns a buffer obtained from getScratchInt8 to the
// arena. The caller must not retain any slice of it afterwards.
func putScratchInt8(p *[]int8) { scratchPoolInt8.Put(p) }

// getScratchUint64 returns a uint64 scratch buffer of length n from the
// arena; contents are unspecified. Return it with putScratchUint64.
func getScratchUint64(n int) *[]uint64 {
	p := scratchPoolUint64.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratchUint64 returns a buffer obtained from getScratchUint64 to
// the arena. The caller must not retain any slice of it afterwards.
func putScratchUint64(p *[]uint64) { scratchPoolUint64.Put(p) }

// The int8 conv does not materialize per-output-pixel im2row records.
// With the record element order ky → ch → kx, a record splits into K
// sections, and the section for kernel row ky depends only on (iy, ox)
// where iy = oy·stride + ky − pad: it is the c·K input elements
// plane[ch][iy][ix0 .. ix0+K), ch-major, already in packed SWAR form.
// Sections are therefore shared by every output row whose kernel window
// crosses input row iy — packSectionsInt8 packs each one exactly once
// per band (K× less packing work than per-record expansion), and stores
// them x-major so the K sections of any record sit consecutively: the
// GEMM reads each record as a single contiguous packed slice. Integer
// accumulation is associative, so the split changes nothing bit-wise.

// packSectionsInt8 packs record sections for input rows [iy0, iy1) of
// the quantized plane xq (C,H,W), x-major: section (iy, ox) occupies
// gs = packedGroups(c·K) high-lane words at dst[(ox·R + iy−iy0)·gs]
// with R = iy1−iy0, and sums[ox·R + iy−iy0] receives Σ(v+128) over its
// padded elements. The transposed layout is the point: a record's K
// sections are consecutive input rows at one ox, so each record is one
// CONTIGUOUS K·gs-word slice — the GEMM hands it to swarDotRows4 whole,
// with no per-section call or gather. Rows outside [0, h) and x
// positions outside [0, w) contribute the zero-padding value (which
// packs as the bias), exactly like the im2row expansion this replaces.
func packSectionsInt8(xq []int8, c, h, w int, spec ConvSpec, iy0, iy1 int, dst, sums []uint64) {
	k, s, p := spec.K, spec.Stride, spec.Pad
	_, ow := spec.OutSize(h, w)
	secLen := c * k
	gs := packedGroups(secLen)
	nr := iy1 - iy0
	const biasWord uint64 = swarBias<<swarDiagShift |
		swarBias<<(swarDiagShift-swarLane) |
		swarBias<<(swarDiagShift-2*swarLane)
	for iy := iy0; iy < iy1; iy++ {
		row := iy - iy0
		if iy < 0 || iy >= h {
			for ox := 0; ox < ow; ox++ {
				si := ox*nr + row
				d := dst[si*gs : (si+1)*gs]
				for t := range d {
					d[t] = biasWord
				}
				sums[si] = uint64(swarGroup*gs) * swarBias
			}
			continue
		}
		rowBase := iy * w
		for ox := 0; ox < ow; ox++ {
			ix0 := ox*s - p
			si := ox*nr + row
			d := dst[si*gs : (si+1)*gs]
			var sum uint64
			if k == 3 && ix0 >= 0 && ix0+3 <= w {
				// The dominant interior 3×3 case: one channel row slice is
				// exactly one packed group (gs == c), no padding anywhere.
				for ch := 0; ch < c; ch++ {
					row := xq[ch*h*w+rowBase+ix0:]
					v0 := uint64(int64(row[0]) + swarBias)
					v1 := uint64(int64(row[1]) + swarBias)
					v2 := uint64(int64(row[2]) + swarBias)
					sum += v0 + v1 + v2
					d[ch] = v0<<swarDiagShift | v1<<(swarDiagShift-swarLane) | v2<<(swarDiagShift-2*swarLane)
				}
			} else {
				// General path: stream the section's c·K elements into
				// high-lane groups, padding the x overhang and section tail.
				var v [swarGroup]uint64
				m3, di := 0, 0
				for ch := 0; ch < c; ch++ {
					row := xq[ch*h*w+rowBase : ch*h*w+rowBase+w]
					for kx := 0; kx < k; kx++ {
						e := uint64(swarBias)
						if ix := ix0 + kx; ix >= 0 && ix < w {
							e = uint64(int64(row[ix]) + swarBias)
						}
						sum += e
						v[m3] = e
						m3++
						if m3 == swarGroup {
							d[di] = v[0]<<swarDiagShift | v[1]<<(swarDiagShift-swarLane) | v[2]<<(swarDiagShift-2*swarLane)
							di++
							m3 = 0
						}
					}
				}
				if m3 != 0 {
					for ; m3 < swarGroup; m3++ {
						v[m3] = swarBias
						sum += swarBias
					}
					d[di] = v[0]<<swarDiagShift | v[1]<<(swarDiagShift-swarLane) | v[2]<<(swarDiagShift-2*swarLane)
				}
			}
			sums[si] = sum
		}
	}
}

// bandInt8Budget caps the packed-section scratch for one quantized
// inference band, in uint64 words (2^16 words = 512 KiB — L2-resident
// on anything modern; the band's sections are re-read once per weight
// block, so keeping them cache-hot is what the banding buys). Like
// bandFloatBudget the resulting band height depends only on the
// convolution geometry, never on GOMAXPROCS or the worker schedule, so
// banded outputs are bit-identical across runs and core counts.
const bandInt8Budget = 1 << 16

// Conv2DInferInt8 computes a batched 2-D convolution over a quantized
// input with int8×int8 → int32 accumulation (via the packed SWAR GEMM)
// and a fused requantize + bias + ReLU epilogue, writing float32
// results into out (grown via Ensure; pass nil to allocate on first
// use).
//
//	xq:     (N, InC, H, W) quantized input, row-major like Tensor.Data
//	wq:     (OutC, InC·K·K) quantized weights, flattened row-major
//	scales: per-output-channel requantization multiplier (weight scale ×
//	        activation scale), applied to each finished int32 sum
//	bias:   per-output-channel float32 bias, or nil
//
// It mirrors Conv2DInfer's execution structure: banded expansion into
// pooled scratch (packed sections rather than im2col columns), a
// closure-free serial path at GOMAXPROCS 1 (zero steady-state
// allocations), and the shared worker pool over bands or batch elements
// otherwise. Integer accumulation is exactly associative, so outputs
// are bit-identical across worker counts and to the naive reference
// kernel.
func Conv2DInferInt8(xq []int8, n, c, h, wd int, wq []int8, scales, bias []float32, spec ConvSpec, relu bool, out *Tensor) *Tensor {
	if c != spec.InC {
		panic("tensor: Conv2DInferInt8 channel mismatch")
	}
	if len(xq) != n*c*h*wd {
		panic("tensor: Conv2DInferInt8 input length mismatch")
	}
	colRows := spec.InC * spec.K * spec.K
	if len(wq) != spec.OutC*colRows {
		panic("tensor: Conv2DInferInt8 weight length mismatch")
	}
	if len(scales) != spec.OutC {
		panic("tensor: Conv2DInferInt8 scale length mismatch")
	}
	oh, ow := spec.OutSize(h, wd)
	out = Ensure(out, n, spec.OutC, oh, ow)
	secLen := c * spec.K
	gs := packedGroups(secLen)
	g := spec.K * gs
	// A band of `band` output rows needs (band−1)·stride + K input rows
	// of sections, each ow·(gs+1) words including the sums.
	band := 1
	if rmax := bandInt8Budget / (ow * (gs + 1)); rmax > spec.K {
		band = (rmax-spec.K)/spec.Stride + 1
	}
	if band > oh {
		band = oh
	}
	numBands := (oh + band - 1) / band
	// Permute each weight row from the storage order ch → ky → kx to the
	// section order ky → ch → kx, then pack once per call into the
	// blocked-interleaved layout shared by every band and batch element:
	// [OutC×g packed rows][OutC row sums]. Both passes are noise next to
	// the GEMM.
	permBuf := getScratchInt8(spec.OutC * colRows)
	perm := *permBuf
	for oc := 0; oc < spec.OutC; oc++ {
		src := wq[oc*colRows : (oc+1)*colRows]
		dst := perm[oc*colRows : (oc+1)*colRows]
		di := 0
		for ky := 0; ky < spec.K; ky++ {
			for ch := 0; ch < c; ch++ {
				base := ch*spec.K*spec.K + ky*spec.K
				for kx := 0; kx < spec.K; kx++ {
					dst[di] = src[base+kx]
					di++
				}
			}
		}
	}
	wBuf := getScratchUint64(spec.OutC*g + spec.OutC)
	wp := (*wBuf)[:spec.OutC*g]
	wsum := (*wBuf)[spec.OutC*g:]
	packInt8RowsBlocked(perm, spec.OutC, secLen, spec.K, wp, wsum)
	putScratchInt8(permBuf)
	a := convInt8Args{
		xq: xq, wp: wp, wsum: wsum, scales: scales, bias: bias, out: out.Data,
		c: c, h: h, wd: wd, spec: spec, relu: relu,
		oh: oh, ow: ow, band: band, g: g, gs: gs, numBands: numBands,
	}
	if runtime.GOMAXPROCS(0) <= 1 {
		// Closure-free serial path: with one worker the call performs
		// zero heap allocations (the steady-state inference contract).
		for i := 0; i < n; i++ {
			convInt8Bands(a, i, 0, numBands)
		}
		putScratchUint64(wBuf)
		return out
	}
	// The closures capture a branch-local copy so `a` itself never
	// escapes and the serial path above stays allocation-free.
	ap := a
	if n == 1 {
		parallelFor(numBands, func(lo, hi int) { convInt8Bands(ap, 0, lo, hi) })
	} else {
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				convInt8Bands(ap, i, 0, ap.numBands)
			}
		})
	}
	putScratchUint64(wBuf)
	return out
}

// convInt8Args carries the precomputed geometry of one Conv2DInferInt8
// call so band execution needs no closures (a by-value struct keeps the
// serial path allocation-free).
type convInt8Args struct {
	xq           []int8
	wp, wsum     []uint64
	scales, bias []float32
	out          []float32
	c, h, wd     int
	spec         ConvSpec
	relu         bool
	oh, ow       int
	band         int
	g, gs        int
	numBands     int
}

// convInt8Bands runs output-row bands [lo, hi) of batch element i:
// packSectionsInt8 over the band's input rows into pooled scratch (the
// transposed layout makes each output pixel's record one contiguous
// K·gs-word slice), then the interleaved weight blocks against each
// record with the fused requantize epilogue. Adjacent bands recompute
// their shared boundary sections — duplicated work, identical values,
// so the split stays bit-deterministic.
func convInt8Bands(a convInt8Args, i, lo, hi int) {
	planeIn := a.c * a.h * a.wd
	planeOut := a.spec.OutC * a.oh * a.ow
	xi := a.xq[i*planeIn : (i+1)*planeIn]
	oi := a.out[i*planeOut : (i+1)*planeOut]
	k, s, p := a.spec.K, a.spec.Stride, a.spec.Pad
	g, gs, ow := a.g, a.gs, a.ow
	outC := a.spec.OutC
	nb4 := outC / 4
	ohow := a.oh * ow
	corr := int32(swarBias * swarBias * g * swarGroup)
	maxR := (a.band-1)*s + k
	secBuf := getScratchUint64(maxR*ow*gs + maxR*ow)
	for bi := lo; bi < hi; bi++ {
		oy0 := bi * a.band
		oy1 := oy0 + a.band
		if oy1 > a.oh {
			oy1 = a.oh
		}
		iy0 := oy0*s - p
		nr := (oy1-1-oy0)*s + k
		secs := (*secBuf)[:nr*ow*gs]
		ssum := (*secBuf)[maxR*ow*gs : maxR*ow*gs+nr*ow]
		packSectionsInt8(xi, a.c, a.h, a.wd, a.spec, iy0, iy0+nr, secs, ssum)
		for oy := oy0; oy < oy1; oy++ {
			row0 := oy*s - p - iy0
			outRow := oy * ow
			for ox := 0; ox < ow; ox++ {
				base := ox*nr + row0
				rec := secs[base*gs : (base+k)*gs]
				var rsum uint64
				for ky := 0; ky < k; ky++ {
					rsum += ssum[base+ky]
				}
				rterm := swarBias * int32(rsum)
				outIdx := outRow + ox
				for b := 0; b < nb4; b++ {
					d0, d1, d2, d3 := swarDotRows4(a.wp[b*4*g:(b+1)*4*g], rec)
					i0 := b * 4
					var b0, b1, b2, b3 float32
					if a.bias != nil {
						b0, b1, b2, b3 = a.bias[i0], a.bias[i0+1], a.bias[i0+2], a.bias[i0+3]
					}
					oi[i0*ohow+outIdx] = requantInt8(int32(d0)+corr-swarBias*int32(a.wsum[i0])-rterm, a.scales[i0], b0, a.relu)
					oi[(i0+1)*ohow+outIdx] = requantInt8(int32(d1)+corr-swarBias*int32(a.wsum[i0+1])-rterm, a.scales[i0+1], b1, a.relu)
					oi[(i0+2)*ohow+outIdx] = requantInt8(int32(d2)+corr-swarBias*int32(a.wsum[i0+2])-rterm, a.scales[i0+2], b2, a.relu)
					oi[(i0+3)*ohow+outIdx] = requantInt8(int32(d3)+corr-swarBias*int32(a.wsum[i0+3])-rterm, a.scales[i0+3], b3, a.relu)
				}
				for oc := nb4 * 4; oc < outC; oc++ {
					wrow := a.wp[nb4*4*g+(oc-nb4*4)*g : nb4*4*g+(oc-nb4*4+1)*g]
					d := swarDotRow1(wrow, rec)
					var bo float32
					if a.bias != nil {
						bo = a.bias[oc]
					}
					oi[oc*ohow+outIdx] = requantInt8(int32(d)+corr-swarBias*int32(a.wsum[oc])-rterm, a.scales[oc], bo, a.relu)
				}
			}
		}
	}
	putScratchUint64(secBuf)
}
