package tensor

import "sync"

// The scratch arena recycles the large transient buffers the conv
// kernels need (im2col bands, col gradients, per-batch weight-gradient
// accumulators) through a sync.Pool, so a steady-state inference or
// training loop stops hitting the allocator for multi-megabyte slices
// every layer call. Buffers are handed out uninitialized: every kernel
// that takes one either fully overwrites it or zero-initializes its own
// output rows, so stale contents can never leak into results.

var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

// getScratch returns a float32 scratch buffer of length n from the
// arena. The contents are unspecified; callers must fully write the
// buffer before reading it. Return it with putScratch when done.
func getScratch(n int) *[]float32 {
	p := scratchPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratch returns a buffer obtained from getScratch to the arena.
// The caller must not retain any slice of it afterwards.
func putScratch(p *[]float32) { scratchPool.Put(p) }
