package tensor

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks sized like the dcSR-1 body convolution (16→16
// channels, 3×3, so K = 144) on a 480×270 frame (n = 129600 output
// pixels) — the exact GEMM shape the decoder hot loop runs per layer.
const (
	benchM = 16
	benchK = 144
	benchN = 480 * 270
)

func benchMats(n int) (a, b, out []float32) {
	rng := rand.New(rand.NewSource(1))
	return randSlice(rng, benchM*benchK), randSlice(rng, benchK*n), make([]float32, benchM*n)
}

func BenchmarkGEMM(b *testing.B) {
	am, bm, out := benchMats(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemmRows(am, bm, out, 0, benchM, benchK, benchN, benchN, nil, false)
	}
}

func BenchmarkGEMMFused(b *testing.B) {
	am, bm, out := benchMats(benchN)
	rng := rand.New(rand.NewSource(2))
	bias := randSlice(rng, benchM)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemmRows(am, bm, out, 0, benchM, benchK, benchN, benchN, bias, true)
	}
}

func BenchmarkGEMMRef(b *testing.B) {
	am, bm, out := benchMats(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmulRef(am, bm, out, benchM, benchK, benchN)
	}
}

func BenchmarkConv2DInfer270p(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	spec := ConvSpec{InC: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	x := New(1, 16, 270, 480)
	copy(x.Data, randSlice(rng, x.Len()))
	w := New(16, 16, 3, 3)
	copy(w.Data, randSlice(rng, w.Len()))
	bias := New(16)
	out := Conv2DInfer(x, w, bias, spec, true, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = Conv2DInfer(x, w, bias, spec, true, out)
	}
}

func BenchmarkIm2col270p(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	spec := ConvSpec{InC: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	x := randSlice(rng, 16*270*480)
	col := make([]float32, 144*270*480)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2col(x, 16, 270, 480, spec, col)
	}
}
