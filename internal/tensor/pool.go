package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The worker pool replaces the per-call goroutine spawning the kernel
// layer used to do: a fixed set of workers is started lazily on the
// first parallel kernel call and then reused for every subsequent
// ParallelFor, so a steady-state inference loop never creates a
// goroutine.
//
// Scheduling is claim-based: a ParallelFor call publishes one job whose
// chunks are claimed with an atomic counter by the pool workers *and* by
// the submitting goroutine itself. Because the submitter always claims
// until the job is exhausted, a job completes even if no worker ever
// picks it up (queue full, pool shut down, or all workers busy), which
// makes nested ParallelFor calls deadlock-free by construction: a
// goroutine only ever waits on chunks that some goroutine has already
// claimed and is actively executing.
//
// Determinism: chunk boundaries depend only on n and GOMAXPROCS, chunks
// cover disjoint index ranges, and no reduction crosses a chunk
// boundary inside the pool, so kernel outputs are bit-identical across
// runs regardless of how chunks are interleaved onto workers.

// job is one ParallelFor invocation.
type job struct {
	fn     func(lo, hi int)
	n      int
	chunk  int   // indices per chunk
	chunks int32 // total chunk count
	next   atomic.Int32
	done   atomic.Int32
	fin    chan struct{} // closed by whoever completes the last chunk
}

// run claims and executes chunks until the job is exhausted.
func (j *job) run() {
	for {
		c := j.next.Add(1) - 1
		if c >= j.chunks {
			return
		}
		lo := int(c) * j.chunk
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		if j.done.Add(1) == j.chunks {
			close(j.fin)
		}
	}
}

// workerPool is the lazily started persistent worker set.
type workerPool struct {
	mu      sync.Mutex
	jobs    chan *job
	stop    chan struct{}
	joined  sync.WaitGroup // joins workers on shutdown
	running bool
	workers int
}

var pool workerPool

// ensure starts the workers on first use (or after a shutdown) and
// returns the submission queue and worker count.
func (p *workerPool) ensure() (chan *job, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.running {
		p.workers = runtime.GOMAXPROCS(0)
		p.jobs = make(chan *job, 8*p.workers)
		p.stop = make(chan struct{})
		// Workers capture the channels by value: a later shutdown/restart
		// cycle replaces the pool fields, and old workers must keep
		// draining their own generation's queue only.
		jobs, stop := p.jobs, p.stop
		for w := 0; w < p.workers; w++ {
			p.joined.Add(1)
			go func() {
				defer p.joined.Done()
				for {
					select {
					case j := <-jobs:
						j.run()
					case <-stop:
						return
					}
				}
			}()
		}
		p.running = true
	}
	return p.jobs, p.workers
}

// ShutdownPool stops the persistent kernel workers and blocks until
// every worker goroutine has exited. It is safe to call when the pool
// was never started, and the pool restarts lazily on the next parallel
// kernel call (picking up the then-current GOMAXPROCS), so tests and
// embedders can use it to assert goroutine hygiene or to resize the
// pool. Kernel calls racing with ShutdownPool still complete correctly:
// their chunks are executed by the submitting goroutine.
func ShutdownPool() {
	pool.mu.Lock()
	if !pool.running {
		pool.mu.Unlock()
		return
	}
	close(pool.stop)
	pool.running = false
	pool.mu.Unlock()
	pool.joined.Wait()
}

// PoolWorkers reports how many persistent workers the pool is running
// (0 when the pool has not started).
func PoolWorkers() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if !pool.running {
		return 0
	}
	return pool.workers
}

// parallelFor splits [0, n) into chunks and executes fn(lo, hi) over
// them, using the persistent pool for parallelism. The caller
// participates in execution, so the call always completes even with no
// free workers, and it blocks until every chunk has run.
func parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	maxprocs := runtime.GOMAXPROCS(0)
	if maxprocs <= 1 || n == 1 {
		fn(0, n)
		return
	}
	chunks := maxprocs
	if chunks > n {
		chunks = n
	}
	chunk := (n + chunks - 1) / chunks
	chunks = (n + chunk - 1) / chunk
	if chunks <= 1 {
		fn(0, n)
		return
	}
	j := &job{fn: fn, n: n, chunk: chunk, chunks: int32(chunks), fin: make(chan struct{})}
	jobs, workers := pool.ensure()
	// Offer the job to at most chunks-1 workers (the caller claims too).
	// A full queue is not an error: unoffered chunks run on the caller.
	shares := chunks - 1
	if shares > workers {
		shares = workers
	}
offer:
	for s := 0; s < shares; s++ {
		select {
		case jobs <- j:
		default:
			break offer
		}
	}
	j.run()
	<-j.fin
}
