package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// maxRelDiff returns the largest elementwise |a-b| / max(1, |b|).
func maxRelDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if ab := math.Abs(float64(b[i])); ab > 1 {
			d /= ab
		}
		if d > m {
			m = d
		}
	}
	return m
}

// gemmShapes covers the blocking edges: row counts around the 4-row
// block size, singleton reduction (K=1), and singleton columns.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {1, 7, 5}, {2, 3, 4}, {3, 9, 1}, {4, 4, 4},
	{5, 16, 11}, {7, 1, 9}, {8, 27, 13}, {16, 144, 30}, {17, 5, 3},
}

func TestGEMMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range gemmShapes {
		a := randSlice(rng, sh.m*sh.k)
		b := randSlice(rng, sh.k*sh.n)
		got := make([]float32, sh.m*sh.n)
		want := make([]float32, sh.m*sh.n)
		gemmRows(a, b, got, 0, sh.m, sh.k, sh.n, sh.n, nil, false)
		matmulRef(a, b, want, sh.m, sh.k, sh.n)
		if d := maxRelDiff(got, want); d > 1e-5 {
			t.Errorf("gemmRows(%dx%dx%d) differs from reference by %g", sh.m, sh.k, sh.n, d)
		}
	}
}

func TestGEMMFusedBiasReLUParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range gemmShapes {
		a := randSlice(rng, sh.m*sh.k)
		b := randSlice(rng, sh.k*sh.n)
		bias := randSlice(rng, sh.m)
		got := make([]float32, sh.m*sh.n)
		want := make([]float32, sh.m*sh.n)
		gemmRows(a, b, got, 0, sh.m, sh.k, sh.n, sh.n, bias, true)
		matmulRef(a, b, want, sh.m, sh.k, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				v := want[i*sh.n+j] + bias[i]
				if v < 0 {
					v = 0
				}
				want[i*sh.n+j] = v
			}
		}
		if d := maxRelDiff(got, want); d > 1e-5 {
			t.Errorf("fused gemmRows(%dx%dx%d) differs from reference by %g", sh.m, sh.k, sh.n, d)
		}
	}
}

// TestGEMMStridedOutput checks the banded-conv write pattern: out rows
// spaced further apart than the row length, partial row ranges.
func TestGEMMStridedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, k, n, stride := 6, 9, 5, 12
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	got := make([]float32, m*stride)
	for i := range got {
		got[i] = 99 // sentinel outside the written columns
	}
	gemmRows(a, b, got, 1, m, k, n, stride, nil, false)
	want := make([]float32, m*n)
	matmulRef(a, b, want, m, k, n)
	for i := 1; i < m; i++ {
		if d := maxRelDiff(got[i*stride:i*stride+n], want[i*n:(i+1)*n]); d > 1e-5 {
			t.Errorf("strided row %d differs by %g", i, d)
		}
		for j := n; j < stride; j++ {
			if got[i*stride+j] != 99 {
				t.Fatalf("row %d wrote outside its %d columns", i, n)
			}
		}
	}
	for j := 0; j < n; j++ {
		if got[j] != 99 {
			t.Fatalf("row 0 written despite lo=1")
		}
	}
}

func TestGEMMTAParity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sh := range gemmShapes {
		a := randSlice(rng, sh.m*sh.k)
		b := randSlice(rng, sh.m*sh.n)
		got := make([]float32, sh.k*sh.n)
		want := make([]float32, sh.k*sh.n)
		gemmTARows(a, b, got, 0, sh.k, sh.m, sh.k, sh.n)
		matmulTARef(a, b, want, sh.m, sh.k, sh.n)
		if d := maxRelDiff(got, want); d > 1e-5 {
			t.Errorf("gemmTARows(%dx%dx%d) differs from reference by %g", sh.m, sh.k, sh.n, d)
		}
	}
}

func TestGEMMBTParity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, sh := range gemmShapes {
		a := randSlice(rng, sh.m*sh.n)
		b := randSlice(rng, sh.k*sh.n)
		got := make([]float32, sh.m*sh.k)
		want := make([]float32, sh.m*sh.k)
		gemmBTRows(a, b, got, 0, sh.m, sh.n, sh.k)
		matmulBTRef(a, b, want, sh.m, sh.n, sh.k)
		if d := maxRelDiff(got, want); d > 1e-5 {
			t.Errorf("gemmBTRows(%dx%dx%d) differs from reference by %g", sh.m, sh.n, sh.k, d)
		}
	}
}

// convSpecs covers the K=1 pointwise case, strides, and padding edges.
var convSpecs = []ConvSpec{
	{InC: 3, OutC: 4, K: 1, Stride: 1, Pad: 0},
	{InC: 2, OutC: 3, K: 1, Stride: 2, Pad: 0},
	{InC: 3, OutC: 5, K: 3, Stride: 1, Pad: 1},
	{InC: 4, OutC: 2, K: 3, Stride: 2, Pad: 1},
	{InC: 2, OutC: 6, K: 5, Stride: 1, Pad: 2},
	{InC: 1, OutC: 1, K: 3, Stride: 1, Pad: 0},
}

func TestConv2DInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, spec := range convSpecs {
		for _, batch := range []int{1, 3} {
			h, w := 9, 7
			x := New(batch, spec.InC, h, w)
			copy(x.Data, randSlice(rng, x.Len()))
			wt := New(spec.OutC, spec.InC, spec.K, spec.K)
			copy(wt.Data, randSlice(rng, wt.Len()))
			bias := New(spec.OutC)
			copy(bias.Data, randSlice(rng, bias.Len()))

			want, _ := Conv2DForward(x, wt, bias, spec)
			got := Conv2DInfer(x, wt, bias, spec, false, nil)
			if d := maxRelDiff(got.Data, want.Data); d > 1e-5 {
				t.Errorf("Conv2DInfer %+v batch=%d differs from Conv2DForward by %g", spec, batch, d)
			}

			gotRelu := Conv2DInfer(x, wt, bias, spec, true, nil)
			for i, v := range want.Data {
				if v < 0 {
					want.Data[i] = 0
				}
			}
			if d := maxRelDiff(gotRelu.Data, want.Data); d > 1e-5 {
				t.Errorf("fused ReLU Conv2DInfer %+v batch=%d differs by %g", spec, batch, d)
			}
		}
	}
}

// TestConv2DInferMultiBand forces the banded im2col path (several bands
// per frame) and checks it against the single-col training kernel.
func TestConv2DInferMultiBand(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	spec := ConvSpec{InC: 16, OutC: 8, K: 3, Stride: 1, Pad: 1}
	h, w := 64, 64 // colRows=144, band=2^18/(144*64)=28 < oh → 3 bands
	colRows := spec.InC * spec.K * spec.K
	if band := bandFloatBudget / (colRows * w); band >= h {
		t.Fatalf("test no longer exercises multiple bands (band=%d >= oh=%d)", band, h)
	}
	x := New(1, spec.InC, h, w)
	copy(x.Data, randSlice(rng, x.Len()))
	wt := New(spec.OutC, spec.InC, spec.K, spec.K)
	copy(wt.Data, randSlice(rng, wt.Len()))
	bias := New(spec.OutC)
	copy(bias.Data, randSlice(rng, bias.Len()))
	want, _ := Conv2DForward(x, wt, bias, spec)
	got := Conv2DInfer(x, wt, bias, spec, false, nil)
	if d := maxRelDiff(got.Data, want.Data); d > 1e-5 {
		t.Fatalf("multi-band Conv2DInfer differs from Conv2DForward by %g", d)
	}
}

// TestConv2DInferReusesBuffer checks the Ensure-based output recycling.
func TestConv2DInferReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	spec := ConvSpec{InC: 2, OutC: 3, K: 3, Stride: 1, Pad: 1}
	x := New(1, 2, 8, 8)
	copy(x.Data, randSlice(rng, x.Len()))
	wt := New(3, 2, 3, 3)
	copy(wt.Data, randSlice(rng, wt.Len()))
	out := Conv2DInfer(x, wt, nil, spec, false, nil)
	out2 := Conv2DInfer(x, wt, nil, spec, false, out)
	if &out.Data[0] != &out2.Data[0] {
		t.Fatal("Conv2DInfer did not reuse the provided output buffer")
	}
}

func TestEnsure(t *testing.T) {
	tn := Ensure(nil, 2, 3)
	if got := fmt.Sprint(tn.Shape); got != "[2 3]" || len(tn.Data) != 6 {
		t.Fatalf("Ensure(nil) = shape %v len %d", tn.Shape, len(tn.Data))
	}
	// Shrinking reuses storage.
	p := &tn.Data[0]
	tn = Ensure(tn, 3, 2)
	if &tn.Data[0] != p || len(tn.Data) != 6 {
		t.Fatal("Ensure did not reuse storage when shrinking/reshaping")
	}
	// Growing reallocates to the new size.
	tn = Ensure(tn, 4, 4)
	if len(tn.Data) != 16 {
		t.Fatalf("Ensure grow: len %d, want 16", len(tn.Data))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Ensure accepted a non-positive dimension")
		}
	}()
	Ensure(nil, 0, 3)
}
