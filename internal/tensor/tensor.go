// Package tensor provides the minimal dense float32 tensor machinery used by
// the neural-network stack in this repository: NCHW-layout tensors,
// elementwise arithmetic, im2col-based 2-D convolution with full backward
// passes, and a deterministic Gaussian initializer.
//
// The package is deliberately small: it implements exactly what the EDSR and
// VAE models in internal/edsr and internal/vae need, with no reflection, no
// interface indirection in hot loops, and no allocation inside the per-pixel
// kernels. All heavy operations (matmul, im2col) are parallelized across
// runtime.NumCPU workers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense float32 array with an explicit shape. The layout is
// row-major; for 4-D tensors the convention throughout this repository is
// NCHW (batch, channel, height, width). The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Ensure returns a tensor of the given shape, reusing t's backing
// storage when its capacity suffices and growing it otherwise. A nil t
// allocates fresh. The returned tensor's contents are unspecified —
// callers must fully overwrite it — which is exactly the contract the
// inference fast path needs to recycle per-layer output buffers without
// a clearing pass.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			// The message deliberately omits the shape: formatting it
			// would make the variadic slice escape and cost the hot
			// path one heap allocation per call.
			panic("tensor: non-positive dimension in Ensure shape")
		}
		n *= s
	}
	if t == nil {
		t = &Tensor{}
	}
	t.Shape = append(t.Shape[:0], shape...)
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	} else {
		t.Data = t.Data[:n]
	}
	return t
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills t with Gaussian noise of the given standard deviation using
// the supplied PRNG, so all model initialization is reproducible.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// AddInPlace adds o elementwise into t. Shapes must have equal length.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: SubInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor {
	r := t.Clone()
	r.AddInPlace(o)
	return r
}

// Dot returns the inner product of two equally sized tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i, v := range a.Data {
		s += float64(v) * float64(b.Data[i])
	}
	return s
}

// SumSquares returns the sum of squared elements.
func (t *Tensor) SumSquares() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value, or 0 for empty tensors.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}
