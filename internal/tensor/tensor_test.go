package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[5] = 42
	if x.Data[5] != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape size mismatch did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{10, 20, 30}, 3)
	x.AddInPlace(y)
	if x.Data[2] != 33 {
		t.Fatalf("AddInPlace got %v", x.Data)
	}
	x.SubInPlace(y)
	if x.Data[2] != 3 {
		t.Fatalf("SubInPlace got %v", x.Data)
	}
	x.ScaleInPlace(2)
	if x.Data[0] != 2 {
		t.Fatalf("ScaleInPlace got %v", x.Data)
	}
	z := Add(x, y)
	if z.Data[0] != 12 || x.Data[0] != 2 {
		t.Fatal("Add must not mutate operands")
	}
}

func TestDotAndSumSquares(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{4, 5, 6}, 3)
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := x.SumSquares(); got != 14 {
		t.Fatalf("SumSquares = %v, want 14", got)
	}
	if got := y.MaxAbs(); got != 6 {
		t.Fatalf("MaxAbs = %v, want 6", got)
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Randn(rand.New(rand.NewSource(5)), 1)
	b.Randn(rand.New(rand.NewSource(5)), 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Randn not deterministic for equal seeds")
		}
	}
}

// referenceConv is a naive direct convolution used as ground truth.
func referenceConv(x, w, b *Tensor, spec ConvSpec) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)
	out := New(n, spec.OutC, oh, ow)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < spec.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < spec.K; ky++ {
							for kx := 0; kx < spec.K; kx++ {
								iy := oy*spec.Stride + ky - spec.Pad
								ix := ox*spec.Stride + kx - spec.Pad
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								xv := x.Data[((ni*c+ic)*h+iy)*wd+ix]
								wv := w.Data[((oc*c+ic)*spec.K+ky)*spec.K+kx]
								s += float64(xv) * float64(wv)
							}
						}
					}
					if b != nil {
						s += float64(b.Data[oc])
					}
					out.Data[((ni*spec.OutC+oc)*oh+oy)*ow+ox] = float32(s)
				}
			}
		}
	}
	return out
}

func TestConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []ConvSpec{
		{InC: 1, OutC: 1, K: 3, Stride: 1, Pad: 1},
		{InC: 3, OutC: 4, K: 3, Stride: 1, Pad: 1},
		{InC: 2, OutC: 3, K: 3, Stride: 2, Pad: 1},
		{InC: 2, OutC: 2, K: 1, Stride: 1, Pad: 0},
		{InC: 1, OutC: 2, K: 5, Stride: 1, Pad: 2},
	}
	for _, spec := range cases {
		x := New(2, spec.InC, 7, 6)
		x.Randn(rng, 1)
		w := New(spec.OutC, spec.InC, spec.K, spec.K)
		w.Randn(rng, 1)
		b := New(spec.OutC)
		b.Randn(rng, 1)
		got, _ := Conv2DForward(x, w, b, spec)
		want := referenceConv(x, w, b, spec)
		for i := range want.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("spec %+v: out[%d] = %v, want %v", spec, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestIm2colCol2imAdjoint(t *testing.T) {
	// col2im must be the exact adjoint of im2col:
	// <im2col(x), y> == <x, col2im(y)> for all x, y.
	rng := rand.New(rand.NewSource(22))
	spec := ConvSpec{InC: 2, OutC: 1, K: 3, Stride: 2, Pad: 1}
	c, h, w := 2, 6, 5
	oh, ow := spec.OutSize(h, w)
	rows := c * spec.K * spec.K
	for trial := 0; trial < 20; trial++ {
		x := make([]float32, c*h*w)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		y := make([]float32, rows*oh*ow)
		for i := range y {
			y[i] = float32(rng.NormFloat64())
		}
		col := make([]float32, rows*oh*ow)
		im2col(x, c, h, w, spec, col)
		var lhs float64
		for i := range col {
			lhs += float64(col[i]) * float64(y[i])
		}
		xadj := make([]float32, c*h*w)
		col2im(y, c, h, w, spec, xadj)
		var rhs float64
		for i := range x {
			rhs += float64(x[i]) * float64(xadj[i])
		}
		if math.Abs(lhs-rhs) > 1e-3*math.Max(1, math.Abs(lhs)) {
			t.Fatalf("trial %d: adjoint identity violated: %g vs %g", trial, lhs, rhs)
		}
	}
}

func TestMatMulProperties(t *testing.T) {
	// Property: (A·B)ᵀ-free identity checks via random small matrices
	// against a naive implementation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		got := make([]float32, m*n)
		MatMul(a, b, got, m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for kk := 0; kk < k; kk++ {
					s += float64(a[i*k+kk]) * float64(b[kk*n+j])
				}
				if math.Abs(s-float64(got[i*n+j])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulATandBT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, k, n := 4, 3, 5
	a := make([]float32, m*k)
	bb := make([]float32, m*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(rng.NormFloat64())
	}
	// MatMulAT: out(k×n) = aᵀ·b.
	got := make([]float32, k*n)
	MatMulAT(a, bb, got, m, k, n)
	for r := 0; r < k; r++ {
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += float64(a[i*k+r]) * float64(bb[i*n+j])
			}
			if math.Abs(s-float64(got[r*n+j])) > 1e-4 {
				t.Fatalf("MatMulAT[%d][%d] = %v, want %v", r, j, got[r*n+j], s)
			}
		}
	}
	// MatMulBT: out(m×k2) = a2(m×n)·b2ᵀ(k2×n).
	k2 := 2
	b2 := make([]float32, k2*n)
	for i := range b2 {
		b2[i] = float32(rng.NormFloat64())
	}
	got2 := make([]float32, m*k2)
	MatMulBT(bb, b2, got2, m, n, k2)
	for i := 0; i < m; i++ {
		for r := 0; r < k2; r++ {
			var s float64
			for j := 0; j < n; j++ {
				s += float64(bb[i*n+j]) * float64(b2[r*n+j])
			}
			if math.Abs(s-float64(got2[i*k2+r])) > 1e-4 {
				t.Fatalf("MatMulBT[%d][%d] = %v, want %v", i, r, got2[i*k2+r], s)
			}
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		hits := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}
